// Quickstart: load a benchmark, look at its timing, size its critical
// path to a delay constraint at minimum area with the constant
// sensitivity method.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	proc := pops.DefaultProcess()
	model := pops.NewModel(proc)

	// The paper's c432 substitute (29-gate critical path, Table 1).
	circuit, err := pops.Benchmark("c432")
	if err != nil {
		log.Fatal(err)
	}
	sta, err := pops.Analyze(circuit, model)
	if err != nil {
		log.Fatal(err)
	}
	stats := circuit.Stats()
	fmt.Printf("%s: %d gates, worst delay %.0f ps unsized\n",
		circuit.Name, stats.Gates, sta.WorstDelay)

	// Delay-space exploration (§3.1): the feasibility bounds.
	path, _, err := pops.CriticalPath(circuit, model)
	if err != nil {
		log.Fatal(err)
	}
	bounds, err := pops.Bounds(model, path.Clone())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("critical path: %d gates, Tmin %.0f ps, Tmax %.0f ps\n",
		path.Len(), bounds.Tmin, bounds.Tmax)

	// Constraint distribution (§3.2): meet 1.3×Tmin at minimum area.
	tc := 1.3 * bounds.Tmin
	res, err := pops.Distribute(model, path, tc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sized to Tc = %.0f ps: delay %.0f ps, path area %.1f µm (a = %.3g)\n",
		tc, res.Delay, res.Area, res.A)

	// An infeasible constraint is detected, not looped on.
	if _, err := pops.Distribute(model, path.Clone(), 0.5*bounds.Tmin); err != nil {
		fmt.Printf("0.5×Tmin correctly rejected: %v\n", err)
	}
}
