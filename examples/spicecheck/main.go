// Spicecheck: validate the closed-form delay model (eq. 1-3) against
// the transistor-level transient simulator on a sized critical path —
// the reproduction of the paper's HSPICE validation methodology.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	proc := pops.DefaultProcess()
	model := pops.NewModel(proc)
	sim := pops.NewSimulator(proc)

	circuit, err := pops.Benchmark("fpd")
	if err != nil {
		log.Fatal(err)
	}
	path, _, err := pops.CriticalPath(circuit, model)
	if err != nil {
		log.Fatal(err)
	}

	// Size the path for minimum delay, then compare the two engines
	// stage by stage.
	if _, err := pops.Bounds(model, path); err != nil {
		log.Fatal(err)
	}
	meas, err := sim.SimulatePath(path, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s critical path, %d stages, sized at Tmin\n\n", circuit.Name, path.Len())
	fmt.Printf("%-5s %-7s %12s %12s\n", "stage", "cell", "model t50", "spice t50")
	acc := 0.0
	for i := range path.Stages {
		st := path.Stages[i]
		acc += model.GateDelayMean(st.Cell, st.CIn, path.LoadAt(i), 0) // cumulative (slope folded below)
		fmt.Printf("%-5d %-7s %12.1f %12.1f\n", i, st.Cell.Type, acc, meas.StageT50[i])
	}
	modelDelay := model.PathDelayMean(path)
	simDelay, err := sim.PathDelayMean(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npath delay: model %.1f ps, transistor-level %.1f ps (%.1f%% apart)\n",
		modelDelay, simDelay, (simDelay-modelDelay)/modelDelay*100)
	fmt.Println("the closed-form model tracks the circuit-level solution —")
	fmt.Println("the property every POPS metric (Tmin, Flimit, a) relies on.")
}
