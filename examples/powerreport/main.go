// Powerreport: the "low power" in the paper's title made concrete —
// compare the dynamic power of three implementations of the same
// circuit meeting three different delay constraints, and of the
// Sutherland equal-delay baseline at the tightest one.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	proc := pops.DefaultProcess()
	model := pops.NewModel(proc)

	base, err := pops.Benchmark("c880")
	if err != nil {
		log.Fatal(err)
	}
	path, _, err := pops.CriticalPath(base, model)
	if err != nil {
		log.Fatal(err)
	}
	bounds, err := pops.Bounds(model, path.Clone())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: Tmin %.0f ps — dynamic power at 100 MHz under random activity\n\n",
		base.Name, bounds.Tmin)

	popts := pops.PowerOptions{Vectors: 600, Seed: 42}
	ref, err := pops.EstimatePower(base, proc, popts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-26s %10s %12s %10s\n", "implementation", "Tc/Tmin", "power (µW)", "vs unsized")
	fmt.Printf("%-26s %10s %12.1f %10s\n", "unsized (all minimum)", "-", ref.TotalUW, "-")

	for _, ratio := range []float64{3.0, 1.5, 1.05} {
		c := base.Clone()
		pa, _, err := pops.CriticalPath(c, model)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := pops.Distribute(model, pa, ratio*bounds.Tmin); err != nil {
			log.Fatal(err)
		}
		pa.WriteBack()
		est, err := pops.EstimatePower(c, proc, popts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %10.2f %12.1f %+9.1f%%\n",
			"constant sensitivity", ratio, est.TotalUW,
			(est.TotalUW-ref.TotalUW)/ref.TotalUW*100)
	}

	fmt.Println("\nthe looser the constraint, the closer the optimized power")
	fmt.Println("returns to the minimum-size floor — sizing is spent capacitance,")
	fmt.Println("which is why the paper distributes constraints at minimum area.")
}
