// Bufferstudy: reproduce the §4.1 methodology interactively — the
// library's fan-out limits (Table 2), and what buffer insertion buys on
// a path with an overloaded node, both for minimum delay (Table 3) and
// for area at a constraint (Fig. 8).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	proc := pops.DefaultProcess()
	model := pops.NewModel(proc)

	// Library characterization: the protocol's critical-node metric.
	fmt.Println("fan-out limits (driver INV):")
	for _, e := range pops.CharacterizeLibrary(model) {
		fmt.Printf("  %-6s Flimit = %.2f\n", e.Gate, e.Flimit)
	}

	// c880's substitute carries high-fanout hub nets on its spine —
	// the configuration buffer insertion exists for.
	circuit, err := pops.Benchmark("c880")
	if err != nil {
		log.Fatal(err)
	}
	path, _, err := pops.CriticalPath(circuit, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s critical path: %d gates\n", circuit.Name, path.Len())

	// Minimum delay without structure modification…
	bounds, err := pops.Bounds(model, path.Clone())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Tmin (sizing only):     %.0f ps\n", bounds.Tmin)

	// …and with the protocol free to buffer the over-limit nodes
	// (asking for an impossible constraint makes it chase pure speed).
	proto, err := pops.NewProtocol(pops.ProtocolConfig{Model: model})
	if err != nil {
		log.Fatal(err)
	}
	out, err := proto.OptimizePath(path, 0.01*bounds.Tmin)
	if err != nil {
		log.Fatal(err)
	}
	gain := (bounds.Tmin - out.Delay) / bounds.Tmin * 100
	fmt.Printf("Tmin (with buffers):    %.0f ps  (%d buffers, %.1f%% gain — Table 3 row)\n",
		out.Delay, out.Buffers, gain)

	// Area at a hard constraint: buffers let the gates shrink.
	tc := 1.1 * bounds.Tmin
	plain, err := pops.Distribute(model, path.Clone(), tc)
	if err != nil {
		log.Fatal(err)
	}
	hard, err := proto.OptimizePath(path, tc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhard constraint Tc = %.0f ps:\n", tc)
	fmt.Printf("  sizing only:        %.0f µm\n", plain.Area)
	fmt.Printf("  protocol (%s): %.0f µm\n", hard.Method, hard.Area)
}
