// Command custombench optimizes a user-supplied ISCAS .bench netlist
// end-to-end — the bring-your-own-netlist path. The circuit below is a
// genuine 2-bit ripple-carry adder written in ordinary .bench syntax
// (XOR/AND/OR gates; the ingestion pass elaborates them onto the
// primitive NAND/NOR/INV library). The exact same source string could
// be sent to a running popsd:
//
//	curl -s -X POST localhost:8080/v1/optimize \
//	    -d '{"bench":"INPUT(a0)\n…", "ratio":1.1, "wait":true}'
//
// or optimized from the command line:
//
//	pops optimize -bench adder2.bench -ratio 1.1
//
// All three entry points run one ingestion, validation and
// optimization path, so their results are byte-identical.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

// adder2 is a 2-bit ripple-carry adder: sum = a + b + cin. Each full
// adder is the textbook two-XOR/two-AND/one-OR realization.
const adder2 = `# adder2
INPUT(a0)
INPUT(a1)
INPUT(b0)
INPUT(b1)
INPUT(cin)
OUTPUT(sum0)
OUTPUT(sum1)
OUTPUT(cout)
p0 = XOR(a0, b0)
g0 = AND(a0, b0)
sum0 = XOR(p0, cin)
t0 = AND(p0, cin)
c1 = OR(g0, t0)
p1 = XOR(a1, b1)
g1 = AND(a1, b1)
sum1 = XOR(p1, c1)
t1 = AND(p1, c1)
cout = OR(g1, t1)
`

func main() {
	// Parse + validate first: a rejected source reports a typed
	// BenchError (syntax vs. semantic vs. too-large) before any
	// optimization work is spent.
	pb, err := pops.ParseBench(adder2)
	if err != nil {
		log.Fatal(err)
	}
	st := pb.Circuit.Stats()
	fmt.Printf("parsed %s: %d gates after elaboration, fingerprint %s…\n",
		pb.Name, st.Gates, pb.Key[:12])

	eng, err := pops.NewEngine(pops.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := pops.OptimizeBench(context.Background(), eng, adder2,
		pops.OptimizeRequest{Ratio: 1.1})
	if err != nil {
		log.Fatal(err)
	}
	out := res.Outcome
	fmt.Printf("constraint: %.1f ps (1.1 × Tmin %.1f ps)\n", res.Tc, res.Tmin)
	fmt.Printf("result: delay %.1f ps, area %.1f µm, feasible=%v, rounds=%d\n",
		out.Delay, out.Area, out.Feasible, out.Rounds)
}
