// Protocol: sweep a delay constraint across the paper's three
// constraint domains on one benchmark and watch the Fig. 7 decision
// diagram pick a different optimization alternative in each.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	model := pops.NewModel(pops.DefaultProcess())
	circuit, err := pops.Benchmark("c1355")
	if err != nil {
		log.Fatal(err)
	}
	path, _, err := pops.CriticalPath(circuit, model)
	if err != nil {
		log.Fatal(err)
	}
	bounds, err := pops.Bounds(model, path.Clone())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: Tmin %.0f ps, Tmax %.0f ps\n\n", circuit.Name, bounds.Tmin, bounds.Tmax)

	proto, err := pops.NewProtocol(pops.ProtocolConfig{Model: model})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-10s %-34s %10s %10s %8s\n",
		"Tc/Tmin", "domain", "method", "delay(ps)", "area(µm)", "buffers")
	for _, ratio := range []float64{0.92, 1.05, 1.15, 1.4, 2.0, 3.5} {
		out, err := proto.OptimizePath(path, ratio*bounds.Tmin)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.2f %-10s %-34s %10.0f %10.1f %8d\n",
			ratio, out.Domain, out.Method, out.Delay, out.Area, out.Buffers)
	}

	fmt.Println("\nreading: weak constraints need only sizing at tiny area;")
	fmt.Println("tight ones trade area steeply; below Tmin the protocol")
	fmt.Println("modifies the structure (buffers, then De Morgan rewrites).")
}
