// Adder16: run the full circuit-level protocol on a genuine structural
// 16-bit ripple-carry adder (nine-NAND full adders), then prove the
// optimized netlist still adds.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	proc := pops.DefaultProcess()
	model := pops.NewModel(proc)

	adder, err := pops.Benchmark("rca16")
	if err != nil {
		log.Fatal(err)
	}
	original := adder.Clone()
	stats := adder.Stats()
	fmt.Printf("rca16: %d gates, depth %d\n", stats.Gates, stats.Depth)

	path, sta, err := pops.CriticalPath(adder, model)
	if err != nil {
		log.Fatal(err)
	}
	bounds, err := pops.Bounds(model, path.Clone())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("carry chain: %d gates, unsized delay %.0f ps, Tmin %.0f ps\n",
		path.Len(), sta.WorstDelay, bounds.Tmin)

	// Drive the whole adder to 1.25×Tmin with the Fig. 7 protocol. An
	// adder has one near-critical path per sum bit, and each round
	// fixes the current worst one, so give the driver room to visit
	// them all (the paper's "iterative timing verification").
	proto, err := pops.NewProtocol(pops.ProtocolConfig{Model: model, MaxRounds: 64})
	if err != nil {
		log.Fatal(err)
	}
	tc := 1.25 * bounds.Tmin
	out, err := proto.OptimizeCircuit(adder, tc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protocol: delay %.0f ps (Tc %.0f), area %.0f µm, %d rounds, %d buffer pairs, feasible=%v\n",
		out.Delay, tc, out.Area, out.Rounds, out.Buffers, out.Feasible)
	for i, po := range out.PathOutcomes {
		fmt.Printf("  round %d: %s domain → %s\n", i+1, po.Domain, po.Method)
	}

	// The optimized adder must still be an adder.
	ce, err := pops.Equivalent(original, adder, 400, 2026)
	if err != nil {
		log.Fatal(err)
	}
	if ce != nil {
		log.Fatalf("optimization broke the adder: %v", ce)
	}
	fmt.Println("functional equivalence: verified (randomized + corner vectors)")
}
