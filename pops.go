// Package pops is a from-scratch Go reproduction of the low-power CMOS
// circuit optimization protocol of Verle, Michel, Azemard, Maurine and
// Auvergne (DATE 2005): "Low Power Oriented CMOS Circuit Optimization
// Protocol".
//
// The library selects, deterministically, the cheapest way to make a
// combinational path meet a delay constraint Tc: transistor (gate)
// sizing, buffer insertion, or De Morgan logic restructuring. The
// selection metrics are the path delay bounds Tmin/Tmax (feasibility
// and constraint-domain classification), the constant-sensitivity
// sizing method (minimum-area constraint distribution, eq. 5-6 of the
// paper), and the per-gate fan-out limit Flimit for buffer insertion
// (Table 2 of the paper).
//
// The package is a facade over the internal substrates:
//
//	tech        process corners (0.25 µm class by default)
//	gate        the primitive cell library and its logical weights
//	netlist     circuit graphs, ISCAS'85 .bench I/O, mutations
//	logic       boolean evaluation and equivalence checking
//	iscas       the paper's benchmark suite (synthetic substitutes)
//	delay       the closed-form timing model (eq. 1-3)
//	sta         slope-propagating timing analysis, K worst paths
//	spice       a transistor-level transient simulator (HSPICE stand-in)
//	sizing      Tmin/Tmax bounds and constraint distribution (§3)
//	buffering   Flimit characterization and buffer insertion (§4.1)
//	restructure De Morgan NOR→NAND rewrites (§4.2)
//	amps        an industrial-style baseline sizer (AMPS stand-in)
//	core        the optimization protocol (Fig. 7)
//	power       dynamic power from toggle-counted activities and
//	            subthreshold leakage from state probabilities
//	leakage     selective multi-Vt assignment (standby leakage)
//	calib       model calibration against the transistor simulator
//	wire        fan-out wire-load model and uncertainty sweeps (§2)
//	le          classic logical effort (ref. [4]) baseline
//	store       durable content-addressed record store: checksummed
//	            on-disk records, write-behind batching, job journal
//	engine      concurrent batch engine, async job store, HTTP service
//
// Quick start:
//
//	proc := pops.DefaultProcess()
//	model := pops.NewModel(proc)
//	circuit, _ := pops.Benchmark("c432")
//	path, _, _ := pops.CriticalPath(circuit, model)
//	bounds, _ := pops.Bounds(model, path)
//	res, _ := pops.Distribute(model, path, 1.3*bounds.Tmin)
//	fmt.Printf("area %.1f µm at %.0f ps\n", res.Area, res.Delay)
//
// Batch workloads — many constraint points, many circuits — go through
// the concurrent engine, which shards (circuit, Tc) units over a
// bounded worker pool and memoizes repeated characterization
// sub-problems, with results bit-identical to the sequential protocol:
//
//	eng, _ := pops.NewEngine(pops.EngineConfig{Workers: 8})
//	curve, _ := eng.Sweep(ctx, pops.SweepRequest{Circuit: "c880", Points: 11})
//	for _, pt := range curve.Points {
//		fmt.Printf("Tc=%.0f ps  area %.1f µm\n", pt.Tc, pt.Area)
//	}
//
// The same engine backs cmd/popsd, a standard-library JSON HTTP daemon
// (POST /v1/optimize, /v1/sweep, /v1/suite; GET /v1/jobs/{id},
// /healthz) for serving the optimizer as a long-running service.
//
// Leakage-aware runs extend the protocol with the selective multi-Vt
// pass (internal/leakage): after sizing, non-critical gates are
// promoted to high-threshold devices under incremental-STA guard,
// cutting subthreshold leakage at zero area and zero dynamic cost —
// requested with OptimizeRequest.Leakage, Protocol.OptimizeWithLeakage
// or the "pops leakage" CLI subcommand.
package pops

import (
	"context"
	"io"
	"log/slog"
	"os"

	"repro/internal/buffering"
	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/engine"
	"repro/internal/gate"
	"repro/internal/iscas"
	"repro/internal/leakage"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sizing"
	"repro/internal/spice"
	"repro/internal/sta"
	"repro/internal/store"
	"repro/internal/tech"
	"repro/internal/wire"
)

// Core types, re-exported for users of the facade.
type (
	// Process is a CMOS technology corner.
	Process = tech.Process
	// Model is the closed-form delay model (eq. 1-3).
	Model = delay.Model
	// Path is a bounded combinational path.
	Path = delay.Path
	// Stage is one gate of a bounded path.
	Stage = delay.Stage
	// Circuit is a combinational netlist.
	Circuit = netlist.Circuit
	// Node is a vertex of a netlist.
	Node = netlist.Node
	// GateType enumerates library cells.
	GateType = gate.Type
	// SizingResult reports a sizing run.
	SizingResult = sizing.Result
	// SizingOptions tunes the sizing solvers.
	SizingOptions = sizing.Options
	// FlimitEntry is one row of the library characterization.
	FlimitEntry = buffering.TableEntry
	// Protocol is the configured Fig. 7 decision diagram.
	Protocol = core.Protocol
	// ProtocolConfig parameterizes the protocol.
	ProtocolConfig = core.Config
	// PathOutcome reports the protocol's decision on one path.
	PathOutcome = core.PathOutcome
	// CircuitOutcome reports a circuit-level protocol run.
	CircuitOutcome = core.CircuitOutcome
	// Domain is the constraint-domain classification.
	Domain = core.Domain
	// Simulator is the transistor-level transient simulator.
	Simulator = spice.Simulator
	// STAConfig parameterizes timing analysis.
	STAConfig = sta.Config
	// STAResult is a timing-analysis outcome.
	STAResult = sta.Result
	// TimingSession is a reusable incremental-STA view of one circuit:
	// cached analyses validated against the netlist's structural
	// mutation epoch, repaired in place after size/Vt writes, fully
	// re-propagated into reused buffers after structural edits.
	TimingSession = sta.Session
	// BenchmarkSpec describes one suite benchmark.
	BenchmarkSpec = iscas.Spec
)

// ErrStaleAnalysis reports use of a timing analysis after the circuit's
// structure changed (re-exported from the sta layer). Run a fresh
// Analyze — or hold the analysis through a TimingSession, which
// refreshes automatically.
var ErrStaleAnalysis = sta.ErrStaleAnalysis

// NewTimingSession builds a reusable incremental timing session over an
// elaborated circuit. Session-based drivers — Protocol.OptimizeSession
// and the batch engine's tasks — analyze once and repair incrementally,
// making repeated timing queries allocation-free; see STAResult.Update
// and docs/ARCHITECTURE.md for the epoch semantics.
func NewTimingSession(c *Circuit, m *Model) *TimingSession {
	return sta.NewSession(c, m, sta.Config{})
}

// Constraint domains (Fig. 6/7).
const (
	Infeasible = core.Infeasible
	HardDomain = core.Hard
	MediumDom  = core.Medium
	WeakDomain = core.Weak
)

// DefaultProcess returns the calibrated 0.25 µm-class corner used by
// all paper experiments.
func DefaultProcess() *Process { return tech.CMOS025() }

// NewModel builds the paper's full delay model on a corner.
func NewModel(p *Process) *Model { return delay.NewModel(p) }

// NewSimulator builds the transistor-level simulator on a corner.
func NewSimulator(p *Process) *Simulator { return spice.New(p) }

// LoadBench parses an ISCAS'85 .bench netlist and elaborates it onto
// the primitive library.
func LoadBench(r io.Reader) (*Circuit, error) {
	c, err := netlist.ReadBench(r, netlist.BenchOptions{})
	if err != nil {
		return nil, err
	}
	return netlist.Elaborate(c)
}

// LoadBenchFile is LoadBench on a file path.
func LoadBenchFile(path string) (*Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadBench(f)
}

// WriteBench serializes a circuit in .bench format.
func WriteBench(w io.Writer, c *Circuit) error { return netlist.WriteBench(w, c) }

// Bring-your-own-netlist types, re-exported from the netlist and
// engine layers.
type (
	// BenchError is the typed rejection of a user-supplied .bench
	// source; its Kind distinguishes malformed text (BenchSyntax) from
	// invalid netlists (BenchSemantic) and limit violations
	// (BenchTooLarge).
	BenchError = netlist.BenchError
	// BenchErrorKind classifies a BenchError.
	BenchErrorKind = netlist.BenchErrorKind
	// ParsedBench is a validated, elaborated inline netlist with its
	// canonical content fingerprint — ready to optimize.
	ParsedBench = engine.ParsedBench
)

// Rejection classes of a user-supplied .bench source, re-exported.
const (
	// BenchSyntax marks text that is not well-formed .bench.
	BenchSyntax = netlist.BenchSyntax
	// BenchSemantic marks well-formed text that is not a valid
	// combinational netlist (cycles, duplicates, unsupported gates).
	BenchSemantic = netlist.BenchSemantic
	// BenchTooLarge marks a source exceeding an ingestion limit.
	BenchTooLarge = netlist.BenchTooLarge
)

// ParseBench parses, validates and elaborates an inline .bench source
// behind the hardened ingestion pass (loop detection, duplicate,
// arity and undefined-net checks). Rejections are typed *BenchError
// values. Like LoadBenchFile, it applies no size caps — those guard
// the untrusted HTTP boundary (popsd), not trusted local sources.
func ParseBench(src string) (*ParsedBench, error) { return engine.ParseBench(src) }

// Fingerprint returns the canonical content hash of a circuit — the
// identity the batch engine memoizes results under, independent of the
// circuit's name.
func Fingerprint(c *Circuit) string { return netlist.Fingerprint(c) }

// OptimizeBench runs the full circuit protocol on an inline .bench
// source through a batch engine: the same ingestion, validation and
// memoization path as POST /v1/optimize {"bench": …} and
// `pops optimize -bench`, so results are byte-identical across all
// three entry points. Constraint fields of req (Tc, Ratio, Leakage)
// apply; its Circuit field is ignored.
func OptimizeBench(ctx context.Context, e *Engine, src string, req OptimizeRequest) (*OptimizeResult, error) {
	req.Circuit = ""
	req.Bench = src
	return e.Optimize(ctx, req)
}

// Benchmarks lists the paper's benchmark suite.
func Benchmarks() []BenchmarkSpec { return iscas.Suite() }

// Benchmark instantiates a suite benchmark by name ("c432", "Adder16",
// "fpd", …), the genuine embedded "c17", or a structural ripple-carry
// adder ("rca16" for 16 bits, any width).
func Benchmark(name string) (*Circuit, error) { return iscas.Load(name) }

// Analyze runs slope-propagating STA over an elaborated circuit.
func Analyze(c *Circuit, m *Model) (*STAResult, error) {
	return sta.Analyze(c, m, sta.Config{})
}

// CriticalPath extracts the worst path of a circuit as a bounded path.
func CriticalPath(c *Circuit, m *Model) (*Path, *STAResult, error) {
	return sta.CriticalPath(c, m, sta.Config{})
}

// KWorstPaths extracts the k most critical paths, worst first.
func KWorstPaths(c *Circuit, m *Model, k int) ([]*Path, error) {
	return sta.KWorstBoundedPaths(c, m, sta.Config{}, k)
}

// PathBounds carries the delay-space exploration of §3.1.
type PathBounds struct {
	Tmin float64 // minimum achievable delay (ps)
	Tmax float64 // all-minimum-drive delay (ps)
}

// Bounds computes Tmin and Tmax of a bounded path. The path is left
// sized at the minimum-delay point.
func Bounds(m *Model, pa *Path) (PathBounds, error) {
	q := pa.Clone()
	tmax := sizing.Tmax(m, q)
	r, err := sizing.Tmin(m, pa, sizing.Options{})
	if err != nil {
		return PathBounds{}, err
	}
	return PathBounds{Tmin: r.Delay, Tmax: tmax}, nil
}

// Distribute sizes the path to meet tc (ps) at minimum area with the
// constant sensitivity method. It returns sizing.ErrInfeasible (wrapped)
// when tc is below the path's minimum achievable delay.
func Distribute(m *Model, pa *Path, tc float64) (*SizingResult, error) {
	return sizing.Distribute(m, pa, tc, sizing.Options{})
}

// ErrInfeasible is re-exported from the sizing layer.
var ErrInfeasible = sizing.ErrInfeasible

// CharacterizeLibrary computes the buffer-insertion fan-out limits of
// every library gate driven by an inverter (the paper's Table 2).
func CharacterizeLibrary(m *Model) []FlimitEntry {
	return buffering.CharacterizeLibrary(m, nil, buffering.Options{})
}

// NewProtocol configures the Fig. 7 protocol. A zero Config needs only
// the Model field; the library is characterized on first use.
func NewProtocol(cfg ProtocolConfig) (*Protocol, error) { return core.NewProtocol(cfg) }

// Equivalent checks functional equivalence of two circuits (exhaustive
// up to 16 inputs, randomized above). A nil counterexample means
// equivalent.
func Equivalent(a, b *Circuit, trials int, seed int64) (*logic.Counterexample, error) {
	return logic.Equivalent(a, b, trials, seed)
}

// Power estimation and model calibration types, re-exported.
type (
	// PowerEstimate reports dynamic power of a sized netlist.
	PowerEstimate = power.Estimate
	// PowerOptions tunes the activity extraction.
	PowerOptions = power.Options
	// Calibration is a fitted model parameter set.
	Calibration = calib.Result
	// SlackReport carries required times and slacks against Tc.
	SlackReport = sta.SlackReport
)

// Multi-Vt (leakage) types, re-exported from internal/tech, power and
// leakage.
type (
	// VtClass enumerates threshold flavors (LVT, SVT, HVT).
	VtClass = tech.VtClass
	// VtSpec characterizes one threshold class of a process.
	VtSpec = tech.VtSpec
	// StaticPowerEstimate reports subthreshold leakage power.
	StaticPowerEstimate = power.StaticEstimate
	// LeakageOptions parameterizes the selective Vt-assignment pass.
	LeakageOptions = leakage.Options
	// LeakageResult reports a Vt-assignment run (promotions + power
	// breakdown).
	LeakageResult = leakage.Result
)

// Threshold classes of the multi-Vt extension, re-exported. SVT is the
// default device every circuit starts from.
const (
	SVT = tech.SVT
	LVT = tech.LVT
	HVT = tech.HVT
)

// EstimateStaticPower computes the subthreshold leakage power of a
// circuit: per-gate off-currents by Vt class, size, and simulated
// input-state probability.
func EstimateStaticPower(c *Circuit, p *Process, opts PowerOptions) (*StaticPowerEstimate, error) {
	return power.EstimateStatic(c, p, opts)
}

// AssignVt runs the selective multi-Vt pass on an already-optimized
// circuit: gates on non-critical paths are greedily promoted to higher
// thresholds, each move verified by incremental STA against tc. Use
// Protocol.OptimizeWithLeakage for the combined size-then-assign flow.
func AssignVt(ctx context.Context, c *Circuit, m *Model, tc float64, opts LeakageOptions) (*LeakageResult, error) {
	return leakage.Assign(ctx, c, m, tc, opts)
}

// EstimatePower computes the dynamic power of a circuit under random
// switching activity (toggle-counted by logic simulation).
func EstimatePower(c *Circuit, p *Process, opts PowerOptions) (*PowerEstimate, error) {
	return power.EstimateCircuit(c, p, opts)
}

// Calibrate fits the delay model's S0 and logical weights from the
// transistor-level simulator — the paper's SPICE-calibration step.
// A nil type list calibrates the whole inverting library.
func Calibrate(p *Process, types []GateType) (*Calibration, error) {
	if types == nil {
		types = calib.DefaultTypes()
	}
	return calib.Calibrate(p, nil, types, calib.Options{})
}

// ApplyWireLoads estimates routing capacitance on every net with the
// default fan-out-based wire-load model and returns the total applied
// (fF). Optimization after this reflects pre-layout loading.
func ApplyWireLoads(c *Circuit) (float64, error) {
	return wire.Apply(c, wire.Default025())
}

// Concurrent batch-engine types, re-exported from internal/engine.
type (
	// Engine is the concurrent batch optimizer: a bounded worker pool
	// plus a shared characterization cache.
	Engine = engine.Engine
	// EngineConfig parameterizes NewEngine.
	EngineConfig = engine.Config
	// OptimizeRequest is one (circuit, Tc) engine job.
	OptimizeRequest = engine.OptimizeRequest
	// OptimizeResult reports one optimized circuit.
	OptimizeResult = engine.OptimizeResult
	// SweepRequest asks for a Tc-grid trade-off curve.
	SweepRequest = engine.SweepRequest
	// Sweep is the completed area/delay trade-off curve.
	Sweep = engine.Sweep
	// SweepPoint is one Tc point of a Sweep.
	SweepPoint = engine.SweepPoint
	// SuiteRequest asks for a benchmark×ratio batch run.
	SuiteRequest = engine.SuiteRequest
	// SuiteResult is a completed batch run.
	SuiteResult = engine.SuiteResult
	// EngineServer is the popsd JSON HTTP service over an Engine.
	EngineServer = engine.Server
	// ServerOption customizes NewEngineServer.
	ServerOption = engine.ServerOption
	// MetricsSnapshot is a flat name{labels} → value reading of every
	// engine instrument: counters and gauges by value, histograms as
	// _count/_sum pairs (see Engine.MetricsSnapshot and GET /metrics).
	MetricsSnapshot = obs.Snapshot
)

// NewEngine builds a concurrent batch engine. A zero config selects
// GOMAXPROCS workers on the default process corner. Set
// EngineConfig.Results to a ResultStore to add a durable tier behind
// the in-memory result memo (see the durability types below).
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// Durable result-store types, re-exported from internal/store. The
// store is the optional second tier behind the engine's in-memory
// result memo (EngineConfig.Results) and the substrate of popsd's
// -data-dir crash durability; see the "Durability" section of
// docs/ARCHITECTURE.md.
type (
	// ResultStore is the pluggable durable key/value tier: Get, Put,
	// Delete, Scan and Close over checksummed records addressed by
	// fingerprint-derived keys.
	ResultStore = store.Store
	// MemoryStore is the in-process ResultStore backend (tests,
	// ephemeral tiers).
	MemoryStore = store.Memory
	// DiskStore is the on-disk ResultStore backend: one checksummed
	// record file per key, written by atomic rename, corrupt records
	// skipped with a logged warning on open.
	DiskStore = store.Disk
	// StoreBatcher is the asynchronous write-behind front of a
	// ResultStore: Puts coalesce per key and flush on size, interval
	// and Close.
	StoreBatcher = store.Batcher
	// StoreBatcherOptions tunes NewStoreBatcher.
	StoreBatcherOptions = store.BatcherOptions
	// StoreCorruptError is the typed verdict on a damaged record: the
	// bytes are unreadable, as opposed to absent (ErrResultNotFound).
	StoreCorruptError = store.CorruptError
	// JobJournal is the append-only, fsync-per-record job log popsd
	// replays after a crash.
	JobJournal = store.Journal
	// JournalEntry is one surviving record of a reopened JobJournal.
	JournalEntry = store.JournalEntry
)

// Result-store sentinel errors, re-exported.
var (
	// ErrResultNotFound reports a Get for an absent key.
	ErrResultNotFound = store.ErrNotFound
	// ErrResultStoreClosed reports an operation on a closed store or
	// batcher.
	ErrResultStoreClosed = store.ErrClosed
)

// NewMemoryStore builds the in-process ResultStore backend.
func NewMemoryStore() *MemoryStore { return store.NewMemory() }

// OpenDiskStore opens (creating if needed) the on-disk ResultStore
// backend under dir. Records that fail their checksum are skipped with
// a warning on log — one damaged record never poisons the store. A nil
// log discards.
func OpenDiskStore(dir string, log *slog.Logger) (*DiskStore, error) {
	return store.OpenDisk(dir, log)
}

// NewStoreBatcher wraps a ResultStore with asynchronous write-behind
// batching: Puts coalesce in memory and flush when the pending set
// grows past StoreBatcherOptions.MaxPending, every FlushInterval, and
// on Close. Reads see pending writes immediately. Closing the batcher
// flushes but does not close the underlying store.
func NewStoreBatcher(under ResultStore, opts StoreBatcherOptions) *StoreBatcher {
	return store.NewBatcher(under, opts)
}

// OpenJobJournal opens (creating if needed) an append-only job journal
// at path and returns the surviving entries of a previous run — a
// corrupt tail is truncated with a warning on log, never an error.
// Pass the journal to WithServerJournal and the entries to
// EngineServer.Replay to restore crashed jobs.
func OpenJobJournal(path string, log *slog.Logger) (*JobJournal, []JournalEntry, error) {
	return store.OpenJournal(path, log)
}

// WithServerJournal installs a job journal on an engine server:
// accepted jobs are journaled before they run and marked terminal when
// they finish, so EngineServer.Replay can re-submit work lost to a
// crash. popsd wires this behind -data-dir.
func WithServerJournal(j *JobJournal) ServerOption { return engine.WithJournal(j) }

// NewEngineServer wires the popsd HTTP service (an http.Handler) over
// an engine; jobs submitted through it run under ctx.
func NewEngineServer(ctx context.Context, e *Engine, opts ...ServerOption) *EngineServer {
	return engine.NewServer(ctx, e, opts...)
}

// WithServerLogger installs the structured logger behind an engine
// server's access and job logs (default: discard). popsd builds its
// slog root from -log-level/-log-format and passes it here.
func WithServerLogger(l *slog.Logger) ServerOption { return engine.WithLogger(l) }
