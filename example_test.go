package pops_test

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro"
)

// ExampleBounds shows the §3.1 delay-space exploration: every bounded
// path has a finite [Tmin, Tmax] window, and constraints are classified
// against it before any optimization is attempted.
func ExampleBounds() {
	model := pops.NewModel(pops.DefaultProcess())
	circuit, _ := pops.Benchmark("c17")
	path, _, _ := pops.CriticalPath(circuit, model)
	b, _ := pops.Bounds(model, path)
	fmt.Println("bounds ordered:", 0 < b.Tmin && b.Tmin < b.Tmax)
	// Output:
	// bounds ordered: true
}

// ExampleDistribute sizes a path to a constraint at minimum area and
// shows that infeasible constraints are rejected rather than looped on.
func ExampleDistribute() {
	model := pops.NewModel(pops.DefaultProcess())
	circuit, _ := pops.Benchmark("fpd")
	path, _, _ := pops.CriticalPath(circuit, model)
	b, _ := pops.Bounds(model, path.Clone())

	res, err := pops.Distribute(model, path, 1.5*b.Tmin)
	fmt.Println("met constraint:", err == nil && res.Delay <= 1.5*b.Tmin*1.0001)

	_, err = pops.Distribute(model, path.Clone(), 0.5*b.Tmin)
	fmt.Println("infeasible rejected:", err != nil)
	// Output:
	// met constraint: true
	// infeasible rejected: true
}

// ExampleCharacterizeLibrary prints the paper's Table 2 ordering: the
// fan-out limit falls as the gate gets less efficient, NOR3 last.
func ExampleCharacterizeLibrary() {
	model := pops.NewModel(pops.DefaultProcess())
	entries := pops.CharacterizeLibrary(model)
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Gate.String()
	}
	fmt.Println(names[0], ">", names[len(names)-1])
	// Output:
	// INV > NOR4
}

// ExampleEquivalent proves that optimization preserves logic on a real
// arithmetic circuit.
func ExampleEquivalent() {
	model := pops.NewModel(pops.DefaultProcess())
	adder, _ := pops.Benchmark("rca4")
	original := adder.Clone()

	proto, _ := pops.NewProtocol(pops.ProtocolConfig{Model: model})
	path, _, _ := pops.CriticalPath(adder, model)
	b, _ := pops.Bounds(model, path.Clone())
	out, _ := proto.OptimizeCircuit(adder, 1.4*b.Tmin)

	ce, _ := pops.Equivalent(original, adder, 0, 1) // exhaustive: 9 inputs
	fmt.Println("feasible:", out.Feasible)
	fmt.Println("still adds:", ce == nil)
	// Output:
	// feasible: true
	// still adds: true
}

// ExampleNewEngine runs a batch workload through the concurrent
// engine: an area/delay trade-off sweep whose points are byte-identical
// to sequential protocol runs regardless of worker count.
func ExampleNewEngine() {
	eng, _ := pops.NewEngine(pops.EngineConfig{Workers: 4})
	curve, _ := eng.Sweep(context.Background(), pops.SweepRequest{Circuit: "fpd", Points: 5})

	fmt.Println("points:", len(curve.Points))
	fmt.Println("grid spans Tmin to 2*Tmin:",
		curve.Points[0].Tc == curve.Tmin && curve.Points[4].Tc == 2*curve.Tmin)
	monotone := true
	for i := 1; i < len(curve.Points); i++ {
		if curve.Points[i].Area > curve.Points[i-1].Area {
			monotone = false
		}
	}
	fmt.Println("looser constraints never cost more area:", monotone)
	// Output:
	// points: 5
	// grid spans Tmin to 2*Tmin: true
	// looser constraints never cost more area: true
}

// ExampleProtocol_OptimizeWithLeakage shows the leakage-aware flow:
// the Fig. 7 protocol sizes the circuit to Tc, then the selective
// multi-Vt pass promotes non-critical gates to high-threshold devices,
// cutting subthreshold leakage without violating the constraint.
func ExampleProtocol_OptimizeWithLeakage() {
	model := pops.NewModel(pops.DefaultProcess())
	circuit, _ := pops.Benchmark("fpd")
	path, _, _ := pops.CriticalPath(circuit, model)
	b, _ := pops.Bounds(model, path.Clone())

	proto, _ := pops.NewProtocol(pops.ProtocolConfig{Model: model})
	out, _ := proto.OptimizeWithLeakage(context.Background(), circuit, 1.5*b.Tmin, pops.LeakageOptions{})

	lr := out.Leakage
	fmt.Println("constraint met:", out.Feasible && out.Delay <= 1.5*b.Tmin)
	fmt.Println("gates promoted to HVT:", lr.Promoted > 0 && lr.ByClass[pops.HVT] == lr.Promoted)
	fmt.Println("leakage reduced:", lr.StaticAfterUW < lr.StaticBeforeUW)
	fmt.Println("total is dynamic plus leakage:",
		math.Abs(lr.TotalAfterUW-(lr.DynamicUW+lr.StaticAfterUW)) < 1e-9)
	// Output:
	// constraint met: true
	// gates promoted to HVT: true
	// leakage reduced: true
	// total is dynamic plus leakage: true
}

// ExampleEstimateStaticPower scores the subthreshold leakage of a
// circuit per Vt class: an all-HVT assignment leaks an order of
// magnitude less than the all-SVT default.
func ExampleEstimateStaticPower() {
	proc := pops.DefaultProcess()
	circuit, _ := pops.Benchmark("c17")
	svt, _ := pops.EstimateStaticPower(circuit, proc, pops.PowerOptions{})

	for _, n := range circuit.Nodes {
		if n.IsLogic() {
			n.Vt = pops.HVT
		}
	}
	hvt, _ := pops.EstimateStaticPower(circuit, proc, pops.PowerOptions{})

	fmt.Println("leaks at SVT:", svt.TotalUW > 0)
	fmt.Println("HVT an order of magnitude lower:", hvt.TotalUW < svt.TotalUW/5)
	// Output:
	// leaks at SVT: true
	// HVT an order of magnitude lower: true
}

// ExampleBenchmarks lists the evaluation suite of the paper's Table 1.
func ExampleBenchmarks() {
	var names []string
	for _, s := range pops.Benchmarks() {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	fmt.Println(len(names), "benchmarks, including", names[2], "and", names[10])
	// Output:
	// 11 benchmarks, including c1908 and fpd
}
