package pops_test

import (
	"fmt"
	"sort"

	"repro"
)

// ExampleBounds shows the §3.1 delay-space exploration: every bounded
// path has a finite [Tmin, Tmax] window, and constraints are classified
// against it before any optimization is attempted.
func ExampleBounds() {
	model := pops.NewModel(pops.DefaultProcess())
	circuit, _ := pops.Benchmark("c17")
	path, _, _ := pops.CriticalPath(circuit, model)
	b, _ := pops.Bounds(model, path)
	fmt.Println("bounds ordered:", 0 < b.Tmin && b.Tmin < b.Tmax)
	// Output:
	// bounds ordered: true
}

// ExampleDistribute sizes a path to a constraint at minimum area and
// shows that infeasible constraints are rejected rather than looped on.
func ExampleDistribute() {
	model := pops.NewModel(pops.DefaultProcess())
	circuit, _ := pops.Benchmark("fpd")
	path, _, _ := pops.CriticalPath(circuit, model)
	b, _ := pops.Bounds(model, path.Clone())

	res, err := pops.Distribute(model, path, 1.5*b.Tmin)
	fmt.Println("met constraint:", err == nil && res.Delay <= 1.5*b.Tmin*1.0001)

	_, err = pops.Distribute(model, path.Clone(), 0.5*b.Tmin)
	fmt.Println("infeasible rejected:", err != nil)
	// Output:
	// met constraint: true
	// infeasible rejected: true
}

// ExampleCharacterizeLibrary prints the paper's Table 2 ordering: the
// fan-out limit falls as the gate gets less efficient, NOR3 last.
func ExampleCharacterizeLibrary() {
	model := pops.NewModel(pops.DefaultProcess())
	entries := pops.CharacterizeLibrary(model)
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Gate.String()
	}
	fmt.Println(names[0], ">", names[len(names)-1])
	// Output:
	// INV > NOR4
}

// ExampleEquivalent proves that optimization preserves logic on a real
// arithmetic circuit.
func ExampleEquivalent() {
	model := pops.NewModel(pops.DefaultProcess())
	adder, _ := pops.Benchmark("rca4")
	original := adder.Clone()

	proto, _ := pops.NewProtocol(pops.ProtocolConfig{Model: model})
	path, _, _ := pops.CriticalPath(adder, model)
	b, _ := pops.Bounds(model, path.Clone())
	out, _ := proto.OptimizeCircuit(adder, 1.4*b.Tmin)

	ce, _ := pops.Equivalent(original, adder, 0, 1) // exhaustive: 9 inputs
	fmt.Println("feasible:", out.Feasible)
	fmt.Println("still adds:", ce == nil)
	// Output:
	// feasible: true
	// still adds: true
}

// ExampleBenchmarks lists the evaluation suite of the paper's Table 1.
func ExampleBenchmarks() {
	var names []string
	for _, s := range pops.Benchmarks() {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	fmt.Println(len(names), "benchmarks, including", names[2], "and", names[10])
	// Output:
	// 11 benchmarks, including c1908 and fpd
}
