// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (see DESIGN.md §4 for the experiment index), plus
// the ablation benches of DESIGN.md §5. Each bench regenerates its
// artifact end-to-end and asserts the published *shape* — who wins and
// by roughly what factor — reporting the headline quantities as custom
// benchmark metrics.
//
// Run everything:  go test -bench=. -benchmem
// One artifact:    go test -bench=BenchmarkTable3 -benchtime=1x
package pops

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/gate"
	"repro/internal/iscas"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// benchSet keeps per-iteration cost bounded; cmd/experiments runs the
// full suite.
var benchSet = []string{"fpd", "c432", "c880", "c1355"}

func newEnv(b *testing.B) *experiments.Env {
	b.Helper()
	return experiments.NewEnv()
}

// BenchmarkFig1TminIterations regenerates Fig. 1: the delay-vs-ΣC_IN
// trajectory of the link-equation fixed point.
func BenchmarkFig1TminIterations(b *testing.B) {
	env := newEnv(b)
	var sweeps int
	for i := 0; i < b.N; i++ {
		points, tmax, tmin, err := env.Fig1("c432")
		if err != nil {
			b.Fatal(err)
		}
		if tmin >= tmax {
			b.Fatalf("Tmin %g not below Tmax %g", tmin, tmax)
		}
		last := points[len(points)-1]
		if last.Delay > tmin*1.01 {
			b.Fatalf("trajectory did not reach Tmin: %g vs %g", last.Delay, tmin)
		}
		sweeps = len(points)
	}
	b.ReportMetric(float64(sweeps), "sweeps")
}

// BenchmarkFig2TminPOPSvsAMPS regenerates Fig. 2: minimum delay, POPS
// vs the industrial-style baseline (POPS must win every row).
func BenchmarkFig2TminPOPSvsAMPS(b *testing.B) {
	env := newEnv(b)
	var worstRatio float64
	for i := 0; i < b.N; i++ {
		rows, err := env.Fig2(benchSet)
		if err != nil {
			b.Fatal(err)
		}
		worstRatio = 0
		for _, r := range rows {
			if r.POPS > r.AMPS*(1+1e-6) {
				b.Fatalf("%s: POPS Tmin %g above AMPS %g", r.Name, r.POPS, r.AMPS)
			}
			if ratio := r.AMPS / r.POPS; ratio > worstRatio {
				worstRatio = ratio
			}
		}
	}
	b.ReportMetric(worstRatio, "AMPS/POPS-max")
}

// BenchmarkFig3SensitivitySweep regenerates Fig. 3: the constant
// sensitivity delay-area family on one path.
func BenchmarkFig3SensitivitySweep(b *testing.B) {
	env := newEnv(b)
	var areaSpan float64
	for i := 0; i < b.N; i++ {
		points, err := env.Fig3("c432", nil)
		if err != nil {
			b.Fatal(err)
		}
		for j := 1; j < len(points); j++ {
			if points[j].Delay < points[j-1].Delay*(1-1e-9) ||
				points[j].Area > points[j-1].Area*(1+1e-9) {
				b.Fatalf("family not monotone at a=%g", points[j].A)
			}
		}
		areaSpan = points[0].Area / points[len(points)-1].Area
	}
	b.ReportMetric(areaSpan, "area-span")
}

// BenchmarkFig4AreaPOPSvsAMPS regenerates Fig. 4: area at Tc = 1.2·Tmin
// (POPS must use no more area than the baseline).
func BenchmarkFig4AreaPOPSvsAMPS(b *testing.B) {
	env := newEnv(b)
	var maxSaving float64
	for i := 0; i < b.N; i++ {
		rows, err := env.Fig4(benchSet, 1.2)
		if err != nil {
			b.Fatal(err)
		}
		maxSaving = 0
		for _, r := range rows {
			if r.POPS > r.AMPS*1.02 {
				b.Fatalf("%s: POPS area %g above baseline %g", r.Name, r.POPS, r.AMPS)
			}
			if s := (r.AMPS - r.POPS) / r.AMPS; s > maxSaving {
				maxSaving = s
			}
		}
	}
	b.ReportMetric(maxSaving*100, "saving-max-%")
}

// BenchmarkTable1CPUTime regenerates Table 1: wall-clock of the
// constraint-distribution step, POPS vs baseline.
func BenchmarkTable1CPUTime(b *testing.B) {
	env := newEnv(b)
	var minSpeedup float64
	for i := 0; i < b.N; i++ {
		rows, err := env.Table1([]string{"c432", "c1355"})
		if err != nil {
			b.Fatal(err)
		}
		minSpeedup = 1e18
		for _, r := range rows {
			if r.Speedup < minSpeedup {
				minSpeedup = r.Speedup
			}
		}
		if minSpeedup < 5 {
			b.Fatalf("speedup collapsed to %.1fx", minSpeedup)
		}
	}
	b.ReportMetric(minSpeedup, "speedup-min")
}

// BenchmarkTable2Flimit regenerates Table 2: the buffer-insertion
// fan-out limits, closed-form vs transistor-level.
func BenchmarkTable2Flimit(b *testing.B) {
	env := newEnv(b)
	var invLimit float64
	for i := 0; i < b.N; i++ {
		rows, err := env.Table2()
		if err != nil {
			b.Fatal(err)
		}
		byGate := map[gate.Type]experiments.Table2Row{}
		for _, r := range rows {
			byGate[r.Gate] = r
		}
		order := []gate.Type{gate.Inv, gate.Nand2, gate.Nand3, gate.Nor2, gate.Nor3}
		for j := 1; j < len(order); j++ {
			if byGate[order[j]].Calculated >= byGate[order[j-1]].Calculated {
				b.Fatalf("Flimit ordering broken at %v", order[j])
			}
		}
		invLimit = byGate[gate.Inv].Calculated
	}
	b.ReportMetric(invLimit, "Flimit-inv")
}

// BenchmarkTable3BufferGain regenerates Table 3: Tmin with sizing vs
// with buffer insertion.
func BenchmarkTable3BufferGain(b *testing.B) {
	env := newEnv(b)
	var maxGain float64
	for i := 0; i < b.N; i++ {
		rows, err := env.Table3(benchSet)
		if err != nil {
			b.Fatal(err)
		}
		maxGain = 0
		for _, r := range rows {
			if r.Buff > r.Sizing*(1+1e-9) {
				b.Fatalf("%s: buffering worsened Tmin", r.Name)
			}
			if r.GainPct > maxGain {
				maxGain = r.GainPct
			}
		}
		// The paper sees gains up to 22%; at least one benchmark must
		// benefit noticeably.
		if maxGain < 2 {
			b.Fatalf("no benchmark gained from buffering (max %.1f%%)", maxGain)
		}
	}
	b.ReportMetric(maxGain, "gain-max-%")
}

// BenchmarkFig6ConstraintDomains regenerates Fig. 6: the delay-area
// fronts whose crossings define the weak/medium/hard domains.
func BenchmarkFig6ConstraintDomains(b *testing.B) {
	env := newEnv(b)
	var minRatio float64
	for i := 0; i < b.N; i++ {
		fronts, err := env.Fig6("c1355")
		if err != nil {
			b.Fatal(err)
		}
		if fronts.TminBuffered > fronts.Tmin*(1+1e-9) {
			b.Fatal("buffered front has worse minimum")
		}
		minRatio = fronts.TminBuffered / fronts.Tmin
	}
	b.ReportMetric(minRatio, "TminBuf/Tmin")
}

// BenchmarkFig8DomainArea regenerates Fig. 8: area of the three
// methods in the three constraint domains (hard: global buffering must
// save area).
func BenchmarkFig8DomainArea(b *testing.B) {
	env := newEnv(b)
	var hardSaving float64
	for i := 0; i < b.N; i++ {
		rows, err := env.Fig8([]string{"c880", "c1355"})
		if err != nil {
			b.Fatal(err)
		}
		hardSaving = 0
		for _, r := range rows {
			if r.Domain != "hard" || !r.SizingOK || !r.GlobOK {
				continue
			}
			if r.GlobalB > r.Sizing*(1+1e-9) {
				b.Fatalf("%s hard: buffering worse than sizing", r.Name)
			}
			if s := (r.Sizing - r.GlobalB) / r.Sizing; s > hardSaving {
				hardSaving = s
			}
		}
	}
	b.ReportMetric(hardSaving*100, "hard-saving-%")
}

// BenchmarkTable4Restructure regenerates Table 4: buffer insertion vs
// De Morgan restructuring at hard and medium constraints.
func BenchmarkTable4Restructure(b *testing.B) {
	env := newEnv(b)
	var bestGain float64
	for i := 0; i < b.N; i++ {
		rows, err := env.Table4([]string{"c1355", "c1908"})
		if err != nil {
			b.Fatal(err)
		}
		bestGain = -1e18
		rewrote := false
		for _, r := range rows {
			if r.Rewrites > 0 {
				rewrote = true
			}
			if r.GainPct > bestGain {
				bestGain = r.GainPct
			}
			if r.Restruct > r.Buff*1.25 {
				b.Fatalf("%s/%s: restructuring far worse than buffering", r.Name, r.Domain)
			}
		}
		if !rewrote {
			b.Fatal("no NOR rewritten")
		}
	}
	b.ReportMetric(bestGain, "gain-best-%")
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationSlopeEffect measures the input-slope term's share of
// the minimum path delay.
func BenchmarkAblationSlopeEffect(b *testing.B) {
	env := newEnv(b)
	var delta float64
	for i := 0; i < b.N; i++ {
		r, err := env.AblationSlope("c880")
		if err != nil {
			b.Fatal(err)
		}
		if r.Ablated > r.Baseline {
			b.Fatal("removing the slope term increased delay")
		}
		delta = r.DeltaPct
	}
	b.ReportMetric(delta, "slope-share-%")
}

// BenchmarkAblationCoupling measures the Miller-coupling term's share.
func BenchmarkAblationCoupling(b *testing.B) {
	env := newEnv(b)
	var delta float64
	for i := 0; i < b.N; i++ {
		r, err := env.AblationMiller("c880")
		if err != nil {
			b.Fatal(err)
		}
		if r.Ablated > r.Baseline {
			b.Fatal("removing coupling increased delay")
		}
		delta = r.DeltaPct
	}
	b.ReportMetric(delta, "miller-share-%")
}

// BenchmarkAblationSutherland measures the area penalty of the
// equal-delay distribution against the constant sensitivity method.
func BenchmarkAblationSutherland(b *testing.B) {
	env := newEnv(b)
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := env.AblationSutherland("c880", nil)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if r.DeltaPct < 0 {
				b.Fatalf("Sutherland beat constant sensitivity: %+v", r)
			}
			if r.DeltaPct > worst {
				worst = r.DeltaPct
			}
		}
	}
	b.ReportMetric(worst, "penalty-max-%")
}

// BenchmarkAblationLogicalEffort compares classic logical-effort
// sizing (the paper's ref. [4]) against the eq. (4) optimum on a
// hub-loaded benchmark path — fixed off-path loads break LE's
// scaling-branch assumption.
func BenchmarkAblationLogicalEffort(b *testing.B) {
	env := newEnv(b)
	var delta float64
	for i := 0; i < b.N; i++ {
		r, err := env.AblationLogicalEffort("c880")
		if err != nil {
			b.Fatal(err)
		}
		if r.DeltaPct < -0.01 {
			b.Fatal("logical effort beat the convex optimum")
		}
		delta = r.DeltaPct
	}
	b.ReportMetric(delta, "LE-penalty-%")
}

// BenchmarkRobustnessWireUncertainty measures how far ±30% routing
// mis-estimation moves the deterministic bounds (the §2 motivation).
func BenchmarkRobustnessWireUncertainty(b *testing.B) {
	env := newEnv(b)
	var drift float64
	for i := 0; i < b.N; i++ {
		rows, err := env.WireUncertainty([]string{"c880"}, 0.3, 2)
		if err != nil {
			b.Fatal(err)
		}
		drift = rows[0].DriftPct
		if drift > 15 {
			b.Fatalf("Tmin drift %.1f%% under ±30%% wires", drift)
		}
	}
	b.ReportMetric(drift, "Tmin-drift-%")
}

// BenchmarkRobustnessSeedSweep re-runs the Table 3 gain across
// generator seeds — the synthetic-benchmark substitution's stability.
func BenchmarkRobustnessSeedSweep(b *testing.B) {
	env := newEnv(b)
	var mean float64
	for i := 0; i < b.N; i++ {
		row, err := env.SeedSweep("c880", 3)
		if err != nil {
			b.Fatal(err)
		}
		if row.MinGain < -1e-6 {
			b.Fatal("buffering hurt Tmin on some seed")
		}
		mean = row.MeanGain
	}
	b.ReportMetric(mean, "gain-mean-%")
}

// --- Concurrent batch-engine benches (internal/engine) ---

// engineBenchSet × engineRatios is the suite batch used to compare the
// sequential driver against the engine's worker pool: one (circuit,
// Tc) task per cell, heterogeneous circuit sizes for load balancing.
var (
	engineBenchSet = []string{"fpd", "c432", "c880", "c1355"}
	engineRatios   = []float64{1.2, 1.5, 2.0}
)

// BenchmarkSequentialSuite is the single-threaded baseline: the same
// benchmark×ratio batch, one protocol instance (characterized once,
// like the engine's shared cache), strictly serial.
func BenchmarkSequentialSuite(b *testing.B) {
	model := NewModel(DefaultProcess())
	proto, err := NewProtocol(ProtocolConfig{Model: model})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range engineBenchSet {
			for _, ratio := range engineRatios {
				c, err := Benchmark(name)
				if err != nil {
					b.Fatal(err)
				}
				pa, _, err := CriticalPath(c, model)
				if err != nil {
					b.Fatal(err)
				}
				bounds, err := Bounds(model, pa.Clone())
				if err != nil {
					b.Fatal(err)
				}
				out, err := proto.OptimizeCircuit(c, ratio*bounds.Tmin)
				if err != nil {
					b.Fatal(err)
				}
				if !out.Feasible {
					b.Fatalf("%s@%.2f infeasible", name, ratio)
				}
			}
		}
	}
}

// BenchmarkEngineSuite runs the same batch through the concurrent
// engine at 1/2/4/8 workers. On multi-core hardware the suite job
// scales near-linearly until the worker count passes GOMAXPROCS; the
// speedup-vs-BenchmarkSequentialSuite ratio is the engine's headline
// number (recorded in BENCH_engine.json).
func BenchmarkEngineSuite(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng, err := NewEngine(EngineConfig{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			req := SuiteRequest{Benchmarks: engineBenchSet, Ratios: engineRatios}
			// Warm the characterization cache outside the timed
			// region, mirroring the baseline's pre-built protocol.
			if _, err := eng.Optimize(context.Background(), OptimizeRequest{Circuit: "fpd", Ratio: 2}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Suite(context.Background(), req)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range res.Rows {
					if !r.Feasible {
						b.Fatalf("%s@%.2f infeasible", r.Circuit, r.Ratio)
					}
				}
			}
		})
	}
}

// BenchmarkEngineSuiteUncached is the memo-defeating variant of
// BenchmarkEngineSuite: every iteration submits freshly generated
// circuit variants (per-iteration seeds, so every fingerprint is new)
// as inline .bench netlists, so the result memo and the bounds cache
// miss on every cell. BenchmarkEngineSuite measures the service's
// steady state — after iteration 1 its cells are all memo hits — while
// this row measures raw optimization throughput; both rows are
// recorded in BENCH_engine.json. Variant generation and serialization
// run outside the timer.
func BenchmarkEngineSuiteUncached(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng, err := NewEngine(EngineConfig{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			// Warm the characterization cache outside the timed region,
			// like BenchmarkEngineSuite.
			if _, err := eng.Optimize(context.Background(), OptimizeRequest{Circuit: "fpd", Ratio: 2}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				benches := make([]string, 0, len(engineBenchSet))
				for _, name := range engineBenchSet {
					spec, err := iscas.ByName(name)
					if err != nil {
						b.Fatal(err)
					}
					spec.Seed = int64(1 + i) // unique structure per iteration
					c, err := iscas.Generate(spec)
					if err != nil {
						b.Fatal(err)
					}
					var buf bytes.Buffer
					if err := netlist.WriteBench(&buf, c); err != nil {
						b.Fatal(err)
					}
					benches = append(benches, buf.String())
				}
				b.StartTimer()
				res, err := eng.Suite(context.Background(),
					SuiteRequest{Benches: benches, Ratios: engineRatios})
				if err != nil {
					b.Fatal(err)
				}
				if want := len(benches) * len(engineRatios); len(res.Rows) != want {
					b.Fatalf("suite returned %d rows, want %d", len(res.Rows), want)
				}
			}
		})
	}
}

// BenchmarkEngineSweep measures the Tc-grid job: 9 points on one
// circuit, the workload where cached bounds pay off most (one Tmin
// solve serves every point).
func BenchmarkEngineSweep(b *testing.B) {
	eng, err := NewEngine(EngineConfig{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the characterization cache and the circuit's bounds entry
	// outside the timed region, like BenchmarkEngineSuite.
	if _, err := eng.Optimize(context.Background(), OptimizeRequest{Circuit: "c880", Ratio: 2}); err != nil {
		b.Fatal(err)
	}
	var area float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw, err := eng.Sweep(context.Background(), SweepRequest{Circuit: "c880", Points: 9})
		if err != nil {
			b.Fatal(err)
		}
		area = sw.Points[len(sw.Points)-1].Area
	}
	b.ReportMetric(area, "area-at-2Tmin")
}

// BenchmarkEngineHTTP measures the full service path: JSON request in,
// job through the store and pool, JSON result out.
func BenchmarkEngineHTTP(b *testing.B) {
	eng, err := NewEngine(EngineConfig{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	srv := engine.NewServer(context.Background(), eng)
	defer srv.Shutdown()
	body := `{"circuit":"fpd","ratio":1.5,"wait":true}`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/optimize", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// --- Timing-session benches (internal/sta; BENCH_sta.json) ---

// staRoundSet and staRounds model the optimizer's hot loop: per round,
// one timing view of the circuit, one critical-path extraction, one
// worst-path resize. The two benchmarks below run the identical
// workload through the historical flow (a full fresh Analyze per
// round) and through the reusable session (cached analysis + dirty-cone
// Update), so their ns/op and allocs/op ratio is exactly the win of the
// incremental timing session recorded in BENCH_sta.json.
var staRoundSet = []string{"fpd", "c432", "c880", "c1355"}

const staRounds = 8

// staPerturb deterministically resizes the round's critical nodes —
// the stand-in for the protocol's write-back. Alternating factors keep
// sizes bounded across iterations.
func staPerturb(nodes []*Node, round int) {
	f := 1.02
	if round%2 == 1 {
		f = 1 / 1.02
	}
	for _, n := range nodes {
		n.CIn *= f
	}
}

// BenchmarkSTARoundLoopFullAnalyze is the pre-session baseline: every
// round pays a whole-circuit forward pass into freshly allocated
// timing storage, exactly like the historical core.OptimizeStep.
func BenchmarkSTARoundLoopFullAnalyze(b *testing.B) {
	model := NewModel(DefaultProcess())
	circuits := make([]*Circuit, len(staRoundSet))
	for i, name := range staRoundSet {
		c, err := Benchmark(name)
		if err != nil {
			b.Fatal(err)
		}
		circuits[i] = c
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range circuits {
			for round := 0; round < staRounds; round++ {
				res, err := sta.Analyze(c, model, sta.Config{})
				if err != nil {
					b.Fatal(err)
				}
				staPerturb(res.CriticalNodes(), round)
			}
		}
	}
}

// BenchmarkSTARoundLoopSession is the same workload through one
// reusable timing session per circuit: the analysis is served from the
// session's buffers and repaired with a dirty-cone incremental update
// after each resize — the allocation-free round loop of the refactored
// optimizer.
func BenchmarkSTARoundLoopSession(b *testing.B) {
	model := NewModel(DefaultProcess())
	type unit struct {
		sess *sta.Session
		crit []*Node
	}
	units := make([]unit, len(staRoundSet))
	for i, name := range staRoundSet {
		c, err := Benchmark(name)
		if err != nil {
			b.Fatal(err)
		}
		units[i].sess = sta.NewSession(c, model, sta.Config{})
		if _, err := units[i].sess.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for u := range units {
			sess := units[u].sess
			for round := 0; round < staRounds; round++ {
				res, err := sess.Analyze()
				if err != nil {
					b.Fatal(err)
				}
				units[u].crit = res.AppendCriticalNodes(units[u].crit)
				staPerturb(units[u].crit, round)
				if _, err := res.Update(units[u].crit...); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkAblationTminSeeding verifies the CREF-independence of the
// link-equation fixed point.
func BenchmarkAblationTminSeeding(b *testing.B) {
	env := newEnv(b)
	var drift float64
	for i := 0; i < b.N; i++ {
		r, err := env.AblationSeeding("c880")
		if err != nil {
			b.Fatal(err)
		}
		drift = r.DeltaPct
		if drift > 1 || drift < -1 {
			b.Fatalf("Tmin drifted %.2f%% under a different seed", drift)
		}
	}
	b.ReportMetric(drift, "drift-%")
}
