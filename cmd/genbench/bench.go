// The bench subcommand: run a Go benchmark pattern with -benchmem and
// record the parsed results — ns/op, B/op, allocs/op, and any custom
// b.ReportMetric units — as a BENCH_*.json file. The repository's
// BENCH_engine.json and BENCH_sta.json baselines are generated this
// way, so the capture, the parser, and the file shape stay in one
// place.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro"
)

// errVet marks a capture aborted because `go vet` rejected the target
// package. main maps it to exit code 3, so bench harnesses can tell a
// lint failure (fix the code, the baseline is meaningless) apart from
// a benchmark failure (exit 1) without parsing stderr.
var errVet = errors.New("go vet failed")

// BenchRecord is the top-level shape of a BENCH_*.json file.
type BenchRecord struct {
	Description string        `json:"description,omitempty"`
	Recorded    string        `json:"recorded"`
	Command     string        `json:"command"`
	Host        BenchHost     `json:"host"`
	Results     []BenchResult `json:"results"`
}

// BenchHost describes the machine the record was captured on, from the
// `go test` header plus the runtime.
type BenchHost struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPU        string `json:"cpu,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu,omitempty"`
	Note       string `json:"note,omitempty"`
	// EngineMetrics is the post-capture snapshot of a small in-process
	// engine workload (see captureEngineMetrics): task counts and memo
	// hit/miss counters of the build the record was captured on.
	EngineMetrics map[string]float64 `json:"engine_metrics,omitempty"`
}

// BenchResult is one parsed benchmark line. AllocsPerOp/BytesPerOp are
// pointers so records of benchmarks run without -benchmem (or captured
// before allocation tracking) stay distinguishable from zero-alloc
// results.
type BenchResult struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func runBenchCapture(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "", "output JSON file (required)")
	pattern := fs.String("pattern", "", "benchmark regexp passed to -bench (required)")
	pkg := fs.String("pkg", ".", "package to benchmark")
	benchtime := fs.String("benchtime", "3x", "value passed to -benchtime")
	count := fs.Int("count", 1, "value passed to -count")
	desc := fs.String("desc", "", "description embedded in the record")
	note := fs.String("note", "", "host note embedded in the record")
	engineMetrics := fs.Bool("engine-metrics", true, "embed a post-run engine metrics snapshot in the host block")
	allowSingleCore := fs.Bool("allow-single-core", false, "record anyway on a single-core host (parallel rows will be meaningless)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" || *pattern == "" {
		return fmt.Errorf("both -out and -pattern are required")
	}

	// Single-core guard: the suite and wavefront benchmarks exist to
	// show parallel scaling, and a 1-CPU host cannot — every workers/
	// degree row collapses onto the serial number and the baseline
	// silently understates multi-core builds. Refuse unless the caller
	// explicitly owns that trade-off.
	if runtime.NumCPU() == 1 {
		if !*allowSingleCore {
			return fmt.Errorf("refusing to record on a single-core host (NumCPU=1): " +
				"parallel benchmark rows would be meaningless; pass -allow-single-core to record anyway")
		}
		fmt.Fprintln(os.Stderr, "genbench bench: WARNING: recording on a single-core host (NumCPU=1); "+
			"parallelism rows measure scheduling overhead only, not speedup — re-record on a multi-core host")
	}

	// Vet gate: a baseline captured from a tree that fails vet measures
	// code that will not survive review, so fail fast — and distinctly —
	// before burning benchmark time.
	vet := exec.Command("go", "vet", *pkg)
	vet.Stdout = os.Stderr
	vet.Stderr = os.Stderr
	fmt.Fprintln(os.Stderr, "genbench bench: running go vet", *pkg)
	if err := vet.Run(); err != nil {
		return fmt.Errorf("%w on %s: fix or suppress findings before capturing a baseline", errVet, *pkg)
	}

	cmdArgs := []string{"test", *pkg,
		"-run", "XXX",
		"-bench", *pattern,
		"-benchmem",
		"-benchtime", *benchtime,
		"-count", strconv.Itoa(*count),
	}
	cmd := exec.Command("go", cmdArgs...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Fprintln(os.Stderr, "genbench bench: running go", strings.Join(cmdArgs, " "))
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test: %w\n%s", err, buf.String())
	}

	// The recorded command is meant to be copy-pasted into a shell, so
	// the -bench regexp (which routinely contains `|`) must be quoted.
	quoted := append([]string(nil), cmdArgs...)
	for i, a := range quoted {
		if strings.ContainsAny(a, "|() *?$") {
			quoted[i] = "'" + a + "'"
		}
	}
	rec := &BenchRecord{
		Description: *desc,
		Recorded:    time.Now().Format("2006-01-02"),
		Command:     "go " + strings.Join(quoted, " "),
		Host: BenchHost{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			Note:       *note,
		},
	}
	if err := parseBenchOutput(&buf, rec); err != nil {
		return err
	}
	if len(rec.Results) == 0 {
		return fmt.Errorf("pattern %q matched no benchmarks:\n%s", *pattern, buf.String())
	}
	if *engineMetrics {
		em, err := captureEngineMetrics()
		if err != nil {
			return fmt.Errorf("engine metrics snapshot: %w", err)
		}
		rec.Host.EngineMetrics = em
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("recorded %d benchmark results → %s\n", len(rec.Results), *out)
	return nil
}

// captureEngineMetrics runs a tiny deterministic engine workload — the
// same (circuit, Tc) unit submitted twice, so the second submission
// exercises the result memo — and returns the non-zero counters of the
// engine's metrics snapshot. The record then carries the memo hit
// rates and task counts of the build it was captured on, alongside the
// timing numbers. Duration histograms are dropped: their sums are
// wall-clock noise, while the counters are exactly reproducible.
func captureEngineMetrics() (map[string]float64, error) {
	eng, err := pops.NewEngine(pops.EngineConfig{Workers: 2})
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	for range 2 {
		if _, err := eng.Optimize(ctx, pops.OptimizeRequest{Circuit: "c17", Ratio: 1.4}); err != nil {
			return nil, err
		}
	}
	out := make(map[string]float64)
	for k, v := range eng.MetricsSnapshot() {
		if v != 0 && !strings.Contains(k, "duration") {
			out[k] = v
		}
	}
	return out, nil
}

// parseBenchOutput scans `go test -bench` output: header lines (goos,
// goarch, cpu) feed the host block; each "BenchmarkX-N  iters  v unit
// [v unit]..." line becomes one BenchResult. Repeated names (-count>1)
// are kept as separate entries in run order.
func parseBenchOutput(buf *bytes.Buffer, rec *BenchRecord) error {
	sc := bufio.NewScanner(buf)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rec.Host.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rec.Host.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rec.Host.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix go test appends to the name.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkX ... FAIL" shapes
		}
		res := BenchResult{Name: name, Iterations: iters}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return fmt.Errorf("parsing %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				b := v
				res.BytesPerOp = &b
			case "allocs/op":
				a := v
				res.AllocsPerOp = &a
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		rec.Results = append(rec.Results, res)
	}
	return sc.Err()
}
