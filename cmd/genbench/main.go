// Command genbench exports the synthetic benchmark suite as ISCAS'85
// .bench files, so the circuits used by the experiments can be fed to
// external tools (or diffed across versions — generation is
// deterministic), and captures Go benchmark runs — including -benchmem
// allocation counters — into the repository's BENCH_*.json records.
//
// Usage:
//
//	genbench [-out bench] [-seed 0] [name ...]
//	genbench bench -out BENCH_x.json -pattern 'BenchmarkX' [-pkg .]
//	         [-benchtime 3x] [-count 1] [-desc "..."] [-note "..."]
//	         [-allow-single-core]
//
// With no names, the whole suite plus c17 and rca16 is exported. The
// bench subcommand shells out to `go test -bench <pattern> -benchmem`,
// parses every result line (ns/op, B/op, allocs/op and custom metrics)
// plus the host header, and writes the JSON record whose exact command
// line is embedded in the file for reproduction.
//
// The bench subcommand runs `go vet` on the target package before
// benchmarking and exits with code 3 on findings — distinct from the
// generic exit 1 — so bench harnesses fail fast on lint errors instead
// of recording a baseline from a tree that will not survive review. On
// a single-core host (runtime.NumCPU() == 1) it refuses to record at
// all — workers/parallelism rows would collapse onto the serial number
// and silently understate multi-core builds — unless
// -allow-single-core is passed, in which case it records under a loud
// stderr warning and stamps num_cpu into the host block.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/iscas"
	"repro/internal/netlist"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "bench" {
		if err := runBenchCapture(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "genbench bench:", err)
			if errors.Is(err, errVet) {
				os.Exit(3)
			}
			os.Exit(1)
		}
		return
	}
	out := flag.String("out", "bench", "output directory")
	seed := flag.Int64("seed", 0, "generator seed override for suite circuits")
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		for _, s := range iscas.Suite() {
			names = append(names, s.Name)
		}
		names = append(names, "c17", "rca16")
	}
	if err := run(*out, *seed, names); err != nil {
		fmt.Fprintln(os.Stderr, "genbench:", err)
		os.Exit(1)
	}
}

func run(outDir string, seed int64, names []string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	for _, name := range names {
		var c *pops.Circuit
		var err error
		if spec, specErr := iscas.ByName(name); specErr == nil && seed != 0 {
			spec.Seed = seed
			c, err = iscas.Generate(spec)
		} else {
			c, err = pops.Benchmark(name)
		}
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, name+".bench")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := netlist.WriteBench(f, c); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		st := c.Stats()
		fmt.Printf("%-10s %5d gates → %s\n", name, st.Gates, path)
	}
	return nil
}
