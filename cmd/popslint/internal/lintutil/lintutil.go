// Package lintutil carries the small type- and AST-inspection helpers
// shared by popslint's analyzers.
package lintutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// NamedFrom reports the named type behind t (unwrapping pointers and
// aliases), or nil.
func NamedFrom(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// IsNamed reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := NamedFrom(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// HasDirective reports whether the declaration's doc comment contains
// the //pops:<name> directive, returning its trailing text.
func HasDirective(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	prefix := "//pops:" + name
	for _, c := range doc.List {
		if c.Text == prefix {
			return "", true
		}
		if rest, ok := strings.CutPrefix(c.Text, prefix+" "); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// CalleeFunc resolves the *types.Func a call expression invokes
// (function, method, or nil for builtins, conversions and indirect
// calls through variables).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// LookupInterface finds the named interface pkgPath.name among the
// packages the analyzed package imports (directly or indirectly), or
// in the package itself.
func LookupInterface(pkg *types.Package, pkgPath, name string) *types.Interface {
	var scope *types.Scope
	if pkg.Path() == pkgPath {
		scope = pkg.Scope()
	} else {
		for _, imp := range allImports(pkg, map[*types.Package]bool{}) {
			if imp.Path() == pkgPath {
				scope = imp.Scope()
				break
			}
		}
	}
	if scope == nil {
		return nil
	}
	obj, ok := scope.Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	iface, _ := types.Unalias(obj.Type().Underlying()).(*types.Interface)
	return iface
}

func allImports(pkg *types.Package, seen map[*types.Package]bool) []*types.Package {
	var out []*types.Package
	for _, imp := range pkg.Imports() {
		if seen[imp] {
			continue
		}
		seen[imp] = true
		out = append(out, imp)
		out = append(out, allImports(imp, seen)...)
	}
	return out
}
