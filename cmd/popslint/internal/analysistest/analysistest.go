// Package analysistest runs an analyzer over golden fixture packages
// and checks its diagnostics against // want comments, mirroring the
// x/tools package of the same name on the standard library alone.
//
// Fixtures live in GOPATH-style trees under the analyzer's own
// directory: testdata/src/<import/path>/*.go. Imports between fixture
// packages resolve inside the same tree, so a fixture can fake the
// repository packages an analyzer is gated on (repro/internal/netlist,
// …) — and even standard-library names like fmt — without touching the
// network or GOROOT.
//
// A want comment asserts a diagnostic on its line:
//
//	n.Fanout = nil // want `structural netlist write`
//
// Each string is a regular expression (quoted or backquoted); several
// on one line assert several diagnostics. Every reported diagnostic
// must match a want on its line and every want must be matched —
// either direction failing fails the test.
//
// Diagnostics pass through the same //popslint:ignore filtering as
// production runs, so suppression fixtures assert silence simply by
// carrying no want.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"popslint/internal/analysis"
)

// Run loads each fixture package and checks the analyzer's filtered
// diagnostics against the fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	for _, path := range importPaths {
		t.Run(path, func(t *testing.T) {
			runOne(t, a, path)
		})
	}
}

func runOne(t *testing.T, a *analysis.Analyzer, importPath string) {
	t.Helper()
	ld := &loader{
		fset: token.NewFileSet(),
		root: filepath.Join("testdata", "src"),
		pkgs: map[string]*loaded{},
	}
	lp, err := ld.load(importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}
	pass := &analysis.Pass{Fset: ld.fset, Files: lp.files, Pkg: lp.pkg, TypesInfo: lp.info}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, pass)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, importPath, err)
	}
	checkWants(t, ld.fset, lp.files, diags)
}

// loaded is one typechecked fixture package.
type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	fset *token.FileSet
	root string
	pkgs map[string]*loaded
}

// load parses and typechecks testdata/src/<path>, resolving its
// imports recursively through the same tree.
func (l *loader) load(path string) (*loaded, error) {
	if lp, ok := l.pkgs[path]; ok {
		if lp == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return lp, nil
	}
	l.pkgs[path] = nil // cycle marker
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{Importer: importerFunc(func(p string) (*types.Package, error) {
		lp, err := l.load(p)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	})}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loaded{pkg: pkg, files: files, info: info}
	l.pkgs[path] = lp
	return lp, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// checkWants cross-matches diagnostics against want comments.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				patterns, err := splitPatterns(m[1])
				if err != nil {
					t.Errorf("%s: bad want comment: %v", pos, err)
					continue
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, p, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// splitPatterns parses the quoted or backquoted regexp strings of a
// want comment.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"', '`':
			end := strings.IndexByte(s[1:], s[0])
			if end < 0 {
				return nil, fmt.Errorf("unterminated pattern in %q", s)
			}
			lit := s[:end+2]
			p, err := strconv.Unquote(lit)
			if err != nil {
				return nil, fmt.Errorf("unquoting %q: %v", lit, err)
			}
			out = append(out, p)
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("pattern must be quoted: %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
