// Package unit implements the `go vet -vettool` driver protocol
// (the x/tools "unitchecker" contract) on the standard library alone:
// cmd/go hands the tool a JSON config describing one compilation unit —
// file lists, the import map, and the export-data file of every
// dependency — and expects diagnostics on stderr (exit 2) or a JSON
// tree on stdout with -json. Imports are satisfied from the compiler
// export data cmd/go already produced, via go/importer's lookup hook,
// so no package is ever re-typechecked from source.
//
// popslint's analyzers are factless, so the facts output file
// (VetxOutput) is written empty, and fact-only invocations (VetxOnly,
// used by cmd/go for dependencies of the named packages) return
// immediately without analyzing.
package unit

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"popslint/internal/analysis"
)

// Config is the JSON schema of the file cmd/go passes as the sole
// positional argument (mirrors x/tools' unitchecker.Config; unused
// fields are accepted and ignored by encoding/json).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// JSONDiagnostic is the per-finding shape of -json output (matching
// the x/tools driver so downstream tooling can consume either).
type JSONDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// Run processes one vet.cfg invocation and returns the process exit
// code: 0 for success (including -json with findings), 2 when plain
// diagnostics were reported, 1 on operational errors (which are
// printed to stderr).
func Run(cfgPath string, analyzers []*analysis.Analyzer, jsonOut bool, stdout, stderr io.Writer) int {
	cfg, err := readConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "popslint: %v\n", err)
		return 1
	}
	// The facts file must exist for cmd/go to cache the unit; popslint
	// has none, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(stderr, "popslint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	pass, err := typecheck(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "popslint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, err := analysis.Run(analyzers, pass)
	if err != nil {
		fmt.Fprintf(stderr, "popslint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if jsonOut {
		return writeJSON(cfg, pass, diags, stdout, stderr)
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s: %s\n", pass.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := &Config{}
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %v", path, err)
	}
	return cfg, nil
}

// typecheck parses the unit's files and typechecks them against the
// export data of the already-compiled dependencies.
func typecheck(cfg *Config) (*analysis.Pass, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// Resolve the source-level import path through the unit's map
		// (vendoring, test variants) to the canonical path, then to the
		// export file cmd/go compiled for it.
		canonical, ok := cfg.ImportMap[path]
		if !ok {
			canonical = path
		}
		file, ok := cfg.PackageFile[canonical]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer:  compilerImporter,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		Error:     func(error) {}, // collect as many errors as possible; first one is returned below
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &analysis.Pass{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

func writeJSON(cfg *Config, pass *analysis.Pass, diags []analysis.Diagnostic, stdout, stderr io.Writer) int {
	byAnalyzer := make(map[string][]JSONDiagnostic)
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], JSONDiagnostic{
			Posn:    pass.Fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	tree := map[string]map[string][]JSONDiagnostic{cfg.ImportPath: byAnalyzer}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(tree); err != nil {
		fmt.Fprintf(stderr, "popslint: %v\n", err)
		return 1
	}
	return 0
}
