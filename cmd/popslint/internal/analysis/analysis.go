// Package analysis is a dependency-free subset of the
// golang.org/x/tools/go/analysis API: just enough structure — Analyzer,
// Pass, Diagnostic — for popslint's project-specific checkers to be
// written in the standard shape, so they can be ported onto the real
// framework mechanically if the x/tools dependency ever becomes
// available to this build environment.
//
// The package also owns the repository's suppression grammar: a
// finding is silenced by a
//
//	//popslint:ignore <analyzer> <justification>
//
// comment trailing the offending line or preceding the offending
// statement/declaration (where it covers the whole statement,
// including any nested block). The justification is mandatory: an
// ignore directive without one is itself reported, so every deliberate
// exception in the tree documents why it is safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, enable flags and
	// ignore directives.
	Name string
	// Doc is the one-paragraph description printed by -help.
	Doc string
	// Run executes the check over one package, reporting findings
	// through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// InTestFile reports whether pos lies in a _test.go file. The popslint
// contract applies to production code; tests deliberately build broken
// circuits, allocate freely and construct recorders without guards.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ignoreRe parses a suppression directive. Anchored to the start of
// the comment so prose *mentioning* the directive is not one; the
// analyzer name comes first so a line carrying findings of two checks
// can silence them independently.
var ignoreRe = regexp.MustCompile(`^//popslint:ignore\s+(\S+)\s*(.*)`)

// ignoreDirective is one parsed //popslint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	line     int
	pos      token.Pos
}

// Run executes the analyzers over the package and returns the
// surviving diagnostics: findings covered by a well-formed ignore
// directive for their analyzer are dropped, and malformed directives
// (missing justification) are reported as findings of their own. The
// result is sorted by position.
func Run(analyzers []*Analyzer, pass *Pass) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		sub := &Pass{
			Analyzer:  a,
			Fset:      pass.Fset,
			Files:     pass.Files,
			Pkg:       pass.Pkg,
			TypesInfo: pass.TypesInfo,
		}
		if err := a.Run(sub); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		diags = append(diags, sub.diagnostics...)
	}
	diags = filterIgnored(pass, diags)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// filterIgnored applies the suppression directives of every file to
// the collected diagnostics.
func filterIgnored(pass *Pass, diags []Diagnostic) []Diagnostic {
	type span struct {
		analyzer   string
		file       string
		start, end int // line range covered
	}
	var spans []span
	for _, f := range pass.Files {
		var directives []ignoreDirective
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				reason := m[2]
				// The justification ends at an embedded comment marker, so
				// tooling (like the fixture runner's want assertions) can
				// trail the directive.
				if i := strings.Index(reason, "//"); i == 0 {
					reason = ""
				} else if i > 0 && reason[i-1] == ' ' {
					reason = reason[:i]
				}
				d := ignoreDirective{
					analyzer: m[1],
					reason:   strings.TrimSpace(reason),
					line:     pass.Fset.Position(c.Pos()).Line,
					pos:      c.Pos(),
				}
				if d.reason == "" {
					diags = append(diags, Diagnostic{
						Pos:      d.pos,
						Message:  "popslint:ignore requires a justification: //popslint:ignore <analyzer> <why this is safe>",
						Analyzer: d.analyzer,
					})
					continue
				}
				directives = append(directives, d)
			}
		}
		if len(directives) == 0 {
			continue
		}
		// A directive covers its own line, and the full extent of any
		// statement or declaration that begins on its line or the next —
		// so a comment above an if-statement silences the whole branch.
		for _, d := range directives {
			covered := span{
				analyzer: d.analyzer,
				file:     pass.Fset.Position(d.pos).Filename,
				start:    d.line,
				end:      d.line,
			}
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					return false
				}
				switch n.(type) {
				case ast.Stmt, ast.Decl:
					start := pass.Fset.Position(n.Pos()).Line
					if start == d.line || start == d.line+1 {
						if end := pass.Fset.Position(n.End()).Line; end > covered.end {
							covered.end = end
						}
					}
				}
				return true
			})
			spans = append(spans, covered)
		}
	}
	if len(spans) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := pass.Fset.Position(d.Pos)
		suppressed := false
		for _, s := range spans {
			if s.analyzer == d.Analyzer && s.file == pos.Filename && pos.Line >= s.start && pos.Line <= s.end {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}
