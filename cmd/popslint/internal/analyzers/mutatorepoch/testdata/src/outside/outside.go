// Package outside exercises the out-of-package rule: structural fields
// of the netlist are written only through its mutators.
package outside

import "repro/internal/netlist"

// Rewire writes structure directly from outside the package.
func Rewire(n, d *netlist.Node, pin int) {
	n.Fanin[pin] = d // want `direct write to netlist.Node.Fanin`
}

// Grow appends to a fanout list directly.
func Grow(n, f *netlist.Node) {
	n.Fanout = append(n.Fanout, f) // want `direct write to netlist.Node.Fanout`
}

// Retype goes through the package mutator: fine.
func Retype(c *netlist.Circuit, n *netlist.Node) {
	c.GoodReplaceType(n, netlist.TypeNand)
}

// SetSize writes exempt electrical fields: fine.
func SetSize(n *netlist.Node) {
	n.CIn = 2.0
	n.Vt = 1
}
