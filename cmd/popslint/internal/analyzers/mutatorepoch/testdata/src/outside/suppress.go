package outside

import "repro/internal/netlist"

// Transplant documents a justified exception: the finding is
// suppressed, so no diagnostic survives.
func Transplant(n, d *netlist.Node) {
	//popslint:ignore mutatorepoch scaffolding circuit is rebuilt from scratch before any analysis
	n.Fanin[0] = d
}

// MissingWhy carries a directive without a justification: the
// directive itself is reported and the finding is not suppressed.
func MissingWhy(n, d *netlist.Node) {
	//popslint:ignore mutatorepoch // want `requires a justification`
	n.Fanin[0] = d // want `direct write to netlist.Node.Fanin`
}
