package netlist

// GoodReplaceType bumps on its only return path.
func (c *Circuit) GoodReplaceType(n *Node, t NodeType) {
	n.Type = t
	c.MarkMutated()
}

// BadReplaceType writes structure and falls off without a bump.
func (c *Circuit) BadReplaceType(n *Node, t NodeType) { // want `writes netlist structure but can return without MarkMutated`
	n.Type = t
}

// BadEarlyReturn bumps at the end but can leave dirty through the
// early return.
func (c *Circuit) BadEarlyReturn(n *Node, t NodeType, stop bool) {
	n.Type = t
	if stop {
		return // want `return after structural netlist write without MarkMutated`
	}
	c.MarkMutated()
}

// GoodGuardedWrite writes and bumps inside the same branch; the
// untouched path needs no bump.
func (c *Circuit) GoodGuardedWrite(n *Node, t NodeType, cond bool) {
	if cond {
		n.Type = t
		c.MarkMutated()
	}
}

// GoodEarlyReturn returns before any write.
func (c *Circuit) GoodEarlyReturn(n, d *Node, pin int) bool {
	if pin >= len(n.Fanin) {
		return false
	}
	n.Fanin[pin] = d
	c.MarkMutated()
	return true
}

// removeNode is an in-package bumper.
func (c *Circuit) removeNode(n *Node) {
	delete(c.byName, n.Name)
	c.MarkMutated()
}

// GoodTransitive bumps through removeNode.
func (c *Circuit) GoodTransitive(n *Node) bool {
	if len(n.Fanout) != 0 {
		return false
	}
	c.removeNode(n)
	return true
}

// removeFromFanout is a structural helper whose callers own the bump.
//
//pops:mutates callers batch rewires and bump once
func removeFromFanout(n, target *Node) {
	keep := n.Fanout[:0]
	for _, f := range n.Fanout {
		if f != target {
			keep = append(keep, f)
		}
	}
	n.Fanout = keep
}

// GoodHelperCaller bumps after using the helper.
func (c *Circuit) GoodHelperCaller(n *Node) {
	removeFromFanout(n.Fanin[0], n)
	c.MarkMutated()
}

// BadHelperCaller uses the //pops:mutates helper and never bumps.
func (c *Circuit) BadHelperCaller(n *Node) { // want `writes netlist structure but can return without MarkMutated`
	removeFromFanout(n.Fanin[0], n)
}

// GoodBumpFirst bumps before the registry writes (the addNode
// pattern): once the epoch moved on a path, later writes on the same
// path are covered.
func (c *Circuit) GoodBumpFirst(n *Node) {
	c.MarkMutated()
	c.Nodes = append(c.Nodes, n)
	c.Inputs = append(c.Inputs, n)
}

// SetElectrical writes exempt electrical state; the epoch contract
// repairs sizes and thresholds incrementally, so no bump is required.
func (c *Circuit) SetElectrical(n *Node, vt uint8) {
	n.Vt = vt
	n.CIn = 1.5
}
