// Package netlist is a fixture mirror of repro/internal/netlist: the
// same type shapes and epoch contract, reduced to what mutatorepoch
// inspects.
package netlist

type NodeType uint8

const (
	TypeInv NodeType = iota
	TypeNand
)

type Node struct {
	ID     int
	Name   string
	Type   NodeType
	Fanin  []*Node
	Fanout []*Node
	CIn    float64
	Vt     uint8
}

type Circuit struct {
	Name    string
	Nodes   []*Node
	Inputs  []*Node
	Outputs []*Node
	byName  map[string]*Node
	epoch   uint64
}

// MarkMutated advances the structural epoch.
func (c *Circuit) MarkMutated() { c.epoch++ }

// Epoch returns the structural epoch.
func (c *Circuit) Epoch() uint64 { return c.epoch }
