// Package mutatorepoch enforces the repository's stale-analysis
// discipline (the PR-3 bug class): every structural mutation of a
// netlist must be visible to the incremental-STA epoch.
//
// Inside repro/internal/netlist, any function that writes structural
// state — Node.Fanin, Node.Fanout, Node.Type, or the Circuit node
// registries (Nodes, Inputs, Outputs, byName) — must bump the mutation
// epoch on every return path that performed a write: directly
// (MarkMutated, epoch arithmetic), or by calling another function of
// the package that bumps it. Size and Vt fields (CIn, CWire, Vt) are
// exempt by the documented epoch contract: they perturb timing values,
// not structure, and sessions repair them incrementally.
//
// A structural helper whose callers own the bump (batch rewires)
// declares it with a //pops:mutates directive on its doc comment: the
// helper's own body is excused, and every call to it counts as a
// structural write at the call site instead.
//
// Outside the netlist package, writing those fields directly is
// forbidden outright — callers must go through the Circuit mutators
// (InsertCell, SpliceInput, RewirePin, ReplaceType, BypassInverter,
// RemoveIfDead, …) — because a direct rewire silently invalidates
// every cached analysis of the circuit.
package mutatorepoch

import (
	"go/ast"
	"go/types"

	"popslint/internal/analysis"
	"popslint/internal/lintutil"
)

// NetlistPath is the package that owns circuit structure.
const NetlistPath = "repro/internal/netlist"

// Structural field sets. Keys are field names on netlist.Node and
// netlist.Circuit respectively.
var (
	nodeStructFields = map[string]bool{"Fanin": true, "Fanout": true, "Type": true}
	circStructFields = map[string]bool{"Nodes": true, "Inputs": true, "Outputs": true, "byName": true}
)

var Analyzer = &analysis.Analyzer{
	Name: "mutatorepoch",
	Doc:  "structural netlist mutations must bump the circuit epoch (MarkMutated); only internal/netlist may rewire structure directly",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == NetlistPath {
		runInside(pass)
	} else {
		runOutside(pass)
	}
	return nil
}

// ---- outside internal/netlist: no direct structural writes ----

func runOutside(pass *analysis.Pass) {
	for _, f := range pass.Files {
		if len(f.Decls) > 0 && pass.InTestFile(f.Decls[0].Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					if name, field, ok := structuralTarget(pass, lhs); ok {
						pass.Reportf(lhs.Pos(),
							"direct write to netlist.%s.%s outside %s: use a Circuit mutator (RewirePin, InsertCell, SpliceInput, ReplaceType, …) so the structural epoch moves",
							name, field, NetlistPath)
					}
				}
			case *ast.IncDecStmt:
				if name, field, ok := structuralTarget(pass, st.X); ok {
					pass.Reportf(st.Pos(), "direct write to netlist.%s.%s outside %s", name, field, NetlistPath)
				}
			case *ast.CallExpr:
				if name, field, ok := deleteTarget(pass, st); ok {
					pass.Reportf(st.Pos(), "direct delete from netlist.%s.%s outside %s", name, field, NetlistPath)
				}
			}
			return true
		})
	}
}

// structuralTarget reports whether the assignable expression writes a
// structural field of netlist.Node or netlist.Circuit, unwrapping
// index expressions (n.Fanin[i] = …) and parens.
func structuralTarget(pass *analysis.Pass, e ast.Expr) (typeName, field string, ok bool) {
	e = ast.Unparen(e)
	if ix, isIndex := e.(*ast.IndexExpr); isIndex {
		e = ast.Unparen(ix.X)
	}
	sel, isSel := e.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	base := pass.TypesInfo.TypeOf(sel.X)
	switch {
	case lintutil.IsNamed(base, NetlistPath, "Node") && nodeStructFields[sel.Sel.Name]:
		return "Node", sel.Sel.Name, true
	case lintutil.IsNamed(base, NetlistPath, "Circuit") && (circStructFields[sel.Sel.Name] || sel.Sel.Name == "epoch"):
		return "Circuit", sel.Sel.Name, true
	}
	return "", "", false
}

// deleteTarget matches delete(c.byName, …) style builtin calls on
// structural maps.
func deleteTarget(pass *analysis.Pass, call *ast.CallExpr) (typeName, field string, ok bool) {
	id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
	if !isIdent || id.Name != "delete" || len(call.Args) != 2 {
		return "", "", false
	}
	if b, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "delete" {
		return "", "", false
	}
	return structuralTarget(pass, call.Args[0])
}

// ---- inside internal/netlist: every writing return path must bump ----

func runInside(pass *analysis.Pass) {
	// First pass: classify every function of the package — does it bump
	// the epoch directly, and is it a declared //pops:mutates helper?
	bumpers := map[*types.Func]bool{}
	mutates := map[*types.Func]bool{}
	type fn struct {
		decl *ast.FuncDecl
		obj  *types.Func
	}
	var fns []fn
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, fn{fd, obj})
			if _, ok := lintutil.HasDirective(fd.Doc, "mutates"); ok {
				mutates[obj] = true
			}
			if directBump(pass, fd.Body) {
				bumpers[obj] = true
			}
		}
	}
	// Transitive closure: calling a bumper bumps.
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			if bumpers[f.obj] {
				continue
			}
			found := false
			ast.Inspect(f.decl.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := lintutil.CalleeFunc(pass.TypesInfo, call); callee != nil && bumpers[callee] {
						found = true
					}
				}
				return true
			})
			if found {
				bumpers[f.obj] = true
				changed = true
			}
		}
	}

	for _, f := range fns {
		if mutates[f.obj] {
			continue // helper: callers own the bump
		}
		checkReturnPaths(pass, f.decl, bumpers, mutates)
	}
}

// directBump reports whether the body textually bumps the epoch: a
// MarkMutated call on a Circuit, or arithmetic on the epoch field.
func directBump(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch st := n.(type) {
		case *ast.CallExpr:
			if isMarkMutated(pass, st) {
				found = true
			}
		case *ast.IncDecStmt:
			if isEpochField(pass, st.X) {
				found = true
			}
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if isEpochField(pass, lhs) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func isMarkMutated(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "MarkMutated" {
		return false
	}
	return lintutil.IsNamed(pass.TypesInfo.TypeOf(sel.X), NetlistPath, "Circuit")
}

func isEpochField(pass *analysis.Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "epoch" {
		return false
	}
	return lintutil.IsNamed(pass.TypesInfo.TypeOf(sel.X), NetlistPath, "Circuit")
}

// pathState is the abstract state of the return-path walk. A path is
// dirty when a structural write happened before any epoch bump; once
// the epoch has moved on a path, later writes on the same path are
// covered (the epoch already differs from what any observer cached
// before the mutator ran — the contract is between protocol steps,
// not mid-mutation).
type pathState struct {
	bumped     bool // the epoch has moved on this path
	dirty      bool // a structural write preceded any bump
	terminated bool // the path ended (return / panic)
}

func merge(a, b pathState) pathState {
	switch {
	case a.terminated && b.terminated:
		return pathState{terminated: true}
	case a.terminated:
		return b
	case b.terminated:
		return a
	}
	return pathState{bumped: a.bumped && b.bumped, dirty: a.dirty || b.dirty}
}

// checkReturnPaths walks the function body tracking, per path, a
// single "dirty" bit: a structural write happened and the epoch has
// not moved since. Every return (and fall-off) reached dirty is
// reported. The walk is a conservative approximation: branches merge
// by union of dirtiness, a statement containing both a write and a
// bump counts as covered, and break/continue paths are not tracked to
// their targets.
func checkReturnPaths(pass *analysis.Pass, fd *ast.FuncDecl, bumpers, mutates map[*types.Func]bool) {
	w := &walker{pass: pass, fd: fd, bumpers: bumpers, mutates: mutates}
	end := w.stmts(fd.Body.List, pathState{})
	if !end.terminated && end.dirty {
		pass.Reportf(fd.Name.Pos(),
			"%s writes netlist structure but can return without MarkMutated: incremental STA would go stale",
			fd.Name.Name)
	}
}

type walker struct {
	pass     *analysis.Pass
	fd       *ast.FuncDecl
	bumpers  map[*types.Func]bool
	mutates  map[*types.Func]bool
	reported bool // one report per function keeps the output readable
}

func (w *walker) stmts(list []ast.Stmt, st pathState) pathState {
	for _, s := range list {
		st = w.stmt(s, st)
		if st.terminated {
			break
		}
	}
	return st
}

func (w *walker) stmt(s ast.Stmt, st pathState) pathState {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.ReturnStmt:
		st = w.scan(s, st)
		if st.dirty && !w.reported {
			w.reported = true
			w.pass.Reportf(s.Pos(),
				"return after structural netlist write without MarkMutated in %s: incremental STA would go stale",
				w.fd.Name.Name)
		}
		st.terminated = true
		return st
	case *ast.IfStmt:
		if s.Init != nil {
			st = w.scan(s.Init, st)
		}
		st = w.scan(s.Cond, st)
		then := w.stmt(s.Body, st)
		alt := st
		if s.Else != nil {
			alt = w.stmt(s.Else, st)
		}
		return merge(then, alt)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.branches(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			st = w.scan(s.Init, st)
		}
		if s.Cond != nil {
			st = w.scan(s.Cond, st)
		}
		body := w.stmt(s.Body, st)
		if s.Post != nil && !body.terminated {
			body = w.scan(s.Post, body)
		}
		// Zero iterations leave st; one or more leave the body's state.
		return merge(st, body)
	case *ast.RangeStmt:
		st = w.scan(s.X, st)
		body := w.stmt(s.Body, st)
		return merge(st, body)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto leave this path; treat as terminated so
		// they do not force a merge penalty on the fallthrough path.
		st.terminated = true
		return st
	case *ast.ExprStmt:
		st = w.scan(s, st)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isPanic(w.pass, call) {
			st.terminated = true
		}
		return st
	default:
		return w.scan(s, st)
	}
}

// branches merges the clause bodies of a switch/select, including the
// implicit empty branch when there is no default clause.
func (w *walker) branches(s ast.Stmt, st pathState) pathState {
	var clauses []ast.Stmt
	hasDefault := false
	collect := func(body []ast.Stmt, isDefault bool) {
		clauses = append(clauses, &ast.BlockStmt{List: body})
		hasDefault = hasDefault || isDefault
	}
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = w.scan(s.Init, st)
		}
		if s.Tag != nil {
			st = w.scan(s.Tag, st)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				st = w.scan(e, st)
			}
			collect(cc.Body, cc.List == nil)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = w.scan(s.Init, st)
		}
		st = w.scan(s.Assign, st)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			collect(cc.Body, cc.List == nil)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				st = w.scan(cc.Comm, st)
			}
			collect(cc.Body, cc.Comm == nil)
		}
	}
	if len(clauses) == 0 {
		return st
	}
	out := w.stmt(clauses[0], st)
	for _, c := range clauses[1:] {
		out = merge(out, w.stmt(c, st))
	}
	if !hasDefault {
		out = merge(out, st)
	}
	return out
}

// scan folds the write/bump events contained in one leaf node into the
// dirty bit. A bump anywhere in the node covers writes in the same
// node (order within a single statement is not tracked).
func (w *walker) scan(n ast.Node, st pathState) pathState {
	hasWrite, hasBump := false, false
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // separate execution context
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if isEpochField(w.pass, lhs) {
					hasBump = true
				} else if _, _, ok := structuralTarget(w.pass, lhs); ok {
					hasWrite = true
				}
			}
		case *ast.IncDecStmt:
			if isEpochField(w.pass, x.X) {
				hasBump = true
			} else if _, _, ok := structuralTarget(w.pass, x.X); ok {
				hasWrite = true
			}
		case *ast.CallExpr:
			switch {
			case isMarkMutated(w.pass, x):
				hasBump = true
			default:
				if _, _, ok := deleteTarget(w.pass, x); ok {
					hasWrite = true
				}
				if callee := lintutil.CalleeFunc(w.pass.TypesInfo, x); callee != nil {
					if w.bumpers[callee] {
						hasBump = true
					}
					if w.mutates[callee] {
						hasWrite = true
					}
				}
			}
		}
		return true
	})
	switch {
	case hasBump:
		st.bumped = true
		st.dirty = false
	case hasWrite:
		if !st.bumped {
			st.dirty = true
		}
	}
	return st
}

func isPanic(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
