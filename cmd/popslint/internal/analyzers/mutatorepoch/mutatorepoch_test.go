package mutatorepoch

import (
	"testing"

	"popslint/internal/analysistest"
)

func TestMutatorepoch(t *testing.T) {
	analysistest.Run(t, Analyzer, "repro/internal/netlist", "outside")
}
