// Package report is outside maporder's result-affecting scope: the
// same shuffle-leaking shapes stay silent here.
package report

func scanUnsorted(m map[string][]byte) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func sumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}
