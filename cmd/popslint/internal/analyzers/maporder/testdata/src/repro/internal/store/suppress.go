package store

// suppressed shows the generic escape hatch; //pops:orderindep is
// preferred for this analyzer, but the budgeted ignore also works.
func suppressed(m map[string]int) string {
	var last string
	for k := range m {
		//popslint:ignore maporder debug helper, output never reaches a golden
		last = k
	}
	return last
}
