// Package store exercises maporder in a result-affecting package.
package store

import "sort"

// scanSorted is the blessed collect-then-sort idiom: silent.
func scanSorted(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// scanUnsorted leaks the shuffle straight into the returned slice.
func scanUnsorted(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // want `append to keys inside map iteration without a later sort`
	}
	return keys
}

// sumFloats makes the rounding sequence follow the shuffle.
func sumFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `floating-point accumulation into total inside map iteration`
	}
	return total
}

// joinKeys concatenates in shuffle order.
func joinKeys(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string concatenation into s inside map iteration`
	}
	return s
}

// firstOver returns whichever qualifying element the shuffle visits
// first.
func firstOver(m map[string]int, limit int) (string, int) {
	for k, v := range m {
		if v > limit {
			return k, v // want `return inside map iteration carries the iteration variables`
		}
	}
	return "", 0
}

// lastWriter keeps whichever element the shuffle visits last.
func lastWriter(m map[string]int) string {
	var last string
	for k := range m {
		last = k // want `assignment to last from the iteration variables inside map iteration`
	}
	return last
}

// orderIndependent shows every exempt effect: map-to-map transfer,
// delete, integer counting, and flag setting.
func orderIndependent(m map[string]int, drop string) (map[string]int, int, bool) {
	out := make(map[string]int, len(m))
	n := 0
	seen := false
	for k, v := range m {
		out[k] = v
		n += v
		n++
		if k == drop {
			seen = true
		}
		delete(m, k)
	}
	return out, n, seen
}

// annotated carries a reviewed order-independence invariant.
func annotated(m map[string]float64) float64 {
	worst := 0.0
	//pops:orderindep max over strict comparison; ties carry equal values, no element wins
	for _, v := range m {
		if v > worst {
			worst = v // still an order-dependent shape, but the annotation vouches for it
		}
	}
	return worst
}

// bareAnnotation forgets the reason: the directive itself is reported
// and does not suppress.
func bareAnnotation(m map[string]int) string {
	var last string
	//pops:orderindep // want `//pops:orderindep requires a reason`
	for k := range m {
		last = k // want `assignment to last from the iteration variables inside map iteration`
	}
	return last
}
