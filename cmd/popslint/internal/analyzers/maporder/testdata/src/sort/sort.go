// Package sort is a fixture mirror of the determinizer shapes.
package sort

func Strings(x []string)                            {}
func Ints(x []int)                                  {}
func Slice(x interface{}, less func(i, j int) bool) {}
