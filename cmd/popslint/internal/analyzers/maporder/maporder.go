// Package maporder polices Go's deliberately randomized map iteration
// order in the packages whose outputs are pinned by byte-identity
// goldens. A `for k := range m` whose body's effect reaches a returned
// value or an accumulator makes the result depend on the runtime's
// per-iteration shuffle — the protocol's determinism contract (same
// input, same bytes, every run, every degree) cannot survive that.
//
// Within the result-affecting packages (core, sta, power, sizing,
// leakage, engine, store, logic) the analyzer flags, inside a map
// range body:
//
//   - append to a variable declared outside the loop, unless the
//     accumulator is later passed to a sort.*/slices.* call in the
//     same function (the collect-then-sort idiom store.Scan uses);
//   - a return statement whose values mention the iteration
//     variables: which element wins depends on the shuffle;
//   - floating-point or string accumulation (+=) into outer state:
//     fp addition is not associative and string concat is not
//     commutative, so iteration order changes the bytes;
//   - plain assignment to an outer variable whose right-hand side
//     mentions the iteration variables: last writer wins, and the
//     shuffle picks the last writer.
//
// Order-independent effects stay silent: writes into another map,
// delete, integer counters (+=/++ on integer types — associative and
// commutative), and assignments that do not involve the iteration
// variables (found = true).
//
// A site whose order-independence the analyzer cannot see can be
// annotated on the line of — or the line before — the range statement:
//
//	//pops:orderindep <reason>
//
// The reason is mandatory; a bare annotation is itself reported. The
// annotation asserts a reviewed invariant ("all keys are compared for
// exact equality, no element wins over another"), which is stronger
// than a //popslint:ignore suppression and therefore preferred for
// this analyzer.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"popslint/internal/analysis"
	"popslint/internal/lintutil"
)

// scopedPkgs are the result-affecting packages: only these are
// audited. Map iteration in obs, report formatting, CLI glue, … is
// free to be lazy about order.
var scopedPkgs = map[string]bool{
	"repro/internal/core":    true,
	"repro/internal/sta":     true,
	"repro/internal/power":   true,
	"repro/internal/sizing":  true,
	"repro/internal/leakage": true,
	"repro/internal/engine":  true,
	"repro/internal/store":   true,
	"repro/internal/logic":   true,
}

// sortPkgs provide the blessed determinizers for collect-then-sort.
var sortPkgs = map[string]bool{"sort": true, "slices": true}

var directiveRe = regexp.MustCompile(`^//pops:orderindep(\s+(.*))?$`)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "map iteration whose effect flows into a returned value or accumulator needs an intervening sort or a //pops:orderindep annotation",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !scopedPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		annotated, bare := directiveLines(pass, f)
		for _, pos := range bare {
			pass.Reportf(pos, "//pops:orderindep requires a reason: state why iteration order cannot reach the result")
		}
		// Walk function by function so the collect-then-sort scan has
		// a natural boundary.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			checkFunc(pass, fd.Body, annotated)
		}
	}
	return nil
}

// directiveLines collects the file's //pops:orderindep comment lines:
// reasons given (annotated, by line) and bare directives (positions).
func directiveLines(pass *analysis.Pass, f *ast.File) (annotated map[int]bool, bare []token.Pos) {
	annotated = map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := directiveRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			reason := m[2]
			if i := strings.Index(reason, "//"); i >= 0 {
				reason = reason[:i] // an embedded comment is not a reason
			}
			if strings.TrimSpace(reason) == "" {
				bare = append(bare, c.Pos())
				continue
			}
			annotated[pass.Fset.Position(c.Pos()).Line] = true
		}
	}
	return annotated, bare
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, annotated map[int]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := types.Unalias(t).Underlying().(*types.Map); !isMap {
			return true
		}
		line := pass.Fset.Position(rng.Pos()).Line
		if annotated[line] || annotated[line-1] {
			return true // audited order-independence
		}
		checkRange(pass, rng, body)
		return true
	})
}

// checkRange audits one map range's body for order-dependent effects.
func checkRange(pass *analysis.Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	c := &rangeCheck{pass: pass, rng: rng}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			c.assign(st)
		case *ast.ReturnStmt:
			c.ret(st)
		}
		return true
	})
	// Collect-then-sort: an appended-to accumulator that a later
	// sort.*/slices.* call in the same function determinizes is fine.
	for obj, pos := range c.appends {
		if !sortedAfter(pass, fnBody, rng.End(), obj) {
			pass.Reportf(pos,
				"append to %s inside map iteration without a later sort: element order follows the runtime's shuffle; sort the accumulator or annotate //pops:orderindep <reason>",
				obj.Name())
		}
	}
}

type rangeCheck struct {
	pass    *analysis.Pass
	rng     *ast.RangeStmt
	appends map[types.Object]token.Pos
}

// loopLocal reports whether the object is declared inside the range
// statement (iteration variables included).
func (c *rangeCheck) loopLocal(obj types.Object) bool {
	if obj == nil {
		return true // unresolvable: stay quiet
	}
	pos := obj.Pos()
	return pos >= c.rng.Pos() && pos <= c.rng.End()
}

// mentionsLoopVars reports whether the expression uses any variable
// declared by the range statement itself (key/value).
func (c *rangeCheck) mentionsLoopVars(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		for _, ke := range []ast.Expr{c.rng.Key, c.rng.Value} {
			if ke == nil {
				continue
			}
			if kid, ok := ast.Unparen(ke).(*ast.Ident); ok &&
				c.pass.TypesInfo.Defs[kid] == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func (c *rangeCheck) assign(st *ast.AssignStmt) {
	if st.Tok == token.DEFINE {
		return
	}
	for i, lhs := range st.Lhs {
		lhs = ast.Unparen(lhs)
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		// Writes into another map are insertion-order independent.
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if bt := c.pass.TypesInfo.TypeOf(ix.X); bt != nil {
				if _, isMap := types.Unalias(bt).Underlying().(*types.Map); isMap {
					continue
				}
			}
		}
		root := rootObject(c.pass.TypesInfo, lhs)
		if c.loopLocal(root) {
			continue
		}
		var rhs ast.Expr
		if i < len(st.Rhs) {
			rhs = st.Rhs[i]
		} else if len(st.Rhs) == 1 {
			rhs = st.Rhs[0]
		}

		lt := c.pass.TypesInfo.TypeOf(lhs)
		switch st.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if lt == nil {
				continue
			}
			b, ok := types.Unalias(lt).Underlying().(*types.Basic)
			if !ok {
				continue
			}
			switch {
			case b.Info()&types.IsFloat != 0:
				c.pass.Reportf(lhs.Pos(),
					"floating-point accumulation into %s inside map iteration: fp addition is not associative, so the shuffle changes the rounding; accumulate over sorted keys or annotate //pops:orderindep <reason>",
					types.ExprString(lhs))
			case b.Info()&types.IsString != 0:
				c.pass.Reportf(lhs.Pos(),
					"string concatenation into %s inside map iteration: the result's byte order follows the runtime's shuffle; build from sorted keys or annotate //pops:orderindep <reason>",
					types.ExprString(lhs))
			}
			// Integer accumulation is associative and commutative: silent.
			continue
		}

		// Plain assignment: append-to-accumulator or last-writer-wins.
		if call, ok := appendCall(c.pass.TypesInfo, rhs); ok {
			if c.appends == nil {
				c.appends = map[types.Object]token.Pos{}
			}
			if root != nil {
				if _, seen := c.appends[root]; !seen {
					c.appends[root] = call.Pos()
				}
			}
			continue
		}
		if rhs != nil && c.mentionsLoopVars(rhs) {
			c.pass.Reportf(lhs.Pos(),
				"assignment to %s from the iteration variables inside map iteration: the runtime's shuffle picks the last writer; iterate sorted keys or annotate //pops:orderindep <reason>",
				types.ExprString(lhs))
		}
	}
}

func (c *rangeCheck) ret(st *ast.ReturnStmt) {
	for _, res := range st.Results {
		if c.mentionsLoopVars(res) {
			c.pass.Reportf(st.Pos(),
				"return inside map iteration carries the iteration variables: which element is returned follows the runtime's shuffle; iterate sorted keys or annotate //pops:orderindep <reason>")
			return
		}
	}
}

// appendCall matches `append(...)` (possibly parenthesized) and
// returns the call.
func appendCall(info *types.Info, e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil, false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	if !ok || b.Name() != "append" {
		return nil, false
	}
	return call, true
}

// sortedAfter reports whether, after the given position, the function
// body contains a sort.*/slices.* call that mentions the object — the
// collect-then-sort determinizer.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, after token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		callee := lintutil.CalleeFunc(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() == nil || !sortPkgs[callee.Pkg().Path()] {
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					mentions = true
					return false
				}
				return true
			})
			if mentions {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
