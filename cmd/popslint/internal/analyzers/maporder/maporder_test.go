package maporder

import (
	"testing"

	"popslint/internal/analysistest"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, Analyzer, "repro/internal/store", "repro/internal/report")
}
