// Package parcapture enforces the write-disjointness contract of the
// intra-circuit parallel kernels (the PR-9 byte-identity design):
// a closure handed to internal/par's executors (par.Run, par.Wavefront)
// runs concurrently with its siblings, so it may write only
//
//   - its own locals and parameters (per-worker private state), and
//   - elements of captured slices addressed through an index derived
//     from the closure's own parameters or locals — the chunk-bounds
//     idiom (states[s], r.timing[n.ID] with n ranging over the chunk)
//     whose disjointness the byte-identity tests then prove.
//
// Everything else a closure captures is shared between workers, and a
// write to it is a data race or — worse for this repository — a
// scheduling-order dependence that silently breaks the "byte-identical
// to serial at every degree" contract. The analyzer flags, inside any
// function literal passed to a par executor:
//
//   - writes (assign, op-assign, ++/--) to captured scalars and fields,
//     including writes through slice elements addressed by a captured
//     or constant index — every worker would hit the same element;
//   - writes to or deletes from captured maps, at any key: map access
//     is not safe under concurrent writers at all;
//   - append whose first argument is a captured slice: append may
//     reallocate or extend shared backing storage under a sibling's
//     feet;
//   - floating-point accumulation (+=, -=, *=, /=) into captured
//     state: even were it synchronized, scheduling order would change
//     the rounding sequence. Reductions must be buffered per chunk and
//     replayed in serial order, the way sta.Session.Analyze's worst-
//     output scan and power's boundary stitch do.
//
// The analyzer is intraprocedural by design: method calls made from
// the closure (r.analyzeGate(n), st.grow(bound)) are not traced. The
// dynamic twin — byte-identity stress tests at forced degrees under
// -race — covers what this approximation cannot see.
package parcapture

import (
	"go/ast"
	"go/token"
	"go/types"

	"popslint/internal/analysis"
	"popslint/internal/lintutil"
)

// ParPath is the package whose executors take the audited closures.
const ParPath = "repro/internal/par"

// executors are the par functions whose func-literal arguments run
// concurrently.
var executors = map[string]bool{"Run": true, "Wavefront": true}

var Analyzer = &analysis.Analyzer{
	Name: "parcapture",
	Doc:  "closures passed to par.Run/par.Wavefront may write only locals or index-disjoint slice elements derived from the chunk bounds",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || pass.InTestFile(call.Pos()) {
				return true
			}
			callee := lintutil.CalleeFunc(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil ||
				callee.Pkg().Path() != ParPath || !executors[callee.Name()] {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkClosure(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

// checkClosure audits one worker-body literal.
func checkClosure(pass *analysis.Pass, lit *ast.FuncLit) {
	c := &closure{pass: pass, lit: lit}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				c.checkWrite(lhs, st.Tok, rhsFor(st, i))
			}
		case *ast.IncDecStmt:
			c.checkWrite(st.X, st.Tok, nil)
		case *ast.CallExpr:
			c.checkBuiltinCall(st)
		}
		return true
	})
}

func rhsFor(st *ast.AssignStmt, i int) ast.Expr {
	if i < len(st.Rhs) {
		return st.Rhs[i]
	}
	return nil
}

type closure struct {
	pass *analysis.Pass
	lit  *ast.FuncLit
}

// declaredInside reports whether the object's declaration lies within
// the closure literal (parameter or local): writes to those are the
// worker's private business.
func (c *closure) declaredInside(obj types.Object) bool {
	if obj == nil {
		return false
	}
	pos := obj.Pos()
	return pos >= c.lit.Pos() && pos <= c.lit.End()
}

// rootObject resolves the variable at the base of an lvalue chain
// (x, x.f, x.f[i].g → x) and reports whether any index on the path was
// a slice/array index (map indexes are handled separately).
func (c *closure) rootObject(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return c.pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkWrite applies the capture rules to one write target.
func (c *closure) checkWrite(lhs ast.Expr, tok token.Token, rhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}

	// Element writes: x[i] = v (possibly behind field selectors).
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		baseType := c.pass.TypesInfo.TypeOf(ix.X)
		if baseType != nil {
			switch types.Unalias(baseType).Underlying().(type) {
			case *types.Map:
				if root := c.rootObject(ix.X); root != nil && !c.declaredInside(root) {
					c.pass.Reportf(lhs.Pos(),
						"write to captured map %s inside a par worker closure: maps are unsafe under concurrent writers; build per-chunk results and merge serially",
						types.ExprString(ix.X))
				}
				return
			case *types.Slice, *types.Array, *types.Pointer:
				root := c.rootObject(ix.X)
				if root == nil || c.declaredInside(root) {
					return // private backing storage
				}
				if c.indexIsChunkDerived(ix.Index) {
					c.checkFloatAccum(lhs, tok, "element of captured "+types.ExprString(ix.X))
					return
				}
				c.pass.Reportf(lhs.Pos(),
					"write to captured %s at an index not derived from the worker's chunk bounds: sibling workers may address the same element",
					types.ExprString(ix.X))
				return
			}
		}
	}

	// Plain identifier / field / dereference writes.
	root := c.rootObject(lhs)
	if root == nil || c.declaredInside(root) {
		return
	}
	if c.checkFloatAccum(lhs, tok, "captured "+types.ExprString(lhs)) {
		return
	}
	c.pass.Reportf(lhs.Pos(),
		"write to captured %s inside a par worker closure: workers may write only their own locals or index-disjoint slice elements (buffer per chunk, reduce in serial order)",
		types.ExprString(lhs))
	_ = rhs
}

// checkFloatAccum reports the dedicated diagnostic for floating-point
// compound accumulation into shared state; it returns true when it
// reported (the caller then skips the generic message).
func (c *closure) checkFloatAccum(lhs ast.Expr, tok token.Token, what string) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return false
	}
	t := c.pass.TypesInfo.TypeOf(lhs)
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return false
	}
	c.pass.Reportf(lhs.Pos(),
		"floating-point accumulation into %s inside a par worker closure: scheduling order changes the rounding sequence; buffer per chunk and replay the reduction in serial order (as sta.Session.Analyze does)",
		what)
	return true
}

// indexIsChunkDerived reports whether the index expression mentions at
// least one variable declared inside the closure — the chunk-bounds
// derivation (s, lo+i, n.ID with n a range variable over the chunk).
// A constant or fully captured index means every worker addresses the
// same element.
func (c *closure) indexIsChunkDerived(index ast.Expr) bool {
	derived := false
	ast.Inspect(index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
			if _, isVar := obj.(*types.Var); isVar && c.declaredInside(obj) {
				derived = true
			}
		}
		return true
	})
	return derived
}

// checkBuiltinCall flags append on captured slices and delete on
// captured maps.
func (c *closure) checkBuiltinCall(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin)
	if !ok {
		return
	}
	switch b.Name() {
	case "append":
		if len(call.Args) == 0 {
			return
		}
		root := c.rootObject(call.Args[0])
		if root != nil && !c.declaredInside(root) {
			c.pass.Reportf(call.Pos(),
				"append to captured slice %s inside a par worker closure: append may reallocate or extend shared backing storage; collect per-chunk and join serially",
				types.ExprString(call.Args[0]))
		}
	case "delete":
		if len(call.Args) != 2 {
			return
		}
		root := c.rootObject(call.Args[0])
		if root != nil && !c.declaredInside(root) {
			c.pass.Reportf(call.Pos(),
				"delete from captured map %s inside a par worker closure: maps are unsafe under concurrent writers",
				types.ExprString(call.Args[0]))
		}
	}
}
