package parcapture

import (
	"testing"

	"popslint/internal/analysistest"
)

func TestParcapture(t *testing.T) {
	analysistest.Run(t, Analyzer, "a")
}
