// Package a exercises parcapture: worker closures may write only
// their own locals or chunk-derived slice elements.
package a

import "repro/internal/par"

// disjointWrites is the blessed PR-9 shape: every write lands in a
// captured slice at an index derived from the worker's own chunk
// bounds, and the reduction happens serially after Run returns.
func disjointWrites(vals []float64, n int) float64 {
	out := make([]float64, n)
	k := 4
	par.Run(k, func(i int) {
		lo, hi := par.Chunk(i, k, n)
		sum := 0.0 // worker-local accumulator: fine
		for j := lo; j < hi; j++ {
			sum += vals[j]
			out[j] = vals[j] * 2 // chunk-derived index: fine
		}
		out[lo] = sum // still chunk-derived: fine
	})
	total := 0.0
	for _, v := range out {
		total += v
	}
	return total
}

// capturedScalar races every worker on one shared variable.
func capturedScalar(n int) int {
	count := 0
	par.Run(4, func(i int) {
		count = i // want `write to captured count inside a par worker closure`
		count++   // want `write to captured count inside a par worker closure`
	})
	return count
}

// sharedFloatAccum is the worst kind: even synchronized, the rounding
// order would depend on scheduling.
func sharedFloatAccum(vals []float64) float64 {
	total := 0.0
	k := 4
	par.Run(k, func(i int) {
		lo, hi := par.Chunk(i, k, len(vals))
		for j := lo; j < hi; j++ {
			total += vals[j] // want `floating-point accumulation into captured total`
		}
	})
	return total
}

// capturedMap writes a shared map from every worker.
func capturedMap(keys []string) map[string]int {
	m := map[string]int{}
	par.Run(2, func(i int) {
		m[keys[i]] = i // want `write to captured map m`
		delete(m, "x") // want `delete from captured map m`
	})
	return m
}

// capturedAppend grows a shared slice concurrently.
func capturedAppend(n int) []int {
	var out []int
	par.Run(2, func(i int) {
		out = append(out, i) // want `append to captured slice out` `write to captured out`
	})
	return out
}

// fixedIndex writes a captured slice at an index every worker shares.
func fixedIndex(out []float64) {
	par.Wavefront(2, []int{0, 1, 2}, 1, false, func(lo, hi int) {
		out[0] = 1 // want `write to captured out at an index not derived from the worker's chunk bounds`
	})
}

// fieldElement mirrors sta's r.timing[n.ID] shape: an element of a
// captured struct field addressed by a loop variable over the span.
type result struct {
	timing []float64
	worst  float64
}

func (r *result) analyze(offsets []int) {
	par.Wavefront(2, offsets, 1, false, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			r.timing[j] = float64(j) // chunk-derived: fine
		}
	})
	for _, t := range r.timing {
		if t > r.worst {
			r.worst = t // serial reduction after the barrier: fine
		}
	}
}

// fieldScalar writes a captured struct field shared by all workers.
func (r *result) bad(offsets []int) {
	par.Wavefront(2, offsets, 1, false, func(lo, hi int) {
		r.worst = float64(hi) // want `write to captured r\.worst inside a par worker closure`
	})
}

// serialClosure is not passed to an executor, so nothing is flagged.
func serialClosure(n int) int {
	count := 0
	walk := func(i int) { count += i }
	for i := 0; i < n; i++ {
		walk(i)
	}
	return count
}
