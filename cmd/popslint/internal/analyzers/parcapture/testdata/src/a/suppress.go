package a

import (
	"repro/internal/par"
	"sync"
)

// externallySynced shows the escape hatch: a captured counter guarded
// by a mutex, justified and suppressed. (The repository proper avoids
// this shape — suppressions are budgeted.)
func externallySynced(n int) int {
	var mu sync.Mutex
	count := 0
	par.Run(2, func(i int) {
		mu.Lock()
		//popslint:ignore parcapture progress counter guarded by mu, not result-affecting
		count++
		mu.Unlock()
	})
	return count
}

// missingReason keeps the finding and reports the bare directive.
func missingReason(n int) int {
	count := 0
	par.Run(2, func(i int) {
		//popslint:ignore parcapture // want `requires a justification`
		count = i // want `write to captured count`
	})
	return count
}
