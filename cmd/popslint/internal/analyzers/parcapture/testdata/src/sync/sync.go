// Package sync is a fixture mirror of the mutex shape.
package sync

type Mutex struct{ state int }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}
