package locksafe

import (
	"testing"

	"popslint/internal/analysistest"
)

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, Analyzer, "repro/internal/store", "repro/internal/engine")
}
