// Package time is a fixture mirror of the sleep shape.
package time

type Duration int64

func Sleep(d Duration) {}
