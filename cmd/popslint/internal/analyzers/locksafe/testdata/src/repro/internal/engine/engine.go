// Package engine exercises locksafe across the cache's loop-with-
// lock-handoff shape and the tier boundary.
package engine

import (
	"sync"

	"repro/internal/store"
)

type entry struct {
	done chan struct{}
	res  []byte
}

type Cache struct {
	mu      sync.Mutex
	results map[string]*entry
	tier    store.Store
}

// resultLoop is the Cache.Result idiom: break exits the loop with the
// lock deliberately held, the unlock follows after the loop, and the
// blocking select happens only on unlocked paths. Nothing is flagged.
func (ca *Cache) resultLoop(key string, compute func() []byte) []byte {
	for {
		ca.mu.Lock()
		e, ok := ca.results[key]
		if !ok {
			break // compute it ourselves, mu still held
		}
		ca.mu.Unlock()
		<-e.done
		if e.res != nil {
			return e.res
		}
	}
	e := &entry{done: make(chan struct{})}
	ca.results[key] = e
	ca.mu.Unlock()
	e.res = compute()
	close(e.done)
	return e.res
}

// tierProbeHeld probes the durable tier under the memo lock.
func (ca *Cache) tierProbeHeld(key string) ([]byte, error) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return ca.tier.Get(key) // want `store call Get while holding ca\.mu`
}

// tierProbeUnlocked is the correct shape: the memo lock bounds the
// map access, the tier call happens outside it.
func (ca *Cache) tierProbeUnlocked(key string) ([]byte, error) {
	if e, ok := ca.lookup(key); ok {
		return e.res, nil
	}
	return ca.tier.Get(key)
}

func (ca *Cache) lookup(key string) (*entry, bool) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	e, ok := ca.results[key]
	return e, ok
}

// leakInLoop returns out of a range with the lock held.
func (ca *Cache) leakInLoop(keys []string) *entry {
	ca.mu.Lock()
	for _, k := range keys {
		if e, ok := ca.results[k]; ok {
			return e // want `ca\.mu is locked but not released on this return path`
		}
	}
	ca.mu.Unlock()
	return nil
}
