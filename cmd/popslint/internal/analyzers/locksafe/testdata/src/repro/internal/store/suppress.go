package store

// flushHeld mirrors the real Batcher.Flush: the write mutex
// intentionally serializes tier writes, and the suppression records
// the reviewed reasoning.
func (b *Batcher) flushHeld(keys []string) error {
	b.writeMu.Lock()
	defer b.writeMu.Unlock()
	for _, k := range keys {
		//popslint:ignore locksafe writeMu exists to serialize tier writes; nothing else ever waits on it
		if err := b.under.Delete(k); err != nil {
			return err
		}
	}
	return nil
}

// missingReason keeps the finding and reports the bare directive.
func (b *Batcher) missingReason(key string, v []byte) error {
	b.writeMu.Lock()
	defer b.writeMu.Unlock()
	//popslint:ignore locksafe // want `requires a justification`
	return b.under.Put(key, v) // want `store call Put while holding b\.writeMu`
}
