// Package store exercises locksafe's blocking and leak rules on the
// store tier itself.
package store

import (
	"sync"
	"time"
)

// Store is the tier interface: its methods count as blocking.
type Store interface {
	Get(key string) ([]byte, error)
	Put(key string, value []byte) error
	Delete(key string) error
}

type Batcher struct {
	mu      sync.Mutex
	writeMu sync.Mutex
	pending map[string][]byte
	under   Store
	kick    chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup
}

// snapshotThenBlock is the blessed convention: snapshot under the
// lock, block after the unlock.
func (b *Batcher) snapshotThenBlock(key string) []byte {
	b.mu.Lock()
	v := b.pending[key]
	b.mu.Unlock()
	<-b.done
	return v
}

// heldSend stalls every later caller if no receiver is ready.
func (b *Batcher) heldSend() {
	b.mu.Lock()
	b.kick <- struct{}{} // want `channel send while holding b\.mu`
	b.mu.Unlock()
}

// heldReceive blocks under the lock.
func (b *Batcher) heldReceive() {
	b.mu.Lock()
	<-b.done // want `channel receive while holding b\.mu`
	b.mu.Unlock()
}

// kickWithDefault never blocks: a select with a default is exempt
// even under the lock.
func (b *Batcher) kickWithDefault() {
	b.mu.Lock()
	select {
	case b.kick <- struct{}{}:
	default:
	}
	b.mu.Unlock()
}

// heldSelect has no default: it parks under the lock.
func (b *Batcher) heldSelect() {
	b.mu.Lock()
	select { // want `select without a default case while holding b\.mu`
	case <-b.done:
	case <-b.kick:
	}
	b.mu.Unlock()
}

// heldWait joins the worker pool while holding the lock the workers
// may need.
func (b *Batcher) heldWait() {
	b.mu.Lock()
	b.wg.Wait() // want `sync Wait while holding b\.mu`
	b.mu.Unlock()
}

// heldSleep is a slow-motion version of the same bug.
func (b *Batcher) heldSleep() {
	b.mu.Lock()
	time.Sleep(10) // want `time\.Sleep while holding b\.mu`
	b.mu.Unlock()
}

// heldStoreCall reaches the underlying tier — a disk, another
// batcher — while holding the write lock.
func (b *Batcher) heldStoreCall(key string, v []byte) error {
	b.writeMu.Lock()
	defer b.writeMu.Unlock()
	return b.under.Put(key, v) // want `store call Put while holding b\.writeMu`
}

// leakOnError returns with the mutex still held.
func (b *Batcher) leakOnError(key string) ([]byte, bool) {
	b.mu.Lock()
	v, ok := b.pending[key]
	if !ok {
		return nil, false // want `b\.mu is locked but not released on this return path`
	}
	b.mu.Unlock()
	return v, true
}

// deferRelease makes every return path safe.
func (b *Batcher) deferRelease(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.pending[key]
	if !ok {
		return nil, false
	}
	return v, true
}

// goroutineIsItsOwnWorld: the spawned body runs without the caller's
// locks, so its channel receive is not flagged.
func (b *Batcher) goroutineIsItsOwnWorld() {
	b.mu.Lock()
	go func() {
		<-b.done
	}()
	b.mu.Unlock()
}
