// Package locksafe audits the engine and store mutexes — the locks on
// the daemon's request path. Two rules, both motivated by incidents
// this architecture is one typo away from:
//
//   - No blocking operation while a mutex is held. A channel send or
//     receive, a select without a default, sync.WaitGroup.Wait,
//     sync.Cond.Wait, time.Sleep, or a call into a store tier
//     (Get/Put/Delete/Scan/Flush/Append/…) can stall indefinitely;
//     holding s.mu across one turns a slow disk or a stuck peer into
//     a frozen daemon. The engine's own convention is snapshot-under-
//     lock, block-after-unlock (jobs.Await, Cache.Result), and this
//     analyzer makes the convention load-bearing.
//
//   - Every Lock must reach Unlock on every return path, unless the
//     unlock is deferred. A conditional early return between Lock and
//     Unlock is a permanent deadlock for every later caller.
//
// The walker is path-sensitive in the mutatorepoch style: it tracks
// the set of held locks (keyed by the receiver expression, "s.mu",
// "b.writeMu") along each control-flow path, merges states at branch
// joins ignoring terminated paths, and collects break states so the
// lock-held-across-break idiom of Cache.Result analyzes exactly.
// Deliberate limits: goroutine bodies and function literals are
// separate worlds (a `go func` does not inherit the holder's locks —
// nor its obligations); raw os.* file I/O is not in the blocking set,
// because the disk store and journal hold their mutexes across file
// writes by design — a bounded local syscall, not an unbounded wait;
// and a `select` with a default case never blocks and is exempt,
// which is what makes the Batcher's kick-channel nudge legal.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"popslint/internal/analysis"
	"popslint/internal/lintutil"
)

// scopedPkgs hold the mutexes on the request path.
var scopedPkgs = map[string]bool{
	"repro/internal/engine": true,
	"repro/internal/store":  true,
}

// StorePath marks the store tier: methods of its types are assumed to
// reach a disk, a journal, or another tier, and count as blocking.
const StorePath = "repro/internal/store"

// storeMethods are the tier entry points counted as blocking when
// called with a lock held.
var storeMethods = map[string]bool{
	"Get": true, "Put": true, "Delete": true, "Scan": true,
	"Flush": true, "Close": true, "Append": true, "Sync": true,
	"Replay": true, "Rewrite": true, "Len": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "no blocking operations while holding an engine or store mutex; every Lock must reach Unlock on all return paths unless deferred",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !scopedPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			w := &walker{pass: pass}
			st := w.block(fd.Body.List, newState())
			w.checkLeak(st, fd.Body.Rbrace)
		}
	}
	return nil
}

// lockInfo is one held mutex on a path.
type lockInfo struct {
	pos      token.Pos // the Lock call, for leak reports
	deferred bool      // a defer Unlock releases it at return
}

// pathState is the held-lock set along one control-flow path.
type pathState struct {
	held       map[string]lockInfo
	terminated bool // return/branch ended the path
}

func newState() pathState {
	return pathState{held: map[string]lockInfo{}}
}

func (s pathState) clone() pathState {
	c := pathState{held: make(map[string]lockInfo, len(s.held)), terminated: s.terminated}
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

// merge joins branch states, skipping terminated paths. Held sets
// union conservatively: a lock held on either live path is held after
// the join for blocking purposes.
func merge(states ...pathState) pathState {
	out := newState()
	live := 0
	for _, s := range states {
		if s.terminated {
			continue
		}
		live++
		for k, v := range s.held {
			if have, ok := out.held[k]; !ok || (!have.deferred && v.deferred) {
				out.held[k] = v
			}
		}
	}
	out.terminated = live == 0
	return out
}

type loopFrame struct{ breaks []pathState }

type walker struct {
	pass  *analysis.Pass
	loops []*loopFrame
}

// block walks a statement list, threading the path state through.
func (w *walker) block(list []ast.Stmt, st pathState) pathState {
	for _, s := range list {
		if st.terminated {
			return st
		}
		st = w.stmt(s, st)
	}
	return st
}

func (w *walker) stmt(s ast.Stmt, st pathState) pathState {
	switch n := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if key, isLock, locks := w.lockOp(call); isLock {
				if locks {
					st.held[key] = lockInfo{pos: call.Pos()}
				} else {
					delete(st.held, key)
				}
				return st
			}
		}
		w.checkExpr(n.X, st)
	case *ast.DeferStmt:
		if key, isLock, locks := w.lockOp(n.Call); isLock && !locks {
			if info, ok := st.held[key]; ok {
				info.deferred = true
				st.held[key] = info
			}
		}
		// A deferred call runs at return, outside this path walk.
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			w.checkExpr(rhs, st)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, st)
					}
				}
			}
		}
	case *ast.SendStmt:
		w.blocking(n.Pos(), "channel send", st)
	case *ast.GoStmt:
		// The goroutine runs without the caller's locks; its body is
		// its own world (function literals are separate scopes).
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			w.checkExpr(res, st)
		}
		w.checkLeak(st, n.Pos())
		st.terminated = true
	case *ast.BranchStmt:
		switch n.Tok {
		case token.BREAK:
			if len(w.loops) > 0 {
				fr := w.loops[len(w.loops)-1]
				fr.breaks = append(fr.breaks, st.clone())
			}
		}
		st.terminated = true
	case *ast.BlockStmt:
		return w.block(n.List, st)
	case *ast.LabeledStmt:
		return w.stmt(n.Stmt, st)
	case *ast.IfStmt:
		if n.Init != nil {
			st = w.stmt(n.Init, st)
		}
		w.checkExpr(n.Cond, st)
		then := w.block(n.Body.List, st.clone())
		els := st.clone()
		if n.Else != nil {
			els = w.stmt(n.Else, els)
		}
		return merge(then, els)
	case *ast.ForStmt:
		if n.Init != nil {
			st = w.stmt(n.Init, st)
		}
		if n.Cond != nil {
			w.checkExpr(n.Cond, st)
		}
		fr := &loopFrame{}
		w.loops = append(w.loops, fr)
		w.block(n.Body.List, st.clone())
		w.loops = w.loops[:len(w.loops)-1]
		states := fr.breaks
		if n.Cond != nil {
			states = append(states, st) // the loop may run zero times
		}
		if len(states) == 0 {
			st.terminated = true // for{} with no break never falls through
			return st
		}
		return merge(states...)
	case *ast.RangeStmt:
		w.checkExpr(n.X, st)
		fr := &loopFrame{}
		w.loops = append(w.loops, fr)
		w.block(n.Body.List, st.clone())
		w.loops = w.loops[:len(w.loops)-1]
		return merge(append(fr.breaks, st)...)
	case *ast.SwitchStmt:
		if n.Init != nil {
			st = w.stmt(n.Init, st)
		}
		if n.Tag != nil {
			w.checkExpr(n.Tag, st)
		}
		return w.caseBodies(n.Body, st, hasDefaultClause(n.Body))
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			st = w.stmt(n.Init, st)
		}
		return w.caseBodies(n.Body, st, hasDefaultClause(n.Body))
	case *ast.SelectStmt:
		if !hasDefaultComm(n.Body) {
			w.blocking(n.Pos(), "select without a default case", st)
		}
		// The comm clauses themselves are covered by the select-level
		// check: a chosen case's op is ready by definition.
		var branches []pathState
		for _, c := range n.Body.List {
			cc := c.(*ast.CommClause)
			branches = append(branches, w.block(cc.Body, st.clone()))
		}
		if len(branches) == 0 {
			return st
		}
		return merge(branches...)
	}
	return st
}

// caseBodies merges the branch states of a switch body; without a
// default clause the entry state joins too (no case may match).
func (w *walker) caseBodies(body *ast.BlockStmt, st pathState, hasDefault bool) pathState {
	var branches []pathState
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.checkExpr(e, st)
		}
		branches = append(branches, w.block(cc.Body, st.clone()))
	}
	if !hasDefault {
		branches = append(branches, st)
	}
	if len(branches) == 0 {
		return st
	}
	return merge(branches...)
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func hasDefaultComm(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// lockOp classifies a call as a mutex acquire/release on a
// sync.Mutex/RWMutex and returns the receiver key.
func (w *walker) lockOp(call *ast.CallExpr) (key string, isLock, locks bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	f := lintutil.CalleeFunc(w.pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch f.Name() {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	return types.ExprString(sel.X), true, locks
}

// checkExpr scans an expression for blocking operations under held
// locks: channel receives and blocking calls. Function literals are
// not entered — they run in their own scope.
func (w *walker) checkExpr(e ast.Expr, st pathState) {
	if e == nil || len(st.held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.blocking(x.Pos(), "channel receive", st)
			}
		case *ast.CallExpr:
			w.checkCall(x, st)
		}
		return true
	})
}

func (w *walker) checkCall(call *ast.CallExpr, st pathState) {
	f := lintutil.CalleeFunc(w.pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	sig, _ := f.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch {
	case f.Pkg().Path() == "time" && f.Name() == "Sleep":
		w.blocking(call.Pos(), "time.Sleep", st)
	case f.Pkg().Path() == "sync" && f.Name() == "Wait" && isMethod:
		w.blocking(call.Pos(), "sync "+f.Name(), st)
	case f.Pkg().Path() == StorePath && isMethod && storeMethods[f.Name()]:
		w.blocking(call.Pos(), "store call "+f.Name(), st)
	}
}

// blocking reports one blocking operation under every held lock.
func (w *walker) blocking(pos token.Pos, what string, st pathState) {
	if len(st.held) == 0 {
		return
	}
	keys := make([]string, 0, len(st.held))
	for k := range st.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.pass.Reportf(pos,
			"%s while holding %s: a stalled wait here freezes every later caller; snapshot under the lock, block after the unlock",
			what, k)
	}
}

// checkLeak reports held, non-deferred locks at a path exit.
func (w *walker) checkLeak(st pathState, pos token.Pos) {
	if st.terminated {
		return
	}
	keys := make([]string, 0, len(st.held))
	for k := range st.held {
		if !st.held[k].deferred {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.pass.Reportf(pos,
			"%s is locked but not released on this return path: unlock before returning or defer the unlock",
			k)
	}
}
