package noalloc

import (
	"testing"

	"popslint/internal/analysistest"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, Analyzer, "a")
}
