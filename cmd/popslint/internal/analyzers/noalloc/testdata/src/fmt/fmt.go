// Package fmt is a fixture stub standing in for the standard library
// package of the same name: noalloc flags calls by package path, so the
// stub only needs the signatures the fixtures use.
package fmt

func Sprintf(format string, args ...any) string { return format }

func Errorf(format string, args ...any) error { return nil }
