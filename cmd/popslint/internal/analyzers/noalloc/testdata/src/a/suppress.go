package a

// coldPath opts an error path out with a justification: suppressed.
//
//pops:noalloc
func coldPath(fail bool) []int {
	if fail {
		//popslint:ignore noalloc error path runs at most once per session, off the steady-state
		return []int{}
	}
	return nil
}

// badDirective forgets the justification: the directive is reported
// and does not suppress.
//
//pops:noalloc
func badDirective() []int {
	//popslint:ignore noalloc // want `requires a justification`
	x := 0
	_ = x
	return []int{4} // want `slice literal allocates`
}
