// Package a exercises the //pops:noalloc contract.
package a

import "fmt"

type workspace struct {
	buf []int
}

// grow is the guarded-grow idiom: amortized growth behind a cap
// comparison is legal.
//
//pops:noalloc
func (w *workspace) grow(n int) {
	if cap(w.buf) < n {
		w.buf = make([]int, 0, n)
	}
	w.buf = w.buf[:0]
}

// sum is clean steady-state code.
//
//pops:noalloc
func (w *workspace) sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// goodAppend reuses the workspace backing array.
//
//pops:noalloc
func (w *workspace) goodAppend(xs []int) {
	w.buf = w.buf[:0]
	for _, x := range xs {
		w.buf = append(w.buf, x)
	}
}

// badMake allocates unconditionally.
//
//pops:noalloc
func (w *workspace) badMake(n int) {
	w.buf = make([]int, n) // want `make allocates`
}

// badLiteral builds a slice literal.
//
//pops:noalloc
func badLiteral() []int {
	return []int{1, 2, 3} // want `slice literal allocates`
}

// badMapLiteral builds a map literal.
//
//pops:noalloc
func badMapLiteral() map[string]int {
	return map[string]int{"a": 1} // want `map literal allocates`
}

type pair struct{ x, y int }

// badAddr takes the address of a composite literal, which escapes.
//
//pops:noalloc
func badAddr() *pair {
	return &pair{1, 2} // want `address of composite literal escapes`
}

// goodZeroStore resets workspace memory with a value literal: a plain
// store, no allocation.
//
//pops:noalloc
func (w *workspace) goodZeroStore(p *pair) {
	*p = pair{}
	*w = workspace{buf: w.buf[:0]}
}

// badClosure captures and escapes.
//
//pops:noalloc
func badClosure(x int) func() int {
	return func() int { return x } // want `function literal`
}

// badFmt calls into fmt.
//
//pops:noalloc
func badFmt(name string) string {
	return fmt.Sprintf("node-%s", name) // want `fmt\.Sprintf allocates`
}

// badAppend grows a fresh slice per call.
//
//pops:noalloc
func badAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want `append to nil-declared local slice`
	}
	return out
}

// badConcat builds a string at runtime.
//
//pops:noalloc
func badConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

// badConvert copies between string and bytes.
//
//pops:noalloc
func badConvert(b []byte) string {
	return string(b) // want `string<->\[\]byte conversion`
}

// badBox passes a plain value to an interface parameter.
//
//pops:noalloc
func badBox(x int) {
	sink(x) // want `boxes the value`
}

func sink(v any) { _ = v }

// unannotated functions may allocate freely.
func unannotated(n int) []int {
	return make([]int, n)
}
