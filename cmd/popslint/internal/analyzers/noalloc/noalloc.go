// Package noalloc checks the repository's steady-state zero-allocation
// contract: a function whose doc comment carries a //pops:noalloc
// directive promises that, once its workspace is warm, it performs no
// heap allocation per call — the property the genbench harness measures
// and the per-round hot loops (sizing rounds, STA passes, the power
// word kernel, metrics recorders) depend on.
//
// Inside an enrolled function the analyzer rejects the constructs that
// allocate unconditionally or escape analysis reliably heap-boxes:
//
//   - make and new — except make inside an if whose condition compares
//     cap(…) or len(…), the repository's guarded-grow idiom (the branch
//     only runs when the workspace must grow, which is amortized, not
//     steady-state)
//   - slice and map literals (they allocate backing storage) and the
//     address of any composite literal (&T{…} escapes); a plain struct
//     literal stored by value (ws.x = T{} zeroing resets) is free and
//     passes
//   - function literals: closures capture and escape
//   - calls into fmt and errors: both allocate on every call
//   - append to a slice declared nil inside the function (growing a
//     fresh slice allocates; appending into a reused workspace slice,
//     a parameter, or a reslice like buf[:0] does not, once warm)
//   - non-constant string concatenation and string<->[]byte conversions
//   - passing a non-pointer, non-interface value to an interface
//     parameter (implicit boxing)
//
// Cold paths inside an enrolled function — error returns, first-call
// setup — are opted out per-site with //popslint:ignore noalloc and a
// justification saying why the path is off the steady-state.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"popslint/internal/analysis"
	"popslint/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //pops:noalloc must not contain allocation-inducing constructs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			if _, ok := lintutil.HasDirective(fd.Doc, "noalloc"); !ok {
				continue
			}
			c := &checker{pass: pass, fn: fd}
			c.collectNilSlices(fd.Body)
			c.block(fd.Body, false)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
	// nilSlices holds slice variables declared with no backing storage
	// inside the function (var s []T); appending to them allocates.
	nilSlices map[types.Object]bool
}

// collectNilSlices records the function-local slice variables declared
// without an initializer — append targets that necessarily allocate.
func (c *checker) collectNilSlices(body *ast.BlockStmt) {
	c.nilSlices = map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		decl, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := decl.Decl.(*ast.GenDecl)
		if !ok {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != 0 {
				continue
			}
			for _, name := range vs.Names {
				obj := c.pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if _, isSlice := types.Unalias(obj.Type()).Underlying().(*types.Slice); isSlice {
					c.nilSlices[obj] = true
				}
			}
		}
		return true
	})
}

// block walks statements tracking whether the current branch is under a
// guarded-grow condition (an if comparing cap/len), which legalizes
// make.
func (c *checker) block(s ast.Stmt, guarded bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			c.block(st, guarded)
		}
	case *ast.IfStmt:
		c.stmtExprs(s.Init, guarded)
		c.expr(s.Cond, guarded)
		g := guarded || isGrowGuard(s.Cond)
		c.block(s.Body, g)
		c.block(s.Else, guarded)
	case *ast.ForStmt:
		c.stmtExprs(s.Init, guarded)
		c.expr(s.Cond, guarded)
		c.stmtExprs(s.Post, guarded)
		c.block(s.Body, guarded)
	case *ast.RangeStmt:
		c.expr(s.X, guarded)
		c.block(s.Body, guarded)
	case *ast.SwitchStmt:
		c.stmtExprs(s.Init, guarded)
		c.expr(s.Tag, guarded)
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			for _, e := range cc.List {
				c.expr(e, guarded)
			}
			for _, st := range cc.Body {
				c.block(st, guarded)
			}
		}
	case *ast.TypeSwitchStmt:
		c.stmtExprs(s.Init, guarded)
		c.stmtExprs(s.Assign, guarded)
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			for _, st := range cc.Body {
				c.block(st, guarded)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			c.stmtExprs(cc.Comm, guarded)
			for _, st := range cc.Body {
				c.block(st, guarded)
			}
		}
	case *ast.LabeledStmt:
		c.block(s.Stmt, guarded)
	default:
		c.stmtExprs(s, guarded)
	}
}

// stmtExprs checks the expressions of a leaf statement.
func (c *checker) stmtExprs(s ast.Stmt, guarded bool) {
	if s == nil {
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		c.exprShallow(e, guarded)
		return true
	})
}

func (c *checker) expr(e ast.Expr, guarded bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		sub, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		c.exprShallow(sub, guarded)
		return true
	})
}

// exprShallow applies the per-node rules (children are visited by the
// surrounding Inspect).
func (c *checker) exprShallow(e ast.Expr, guarded bool) {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				c.pass.Reportf(e.Pos(), "address of composite literal escapes in //pops:noalloc function %s", c.fn.Name.Name)
			}
		}
	case *ast.CompositeLit:
		// Value struct/array literals are plain stores (the workspace
		// zeroing idiom *ws = T{}); only slice and map literals bring
		// fresh backing storage.
		if t := c.pass.TypesInfo.TypeOf(e); t != nil {
			switch types.Unalias(t).Underlying().(type) {
			case *types.Slice:
				c.pass.Reportf(e.Pos(), "slice literal allocates in //pops:noalloc function %s", c.fn.Name.Name)
			case *types.Map:
				c.pass.Reportf(e.Pos(), "map literal allocates in //pops:noalloc function %s", c.fn.Name.Name)
			}
		}
	case *ast.FuncLit:
		c.pass.Reportf(e.Pos(), "function literal (closure) escapes in //pops:noalloc function %s", c.fn.Name.Name)
	case *ast.BinaryExpr:
		c.checkConcat(e)
	case *ast.CallExpr:
		c.checkCall(e, guarded)
	}
}

func (c *checker) checkConcat(e *ast.BinaryExpr) {
	if e.Op.String() != "+" {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil { // constant folding: free
		return
	}
	if b, ok := types.Unalias(tv.Type).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		c.pass.Reportf(e.Pos(), "string concatenation allocates in //pops:noalloc function %s", c.fn.Name.Name)
	}
}

func (c *checker) checkCall(call *ast.CallExpr, guarded bool) {
	fun := ast.Unparen(call.Fun)

	// Type conversions: string <-> []byte copy.
	if tv, ok := c.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}

	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if !guarded {
					c.pass.Reportf(call.Pos(), "make allocates in //pops:noalloc function %s (grow behind an if cap(…)/len(…) guard, or justify with //popslint:ignore)", c.fn.Name.Name)
				}
			case "new":
				c.pass.Reportf(call.Pos(), "new allocates in //pops:noalloc function %s", c.fn.Name.Name)
			case "append":
				c.checkAppend(call)
			}
			return
		}
	}

	if callee := lintutil.CalleeFunc(c.pass.TypesInfo, call); callee != nil {
		if pkg := callee.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "fmt", "errors":
				c.pass.Reportf(call.Pos(), "%s.%s allocates in //pops:noalloc function %s", pkg.Name(), callee.Name(), c.fn.Name.Name)
				return
			}
		}
		c.checkBoxing(call, callee)
	}
}

func (c *checker) checkConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := c.pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	if tv, ok := c.pass.TypesInfo.Types[call]; ok && tv.Value != nil {
		return // constant conversion
	}
	if isString(to) && isByteSlice(from) || isByteSlice(to) && isString(from) {
		c.pass.Reportf(call.Pos(), "string<->[]byte conversion copies in //pops:noalloc function %s", c.fn.Name.Name)
	}
}

// checkAppend flags appends that grow a slice declared nil in this
// function: they must allocate. Appends to parameters, fields and
// reslices are the reuse idiom and pass.
func (c *checker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.nilSlices[obj] {
		c.pass.Reportf(call.Pos(), "append to nil-declared local slice %s allocates in //pops:noalloc function %s (reuse a workspace slice)", id.Name, c.fn.Name.Name)
	}
}

// checkBoxing flags non-pointer, non-interface, non-constant arguments
// passed to interface parameters — the implicit conversion heap-boxes
// the value.
func (c *checker) checkBoxing(call *ast.CallExpr, callee *types.Func) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type()
			if sl, ok := types.Unalias(pt).Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := types.Unalias(pt).Underlying().(*types.Interface); !isIface {
			continue
		}
		tv, ok := c.pass.TypesInfo.Types[arg]
		if !ok || tv.Value != nil {
			continue // constants are boxed into read-only statics
		}
		at := types.Unalias(tv.Type)
		if at == types.Typ[types.UntypedNil] {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Interface, *types.Signature, *types.Chan, *types.Map, *types.Slice:
			continue // already a reference; conversion is pointer-shaped
		}
		c.pass.Reportf(arg.Pos(), "passing %s to interface parameter boxes the value in //pops:noalloc function %s", tv.Type, c.fn.Name.Name)
	}
}

// isGrowGuard recognizes the guarded-grow condition: a comparison
// involving cap(…) or len(…), e.g. if cap(s.buf) < n { s.buf = make… }.
func isGrowGuard(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
			found = true
		}
		return true
	})
	if !found {
		return false
	}
	// Must actually be a comparison, not a bare call.
	switch c := cond.(type) {
	case *ast.BinaryExpr:
		switch c.Op.String() {
		case "<", "<=", ">", ">=", "==", "!=", "&&", "||":
			return true
		}
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	sl, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(sl.Elem()).Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
