package rngstream

import (
	"testing"

	"popslint/internal/analysistest"
)

func TestRngstream(t *testing.T) {
	analysistest.Run(t, Analyzer, "a")
}
