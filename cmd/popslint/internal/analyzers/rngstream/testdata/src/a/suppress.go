package a

import "math/rand"

// jitterBackoff shows a justified suppression: retry jitter is
// explicitly not result-affecting.
func jitterBackoff(base int) int {
	//popslint:ignore rngstream retry jitter only; never feeds a result or a golden
	return base + rand.Intn(base)
}

// missingReason keeps the finding and reports the bare directive.
func missingReason(base int) int {
	//popslint:ignore rngstream // want `requires a justification`
	return base + rand.Intn(base) // want `global rand.Intn draws from process-wide state`
}
