// Package a exercises rngstream: explicit seeded streams only, no
// time seeds, no draws inside parallel callbacks.
package a

import (
	"math/rand"
	"repro/internal/par"
	"time"
)

// explicitStream is the blessed shape: a seed from the caller, an
// explicit source, draws on the local stream.
func explicitStream(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

// globalDraws use the process-wide source.
func globalDraws(n int) int {
	v := rand.Intn(n)                  // want `global rand.Intn draws from process-wide state`
	rand.Shuffle(n, func(i, j int) {}) // want `global rand.Shuffle draws from process-wide state`
	return v
}

// timeSeeds make runs unrepeatable.
func timeSeeds() *rand.Rand {
	rand.Seed(time.Now().UnixNano())                       // want `time-derived seed passed to rand.Seed`
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `time-derived seed passed to rand.NewSource`
}

// preDrawn is the PR-9 parallel contract: the whole stream is drawn
// serially before the fan-out, workers only read it.
func preDrawn(seed int64, n, k int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	packed := make([]float64, n)
	for i := range packed {
		packed[i] = rng.Float64()
	}
	out := make([]float64, n)
	par.Run(k, func(i int) {
		lo, hi := par.Chunk(i, k, n)
		for j := lo; j < hi; j++ {
			out[j] = packed[j] * 2
		}
	})
	return out
}

// drawInWorker pulls from a stream inside the callback: the n-th draw
// lands on a scheduler-chosen worker.
func drawInWorker(seed int64, n, k int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	par.Run(k, func(i int) {
		lo, hi := par.Chunk(i, k, n)
		for j := lo; j < hi; j++ {
			out[j] = rng.Float64() // want `rand.Float64 called inside a par worker closure`
		}
	})
	return out
}

// globalDrawInWorker is doubly wrong; the parallel diagnostic wins.
func globalDrawInWorker(k int) {
	par.Run(k, func(i int) {
		_ = rand.Intn(10) // want `rand.Intn called inside a par worker closure`
	})
}
