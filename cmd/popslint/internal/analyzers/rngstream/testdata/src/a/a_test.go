package a

import (
	"math/rand"
	"time"
)

// Test files may use throwaway randomness freely: nothing here is
// flagged.
func testOnlyHelper() int {
	rand.Seed(time.Now().UnixNano())
	return rand.Intn(10)
}
