// Package rand is a fixture mirror of math/rand's shape.
package rand

type Source interface{ Int63() int64 }

type Rand struct{ src Source }

func New(src Source) *Rand               { return &Rand{src} }
func NewSource(seed int64) Source        { return nil }
func Seed(seed int64)                    {}
func Intn(n int) int                     { return 0 }
func Float64() float64                   { return 0 }
func Shuffle(n int, swap func(i, j int)) {}

func (r *Rand) Intn(n int) int   { return 0 }
func (r *Rand) Float64() float64 { return 0 }
