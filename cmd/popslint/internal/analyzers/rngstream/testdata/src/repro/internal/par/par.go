// Package par is a fixture mirror of the executor signatures the
// analyzer keys on.
package par

func Chunk(i, k, n int) (lo, hi int) { return i * n / k, (i + 1) * n / k }

func Run(k int, fn func(i int)) { fn(0) }

func Wavefront(workers int, offsets []int, minSpan int, reverse bool, fn func(lo, hi int)) {
	fn(0, 0)
}
