// Package time is a fixture mirror of the clock shape.
package time

type Time struct{ ns int64 }

func Now() Time { return Time{} }

func (t Time) UnixNano() int64 { return t.ns }
