// Package rngstream enforces the repository's reproducible-randomness
// contract. Every stochastic result — Monte-Carlo power estimation,
// generated benchmark netlists, annealing schedules — must replay
// bit-exactly from a recorded seed, and must stay bit-exact when the
// same work runs on the parallel worker pool. Three rules follow:
//
//   - No global math/rand state in non-test code. The package-level
//     functions (rand.Intn, rand.Float64, rand.Shuffle, rand.Seed, …)
//     draw from a process-wide source that any other package can
//     perturb, so a run's results depend on unrelated code. Construct
//     an explicit stream instead: rand.New(rand.NewSource(seed)).
//
//   - No time-derived seeds. time.Now().UnixNano() as a seed makes
//     every run unrepeatable by construction; seeds come from config,
//     flags, or a recorded session.
//
//   - No RNG draw inside a parallel callback. A closure passed to
//     par.Run or par.Wavefront runs under a scheduler-chosen
//     interleaving, so the n-th draw lands on a scheduler-chosen
//     worker and byte-identity with serial dies. Streams must be
//     pre-drawn serially before the fan-out — the contract
//     internal/power/parallel.go establishes by packing vectors
//     before par.Run — or split per-chunk with a deterministic
//     derivation.
//
// Test files are exempt throughout: tests may use throwaway
// randomness freely.
package rngstream

import (
	"go/ast"
	"go/types"

	"popslint/internal/analysis"
	"popslint/internal/lintutil"
)

// ParPath matches parcapture's notion of the parallel executors.
const ParPath = "repro/internal/par"

var executors = map[string]bool{"Run": true, "Wavefront": true}

// randPkgs are the package paths whose draws are policed. crypto/rand
// is deliberately absent: it is non-reproducible by design and used
// only for trace-ID generation.
var randPkgs = map[string]bool{"math/rand": true, "math/rand/v2": true}

// constructors build explicit streams and are the blessed alternative
// to global state (their seed arguments are still checked for
// time-derivation).
var constructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "rngstream",
	Doc:  "non-test code must use explicit seeded rand streams, never time-derived seeds, and never draw randomness inside a parallel callback",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// First locate every closure handed to a par executor, so
		// draws inside them get the parallel-specific diagnostic.
		parLits := map[*ast.FuncLit]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := lintutil.CalleeFunc(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil ||
				callee.Pkg().Path() != ParPath || !executors[callee.Name()] {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					parLits[lit] = true
				}
			}
			return true
		})

		var inPar int
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && parLits[lit] {
				inPar++
				ast.Inspect(lit.Body, walk)
				inPar--
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || pass.InTestFile(call.Pos()) {
				return true
			}
			checkCall(pass, call, inPar > 0)
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, inPar bool) {
	callee := lintutil.CalleeFunc(pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil || !randPkgs[callee.Pkg().Path()] {
		return
	}
	sig, _ := callee.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil

	// Rule 3 outranks the rest: any draw in a parallel callback, even
	// through an explicit *rand.Rand, breaks the serial-order stream.
	if inPar {
		pass.Reportf(call.Pos(),
			"%s.%s called inside a par worker closure: the n-th draw would land on a scheduler-chosen worker; pre-draw the stream serially before the fan-out (see internal/power/parallel.go)",
			callee.Pkg().Name(), callee.Name())
		return
	}

	// Rule 2: time-derived seeds anywhere in the argument list.
	for _, arg := range call.Args {
		if derivedFromTime(pass, arg) {
			pass.Reportf(arg.Pos(),
				"time-derived seed passed to %s.%s: runs become unrepeatable; seeds must come from config, flags, or a recorded session",
				callee.Pkg().Name(), callee.Name())
			return
		}
	}

	// Rule 1: package-level draws share process-global state.
	if !isMethod && !constructors[callee.Name()] {
		pass.Reportf(call.Pos(),
			"global %s.%s draws from process-wide state any package can perturb: construct an explicit stream with rand.New(rand.NewSource(seed))",
			callee.Pkg().Name(), callee.Name())
	}
}

// derivedFromTime reports whether the expression contains a call into
// package time whose result feeds the value (time.Now().UnixNano(),
// int64(time.Since(start)), …). It does not descend into nested rand
// calls — rand.New(rand.NewSource(time.Now().UnixNano())) is reported
// once, at the innermost constructor that takes the seed.
func derivedFromTime(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := lintutil.CalleeFunc(pass.TypesInfo, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		switch {
		case f.Pkg().Path() == "time":
			found = true
			return false
		case randPkgs[f.Pkg().Path()]:
			return false // the nested call reports its own seed
		}
		return true
	})
	return found
}
