// Package nilrecorder enforces the observability layer's nil-safety
// contract: metrics and recorders are deliberately optional — a nil
// *engine.Metrics or a recorder wrapping one must behave as a no-op,
// so instrumented code never has to guard its own telemetry calls.
// That only holds if every method entry point checks for nil itself.
//
// Two rules:
//
//  1. Every method on *engine.Metrics must begin with a nil-receiver
//     guard (its first statement an if comparing the receiver to nil).
//  2. Every method a type contributes to the core.Recorder or
//     sta.Recorder interfaces must begin with a nil guard of the
//     receiver or of a receiver field — pointer receivers can be nil
//     themselves, and the value-receiver adapters wrap a *Metrics
//     whose nil is the no-op signal.
//
// Empty bodies and unnamed receivers trivially satisfy both (nothing
// dereferences), and value-receiver implementations without pointer
// fields (nopRecorder{}) have nothing that can be nil, so they are
// exempt.
package nilrecorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"popslint/internal/analysis"
	"popslint/internal/lintutil"
)

const (
	EnginePath = "repro/internal/engine"
	CorePath   = "repro/internal/core"
	StaPath    = "repro/internal/sta"
)

var Analyzer = &analysis.Analyzer{
	Name: "nilrecorder",
	Doc:  "*engine.Metrics methods and pointer-receiver Recorder implementations must begin with a nil-receiver guard",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	ifaces := map[string]*types.Interface{
		"core.Recorder": lintutil.LookupInterface(pass.Pkg, CorePath, "Recorder"),
		"sta.Recorder":  lintutil.LookupInterface(pass.Pkg, StaPath, "Recorder"),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			checkMethod(pass, fd, ifaces)
		}
	}
	return nil
}

func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl, ifaces map[string]*types.Interface) {
	if len(fd.Recv.List) != 1 {
		return
	}
	recvField := fd.Recv.List[0]
	recvType := pass.TypesInfo.TypeOf(recvField.Type)
	if recvType == nil {
		return
	}
	// Unnamed receivers cannot be dereferenced.
	if len(recvField.Names) == 0 || recvField.Names[0].Name == "_" {
		return
	}
	recvName := recvField.Names[0].Name
	named := lintutil.NamedFrom(recvType)
	if named == nil || named.Obj().Pkg() == nil {
		return
	}
	_, isPtr := types.Unalias(recvType).(*types.Pointer)

	var why string
	switch {
	case named.Obj().Pkg().Path() == EnginePath && named.Obj().Name() == "Metrics":
		if !isPtr {
			return
		}
		why = "a nil *Metrics must be a no-op collector"
	default:
		for ifaceName, iface := range ifaces {
			if iface == nil {
				continue
			}
			if !implementsMethod(recvType, iface, fd.Name.Name) {
				continue
			}
			why = "a nil " + ifaceName + " implementation must be a no-op"
			break
		}
		if why == "" {
			return
		}
		// A value receiver cannot itself be nil; it is only on the hook
		// for the nil-able pointers it wraps.
		if !isPtr && !hasPointerField(named) {
			return
		}
	}

	if len(fd.Body.List) == 0 {
		return // nothing dereferences
	}
	if beginsWithNilGuard(fd.Body.List[0], recvName) {
		return
	}
	pass.Reportf(fd.Name.Pos(),
		"method %s on %s must begin with a nil-receiver guard (%s)",
		fd.Name.Name, named.Obj().Name(), why)
}

// hasPointerField reports whether the named type's underlying struct
// carries a pointer-typed field (the wrapped collector).
func hasPointerField(named *types.Named) bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if _, ok := types.Unalias(st.Field(i).Type()).(*types.Pointer); ok {
			return true
		}
	}
	return false
}

// implementsMethod reports whether the receiver type satisfies iface
// and the method name is part of the interface contract.
func implementsMethod(recv types.Type, iface *types.Interface, method string) bool {
	inContract := false
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == method {
			inContract = true
			break
		}
	}
	if !inContract {
		return false
	}
	return types.Implements(recv, iface)
}

// beginsWithNilGuard reports whether the statement is an if whose
// condition compares the receiver — or a field selected from it — to
// nil, in either direction and with either == or !=.
func beginsWithNilGuard(s ast.Stmt, recvName string) bool {
	ifStmt, ok := s.(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	cond, ok := ast.Unparen(ifStmt.Cond).(*ast.BinaryExpr)
	if !ok || (cond.Op != token.EQL && cond.Op != token.NEQ) {
		return false
	}
	return isNilCompareOperand(cond.X, cond.Y, recvName) ||
		isNilCompareOperand(cond.Y, cond.X, recvName)
}

func isNilCompareOperand(subject, other ast.Expr, recvName string) bool {
	if id, ok := ast.Unparen(other).(*ast.Ident); !ok || id.Name != "nil" {
		return false
	}
	switch e := ast.Unparen(subject).(type) {
	case *ast.Ident:
		return e.Name == recvName
	case *ast.SelectorExpr:
		base, ok := ast.Unparen(e.X).(*ast.Ident)
		return ok && base.Name == recvName
	}
	return false
}
