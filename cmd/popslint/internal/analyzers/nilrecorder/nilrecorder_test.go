package nilrecorder

import (
	"testing"

	"popslint/internal/analysistest"
)

func TestNilrecorder(t *testing.T) {
	analysistest.Run(t, Analyzer, "repro/internal/engine")
}
