package engine

// Snapshot is justified: only reachable through a non-nil handle, and
// the suppression says why. No diagnostic survives.
//
//popslint:ignore nilrecorder only called via Engine.metrics which is never nil after New
func (m *Metrics) Snapshot() int64 {
	return m.rounds
}

// BadSnapshot carries a directive without a justification.
//
//popslint:ignore nilrecorder // want `requires a justification`
func (m *Metrics) BadSnapshot() int64 { // want `must begin with a nil-receiver guard`
	return m.rounds
}
