// Package sta is a fixture mirror holding the session Recorder
// interface shape.
package sta

type Recorder interface {
	Analyzed(full bool)
}
