// Package engine is a fixture mirror of the metrics collector and its
// recorder adapters.
package engine

import (
	"repro/internal/core"
	"repro/internal/sta"
)

type registry struct{ n int }

// Metrics is the nil-safe collector: a nil *Metrics must be a no-op.
type Metrics struct {
	reg    *registry
	rounds int64
}

// Registry is guarded: good.
func (m *Metrics) Registry() *registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// BadRegistry dereferences an unguarded receiver.
func (m *Metrics) BadRegistry() *registry { // want `must begin with a nil-receiver guard`
	return m.reg
}

// roundDone uses the inverted guard form: good.
func (m *Metrics) roundDone() {
	if m != nil {
		m.rounds++
	}
}

// noop has an empty body: trivially nil-safe.
func (m *Metrics) noop() {}

type protocolRecorder struct{ m *Metrics }

var _ core.Recorder = (*protocolRecorder)(nil)

// RoundDone guards the wrapped collector field: good.
func (r *protocolRecorder) RoundDone(structural bool) {
	if r.m == nil {
		return
	}
	r.m.rounds++
}

// StageDone forgets the guard.
func (r *protocolRecorder) StageDone(stage string, millis int64) { // want `must begin with a nil-receiver guard`
	r.m.rounds++
}

type sessionRecorder struct{ m *Metrics }

var _ sta.Recorder = (*sessionRecorder)(nil)

// Analyzed guards the receiver itself: good.
func (r *sessionRecorder) Analyzed(full bool) {
	if r == nil {
		return
	}
	r.m.roundDone()
}

// helper is not part of the Recorder contract and not on Metrics, so
// rule 2 does not apply.
func (r *sessionRecorder) helper() int64 {
	return r.m.rounds
}

type wordRecorder struct{ m *Metrics }

var _ sta.Recorder = wordRecorder{}

// Analyzed on a value receiver still guards the wrapped pointer: good.
func (r wordRecorder) Analyzed(full bool) {
	if r.m == nil {
		return
	}
	r.m.rounds++
}

type unguardedValue struct{ m *Metrics }

var _ sta.Recorder = unguardedValue{}

// Analyzed dereferences the wrapped pointer unguarded.
func (r unguardedValue) Analyzed(full bool) { // want `must begin with a nil-receiver guard`
	r.m.rounds++
}

// nopRecorder is a value type without pointer fields: nothing can be
// nil, so no guard needed.
type nopRecorder struct{}

var _ core.Recorder = nopRecorder{}

func (nopRecorder) RoundDone(structural bool)            {}
func (nopRecorder) StageDone(stage string, millis int64) {}
