// Package core is a fixture mirror holding the protocol Recorder
// interface shape.
package core

type Recorder interface {
	RoundDone(structural bool)
	StageDone(stage string, millis int64)
}
