package memokey

import (
	"testing"

	"popslint/internal/analysistest"
)

func TestMemokey(t *testing.T) {
	analysistest.Run(t, Analyzer, "repro/internal/engine")
}
