// Package memokey polices the engine's memoization keyspace — the
// PR-5 bug class where a circuit's *name* leaked into a memo key, so
// two different netlists sharing a name aliased each other's cached
// results. The durable store and in-memory memos must key on content:
// netlist.Fingerprint for circuits, PathSignature for paths.
//
// Three rules, all scoped to repro/internal/engine:
//
//  1. The Cache struct's memo map fields (results, bounds) must be
//     keyed by a named key type, not predeclared string — so the
//     compiler separates task keys from circuit names and the other
//     string-shaped identifiers flowing through the engine.
//  2. A conversion to one of those key types whose operand reads
//     netlist.Circuit.Name is flagged: deriving a memo key from a
//     circuit's display name is exactly the aliasing bug. (Process
//     corner names are fine — distinct corners are distinct by name.)
//     Keys derive from netlist.Fingerprint / PathSignature.
//  3. Calls to the durable tier (store.Store Get/Put) must pass
//     storeKeyFor(…) as the key, keeping the content-address
//     derivation in one audited place.
package memokey

import (
	"go/ast"
	"go/types"

	"popslint/internal/analysis"
	"popslint/internal/lintutil"
)

const (
	// EnginePath is the only package the analyzer inspects.
	EnginePath = "repro/internal/engine"
	// StorePath hosts the durable-tier interface whose Get/Put calls
	// must go through storeKeyFor.
	StorePath = "repro/internal/store"
)

// memoFields are the Cache map fields that memoize derived results and
// therefore must not be name-keyed. (aliases is exempt by design: it
// maps a display name to a fingerprint — the value is the content key.)
var memoFields = map[string]bool{"results": true, "bounds": true}

var Analyzer = &analysis.Analyzer{
	Name: "memokey",
	Doc:  "engine memo maps and store calls must key on content-derived types (Fingerprint/PathSignature), never circuit names",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() != EnginePath {
		return nil
	}
	for _, f := range pass.Files {
		if len(f.Decls) > 0 && pass.InTestFile(f.Decls[0].Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSpec:
				checkCacheFields(pass, n)
			case *ast.CallExpr:
				checkKeyConversion(pass, n)
				checkStoreCall(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCacheFields enforces rule 1 on the Cache struct declaration.
func checkCacheFields(pass *analysis.Pass, spec *ast.TypeSpec) {
	if spec.Name.Name != "Cache" {
		return
	}
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if !memoFields[name.Name] {
				continue
			}
			t := pass.TypesInfo.TypeOf(field.Type)
			m, ok := types.Unalias(t).Underlying().(*types.Map)
			if !ok {
				continue
			}
			if !isNamedKeyType(m.Key()) {
				pass.Reportf(field.Pos(),
					"Cache.%s is keyed by %s: memo maps must use a named key type derived from netlist.Fingerprint/PathSignature, not raw strings (circuit-name aliasing)",
					name.Name, m.Key())
			}
		}
	}
}

// isNamedKeyType reports whether t is a declared (non-predeclared) key
// type — a defined type such as taskKey, whatever its underlying.
func isNamedKeyType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	return ok && n.Obj() != nil && n.Obj().Pkg() != nil
}

// checkKeyConversion enforces rule 2: key-type conversions whose
// operand reads a .Name field.
func checkKeyConversion(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(call.Fun)]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	target, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok || target.Obj().Pkg() == nil || target.Obj().Pkg().Path() != EnginePath {
		return
	}
	if b, ok := target.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return
	}
	if sel := findCircuitName(pass, call.Args[0]); sel != nil {
		pass.Reportf(sel.Pos(),
			"memo key %s built from Circuit.Name: display names alias across distinct netlists — derive keys from netlist.Fingerprint or PathSignature",
			target.Obj().Name())
	}
}

// findCircuitName returns a selector reading netlist.Circuit's Name
// field inside e, or nil. Hashed derivations (Fingerprint(c) calls)
// take the Circuit, not its Name, so they never match.
func findCircuitName(pass *analysis.Pass, e ast.Expr) *ast.SelectorExpr {
	var found *ast.SelectorExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Name" {
			return true
		}
		if lintutil.IsNamed(pass.TypesInfo.TypeOf(sel.X), "repro/internal/netlist", "Circuit") {
			found = sel
			return false
		}
		return true
	})
	return found
}

// checkStoreCall enforces rule 3: the durable tier's Get/Put key
// argument must be storeKeyFor(…).
func checkStoreCall(pass *analysis.Pass, call *ast.CallExpr) {
	callee := lintutil.CalleeFunc(pass.TypesInfo, call)
	if callee == nil || (callee.Name() != "Get" && callee.Name() != "Put") {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	recv := sig.Recv().Type()
	// Method on a store-package type, or on the Store interface itself.
	if n := lintutil.NamedFrom(recv); n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != StorePath {
		if _, isIface := types.Unalias(recv).Underlying().(*types.Interface); !isIface {
			return
		}
		iface := lintutil.LookupInterface(pass.Pkg, StorePath, "Store")
		if iface == nil || !types.Implements(types.NewPointer(recv), iface) && !types.Implements(recv, iface) {
			return
		}
	}
	if len(call.Args) == 0 {
		return
	}
	keyArg, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if ok {
		if fn := lintutil.CalleeFunc(pass.TypesInfo, keyArg); fn != nil && fn.Name() == "storeKeyFor" {
			return
		}
	}
	pass.Reportf(call.Args[0].Pos(),
		"store.%s key must be derived via storeKeyFor(…) so the durable tier is content-addressed", callee.Name())
}
