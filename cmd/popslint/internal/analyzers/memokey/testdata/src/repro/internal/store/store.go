// Package store is a fixture mirror of the durable tier's interface.
package store

type Store interface {
	Get(key string) ([]byte, error)
	Put(key string, value []byte) error
}
