// Package engine is a fixture mirror of the memoization layer.
package engine

import (
	"repro/internal/netlist"
	"repro/internal/store"
)

type taskKey string

type resultEntry struct{ data []byte }

// Cache mirrors the production memo shape: results is properly typed,
// bounds regressed to a raw string key.
type Cache struct {
	results map[taskKey]*resultEntry
	bounds  map[string]*resultEntry // want `Cache.bounds is keyed by string`
	aliases map[string]string
	tier    store.Store
}

func storeKeyFor(key taskKey) string { return string(key) }

// goodKey derives the memo key from content.
func goodKey(c *netlist.Circuit) taskKey {
	return taskKey(netlist.Fingerprint(c))
}

// badKey derives the memo key from the display name.
func badKey(c *netlist.Circuit) taskKey {
	return taskKey("proc/" + c.Name) // want `built from Circuit.Name`
}

// goodStore goes through storeKeyFor.
func (ca *Cache) goodStore(key taskKey) ([]byte, error) {
	return ca.tier.Get(storeKeyFor(key))
}

// badStore hands the durable tier a raw key.
func (ca *Cache) badStore(key taskKey, data []byte) error {
	return ca.tier.Put(string(key), data) // want `store.Put key must be derived via storeKeyFor`
}
