package engine

import "repro/internal/netlist"

// aliasLookup documents a deliberate name-derived key: the alias table
// is itself the name-to-fingerprint translation, so this one site is
// justified and suppressed.
func aliasLookup(c *netlist.Circuit) taskKey {
	//popslint:ignore memokey alias table entry point: value resolved to a fingerprint before memo use
	return taskKey(c.Name)
}

// badDirective forgets the justification.
func badDirective(c *netlist.Circuit) taskKey {
	//popslint:ignore memokey // want `requires a justification`
	return taskKey(c.Name) // want `built from Circuit.Name`
}
