// Package netlist is a fixture mirror: just the Circuit display name
// and the content-derived key functions memokey cares about.
package netlist

type Circuit struct {
	Name string
}

// Fingerprint returns the content address of a circuit.
func Fingerprint(c *Circuit) string { return "fp" }
