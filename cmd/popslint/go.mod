module popslint

go 1.24
