package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"popslint/internal/analysis"
	"popslint/internal/analyzers/locksafe"
	"popslint/internal/analyzers/maporder"
	"popslint/internal/analyzers/parcapture"
	"popslint/internal/analyzers/rngstream"
)

// The seeded-violation tests are the suite's dead-man switch: each
// one injects the exact bug class an analyzer exists to catch — a
// captured-scalar write, a global rand.Intn, an unsorted map-order
// leak, a held-lock channel send — into an in-memory package with the
// production import path, runs the full suite through the same
// analysis.Run entrypoint CI uses, and demands a red result. If an
// analyzer regresses into silence, these fail before the tree can
// start quietly accumulating the bugs.

// memPkg is one in-memory package for the seeded harness.
type memPkg struct {
	path string
	src  string
}

// fakePar mirrors the executor shapes the concurrency analyzers key on.
const fakePar = `package par
func Chunk(i, k, n int) (lo, hi int) { return i * n / k, (i + 1) * n / k }
func Run(k int, fn func(i int)) { fn(0) }
func Wavefront(workers int, offsets []int, minSpan int, reverse bool, fn func(lo, hi int)) { fn(0, 0) }
`

const fakeSync = `package sync
type Mutex struct{ state int }
func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}
`

const fakeRand = `package rand
func Intn(n int) int { return 0 }
`

// analyzeSeeded typechecks the dependency packages then the target,
// and returns the target's filtered diagnostics from the given
// analyzer.
func analyzeSeeded(t *testing.T, a *analysis.Analyzer, deps []memPkg, target memPkg) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	universe := map[string]*types.Package{}
	importer := importerFor(universe)
	for _, p := range append(deps, target) {
		f, err := parser.ParseFile(fset, strings.ReplaceAll(p.path, "/", "_")+".go", p.src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", p.path, err)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		cfg := &types.Config{Importer: importer}
		pkg, err := cfg.Check(p.path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("typechecking %s: %v", p.path, err)
		}
		universe[p.path] = pkg
		if p.path == target.path {
			pass := &analysis.Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, TypesInfo: info}
			diags, err := analysis.Run([]*analysis.Analyzer{a}, pass)
			if err != nil {
				t.Fatalf("running %s: %v", a.Name, err)
			}
			return diags
		}
	}
	return nil
}

type importerFor map[string]*types.Package

func (m importerFor) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return nil, &types.Error{Msg: "seeded harness: unknown import " + path}
}

// wantRed asserts at least one diagnostic matching the substring.
func wantRed(t *testing.T, diags []analysis.Diagnostic, substr string) {
	t.Helper()
	for _, d := range diags {
		if strings.Contains(d.Message, substr) {
			return
		}
	}
	t.Errorf("seeded violation not caught: no diagnostic containing %q in %d finding(s): %+v",
		substr, len(diags), diags)
}

func TestSeededCapturedScalarWriteGoesRed(t *testing.T) {
	diags := analyzeSeeded(t, parcapture.Analyzer,
		[]memPkg{{"repro/internal/par", fakePar}},
		memPkg{"repro/internal/power", `package power
import "repro/internal/par"
func tally(n, k int) int {
	count := 0
	par.Run(k, func(i int) {
		lo, hi := par.Chunk(i, k, n)
		for j := lo; j < hi; j++ {
			count++ // seeded violation: captured-scalar write
		}
	})
	return count
}
`})
	wantRed(t, diags, "write to captured count")
}

func TestSeededGlobalRandGoesRed(t *testing.T) {
	diags := analyzeSeeded(t, rngstream.Analyzer,
		[]memPkg{{"math/rand", fakeRand}},
		memPkg{"repro/internal/power", `package power
import "math/rand"
func vector(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = rand.Intn(2) // seeded violation: global stream
	}
	return out
}
`})
	wantRed(t, diags, "global rand.Intn")
}

func TestSeededMapOrderLeakGoesRed(t *testing.T) {
	diags := analyzeSeeded(t, maporder.Analyzer, nil,
		memPkg{"repro/internal/engine", `package engine
func keysOf(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // seeded violation: unsorted map-order leak
	}
	return keys
}
`})
	wantRed(t, diags, "append to keys inside map iteration")
}

func TestSeededHeldLockSendGoesRed(t *testing.T) {
	diags := analyzeSeeded(t, locksafe.Analyzer,
		[]memPkg{{"sync", fakeSync}},
		memPkg{"repro/internal/store", `package store
import "sync"
type notifier struct {
	mu sync.Mutex
	ch chan int
	n  int
}
func (x *notifier) bump() {
	x.mu.Lock()
	x.n++
	x.ch <- x.n // seeded violation: channel send under the lock
	x.mu.Unlock()
}
`})
	wantRed(t, diags, "channel send while holding x.mu")
}

// TestSeededCleanStaysGreen is the control: the blessed version of
// each shape produces no findings, so the red tests above fail for
// the right reason.
func TestSeededCleanStaysGreen(t *testing.T) {
	diags := analyzeSeeded(t, parcapture.Analyzer,
		[]memPkg{{"repro/internal/par", fakePar}},
		memPkg{"repro/internal/power", `package power
import "repro/internal/par"
func tally(vals []int, k int) int {
	sums := make([]int, k)
	par.Run(k, func(i int) {
		lo, hi := par.Chunk(i, k, len(vals))
		s := 0
		for j := lo; j < hi; j++ {
			s += vals[j]
		}
		sums[i] = s
	})
	total := 0
	for _, s := range sums {
		total += s
	}
	return total
}
`})
	if len(diags) != 0 {
		t.Errorf("clean parallel reduction flagged: %+v", diags)
	}
}
