package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// The -ignores mode makes the suppression surface auditable: every
// //popslint:ignore in the tree is a finding someone argued out of,
// and arguments rot. The mode lists each directive with its location,
// analyzer, and justification; with -budget it compares the tree
// against a checked-in budget file so suppressions cannot accumulate
// silently — adding one is a reviewed diff of ignores_budget.txt, not
// a drive-by comment.

// ignoreDirective is one //popslint:ignore found in the tree.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
	reason   string
}

// budgetLine is the directive's stable form: no line number, so code
// motion doesn't churn the budget, only adding or removing a
// suppression does.
func (d ignoreDirective) budgetLine() string {
	return d.file + "\t" + d.analyzer + "\t" + d.reason
}

var ignoreRe = regexp.MustCompile(`^//popslint:ignore\s+(\S+)\s*(.*)`)

// runIgnores lists the tree's directives; with a budget path it
// instead diffs against the budget and fails on drift.
func runIgnores(dirs []string, budgetPath string, w io.Writer) int {
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	var found []ignoreDirective
	for _, dir := range dirs {
		ds, err := scanIgnores(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "popslint:", err)
			return 1
		}
		found = append(found, ds...)
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].file != found[j].file {
			return found[i].file < found[j].file
		}
		return found[i].line < found[j].line
	})

	if budgetPath == "" {
		for _, d := range found {
			fmt.Fprintf(w, "%s:%d:\t%s\t%s\n", d.file, d.line, d.analyzer, d.reason)
		}
		fmt.Fprintf(w, "%d suppression(s)\n", len(found))
		return 0
	}

	budget, err := readBudget(budgetPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "popslint:", err)
		return 1
	}
	var lines []string
	for _, d := range found {
		lines = append(lines, d.budgetLine())
	}
	sort.Strings(lines)
	added, removed := diffMultisets(lines, budget)
	if len(added) == 0 && len(removed) == 0 {
		fmt.Fprintf(w, "suppressions match budget (%d)\n", len(lines))
		return 0
	}
	for _, l := range added {
		fmt.Fprintf(w, "over budget (new suppression, add to %s if reviewed):\n  +%s\n", budgetPath, l)
	}
	for _, l := range removed {
		fmt.Fprintf(w, "stale budget entry (suppression removed, delete from %s):\n  -%s\n", budgetPath, l)
	}
	return 1
}

// scanIgnores walks one directory tree for Go files and collects
// their directives. testdata trees are skipped: fixtures suppress on
// purpose, as test material.
func scanIgnores(root string) ([]ignoreDirective, error) {
	var out []ignoreDirective
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" || d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		ds, err := fileIgnores(path)
		if err != nil {
			return err
		}
		out = append(out, ds...)
		return nil
	})
	return out, err
}

// fileIgnores parses one file's comments for directives. Going
// through the parser (not a line scan) keeps string literals that
// merely mention the grammar out of the listing.
func fileIgnores(path string) ([]ignoreDirective, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := ignoreRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			reason := m[2]
			if i := strings.Index(reason, "//"); i >= 0 {
				reason = reason[:i]
			}
			out = append(out, ignoreDirective{
				file:     filepath.ToSlash(filepath.Clean(path)),
				line:     fset.Position(c.Pos()).Line,
				analyzer: m[1],
				reason:   strings.TrimSpace(reason),
			})
		}
	}
	return out, nil
}

// readBudget loads the budget file: one tab-separated entry per line,
// blank lines and # comments free.
func readBudget(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		out = append(out, line)
	}
	sort.Strings(out)
	return out, nil
}

// diffMultisets compares two sorted string multisets.
func diffMultisets(have, want []string) (added, removed []string) {
	i, j := 0, 0
	for i < len(have) && j < len(want) {
		switch {
		case have[i] == want[j]:
			i++
			j++
		case have[i] < want[j]:
			added = append(added, have[i])
			i++
		default:
			removed = append(removed, want[j])
			j++
		}
	}
	added = append(added, have[i:]...)
	removed = append(removed, want[j:]...)
	return added, removed
}
