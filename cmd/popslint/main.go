// Command popslint is the repository's project-specific static
// analysis suite: a go vet -vettool multichecker enforcing the
// invariants the compiler cannot see but the optimization protocol's
// correctness rests on.
//
// The eight analyzers:
//
//	mutatorepoch  structural netlist mutations must bump the circuit
//	              epoch (MarkMutated), and only internal/netlist may
//	              rewire Fanin/Fanout/Type directly
//	noalloc       functions annotated //pops:noalloc must not contain
//	              allocation-inducing constructs
//	memokey       engine memo families must key on content-derived
//	              types (netlist.Fingerprint / PathSignature), never
//	              raw circuit-name strings
//	nilrecorder   *engine.Metrics methods and recorder implementations
//	              must begin with a nil-receiver guard
//	parcapture    closures passed to par.Run/par.Wavefront may write
//	              only their own locals or index-disjoint slice
//	              elements derived from the chunk bounds
//	rngstream     explicit seeded rand streams only: no global
//	              math/rand, no time-derived seeds, no draw inside a
//	              parallel callback
//	maporder      map iteration in result-affecting packages needs an
//	              intervening sort or a //pops:orderindep annotation
//	              before its effect reaches a result
//	locksafe      no blocking operations while holding an engine or
//	              store mutex; every Lock reaches Unlock on all
//	              return paths unless deferred
//
// Usage:
//
//	popslint ./...                      # runs: go vet -vettool=popslint ./...
//	go vet -vettool=$(which popslint) ./...
//	popslint -ignores .                 # list every suppression with its justification
//	popslint -ignores -budget cmd/popslint/ignores_budget.txt .
//	                                    # fail if suppressions drift from the budget
//
// Findings are suppressed per-site with a justified
// //popslint:ignore <analyzer> <reason> comment; see the Static
// analysis section of docs/ARCHITECTURE.md. The -ignores modes keep
// that surface auditable.
//
// The module is dependency-free: internal/analysis mirrors the
// golang.org/x/tools/go/analysis API shape and internal/unit speaks
// cmd/go's vettool config protocol, both on the standard library, so
// the main module's zero-dependency property extends to its linter.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"popslint/internal/analysis"
	"popslint/internal/analyzers/locksafe"
	"popslint/internal/analyzers/maporder"
	"popslint/internal/analyzers/memokey"
	"popslint/internal/analyzers/mutatorepoch"
	"popslint/internal/analyzers/nilrecorder"
	"popslint/internal/analyzers/noalloc"
	"popslint/internal/analyzers/parcapture"
	"popslint/internal/analyzers/rngstream"
	"popslint/internal/unit"
)

// all returns the full analyzer suite in reporting order.
func all() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		mutatorepoch.Analyzer,
		noalloc.Analyzer,
		memokey.Analyzer,
		nilrecorder.Analyzer,
		parcapture.Analyzer,
		rngstream.Analyzer,
		maporder.Analyzer,
		locksafe.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("popslint", flag.ContinueOnError)
	fs.Var(versionFlag{}, "V", "print version and exit (go vet protocol)")
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	jsonOut := fs.Bool("json", false, "emit JSON output")
	ignores := fs.Bool("ignores", false, "list every //popslint:ignore directive with file/line/analyzer/justification")
	budget := fs.String("budget", "", "with -ignores: diff suppressions against this budget file and fail on drift")
	fs.Int("c", -1, "display offending line with this many lines of context (accepted for protocol compatibility)")
	enabled := map[string]*bool{}
	for _, a := range all() {
		enabled[a.Name] = fs.Bool(a.Name, false, "enable only the "+a.Name+" analyzer")
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *printFlags {
		return printFlagDefs(fs, os.Stdout)
	}
	if *ignores {
		return runIgnores(fs.Args(), *budget, os.Stdout)
	}

	// Selective run: naming any analyzer flag restricts the suite.
	suite := all()
	var picked []*analysis.Analyzer
	for _, a := range suite {
		if *enabled[a.Name] {
			picked = append(picked, a)
		}
	}
	if len(picked) > 0 {
		suite = picked
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		// Invoked by cmd/go on one compilation unit.
		return unit.Run(rest[0], suite, *jsonOut, os.Stdout, os.Stderr)
	}

	// Standalone convenience mode: re-enter through the go toolchain,
	// which owns package loading, caching and dependency export data.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "popslint:", err)
		return 1
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	for _, a := range picked {
		vetArgs = append(vetArgs, "-"+a.Name)
	}
	if *jsonOut {
		vetArgs = append(vetArgs, "-json")
	}
	cmd := exec.Command("go", append(vetArgs, rest...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "popslint:", err)
		return 1
	}
	return 0
}

// printFlagDefs implements the -flags handshake: cmd/go asks the tool
// which flags it supports (as a JSON list) before forwarding any.
func printFlagDefs(fs *flag.FlagSet, w io.Writer) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var defs []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		defs = append(defs, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.MarshalIndent(defs, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "popslint:", err)
		return 1
	}
	fmt.Fprintln(w, string(data))
	return 0
}

// versionFlag implements -V=full, the version handshake cmd/go uses to
// fingerprint the tool for its build cache (same line shape as the
// x/tools drivers: name, version, and a content hash of the binary).
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return false }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }

func (versionFlag) Set(s string) error {
	if s != "full" {
		return fmt.Errorf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return err
	}
	h := sha256.Sum256(data)
	fmt.Printf("%s version devel comments-go-here buildID=%s\n",
		os.Args[0], hex.EncodeToString(h[:16]))
	os.Exit(0)
	return nil
}
