package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a throwaway source tree for the scanner.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const treeA = `package a

func f() int {
	//popslint:ignore noalloc error path runs once
	return 1
}

func g() int {
	x := 2 //popslint:ignore maporder trailing form, reviewed
	return x
}
`

const treeB = `package b

// A doc comment that merely mentions the //popslint:ignore grammar
// is not a directive, and neither is this string:
var doc = "//popslint:ignore fake not real"
`

const treeFixture = `package fx

func h() {
	//popslint:ignore noalloc fixtures do not count against the budget
}
`

func TestIgnoresListing(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/a.go":           treeA,
		"b/b.go":           treeB,
		"b/testdata/fx.go": treeFixture,
	})
	var out bytes.Buffer
	if code := runIgnores([]string{root}, "", &out); code != 0 {
		t.Fatalf("runIgnores = %d, want 0\n%s", code, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"noalloc\terror path runs once",
		"maporder\ttrailing form, reviewed",
		"2 suppression(s)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("listing missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "fake") || strings.Contains(got, "fixtures") {
		t.Errorf("listing includes non-directives or testdata:\n%s", got)
	}
}

func TestIgnoresBudget(t *testing.T) {
	root := writeTree(t, map[string]string{"a/a.go": treeA})
	rel := func(p string) string { return filepath.ToSlash(filepath.Join(root, p)) }

	matching := "# reviewed suppressions\n" +
		rel("a/a.go") + "\tnoalloc\terror path runs once\n" +
		rel("a/a.go") + "\tmaporder\ttrailing form, reviewed\n"
	budget := filepath.Join(root, "budget.txt")
	if err := os.WriteFile(budget, []byte(matching), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := runIgnores([]string{root}, budget, &out); code != 0 {
		t.Fatalf("matching budget: runIgnores = %d, want 0\n%s", code, out.String())
	}

	// A new suppression in the tree must fail the diff.
	short := rel("a/a.go") + "\tnoalloc\terror path runs once\n"
	if err := os.WriteFile(budget, []byte(short), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := runIgnores([]string{root}, budget, &out); code != 1 {
		t.Fatalf("over budget: runIgnores = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "over budget") {
		t.Errorf("missing over-budget report:\n%s", out.String())
	}

	// A stale budget entry (suppression since removed) also fails.
	stale := matching + rel("a/a.go") + "\tlocksafe\tgone from the tree\n"
	if err := os.WriteFile(budget, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := runIgnores([]string{root}, budget, &out); code != 1 {
		t.Fatalf("stale budget: runIgnores = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "stale budget entry") {
		t.Errorf("missing stale-entry report:\n%s", out.String())
	}
}
