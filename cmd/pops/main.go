// Command pops analyzes and optimizes combinational circuits with the
// paper's protocol.
//
// Usage:
//
//	pops analyze  (-bench file.bench | -circuit c432)
//	pops bounds   (-bench file.bench | -circuit c432)
//	pops optimize (-bench file.bench | -circuit c432) -tc 2500
//	pops optimize -circuit c432 -ratio 1.3          # Tc = 1.3 × Tmin
//	pops sweep    (-bench file.bench | -circuit c880) -points 9
//	pops leakage  -circuit c432 -ratio 1.4          # optimize + multi-Vt assignment
//	pops slack    -circuit c880 -ratio 1.2          # required times / slacks
//	pops power    (-bench file.bench | -circuit c432)
//	pops report   (-bench file.bench | -circuit c432)  # combined summary
//	pops flimit                                      # library characterization
//	pops calibrate                                   # fit model from simulator
//	pops list                                        # benchmark suite
//	pops metrics  [-addr http://localhost:8080]      # scrape a running popsd
//
// Circuits are either ISCAS'85 .bench files (elaborated onto the
// primitive library on load) or named members of the paper's benchmark
// suite. The optimize and sweep subcommands feed a -bench file through
// the batch engine's hardened ingestion pass — the same path as
// POST /v1/optimize {"bench": …} and pops.OptimizeBench, with results
// byte-identical across all three entry points.
//
// optimize and sweep accept -data-dir: a durable result cache shared
// across invocations (and with a popsd running on the same directory),
// so repeating a (circuit, Tc) request serves the persisted record
// instead of recomputing. They also accept -parallelism, the
// intra-circuit parallelism of the timing and power kernels (0 auto,
// 1 serial, n at most n workers); results are byte-identical at every
// degree, so the flag only changes wall-clock time.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"repro"
	"repro/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	benchFile := fs.String("bench", "", "ISCAS'85 .bench netlist file")
	circuit := fs.String("circuit", "", "named benchmark (c432, Adder16, c17, rca16, …)")
	tc := fs.Float64("tc", 0, "delay constraint in ps")
	ratio := fs.Float64("ratio", 0, "delay constraint as a multiple of Tmin")
	k := fs.Int("k", 3, "number of worst paths to report (analyze)")
	points := fs.Int("points", 11, "Tc grid size (sweep)")
	addr := fs.String("addr", "http://localhost:8080", "base URL of a running popsd (metrics)")
	dataDir := fs.String("data-dir", "", "durable result cache shared across invocations (optimize, sweep)")
	parallelism := fs.Int("parallelism", 0, "intra-circuit parallelism of the timing/power kernels: 0 auto, 1 serial, n>1 at most n workers (optimize, sweep)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	if err := run(os.Stdout, cmd, *benchFile, *circuit, *addr, *dataDir, *tc, *ratio, *k, *points, *parallelism); err != nil {
		fmt.Fprintln(os.Stderr, "pops:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pops <analyze|bounds|optimize|sweep|leakage|report|slack|power|flimit|calibrate|list|metrics> [flags]
run "pops <command> -h" for command flags`)
}

// load resolves the -bench/-circuit pair to an elaborated circuit for
// the in-process subcommands, through the same source validation and
// ingestion pass as the engine-backed ones (engineSource/ParseBench).
func load(benchFile, circuit string) (*pops.Circuit, error) {
	bench, name, err := engineSource(benchFile, circuit)
	if err != nil {
		return nil, err
	}
	if bench != "" {
		pb, err := pops.ParseBench(bench)
		if err != nil {
			return nil, err
		}
		return pb.Circuit, nil
	}
	return pops.Benchmark(name)
}

// engineSource resolves the -bench/-circuit pair into the inline-bench
// or named-circuit fields of an engine request: a -bench file rides as
// raw source through the engine's ingestion pass (the same path as the
// HTTP service), a -circuit name as a suite reference. Exactly one
// must be given — the engine enforces the same rule, so the CLI never
// silently drops a flag the HTTP layer would reject.
func engineSource(benchFile, circuit string) (bench, name string, err error) {
	switch {
	case benchFile != "" && circuit != "":
		return "", "", fmt.Errorf("-bench and -circuit are mutually exclusive")
	case benchFile != "":
		buf, err := os.ReadFile(benchFile)
		if err != nil {
			return "", "", err
		}
		return string(buf), "", nil
	case circuit != "":
		return "", circuit, nil
	default:
		return "", "", fmt.Errorf("need -bench or -circuit")
	}
}

// printStats prints the one-line circuit header shared by analyze and
// report.
func printStats(w io.Writer, c *pops.Circuit, worst *pops.STAResult) {
	st := c.Stats()
	fmt.Fprintf(w, "circuit %s: %d gates, %d inputs, %d outputs, depth %d\n",
		c.Name, st.Gates, st.Inputs, st.Outputs, st.Depth)
	fmt.Fprintf(w, "worst delay: %.1f ps at %s\n", worst.WorstDelay, worst.WorstOutput.Name)
}

// printPower estimates and prints dynamic power, shared by power and
// report.
func printPower(w io.Writer, c *pops.Circuit, proc *pops.Process) error {
	est, err := pops.EstimatePower(c, proc, pops.PowerOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dynamic power: %.1f µW at 100 MHz (mean activity %.2f, switched cap %.0f fF/cycle)\n",
		est.TotalUW, est.MeanActivity, est.SwitchedCapFF)
	return nil
}

// newEngine builds the batch engine behind optimize and sweep, with a
// durable result tier under dataDir when one is given: a later pops
// run (or a popsd started on the same directory) serves repeated
// (circuit, Tc) results from disk instead of recomputing. The returned
// closer flushes and releases the tier.
func newEngine(dataDir string) (*pops.Engine, func(), error) {
	if dataDir == "" {
		eng, err := pops.NewEngine(pops.EngineConfig{})
		return eng, func() {}, err
	}
	disk, err := pops.OpenDiskStore(filepath.Join(dataDir, "results"), nil)
	if err != nil {
		return nil, nil, err
	}
	eng, err := pops.NewEngine(pops.EngineConfig{Results: disk})
	if err != nil {
		disk.Close()
		return nil, nil, err
	}
	return eng, func() { disk.Close() }, nil
}

func run(w io.Writer, cmd, benchFile, circuit, addr, dataDir string, tc, ratio float64, k, points, parallelism int) error {
	proc := pops.DefaultProcess()
	model := pops.NewModel(proc)

	switch cmd {
	case "metrics":
		// Scrape a running daemon's Prometheus exposition and relay it
		// verbatim — the CLI face of GET /metrics.
		resp, err := http.Get(strings.TrimSuffix(addr, "/") + "/metrics")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("metrics: %s answered %s", addr, resp.Status)
		}
		_, err = io.Copy(w, resp.Body)
		return err

	case "optimize":
		bench, name, err := engineSource(benchFile, circuit)
		if err != nil {
			return err
		}
		if tc == 0 && ratio == 0 {
			return fmt.Errorf("optimize needs -tc or -ratio")
		}
		eng, closeStore, err := newEngine(dataDir)
		if err != nil {
			return err
		}
		defer closeStore()
		res, err := eng.Optimize(context.Background(), pops.OptimizeRequest{
			Circuit: name, Bench: bench, Tc: tc, Ratio: ratio, Parallelism: parallelism,
		})
		if err != nil {
			return err
		}
		out := res.Outcome
		fmt.Fprintf(w, "constraint: %.1f ps\n", res.Tc)
		fmt.Fprintf(w, "result: delay %.1f ps, circuit area %.1f µm, feasible=%v\n",
			out.Delay, out.Area, out.Feasible)
		fmt.Fprintf(w, "rounds=%d buffers=%d nor-rewrites=%d\n",
			out.Rounds, out.Buffers, out.NorRewrites)
		for i, po := range out.PathOutcomes {
			fmt.Fprintf(w, "  round %d: domain=%s method=%s delay=%.1f area=%.1f\n",
				i+1, po.Domain, po.Method, po.Delay, po.Area)
		}
		return nil

	case "sweep":
		bench, name, err := engineSource(benchFile, circuit)
		if err != nil {
			return err
		}
		eng, closeStore, err := newEngine(dataDir)
		if err != nil {
			return err
		}
		defer closeStore()
		sw, err := eng.Sweep(context.Background(), pops.SweepRequest{
			Circuit: name, Bench: bench, Points: points, Parallelism: parallelism,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "circuit %s: Tmin %.1f ps, Tmax %.1f ps\n", sw.Circuit, sw.Tmin, sw.Tmax)
		t := report.NewTable("area/delay trade-off", "Ratio", "Tc (ps)", "Delay (ps)", "Area (µm)", "Feasible", "Rounds", "Buffers")
		for _, p := range sw.Points {
			t.AddRow(fmt.Sprintf("%.2f", p.Ratio), p.Tc, p.Delay, p.Area, p.Feasible, p.Rounds, p.Buffers)
		}
		fmt.Fprint(w, t.String())
		return nil

	case "list":
		t := report.NewTable("benchmark suite", "Name", "Inputs", "Outputs", "Gates", "Path gates")
		for _, s := range pops.Benchmarks() {
			t.AddRow(s.Name, s.Inputs, s.Outputs, s.Gates, s.PathLen)
		}
		fmt.Fprint(w, t.String())
		return nil

	case "flimit":
		t := report.NewTable("library characterization (driver: INV)", "Gate", "Flimit")
		for _, e := range pops.CharacterizeLibrary(model) {
			t.AddRow(e.Gate.String(), e.Flimit)
		}
		fmt.Fprint(w, t.String())
		return nil

	case "calibrate":
		res, err := pops.Calibrate(proc, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "fitted S0 = %.3f (library %.3f)\n", res.S0, proc.S0)
		t := report.NewTable("fitted logical weights (transistor-level)", "Gate", "DW_HL", "DW_LH")
		for _, gt := range pops.CharacterizeLibrary(model) {
			if w, ok := res.Weights[gt.Gate]; ok {
				t.AddRow(gt.Gate.String(), w.HL, w.LH)
			}
		}
		fmt.Fprint(w, t.String())
		fmt.Fprintf(w, "library RMS deviation: %.1f%%\n", res.LibraryRMS*100)
		return nil
	}

	c, err := load(benchFile, circuit)
	if err != nil {
		return err
	}

	switch cmd {
	case "analyze":
		res, err := pops.Analyze(c, model)
		if err != nil {
			return err
		}
		printStats(w, c, res)
		paths, err := pops.KWorstPaths(c, model, k)
		if err != nil {
			return err
		}
		t := report.NewTable("worst paths", "#", "gates", "delay (ps)", "area (µm)")
		for i, pa := range paths {
			t.AddRow(i+1, pa.Len(), model.PathDelayWorst(pa), pa.Area(proc))
		}
		fmt.Fprint(w, t.String())
		return nil

	case "bounds":
		pa, _, err := pops.CriticalPath(c, model)
		if err != nil {
			return err
		}
		b, err := pops.Bounds(model, pa.Clone())
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "critical path: %d gates\n", pa.Len())
		fmt.Fprintf(w, "Tmin = %.1f ps   Tmax = %.1f ps\n", b.Tmin, b.Tmax)
		fmt.Fprintf(w, "domains: hard < %.1f ps ≤ medium ≤ %.1f ps < weak\n",
			1.2*b.Tmin, 2.5*b.Tmin)
		return nil

	case "leakage":
		pa, _, err := pops.CriticalPath(c, model)
		if err != nil {
			return err
		}
		if tc == 0 {
			if ratio == 0 {
				return fmt.Errorf("leakage needs -tc or -ratio")
			}
			b, err := pops.Bounds(model, pa.Clone())
			if err != nil {
				return err
			}
			tc = ratio * b.Tmin
		}
		proto, err := pops.NewProtocol(pops.ProtocolConfig{Model: model})
		if err != nil {
			return err
		}
		out, err := proto.OptimizeWithLeakage(context.Background(), c, tc, pops.LeakageOptions{})
		if err != nil {
			return err
		}
		lr := out.Leakage
		fmt.Fprintf(w, "constraint: %.1f ps\n", tc)
		fmt.Fprintf(w, "result: delay %.1f ps, circuit area %.1f µm, feasible=%v\n",
			out.Delay, out.Area, out.Feasible)
		fmt.Fprintf(w, "multi-Vt: %d of %d candidates promoted\n", lr.Promoted, lr.Considered)
		t := report.NewTable("Vt census", "Class", "Gates")
		for _, cls := range []pops.VtClass{pops.LVT, pops.SVT, pops.HVT} {
			t.AddRow(cls.String(), lr.ByClass[cls])
		}
		fmt.Fprint(w, t.String())
		fmt.Fprint(w, report.PowerBreakdown(lr.DynamicUW, lr.StaticBeforeUW, lr.StaticAfterUW).String())
		return nil

	case "power":
		st := c.Stats()
		fmt.Fprintf(w, "circuit %s: %d gates\n", c.Name, st.Gates)
		return printPower(w, c, proc)

	case "report":
		res, err := pops.Analyze(c, model)
		if err != nil {
			return err
		}
		printStats(w, c, res)
		pa, _, err := pops.CriticalPath(c, model)
		if err != nil {
			return err
		}
		b, err := pops.Bounds(model, pa.Clone())
		if err != nil {
			return err
		}
		t := report.NewTable("critical path", "Gates", "Tmin (ps)", "Tmax (ps)", "Hard < (ps)", "Weak > (ps)")
		t.AddRow(pa.Len(), b.Tmin, b.Tmax, 1.2*b.Tmin, 2.5*b.Tmin)
		fmt.Fprint(w, t.String())
		return printPower(w, c, proc)

	case "slack":
		res, err := pops.Analyze(c, model)
		if err != nil {
			return err
		}
		if tc == 0 {
			if ratio == 0 {
				ratio = 1.0
			}
			tc = ratio * res.WorstDelay
		}
		rep, err := res.Slacks(tc)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "constraint %.1f ps: worst slack %.1f ps, %d violating nodes\n",
			tc, rep.WorstSlack, rep.Violations)
		t := report.NewTable("most critical nodes", "Node", "Slack (ps)")
		for _, n := range rep.CriticalBySlack(k) {
			t.AddRow(n.Name, rep.Slack(n))
		}
		fmt.Fprint(w, t.String())
		return nil
	}
	usage()
	return fmt.Errorf("unknown command %q", cmd)
}
