package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden runs one CLI invocation and compares its stdout against
// testdata/<name>.golden. Everything the CLI prints is deterministic:
// benchmarks generate from fixed seeds, power vectors from seed 1, and
// the protocol itself is deterministic by construction.
func golden(t *testing.T, name, cmd, circuit string, tc, ratio float64, k int) {
	t.Helper()
	var buf bytes.Buffer
	if err := run(&buf, cmd, "", circuit, tc, ratio, k); err != nil {
		t.Fatalf("%s: %v", cmd, err)
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./cmd/pops -update): %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("%s output drifted from %s\n--- got\n%s--- want\n%s", cmd, path, got, want)
	}
}

func TestOptimizeGolden(t *testing.T) {
	golden(t, "optimize_fpd", "optimize", "fpd", 0, 1.5, 3)
}

func TestOptimizeHardGolden(t *testing.T) {
	golden(t, "optimize_c432_hard", "optimize", "c432", 0, 1.1, 3)
}

func TestReportGolden(t *testing.T) {
	golden(t, "report_fpd", "report", "fpd", 0, 0, 3)
}

func TestLeakageGolden(t *testing.T) {
	golden(t, "leakage_fpd", "leakage", "fpd", 0, 1.5, 3)
}

func TestLeakageHardGolden(t *testing.T) {
	golden(t, "leakage_c432_hard", "leakage", "c432", 0, 1.1, 3)
}

func TestListGolden(t *testing.T) {
	golden(t, "list", "list", "", 0, 0, 3)
}

func TestBoundsGolden(t *testing.T) {
	golden(t, "bounds_c880", "bounds", "c880", 0, 0, 3)
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "optimize", "", "fpd", 0, 0, 3); err == nil ||
		!strings.Contains(err.Error(), "-tc or -ratio") {
		t.Fatalf("optimize without constraint: %v", err)
	}
	if err := run(&buf, "leakage", "", "fpd", 0, 0, 3); err == nil ||
		!strings.Contains(err.Error(), "-tc or -ratio") {
		t.Fatalf("leakage without constraint: %v", err)
	}
	if err := run(&buf, "analyze", "", "", 0, 0, 3); err == nil ||
		!strings.Contains(err.Error(), "-bench or -circuit") {
		t.Fatalf("analyze without circuit: %v", err)
	}
	if err := run(&buf, "frobnicate", "", "fpd", 0, 0, 3); err == nil ||
		!strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("unknown command: %v", err)
	}
}
