package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/iscas"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden runs one CLI invocation and compares its stdout against
// testdata/<name>.golden. Everything the CLI prints is deterministic:
// benchmarks generate from fixed seeds, power vectors from seed 1, and
// the protocol itself is deterministic by construction.
func golden(t *testing.T, name, cmd, circuit string, tc, ratio float64, k int) {
	t.Helper()
	var buf bytes.Buffer
	if err := run(&buf, cmd, "", circuit, "", "", tc, ratio, k, 11, 0); err != nil {
		t.Fatalf("%s: %v", cmd, err)
	}
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./cmd/pops -update): %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("%s output drifted from %s\n--- got\n%s--- want\n%s", cmd, path, got, want)
	}
}

func TestOptimizeGolden(t *testing.T) {
	golden(t, "optimize_fpd", "optimize", "fpd", 0, 1.5, 3)
}

func TestOptimizeHardGolden(t *testing.T) {
	golden(t, "optimize_c432_hard", "optimize", "c432", 0, 1.1, 3)
}

func TestReportGolden(t *testing.T) {
	golden(t, "report_fpd", "report", "fpd", 0, 0, 3)
}

func TestLeakageGolden(t *testing.T) {
	golden(t, "leakage_fpd", "leakage", "fpd", 0, 1.5, 3)
}

func TestLeakageHardGolden(t *testing.T) {
	golden(t, "leakage_c432_hard", "leakage", "c432", 0, 1.1, 3)
}

func TestListGolden(t *testing.T) {
	golden(t, "list", "list", "", 0, 0, 3)
}

func TestBoundsGolden(t *testing.T) {
	golden(t, "bounds_c880", "bounds", "c880", 0, 0, 3)
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "optimize", "", "fpd", "", "", 0, 0, 3, 11, 0); err == nil ||
		!strings.Contains(err.Error(), "-tc or -ratio") {
		t.Fatalf("optimize without constraint: %v", err)
	}
	if err := run(&buf, "leakage", "", "fpd", "", "", 0, 0, 3, 11, 0); err == nil ||
		!strings.Contains(err.Error(), "-tc or -ratio") {
		t.Fatalf("leakage without constraint: %v", err)
	}
	if err := run(&buf, "analyze", "", "", "", "", 0, 0, 3, 11, 0); err == nil ||
		!strings.Contains(err.Error(), "-bench or -circuit") {
		t.Fatalf("analyze without circuit: %v", err)
	}
	if err := run(&buf, "frobnicate", "", "fpd", "", "", 0, 0, 3, 11, 0); err == nil ||
		!strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("unknown command: %v", err)
	}
	// Both sources is rejected, never silently resolved — the same rule
	// the engine and HTTP layer enforce.
	if err := run(&buf, "optimize", "x.bench", "fpd", "", "", 0, 1.3, 3, 11, 0); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("optimize with both sources: %v", err)
	}
	if err := run(&buf, "analyze", "x.bench", "fpd", "", "", 0, 0, 3, 11, 0); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("analyze with both sources: %v", err)
	}
}

func TestSweepGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "sweep", "", "fpd", "", "", 0, 0, 3, 5, 0); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	path := filepath.Join("testdata", "sweep_fpd.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./cmd/pops -update): %v", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("sweep output drifted\n--- got\n%s--- want\n%s", got, want)
	}
}

// TestOptimizeBenchFileMatchesFacade pins the CLI entry point of the
// bring-your-own-netlist path against the facade: `pops optimize
// -bench file` must print exactly the numbers pops.OptimizeBench
// computes for the same source, proving both run one engine path.
func TestOptimizeBenchFileMatchesFacade(t *testing.T) {
	src := iscas.C17Bench()
	dir := t.TempDir()
	file := filepath.Join(dir, "c17.bench")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := run(&got, "optimize", file, "", "", "", 0, 1.3, 3, 11, 0); err != nil {
		t.Fatalf("optimize -bench: %v", err)
	}

	eng, err := pops.NewEngine(pops.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pops.OptimizeBench(context.Background(), eng, src,
		pops.OptimizeRequest{Ratio: 1.3})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	out := res.Outcome
	fmt.Fprintf(&want, "constraint: %.1f ps\n", res.Tc)
	fmt.Fprintf(&want, "result: delay %.1f ps, circuit area %.1f µm, feasible=%v\n",
		out.Delay, out.Area, out.Feasible)
	fmt.Fprintf(&want, "rounds=%d buffers=%d nor-rewrites=%d\n",
		out.Rounds, out.Buffers, out.NorRewrites)
	for i, po := range out.PathOutcomes {
		fmt.Fprintf(&want, "  round %d: domain=%s method=%s delay=%.1f area=%.1f\n",
			i+1, po.Domain, po.Method, po.Delay, po.Area)
	}
	if got.String() != want.String() {
		t.Errorf("CLI output diverged from the facade\n--- cli\n%s--- facade\n%s",
			got.String(), want.String())
	}
}

// TestMetricsSubcommand drives `pops metrics` against an in-process
// engine server: the subcommand must relay the daemon's Prometheus
// exposition verbatim and fail cleanly on a non-200 answer.
func TestMetricsSubcommand(t *testing.T) {
	eng, err := pops.NewEngine(pops.EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := pops.NewEngineServer(context.Background(), eng)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown()

	var buf bytes.Buffer
	if err := run(&buf, "metrics", "", "", ts.URL, "", 0, 0, 3, 11, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# TYPE pops_http_requests_total counter", "pops_queue_depth"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%.400s", want, out)
		}
	}

	if err := run(&buf, "metrics", "", "", ts.URL+"/nope", "", 0, 0, 3, 11, 0); err == nil ||
		!strings.Contains(err.Error(), "answered") {
		t.Fatalf("metrics against a 404 path returned %v, want status error", err)
	}
}

// TestOptimizeDataDirWarmCache: two optimize runs over the same
// -data-dir print byte-identical reports, the second served from the
// records the first persisted — the CLI face of the durable result
// tier.
func TestOptimizeDataDirWarmCache(t *testing.T) {
	dir := t.TempDir()
	var first, second bytes.Buffer
	if err := run(&first, "optimize", "", "fpd", "", dir, 0, 1.3, 3, 11, 0); err != nil {
		t.Fatal(err)
	}
	psr, err := filepath.Glob(filepath.Join(dir, "results", "*.psr"))
	if err != nil {
		t.Fatal(err)
	}
	if len(psr) == 0 {
		t.Fatal("optimize -data-dir persisted no records")
	}
	if err := run(&second, "optimize", "", "fpd", "", dir, 0, 1.3, 3, 11, 0); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("warm -data-dir run differs:\ncold:\n%s\nwarm:\n%s", first.String(), second.String())
	}
}
