// Command experiments regenerates every table and figure of the
// paper's evaluation into a results directory (ASCII + CSV).
//
// Usage:
//
//	experiments [-out results] [-quick] [-only fig2,table1]
//
// -quick restricts the benchmark set to a fast subset; -only selects
// specific artifacts (comma-separated ids: fig1 fig2 fig3 fig4 fig6
// fig8 table1 table2 table3 table4 ablations).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	out := flag.String("out", "results", "output directory")
	quick := flag.Bool("quick", false, "use the fast benchmark subset")
	only := flag.String("only", "", "comma-separated artifact ids (default: all)")
	flag.Parse()

	if err := run(*out, *quick, *only); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(outDir string, quick bool, only string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	env := experiments.NewEnv()
	names := experiments.AllBenchmarks()
	if quick {
		names = experiments.SmallBenchmarks()
	}
	selected := map[string]bool{}
	for _, id := range strings.Split(only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[id] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	type artifact struct {
		id  string
		run func() error
	}
	writeTable := func(name string, t *report.Table) error {
		if err := os.WriteFile(filepath.Join(outDir, name+".txt"), []byte(t.String()), 0o644); err != nil {
			return err
		}
		var csv strings.Builder
		if err := t.WriteCSV(&csv); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(outDir, name+".csv"), []byte(csv.String()), 0o644)
	}
	writeFigure := func(name string, f *report.Figure) error {
		return os.WriteFile(filepath.Join(outDir, name+".txt"), []byte(f.String()), 0o644)
	}

	artifacts := []artifact{
		{"fig1", func() error {
			f, err := env.Fig1Figure("c432")
			if err != nil {
				return err
			}
			return writeFigure("fig1_tmin_iterations", f)
		}},
		{"fig2", func() error {
			rows, err := env.Fig2(names)
			if err != nil {
				return err
			}
			return writeTable("fig2_tmin_pops_vs_amps", experiments.Fig2Table(rows))
		}},
		{"fig3", func() error {
			f, err := env.Fig3Figure("c432")
			if err != nil {
				return err
			}
			return writeFigure("fig3_sensitivity_family", f)
		}},
		{"fig4", func() error {
			rows, err := env.Fig4(names, 1.2)
			if err != nil {
				return err
			}
			return writeTable("fig4_area_pops_vs_amps", experiments.Fig4Table(rows))
		}},
		{"table1", func() error {
			rows, err := env.Table1(names)
			if err != nil {
				return err
			}
			return writeTable("table1_cpu_time", experiments.Table1Table(rows))
		}},
		{"table2", func() error {
			rows, err := env.Table2()
			if err != nil {
				return err
			}
			return writeTable("table2_flimit", experiments.Table2Table(rows))
		}},
		{"table3", func() error {
			rows, err := env.Table3(names)
			if err != nil {
				return err
			}
			return writeTable("table3_buffer_gain", experiments.Table3Table(rows))
		}},
		{"fig6", func() error {
			f, err := env.Fig6Figure("c1355")
			if err != nil {
				return err
			}
			return writeFigure("fig6_constraint_domains", f)
		}},
		{"fig8", func() error {
			rows, err := env.Fig8(names)
			if err != nil {
				return err
			}
			for i, t := range experiments.Fig8Tables(rows) {
				domain := []string{"hard", "medium", "weak"}[i]
				if err := writeTable("fig8_area_"+domain, t); err != nil {
					return err
				}
			}
			return nil
		}},
		{"table4", func() error {
			set := []string{"c1355", "c1908", "c5315", "c7552"}
			if quick {
				set = []string{"c1355", "c1908"}
			}
			rows, err := env.Table4(set)
			if err != nil {
				return err
			}
			return writeTable("table4_restructure", experiments.Table4Table(rows))
		}},
		{"robustness", func() error {
			set := []string{"fpd", "c880", "c1355"}
			rows, err := env.WireUncertainty(set, 0.3, 3)
			if err != nil {
				return err
			}
			if err := writeTable("robustness_wire_uncertainty", experiments.WireUncertaintyTable(rows)); err != nil {
				return err
			}
			var sweeps []*experiments.SeedSweepRow
			for _, name := range set {
				row, err := env.SeedSweep(name, 4)
				if err != nil {
					return err
				}
				sweeps = append(sweeps, row)
			}
			return writeTable("robustness_seed_sweep", experiments.SeedSweepTable(sweeps))
		}},
		{"ablations", func() error {
			var rows []experiments.AblationRow
			for _, f := range []func(string) (*experiments.AblationRow, error){
				env.AblationSlope, env.AblationMiller, env.AblationSeeding,
				env.AblationLogicalEffort,
			} {
				r, err := f("c880")
				if err != nil {
					return err
				}
				rows = append(rows, *r)
			}
			su, err := env.AblationSutherland("c880", nil)
			if err != nil {
				return err
			}
			rows = append(rows, su...)
			return writeTable("ablations", experiments.AblationTable(rows))
		}},
	}

	for _, a := range artifacts {
		if !want(a.id) {
			continue
		}
		t0 := time.Now()
		if err := a.run(); err != nil {
			return fmt.Errorf("%s: %w", a.id, err)
		}
		fmt.Printf("%-10s done in %v\n", a.id, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Println("results written to", outDir)
	return nil
}
