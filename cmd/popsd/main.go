// Command popsd serves the optimization protocol as a long-running
// JSON HTTP daemon over the concurrent batch engine.
//
// Usage:
//
//	popsd [-addr :8080] [-workers N] [-max-rounds N] [-parallelism N]
//	      [-pprof-addr addr] [-log-level info] [-log-format text]
//	      [-data-dir dir] [-flush-interval 1s]
//
// Endpoints (see internal/engine's HTTP layer):
//
//	GET  /healthz
//	GET  /metrics
//	POST /v1/optimize   {"circuit":"c432","ratio":1.4}
//	POST /v1/sweep      {"circuit":"c880","points":9}
//	POST /v1/suite      {"benchmarks":["fpd","c432"],"ratios":[1.2,2.0]}
//	GET  /v1/jobs
//	GET  /v1/jobs/{id}
//
// POSTs enqueue async jobs and answer 202 with a job ID for polling;
// add "wait": true to block for the result. Every POST also accepts
// "leakage": true to run the multi-Vt leakage pass after sizing and
// report the dynamic/leakage/total power split, and optimize/sweep
// take "bench" (suite takes "benches") — a raw ISCAS .bench netlist
// source — in place of a named benchmark, validated behind the
// engine's hardened ingestion pass. See docs/API.md for the full
// request/response reference.
//
// Observability: GET /metrics exposes the engine's instruments in the
// Prometheus text format, every response carries an X-Request-ID that
// also lands in the submitted job's record, and the daemon logs
// structured access/job lines on stderr (-log-level debug|info|warn|
// error, -log-format text|json).
//
// Durability: -data-dir names a directory where every finished
// optimization result is persisted (content-addressed, checksummed,
// write-behind batched on -flush-interval) and accepted jobs are
// journaled. A restarted daemon serves previously computed results
// from disk without recomputing and re-submits journaled jobs that
// never finished. With -data-dir unset the daemon is memory-only,
// exactly as before. See the "Durability" section of
// docs/ARCHITECTURE.md.
//
// -pprof-addr opens an additional net/http/pprof debug listener (e.g.
// "localhost:6060") so a running daemon can be profiled in place; it
// is off by default and should never be exposed publicly. A bad
// address fails startup instead of degrading silently.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/store"
)

// options carries the parsed command line into run.
type options struct {
	addr          string
	pprofAddr     string
	workers       int
	maxRounds     int
	parallelism   int
	logLevel      string
	logFormat     string
	dataDir       string
	flushInterval time.Duration
}

// shutdownTimeout bounds the graceful drain of both listeners and the
// async job store.
const shutdownTimeout = 15 * time.Second

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", ":8080", "listen address")
	flag.IntVar(&opts.workers, "workers", runtime.GOMAXPROCS(0), "worker-pool size")
	flag.IntVar(&opts.maxRounds, "max-rounds", 0, "per-circuit protocol round bound (0: library default)")
	flag.IntVar(&opts.parallelism, "parallelism", 0, "per-task intra-circuit parallelism of the timing/power kernels (0: auto-size from idle pool capacity, 1: serial)")
	flag.StringVar(&opts.pprofAddr, "pprof-addr", "", "listen address of the opt-in net/http/pprof debug endpoint (empty: disabled)")
	flag.StringVar(&opts.logLevel, "log-level", "info", "minimum log level: debug, info, warn or error")
	flag.StringVar(&opts.logFormat, "log-format", "text", "log line encoding: text or json")
	flag.StringVar(&opts.dataDir, "data-dir", "", "durability directory: persisted results and the job journal (empty: memory-only)")
	flag.DurationVar(&opts.flushInterval, "flush-interval", time.Second, "write-behind flush cadence of the result store (with -data-dir)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, opts, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "popsd:", err)
		os.Exit(1)
	}
}

// pprofMux mounts the standard net/http/pprof handlers on a dedicated
// mux, so the debug listener exposes exactly the profiling routes and
// nothing that may have been registered on http.DefaultServeMux.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// durability bundles the -data-dir machinery: the on-disk result
// store behind its write-behind batcher, and the job journal. A nil
// *durability (no -data-dir) leaves the daemon memory-only.
type durability struct {
	disk    *store.Disk
	batcher *store.Batcher
	journal *store.Journal
}

// Close flushes and releases the durable tier. Order matters: the
// batcher's final flush must land before the disk store closes, and
// the journal closes first so no terminal record races the teardown.
func (d *durability) Close() {
	if d == nil {
		return
	}
	d.journal.Close()
	d.batcher.Close()
	d.disk.Close()
}

// openDurability builds the durable tier under dataDir: persisted
// results in dataDir/results (batched behind flushInterval) and the
// job journal at dataDir/jobs.journal. The returned entries are the
// journal's surviving records, to be folded by Server.Replay once the
// server exists. Store write failures are counted on the engine's
// metrics via the late-bound eng pointer — the engine is constructed
// after the batcher because the batcher is part of its Config.
func openDurability(dataDir string, flushInterval time.Duration, logger *slog.Logger, eng **engine.Engine) (*durability, []store.JournalEntry, error) {
	disk, err := store.OpenDisk(filepath.Join(dataDir, "results"), logger)
	if err != nil {
		return nil, nil, fmt.Errorf("result store: %w", err)
	}
	batcher := store.NewBatcher(disk, store.BatcherOptions{
		FlushInterval: flushInterval,
		Logger:        logger,
		OnError: func(key string, err error) {
			if e := *eng; e != nil {
				e.Metrics().StoreErrorHook()(key, err)
			}
		},
	})
	journal, entries, err := store.OpenJournal(filepath.Join(dataDir, "jobs.journal"), logger)
	if err != nil {
		batcher.Close()
		disk.Close()
		return nil, nil, fmt.Errorf("job journal: %w", err)
	}
	return &durability{disk: disk, batcher: batcher, journal: journal}, entries, nil
}

// run builds the engine and both listeners, then serves until ctx is
// cancelled. Listeners are opened synchronously so a bad -addr or
// -pprof-addr fails startup with a clear error instead of a log line
// from a doomed goroutine; likewise an unusable -data-dir.
func run(ctx context.Context, opts options, logw io.Writer) error {
	logger, err := obs.NewLogger(logw, opts.logLevel, opts.logFormat)
	if err != nil {
		return err
	}

	cfg := engine.Config{Workers: opts.workers, MaxRounds: opts.maxRounds, Parallelism: opts.parallelism}
	var (
		eng     *engine.Engine
		dur     *durability
		entries []store.JournalEntry
	)
	if opts.dataDir != "" {
		dur, entries, err = openDurability(opts.dataDir, opts.flushInterval, logger, &eng)
		if err != nil {
			return err
		}
		defer dur.Close()
		cfg.Results = dur.batcher
		logger.Info("durable store open",
			"dir", opts.dataDir, "results", dur.disk.Len(), "journal_records", len(entries))
	}

	eng, err = engine.New(cfg)
	if err != nil {
		return err
	}
	srvOpts := []engine.ServerOption{engine.WithLogger(logger)}
	if dur != nil {
		srvOpts = append(srvOpts, engine.WithJournal(dur.journal))
	}
	srv := engine.NewServer(ctx, eng, srvOpts...)
	if dur != nil {
		n, err := srv.Replay(entries)
		if err != nil {
			// Replay is best-effort durability; a failure to re-submit or
			// compact must not keep the daemon down.
			logger.Warn("job replay incomplete", "error", err.Error())
		}
		if n > 0 {
			logger.Info("replayed unfinished jobs", "count", n)
		}
	}

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	var pprofLn net.Listener
	if opts.pprofAddr != "" {
		pprofLn, err = net.Listen("tcp", opts.pprofAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("pprof listener: %w", err)
		}
	}
	return serve(ctx, logger, eng, srv, ln, pprofLn)
}

// serve runs the API server (and the optional pprof server) on
// already-open listeners until ctx is cancelled, then drains both
// gracefully under one shared shutdownTimeout deadline and closes the
// job store. Tests drive it directly with ephemeral-port listeners.
func serve(ctx context.Context, logger *slog.Logger, eng *engine.Engine, srv *engine.Server, ln, pprofLn net.Listener) error {
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", ln.Addr().String(), "workers", eng.Workers())
		errc <- httpSrv.Serve(ln)
	}()

	var pprofSrv *http.Server
	if pprofLn != nil {
		pprofSrv = &http.Server{Handler: pprofMux(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("pprof debug endpoint", "addr", pprofLn.Addr().String())
			if err := pprofSrv.Serve(pprofLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Warn("pprof listener failed", "error", err.Error())
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if pprofSrv != nil {
		// Graceful Shutdown under the same deadline as the API server: an
		// in-flight profile download completes when it can, and the shared
		// deadline still caps the total drain so a hung profiler cannot
		// stall the exit.
		if err := pprofSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Warn("pprof shutdown", "error", err.Error())
		}
	}
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	srv.Shutdown() // drain async jobs
	return nil
}
