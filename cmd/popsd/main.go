// Command popsd serves the optimization protocol as a long-running
// JSON HTTP daemon over the concurrent batch engine.
//
// Usage:
//
//	popsd [-addr :8080] [-workers N] [-max-rounds N] [-pprof-addr addr]
//
// Endpoints (see internal/engine's HTTP layer):
//
//	GET  /healthz
//	POST /v1/optimize   {"circuit":"c432","ratio":1.4}
//	POST /v1/sweep      {"circuit":"c880","points":9}
//	POST /v1/suite      {"benchmarks":["fpd","c432"],"ratios":[1.2,2.0]}
//	GET  /v1/jobs
//	GET  /v1/jobs/{id}
//
// POSTs enqueue async jobs and answer 202 with a job ID for polling;
// add "wait": true to block for the result. Every POST also accepts
// "leakage": true to run the multi-Vt leakage pass after sizing and
// report the dynamic/leakage/total power split, and optimize/sweep
// take "bench" (suite takes "benches") — a raw ISCAS .bench netlist
// source — in place of a named benchmark, validated behind the
// engine's hardened ingestion pass. See docs/API.md for the full
// request/response reference.
//
// -pprof-addr opens an additional net/http/pprof debug listener (e.g.
// "localhost:6060") so a running daemon can be profiled in place; it
// is off by default and should never be exposed publicly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool size")
	maxRounds := flag.Int("max-rounds", 0, "per-circuit protocol round bound (0: library default)")
	pprofAddr := flag.String("pprof-addr", "", "listen address of the opt-in net/http/pprof debug endpoint (empty: disabled)")
	flag.Parse()

	if err := run(*addr, *workers, *maxRounds, *pprofAddr); err != nil {
		fmt.Fprintln(os.Stderr, "popsd:", err)
		os.Exit(1)
	}
}

// pprofMux mounts the standard net/http/pprof handlers on a dedicated
// mux, so the debug listener exposes exactly the profiling routes and
// nothing that may have been registered on http.DefaultServeMux.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run(addr string, workers, maxRounds int, pprofAddr string) error {
	eng, err := engine.New(engine.Config{Workers: workers, MaxRounds: maxRounds})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := engine.NewServer(ctx, eng)
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("popsd: listening on %s with %d workers", addr, eng.Workers())
		errc <- httpSrv.ListenAndServe()
	}()

	var pprofSrv *http.Server
	if pprofAddr != "" {
		pprofSrv = &http.Server{
			Addr:              pprofAddr,
			Handler:           pprofMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("popsd: pprof debug endpoint on %s", pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("popsd: pprof listener: %v", err)
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("popsd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if pprofSrv != nil {
		// Close, not Shutdown: a debug endpoint needs no graceful drain,
		// and a long-running profile request must not eat the 15 s
		// budget the API jobs' drain depends on.
		_ = pprofSrv.Close()
	}
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	srv.Shutdown() // drain async jobs
	return nil
}
