// Command popsd serves the optimization protocol as a long-running
// JSON HTTP daemon over the concurrent batch engine.
//
// Usage:
//
//	popsd [-addr :8080] [-workers N] [-max-rounds N]
//
// Endpoints (see internal/engine's HTTP layer):
//
//	GET  /healthz
//	POST /v1/optimize   {"circuit":"c432","ratio":1.4}
//	POST /v1/sweep      {"circuit":"c880","points":9}
//	POST /v1/suite      {"benchmarks":["fpd","c432"],"ratios":[1.2,2.0]}
//	GET  /v1/jobs
//	GET  /v1/jobs/{id}
//
// POSTs enqueue async jobs and answer 202 with a job ID for polling;
// add "wait": true to block for the result. Every POST also accepts
// "leakage": true to run the multi-Vt leakage pass after sizing and
// report the dynamic/leakage/total power split. See docs/API.md for
// the full request/response reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool size")
	maxRounds := flag.Int("max-rounds", 0, "per-circuit protocol round bound (0: library default)")
	flag.Parse()

	if err := run(*addr, *workers, *maxRounds); err != nil {
		fmt.Fprintln(os.Stderr, "popsd:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, maxRounds int) error {
	eng, err := engine.New(engine.Config{Workers: workers, MaxRounds: maxRounds})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := engine.NewServer(ctx, eng)
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("popsd: listening on %s with %d workers", addr, eng.Workers())
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("popsd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	srv.Shutdown() // drain async jobs
	return nil
}
