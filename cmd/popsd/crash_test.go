// Crash-recovery end-to-end test: boots the real daemon as a child
// process with -data-dir, computes results, SIGKILLs it mid-job, and
// reboots over the same directory. The restarted daemon must serve the
// previously computed results byte-identically from disk without
// recomputing, re-submit the journaled job that never finished, and
// shrug off an injected corrupt record with a logged skip.
//
// The child is this test binary re-executed with POPSD_CRASH_CHILD=1;
// TestMain routes that invocation into run() instead of the test
// runner, so the process under test is the genuine daemon wiring —
// flags, durability setup, replay and shutdown order included.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestMain(m *testing.M) {
	if os.Getenv("POPSD_CRASH_CHILD") == "1" {
		childMain()
		return
	}
	os.Exit(m.Run())
}

// childMain is the daemon entry point of the re-executed test binary:
// main() with the command line replaced by POPSD_CHILD_* variables.
func childMain() {
	flush, err := time.ParseDuration(os.Getenv("POPSD_CHILD_FLUSH"))
	if err != nil {
		flush = 100 * time.Millisecond
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := options{
		addr:          os.Getenv("POPSD_CHILD_ADDR"),
		workers:       2,
		logLevel:      "debug",
		logFormat:     "text",
		dataDir:       os.Getenv("POPSD_CHILD_DATA_DIR"),
		flushInterval: flush,
	}
	if err := run(ctx, opts, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
}

// syncBuffer collects the child's stderr from its copier goroutine
// while the test reads it for log assertions.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// freeAddr reserves an ephemeral port and releases it for the child.
// The tiny reuse race is acceptable in a test that boots one child at
// a time.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// bootChild re-executes the test binary as a popsd daemon on addr over
// dataDir and returns the running process.
func bootChild(t *testing.T, dataDir, addr string, stderr io.Writer) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"POPSD_CRASH_CHILD=1",
		"POPSD_CHILD_ADDR="+addr,
		"POPSD_CHILD_DATA_DIR="+dataDir,
		"POPSD_CHILD_FLUSH=100ms",
	)
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became healthy", base)
}

// postResult issues a wait:true POST and returns the raw bytes of the
// finished job's result field — the payload that must be identical
// whether computed or served from disk.
func postResult(t *testing.T, url, body string) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d body %.400s", url, resp.StatusCode, data)
	}
	var wrapper struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(data, &wrapper); err != nil {
		t.Fatalf("POST %s: unmarshal %.400s: %v", url, data, err)
	}
	if len(wrapper.Result) == 0 {
		t.Fatalf("POST %s: finished job has no result: %.400s", url, data)
	}
	return wrapper.Result
}

// scrapeCounter reads one unlabeled counter off /metrics.
func scrapeCounter(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in /metrics", name)
	return 0
}

type jobView struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	Status    string `json:"status"`
	RequestID string `json:"request_id"`
}

// waitJobsSettled polls /v1/jobs until every job reached a terminal
// state and returns the final list.
func waitJobsSettled(t *testing.T, base string) []jobView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var body struct {
			Jobs []jobView `json:"jobs"`
		}
		if err := json.Unmarshal(data, &body); err != nil {
			t.Fatalf("jobs list: %v in %.300s", err, data)
		}
		settled := true
		for _, j := range body.Jobs {
			if j.Status != "done" && j.Status != "failed" {
				settled = false
			}
		}
		if settled {
			return body.Jobs
		}
		time.Sleep(200 * time.Millisecond)
	}
	t.Fatal("jobs never settled after replay")
	return nil
}

// TestCrashRecovery is the durability tentpole end to end: results
// computed before a SIGKILL are served byte-identically from disk by
// the rebooted daemon with zero recompute, the job that was in flight
// at the kill is replayed from the journal, and an injected corrupt
// record is skipped with a warning instead of poisoning the boot.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("child-process crash test skipped in -short mode")
	}
	dataDir := t.TempDir()

	optimizeBody := `{"circuit":"fpd","ratio":1.5,"leakage":true,"wait":true}`
	suiteBody := `{"benchmarks":["fpd","c432"],"ratios":[1.2],"wait":true}`
	// An inline netlist persists under its content fingerprint, so the
	// reboot must serve it from disk exactly like a named benchmark.
	benchBody := fmt.Sprintf(`{"bench":%q,"ratio":1.4,"wait":true}`,
		"# name: crashbench\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n")

	// Boot #1: compute a result set, then get killed mid-job.
	var log1 syncBuffer
	addr1 := freeAddr(t)
	child1 := bootChild(t, dataDir, addr1, &log1)
	base1 := "http://" + addr1
	waitHealthy(t, base1)

	optRes := postResult(t, base1+"/v1/optimize", optimizeBody)
	suiteRes := postResult(t, base1+"/v1/suite", suiteBody)
	benchRes := postResult(t, base1+"/v1/optimize", benchBody)

	// Let the write-behind batcher (100ms cadence in the child) flush
	// the finished results to disk before the crash.
	time.Sleep(500 * time.Millisecond)
	psr, err := filepath.Glob(filepath.Join(dataDir, "results", "*.psr"))
	if err != nil {
		t.Fatal(err)
	}
	if len(psr) == 0 {
		t.Fatalf("no persisted records before crash; child log:\n%s", log1.String())
	}

	// Submit a long async job — journaled and running, nowhere near
	// done — then SIGKILL the daemon under it.
	req, err := http.NewRequest(http.MethodPost, base1+"/v1/suite",
		strings.NewReader(`{"benchmarks":["c880","c1355"],"ratios":[1.2,1.5,2.0]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "req-crash-e2e")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async suite submit: status %d", resp.StatusCode)
	}
	time.Sleep(150 * time.Millisecond)
	if err := child1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	child1.Wait()

	// Inject a corrupt record: the reboot must skip it with a warning,
	// not refuse to serve.
	corrupt := filepath.Join(dataDir, "results", "deadbeefcafe.psr")
	if err := os.WriteFile(corrupt, []byte("not a PSR1 record"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Boot #2 over the same directory.
	var log2 syncBuffer
	addr2 := freeAddr(t)
	child2 := bootChild(t, dataDir, addr2, &log2)
	base2 := "http://" + addr2
	waitHealthy(t, base2)

	// The journaled-but-unfinished suite job was re-submitted with its
	// original request and request ID; wait for it to finish.
	jobs := waitJobsSettled(t, base2)
	var replayed *jobView
	for i, j := range jobs {
		if j.RequestID == "req-crash-e2e" {
			replayed = &jobs[i]
		}
	}
	if replayed == nil {
		t.Fatalf("killed job was not replayed; jobs after reboot: %+v\nchild log:\n%s", jobs, log2.String())
	}
	if replayed.Kind != "suite" || replayed.Status != "done" {
		t.Fatalf("replayed job = %+v, want a finished suite job", *replayed)
	}

	if !strings.Contains(log2.String(), "skipping corrupt record") {
		t.Errorf("reboot did not log the injected corrupt record skip; log:\n%s", log2.String())
	}

	// Re-request the pre-crash results: byte-identical payloads, zero
	// new engine tasks — served purely from the durable tier.
	tasksBefore := scrapeCounter(t, base2, "pops_tasks_total")
	hitsBefore := scrapeCounter(t, base2, "pops_store_hits_total")
	optRes2 := postResult(t, base2+"/v1/optimize", optimizeBody)
	suiteRes2 := postResult(t, base2+"/v1/suite", suiteBody)
	benchRes2 := postResult(t, base2+"/v1/optimize", benchBody)
	if !bytes.Equal(optRes, optRes2) {
		t.Errorf("optimize result changed across crash/reboot:\npre:  %.300s\npost: %.300s", optRes, optRes2)
	}
	if !bytes.Equal(suiteRes, suiteRes2) {
		t.Errorf("suite result changed across crash/reboot:\npre:  %.300s\npost: %.300s", suiteRes, suiteRes2)
	}
	if !bytes.Equal(benchRes, benchRes2) {
		t.Errorf("inline-bench result changed across crash/reboot:\npre:  %.300s\npost: %.300s", benchRes, benchRes2)
	}
	if tasksAfter := scrapeCounter(t, base2, "pops_tasks_total"); tasksAfter != tasksBefore {
		t.Errorf("rebooted daemon recomputed: pops_tasks_total %v -> %v, want unchanged", tasksBefore, tasksAfter)
	}
	if hitsAfter := scrapeCounter(t, base2, "pops_store_hits_total"); hitsAfter <= hitsBefore {
		t.Errorf("pops_store_hits_total %v -> %v, want growth from disk-served results", hitsBefore, hitsAfter)
	}
	if errs := scrapeCounter(t, base2, "pops_store_errors_total"); errs != 0 {
		t.Errorf("pops_store_errors_total = %v, want 0", errs)
	}

	// Graceful goodbye: SIGTERM drains jobs, closes the journal and
	// flushes the batcher; the child must exit cleanly.
	if err := child2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := child2.Wait(); err != nil {
		t.Fatalf("graceful shutdown after recovery: %v\nchild log:\n%s", err, log2.String())
	}
}
