package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// startDaemon runs serve on ephemeral-port listeners and returns the
// base URLs plus a cancel/join pair for the graceful-shutdown path.
func startDaemon(t *testing.T, withPprof bool) (apiURL, pprofURL string, cancel context.CancelFunc, wait func() error) {
	t.Helper()
	eng, err := engine.New(engine.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := engine.NewServer(ctx, eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var pprofLn net.Listener
	if withPprof {
		if pprofLn, err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		pprofURL = "http://" + pprofLn.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- serve(ctx, obs.Discard(), eng, srv, ln, pprofLn) }()
	t.Cleanup(cancel)
	return "http://" + ln.Addr().String(), pprofURL, cancel, func() error {
		select {
		case err := <-errc:
			return err
		case <-time.After(20 * time.Second):
			return fmt.Errorf("serve did not return after cancel")
		}
	}
}

func TestServeHealthAndMetrics(t *testing.T) {
	apiURL, _, cancel, wait := startDaemon(t, false)
	resp, err := http.Get(apiURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status": "ok"`) {
		t.Fatalf("healthz status %d body %s", resp.StatusCode, body)
	}
	resp, err = http.Get(apiURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "pops_http_requests_total") {
		t.Fatalf("metrics status %d body %s", resp.StatusCode, body)
	}
	cancel()
	if err := wait(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// TestPprofEndpointServed checks the opt-in debug listener: the pprof
// index answers on the dedicated mux, and shutdown drains it.
func TestPprofEndpointServed(t *testing.T) {
	_, pprofURL, cancel, wait := startDaemon(t, true)
	resp, err := http.Get(pprofURL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "profile") {
		t.Fatalf("pprof index status %d body %.200s", resp.StatusCode, body)
	}
	// The debug mux must expose exactly the profiling routes — the API
	// surface stays off it.
	resp, err = http.Get(pprofURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof mux served /healthz with %d, want 404", resp.StatusCode)
	}
	cancel()
	if err := wait(); err != nil {
		t.Fatalf("graceful shutdown with pprof: %v", err)
	}
}

// TestPprofDisabledByDefault: with no -pprof-addr no debug listener
// exists, and the API mux does not serve the pprof routes.
func TestPprofDisabledByDefault(t *testing.T) {
	apiURL, _, cancel, wait := startDaemon(t, false)
	resp, err := http.Get(apiURL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("API mux served /debug/pprof/ with %d, want 404", resp.StatusCode)
	}
	cancel()
	if err := wait(); err != nil {
		t.Fatal(err)
	}
}

// TestRunBadPprofAddrFailsStartup: a bad -pprof-addr must fail run
// synchronously instead of degrading to a log line from a doomed
// goroutine.
func TestRunBadPprofAddrFailsStartup(t *testing.T) {
	err := run(context.Background(), options{
		addr:      "127.0.0.1:0",
		pprofAddr: "definitely-not-an-address:-1",
		workers:   1,
		logLevel:  "info",
		logFormat: "text",
	}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "pprof listener") {
		t.Fatalf("run with bad pprof addr returned %v, want pprof listener error", err)
	}
}

// TestRunBadLogFlagsFailStartup: unknown -log-level / -log-format
// values are configuration errors, not silent fallbacks.
func TestRunBadLogFlagsFailStartup(t *testing.T) {
	for _, opts := range []options{
		{addr: "127.0.0.1:0", workers: 1, logLevel: "loud", logFormat: "text"},
		{addr: "127.0.0.1:0", workers: 1, logLevel: "info", logFormat: "yaml"},
	} {
		if err := run(context.Background(), opts, io.Discard); err == nil {
			t.Errorf("run with opts %+v succeeded, want error", opts)
		}
	}
}
