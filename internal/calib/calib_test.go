package calib

import (
	"math"
	"testing"

	"repro/internal/gate"
	"repro/internal/spice"
	"repro/internal/tech"
)

func TestCalibrateInverterAnchors(t *testing.T) {
	p := tech.CMOS025()
	res, err := Calibrate(p, nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.S0 <= 0 {
		t.Fatalf("S0 = %g", res.S0)
	}
	// The inverter's fitted weights must straddle 1 (it anchors the
	// fit); deviation measures edge-asymmetry mismatch only.
	w := res.Weights[gate.Inv]
	if w.HL < 0.6 || w.HL > 1.6 || w.LH < 0.6 || w.LH > 1.6 {
		t.Fatalf("inverter weights off anchor: %+v", w)
	}
	// Geometric mean of the two edges is 1 by construction of S0.
	if gm := math.Sqrt(w.HL * w.LH); math.Abs(gm-1) > 0.15 {
		t.Fatalf("inverter weight geometric mean %g", gm)
	}
}

func TestCalibrateS0NearLibrary(t *testing.T) {
	// The fitted prefactor should land in the neighbourhood of the
	// library's S0 — the simulator was calibrated to the model at
	// path level, so they cannot be wildly apart.
	p := tech.CMOS025()
	res, err := Calibrate(p, nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := res.S0 / p.S0; ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("fitted S0 %g vs library %g (ratio %g)", res.S0, p.S0, ratio)
	}
}

func TestCalibrateStackWeightsOrdered(t *testing.T) {
	// Deeper stacks must fit larger weights on their stacked edge:
	// DW_HL(nand3) > DW_HL(nand2) > DW_HL(inv)≈1, and mirrored for
	// NOR on the rising edge.
	p := tech.CMOS025()
	res, err := Calibrate(p, nil, []gate.Type{gate.Nand2, gate.Nand3, gate.Nor2, gate.Nor3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Weights[gate.Nand3].HL > res.Weights[gate.Nand2].HL) {
		t.Fatalf("NAND stack ordering broken: %+v", res.Weights)
	}
	if !(res.Weights[gate.Nor3].LH > res.Weights[gate.Nor2].LH) {
		t.Fatalf("NOR stack ordering broken: %+v", res.Weights)
	}
	if res.Weights[gate.Nand2].HL < 1.05 {
		t.Fatalf("NAND2 stacked edge weight %g not above inverter", res.Weights[gate.Nand2].HL)
	}
}

func TestCalibrateMatchesLibraryWithin(t *testing.T) {
	// The library's hand-calibrated weights and a fresh fit from the
	// transistor simulator agree to a reasonable RMS — the same
	// validation the paper performs against HSPICE.
	p := tech.CMOS025()
	res, err := Calibrate(p, nil, DefaultTypes(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LibraryRMS > 0.5 {
		t.Fatalf("library RMS deviation %.2f too large", res.LibraryRMS)
	}
	if len(res.Weights) != len(DefaultTypes())+1 {
		t.Fatalf("weights for %d types, want %d", len(res.Weights), len(DefaultTypes())+1)
	}
}

func TestCalibrateRejectsNonInverting(t *testing.T) {
	p := tech.CMOS025()
	if _, err := Calibrate(p, nil, []gate.Type{gate.Buf}, Options{}); err == nil {
		t.Fatal("BUF accepted for calibration")
	}
	if _, err := Calibrate(p, nil, []gate.Type{gate.And2}, Options{}); err == nil {
		t.Fatal("composite accepted for calibration")
	}
}

func TestCalibrateDeterministic(t *testing.T) {
	p := tech.CMOS025()
	sim := spice.New(p)
	a, err := Calibrate(p, sim, []gate.Type{gate.Nand2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate(p, sim, []gate.Type{gate.Nand2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.S0 != b.S0 || a.Weights[gate.Nand2] != b.Weights[gate.Nand2] {
		t.Fatal("calibration not deterministic")
	}
}

func TestCalibrateBadCorner(t *testing.T) {
	p := tech.CMOS025()
	p.Tau = -1
	if _, err := Calibrate(p, nil, nil, Options{}); err == nil {
		t.Fatal("invalid corner accepted")
	}
}
