// Package calib fits the closed-form model's parameters from
// transistor-level measurements, reproducing the paper's methodology:
// the transition-time model of eq. (2-3) is "directly calibrated from
// SPICE simulation". The symmetry prefactor S0 is extracted from the
// reference inverter (whose logical weight is 1 by definition) and the
// per-type logical weights DW follow from load-sweep slopes:
//
//	τ_out = S·τ·C_L/C_IN  with  S_HL = S0·(1+k)·DW_HL
//	                            S_LH = S0·(1+k)·(R/k)·DW_LH
//
// so ∂τ_out/∂C_L = S·τ/C_IN is measured by simulating the same stage
// under two external loads and differencing — the intercept (the
// gate's own parasitic) cancels.
package calib

import (
	"fmt"
	"math"

	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/spice"
	"repro/internal/tech"
)

// EdgeWeights is a fitted (DW_HL, DW_LH) pair.
type EdgeWeights struct {
	HL, LH float64
}

// Result is a completed calibration.
type Result struct {
	// S0 is the fitted symmetry prefactor.
	S0 float64
	// Weights maps gate types to fitted logical weights.
	Weights map[gate.Type]EdgeWeights
	// LibraryRMS is the root-mean-square relative deviation between
	// the fitted weights and the library's values — the validation
	// metric of the characterization.
	LibraryRMS float64
}

// Options tunes the characterization sweeps.
type Options struct {
	// GateCIn is the characterized stage's input capacitance (fF);
	// zero selects 8×CREF.
	GateCIn float64
	// LoadsF are the two external fan-out points of the sweep
	// (defaults 3 and 9).
	LoadsF [2]float64
}

func (o Options) withDefaults(p *tech.Process) Options {
	if o.GateCIn <= 0 {
		o.GateCIn = 8 * p.CRef
	}
	if o.LoadsF[0] <= 0 || o.LoadsF[1] <= o.LoadsF[0] {
		o.LoadsF = [2]float64{3, 9}
	}
	return o
}

// measureSlopes simulates a two-stage chain (reference inverter →
// gate) under the two loads and returns the gate's per-edge transition
// slopes S_HL and S_LH (dimensionless, in units of τ).
func measureSlopes(sim *spice.Simulator, p *tech.Process, gt gate.Type, o Options) (sHL, sLH float64, err error) {
	cell, err := gate.Lookup(gt)
	if err != nil {
		return 0, 0, err
	}
	if !cell.Invert {
		return 0, 0, fmt.Errorf("calib: %v is not an inverting primitive", gt)
	}
	inv := gate.MustLookup(gate.Inv)
	tau := make(map[bool][2]float64) // gate output edge rising? → taus at the two loads
	for li, f := range o.LoadsF {
		pa := &delay.Path{
			Name:  fmt.Sprintf("calib/%v/F%.0f", gt, f),
			TauIn: delay.DefaultTauIn(p),
			Stages: []delay.Stage{
				{Cell: inv, CIn: 4 * p.CRef, COff: 0},
				{Cell: cell, CIn: o.GateCIn, COff: f * o.GateCIn},
			},
		}
		for _, risingInput := range []bool{true, false} {
			m, err := sim.SimulatePath(pa, risingInput)
			if err != nil {
				return 0, 0, err
			}
			// Input rising → inv falls → gate output rises.
			gateRising := risingInput
			t := tau[gateRising]
			t[li] = m.StageTau[1]
			tau[gateRising] = t
		}
	}
	dCL := (o.LoadsF[1] - o.LoadsF[0]) * o.GateCIn
	// τ = S·τ_proc·C_L/C_IN  ⇒  S = C_IN·Δτ/(τ_proc·ΔC_L).
	sHL = o.GateCIn * (tau[false][1] - tau[false][0]) / (p.Tau * dCL)
	sLH = o.GateCIn * (tau[true][1] - tau[true][0]) / (p.Tau * dCL)
	if sHL <= 0 || sLH <= 0 {
		return 0, 0, fmt.Errorf("calib: non-positive slope for %v (%g, %g)", gt, sHL, sLH)
	}
	return sHL, sLH, nil
}

// Calibrate fits S0 and the logical weights of the given inverting
// primitives (INV is always included: it anchors S0).
func Calibrate(p *tech.Process, sim *spice.Simulator, types []gate.Type, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults(p)
	if sim == nil {
		sim = spice.New(p)
	}

	// Anchor: the inverter's weights are 1 by definition, so its two
	// edges give two independent S0 estimates; average them.
	invHL, invLH, err := measureSlopes(sim, p, gate.Inv, o)
	if err != nil {
		return nil, err
	}
	s0FromHL := invHL / (1 + p.K)
	s0FromLH := invLH / ((1 + p.K) * p.R / p.K)
	res := &Result{
		S0:      (s0FromHL + s0FromLH) / 2,
		Weights: map[gate.Type]EdgeWeights{gate.Inv: {HL: invHL / (s0FromHL * (1 + p.K)), LH: 1}},
	}
	// Re-derive INV weights against the averaged S0 (≈1 by
	// construction; deviation measures edge-model asymmetry error).
	res.Weights[gate.Inv] = EdgeWeights{
		HL: invHL / (res.S0 * (1 + p.K)),
		LH: invLH / (res.S0 * (1 + p.K) * p.R / p.K),
	}

	seen := map[gate.Type]bool{gate.Inv: true}
	var sumSq float64
	var cnt int
	accumulate := func(gt gate.Type, w EdgeWeights) {
		cell := gate.MustLookup(gt)
		for _, pair := range [][2]float64{{w.HL, cell.DWHL}, {w.LH, cell.DWLH}} {
			rel := (pair[0] - pair[1]) / pair[1]
			sumSq += rel * rel
			cnt++
		}
	}
	accumulate(gate.Inv, res.Weights[gate.Inv])

	for _, gt := range types {
		if seen[gt] {
			continue
		}
		seen[gt] = true
		sHL, sLH, err := measureSlopes(sim, p, gt, o)
		if err != nil {
			return nil, err
		}
		w := EdgeWeights{
			HL: sHL / (res.S0 * (1 + p.K)),
			LH: sLH / (res.S0 * (1 + p.K) * p.R / p.K),
		}
		res.Weights[gt] = w
		accumulate(gt, w)
	}
	if cnt > 0 {
		res.LibraryRMS = math.Sqrt(sumSq / float64(cnt))
	}
	return res, nil
}

// DefaultTypes lists the primitives worth calibrating (all inverting
// cells of the library).
func DefaultTypes() []gate.Type {
	return []gate.Type{gate.Nand2, gate.Nand3, gate.Nand4, gate.Nor2, gate.Nor3, gate.Nor4}
}
