package experiments

import (
	"repro/internal/delay"
	"repro/internal/le"
	"repro/internal/report"
	"repro/internal/sizing"
)

// Ablations quantify the design choices DESIGN.md calls out: the
// modelling ingredients of eq. (1) (input slope, Miller coupling), the
// constraint-distribution strategy, and the seeding of the Tmin fixed
// point.

// AblationRow is one ablation measurement.
type AblationRow struct {
	Name     string
	Baseline float64
	Ablated  float64
	DeltaPct float64
}

// AblationSlope measures how much of the minimum path delay the
// input-slope term of eq. (1) accounts for.
func (e *Env) AblationSlope(name string) (*AblationRow, error) {
	pa, _, err := e.criticalPath(name)
	if err != nil {
		return nil, err
	}
	base, err := sizing.Tmin(e.Model, pa.Clone(), e.Sizing)
	if err != nil {
		return nil, err
	}
	ablated := delay.NewModel(e.Proc)
	ablated.SlopeEffect = false
	ab, err := sizing.Tmin(ablated, pa.Clone(), e.Sizing)
	if err != nil {
		return nil, err
	}
	return &AblationRow{
		Name:     "slope effect (" + name + ")",
		Baseline: base.Delay,
		Ablated:  ab.Delay,
		DeltaPct: (base.Delay - ab.Delay) / base.Delay * 100,
	}, nil
}

// AblationMiller measures the input-to-output coupling contribution.
func (e *Env) AblationMiller(name string) (*AblationRow, error) {
	pa, _, err := e.criticalPath(name)
	if err != nil {
		return nil, err
	}
	base, err := sizing.Tmin(e.Model, pa.Clone(), e.Sizing)
	if err != nil {
		return nil, err
	}
	ablated := delay.NewModel(e.Proc)
	ablated.CoupleMiller = false
	ab, err := sizing.Tmin(ablated, pa.Clone(), e.Sizing)
	if err != nil {
		return nil, err
	}
	return &AblationRow{
		Name:     "Miller coupling (" + name + ")",
		Baseline: base.Delay,
		Ablated:  ab.Delay,
		DeltaPct: (base.Delay - ab.Delay) / base.Delay * 100,
	}, nil
}

// AblationSutherland compares the constant-sensitivity area to the
// Sutherland equal-delay distribution across constraint levels.
func (e *Env) AblationSutherland(name string, ratios []float64) ([]AblationRow, error) {
	if len(ratios) == 0 {
		ratios = []float64{1.2, 1.5, 2.0}
	}
	var rows []AblationRow
	for _, ratio := range ratios {
		pa, _, err := e.criticalPath(name)
		if err != nil {
			return nil, err
		}
		rt, err := sizing.Tmin(e.Model, pa.Clone(), e.Sizing)
		if err != nil {
			return nil, err
		}
		tc := ratio * rt.Delay
		cs, err := sizing.Distribute(e.Model, pa.Clone(), tc, e.Sizing)
		if err != nil {
			return nil, err
		}
		su, err := sizing.SutherlandDistribute(e.Model, pa.Clone(), tc, e.Sizing)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name:     "Sutherland vs const-sensitivity area @" + ratioLabel(ratio),
			Baseline: cs.Area,
			Ablated:  su.Area,
			DeltaPct: (su.Area - cs.Area) / cs.Area * 100,
		})
	}
	return rows, nil
}

func ratioLabel(r float64) string {
	switch {
	case r < 1.3:
		return "1.2Tmin"
	case r < 1.8:
		return "1.5Tmin"
	default:
		return "2.0Tmin"
	}
}

// AblationSeeding verifies the paper's claim that the Tmin fixed point
// is independent of the CREF seed: it re-runs the iteration with a 5×
// smaller minimum drive and reports the relative deviation.
func (e *Env) AblationSeeding(name string) (*AblationRow, error) {
	pa, _, err := e.criticalPath(name)
	if err != nil {
		return nil, err
	}
	base, err := sizing.Tmin(e.Model, pa.Clone(), e.Sizing)
	if err != nil {
		return nil, err
	}
	proc2 := e.Proc.Clone()
	proc2.CRef /= 5
	m2 := delay.NewModel(proc2)
	alt, err := sizing.Tmin(m2, pa.Clone(), e.Sizing)
	if err != nil {
		return nil, err
	}
	return &AblationRow{
		Name:     "Tmin seeding, CREF/5 (" + name + ")",
		Baseline: base.Delay,
		Ablated:  alt.Delay,
		DeltaPct: (alt.Delay - base.Delay) / base.Delay * 100,
	}, nil
}

// AblationLogicalEffort compares classic logical-effort sizing
// (reference [4] of the paper) against the eq. (4) fixed point: the
// LE solution evaluated under the full eq. (1) model can only be
// slower, by the margin its no-slope/no-Miller assumptions cost.
func (e *Env) AblationLogicalEffort(name string) (*AblationRow, error) {
	pa, _, err := e.criticalPath(name)
	if err != nil {
		return nil, err
	}
	rt, err := sizing.Tmin(e.Model, pa.Clone(), e.Sizing)
	if err != nil {
		return nil, err
	}
	a, err := le.Analyze(pa, e.Proc)
	if err != nil {
		return nil, err
	}
	leSized := le.ApplySizes(pa, a, e.Proc)
	leDelay := e.Model.PathDelayWorst(leSized)
	return &AblationRow{
		Name:     "logical-effort sizing vs eq.(4) Tmin (" + name + ")",
		Baseline: rt.Delay,
		Ablated:  leDelay,
		DeltaPct: (leDelay - rt.Delay) / rt.Delay * 100,
	}, nil
}

// AblationTable renders ablation rows.
func AblationTable(rows []AblationRow) *report.Table {
	t := report.NewTable("Ablations — contribution of modelling/design choices",
		"Ablation", "baseline", "ablated", "delta %")
	for _, r := range rows {
		t.AddRow(r.Name, r.Baseline, r.Ablated, r.DeltaPct)
	}
	return t
}
