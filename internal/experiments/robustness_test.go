package experiments

import "testing"

func TestWireUncertaintyShape(t *testing.T) {
	e := env(t)
	rows, err := e.WireUncertainty([]string{"fpd", "c880"}, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TminBase <= 0 || r.AreaBase <= 0 {
			t.Fatalf("%s: degenerate baseline %+v", r.Name, r)
		}
		// ±30% wire error must not move the bound wildly — the nets
		// are a minority of the load (the paper's protocol re-runs
		// instead of margining, which only works if drift is modest).
		if r.DriftPct > 15 {
			t.Fatalf("%s: Tmin drift %.1f%% too large", r.Name, r.DriftPct)
		}
		if r.AreaDrift > 60 {
			t.Fatalf("%s: area drift %.1f%% too large", r.Name, r.AreaDrift)
		}
	}
	_ = WireUncertaintyTable(rows)
}

func TestSeedSweepShape(t *testing.T) {
	e := env(t)
	row, err := e.SeedSweep("c880", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(row.Gains) != 3 {
		t.Fatalf("gains %v", row.Gains)
	}
	for _, g := range row.Gains {
		// Buffering can never hurt Tmin, and synthetic gains stay in a
		// plausible band.
		if g < -1e-6 || g > 60 {
			t.Fatalf("gain %g%% out of band", g)
		}
	}
	if row.MinGain > row.MeanGain || row.MeanGain > row.MaxGain {
		t.Fatalf("summary inconsistent: %+v", row)
	}
	_ = SeedSweepTable([]*SeedSweepRow{row})
}
