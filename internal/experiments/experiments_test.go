package experiments

import (
	"math"
	"testing"

	"repro/internal/gate"
)

// The experiment tests assert the *shapes* the paper reports: who
// wins, by roughly what factor, where the crossovers fall. Absolute
// picoseconds/microns are substrate-specific.

func env(t *testing.T) *Env {
	t.Helper()
	return NewEnv()
}

func TestFig1Shape(t *testing.T) {
	e := env(t)
	points, tmax, tmin, err := e.Fig1("c432")
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatalf("only %d iteration points", len(points))
	}
	// The trajectory descends from near Tmax toward Tmin while the
	// capacitance budget grows (paper Fig. 1).
	first, last := points[0], points[len(points)-1]
	if !(tmin < first.Delay && first.Delay <= tmax*1.01) {
		t.Fatalf("start %g outside (Tmin %g, Tmax %g]", first.Delay, tmin, tmax)
	}
	if math.Abs(last.Delay-tmin) > 0.01*tmin {
		t.Fatalf("trajectory ends at %g, Tmin %g", last.Delay, tmin)
	}
	if last.SumCInRef <= first.SumCInRef {
		t.Fatal("capacitance budget did not grow")
	}
	fig, err := e.Fig1Figure("c432")
	if err != nil || len(fig.Series) == 0 {
		t.Fatalf("figure rendering: %v", err)
	}
}

func TestFig2Shape(t *testing.T) {
	e := env(t)
	rows, err := e.Fig2(SmallBenchmarks())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(SmallBenchmarks()) {
		t.Fatalf("row count %d", len(rows))
	}
	for _, r := range rows {
		// POPS finds the convex optimum; the greedy grid cannot beat
		// it, and should land within ~1.6×.
		if r.POPS > r.AMPS*(1+1e-6) {
			t.Fatalf("%s: POPS %g above AMPS %g", r.Name, r.POPS, r.AMPS)
		}
		if r.AMPS > 1.6*r.POPS {
			t.Fatalf("%s: baseline implausibly weak (%gx)", r.Name, r.AMPS/r.POPS)
		}
	}
	_ = Fig2Table(rows)
}

func TestFig3Shape(t *testing.T) {
	e := env(t)
	points, err := e.Fig3("c432", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Walking a = 0 → -6: delay grows, area falls — the convex front.
	for i := 1; i < len(points); i++ {
		if points[i].Delay < points[i-1].Delay*(1-1e-9) {
			t.Fatalf("delay not monotone at a=%g", points[i].A)
		}
		if points[i].Area > points[i-1].Area*(1+1e-9) {
			t.Fatalf("area not monotone at a=%g", points[i].A)
		}
	}
	// The front is steep near a=0: tiny delay sacrifice, large area
	// saving (the paper's motivation for the method).
	d0, dn := points[0], points[len(points)-1]
	if dn.Area > 0.5*d0.Area {
		t.Fatalf("front too flat: area only %g → %g", d0.Area, dn.Area)
	}
}

func TestFig4Shape(t *testing.T) {
	e := env(t)
	rows, err := e.Fig4([]string{"fpd", "c432", "c880"}, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.POPS > r.AMPS*1.02 {
			t.Fatalf("%s: POPS area %g above baseline %g at equal Tc", r.Name, r.POPS, r.AMPS)
		}
	}
	_ = Fig4Table(rows)
}

func TestTable1Shape(t *testing.T) {
	e := env(t)
	rows, err := e.Table1([]string{"c432", "c1355"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.POPS <= 0 || r.AMPS <= 0 {
			t.Fatalf("%s: degenerate timings %v %v", r.Name, r.POPS, r.AMPS)
		}
		// Table 1's point: a deterministic distribution is much faster
		// than an evaluation-driven sizer, with the gap widening with
		// path length (the paper's AMPS carries a huge SPICE-in-the-
		// loop constant on top; see EXPERIMENTS.md). Require one order
		// of magnitude on these 29/30-gate paths.
		if r.Speedup < 10 {
			t.Fatalf("%s: speedup only %.1fx", r.Name, r.Speedup)
		}
	}
	_ = Table1Table(rows)
}

func TestTable2Shape(t *testing.T) {
	e := env(t)
	rows, err := e.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("want 5 characterization rows, got %d", len(rows))
	}
	byGate := map[gate.Type]Table2Row{}
	for _, r := range rows {
		byGate[r.Gate] = r
		// The transistor-level column tracks the calculated one with a
		// systematic shift (~1.4×): the paper's model was *fitted* to
		// its SPICE, ours only shares path-level calibration. The
		// shape contract is the ordering and spread, checked below.
		if rel := math.Abs(r.Calculated-r.Simulated) / r.Calculated; rel > 0.6 {
			t.Fatalf("%v: calc %g vs sim %g (%.0f%%)", r.Gate, r.Calculated, r.Simulated, rel*100)
		}
	}
	// Published ordering, in both columns.
	order := []gate.Type{gate.Inv, gate.Nand2, gate.Nand3, gate.Nor2, gate.Nor3}
	for i := 1; i < len(order); i++ {
		if byGate[order[i]].Calculated >= byGate[order[i-1]].Calculated {
			t.Fatalf("calculated ordering broken at %v", order[i])
		}
		if byGate[order[i]].Simulated >= byGate[order[i-1]].Simulated {
			t.Fatalf("simulated ordering broken at %v", order[i])
		}
	}
	// Spread: the paper sees roughly 2× between INV and NOR3.
	if r := byGate[gate.Inv].Calculated / byGate[gate.Nor3].Calculated; r < 1.3 || r > 3.5 {
		t.Fatalf("calculated spread %g implausible", r)
	}
	_ = Table2Table(rows)
}

func TestTable3Shape(t *testing.T) {
	e := env(t)
	rows, err := e.Table3(SmallBenchmarks())
	if err != nil {
		t.Fatal(err)
	}
	anyGain := false
	for _, r := range rows {
		if r.Buff > r.Sizing*(1+1e-9) {
			t.Fatalf("%s: buffering worsened Tmin", r.Name)
		}
		// Paper gains run 2-22%; allow 0-30% here.
		if r.GainPct > 30 {
			t.Fatalf("%s: gain %.1f%% implausibly large", r.Name, r.GainPct)
		}
		if r.GainPct > 2 {
			anyGain = true
		}
	}
	if !anyGain {
		t.Fatal("no benchmark benefited from buffer insertion")
	}
	_ = Table3Table(rows)
}

func TestFig6Shape(t *testing.T) {
	e := env(t)
	fronts, err := e.Fig6("c1355")
	if err != nil {
		t.Fatal(err)
	}
	if fronts.TminBuffered > fronts.Tmin*(1+1e-9) {
		t.Fatal("buffered front cannot have a worse minimum")
	}
	// Both fronts are monotone trade-offs.
	check := func(pts []Fig3Point, label string) {
		for i := 1; i < len(pts); i++ {
			if pts[i].Delay < pts[i-1].Delay*(1-1e-9) || pts[i].Area > pts[i-1].Area*(1+1e-9) {
				t.Fatalf("%s front not monotone at a=%g", label, pts[i].A)
			}
		}
	}
	check(fronts.Sizing, "sizing")
	check(fronts.Buffered, "buffered")
}

func TestFig8Shape(t *testing.T) {
	e := env(t)
	rows, err := e.Fig8([]string{"c880", "c1355"})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig8Row{}
	for _, r := range rows {
		byKey[r.Name+"/"+r.Domain] = r
	}
	for _, name := range []string{"c880", "c1355"} {
		hard := byKey[name+"/hard"]
		weak := byKey[name+"/weak"]
		if !hard.SizingOK || !hard.GlobOK || !weak.SizingOK {
			t.Fatalf("%s: missing feasible methods: %+v %+v", name, hard, weak)
		}
		// The paper's headline: under hard constraints, buffer
		// insertion with global sizing saves a lot of area.
		if hard.GlobalB > hard.Sizing*(1+1e-9) {
			t.Fatalf("%s hard: global buffering (%g) worse than sizing (%g)",
				name, hard.GlobalB, hard.Sizing)
		}
		// Weak constraints: everything cheap, methods within ~25%.
		if weak.GlobOK && weak.GlobalB > weak.Sizing*1.25 {
			t.Fatalf("%s weak: methods diverge: %g vs %g", name, weak.GlobalB, weak.Sizing)
		}
	}
	_ = Fig8Tables(rows)
}

func TestTable4Shape(t *testing.T) {
	e := env(t)
	rows, err := e.Table4([]string{"c1355", "c1908"})
	if err != nil {
		t.Fatal(err)
	}
	sawRewrite := false
	for _, r := range rows {
		if r.Rewrites > 0 {
			sawRewrite = true
		}
		// Restructuring should be competitive: within 25% of
		// buffering, usually better (paper: 4-16% better).
		if r.Restruct > r.Buff*1.25 {
			t.Fatalf("%s/%s: restructure %g far above buffering %g",
				r.Name, r.Domain, r.Restruct, r.Buff)
		}
	}
	if !sawRewrite {
		t.Fatal("no NOR was rewritten on any path")
	}
	_ = Table4Table(rows)
}

func TestAblations(t *testing.T) {
	e := env(t)
	slope, err := e.AblationSlope("c880")
	if err != nil {
		t.Fatal(err)
	}
	// Dropping the slope term must make the predicted Tmin optimistic.
	if slope.Ablated > slope.Baseline {
		t.Fatal("removing the slope term increased the predicted delay")
	}
	if slope.DeltaPct < 1 {
		t.Fatalf("slope term contributes only %.2f%% — suspicious", slope.DeltaPct)
	}
	miller, err := e.AblationMiller("c880")
	if err != nil {
		t.Fatal(err)
	}
	if miller.Ablated > miller.Baseline {
		t.Fatal("removing coupling increased the predicted delay")
	}
	seed, err := e.AblationSeeding("c880")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seed.DeltaPct) > 1 {
		t.Fatalf("Tmin moved %.2f%% under a different seed", seed.DeltaPct)
	}
	su, err := e.AblationSutherland("c880", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range su {
		if r.DeltaPct < 0 {
			t.Fatalf("Sutherland cheaper than constant sensitivity: %+v", r)
		}
	}
	leRow, err := e.AblationLogicalEffort("c880")
	if err != nil {
		t.Fatal(err)
	}
	// Classic LE cannot beat the full-model optimum. On hub-loaded
	// benchmark paths it loses big (tested band ≤ 200%): LE folds the
	// fixed off-path loads into a constant branching effort, i.e. it
	// assumes side loads scale with the path, which they do not — the
	// precise weakness the paper's exact bounded-path treatment fixes.
	// (On branch-free chains LE lands within 15% of Tmin; see the le
	// package tests.)
	if leRow.DeltaPct < -0.01 {
		t.Fatalf("logical effort beat the convex optimum: %+v", leRow)
	}
	if leRow.DeltaPct > 200 {
		t.Fatalf("logical effort implausibly bad: %+v", leRow)
	}
	_ = AblationTable(append(su, *slope, *miller, *seed, *leRow))
}

func TestFigureAndTableRenderers(t *testing.T) {
	e := env(t)
	if len(AllBenchmarks()) != 11 {
		t.Fatalf("AllBenchmarks: %v", AllBenchmarks())
	}
	f3, err := e.Fig3Figure("fpd")
	if err != nil || len(f3.Series) == 0 {
		t.Fatalf("Fig3Figure: %v", err)
	}
	f6, err := e.Fig6Figure("fpd")
	if err != nil || len(f6.Series) < 2 {
		t.Fatalf("Fig6Figure: %v", err)
	}
	rows, err := e.Table1([]string{"fpd"})
	if err != nil {
		t.Fatal(err)
	}
	tbl := Table1Table(rows)
	if len(tbl.Rows) != 1 {
		t.Fatalf("Table1Table rows %d", len(tbl.Rows))
	}
	if cell(0, false) != "-" || cell(12.3, true) == "-" {
		t.Fatal("cell renderer broken")
	}
}
