package experiments

import (
	"fmt"
	"math"

	"repro/internal/buffering"
	"repro/internal/iscas"
	"repro/internal/report"
	"repro/internal/sizing"
	"repro/internal/sta"
	"repro/internal/wire"
)

// Robustness experiments beyond the paper's tables: how stable the
// reproduction's shapes are under (a) routing-capacitance
// mis-estimation — the §2 uncertainty that motivates the protocol —
// and (b) the synthetic benchmark generator's seed.

// WireUncertaintyRow reports the optimizer's sensitivity to wire-load
// error on one benchmark.
type WireUncertaintyRow struct {
	Name       string
	Spread     float64 // applied mis-estimation (e.g. 0.3 = ±30 %)
	TminBase   float64 // ps, with nominal wire loads
	TminWorst  float64 // ps, worst over perturbation seeds
	DriftPct   float64 // |worst−base|/base × 100
	AreaBase   float64 // µm at Tc = 1.3·TminBase, nominal wires
	AreaWorst  float64 // µm, worst over seeds at the same Tc
	AreaDrift  float64 // percent
	SeedsTried int
}

// WireUncertainty measures Tmin and constrained-area drift under
// randomized wire-load errors.
func (e *Env) WireUncertainty(names []string, spread float64, seeds int) ([]WireUncertaintyRow, error) {
	if spread <= 0 {
		spread = 0.3
	}
	if seeds <= 0 {
		seeds = 3
	}
	var rows []WireUncertaintyRow
	for _, name := range names {
		spec, err := iscas.ByName(name)
		if err != nil {
			return nil, err
		}
		measure := func(seed int64) (tmin, area float64, err error) {
			c := iscas.MustGenerate(spec)
			if _, err := wire.Apply(c, wire.Default025()); err != nil {
				return 0, 0, err
			}
			if seed > 0 {
				if _, err := wire.Perturb(c, spread, seed); err != nil {
					return 0, 0, err
				}
			}
			pa, _, err := sta.CriticalPath(c, e.Model, e.STA)
			if err != nil {
				return 0, 0, err
			}
			r, err := sizing.Tmin(e.Model, pa.Clone(), e.Sizing)
			if err != nil {
				return 0, 0, err
			}
			d, err := sizing.Distribute(e.Model, pa, 1.3*r.Delay, e.Sizing)
			if err != nil {
				return 0, 0, err
			}
			return r.Delay, d.Area, nil
		}
		base, areaBase, err := measure(0)
		if err != nil {
			return nil, err
		}
		row := WireUncertaintyRow{
			Name: name, Spread: spread,
			TminBase: base, TminWorst: base,
			AreaBase: areaBase, AreaWorst: areaBase,
			SeedsTried: seeds,
		}
		for s := int64(1); s <= int64(seeds); s++ {
			tm, ar, err := measure(s)
			if err != nil {
				return nil, err
			}
			if math.Abs(tm-base) > math.Abs(row.TminWorst-base) {
				row.TminWorst = tm
			}
			if math.Abs(ar-areaBase) > math.Abs(row.AreaWorst-areaBase) {
				row.AreaWorst = ar
			}
		}
		row.DriftPct = math.Abs(row.TminWorst-base) / base * 100
		row.AreaDrift = math.Abs(row.AreaWorst-areaBase) / areaBase * 100
		rows = append(rows, row)
	}
	return rows, nil
}

// WireUncertaintyTable renders the sweep.
func WireUncertaintyTable(rows []WireUncertaintyRow) *report.Table {
	t := report.NewTable("Wire-load uncertainty — drift of Tmin and constrained area",
		"Circuit", "spread", "Tmin (ps)", "Tmin drift %", "area (µm)", "area drift %")
	for _, r := range rows {
		t.AddRow(r.Name, fmt.Sprintf("±%.0f%%", r.Spread*100),
			r.TminBase, r.DriftPct, r.AreaBase, r.AreaDrift)
	}
	t.AddNote("the deterministic protocol re-runs in milliseconds instead of carrying a blanket margin (§2)")
	return t
}

// SeedSweepRow captures Table 3's buffer gain across generator seeds —
// robustness of the reproduction's shape to the synthetic circuits.
type SeedSweepRow struct {
	Name     string
	Gains    []float64 // percent, one per seed
	MeanGain float64
	MinGain  float64
	MaxGain  float64
}

// SeedSweep re-runs the Table 3 comparison across generator seeds.
func (e *Env) SeedSweep(name string, seeds int) (*SeedSweepRow, error) {
	if seeds <= 0 {
		seeds = 4
	}
	spec, err := iscas.ByName(name)
	if err != nil {
		return nil, err
	}
	row := &SeedSweepRow{Name: name, MinGain: math.Inf(1), MaxGain: math.Inf(-1)}
	for s := 0; s < seeds; s++ {
		sp := spec
		sp.Seed = int64(s * 7919)
		c, err := iscas.Generate(sp)
		if err != nil {
			return nil, err
		}
		pa, _, err := sta.CriticalPath(c, e.Model, e.STA)
		if err != nil {
			return nil, err
		}
		plain, err := sizing.Tmin(e.Model, pa.Clone(), e.Sizing)
		if err != nil {
			return nil, err
		}
		buf, err := buffering.MinDelayWithBuffers(e.Model, pa, e.Limits, e.Sizing)
		if err != nil {
			return nil, err
		}
		gain := (plain.Delay - buf.Delay) / plain.Delay * 100
		row.Gains = append(row.Gains, gain)
		row.MeanGain += gain
		row.MinGain = math.Min(row.MinGain, gain)
		row.MaxGain = math.Max(row.MaxGain, gain)
	}
	row.MeanGain /= float64(len(row.Gains))
	return row, nil
}

// SeedSweepTable renders the robustness sweep.
func SeedSweepTable(rows []*SeedSweepRow) *report.Table {
	t := report.NewTable("Table 3 robustness — buffer-insertion gain across generator seeds",
		"Circuit", "seeds", "mean gain %", "min %", "max %")
	for _, r := range rows {
		t.AddRow(r.Name, len(r.Gains), r.MeanGain, r.MinGain, r.MaxGain)
	}
	return t
}
