// Package experiments regenerates every table and figure of the
// paper's evaluation. Each experiment returns typed rows (for test and
// benchmark assertions) plus a rendering into the report package's
// table/figure forms (for cmd/experiments and EXPERIMENTS.md).
//
// Absolute numbers are not expected to match the paper — the substrate
// is a reimplementation, not the authors' 0.25 µm testbed — but the
// shapes are: who wins, by roughly what factor, and where the
// crossovers fall. The assertions encoded in bench_test.go check
// exactly those shapes.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/amps"
	"repro/internal/buffering"
	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/iscas"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/restructure"
	"repro/internal/sizing"
	"repro/internal/spice"
	"repro/internal/sta"
	"repro/internal/tech"
)

// Env bundles the shared experiment context: one corner, one model,
// one characterized library.
type Env struct {
	Proc   *tech.Process
	Model  *delay.Model
	Sim    *spice.Simulator
	Limits map[gate.Type]float64
	Sizing sizing.Options
	STA    sta.Config
}

// NewEnv builds the default experiment environment on the calibrated
// 0.25 µm corner.
func NewEnv() *Env {
	p := tech.CMOS025()
	m := delay.NewModel(p)
	return &Env{
		Proc:   p,
		Model:  m,
		Sim:    spice.New(p),
		Limits: buffering.Limits(buffering.CharacterizeLibrary(m, nil, buffering.Options{})),
	}
}

// AllBenchmarks lists the Table 1 benchmark names in paper order.
func AllBenchmarks() []string {
	var names []string
	for _, s := range iscas.Suite() {
		names = append(names, s.Name)
	}
	return names
}

// SmallBenchmarks is a fast subset used by unit tests.
func SmallBenchmarks() []string { return []string{"fpd", "c432", "c880", "c1355"} }

// criticalPath generates the named benchmark and extracts its critical
// path.
func (e *Env) criticalPath(name string) (*delay.Path, *netlist.Circuit, error) {
	spec, err := iscas.ByName(name)
	if err != nil {
		return nil, nil, err
	}
	c, err := iscas.Generate(spec)
	if err != nil {
		return nil, nil, err
	}
	pa, _, err := sta.CriticalPath(c, e.Model, e.STA)
	if err != nil {
		return nil, nil, err
	}
	return pa, c, nil
}

// ---------------------------------------------------------------------
// Fig. 1 — sensitivity of the path delay to gate sizing: the Tmin
// iteration trajectory from the CREF seed to the fixed point.
// ---------------------------------------------------------------------

// Fig1Point is one iteration of the Tmin fixed point.
type Fig1Point = sizing.IterationPoint

// Fig1 runs the Tmin iteration on the named benchmark's critical path
// and returns the (ΣC_IN/CREF, delay) trajectory plus the bounds.
func (e *Env) Fig1(name string) (points []Fig1Point, tmax, tmin float64, err error) {
	pa, _, err := e.criticalPath(name)
	if err != nil {
		return nil, 0, 0, err
	}
	tmax = sizing.Tmax(e.Model, pa.Clone())
	r, err := sizing.Tmin(e.Model, pa, e.Sizing)
	if err != nil {
		return nil, 0, 0, err
	}
	return r.Iterations, tmax, r.Delay, nil
}

// Fig1Figure renders the trajectory.
func (e *Env) Fig1Figure(name string) (*report.Figure, error) {
	points, tmax, tmin, err := e.Fig1(name)
	if err != nil {
		return nil, err
	}
	f := report.NewFigure(
		fmt.Sprintf("Fig. 1 — path delay vs sizing iterations (%s)", name),
		"sum C_IN / CREF", "delay (ps)")
	s := f.AddSeries("Tmin iterations")
	for _, pt := range points {
		s.Add(pt.SumCInRef, pt.Delay)
	}
	b := f.AddSeries("bounds")
	b.Add(points[0].SumCInRef, tmax)
	b.Add(points[len(points)-1].SumCInRef, tmin)
	return f, nil
}

// ---------------------------------------------------------------------
// Fig. 2 — minimum delay Tmin: POPS vs the industrial baseline.
// ---------------------------------------------------------------------

// Fig2Row compares the minimum path delay found by the two tools.
type Fig2Row struct {
	Name    string
	PathLen int
	POPS    float64 // ps
	AMPS    float64 // ps
}

// Fig2 computes the comparison for the given benchmarks.
func (e *Env) Fig2(names []string) ([]Fig2Row, error) {
	var rows []Fig2Row
	for _, name := range names {
		pa, _, err := e.criticalPath(name)
		if err != nil {
			return nil, err
		}
		pops, err := sizing.Tmin(e.Model, pa.Clone(), e.Sizing)
		if err != nil {
			return nil, err
		}
		baseline, err := amps.MinimizeDelay(e.Model, pa.Clone(), amps.Options{Restarts: 2})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig2Row{Name: name, PathLen: pa.Len(), POPS: pops.Delay, AMPS: baseline.Delay})
	}
	return rows, nil
}

// Fig2Table renders the comparison.
func Fig2Table(rows []Fig2Row) *report.Table {
	t := report.NewTable("Fig. 2 — minimum delay Tmin (ps): POPS vs AMPS-like baseline",
		"Circuit", "Path gates", "POPS", "AMPS", "AMPS/POPS")
	for _, r := range rows {
		t.AddRow(r.Name, r.PathLen, r.POPS, r.AMPS, r.AMPS/r.POPS)
	}
	t.AddNote("shape check: POPS ≤ AMPS on every row (deterministic convex optimum vs greedy grid)")
	return t
}

// ---------------------------------------------------------------------
// Fig. 3 — the constant sensitivity family on one path.
// ---------------------------------------------------------------------

// Fig3Point is one member of the sensitivity family.
type Fig3Point struct {
	A     float64
	Delay float64 // ps
	Area  float64 // ΣW µm
}

// Fig3 sweeps the sensitivity coefficient on the named benchmark's
// critical path.
func (e *Env) Fig3(name string, as []float64) ([]Fig3Point, error) {
	if len(as) == 0 {
		as = []float64{0, -0.02, -0.06, -0.15, -0.3, -0.6, -0.8, -1.5, -3, -6}
	}
	var points []Fig3Point
	for _, a := range as {
		pa, _, err := e.criticalPath(name)
		if err != nil {
			return nil, err
		}
		r, err := sizing.AtSensitivity(e.Model, pa, a, e.Sizing)
		if err != nil {
			return nil, err
		}
		points = append(points, Fig3Point{A: a, Delay: r.Delay, Area: r.Area})
	}
	return points, nil
}

// Fig3Figure renders the family as the paper plots it: delay vs ΣW.
func (e *Env) Fig3Figure(name string) (*report.Figure, error) {
	points, err := e.Fig3(name, nil)
	if err != nil {
		return nil, err
	}
	f := report.NewFigure(
		fmt.Sprintf("Fig. 3 — constant sensitivity family (%s)", name),
		"sum W (µm)", "delay (ps)")
	s := f.AddSeries("a sweep (0 → -6)")
	for _, pt := range points {
		s.Add(pt.Area, pt.Delay)
	}
	return f, nil
}

// ---------------------------------------------------------------------
// Fig. 4 — area at Tc = 1.2·Tmin: POPS vs baseline.
// ---------------------------------------------------------------------

// Fig4Row compares implementation area at an identical hard constraint.
type Fig4Row struct {
	Name string
	Tc   float64 // ps
	POPS float64 // ΣW µm
	AMPS float64 // ΣW µm
}

// Fig4 computes the comparison (Tc = ratio × Tmin, the paper uses 1.2).
func (e *Env) Fig4(names []string, ratio float64) ([]Fig4Row, error) {
	if ratio <= 0 {
		ratio = 1.2
	}
	var rows []Fig4Row
	for _, name := range names {
		pa, _, err := e.criticalPath(name)
		if err != nil {
			return nil, err
		}
		rt, err := sizing.Tmin(e.Model, pa.Clone(), e.Sizing)
		if err != nil {
			return nil, err
		}
		tc := ratio * rt.Delay
		pops, err := sizing.Distribute(e.Model, pa.Clone(), tc, e.Sizing)
		if err != nil {
			return nil, err
		}
		baseline, err := amps.SizeToConstraint(e.Model, pa.Clone(), tc, amps.Options{Restarts: 2})
		if err != nil {
			// The grid may not reach very tight constraints; report
			// its best effort.
			if baseline == nil {
				return nil, err
			}
		}
		rows = append(rows, Fig4Row{Name: name, Tc: tc, POPS: pops.Area, AMPS: baseline.Area})
	}
	return rows, nil
}

// Fig4Table renders the comparison.
func Fig4Table(rows []Fig4Row) *report.Table {
	t := report.NewTable("Fig. 4 — path area ΣW (µm) at Tc = 1.2·Tmin: POPS vs AMPS-like baseline",
		"Circuit", "Tc (ps)", "POPS", "AMPS", "AMPS/POPS")
	for _, r := range rows {
		t.AddRow(r.Name, r.Tc, r.POPS, r.AMPS, r.AMPS/r.POPS)
	}
	t.AddNote("shape check: the constant sensitivity method needs less area at equal constraint")
	return t
}

// ---------------------------------------------------------------------
// Table 1 — CPU time of the constraint-distribution step.
// ---------------------------------------------------------------------

// Table1Row reports wall-clock time for sizing a path to Tc = 1.2·Tmin.
type Table1Row struct {
	Name    string
	Gates   int // path gate count (the paper's "Gate nb")
	POPS    time.Duration
	AMPS    time.Duration
	Speedup float64
}

// Table1 measures both tools on the given benchmarks.
func (e *Env) Table1(names []string) ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range names {
		pa, _, err := e.criticalPath(name)
		if err != nil {
			return nil, err
		}
		rt, err := sizing.Tmin(e.Model, pa.Clone(), e.Sizing)
		if err != nil {
			return nil, err
		}
		tc := 1.2 * rt.Delay

		popsPath := pa.Clone()
		t0 := time.Now()
		if _, err := sizing.Distribute(e.Model, popsPath, tc, e.Sizing); err != nil {
			return nil, err
		}
		popsTime := time.Since(t0)

		ampsPath := pa.Clone()
		t1 := time.Now()
		res, err := amps.SizeToConstraint(e.Model, ampsPath, tc, amps.Options{Restarts: 2})
		if err != nil && res == nil {
			return nil, err
		}
		ampsTime := time.Since(t1)

		rows = append(rows, Table1Row{
			Name:    name,
			Gates:   pa.Len(),
			POPS:    popsTime,
			AMPS:    ampsTime,
			Speedup: float64(ampsTime) / float64(popsTime),
		})
	}
	return rows, nil
}

// Table1Table renders the timing comparison.
func Table1Table(rows []Table1Row) *report.Table {
	t := report.NewTable("Table 1 — CPU time of constraint distribution (Tc = 1.2·Tmin)",
		"Circuit", "Gate nb", "POPS (ms)", "AMPS (ms)", "speedup")
	for _, r := range rows {
		t.AddRow(r.Name, r.Gates,
			float64(r.POPS.Microseconds())/1000,
			float64(r.AMPS.Microseconds())/1000,
			r.Speedup)
	}
	t.AddNote("shape check: the deterministic closed-form distribution is orders of magnitude faster")
	return t
}

// ---------------------------------------------------------------------
// Table 2 — the fan-out limit Flimit, calculated vs simulated.
// ---------------------------------------------------------------------

// Table2Row is one characterization pair.
type Table2Row struct {
	Driver, Gate gate.Type
	Calculated   float64
	Simulated    float64
	Paper        [2]float64 // the paper's calculated/simulated values
}

// paperTable2 holds the published Table 2 values for side-by-side
// reporting.
var paperTable2 = map[gate.Type][2]float64{
	gate.Inv:   {5.7, 5.9},
	gate.Nand2: {4.9, 5.4},
	gate.Nand3: {4.5, 5.2},
	gate.Nor2:  {3.8, 3.5},
	gate.Nor3:  {2.7, 2.5},
}

// Table2 characterizes the Fig. 5 structures with both the closed-form
// model and the transistor-level simulator.
func (e *Env) Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, gt := range []gate.Type{gate.Inv, gate.Nand2, gate.Nand3, gate.Nor2, gate.Nor3} {
		calc, err := buffering.Flimit(e.Model, gate.Inv, gt, nil, buffering.Options{})
		if err != nil {
			return nil, err
		}
		// The simulator bisection needs fewer, coarser probes.
		simOpts := buffering.Options{Iter: 22}
		simF, err := buffering.Flimit(e.Model, gate.Inv, gt, e.Sim.MeanDelayFn(), simOpts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Driver: gate.Inv, Gate: gt,
			Calculated: calc, Simulated: simF,
			Paper: paperTable2[gt],
		})
	}
	return rows, nil
}

// Table2Table renders the characterization next to the paper's values.
func Table2Table(rows []Table2Row) *report.Table {
	t := report.NewTable("Table 2 — fan-out limit Flimit for a gate driven by an inverter",
		"Gate(i-1)", "Gate(i)", "Calc.", "Simul.", "paper Calc.", "paper Simul.")
	for _, r := range rows {
		t.AddRow(r.Driver.String(), r.Gate.String(), r.Calculated, r.Simulated, r.Paper[0], r.Paper[1])
	}
	t.AddNote("shape check: ordering inv > nand2 > nand3 > nor2 > nor3 and ≈2× spread, as published")
	return t
}

// ---------------------------------------------------------------------
// Table 3 — minimum delay: sizing vs sizing + buffer insertion.
// ---------------------------------------------------------------------

// Table3Row compares Tmin without and with buffer insertion.
type Table3Row struct {
	Name    string
	Sizing  float64 // ps
	Buff    float64 // ps
	GainPct float64
	Buffers int
}

// Table3 computes the comparison.
func (e *Env) Table3(names []string) ([]Table3Row, error) {
	var rows []Table3Row
	for _, name := range names {
		pa, _, err := e.criticalPath(name)
		if err != nil {
			return nil, err
		}
		plain, err := sizing.Tmin(e.Model, pa.Clone(), e.Sizing)
		if err != nil {
			return nil, err
		}
		buf, err := buffering.MinDelayWithBuffers(e.Model, pa, e.Limits, e.Sizing)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			Name:    name,
			Sizing:  plain.Delay,
			Buff:    buf.Delay,
			GainPct: (plain.Delay - buf.Delay) / plain.Delay * 100,
			Buffers: buf.Inserted,
		})
	}
	return rows, nil
}

// Table3Table renders the comparison.
func Table3Table(rows []Table3Row) *report.Table {
	t := report.NewTable("Table 3 — minimum delay (ps): sizing vs buffer insertion",
		"Circuit", "sizing", "buff", "gain %", "buffers")
	for _, r := range rows {
		t.AddRow(r.Name, r.Sizing, r.Buff, r.GainPct, r.Buffers)
	}
	t.AddNote("paper gains: 2%%–22%% depending on path structure")
	return t
}

// ---------------------------------------------------------------------
// Fig. 6 — constraint-domain definition: delay–area fronts of sizing
// vs buffer insertion.
// ---------------------------------------------------------------------

// Fig6Fronts carries the two trade-off fronts.
type Fig6Fronts struct {
	Tmin         float64 // unbuffered minimum delay (ps)
	TminBuffered float64 // buffered minimum delay (ps)
	Sizing       []Fig3Point
	Buffered     []Fig3Point
}

// Fig6 sweeps the sensitivity family on the named path with and
// without buffer insertion.
func (e *Env) Fig6(name string) (*Fig6Fronts, error) {
	as := []float64{0, -0.02, -0.06, -0.15, -0.3, -0.6, -1.2, -2.5, -5, -10}
	pa, _, err := e.criticalPath(name)
	if err != nil {
		return nil, err
	}
	fronts := &Fig6Fronts{}

	rt, err := sizing.Tmin(e.Model, pa.Clone(), e.Sizing)
	if err != nil {
		return nil, err
	}
	fronts.Tmin = rt.Delay

	buf, err := buffering.MinDelayWithBuffers(e.Model, pa, e.Limits, e.Sizing)
	if err != nil {
		return nil, err
	}
	fronts.TminBuffered = buf.Delay

	for _, a := range as {
		plain := pa.Clone()
		r, err := sizing.AtSensitivity(e.Model, plain, a, e.Sizing)
		if err != nil {
			return nil, err
		}
		fronts.Sizing = append(fronts.Sizing, Fig3Point{A: a, Delay: r.Delay, Area: r.Area})

		buffered := buf.Path.Clone()
		rb, err := sizing.AtSensitivity(e.Model, buffered, a, e.Sizing)
		if err != nil {
			return nil, err
		}
		fronts.Buffered = append(fronts.Buffered, Fig3Point{A: a, Delay: rb.Delay, Area: rb.Area})
	}
	return fronts, nil
}

// Fig6Figure renders the two fronts with the paper's domain boundaries.
func (e *Env) Fig6Figure(name string) (*report.Figure, error) {
	fronts, err := e.Fig6(name)
	if err != nil {
		return nil, err
	}
	f := report.NewFigure(
		fmt.Sprintf("Fig. 6 — constraint domains (%s)", name),
		"sum W (µm)", "delay (ps)")
	s := f.AddSeries("gate sizing")
	for _, pt := range fronts.Sizing {
		s.Add(pt.Area, pt.Delay)
	}
	b := f.AddSeries("buffer insertion + global sizing")
	for _, pt := range fronts.Buffered {
		b.Add(pt.Area, pt.Delay)
	}
	d := f.AddSeries("domain boundaries (1.2/2.5 × Tmin)")
	d.Add(0, core.HardBound*fronts.Tmin)
	d.Add(0, core.MediumBound*fronts.Tmin)
	return f, nil
}

// ---------------------------------------------------------------------
// Fig. 8 — area in the three constraint domains for the three methods.
// ---------------------------------------------------------------------

// Fig8Row reports the area of each optimization method at one
// constraint level.
type Fig8Row struct {
	Name                      string
	Domain                    string
	Tc                        float64
	Sizing, LocalB, GlobalB   float64 // ΣW µm; NaN-free: 0 = infeasible
	SizingOK, LocalOK, GlobOK bool
}

// Fig8 evaluates sizing / local buffering / global buffering at the
// paper's three constraint levels.
func (e *Env) Fig8(names []string) ([]Fig8Row, error) {
	levels := []struct {
		domain string
		ratio  float64
	}{
		{"hard", 1.05},
		{"medium", 1.5},
		{"weak", 3.0},
	}
	var rows []Fig8Row
	for _, name := range names {
		pa, _, err := e.criticalPath(name)
		if err != nil {
			return nil, err
		}
		rt, err := sizing.Tmin(e.Model, pa.Clone(), e.Sizing)
		if err != nil {
			return nil, err
		}
		for _, lv := range levels {
			tc := lv.ratio * rt.Delay
			row := Fig8Row{Name: name, Domain: lv.domain, Tc: tc}

			if r, err := sizing.Distribute(e.Model, pa.Clone(), tc, e.Sizing); err == nil {
				row.Sizing, row.SizingOK = r.Area, true
			}
			if r, err := buffering.DistributeWithBuffers(e.Model, pa, tc, e.Limits, buffering.Local, e.Sizing); err == nil {
				row.LocalB, row.LocalOK = r.Area, true
			}
			if r, err := buffering.DistributeWithBuffers(e.Model, pa, tc, e.Limits, buffering.Global, e.Sizing); err == nil {
				row.GlobalB, row.GlobOK = r.Area, true
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig8Tables renders one table per constraint domain.
func Fig8Tables(rows []Fig8Row) []*report.Table {
	byDomain := map[string]*report.Table{}
	order := []string{"hard", "medium", "weak"}
	for _, d := range order {
		byDomain[d] = report.NewTable(
			fmt.Sprintf("Fig. 8 — path area ΣW (µm), %s constraint", d),
			"Circuit", "Tc (ps)", "Sizing", "Local Buff", "Global Buff")
	}
	for _, r := range rows {
		t := byDomain[r.Domain]
		if t == nil {
			continue
		}
		t.AddRow(r.Name, r.Tc, cell(r.Sizing, r.SizingOK), cell(r.LocalB, r.LocalOK), cell(r.GlobalB, r.GlobOK))
	}
	var out []*report.Table
	for _, d := range order {
		out = append(out, byDomain[d])
	}
	return out
}

func cell(v float64, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}

// ---------------------------------------------------------------------
// Table 4 — buffer insertion vs logic restructuring.
// ---------------------------------------------------------------------

// Table4Row compares the two structure-modification alternatives.
type Table4Row struct {
	Name     string
	Domain   string
	Tc       float64
	Buff     float64 // region ΣW µm with buffer insertion
	Restruct float64 // region ΣW µm after De Morgan rewriting
	GainPct  float64
	Rewrites int
}

// Table4 evaluates both flows at hard and medium constraints on the
// paper's four circuits.
func (e *Env) Table4(names []string) ([]Table4Row, error) {
	if names == nil {
		names = []string{"c1355", "c1908", "c5315", "c7552"}
	}
	levels := []struct {
		domain string
		ratio  float64
	}{
		{"hard", 1.15},
		{"medium", 1.5},
	}
	var rows []Table4Row
	for _, name := range names {
		for _, lv := range levels {
			row, err := e.table4One(name, lv.domain, lv.ratio)
			if err != nil {
				return nil, err
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

func (e *Env) table4One(name, domain string, ratio float64) (*Table4Row, error) {
	pa, c, err := e.criticalPath(name)
	if err != nil {
		return nil, err
	}
	rt, err := sizing.Tmin(e.Model, pa.Clone(), e.Sizing)
	if err != nil {
		return nil, err
	}
	tc := ratio * rt.Delay

	// Flow A: buffer insertion (+ global sizing).
	buf, errBuf := buffering.DistributeWithBuffers(e.Model, pa, tc, e.Limits, buffering.Global, e.Sizing)
	buffArea := 0.0
	if errBuf == nil {
		buffArea = buf.Area
	} else {
		// Fall back to plain sizing if no buffers were warranted.
		r, err := sizing.Distribute(e.Model, pa.Clone(), tc, e.Sizing)
		if err != nil {
			return nil, err
		}
		buffArea = r.Area
	}

	// Flow B: De Morgan restructuring of the path's *inefficient* NOR
	// gates — the ones the Flimit metric flags as over-loaded on the
	// sized implementation (§4.2 targets the low-sensitivity gates,
	// not every NOR). The region area adds the off-path inverters the
	// rewrite created.
	before := map[string]bool{}
	for _, n := range c.Nodes {
		before[n.Name] = true
	}
	sized := pa.Clone()
	if _, err := sizing.Distribute(e.Model, sized, tc, e.Sizing); err != nil {
		// Infeasible by sizing: detect on the Tmin configuration the
		// failed Distribute leaves behind.
		_ = err
	}
	targets := e.norTargets(sized)
	rep := &restructure.Report{}
	for _, n := range targets {
		if err := restructure.RewriteNOR(c, n, rep); err != nil {
			return nil, err
		}
	}
	collapsed, err := restructure.CollapseInverterPairs(c)
	if err != nil {
		return nil, err
	}
	rep.Collapsed = collapsed

	pa2, _, err := sta.CriticalPath(c, e.Model, e.STA)
	if err != nil {
		return nil, err
	}
	// The rewrite replaces the inefficient gate; the rest of the path
	// keeps the full protocol toolbox (buffers where still warranted).
	b2, err2 := buffering.DistributeWithBuffers(e.Model, pa2, tc, e.Limits, buffering.Global, e.Sizing)
	if err2 != nil && b2 == nil {
		return nil, fmt.Errorf("table4 %s/%s: buffered re-optimization: %v", name, domain, err2)
	}
	restructArea := b2.Area
	pa2 = b2.Path
	pa2.WriteBack()
	onPath := map[string]bool{}
	for i := range pa2.Stages {
		if n := pa2.Stages[i].Node; n != nil {
			onPath[n.Name] = true
		}
	}
	for _, n := range c.Nodes {
		if !before[n.Name] && n.IsLogic() && !onPath[n.Name] {
			restructArea += n.Cell().Area(n.CIn, e.Proc)
		}
	}

	return &Table4Row{
		Name:     name,
		Domain:   domain,
		Tc:       tc,
		Buff:     buffArea,
		Restruct: restructArea,
		GainPct:  (buffArea - restructArea) / buffArea * 100,
		Rewrites: len(rep.Rewritten),
	}, nil
}

// norTargets returns the netlist NOR gates on the sized path whose
// effective fan-out approaches or exceeds their insertion limit —
// the §4.2 restructuring candidates. When none qualifies, the single
// most-loaded NOR is returned so the flow always exercises a rewrite.
func (e *Env) norTargets(sized *delay.Path) []*netlist.Node {
	var targets []*netlist.Node
	bestExcess := 0.0
	var bestNode *netlist.Node
	for i := range sized.Stages {
		st := &sized.Stages[i]
		if st.Node == nil {
			continue
		}
		switch st.Cell.Type {
		case gate.Nor2, gate.Nor3, gate.Nor4:
		default:
			continue
		}
		lim, ok := e.Limits[st.Cell.Type]
		if !ok || st.CIn <= 0 {
			continue
		}
		f := sized.ExternalLoadAt(i) / st.CIn
		if f > 0.8*lim {
			targets = append(targets, st.Node)
		}
		if f/lim > bestExcess {
			bestExcess = f / lim
			bestNode = st.Node
		}
	}
	if len(targets) == 0 && bestNode != nil {
		targets = append(targets, bestNode)
	}
	return targets
}

// Table4Table renders the comparison.
func Table4Table(rows []Table4Row) *report.Table {
	t := report.NewTable("Table 4 — region area ΣW (µm): buffer insertion vs De Morgan restructuring",
		"Circuit", "Domain", "Tc (ps)", "buff", "restruct", "gain %", "rewrites")
	for _, r := range rows {
		t.AddRow(r.Name, r.Domain, r.Tc, r.Buff, r.Restruct, r.GainPct, r.Rewrites)
	}
	t.AddNote("paper gains: 4%%–16%% on NOR-rich critical paths")
	return t
}
