// Package le implements classic logical effort (Sutherland, Sproull,
// Harris — the paper's reference [4]) as an independent baseline for
// the delay-bound experiments. The paper notes its transition-time
// expressions (eq. 2-3) are "quite similar to the logical effort
// expressions"; this package provides the genuine article so the two
// minimum-delay predictions can be compared: path effort
//
//	F̂ = G·B·H   (logical × branching × electrical effort)
//
// optimal stage effort f* = F̂^(1/N), minimum delay
// D = N·F̂^(1/N) + P (in units of τ_LE), and the optimal stage count
// N* ≈ log₄ F̂ when buffering is free.
package le

import (
	"fmt"
	"math"

	"repro/internal/delay"
	"repro/internal/tech"
)

// Analysis is the logical-effort view of a bounded path.
type Analysis struct {
	// G, B, H are the aggregate logical, branching and electrical
	// efforts; F is their product (path effort).
	G, B, H, F float64
	// N is the path's stage count; Fopt the optimal per-stage effort
	// F^(1/N).
	N    int
	Fopt float64
	// P is the aggregate parasitic delay (τ_LE units).
	P float64
	// DelayUnits is the minimum path delay in τ_LE units:
	// N·F^(1/N) + P.
	DelayUnits float64
	// DelayPs converts DelayUnits with the corner's τ_LE (see TauLE).
	DelayPs float64
	// NStar is the effort-optimal stage count log₄(F), the number of
	// stages an unconstrained buffered implementation would use.
	NStar float64
	// SizesFF are the optimal per-stage input capacitances implied by
	// backward application of the optimal stage effort.
	SizesFF []float64
}

// TauLE returns the logical-effort time unit of the corner: the delay
// slope of the reference inverter per unit electrical effort, derived
// from the same eq. (2-3) parameters (edge-averaged).
func TauLE(p *tech.Process) float64 {
	// Edge-averaged inverter symmetry factor × τ, halved by the
	// 50%-crossing convention of eq. (1)'s output term.
	s := p.S0 * (1 + p.K) * (1 + p.R/p.K) / 2
	return s * p.Tau / 2
}

// gOf returns a cell's logical effort: its edge-averaged drive
// degradation relative to the reference inverter.
func gOf(st *delay.Stage, p *tech.Process) float64 {
	inv := 1 + p.R/p.K // inverter's edge-sum weight (DW = 1 on both edges)
	return (st.Cell.DWHL + st.Cell.DWLH*p.R/p.K) / inv
}

// Analyze computes the logical-effort quantities of a bounded path.
// The first stage's input capacitance and the final loads are taken
// from the path (the same bounded-path contract the POPS methods use).
func Analyze(pa *delay.Path, p *tech.Process) (*Analysis, error) {
	if err := pa.Validate(); err != nil {
		return nil, err
	}
	n := len(pa.Stages)
	a := &Analysis{N: n, G: 1, B: 1}

	// Electrical effort: terminal load over the fixed input drive.
	cin0 := pa.Stages[0].CIn
	cLast := pa.Stages[n-1].COff
	a.H = cLast / cin0

	for i := range pa.Stages {
		st := &pa.Stages[i]
		a.G *= gOf(st, p)
		// Branching effort: (useful + side load) / useful load.
		if i+1 < n {
			useful := pa.Stages[i+1].CIn
			if useful > 0 {
				a.B *= (useful + st.COff) / useful
			}
		}
		a.P += st.Cell.ParasiticFactor
	}
	a.F = a.G * a.B * a.H
	if a.F <= 0 {
		return nil, fmt.Errorf("le: non-positive path effort %g", a.F)
	}
	a.Fopt = math.Pow(a.F, 1/float64(n))
	a.DelayUnits = float64(n)*a.Fopt + a.P
	a.DelayPs = a.DelayUnits * TauLE(p)
	a.NStar = math.Log(a.F) / math.Log(4)

	// Optimal sizes by the backward recurrence
	// C_in(i) = g_i · C_out(i) / f*.
	sizes := make([]float64, n)
	sizes[n-1] = 0 // placeholder; fill backward
	cout := cLast
	for i := n - 1; i >= 0; i-- {
		st := &pa.Stages[i]
		cin := gOf(st, p) * cout / a.Fopt
		sizes[i] = cin
		// The next stage up drives this stage's pin plus side loads.
		if i > 0 {
			cout = cin + pa.Stages[i-1].COff
		}
	}
	a.SizesFF = sizes
	return a, nil
}

// ApplySizes writes the logical-effort optimal sizes onto a clone of
// the path (clamped to the corner's drive range) and returns it, so
// the closed-form model can evaluate the LE solution directly.
func ApplySizes(pa *delay.Path, a *Analysis, p *tech.Process) *delay.Path {
	q := pa.Clone()
	for i := 1; i < len(q.Stages); i++ {
		q.Stages[i].CIn = p.ClampCap(a.SizesFF[i])
	}
	return q
}
