package le

import (
	"math"
	"testing"

	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/sizing"
	"repro/internal/tech"
)

func invChain(p *tech.Process, n int, cin0, load float64) *delay.Path {
	pa := &delay.Path{Name: "chain", TauIn: delay.DefaultTauIn(p)}
	for i := 0; i < n; i++ {
		pa.Stages = append(pa.Stages, delay.Stage{Cell: gate.MustLookup(gate.Inv), CIn: cin0, COff: 0})
	}
	pa.Stages[0].CIn = cin0
	pa.Stages[n-1].COff = load
	return pa
}

func TestAnalyzeInverterChainTextbook(t *testing.T) {
	// Textbook case: inverter chain, no branching — G = 1, B = 1,
	// H = C_L/C_in, f* = H^(1/N), N* = log4 H.
	p := tech.CMOS025()
	pa := invChain(p, 3, 2, 128)
	a, err := Analyze(pa, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.G-1) > 1e-12 || math.Abs(a.B-1) > 1e-12 {
		t.Fatalf("inverter chain efforts G=%g B=%g", a.G, a.B)
	}
	if math.Abs(a.H-64) > 1e-9 {
		t.Fatalf("H = %g, want 64", a.H)
	}
	if math.Abs(a.Fopt-4) > 1e-9 {
		t.Fatalf("f* = %g, want 4 (64^(1/3))", a.Fopt)
	}
	if math.Abs(a.NStar-3) > 1e-9 {
		t.Fatalf("N* = %g, want 3", a.NStar)
	}
	// Optimal sizes form a geometric taper ×4.
	for i := 1; i < 3; i++ {
		ratio := a.SizesFF[i] / a.SizesFF[i-1]
		if math.Abs(ratio-4) > 1e-6 {
			t.Fatalf("taper ratio %g at stage %d", ratio, i)
		}
	}
}

func TestLogicalEffortOfGates(t *testing.T) {
	p := tech.CMOS025()
	inv := &delay.Stage{Cell: gate.MustLookup(gate.Inv)}
	nand := &delay.Stage{Cell: gate.MustLookup(gate.Nand2)}
	nor := &delay.Stage{Cell: gate.MustLookup(gate.Nor3)}
	if math.Abs(gOf(inv, p)-1) > 1e-12 {
		t.Fatalf("inverter logical effort %g", gOf(inv, p))
	}
	if gOf(nand, p) <= 1 || gOf(nor, p) <= gOf(nand, p) {
		t.Fatalf("effort ordering broken: nand %g nor3 %g", gOf(nand, p), gOf(nor, p))
	}
}

func TestBranchingEffort(t *testing.T) {
	p := tech.CMOS025()
	pa := invChain(p, 2, 2, 32)
	// Side load on stage 0 equal to the useful load doubles B.
	pa.Stages[0].COff = pa.Stages[1].CIn
	a, err := Analyze(pa, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.B-2) > 1e-9 {
		t.Fatalf("B = %g, want 2", a.B)
	}
}

func TestLEPredictsNearTmin(t *testing.T) {
	// The LE minimum-delay sizing, evaluated under the full eq. (1)
	// model, must land near (and never below) the POPS Tmin on a
	// branch-free chain — the two frameworks agree where their
	// assumptions coincide.
	p := tech.CMOS025()
	m := delay.NewModel(p)
	pa := invChain(p, 5, 2, 200)
	a, err := Analyze(pa, p)
	if err != nil {
		t.Fatal(err)
	}
	leSized := ApplySizes(pa, a, p)
	leDelay := m.PathDelayWorst(leSized)

	rt, err := sizing.Tmin(m, pa.Clone(), sizing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if leDelay < rt.Delay*(1-1e-6) {
		t.Fatalf("LE sizing beat the convex optimum: %g < %g", leDelay, rt.Delay)
	}
	if leDelay > rt.Delay*1.15 {
		t.Fatalf("LE sizing %g far from Tmin %g", leDelay, rt.Delay)
	}
}

func TestLEDelayEstimateTracksModel(t *testing.T) {
	// The closed-form LE delay prediction (in ps via TauLE) tracks the
	// eq. (1) evaluation of its own sizing within a modest band — the
	// "quite similar to the logical effort expressions" remark of §2.2.
	p := tech.CMOS025()
	m := delay.NewModel(p)
	pa := invChain(p, 4, 2, 100)
	a, err := Analyze(pa, p)
	if err != nil {
		t.Fatal(err)
	}
	leSized := ApplySizes(pa, a, p)
	modelDelay := m.PathDelayMean(leSized)
	if ratio := a.DelayPs / modelDelay; ratio < 0.5 || ratio > 1.6 {
		t.Fatalf("LE estimate %g vs model %g (ratio %g)", a.DelayPs, modelDelay, ratio)
	}
}

func TestAnalyzeRejectsInvalidPath(t *testing.T) {
	p := tech.CMOS025()
	if _, err := Analyze(&delay.Path{Name: "empty"}, p); err == nil {
		t.Fatal("empty path accepted")
	}
}

func TestNStarGrowsWithLoad(t *testing.T) {
	p := tech.CMOS025()
	small, err := Analyze(invChain(p, 3, 2, 16), p)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Analyze(invChain(p, 3, 2, 1024), p)
	if err != nil {
		t.Fatal(err)
	}
	if big.NStar <= small.NStar {
		t.Fatal("optimal stage count must grow with load")
	}
}
