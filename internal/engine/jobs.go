// Async job store: popsd's POST endpoints enqueue work here and
// return a job ID immediately; GET /v1/jobs/{id} polls the status.
// Jobs execute on the engine's bounded pool (their inner fan-out takes
// pool slots), so the store adds queueing semantics without a second
// concurrency regime.
package engine

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// ErrStoreClosed reports a Submit against a store whose Close has
// begun: the job was rejected without running. The HTTP layer maps it
// to 503 Service Unavailable.
var ErrStoreClosed = errors.New("engine: job store is closed")

// JobKind names the workload of a job.
type JobKind string

// Job kinds accepted by the store.
const (
	JobOptimize JobKind = "optimize"
	JobSweep    JobKind = "sweep"
	JobSuite    JobKind = "suite"
)

// JobStatus is the lifecycle state of a job.
type JobStatus string

// Job lifecycle states.
const (
	JobPending JobStatus = "pending"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
)

// Job is a point-in-time snapshot of one submitted job. Result is nil
// until the job is done; Error is empty unless it failed.
type Job struct {
	ID       string    `json:"id"`
	Kind     JobKind   `json:"kind"`
	Status   JobStatus `json:"status"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	Result   any       `json:"result,omitempty"`
	Error    string    `json:"error,omitempty"`
	// RequestID is the X-Request-ID of the HTTP request that submitted
	// the job (empty for direct library submissions). It links the
	// access-log line, the job record, and the task's context — the
	// trace spine of the service.
	RequestID string `json:"request_id,omitempty"`
}

// Store is an in-memory async job registry. It is safe for concurrent
// use. Finished jobs (and their result payloads) are retained until
// Prune is called; a long-running daemon polling heavy sweep/suite
// results should prune once clients have collected them.
type Store struct {
	mu     sync.Mutex
	jobs   map[string]*Job
	done   map[string]chan struct{} // closed when the job finishes
	order  []string                 // submission order, for List
	seq    int
	closed bool // set by Close; Submit rejects afterwards
	base   context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// metrics receives job-outcome counters (nil drops events) and log
	// receives one structured line per finished job (never nil; the
	// zero configuration discards). The Server wires both in; a
	// standalone store built by tests keeps the silent defaults.
	metrics *Metrics
	log     *slog.Logger

	// journal is the durable job log (nil: no durability, the default).
	// Submissions that carry a replayable payload append an "accepted"
	// record before their goroutine launches and a terminal record when
	// they finish; on restart popsd folds the records and re-submits
	// jobs that never reached a terminal one (Server.Replay).
	journal *store.Journal
}

// NewStore builds a job store whose jobs run under ctx; cancelling it
// stops queued work at the next round boundary.
func NewStore(ctx context.Context) *Store {
	base, cancel := context.WithCancel(ctx)
	return &Store{
		jobs:   make(map[string]*Job),
		done:   make(map[string]chan struct{}),
		base:   base,
		cancel: cancel,
		log:    obs.Discard(),
	}
}

// Submit registers a job and launches it asynchronously. run receives
// the store's base context — carrying requestID when one is given, so
// the trace ID of the submitting HTTP request follows the work into
// the engine — and returns the job's result value.
//
// After Close has begun, Submit launches nothing: it returns
// ErrStoreClosed alongside a rejected snapshot (status JobFailed,
// never registered in the store). The closed check and the WaitGroup
// increment share the store's critical section, so a Submit racing
// Close either registers before Close's Wait begins or is rejected —
// the Add-after-Wait misuse cannot occur and no job starts after
// shutdown.
func (s *Store) Submit(kind JobKind, requestID string, run func(ctx context.Context) (any, error)) (Job, error) {
	return s.submit(kind, requestID, nil, run)
}

// submit is Submit plus durability: when the store has a journal and
// the caller supplies a replayable request payload, an "accepted"
// record is appended (and synced) before the job's goroutine launches
// — so a job that was acknowledged is either finished in the journal
// or re-submitted after a crash — and a terminal record when it
// finishes. Journal write failures degrade durability, never
// availability: the job still runs, with one warning logged.
func (s *Store) submit(kind JobKind, requestID string, payload []byte, run func(ctx context.Context) (any, error)) (Job, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		now := time.Now().UTC()
		return Job{
			Kind:      kind,
			Status:    JobFailed,
			Created:   now,
			Finished:  now,
			Error:     ErrStoreClosed.Error(),
			RequestID: requestID,
		}, ErrStoreClosed
	}
	s.seq++
	j := &Job{
		ID:        fmt.Sprintf("job-%06d", s.seq),
		Kind:      kind,
		Status:    JobPending,
		Created:   time.Now().UTC(),
		RequestID: requestID,
	}
	s.jobs[j.ID] = j
	done := make(chan struct{})
	s.done[j.ID] = done
	s.order = append(s.order, j.ID)
	snapshot := *j
	s.wg.Add(1)
	s.mu.Unlock()

	journaled := s.journal != nil && payload != nil
	if journaled {
		if err := s.journal.Append(j.ID, payload); err != nil {
			journaled = false
			s.log.Warn("job journal append failed; job will not be replayed after a crash",
				"job", j.ID, "error", err.Error())
		}
	}

	go func() {
		defer s.wg.Done()
		defer close(done)
		s.transition(j.ID, func(j *Job) {
			j.Status = JobRunning
			j.Started = time.Now().UTC()
		})
		ctx := s.base
		if requestID != "" {
			ctx = obs.WithRequestID(ctx, requestID)
		}
		start := time.Now()
		res, err := run(ctx)
		s.transition(j.ID, func(j *Job) {
			j.Finished = time.Now().UTC()
			if err != nil {
				j.Status = JobFailed
				j.Error = err.Error()
				return
			}
			j.Status = JobDone
			j.Result = res
		})
		if journaled {
			terminal := journalDone
			if err != nil {
				terminal = journalFailed
			}
			if jerr := s.journal.Append(j.ID, []byte(terminal)); jerr != nil {
				s.log.Warn("job journal terminal append failed; job may be replayed after a restart",
					"job", j.ID, "error", jerr.Error())
			}
		}
		s.metrics.jobFinished(kind, err != nil)
		if err != nil {
			s.log.Warn("job failed",
				"job", j.ID, "kind", string(kind), "request_id", requestID,
				"duration", time.Since(start), "error", err.Error())
		} else {
			s.log.Info("job done",
				"job", j.ID, "kind", string(kind), "request_id", requestID,
				"duration", time.Since(start))
		}
	}()
	return snapshot, nil
}

// Await blocks until the job finishes (or was never submitted) and
// returns its final snapshot.
func (s *Store) Await(id string) (Job, bool) {
	s.mu.Lock()
	done, ok := s.done[id]
	s.mu.Unlock()
	if !ok {
		return Job{}, false
	}
	<-done
	return s.Get(id)
}

func (s *Store) transition(id string, f func(*Job)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		f(j)
	}
}

// Get returns a snapshot of one job.
func (s *Store) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Len reports the number of registered jobs. Unlike List it takes only
// the lock — no per-job snapshot copies — so liveness probes polling
// the count stay O(1) in allocation regardless of how many finished
// results the store retains.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// List returns snapshots of all jobs in submission order.
func (s *Store) List() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, *s.jobs[id])
	}
	return out
}

// Prune drops finished (done or failed) jobs older than cutoff,
// releasing their result payloads, and reports how many were removed.
// A zero cutoff prunes every finished job.
func (s *Store) Prune(cutoff time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.order[:0]
	removed := 0
	for _, id := range s.order {
		j := s.jobs[id]
		finished := j.Status == JobDone || j.Status == JobFailed
		if finished && (cutoff.IsZero() || j.Finished.Before(cutoff)) {
			delete(s.jobs, id)
			delete(s.done, id)
			removed++
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
	return removed
}

// Wait blocks until every submitted job has finished. Tests and
// graceful shutdown use it; new submissions during the wait are
// included.
func (s *Store) Wait() { s.wg.Wait() }

// Close stops the store: further Submits are rejected (ErrStoreClosed),
// the store's context is cancelled (stopping in-flight jobs at their
// next cancellation point), and Close blocks until they drain. The
// closed flag is raised under the same lock Submit registers under, so
// Wait never races a concurrent WaitGroup Add.
func (s *Store) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}
