package engine

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/iscas"
	"repro/internal/store"
)

// goldenCell mirrors the core golden harness's cell shape
// (internal/core/golden_test.go): float64 JSON round-trips are
// bit-exact, so == on decoded cells is a bit-level comparison.
type goldenCell struct {
	Circuit string  `json:"circuit"`
	Ratio   float64 `json:"ratio"`
	Tc      float64 `json:"tc"`

	Delay       float64 `json:"delay"`
	Area        float64 `json:"area"`
	Feasible    bool    `json:"feasible"`
	Rounds      int     `json:"rounds"`
	Buffers     int     `json:"buffers"`
	NorRewrites int     `json:"norRewrites"`

	LeakDelay     float64 `json:"leakDelay"`
	Promoted      int     `json:"promoted"`
	StaticAfterUW float64 `json:"staticAfterUW"`
	TotalAfterUW  float64 `json:"totalAfterUW"`
}

const sessionGoldenPath = "../core/testdata/session_golden.json"

func loadGoldenCells(t *testing.T) map[string]goldenCell {
	t.Helper()
	data, err := os.ReadFile(sessionGoldenPath)
	if err != nil {
		t.Fatalf("missing session golden: %v", err)
	}
	var cells []goldenCell
	if err := json.Unmarshal(data, &cells); err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]goldenCell, len(cells))
	for _, c := range cells {
		b, _ := json.Marshal(c.Ratio)
		byKey[c.Circuit+"@"+string(b)] = c
	}
	return byKey
}

func newStoreEngine(t *testing.T, results store.Store) *Engine {
	t.Helper()
	e, err := New(Config{Workers: 4, Results: results})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// runGoldenCell drives one (circuit, ratio) golden cell through an
// engine — the plain protocol and the leakage-aware protocol — and
// returns the cell plus the wire-form JSON of both results.
func runGoldenCell(t *testing.T, e *Engine, name string, ratio float64) (goldenCell, []byte) {
	t.Helper()
	plain, err := e.Optimize(context.Background(), OptimizeRequest{Circuit: name, Ratio: ratio})
	if err != nil {
		t.Fatalf("%s@%g: %v", name, ratio, err)
	}
	leak, err := e.Optimize(context.Background(), OptimizeRequest{Circuit: name, Ratio: ratio, Leakage: true})
	if err != nil {
		t.Fatalf("%s@%g leakage: %v", name, ratio, err)
	}
	cell := goldenCell{
		Circuit:       name,
		Ratio:         ratio,
		Tc:            plain.Tc,
		Delay:         plain.Outcome.Delay,
		Area:          plain.Outcome.Area,
		Feasible:      plain.Outcome.Feasible,
		Rounds:        plain.Outcome.Rounds,
		Buffers:       plain.Outcome.Buffers,
		NorRewrites:   plain.Outcome.NorRewrites,
		LeakDelay:     leak.Outcome.Delay,
		Promoted:      leak.Outcome.Leakage.Promoted,
		StaticAfterUW: leak.Outcome.Leakage.StaticAfterUW,
		TotalAfterUW:  leak.Outcome.Leakage.TotalAfterUW,
	}
	wire, err := json.Marshal([]OptimizeWire{WireOptimize(plain), WireOptimize(leak)})
	if err != nil {
		t.Fatal(err)
	}
	return cell, wire
}

// TestStoreEquivalenceGolden is the equivalence property of the
// durable tier: an engine writing through a disk store produces
// byte-identical outcomes to the memory-only golden record for every
// suite benchmark × constraint ratio — and a second engine warm-started
// over the same directory serves every cell purely from disk (zero
// computed tasks) with identical wire-form bytes. With -short only the
// four fastest benchmarks are checked.
func TestStoreEquivalenceGolden(t *testing.T) {
	golden := loadGoldenCells(t)
	names := []string{}
	for _, s := range iscas.Suite() {
		names = append(names, s.Name)
	}
	if testing.Short() {
		names = []string{"fpd", "c432", "c880", "c1355"}
	}
	ratios := []float64{1.2, 1.5, 2.0}

	dir := t.TempDir()
	disk, err := store.OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold := newStoreEngine(t, disk)
	coldWire := make(map[string][]byte)
	for _, name := range names {
		for _, ratio := range ratios {
			cell, wire := runGoldenCell(t, cold, name, ratio)
			b, _ := json.Marshal(ratio)
			key := name + "@" + string(b)
			want, ok := golden[key]
			if !ok {
				t.Fatalf("%s: no golden cell recorded", key)
			}
			if cell != want {
				t.Errorf("%s with disk tier diverged from golden:\n got %+v\nwant %+v", key, cell, want)
			}
			coldWire[key] = wire
		}
	}
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm start: a fresh engine over the same directory must serve
	// every cell from disk — no computation, byte-identical wire form.
	warmDisk, err := store.OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer warmDisk.Close()
	warm := newStoreEngine(t, warmDisk)
	for _, name := range names {
		for _, ratio := range ratios {
			_, wire := runGoldenCell(t, warm, name, ratio)
			b, _ := json.Marshal(ratio)
			key := name + "@" + string(b)
			if string(wire) != string(coldWire[key]) {
				t.Errorf("%s: warm-start wire form differs from cold run:\n got %s\nwant %s",
					key, wire, coldWire[key])
			}
		}
	}
	snap := warm.MetricsSnapshot()
	if got := snap["pops_tasks_total"]; got != 0 {
		t.Errorf("warm start computed %v tasks, want 0 (all cells served from disk)", got)
	}
	wantHits := float64(len(names) * len(ratios) * 2)
	if got := snap["pops_store_hits_total"]; got != wantHits {
		t.Errorf("warm start store hits = %v, want %v", got, wantHits)
	}
	if got := snap["pops_store_errors_total"]; got != 0 {
		t.Errorf("warm start store errors = %v, want 0", got)
	}
}

// TestStoreMetricsAccounting pins the counter semantics of the tier:
// a cold task is a store miss plus a write; the same task on a fresh
// engine sharing the store is a hit and computes nothing.
func TestStoreMetricsAccounting(t *testing.T) {
	shared := store.NewMemory()

	cold := newStoreEngine(t, shared)
	if _, err := cold.Optimize(context.Background(), OptimizeRequest{Circuit: "fpd", Ratio: 1.5}); err != nil {
		t.Fatal(err)
	}
	snap := cold.MetricsSnapshot()
	if snap["pops_store_misses_total"] != 1 || snap["pops_store_writes_total"] != 1 {
		t.Errorf("cold run: misses=%v writes=%v, want 1/1",
			snap["pops_store_misses_total"], snap["pops_store_writes_total"])
	}
	if snap["pops_tasks_total"] != 1 {
		t.Errorf("cold run computed %v tasks, want 1", snap["pops_tasks_total"])
	}
	// Same engine again: served by the in-memory memo, no store traffic.
	if _, err := cold.Optimize(context.Background(), OptimizeRequest{Circuit: "fpd", Ratio: 1.5}); err != nil {
		t.Fatal(err)
	}
	snap = cold.MetricsSnapshot()
	if snap["pops_store_hits_total"] != 0 || snap["pops_store_misses_total"] != 1 {
		t.Errorf("memo hit touched the store: hits=%v misses=%v",
			snap["pops_store_hits_total"], snap["pops_store_misses_total"])
	}

	warm := newStoreEngine(t, shared)
	if _, err := warm.Optimize(context.Background(), OptimizeRequest{Circuit: "fpd", Ratio: 1.5}); err != nil {
		t.Fatal(err)
	}
	snap = warm.MetricsSnapshot()
	if snap["pops_store_hits_total"] != 1 {
		t.Errorf("warm run store hits = %v, want 1", snap["pops_store_hits_total"])
	}
	if snap["pops_tasks_total"] != 0 {
		t.Errorf("warm run computed %v tasks, want 0", snap["pops_tasks_total"])
	}
}

// TestStoredResultRoundTrip pins the persisted form: decode(encode(r))
// reproduces every field a consumer reads, including the synthetic
// path's stage count and sizes.
func TestStoredResultRoundTrip(t *testing.T) {
	e := newStoreEngine(t, nil)
	res, err := e.Optimize(context.Background(), OptimizeRequest{Circuit: "c432", Ratio: 1.2, Leakage: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := encodeStoredResult(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeStoredResult(data)
	if err != nil {
		t.Fatal(err)
	}
	gotWire, _ := json.Marshal(WireOptimize(back))
	wantWire, _ := json.Marshal(WireOptimize(res))
	if string(gotWire) != string(wantWire) {
		t.Errorf("wire form diverged across persistence:\n got %s\nwant %s", gotWire, wantWire)
	}
	if len(back.Outcome.PathOutcomes) != len(res.Outcome.PathOutcomes) {
		t.Fatalf("path count %d, want %d", len(back.Outcome.PathOutcomes), len(res.Outcome.PathOutcomes))
	}
	for i, po := range res.Outcome.PathOutcomes {
		bp := back.Outcome.PathOutcomes[i]
		if bp.Path.Name != po.Path.Name || bp.Path.Len() != po.Path.Len() {
			t.Errorf("path %d: (%q, %d stages), want (%q, %d)",
				i, bp.Path.Name, bp.Path.Len(), po.Path.Name, po.Path.Len())
		}
		if !reflect.DeepEqual(bp.Path.Sizes(), po.Path.Sizes()) {
			t.Errorf("path %d sizes diverged:\n got %v\nwant %v", i, bp.Path.Sizes(), po.Path.Sizes())
		}
	}
	if !reflect.DeepEqual(back.Outcome.Leakage, res.Outcome.Leakage) {
		t.Errorf("leakage result diverged:\n got %+v\nwant %+v", back.Outcome.Leakage, res.Outcome.Leakage)
	}

	// Version drift is a typed refusal, not a misread.
	var v map[string]any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	v["v"] = storedVersion + 1
	drifted, _ := json.Marshal(v)
	if _, err := decodeStoredResult(drifted); err == nil {
		t.Error("decodeStoredResult accepted a future format version")
	}
}

// newJournaledServer builds a Server wired to a journal in dir.
func newJournaledServer(t *testing.T, dir string) (*Server, *httptest.Server, *store.Journal) {
	t.Helper()
	j, _, err := store.OpenJournal(filepath.Join(dir, "jobs.journal"), nil)
	if err != nil {
		t.Fatal(err)
	}
	e := newStoreEngine(t, nil)
	srv := NewServer(context.Background(), e, WithJournal(j))
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown()
		j.Close()
	})
	return srv, ts, j
}

// TestJournalLifecycle pins the durability protocol of one job: an
// accepted record lands before the job runs, a terminal record after,
// and a journal reopened afterwards folds to no unfinished work.
func TestJournalLifecycle(t *testing.T) {
	dir := t.TempDir()
	srv, ts, j := newJournaledServer(t, dir)
	resp, _ := postJSON(t, ts.URL+"/v1/optimize",
		map[string]any{"circuit": "fpd", "ratio": 1.5, "wait": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status %d", resp.StatusCode)
	}
	srv.store.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	re, entries, err := store.OpenJournal(filepath.Join(dir, "jobs.journal"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if len(entries) != 2 {
		t.Fatalf("journal has %d records, want accepted+done", len(entries))
	}
	var accepted journalRecord
	if err := json.Unmarshal(entries[0].Payload, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Event != "accepted" || accepted.Kind != JobOptimize {
		t.Fatalf("first record = %+v, want accepted optimize", accepted)
	}
	var req OptimizeRequest
	if err := json.Unmarshal(accepted.Request, &req); err != nil {
		t.Fatal(err)
	}
	if req.Circuit != "fpd" || req.Ratio != 1.5 {
		t.Fatalf("journaled request = %+v, want fpd@1.5", req)
	}
	var terminal journalRecord
	if err := json.Unmarshal(entries[1].Payload, &terminal); err != nil {
		t.Fatal(err)
	}
	if terminal.Event != "done" || entries[1].ID != entries[0].ID {
		t.Fatalf("second record = (%s, %+v), want done for %s", entries[1].ID, terminal, entries[0].ID)
	}
}

// TestReplayResubmitsUnfinishedJobs simulates a crash: a journal
// holding one finished and one unfinished job is replayed into a fresh
// server, which must re-run exactly the unfinished one and compact the
// journal so a second replay owes nothing.
func TestReplayResubmitsUnfinishedJobs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.journal")
	j, _, err := store.OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	finished, err := acceptedRecord(JobOptimize, "req-finished", OptimizeRequest{Circuit: "fpd", Ratio: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	unfinished, err := acceptedRecord(JobOptimize, "req-crashed", OptimizeRequest{Circuit: "fpd", Ratio: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []struct {
		id      string
		payload []byte
	}{
		{"job-000001", finished},
		{"job-000002", unfinished},
		{"job-000001", []byte(journalDone)},
		// Unreplayable records must be skipped, never fatal.
		{"job-000003", []byte(`{"event":"accepted","kind":"no-such-kind"}`)},
		{"job-000004", []byte(`not json at all`)},
	} {
		if err := j.Append(rec.id, rec.payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, entries, err := store.OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := newStoreEngine(t, nil)
	srv := NewServer(context.Background(), e, WithJournal(j2))
	t.Cleanup(func() { srv.Shutdown(); j2.Close() })
	n, err := srv.Replay(entries)
	if err != nil {
		t.Fatal(err)
	}
	// Only job-000002 (accepted, no terminal record) is owed: job-000001
	// finished, job-000003/4 are unreplayable and skipped.
	if n != 1 {
		t.Fatalf("replayed %d jobs, want 1", n)
	}
	srv.store.Wait()
	for _, job := range srv.store.List() {
		if job.Kind == JobOptimize {
			if job.Status != JobDone {
				t.Errorf("replayed job %s: status %s (%s)", job.ID, job.Status, job.Error)
			}
			if job.RequestID != "req-crashed" {
				t.Errorf("replayed job %s carries request_id %q, want req-crashed", job.ID, job.RequestID)
			}
		}
	}

	// The journal was compacted and re-journaled: after the replayed
	// jobs finish it folds to no unfinished work.
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, entries, err = store.OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	open := map[string]bool{}
	for _, e := range entries {
		var rec journalRecord
		if err := json.Unmarshal(e.Payload, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Event == "accepted" {
			open[e.ID] = true
		} else {
			delete(open, e.ID)
		}
	}
	if len(open) != 0 {
		t.Errorf("journal still owes jobs after replay completed: %v", open)
	}
}
