package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/iscas"
	"repro/internal/netlist"
)

// rcaBenchSource serializes a genuine ripple-carry adder as .bench
// text — a real arithmetic circuit for the ingestion path.
func rcaBenchSource(t testing.TB, bits int) string {
	t.Helper()
	c, err := iscas.RippleCarryAdder(bits)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := netlist.WriteBench(&sb, c); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestParseBench(t *testing.T) {
	pb, err := ParseBench(iscas.C17Bench())
	if err != nil {
		t.Fatal(err)
	}
	if pb.Name != "c17" {
		t.Fatalf("name %q, want c17 (from the # header)", pb.Name)
	}
	if len(pb.Key) != 64 {
		t.Fatalf("key %q is not a fingerprint", pb.Key)
	}
	if st := pb.Circuit.Stats(); st.Gates != 6 {
		t.Fatalf("c17 parsed to %d gates, want 6", st.Gates)
	}

	// Unnamed sources derive a stable name from the fingerprint.
	anon, err := ParseBench("INPUT(a)\nINPUT(b)\nx = NAND(a, b)\nOUTPUT(x)\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(anon.Name, "bench-") {
		t.Fatalf("anonymous source name %q", anon.Name)
	}

	// Rejections keep their typed kinds through the engine wrapper.
	cases := []struct {
		src  string
		kind netlist.BenchErrorKind
	}{
		{"INPUT(a\n", netlist.BenchSyntax},
		{"INPUT(a)\nx = NAND(a, x)\nOUTPUT(x)\n", netlist.BenchSemantic},
		{"INPUT(a)\nOUTPUT(a)\n# no gates is fine\n", netlist.BenchErrorKind(-1)}, // accepted
		{"x = NOT(x)\n", netlist.BenchSemantic},
		{"", netlist.BenchSemantic}, // no inputs/outputs
	}
	for _, tc := range cases {
		_, err := ParseBench(tc.src)
		if tc.kind == netlist.BenchErrorKind(-1) {
			if err != nil {
				t.Errorf("ParseBench(%q) rejected: %v", tc.src, err)
			}
			continue
		}
		var be *netlist.BenchError
		if !errors.As(err, &be) || be.Kind != tc.kind {
			t.Errorf("ParseBench(%q) = %v, want kind %v", tc.src, err, tc.kind)
		}
	}
}

// TestOptimizeInlineBench runs the protocol end-to-end on inline
// netlists through every batch entry point: Optimize, Sweep and a
// mixed-entry Suite.
func TestOptimizeInlineBench(t *testing.T) {
	e := newEngine(t, 2)
	ctx := context.Background()
	rca := rcaBenchSource(t, 4)

	res, err := e.Optimize(ctx, OptimizeRequest{Bench: rca, Ratio: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit != "rca4" {
		t.Fatalf("display name %q", res.Circuit)
	}
	if !res.Outcome.Feasible || res.Outcome.Delay > res.Tc {
		t.Fatalf("rca4 not optimized: delay %.1f tc %.1f feasible=%v",
			res.Outcome.Delay, res.Tc, res.Outcome.Feasible)
	}

	sw, err := e.Sweep(ctx, SweepRequest{Bench: iscas.C17Bench(), Points: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Circuit != "c17" || len(sw.Points) != 3 {
		t.Fatalf("sweep %q with %d points", sw.Circuit, len(sw.Points))
	}
	for _, p := range sw.Points[1:] {
		if !p.Feasible {
			t.Fatalf("c17 sweep point %.2f infeasible", p.Ratio)
		}
	}

	suite, err := e.Suite(ctx, SuiteRequest{
		Benchmarks: []string{"fpd"},
		Benches:    []string{rca},
		Ratios:     []float64{1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Rows) != 2 {
		t.Fatalf("%d suite rows", len(suite.Rows))
	}
	if suite.Rows[0].Circuit != "fpd" || suite.Rows[1].Circuit != "rca4" {
		t.Fatalf("suite rows %q, %q", suite.Rows[0].Circuit, suite.Rows[1].Circuit)
	}
	if !suite.Rows[1].Feasible {
		t.Fatal("inline suite row infeasible")
	}
}

// TestServiceCapsOnlyBindTheWire pins the trust split: the fan-in and
// size caps guard the HTTP boundary (parseBenchService), while
// trusted callers — the facade and the CLI, like LoadBenchFile before
// them — parse the same source uncapped.
func TestServiceCapsOnlyBindTheWire(t *testing.T) {
	var sb strings.Builder
	args := make([]string, MaxBenchFanIn+1)
	for i := range args {
		fmt.Fprintf(&sb, "INPUT(i%d)\n", i)
		args[i] = fmt.Sprintf("i%d", i)
	}
	fmt.Fprintf(&sb, "x = AND(%s)\nOUTPUT(x)\n", strings.Join(args, ", "))
	src := sb.String()

	if _, err := ParseBench(src); err != nil {
		t.Fatalf("trusted parse rejected a %d-input gate: %v", MaxBenchFanIn+1, err)
	}
	_, err := parseBenchService(src)
	var be *netlist.BenchError
	if !errors.As(err, &be) || be.Kind != netlist.BenchTooLarge {
		t.Fatalf("service parse = %v, want BenchTooLarge", err)
	}
}

// TestRequestSourceValidation pins the exactly-one-of contract.
func TestRequestSourceValidation(t *testing.T) {
	e := newEngine(t, 1)
	ctx := context.Background()
	if _, err := e.Optimize(ctx, OptimizeRequest{}); err == nil {
		t.Fatal("empty request accepted")
	}
	if _, err := e.Optimize(ctx, OptimizeRequest{Circuit: "c17", Bench: iscas.C17Bench()}); err == nil {
		t.Fatal("ambiguous request accepted")
	}
	if _, err := e.Sweep(ctx, SweepRequest{Points: 3}); err == nil {
		t.Fatal("sweep without source accepted")
	}
	if _, err := e.Suite(ctx, SuiteRequest{Benches: []string{"INPUT(a\n"}}); err == nil {
		t.Fatal("suite with malformed inline source accepted")
	}
}

// TestResultMemoKeyedByContent is the cache-rekey regression test: two
// different netlists submitted under the same display name must occupy
// distinct memo entries (keying on the name would alias them — the
// pre-rekey unsoundness), while resubmissions and name aliases of
// identical content share one entry.
func TestResultMemoKeyedByContent(t *testing.T) {
	e := newEngine(t, 2)
	ctx := context.Background()

	// Two structurally different circuits that both claim to be "same".
	inv := "# same\nINPUT(a)\ny = NOT(a)\nOUTPUT(y)\n"
	chain := "# same\nINPUT(a)\nx = NOT(a)\ny = NOT(x)\nz = NOT(y)\nOUTPUT(z)\n"
	r1, err := e.Optimize(ctx, OptimizeRequest{Bench: inv, Ratio: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Optimize(ctx, OptimizeRequest{Bench: chain, Ratio: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Circuit != "same" || r2.Circuit != "same" {
		t.Fatalf("display names %q, %q", r1.Circuit, r2.Circuit)
	}
	if r1.Gates == r2.Gates {
		t.Fatalf("distinct netlists returned one memo entry: both %d gates", r1.Gates)
	}
	if got := len(e.cache.results); got != 2 {
		t.Fatalf("%d memo entries, want 2", got)
	}

	// Identical content under a different name hits the same entry and
	// is relabelled, not recomputed.
	renamed := strings.Replace(inv, "# same", "# other", 1)
	r3, err := e.Optimize(ctx, OptimizeRequest{Bench: renamed, Ratio: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(e.cache.results); got != 2 {
		t.Fatalf("identical netlist under a new name added a memo entry (%d total)", got)
	}
	if r3.Circuit != "other" {
		t.Fatalf("memo hit not relabelled: %q", r3.Circuit)
	}
	if r3.Tc != r1.Tc || r3.Outcome.Area != r1.Outcome.Area {
		t.Fatalf("alias hit diverged: %+v vs %+v", r3, r1)
	}

	// Named suite requests still memoize: one entry per (circuit, Tc),
	// resubmission adds nothing.
	if _, err := e.Optimize(ctx, OptimizeRequest{Circuit: "fpd", Ratio: 1.5}); err != nil {
		t.Fatal(err)
	}
	n := len(e.cache.results)
	if _, err := e.Optimize(ctx, OptimizeRequest{Circuit: "fpd", Ratio: 1.5}); err != nil {
		t.Fatal(err)
	}
	if len(e.cache.results) != n {
		t.Fatal("named resubmission missed the memo")
	}
	if _, ok := e.cache.aliases["fpd"]; !ok {
		t.Fatal("suite name has no fingerprint alias")
	}
}
