// Bring-your-own-netlist ingestion: requests may carry a raw ISCAS
// ".bench" source instead of a suite benchmark name. The source is
// parsed once per request behind a hardened validation pass —
// combinational-loop detection, unsupported operators, duplicate
// definitions, fan-in and size caps — elaborated onto the primitive
// library, and fingerprinted so the engine's memoization keys on the
// netlist's *content*, never on a client-chosen name.

package engine

import (
	"fmt"
	"strings"

	"repro/internal/netlist"
)

// Ingestion limits for inline .bench sources arriving over the wire.
// They bound what an untrusted client can make the engine elaborate;
// violations surface as typed netlist.BenchError values of kind
// BenchTooLarge. The limits apply at the service boundary (the HTTP
// layer's synchronous validation) — trusted callers going through
// ParseBench, the facade or the CLI parse without caps, exactly like
// pops.LoadBenchFile.
const (
	// MaxBenchBytes caps the raw source size (matches the HTTP body
	// limit, so an in-band source can never exceed it anyway).
	MaxBenchBytes = 1 << 20
	// MaxBenchGates caps gate definitions before decomposition.
	MaxBenchGates = 1 << 16
	// MaxBenchFanIn caps the operand count of one gate definition.
	MaxBenchFanIn = 64
)

// ParsedBench is a validated inline netlist, ready to optimize: the
// elaborated master circuit, its canonical content fingerprint (the
// engine's memo key), and the display name reported in results.
type ParsedBench struct {
	// Name labels results: the source's "# name" header comment when
	// present, otherwise "bench-" plus a fingerprint prefix.
	Name string
	// Key is the canonical content fingerprint of the elaborated
	// circuit (netlist.Fingerprint).
	Key string
	// Circuit is the elaborated master netlist. Optimization tasks
	// clone it; the master itself is never mutated.
	Circuit *netlist.Circuit
}

// ParseBench parses, validates and elaborates an inline .bench source
// for a trusted caller (the facade, the CLI): the full structural
// validation pass with no size caps. Rejections are typed
// *netlist.BenchError values (syntax, semantic, too-large).
func ParseBench(src string) (*ParsedBench, error) {
	return parseBench(src, netlist.BenchLimits{}, 0)
}

// parseBenchService is ParseBench under the service ingestion caps —
// what the HTTP layer runs on untrusted wire input.
func parseBenchService(src string) (*ParsedBench, error) {
	return parseBench(src,
		netlist.BenchLimits{MaxGates: MaxBenchGates, MaxFanIn: MaxBenchFanIn},
		MaxBenchBytes)
}

// parseBench is the shared parse/validate/elaborate/fingerprint body.
// maxBytes zero (like zero lim fields) applies no bound.
func parseBench(src string, lim netlist.BenchLimits, maxBytes int) (*ParsedBench, error) {
	if maxBytes > 0 && len(src) > maxBytes {
		return nil, &netlist.BenchError{Kind: netlist.BenchTooLarge,
			Msg: fmt.Sprintf("source of %d bytes exceeds the %d-byte limit", len(src), maxBytes)}
	}
	c, err := netlist.ReadBench(strings.NewReader(src), netlist.BenchOptions{Limits: lim})
	if err != nil {
		return nil, err
	}
	if len(c.Inputs) == 0 {
		return nil, &netlist.BenchError{Kind: netlist.BenchSemantic,
			Msg: "netlist declares no INPUT"}
	}
	if len(c.Outputs) == 0 {
		return nil, &netlist.BenchError{Kind: netlist.BenchSemantic,
			Msg: "netlist declares no OUTPUT"}
	}
	el, err := netlist.Elaborate(c)
	if err != nil {
		return nil, &netlist.BenchError{Kind: netlist.BenchSemantic,
			Msg: fmt.Sprintf("elaboration: %v", err)}
	}
	if err := el.Validate(); err != nil {
		return nil, &netlist.BenchError{Kind: netlist.BenchSemantic,
			Msg: fmt.Sprintf("validation: %v", err)}
	}
	key := netlist.Fingerprint(el)
	name := el.Name
	if name == "" {
		name = "bench-" + key[:12]
	}
	return &ParsedBench{Name: name, Key: key, Circuit: el}, nil
}

// source is the resolved circuit origin of one request: the display
// name carried into results, the canonical fingerprint keying the
// result memo, and an instantiation hook producing a fresh netlist
// that no concurrent task shares.
type source struct {
	display string
	key     string
	// master is the already-elaborated netlist when the resolution had
	// one in hand (inline sources; named circuits loaded to compute a
	// fresh fingerprint alias). nil falls back to loading by name.
	master *netlist.Circuit
	name   string // suite name when master is nil
}

// instantiate returns a fresh, caller-owned circuit instance.
func (s *source) instantiate() (*netlist.Circuit, error) {
	if s.master != nil {
		return s.master.Clone(), nil
	}
	return loadCircuit(s.name)
}
