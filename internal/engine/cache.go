// Characterization cache: the engine memoizes every reusable
// sub-problem of the protocol — the library Flimit table of a process
// corner (the Fig. 7 "library characterization" step, shared by every
// job on that corner), the Tmin/Tmax delay bounds of a path (shared by
// every Tc point of a sweep and by repeated submissions of the same
// circuit), and whole (circuit, Tc, leakage-policy) task results
// (shared by repeated submissions — the common case for a long-running
// daemon). Entries are computed once under a per-key latch, so
// concurrent workers hitting the same key block on one computation
// instead of duplicating it.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/buffering"
	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/leakage"
	"repro/internal/netlist"
	"repro/internal/sizing"
	"repro/internal/store"
)

// taskKey indexes the result memo and, hashed through storeKeyFor, the
// durable tier. It is a distinct type so the compiler keeps memo keys
// apart from circuit names and the other string-shaped identifiers in
// the engine: a taskKey is only minted by resultKey, whose circuit
// component is a content fingerprint, never a display name (the PR-5
// aliasing bug class, now also policed by the memokey analyzer).
type taskKey string

// boundsKey indexes the path-bounds memo: process corner plus
// content-derived path signature.
type boundsKey string

// Cache memoizes per-process characterization artifacts. The zero
// value is not usable; call NewCache. A Cache is safe for concurrent
// use and is shared by all workers of an Engine.
type Cache struct {
	mu     sync.Mutex
	limits map[string]*limitsEntry

	// Path-bounds memo, bounded FIFO: its keys derive from
	// client-supplied netlists, so like the result memo it must not
	// grow without bound in a long-running daemon.
	bounds      map[boundsKey]*boundsEntry
	boundsOrder []boundsKey

	// Result memoization: completed optimization tasks keyed by
	// (process, circuit fingerprint, Tc, ratio, leakage policy),
	// bounded FIFO.
	results     map[taskKey]*resultEntry
	resultOrder []taskKey

	// aliases maps a suite circuit name to the canonical fingerprint
	// of its deterministically generated netlist. Keying results by
	// fingerprint instead of name keeps the memo sound when inline
	// netlists share a name; the alias preserves the cheap name-based
	// lookup (and every existing cache hit) for suite requests.
	aliases map[string]string

	// metrics receives hit/miss/eviction events per memo family. The
	// engine wires its instrument set in at construction; a standalone
	// cache leaves it nil (every event method is nil-safe).
	metrics *Metrics

	// tier is the durable result store behind the in-memory result
	// memo (nil: memory-only, the default). A memo miss probes it
	// before computing; a computed result is written through to it. The
	// tier outlives the process, so a restarted daemon serves repeated
	// tasks without recomputation.
	tier store.Store
}

// limitsEntry latches one library characterization (Flimit table rows
// and the derived per-gate limit map) for a process corner.
type limitsEntry struct {
	once    sync.Once
	entries []buffering.TableEntry
	limits  map[gate.Type]float64
}

// boundsEntry latches the Tmin/Tmax delay bounds of one path shape.
type boundsEntry struct {
	once       sync.Once
	tmin, tmax float64
	err        error
}

// resultEntry latches one completed optimization task. done is closed
// when the computation finishes; waiters then read res/err without a
// lock (single write happens-before the close).
type resultEntry struct {
	done chan struct{}
	res  *OptimizeResult
	err  error
}

// MaxResultEntries and MaxBoundsEntries bound the result and bounds
// memos; beyond them the oldest entry is evicted (FIFO — with
// deterministic results, re-deriving an evicted entry is harmless).
// Both maps are fed by untrusted request streams, so neither may grow
// without bound.
const (
	MaxResultEntries = 4096
	MaxBoundsEntries = 4096
)

// NewCache returns an empty characterization cache.
func NewCache() *Cache {
	return &Cache{
		limits:  make(map[string]*limitsEntry),
		bounds:  make(map[boundsKey]*boundsEntry),
		results: make(map[taskKey]*resultEntry),
		aliases: make(map[string]string),
	}
}

// Alias returns the memoized canonical fingerprint of a named suite
// circuit, computing it through fp on the first request. Suite
// benchmarks generate deterministically, so the mapping is stable; a
// racing duplicate computation produces the identical value and is
// harmless.
func (ca *Cache) Alias(name string, fp func() (string, error)) (string, error) {
	ca.mu.Lock()
	if k, ok := ca.aliases[name]; ok {
		ca.mu.Unlock()
		ca.metrics.memoHit(memoAlias)
		return k, nil
	}
	ca.mu.Unlock()
	ca.metrics.memoMiss(memoAlias)
	k, err := fp()
	if err != nil {
		return "", err
	}
	ca.mu.Lock()
	ca.aliases[name] = k
	ca.mu.Unlock()
	return k, nil
}

// Characterization returns the memoized library characterization of
// the model's process corner: the Table 2 rows (gate, driver, Flimit)
// and the per-gate insertion-limit map consumed by the protocol.
func (ca *Cache) Characterization(m *delay.Model) ([]buffering.TableEntry, map[gate.Type]float64) {
	ca.mu.Lock()
	e, ok := ca.limits[m.Proc.Name]
	if !ok {
		e = &limitsEntry{}
		ca.limits[m.Proc.Name] = e
	}
	ca.mu.Unlock()
	e.once.Do(func() {
		e.entries = buffering.CharacterizeLibrary(m, nil, buffering.Options{})
		e.limits = buffering.Limits(e.entries)
	})
	return e.entries, e.limits
}

// Limits returns the memoized Flimit lookup for the model's corner.
func (ca *Cache) Limits(m *delay.Model) map[gate.Type]float64 {
	_, lim := ca.Characterization(m)
	return lim
}

// Bounds returns the memoized Tmin/Tmax delay bounds of a path,
// keyed by process corner + path signature. The path itself is never
// mutated: the solvers run on throwaway clones. The sizing options are
// not part of the key — a cache belongs to one Engine, whose options
// are fixed at construction.
func (ca *Cache) Bounds(m *delay.Model, pa *delay.Path, opts sizing.Options) (tmin, tmax float64, err error) {
	key := boundsKey(m.Proc.Name + "/" + PathSignature(pa))
	ca.mu.Lock()
	e, ok := ca.bounds[key]
	if !ok {
		e = &boundsEntry{}
		ca.bounds[key] = e
		ca.boundsOrder = append(ca.boundsOrder, key)
		if len(ca.boundsOrder) > MaxBoundsEntries {
			oldest := ca.boundsOrder[0]
			ca.boundsOrder = ca.boundsOrder[1:]
			// Holders of the evicted entry's pointer still complete
			// their latch safely; only the map slot is recycled.
			delete(ca.bounds, oldest)
			ca.metrics.memoEvict(memoBounds)
		}
	}
	ca.mu.Unlock()
	if ok {
		ca.metrics.memoHit(memoBounds)
	} else {
		ca.metrics.memoMiss(memoBounds)
	}
	e.once.Do(func() {
		e.tmax = sizing.Tmax(m, pa.Clone())
		r, err := sizing.Tmin(m, pa.Clone(), opts)
		if err != nil {
			e.err = err
			return
		}
		e.tmin = r.Delay
	})
	return e.tmin, e.tmax, e.err
}

// Result returns the memoized outcome of one optimization task,
// computing it at most once per key across all workers of the engine.
// Concurrent callers with the same key block on the first computation
// (their own pool slots stay held, but the latch never waits on a
// slot, so the pool cannot deadlock). Failed computations are evicted
// immediately and never latched, so a cancelled context does not
// poison the key; a waiter that observes another caller's failure
// retries with its own computation rather than inheriting an error —
// such as a cancellation — that belongs to someone else's context.
// Waiting itself is cancellable: a waiter whose own ctx expires
// returns immediately (releasing its pool slot) instead of blocking
// for the duration of someone else's computation.
func (ca *Cache) Result(ctx context.Context, key taskKey, compute func() (*OptimizeResult, error)) (*OptimizeResult, error) {
	for {
		ca.mu.Lock()
		e, ok := ca.results[key]
		if !ok {
			break // compute it ourselves, mu still held
		}
		ca.mu.Unlock()
		ca.metrics.memoHit(memoResult)
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err == nil {
			return e.res, nil
		}
		// The computing caller failed (its entry is already evicted);
		// loop and run our own computation under our own context.
	}
	e := &resultEntry{done: make(chan struct{})}
	ca.results[key] = e
	ca.resultOrder = append(ca.resultOrder, key)
	if len(ca.resultOrder) > MaxResultEntries {
		oldest := ca.resultOrder[0]
		ca.resultOrder = ca.resultOrder[1:]
		delete(ca.results, oldest)
		ca.metrics.memoEvict(memoResult)
	}
	ca.mu.Unlock()
	ca.metrics.memoMiss(memoResult)

	// Second tier: a memo miss probes the durable store before paying
	// for a computation. A hit latches into the memory memo exactly like
	// a computed result, so every waiter on this key is served; a
	// corrupt or unreadable record counts as a store error and falls
	// through to computation (the write-through below repairs it).
	if ca.tier != nil {
		if res, ok := ca.tierGet(key); ok {
			e.res = res
			close(e.done)
			return e.res, nil
		}
	}

	e.res, e.err = compute()
	if e.err != nil {
		ca.mu.Lock()
		if ca.results[key] == e {
			delete(ca.results, key)
			for i, k := range ca.resultOrder {
				if k == key {
					ca.resultOrder = append(ca.resultOrder[:i], ca.resultOrder[i+1:]...)
					break
				}
			}
		}
		ca.mu.Unlock()
	}
	close(e.done)
	if ca.tier != nil && e.err == nil {
		ca.tierPut(key, e.res)
	}
	return e.res, e.err
}

// tierGet probes the durable tier for a memoized task, reporting
// whether it was served. Every outcome feeds the store counters.
func (ca *Cache) tierGet(key taskKey) (*OptimizeResult, bool) {
	data, err := ca.tier.Get(storeKeyFor(key))
	if err != nil {
		if errors.Is(err, store.ErrNotFound) {
			ca.metrics.storeMiss()
		} else {
			ca.metrics.storeError()
		}
		return nil, false
	}
	res, err := decodeStoredResult(data)
	if err != nil {
		// A record that passed the store's checksum but fails the result
		// schema (format drift across versions): recompute and overwrite.
		ca.metrics.storeError()
		return nil, false
	}
	ca.metrics.storeHit()
	return res, true
}

// tierPut writes a computed result through to the durable tier.
// Persistence failures never fail the task — the result is already
// latched in memory — they only count store errors.
func (ca *Cache) tierPut(key taskKey, res *OptimizeResult) {
	data, err := encodeStoredResult(res)
	if err != nil {
		ca.metrics.storeError()
		return
	}
	if err := ca.tier.Put(storeKeyFor(key), data); err != nil {
		ca.metrics.storeError()
		return
	}
	ca.metrics.storeWrite()
}

// resultKey spells out one (process, circuit, request, leakage policy)
// task as a delimited string — the components themselves, not a hash,
// so distinct tasks can never collide into each other's memo entry.
// The circuit is identified by its canonical content fingerprint
// (netlist.Fingerprint), never by a client-chosen name: two different
// netlists sharing a name occupy distinct entries, and identical
// netlists under different names share one. Floats are keyed by their
// exact bit patterns. The leakage policy is part of the key only when
// the request's flag is on, so retuning the engine-wide policy never
// aliases dynamic-only entries.
func resultKey(proc, circuit string, req OptimizeRequest, pol leakage.Options) taskKey {
	key := fmt.Sprintf("%s|%s|%x|%x", proc, circuit,
		math.Float64bits(req.Tc), math.Float64bits(req.Ratio))
	if !req.Leakage {
		return taskKey(key + "|dyn")
	}
	return taskKey(key + fmt.Sprintf("|leak|%x|%d|%d|%x|%x|%v|%d",
		math.Float64bits(pol.Power.FrequencyMHz),
		pol.Power.Vectors,
		pol.Power.Seed,
		math.Float64bits(pol.Power.InputActivity),
		math.Float64bits(pol.STA.InputTau),
		pol.CapAtSVT,
		pol.MaxPromotions))
}

// PathSignature returns a stable fingerprint of a path's optimization
// sub-problem: the stage cell sequence with sizes and off-path loads,
// plus the entry transition time. Two paths with equal signatures have
// identical delay bounds; the path name is deliberately excluded. The
// hash is SHA-256, not a 64-bit mixer: the bounds memo is shared
// across clients of a long-running daemon that now ingests untrusted
// netlists, so a crafted collision must not be able to alias one
// path's cached Tmin/Tmax onto another's (the same reasoning that
// keys the result memo on netlist.Fingerprint).
func PathSignature(pa *delay.Path) string {
	h := netlist.NewCanonicalHasher()
	h.Float(pa.TauIn)
	h.Word(uint64(len(pa.Stages)))
	for i := range pa.Stages {
		st := &pa.Stages[i]
		h.Word(uint64(st.Cell.Type))
		h.Float(st.CIn)
		h.Float(st.COff)
	}
	return h.Sum()
}
