// Characterization cache: the engine memoizes every reusable
// sub-problem of the protocol — the library Flimit table of a process
// corner (the Fig. 7 "library characterization" step, shared by every
// job on that corner) and the Tmin/Tmax delay bounds of a path (shared
// by every Tc point of a sweep and by repeated submissions of the same
// circuit). Entries are computed once under a per-key latch, so
// concurrent workers hitting the same key block on one computation
// instead of duplicating it.
package engine

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/buffering"
	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/sizing"
)

// Cache memoizes per-process characterization artifacts. The zero
// value is not usable; call NewCache. A Cache is safe for concurrent
// use and is shared by all workers of an Engine.
type Cache struct {
	mu     sync.Mutex
	limits map[string]*limitsEntry
	bounds map[string]*boundsEntry
}

// limitsEntry latches one library characterization (Flimit table rows
// and the derived per-gate limit map) for a process corner.
type limitsEntry struct {
	once    sync.Once
	entries []buffering.TableEntry
	limits  map[gate.Type]float64
}

// boundsEntry latches the Tmin/Tmax delay bounds of one path shape.
type boundsEntry struct {
	once       sync.Once
	tmin, tmax float64
	err        error
}

// NewCache returns an empty characterization cache.
func NewCache() *Cache {
	return &Cache{
		limits: make(map[string]*limitsEntry),
		bounds: make(map[string]*boundsEntry),
	}
}

// Characterization returns the memoized library characterization of
// the model's process corner: the Table 2 rows (gate, driver, Flimit)
// and the per-gate insertion-limit map consumed by the protocol.
func (ca *Cache) Characterization(m *delay.Model) ([]buffering.TableEntry, map[gate.Type]float64) {
	ca.mu.Lock()
	e, ok := ca.limits[m.Proc.Name]
	if !ok {
		e = &limitsEntry{}
		ca.limits[m.Proc.Name] = e
	}
	ca.mu.Unlock()
	e.once.Do(func() {
		e.entries = buffering.CharacterizeLibrary(m, nil, buffering.Options{})
		e.limits = buffering.Limits(e.entries)
	})
	return e.entries, e.limits
}

// Limits returns the memoized Flimit lookup for the model's corner.
func (ca *Cache) Limits(m *delay.Model) map[gate.Type]float64 {
	_, lim := ca.Characterization(m)
	return lim
}

// Bounds returns the memoized Tmin/Tmax delay bounds of a path,
// keyed by process corner + path signature. The path itself is never
// mutated: the solvers run on throwaway clones. The sizing options are
// not part of the key — a cache belongs to one Engine, whose options
// are fixed at construction.
func (ca *Cache) Bounds(m *delay.Model, pa *delay.Path, opts sizing.Options) (tmin, tmax float64, err error) {
	key := m.Proc.Name + "/" + PathSignature(pa)
	ca.mu.Lock()
	e, ok := ca.bounds[key]
	if !ok {
		e = &boundsEntry{}
		ca.bounds[key] = e
	}
	ca.mu.Unlock()
	e.once.Do(func() {
		e.tmax = sizing.Tmax(m, pa.Clone())
		r, err := sizing.Tmin(m, pa.Clone(), opts)
		if err != nil {
			e.err = err
			return
		}
		e.tmin = r.Delay
	})
	return e.tmin, e.tmax, e.err
}

// PathSignature returns a stable fingerprint of a path's optimization
// sub-problem: the stage cell sequence with sizes and off-path loads,
// plus the entry transition time. Two paths with equal signatures have
// identical delay bounds; the path name is deliberately excluded.
func PathSignature(pa *delay.Path) string {
	h := fnv.New64a()
	var buf [8]byte
	word := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	word(math.Float64bits(pa.TauIn))
	word(uint64(len(pa.Stages)))
	for i := range pa.Stages {
		st := &pa.Stages[i]
		word(uint64(st.Cell.Type))
		word(math.Float64bits(st.CIn))
		word(math.Float64bits(st.COff))
	}
	sum := h.Sum64()
	const hex = "0123456789abcdef"
	var out [16]byte
	for i := 15; i >= 0; i-- {
		out[i] = hex[sum&0xf]
		sum >>= 4
	}
	return string(out[:])
}
