package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	e := newEngine(t, 2)
	srv := NewServer(context.Background(), e)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if body["status"] != "ok" {
		t.Fatalf("body %v", body)
	}
	if body["workers"].(float64) != 2 {
		t.Fatalf("workers %v", body["workers"])
	}
}

func TestOptimizeEndpointWait(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/optimize",
		map[string]any{"circuit": "fpd", "ratio": 1.5, "wait": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, body)
	}
	if body["status"] != string(JobDone) {
		t.Fatalf("job status %v (%v)", body["status"], body["error"])
	}
	res := body["result"].(map[string]any)
	if res["circuit"] != "fpd" || res["feasible"] != true {
		t.Fatalf("result %v", res)
	}
	if res["delay"].(float64) > res["tc"].(float64) {
		t.Fatalf("delay above tc: %v", res)
	}
}

func TestOptimizeEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/v1/optimize", map[string]any{"ratio": 1.5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing circuit: status %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/optimize", map[string]any{"circuit": "fpd", "bogus": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", resp.StatusCode)
	}
	resp, body := postJSON(t, ts.URL+"/v1/optimize",
		map[string]any{"circuit": "no-such-circuit", "wait": true})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown benchmark: status %d %v", resp.StatusCode, body)
	}
	if body["status"] != string(JobFailed) || body["error"] == "" {
		t.Fatalf("failed job body %v", body)
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	srv, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/sweep", map[string]any{"circuit": "fpd", "points": 3})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %v", resp.StatusCode, body)
	}
	id := body["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", body)
	}

	// Poll until done, as a client would.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body = getJSON(t, ts.URL+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		st := body["status"].(string)
		if st == string(JobDone) {
			break
		}
		if st == string(JobFailed) {
			t.Fatalf("job failed: %v", body["error"])
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
	res := body["result"].(map[string]any)
	if res["circuit"] != "fpd" {
		t.Fatalf("result %v", res)
	}
	if n := len(res["points"].([]any)); n != 3 {
		t.Fatalf("%d points", n)
	}

	// The job must also be visible in the listing and via Await.
	_, listing := getJSON(t, ts.URL+"/v1/jobs")
	if n := len(listing["jobs"].([]any)); n != 1 {
		t.Fatalf("listing has %d jobs", n)
	}
	if j, ok := srv.Store().Await(id); !ok || j.Status != JobDone {
		t.Fatalf("Await: %v %v", j.Status, ok)
	}

	// Pruning drops the finished job and its retained result.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs", nil)
	if err != nil {
		t.Fatal(err)
	}
	presp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var pruned map[string]int
	if err := json.NewDecoder(presp.Body).Decode(&pruned); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if pruned["pruned"] != 1 {
		t.Fatalf("pruned %d jobs", pruned["pruned"])
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/jobs/"+id); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pruned job still visible: %d", resp.StatusCode)
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := getJSON(t, ts.URL+"/v1/jobs/job-999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestSuiteEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/suite",
		map[string]any{"benchmarks": []string{"fpd"}, "ratios": []float64{1.4, 2.0}, "wait": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, body)
	}
	rows := body["result"].(map[string]any)["rows"].([]any)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	first := rows[0].(map[string]any)
	if first["circuit"] != "fpd" || first["ratio"].(float64) != 1.4 {
		t.Fatalf("row %v", first)
	}
}
