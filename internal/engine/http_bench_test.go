package engine

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/iscas"
)

// TestOptimizeBenchEndpoint drives an inline netlist through POST
// /v1/optimize end-to-end.
func TestOptimizeBenchEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/optimize",
		map[string]any{"bench": iscas.C17Bench(), "ratio": 1.4, "wait": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, body)
	}
	res := body["result"].(map[string]any)
	if res["circuit"] != "c17" {
		t.Fatalf("result circuit %v", res["circuit"])
	}
	if res["feasible"] != true || res["delay"].(float64) > res["tc"].(float64) {
		t.Fatalf("c17 not optimized: %v", res)
	}
}

// TestBenchEndpointValidation pins the 400/422 mapping of the
// ingestion pass and the exactly-one-of-circuit-and-bench rule.
func TestBenchEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name   string
		body   map[string]any
		status int
		want   string
	}{
		{"neither source", map[string]any{}, http.StatusBadRequest, "circuit or bench"},
		{"both sources", map[string]any{"circuit": "c17", "bench": iscas.C17Bench()},
			http.StatusBadRequest, "mutually exclusive"},
		{"malformed bench is 400", map[string]any{"bench": "INPUT(a\n"},
			http.StatusBadRequest, "malformed"},
		{"cyclic bench is 422", map[string]any{"bench": "INPUT(a)\nx = NAND(a, x)\nOUTPUT(x)\n"},
			http.StatusUnprocessableEntity, "cycle"},
		{"unsupported gate is 422", map[string]any{"bench": "INPUT(a)\nx = MUX(a, a)\nOUTPUT(x)\n"},
			http.StatusUnprocessableEntity, "unsupported"},
		{"duplicate output is 422", map[string]any{"bench": "INPUT(a)\ny = NOT(a)\nOUTPUT(y)\nOUTPUT(y)\n"},
			http.StatusUnprocessableEntity, "duplicate OUTPUT"},
	}
	for _, endpoint := range []string{"/v1/optimize", "/v1/sweep"} {
		for _, tc := range cases {
			t.Run(endpoint+"/"+tc.name, func(t *testing.T) {
				resp, body := postJSON(t, ts.URL+endpoint, tc.body)
				if resp.StatusCode != tc.status {
					t.Fatalf("status %d, want %d: %v", resp.StatusCode, tc.status, body)
				}
				if msg, _ := body["error"].(string); !strings.Contains(msg, tc.want) {
					t.Fatalf("error %q does not mention %q", msg, tc.want)
				}
			})
		}
	}
	// Suite: inline entries are validated synchronously too.
	resp, body := postJSON(t, ts.URL+"/v1/suite",
		map[string]any{"benches": []string{"INPUT(a)\nx = NAND(a, x)\nOUTPUT(x)\n"}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("suite with cyclic inline entry: status %d %v", resp.StatusCode, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "benches[0]") {
		t.Fatalf("suite error %q does not locate the entry", msg)
	}
}

// TestSuiteMixedEntries runs a named benchmark and an inline netlist
// in one suite job.
func TestSuiteMixedEntries(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/suite", map[string]any{
		"benchmarks": []string{"fpd"},
		"benches":    []string{iscas.C17Bench()},
		"ratios":     []float64{1.5},
		"wait":       true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, body)
	}
	rows := body["result"].(map[string]any)["rows"].([]any)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	first, second := rows[0].(map[string]any), rows[1].(map[string]any)
	if first["circuit"] != "fpd" || second["circuit"] != "c17" {
		t.Fatalf("rows %v / %v", first["circuit"], second["circuit"])
	}
}

// TestWriteJSONEncodeFailure is the truncated-200 regression test: a
// response value the encoder rejects (a non-finite float, as leaks
// from an infeasible sizing result) must answer a complete 500 JSON
// error body, not a truncated body under an already-committed 200.
func TestWriteJSONEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, map[string]any{"a": math.Inf(-1)})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	got := rec.Body.String()
	if !strings.Contains(got, `"error"`) || !strings.Contains(got, "encoding response") {
		t.Fatalf("body %q is not a JSON error", got)
	}
	if !strings.HasSuffix(strings.TrimRight(got, "\n"), "}") {
		t.Fatalf("body %q looks truncated", got)
	}

	// The happy path still writes the requested status and full body.
	rec = httptest.NewRecorder()
	writeJSON(rec, http.StatusTeapot, map[string]string{"ok": "yes"})
	if rec.Code != http.StatusTeapot || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Fatalf("happy path: %d %q", rec.Code, rec.Body.String())
	}
}

// TestSubmitDuringShutdown is the shutdown-race regression at the HTTP
// layer: once the server's store is closed, POSTs answer 503 instead
// of silently launching jobs after shutdown.
func TestSubmitDuringShutdown(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Shutdown()
	resp, body := postJSON(t, ts.URL+"/v1/optimize",
		map[string]any{"circuit": "fpd", "ratio": 1.5})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %v", resp.StatusCode, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "closed") {
		t.Fatalf("error %q", msg)
	}
	if n := srv.Store().Len(); n != 0 {
		t.Fatalf("store registered %d jobs after shutdown", n)
	}
}

// TestHealthJobCount pins /healthz's job counter: it must reflect the
// store's registered jobs (served by the O(1) Store.Len, not a full
// List snapshot per liveness probe).
func TestHealthJobCount(t *testing.T) {
	srv, ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/optimize",
		map[string]any{"circuit": "fpd", "ratio": 1.5, "wait": true})
	_, body := getJSON(t, ts.URL+"/healthz")
	if n := int(body["jobs"].(float64)); n != 1 || srv.Store().Len() != 1 {
		t.Fatalf("healthz jobs %d, store Len %d, want 1", n, srv.Store().Len())
	}
}
