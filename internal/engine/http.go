// HTTP layer: a standard-library JSON service over the engine and the
// async job store. cmd/popsd mounts it; tests drive it with httptest.
//
//	GET  /healthz            liveness, build info, pool stats
//	GET  /metrics            engine instruments, Prometheus text format
//	POST /v1/optimize        one (circuit, Tc) job
//	POST /v1/sweep           Tc-grid trade-off curve job
//	POST /v1/suite           benchmark-suite batch job
//	GET  /v1/jobs            all jobs, submission order
//	GET  /v1/jobs/{id}       one job with result when done
//	DELETE /v1/jobs          prune finished jobs (retention valve)
//
// POST bodies are JSON. By default a POST enqueues the job and answers
// 202 Accepted with the job snapshot for polling; {"wait": true} runs
// it synchronously and answers 200 with the finished job.
//
// Every response carries an X-Request-ID — the client's own (when it
// sent a well-formed one) or a freshly generated ID. The ID rides the
// request context into submitted jobs, appears in their records, and
// tags the structured access-log line, so one grep joins a client
// call to its job and its log output.
package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/netlist"
	"repro/internal/obs"
)

// Server is the popsd HTTP service.
type Server struct {
	engine  *Engine
	store   *Store
	mux     *http.ServeMux
	log     *slog.Logger
	started time.Time
}

// ServerOption customizes a Server at construction.
type ServerOption func(*Server)

// WithLogger installs the structured logger behind the access and job
// logs. The default discards; popsd passes its slog root here.
func WithLogger(l *slog.Logger) ServerOption {
	return func(s *Server) {
		if l != nil {
			s.log = l
		}
	}
}

// NewServer wires a service over an engine. Jobs submitted through it
// run under ctx; cancel it (or Close the returned server's store via
// Shutdown) to stop background work.
func NewServer(ctx context.Context, e *Engine, opts ...ServerOption) *Server {
	s := &Server{
		engine:  e,
		store:   NewStore(ctx),
		mux:     http.NewServeMux(),
		log:     obs.Discard(),
		started: time.Now(),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.store.metrics = e.metrics
	s.store.log = s.log
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/suite", s.handleSuite)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs", s.handlePrune)
	return s
}

// ServeHTTP implements http.Handler. It is the observability
// middleware of the service: it adopts the client's X-Request-ID (or
// assigns one), threads it through the request context, echoes it on
// the response, and emits the per-request metrics plus one structured
// access-log line.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rid := r.Header.Get("X-Request-ID")
	if !obs.ValidRequestID(rid) {
		rid = obs.NewRequestID()
	}
	r = r.WithContext(obs.WithRequestID(r.Context(), rid))
	w.Header().Set("X-Request-ID", rid)
	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r)
	status := sw.status
	if status == 0 {
		// The handler never wrote: the net/http machinery answers 200 on
		// return.
		status = http.StatusOK
	}
	s.engine.metrics.httpServed(status, start)
	s.log.Info("request",
		"method", r.Method, "path", r.URL.Path, "status", status,
		"bytes", sw.bytes, "duration", time.Since(start), "request_id", rid)
}

// statusWriter records the status code and body bytes of a response
// for the access log and the HTTP metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// Store exposes the job store (graceful shutdown, tests).
func (s *Server) Store() *Store { return s.store }

// Shutdown stops accepting results and drains in-flight jobs.
func (s *Server) Shutdown() { s.store.Close() }

// buildInfo resolves the module version and VCS revision once per
// process — the binary's build metadata never changes.
var buildInfo = sync.OnceValues(func() (version, revision string) {
	version, revision = "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			revision = kv.Value
		}
	}
	return
})

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	version, revision := buildInfo()
	// Store.Len, not len(Store.List()): a liveness probe must not
	// snapshot every retained job (results included) per poll.
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"version":       version,
		"revision":      revision,
		"goVersion":     runtime.Version(),
		"uptimeSeconds": time.Since(s.started).Seconds(),
		"workers":       s.engine.Workers(),
		"gomaxprocs":    runtime.GOMAXPROCS(0),
		"process":       s.engine.Model().Proc.Name,
		"jobs":          s.store.Len(),
	})
}

// handleMetrics renders every engine instrument in the Prometheus text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.engine.metrics.reg.WritePrometheus(w); err != nil {
		// The status line is already committed; nothing to answer.
		s.log.Warn("metrics exposition failed", "error", err.Error())
	}
}

// resolveBench validates a POST body's circuit reference — exactly one
// of a suite name or an inline .bench source — and pre-parses the
// inline source so the job never re-parses it. Errors are answered on
// w directly: 400 for a missing/ambiguous reference or malformed
// source text, 422 for well-formed text that is not a valid netlist
// (unsupported gates, cycles, duplicate definitions, over-limit
// sizes). The bool reports whether the request survived.
func resolveBench(w http.ResponseWriter, circuit, bench string) (*ParsedBench, bool) {
	if err := validateSourceRef(circuit, bench); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return nil, false
	}
	if bench == "" {
		return nil, true
	}
	pb, err := parseBenchService(bench)
	if err != nil {
		httpError(w, benchStatus(err), err)
		return nil, false
	}
	return pb, true
}

// benchStatus maps a rejected .bench source to its HTTP status:
// malformed text is the client's syntax problem (400), while
// well-formed text describing an invalid or over-limit netlist is a
// semantic one (422).
func benchStatus(err error) int {
	var be *netlist.BenchError
	if errors.As(err, &be) && be.Kind == netlist.BenchSyntax {
		return http.StatusBadRequest
	}
	return http.StatusUnprocessableEntity
}

// optimizeBody is the POST /v1/optimize request payload.
type optimizeBody struct {
	OptimizeRequest
	Wait bool `json:"wait,omitempty"`
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var body optimizeBody
	if !readJSON(w, r, &body) {
		return
	}
	pb, ok := resolveBench(w, body.Circuit, body.Bench)
	if !ok {
		return
	}
	body.parsed = pb
	label := body.Circuit
	if pb != nil {
		label = pb.Name
	}
	s.dispatch(w, r, JobOptimize, body.Wait, label, body.OptimizeRequest, func(ctx context.Context) (any, error) {
		res, err := s.engine.Optimize(ctx, body.OptimizeRequest)
		if err != nil {
			return nil, err
		}
		return WireOptimize(res), nil
	})
}

// sweepBody is the POST /v1/sweep request payload.
type sweepBody struct {
	SweepRequest
	Wait bool `json:"wait,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var body sweepBody
	if !readJSON(w, r, &body) {
		return
	}
	pb, ok := resolveBench(w, body.Circuit, body.Bench)
	if !ok {
		return
	}
	body.parsed = pb
	label := body.Circuit
	if pb != nil {
		label = pb.Name
	}
	s.dispatch(w, r, JobSweep, body.Wait, label, body.SweepRequest, func(ctx context.Context) (any, error) {
		return s.engine.Sweep(ctx, body.SweepRequest)
	})
}

// suiteBody is the POST /v1/suite request payload.
type suiteBody struct {
	SuiteRequest
	Wait bool `json:"wait,omitempty"`
}

func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) {
	var body suiteBody
	if !readJSON(w, r, &body) {
		return
	}
	// Inline entries are validated synchronously: a bad netlist answers
	// 400/422 here instead of surfacing as an async job failure.
	if len(body.Benches) > 0 {
		body.parsed = make([]*ParsedBench, len(body.Benches))
		for i, src := range body.Benches {
			pb, err := parseBenchService(src)
			if err != nil {
				httpError(w, benchStatus(err), fmt.Errorf("benches[%d]: %w", i, err))
				return
			}
			body.parsed[i] = pb
		}
	}
	label := fmt.Sprintf("suite(%d entries)", len(body.Benchmarks)+len(body.Benches))
	s.dispatch(w, r, JobSuite, body.Wait, label, body.SuiteRequest, func(ctx context.Context) (any, error) {
		return s.engine.Suite(ctx, body.SuiteRequest)
	})
}

// dispatch submits the job under the request's trace ID and answers
// either the finished job (wait) or a 202 snapshot for polling.
// circuit labels the job's subject in the submit log line — a suite
// benchmark name, an inline netlist's parsed name (fingerprint-derived
// when anonymous), or an entry count for suites. req is the validated
// request value journaled for crash replay (when the server has a
// journal); it must re-validate and re-run identically when
// unmarshalled by Server.Replay. A store that began shutting down
// rejects the submission; that is the daemon draining, not a client
// error, so it answers 503.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, kind JobKind, wait bool, circuit string, req any, run func(ctx context.Context) (any, error)) {
	rid := obs.RequestID(r.Context())
	var payload []byte
	if s.store.journal != nil {
		var err error
		if payload, err = acceptedRecord(kind, rid, req); err != nil {
			// Requests arrive as JSON, so re-marshalling one cannot fail;
			// degrade to an unjournaled job rather than rejecting it.
			s.log.Warn("journal payload encoding failed; job will not be replayable",
				"kind", string(kind), "request_id", rid, "error", err.Error())
			payload = nil
		}
	}
	j, err := s.store.submit(kind, rid, payload, run)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	s.log.Info("job submitted",
		"job", j.ID, "kind", string(kind), "circuit", circuit,
		"wait", wait, "request_id", rid)
	if !wait {
		writeJSON(w, http.StatusAccepted, j)
		return
	}
	done, ok := s.store.Await(j.ID)
	if !ok {
		// A concurrent DELETE /v1/jobs pruned the job between finish
		// and pickup; the result is gone.
		httpError(w, http.StatusGone, errors.New("job was pruned before its result was read"))
		return
	}
	status := http.StatusOK
	if done.Status == JobFailed {
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, done)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.store.List()})
}

// handlePrune drops all finished jobs and their retained results —
// the retention valve for long-running daemons.
func (s *Server) handlePrune(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]int{"pruned": s.store.Prune(time.Time{})})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// OptimizeWire is the JSON shape of an optimize result: the outcome
// summary without the netlist back-references of core.CircuitOutcome
// (whose Path/Node graphs are cyclic and not marshalable).
type OptimizeWire struct {
	Circuit     string     `json:"circuit"`
	Tc          float64    `json:"tc"`
	Tmin        float64    `json:"tmin"`
	Tmax        float64    `json:"tmax"`
	Gates       int        `json:"gates"`
	Delay       float64    `json:"delay"`
	Area        float64    `json:"area"`
	Feasible    bool       `json:"feasible"`
	Rounds      int        `json:"rounds"`
	Buffers     int        `json:"buffers"`
	NorRewrites int        `json:"norRewrites"`
	Paths       []PathWire `json:"paths,omitempty"`
	// Leakage reports the multi-Vt pass of a leakage-aware run.
	Leakage *LeakageWire `json:"leakage,omitempty"`
}

// LeakageWire is the JSON shape of a multi-Vt assignment result.
type LeakageWire struct {
	Promoted       int            `json:"promoted"`
	ByClass        map[string]int `json:"byClass"`
	DynamicUW      float64        `json:"dynamicUW"`
	StaticBeforeUW float64        `json:"staticBeforeUW"`
	StaticAfterUW  float64        `json:"staticAfterUW"`
	TotalBeforeUW  float64        `json:"totalBeforeUW"`
	TotalAfterUW   float64        `json:"totalAfterUW"`
	SavingPct      float64        `json:"savingPct"`
}

// PathWire is one protocol round in an OptimizeWire.
type PathWire struct {
	Domain   string  `json:"domain"`
	Method   string  `json:"method"`
	Tmin     float64 `json:"tmin"`
	Tmax     float64 `json:"tmax"`
	Tc       float64 `json:"tc"`
	Delay    float64 `json:"delay"`
	Area     float64 `json:"area"`
	Buffers  int     `json:"buffers"`
	Feasible bool    `json:"feasible"`
	Stages   int     `json:"stages"`
}

// WireOptimize flattens an OptimizeResult for JSON transport. It is
// exported for the rest of the module — the entry-point equivalence
// tests reproduce the service's wire shape byte-for-byte from a
// library-level result through it.
func WireOptimize(r *OptimizeResult) OptimizeWire {
	o := OptimizeWire{
		Circuit:     r.Circuit,
		Tc:          r.Tc,
		Tmin:        r.Tmin,
		Tmax:        r.Tmax,
		Gates:       r.Gates,
		Delay:       r.Outcome.Delay,
		Area:        r.Outcome.Area,
		Feasible:    r.Outcome.Feasible,
		Rounds:      r.Outcome.Rounds,
		Buffers:     r.Outcome.Buffers,
		NorRewrites: r.Outcome.NorRewrites,
	}
	if lr := r.Outcome.Leakage; lr != nil {
		w := &LeakageWire{
			Promoted:       lr.Promoted,
			ByClass:        make(map[string]int, len(lr.ByClass)),
			DynamicUW:      lr.DynamicUW,
			StaticBeforeUW: lr.StaticBeforeUW,
			StaticAfterUW:  lr.StaticAfterUW,
			TotalBeforeUW:  lr.TotalBeforeUW,
			TotalAfterUW:   lr.TotalAfterUW,
			SavingPct:      lr.SavingPct,
		}
		for cls, n := range lr.ByClass {
			w.ByClass[cls.String()] = n
		}
		o.Leakage = w
	}
	for _, po := range r.Outcome.PathOutcomes {
		o.Paths = append(o.Paths, PathWire{
			Domain:   po.Domain.String(),
			Method:   po.Method,
			Tmin:     po.Tmin,
			Tmax:     po.Tmax,
			Tc:       po.Tc,
			Delay:    po.Delay,
			Area:     po.Area,
			Buffers:  po.Buffers,
			Feasible: po.Feasible,
			Stages:   po.Path.Len(),
		})
	}
	return o
}

// maxBodyBytes bounds POST request bodies (1 MiB — far above any
// legitimate request of this API).
const maxBodyBytes = 1 << 20

// readJSON decodes a bounded request body: malformed JSON answers 400,
// a body over maxBodyBytes answers 413 with a clear message instead of
// surfacing the truncation as a misleading syntax error, and trailing
// data after the JSON value answers 400 — the body must be exactly one
// value, so `{"circuit":"c17"}{"x":1}` is rejected rather than having
// its tail silently ignored.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", tooLarge.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, err)
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		// The tail can also be where the body blows the size cap (a
		// valid JSON value followed by megabytes of padding): that is
		// the documented 413, not trailing-data 400.
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds the %d-byte limit", tooLarge.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest,
			errors.New("request body contains data after the JSON value"))
		return false
	}
	return true
}

// writeJSON marshals v to a buffer first and only then touches the
// ResponseWriter. Encoding straight into the wire would commit the
// status line before a failure could surface, so an unmarshalable
// value — a non-finite float leaking out of an infeasible sizing
// result, say — would yield a truncated body under a 200. With the
// buffer, encoding failures answer a clean 500 with a JSON error body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		status = http.StatusInternalServerError
		buf, _ = json.Marshal(map[string]string{
			"error": fmt.Sprintf("encoding response: %v", err),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(buf, '\n'))
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
