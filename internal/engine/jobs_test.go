package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStoreLen pins the O(1) job counter against the listing.
func TestStoreLen(t *testing.T) {
	s := NewStore(context.Background())
	defer s.Close()
	if s.Len() != 0 {
		t.Fatalf("empty store Len %d", s.Len())
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(JobOptimize, "", func(ctx context.Context) (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	s.Wait()
	if s.Len() != 3 || len(s.List()) != 3 {
		t.Fatalf("Len %d, List %d, want 3", s.Len(), len(s.List()))
	}
	s.Prune(time.Time{})
	if s.Len() != 0 {
		t.Fatalf("Len %d after prune", s.Len())
	}
}

// TestSubmitAfterClose pins the shutdown contract: a Submit after
// Close launches nothing and returns a rejected snapshot.
func TestSubmitAfterClose(t *testing.T) {
	s := NewStore(context.Background())
	s.Close()
	ran := false
	j, err := s.Submit(JobOptimize, "", func(ctx context.Context) (any, error) {
		ran = true
		return nil, nil
	})
	if !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrStoreClosed", err)
	}
	if j.ID != "" || j.Status != JobFailed || j.Error != ErrStoreClosed.Error() {
		t.Fatalf("rejected snapshot = %+v", j)
	}
	s.Wait() // must not hang, and must not have launched anything
	if ran {
		t.Fatal("job ran after Close")
	}
	if s.Len() != 0 {
		t.Fatalf("rejected job was registered (Len %d)", s.Len())
	}
}

// TestSubmitCloseRace hammers Submit from many goroutines while Close
// runs — under -race this is the regression test for the historical
// WaitGroup Add-after-Wait misuse, and it asserts the liveness
// contract: no job starts after Close has returned.
func TestSubmitCloseRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		s := NewStore(context.Background())
		var started, closed atomic.Int64
		var lateStart atomic.Bool

		const submitters = 8
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					j, err := s.Submit(JobOptimize, "", func(ctx context.Context) (any, error) {
						if closed.Load() != 0 {
							lateStart.Store(true)
						}
						started.Add(1)
						return nil, ctx.Err()
					})
					if err != nil {
						// Store closed underneath us: rejected, done.
						if !errors.Is(err, ErrStoreClosed) || j.Status != JobFailed {
							t.Errorf("rejection = %v / %+v", err, j)
						}
						return
					}
				}
			}()
		}
		// Let the submitters get going, then shut down concurrently.
		time.Sleep(time.Duration(round%4) * 100 * time.Microsecond)
		s.Close()
		closed.Store(1)
		close(stop)
		wg.Wait()
		if lateStart.Load() {
			t.Fatal("a job started after Close returned")
		}
		// Every accepted job must have fully finished by the time Close
		// returned (it drains the WaitGroup).
		for _, j := range s.List() {
			if j.Status != JobDone && j.Status != JobFailed {
				t.Fatalf("job %s still %s after Close", j.ID, j.Status)
			}
		}
		if int64(s.Len()) != started.Load() {
			t.Fatalf("store holds %d jobs but %d ran", s.Len(), started.Load())
		}
	}
}
