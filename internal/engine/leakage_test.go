package engine

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/iscas"
	"repro/internal/tech"
)

var updateLeakageBaseline = flag.Bool("update-leakage-baseline", false,
	"rewrite BENCH_leakage.json at the repository root")

// leakageNames returns the regression set: the full suite by default,
// the three fast benchmarks with -short.
func leakageNames() []string {
	if testing.Short() {
		return []string{"fpd", "c432", "c880"}
	}
	var names []string
	for _, s := range iscas.Suite() {
		names = append(names, s.Name)
	}
	return names
}

// TestLeakageSuiteRegression is the acceptance contract of the
// multi-Vt subsystem: for every suite benchmark at Tc = 1.5·Tmin, the
// leakage-aware run must (a) solve the exact same sizing problem as
// the dynamic-only optimizer (same Tc, same area, same feasibility),
// (b) never violate the delay constraint after Vt assignment, and
// (c) strictly reduce total (dynamic + leakage) power — the pass
// starts from the dynamic-only result, so TotalBeforeUW is that
// optimizer's total power. With -update-leakage-baseline the measured
// numbers are recorded in BENCH_leakage.json at the repository root.
func TestLeakageSuiteRegression(t *testing.T) {
	names := leakageNames()
	const ratio = 1.5
	e := newEngine(t, 4)
	ctx := context.Background()

	dyn, err := e.Suite(ctx, SuiteRequest{Benchmarks: names, Ratios: []float64{ratio}})
	if err != nil {
		t.Fatal(err)
	}
	leak, err := e.Suite(ctx, SuiteRequest{Benchmarks: names, Ratios: []float64{ratio}, Leakage: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn.Rows) != len(leak.Rows) {
		t.Fatalf("row counts diverged: %d vs %d", len(dyn.Rows), len(leak.Rows))
	}

	type baselineRow struct {
		Circuit        string  `json:"circuit"`
		Tc             float64 `json:"tc_ps"`
		Delay          float64 `json:"delay_ps"`
		Promoted       int     `json:"promoted"`
		DynamicUW      float64 `json:"dynamic_uW"`
		LeakBeforeUW   float64 `json:"leakage_before_uW"`
		LeakAfterUW    float64 `json:"leakage_after_uW"`
		TotalBeforeUW  float64 `json:"total_before_uW"`
		TotalAfterUW   float64 `json:"total_after_uW"`
		LeakSavingPct  float64 `json:"leakage_saving_pct"`
		TotalSavingPct float64 `json:"total_saving_pct"`
	}
	var rows []baselineRow

	for i, d := range dyn.Rows {
		l := leak.Rows[i]
		if d.Leakage != nil {
			t.Fatalf("%s: dynamic-only row carries a leakage block", d.Circuit)
		}
		if l.Leakage == nil {
			t.Fatalf("%s: leakage-aware row carries no leakage block", l.Circuit)
		}
		lp := l.Leakage
		// (a) Same sizing problem, same solution: the Vt pass runs
		// after sizing and must not perturb it.
		if l.Tc != d.Tc || l.Tmin != d.Tmin || l.Area != d.Area {
			t.Errorf("%s: leakage run diverged from dynamic sizing: tc %v/%v tmin %v/%v area %v/%v",
				d.Circuit, l.Tc, d.Tc, l.Tmin, d.Tmin, l.Area, d.Area)
		}
		if !d.Feasible || !l.Feasible {
			t.Errorf("%s: infeasible at ratio %.1f (dyn %v, leak %v)", d.Circuit, ratio, d.Feasible, l.Feasible)
		}
		// (b) The Vt-aware delay never violates Tc.
		if l.Delay > l.Tc {
			t.Errorf("%s: leakage-aware delay %v above tc %v", d.Circuit, l.Delay, l.Tc)
		}
		// (c) Strict total-power reduction vs. the dynamic-only result.
		if lp.Promoted == 0 {
			t.Errorf("%s: no gate promoted", d.Circuit)
		}
		if lp.TotalUW >= lp.TotalBeforeUW {
			t.Errorf("%s: total power not reduced: %v -> %v", d.Circuit, lp.TotalBeforeUW, lp.TotalUW)
		}
		leakBefore := lp.TotalBeforeUW - lp.DynamicUW
		rows = append(rows, baselineRow{
			Circuit:        l.Circuit,
			Tc:             l.Tc,
			Delay:          l.Delay,
			Promoted:       lp.Promoted,
			DynamicUW:      lp.DynamicUW,
			LeakBeforeUW:   leakBefore,
			LeakAfterUW:    lp.LeakageUW,
			TotalBeforeUW:  lp.TotalBeforeUW,
			TotalAfterUW:   lp.TotalUW,
			LeakSavingPct:  (leakBefore - lp.LeakageUW) / leakBefore * 100,
			TotalSavingPct: (lp.TotalBeforeUW - lp.TotalUW) / lp.TotalBeforeUW * 100,
		})
	}

	if *updateLeakageBaseline {
		if testing.Short() {
			t.Fatal("refusing to record a -short baseline")
		}
		doc := map[string]any{
			"description": "Leakage-aware optimization baseline (TestLeakageSuiteRegression): every suite benchmark at Tc = 1.5·Tmin, dynamic-only vs leakage-aware engine runs. The Vt pass runs after sizing, so total_before_uW is exactly the dynamic-only optimizer's total power; the delta is the multi-Vt gain at identical delay and area. Deterministic: regenerate with the command below and the file must not change.",
			"command":     "go test ./internal/engine -run TestLeakageSuiteRegression -update-leakage-baseline",
			"ratio":       ratio,
			"results":     rows,
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("../../BENCH_leakage.json", append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// dumpSuite renders suite rows canonically (%v floats round-trip bits).
func dumpSuite(res *SuiteResult) string {
	var b strings.Builder
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%s@%v tc=%v tmin=%v delay=%v area=%v feasible=%v rounds=%d buffers=%d leakage=%+v\n",
			r.Circuit, r.Ratio, r.Tc, r.Tmin, r.Delay, r.Area, r.Feasible, r.Rounds, r.Buffers, r.Leakage)
	}
	return b.String()
}

// TestLeakageDeterministicAcrossWorkers is the determinism contract of
// the leakage-aware engine: byte-identical suite results regardless of
// worker count (fresh engines, so nothing is served from a shared
// memo). Run under -race in CI.
func TestLeakageDeterministicAcrossWorkers(t *testing.T) {
	names := []string{"fpd", "c432", "c880"}
	req := SuiteRequest{Benchmarks: names, Ratios: []float64{1.2, 1.5}, Leakage: true}
	var dumps []string
	for _, workers := range []int{1, 4} {
		e := newEngine(t, workers)
		res, err := e.Suite(context.Background(), req)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		dumps = append(dumps, dumpSuite(res))
	}
	if dumps[0] != dumps[1] {
		t.Errorf("leakage suite diverged across worker counts\n--- workers=1\n%s--- workers=4\n%s", dumps[0], dumps[1])
	}
}

// TestLeakageMatchesSequential pins the engine's leakage path to the
// sequential protocol: OptimizeWithLeakage on a fresh circuit must be
// byte-identical to the engine result, including the Vt census.
func TestLeakageMatchesSequential(t *testing.T) {
	const name = "c432"
	const ratio = 1.4
	e := newEngine(t, 4)
	res, err := e.Optimize(context.Background(), OptimizeRequest{Circuit: name, Ratio: ratio, Leakage: true})
	if err != nil {
		t.Fatal(err)
	}
	seq, tc := sequentialOutcome(t, name, ratio) // dynamic-only reference
	if res.Tc != tc {
		t.Fatalf("tc %v vs sequential %v", res.Tc, tc)
	}
	lr := res.Outcome.Leakage
	if lr == nil {
		t.Fatal("engine leakage run carries no leakage result")
	}
	// The sizing trajectory must be the dynamic-only one.
	if len(res.Outcome.PathOutcomes) != len(seq.PathOutcomes) || res.Outcome.Area != seq.Area {
		t.Fatalf("leakage run perturbed the sizing protocol: %d rounds area %v vs %d rounds area %v",
			len(res.Outcome.PathOutcomes), res.Outcome.Area, len(seq.PathOutcomes), seq.Area)
	}
	// And the final delay is the Vt-aware one, within the constraint.
	if res.Outcome.Delay != lr.Delay || lr.Delay > tc {
		t.Fatalf("delay bookkeeping broken: outcome %v leakage %v tc %v", res.Outcome.Delay, lr.Delay, tc)
	}
	if lr.ByClass[tech.HVT] == 0 {
		t.Fatal("no HVT gate after assignment")
	}
}

// TestResultMemoization checks the (circuit, Tc, policy)-keyed result
// memo: an identical resubmission returns the completed result object,
// and the leakage flag is part of the key.
func TestResultMemoization(t *testing.T) {
	e := newEngine(t, 2)
	ctx := context.Background()
	req := OptimizeRequest{Circuit: "fpd", Ratio: 1.5}
	a, err := e.Optimize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Optimize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outcome != b.Outcome {
		t.Fatal("identical resubmission was recomputed instead of served from the memo")
	}
	leak, err := e.Optimize(ctx, OptimizeRequest{Circuit: "fpd", Ratio: 1.5, Leakage: true})
	if err != nil {
		t.Fatal(err)
	}
	if leak.Outcome == a.Outcome {
		t.Fatal("leakage flag not part of the memo key")
	}
	if leak.Outcome.Leakage == nil || a.Outcome.Leakage != nil {
		t.Fatal("leakage results attached to the wrong runs")
	}
}

// TestResultMemoNotPoisonedByErrors checks that a failed computation
// (e.g. a cancelled context) is not latched: the next request with the
// same key recomputes instead of replaying the stale error.
func TestResultMemoNotPoisonedByErrors(t *testing.T) {
	ca := NewCache()
	want := &OptimizeResult{Circuit: "x"}
	if _, err := ca.Result(context.Background(), "k", func() (*OptimizeResult, error) {
		return nil, context.Canceled
	}); err == nil {
		t.Fatal("error not propagated")
	}
	got, err := ca.Result(context.Background(), "k", func() (*OptimizeResult, error) { return want, nil })
	if err != nil || got != want {
		t.Fatalf("memo poisoned by the failed round: %v, %v", got, err)
	}
	// And the success is latched: a third call must not recompute.
	again, err := ca.Result(context.Background(), "k", func() (*OptimizeResult, error) {
		t.Fatal("latched key recomputed")
		return nil, nil
	})
	if err != nil || again != want {
		t.Fatalf("latch lost: %v, %v", again, err)
	}
}

// TestResultMemoEviction checks the FIFO bound: the memo never grows
// past MaxResultEntries and old keys are recomputed after eviction.
func TestResultMemoEviction(t *testing.T) {
	ca := NewCache()
	mk := func(i int) taskKey { return taskKey(fmt.Sprintf("key-%d", i)) }
	for i := 0; i < MaxResultEntries+10; i++ {
		if _, err := ca.Result(context.Background(), mk(i), func() (*OptimizeResult, error) {
			return &OptimizeResult{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	ca.mu.Lock()
	n := len(ca.results)
	ca.mu.Unlock()
	if n > MaxResultEntries {
		t.Fatalf("memo grew to %d entries past the %d bound", n, MaxResultEntries)
	}
	recomputed := false
	if _, err := ca.Result(context.Background(), mk(0), func() (*OptimizeResult, error) {
		recomputed = true
		return &OptimizeResult{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatal("evicted key still latched")
	}
}
