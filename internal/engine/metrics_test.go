package engine

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// scrapeProm fetches a /metrics exposition and parses it into the set
// of declared metric families (from # TYPE lines) and the flat sample
// map (name{labels} → value, via the registry's own snapshot keying
// convention for cross-checks).
func scrapeProm(t *testing.T, url string) (families map[string]string, body string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	families = make(map[string]string)
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		b.WriteString(line)
		b.WriteByte('\n')
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			families[fields[0]] = fields[1]
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return families, b.String()
}

// TestMetricsEndpointExposition drives one real optimize through the
// HTTP layer and checks the exposition: at least 12 distinct metric
// families, every expected engine family present, and counters that
// only move up between scrapes.
func TestMetricsEndpointExposition(t *testing.T) {
	srv, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/optimize",
		map[string]any{"circuit": "fpd", "ratio": 1.5, "wait": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status %d: %v", resp.StatusCode, body)
	}

	families, _ := scrapeProm(t, ts.URL+"/metrics")
	if len(families) < 12 {
		t.Fatalf("exposition declares %d metric families, want >= 12: %v", len(families), families)
	}
	want := map[string]string{
		"pops_http_requests_total":           "counter",
		"pops_http_request_duration_seconds": "histogram",
		"pops_jobs_total":                    "counter",
		"pops_tasks_total":                   "counter",
		"pops_task_duration_seconds":         "histogram",
		"pops_stage_duration_seconds":        "histogram",
		"pops_memo_hits_total":               "counter",
		"pops_memo_misses_total":             "counter",
		"pops_memo_evictions_total":          "counter",
		"pops_queue_depth":                   "gauge",
		"pops_busy_workers":                  "gauge",
		"pops_sizing_rounds_total":           "counter",
		"pops_sta_analyses_total":            "counter",
		"pops_store_hits_total":              "counter",
		"pops_store_misses_total":            "counter",
		"pops_store_writes_total":            "counter",
		"pops_store_errors_total":            "counter",
	}
	for name, kind := range want {
		if got, ok := families[name]; !ok {
			t.Errorf("family %s missing from exposition", name)
		} else if got != kind {
			t.Errorf("family %s declared %s, want %s", name, got, kind)
		}
	}

	// Counter monotonicity across scrapes: the snapshot view of every
	// counter may only grow (the scrapes themselves add http requests).
	before := srv.engine.MetricsSnapshot()
	if _, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	after := srv.engine.MetricsSnapshot()
	for key, v := range before {
		if strings.Contains(key, "queue_depth") || strings.Contains(key, "busy_workers") {
			continue // gauges may move either way
		}
		if after[key] < v {
			t.Errorf("counter %s went backwards: %v -> %v", key, v, after[key])
		}
	}
	if k := `pops_http_requests_total{code="2xx"}`; after[k] <= before[k] {
		t.Errorf("2xx counter did not advance across requests: %v -> %v", before[k], after[k])
	}
}

// TestMetricsSnapshotMemoAndRounds submits the same unit twice through
// the engine and checks the instrument arithmetic: one computed task,
// one result-memo miss then one hit, at least one sizing round, and
// histogram count/sum identities in the snapshot.
func TestMetricsSnapshotMemoAndRounds(t *testing.T) {
	e := newEngine(t, 2)
	ctx := context.Background()
	req := OptimizeRequest{Circuit: "fpd", Ratio: 1.5}
	for i := 0; i < 2; i++ {
		if _, err := e.Optimize(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	snap := e.MetricsSnapshot()
	if got := snap["pops_tasks_total"]; got != 1 {
		t.Errorf("tasks computed = %v, want 1 (second submission must hit the memo)", got)
	}
	if got := snap[`pops_memo_misses_total{family="result"}`]; got != 1 {
		t.Errorf("result memo misses = %v, want 1", got)
	}
	if got := snap[`pops_memo_hits_total{family="result"}`]; got != 1 {
		t.Errorf("result memo hits = %v, want 1", got)
	}
	rounds := snap[`pops_sizing_rounds_total{structural="false"}`] +
		snap[`pops_sizing_rounds_total{structural="true"}`]
	if rounds < 1 {
		t.Errorf("sizing rounds = %v, want >= 1", rounds)
	}
	if full := snap[`pops_sta_analyses_total{mode="full"}`]; full < 1 {
		t.Errorf("full STA analyses = %v, want >= 1", full)
	}
	if got := snap["pops_task_duration_seconds_count"]; got != 1 {
		t.Errorf("task duration count = %v, want 1", got)
	}
	if snap["pops_task_duration_seconds_sum"] <= 0 {
		t.Errorf("task duration sum = %v, want > 0", snap["pops_task_duration_seconds_sum"])
	}
	if got := snap[`pops_stage_duration_seconds_count{stage="rounds"}`]; got != 1 {
		t.Errorf("rounds stage count = %v, want 1", got)
	}
}

// TestRequestIDAssignedAndEchoed checks the trace spine: a response
// without a client ID carries a fresh valid one; a well-formed client
// ID is adopted verbatim; a malformed one is replaced.
func TestRequestIDAssignedAndEchoed(t *testing.T) {
	_, ts := newTestServer(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get("X-Request-ID"); !obs.ValidRequestID(rid) {
		t.Fatalf("generated request ID %q is not valid", rid)
	}

	for _, tc := range []struct {
		sent  string
		adopt bool
	}{
		{"client-trace-42", true},
		{"bad id with spaces", false},
		{strings.Repeat("x", 300), false},
	} {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Request-ID", tc.sent)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := resp.Header.Get("X-Request-ID")
		if tc.adopt && got != tc.sent {
			t.Errorf("sent valid ID %q, response echoed %q", tc.sent, got)
		}
		if !tc.adopt && (got == tc.sent || !obs.ValidRequestID(got)) {
			t.Errorf("sent invalid ID %q, response carried %q", tc.sent, got)
		}
	}
}

// TestRequestIDReachesJobRecord submits an async job under a client
// request ID and retrieves the ID from the job record — the
// end-to-end join of response header, job store, and GET /v1/jobs/{id}.
func TestRequestIDReachesJobRecord(t *testing.T) {
	srv, ts := newTestServer(t)
	body := strings.NewReader(`{"circuit":"fpd","ratio":1.5}`)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/optimize", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "trace-e2e-007")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var snap Job
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-ID") != "trace-e2e-007" {
		t.Fatalf("response header ID %q", resp.Header.Get("X-Request-ID"))
	}
	if snap.RequestID != "trace-e2e-007" {
		t.Fatalf("submit snapshot request_id %q", snap.RequestID)
	}
	done, ok := srv.Store().Await(snap.ID)
	if !ok {
		t.Fatalf("job %s vanished", snap.ID)
	}
	if done.RequestID != "trace-e2e-007" {
		t.Fatalf("finished job request_id %q", done.RequestID)
	}
	_, jobBody := getJSON(t, ts.URL+"/v1/jobs/"+snap.ID)
	if jobBody["request_id"] != "trace-e2e-007" {
		t.Fatalf("GET /v1/jobs/{id} request_id %v", jobBody["request_id"])
	}
}

// TestHealthzEnriched table-checks the status document: build info,
// uptime, and pool facts must all be present with sane values.
func TestHealthzEnriched(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, tc := range []struct {
		key string
		ok  func(v any) bool
	}{
		{"status", func(v any) bool { return v == "ok" }},
		{"version", func(v any) bool { s, ok := v.(string); return ok && s != "" }},
		{"revision", func(v any) bool { s, ok := v.(string); return ok && s != "" }},
		{"goVersion", func(v any) bool { s, ok := v.(string); return ok && strings.HasPrefix(s, "go") }},
		{"uptimeSeconds", func(v any) bool { f, ok := v.(float64); return ok && f >= 0 }},
		{"workers", func(v any) bool { f, ok := v.(float64); return ok && f == 2 }},
		{"gomaxprocs", func(v any) bool { f, ok := v.(float64); return ok && f >= 1 }},
		{"process", func(v any) bool { s, ok := v.(string); return ok && s != "" }},
		{"jobs", func(v any) bool { f, ok := v.(float64); return ok && f >= 0 }},
	} {
		v, present := body[tc.key]
		if !present {
			t.Errorf("healthz missing %q: %v", tc.key, body)
			continue
		}
		if !tc.ok(v) {
			t.Errorf("healthz %q = %v (unexpected value)", tc.key, v)
		}
	}
}

// syncWriter is a mutex-guarded log sink: the access-log line is
// written after the response is committed, so the test must not read
// the buffer while the server goroutine may still be appending.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestMetricsServerOptionLogging checks WithLogger end to end: access
// and job lines land on the installed handler with the request ID.
func TestMetricsServerOptionLogging(t *testing.T) {
	logBuf := &syncWriter{}
	logger, err := obs.NewLogger(logBuf, "info", "text")
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, 2)
	srv := NewServer(context.Background(), e, WithLogger(logger))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown()

	body := strings.NewReader(`{"circuit":"fpd","ratio":1.5,"wait":true}`)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/optimize", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "log-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// The access line lands after the response is committed; poll
	// briefly instead of racing the handler goroutine.
	want := []string{
		"msg=request", "path=/v1/optimize", "request_id=log-trace-1",
		"msg=\"job submitted\"", "circuit=fpd", "msg=\"job done\"",
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		logs := logBuf.String()
		missing := ""
		for _, w := range want {
			if !strings.Contains(logs, w) {
				missing = w
				break
			}
		}
		if missing == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("log output missing %q:\n%s", missing, logs)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
