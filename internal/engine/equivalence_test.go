package engine

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/iscas"
	"repro/internal/sizing"
	"repro/internal/sta"
	"repro/internal/tech"
)

// equivRatios are the three Tc points of the determinism contract, one
// per constraint domain: hard (<1.2·Tmin), medium, weak (>2.5·Tmin).
var equivRatios = []float64{1.1, 1.5, 2.6}

// sequentialOutcome reproduces the pre-engine usage exactly: fresh
// benchmark instance, critical path, Tmin from the sizing solver, then
// core.OptimizeCircuit — no engine, no cache, no pool.
func sequentialOutcome(t *testing.T, name string, ratio float64) (*core.CircuitOutcome, float64) {
	t.Helper()
	m := delay.NewModel(tech.CMOS025())
	c, err := loadCircuit(name)
	if err != nil {
		t.Fatal(err)
	}
	pa, _, err := sta.CriticalPath(c, m, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sizing.Tmin(m, pa.Clone(), sizing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tc := ratio * r.Delay
	proto, err := core.NewProtocol(core.Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	out, err := proto.OptimizeCircuit(c, tc)
	if err != nil {
		t.Fatal(err)
	}
	return out, tc
}

// TestEngineMatchesSequential is the determinism contract of the
// subsystem: for every benchmark of the suite at three Tc points, the
// engine running on a multi-worker pool produces a CircuitOutcome
// byte-identical (canonical dump, full float64 precision) to the
// sequential core.OptimizeCircuit path. With -short only the fast
// benchmarks run; the full matrix is the default.
func TestEngineMatchesSequential(t *testing.T) {
	names := []string{}
	for _, s := range iscas.Suite() {
		names = append(names, s.Name)
	}
	if testing.Short() {
		names = []string{"fpd", "c432", "c880"}
	}
	e := newEngine(t, 4)
	for _, name := range names {
		for _, ratio := range equivRatios {
			seq, tc := sequentialOutcome(t, name, ratio)
			res, err := e.Optimize(context.Background(), OptimizeRequest{Circuit: name, Ratio: ratio})
			if err != nil {
				t.Fatalf("%s@%.2f: engine: %v", name, ratio, err)
			}
			if res.Tc != tc {
				t.Fatalf("%s@%.2f: engine tc %v, sequential %v", name, ratio, res.Tc, tc)
			}
			a, b := dumpOutcome(seq), dumpOutcome(res.Outcome)
			if a != b {
				t.Errorf("%s@%.2f: engine outcome diverged from sequential\n--- sequential\n%s--- engine\n%s",
					name, ratio, a, b)
			}
		}
	}
}

// TestSuiteDeterministicAcrossWorkers guards the per-task timing
// sessions of the refactored engine: each (circuit, Tc) task owns one
// incremental session over its own clone, so suite results must stay
// byte-identical across worker counts (fresh engines — nothing served
// from a shared memo). Run under -race in CI.
func TestSuiteDeterministicAcrossWorkers(t *testing.T) {
	names := []string{"fpd", "c432", "c880"}
	req := SuiteRequest{Benchmarks: names, Ratios: []float64{1.2, 1.5, 2.0}}
	var dumps []string
	for _, workers := range []int{1, 2, 4} {
		e := newEngine(t, workers)
		res, err := e.Suite(context.Background(), req)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		dumps = append(dumps, dumpSuite(res))
	}
	for i := 1; i < len(dumps); i++ {
		if dumps[0] != dumps[i] {
			t.Errorf("suite diverged across worker counts\n--- first\n%s--- other\n%s", dumps[0], dumps[i])
		}
	}
}

// TestSweepMatchesSequential checks the sweep job against per-point
// sequential runs on one benchmark: cloning the master and sharing
// cached bounds must not leak state between Tc points.
func TestSweepMatchesSequential(t *testing.T) {
	const name = "c432"
	const points = 5
	e := newEngine(t, 4)
	sw, err := e.Sweep(context.Background(), SweepRequest{Circuit: name, Points: points})
	if err != nil {
		t.Fatal(err)
	}
	m := delay.NewModel(tech.CMOS025())
	proto, err := core.NewProtocol(core.Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range sw.Points {
		c, err := loadCircuit(name)
		if err != nil {
			t.Fatal(err)
		}
		out, err := proto.OptimizeCircuit(c, p.Tc)
		if err != nil {
			t.Fatal(err)
		}
		if out.Delay != p.Delay || out.Area != p.Area || out.Feasible != p.Feasible {
			t.Errorf("point %d (ratio %.2f): sweep %v/%v/%v vs sequential %v/%v/%v",
				i, p.Ratio, p.Delay, p.Area, p.Feasible, out.Delay, out.Area, out.Feasible)
		}
	}
}
