package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/sizing"
	"repro/internal/sta"
	"repro/internal/tech"
)

func newEngine(t testing.TB, workers int) *Engine {
	t.Helper()
	e, err := New(Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewDefaults(t *testing.T) {
	e := newEngine(t, 0)
	if e.Workers() < 1 {
		t.Fatalf("workers = %d", e.Workers())
	}
	if e.Model().Proc.Name != tech.CMOS025().Name {
		t.Fatalf("default process = %q", e.Model().Proc.Name)
	}
}

func TestOptimizeMeetsConstraint(t *testing.T) {
	e := newEngine(t, 2)
	res, err := e.Optimize(context.Background(), OptimizeRequest{Circuit: "fpd", Ratio: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.Feasible {
		t.Fatalf("fpd at 1.5·Tmin infeasible: delay %.1f vs tc %.1f", res.Outcome.Delay, res.Tc)
	}
	if res.Outcome.Delay > res.Tc {
		t.Fatalf("delay %.1f above tc %.1f", res.Outcome.Delay, res.Tc)
	}
	if res.Tmin <= 0 || res.Tmax <= res.Tmin {
		t.Fatalf("bad bounds: Tmin %.1f Tmax %.1f", res.Tmin, res.Tmax)
	}
}

func TestOptimizeUnknownCircuit(t *testing.T) {
	e := newEngine(t, 1)
	if _, err := e.Optimize(context.Background(), OptimizeRequest{Circuit: "nope"}); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestOptimizeCancelled(t *testing.T) {
	e := newEngine(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Optimize(ctx, OptimizeRequest{Circuit: "fpd"}); err == nil {
		t.Fatal("expected cancellation error")
	}
}

func TestSweepCurveShape(t *testing.T) {
	e := newEngine(t, 4)
	sw, err := e.Sweep(context.Background(), SweepRequest{Circuit: "fpd", Points: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 5 {
		t.Fatalf("got %d points", len(sw.Points))
	}
	if sw.Points[0].Ratio != 1.0 || sw.Points[4].Ratio != 2.0 {
		t.Fatalf("grid endpoints %v … %v", sw.Points[0].Ratio, sw.Points[4].Ratio)
	}
	// The trade-off curve must be monotone: looser constraints never
	// cost more area (each point optimizes the same master clone).
	for i := 1; i < len(sw.Points); i++ {
		if sw.Points[i].Tc <= sw.Points[i-1].Tc {
			t.Fatalf("Tc grid not increasing at %d", i)
		}
		if sw.Points[i].Area > sw.Points[i-1].Area*(1+1e-6) {
			t.Fatalf("area increased on looser constraint: %.2f -> %.2f at ratio %.2f",
				sw.Points[i-1].Area, sw.Points[i].Area, sw.Points[i].Ratio)
		}
	}
	// Away from the Tmin wall the constraint must be met.
	for _, p := range sw.Points[1:] {
		if !p.Feasible {
			t.Fatalf("ratio %.2f infeasible (delay %.1f tc %.1f)", p.Ratio, p.Delay, p.Tc)
		}
	}
}

func TestFanOutCaps(t *testing.T) {
	e := newEngine(t, 2)
	if _, err := e.Sweep(context.Background(), SweepRequest{Circuit: "fpd", Points: MaxSweepPoints + 1}); err == nil {
		t.Fatal("oversized sweep accepted")
	}
	ratios := make([]float64, MaxSuiteCells+1)
	for i := range ratios {
		ratios[i] = 1.5
	}
	if _, err := e.Suite(context.Background(), SuiteRequest{Benchmarks: []string{"fpd"}, Ratios: ratios}); err == nil {
		t.Fatal("oversized suite accepted")
	}
}

func TestSuiteRowsOrdered(t *testing.T) {
	e := newEngine(t, 4)
	req := SuiteRequest{Benchmarks: []string{"fpd", "c432"}, Ratios: []float64{1.3, 1.8}}
	res, err := e.Suite(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	want := []struct {
		name  string
		ratio float64
	}{{"fpd", 1.3}, {"fpd", 1.8}, {"c432", 1.3}, {"c432", 1.8}}
	for i, w := range want {
		r := res.Rows[i]
		if r.Circuit != w.name || r.Ratio != w.ratio {
			t.Fatalf("row %d = %s@%.2f, want %s@%.2f", i, r.Circuit, r.Ratio, w.name, w.ratio)
		}
		if !r.Feasible {
			t.Fatalf("row %d infeasible", i)
		}
	}
}

// TestConcurrentJobs hammers one engine from several client goroutines
// so `go test -race` exercises the shared cache, protocol and pool.
func TestConcurrentJobs(t *testing.T) {
	e := newEngine(t, 4)
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for i := 0; i < len(errs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i % 3 {
			case 0:
				_, errs[i] = e.Optimize(context.Background(), OptimizeRequest{Circuit: "fpd", Ratio: 1.4})
			case 1:
				_, errs[i] = e.Sweep(context.Background(), SweepRequest{Circuit: "fpd", Points: 3})
			default:
				_, errs[i] = e.Suite(context.Background(), SuiteRequest{
					Benchmarks: []string{"fpd"}, Ratios: []float64{1.5},
				})
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

func TestCacheBoundsMemoized(t *testing.T) {
	e := newEngine(t, 2)
	c1, err := loadCircuit("fpd")
	if err != nil {
		t.Fatal(err)
	}
	pa1, _, err := sta.CriticalPath(c1, e.Model(), sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tmin1, tmax1, err := e.cache.Bounds(e.Model(), pa1, sizing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A second, independently generated instance of the same benchmark
	// must hit the same cache entry (same signature → same bounds).
	c2, _ := loadCircuit("fpd")
	pa2, _, _ := sta.CriticalPath(c2, e.Model(), sta.Config{})
	if PathSignature(pa1) != PathSignature(pa2) {
		t.Fatal("regenerated benchmark changed its path signature")
	}
	tmin2, tmax2, err := e.cache.Bounds(e.Model(), pa2, sizing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tmin1 != tmin2 || tmax1 != tmax2 {
		t.Fatalf("cache returned different bounds: %v/%v vs %v/%v", tmin1, tmax1, tmin2, tmax2)
	}
	if len(e.cache.bounds) != 1 {
		t.Fatalf("expected one bounds entry, have %d", len(e.cache.bounds))
	}
}

func TestPathSignatureSensitivity(t *testing.T) {
	c, err := loadCircuit("fpd")
	if err != nil {
		t.Fatal(err)
	}
	m := delay.NewModel(tech.CMOS025())
	pa, _, err := sta.CriticalPath(c, m, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sig := PathSignature(pa)
	q := pa.Clone()
	q.Name = "renamed"
	if PathSignature(q) != sig {
		t.Fatal("signature must ignore the path name")
	}
	q.Stages[0].CIn *= 1.5
	if PathSignature(q) == sig {
		t.Fatal("signature must depend on stage sizes")
	}
}

func TestCacheLimitsSharedWithProtocol(t *testing.T) {
	e := newEngine(t, 1)
	lim := e.cache.Limits(e.Model())
	if len(lim) == 0 {
		t.Fatal("empty Flimit table")
	}
	p, err := e.protocol()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%p", p.Limits()) == "" {
		t.Fatal("unreachable")
	}
	for gt, f := range lim {
		if p.Limits()[gt] != f {
			t.Fatalf("protocol limit for %v diverged from cache", gt)
		}
	}
	entries, _ := e.cache.Characterization(e.Model())
	if len(entries) != len(lim) {
		t.Fatalf("entries %d vs limits %d", len(entries), len(lim))
	}
}

// dumpOutcome renders a CircuitOutcome canonically: %v on float64
// prints the shortest decimal that uniquely round-trips the bits, so
// two dumps are byte-identical iff every quantity is bit-identical.
func dumpOutcome(o *core.CircuitOutcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "tc=%v delay=%v area=%v feasible=%v rounds=%d buffers=%d rewrites=%d\n",
		o.Tc, o.Delay, o.Area, o.Feasible, o.Rounds, o.Buffers, o.NorRewrites)
	for _, po := range o.PathOutcomes {
		fmt.Fprintf(&b, "  domain=%v tmin=%v tmax=%v tc=%v method=%s delay=%v area=%v buffers=%d feasible=%v sizes=%v\n",
			po.Domain, po.Tmin, po.Tmax, po.Tc, po.Method, po.Delay, po.Area, po.Buffers, po.Feasible, po.Path.Sizes())
	}
	return b.String()
}
