// Package engine is the concurrent batch-optimization engine of the
// library: it shards protocol work across a bounded worker pool and
// exposes the three batch workloads of an industrial flow —
//
//	Optimize  one circuit at one delay constraint Tc
//	Sweep     one circuit across a Tc grid Tmin·[1.0 … 2.0] (the
//	          area/delay trade-off curve of Fig. 3/6)
//	Suite     a whole benchmark suite at a set of constraint ratios
//
// Jobs fan out over goroutines at path/Tc granularity: every (circuit,
// Tc) unit is an independent task running the sequential Fig. 7
// protocol on its own netlist clone, so results are byte-identical to
// core.OptimizeCircuit regardless of worker count or scheduling (the
// equivalence is enforced by TestEngineMatchesSequential). A shared,
// mutex-guarded characterization cache (Flimit tables and Tmin/Tmax
// bounds keyed by process + path signature) computes repeated
// sub-problems once across all tasks of all jobs.
//
// The Store and Server types layer an async job queue and a
// standard-library JSON HTTP service (cmd/popsd) on top of the same
// pool.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/iscas"
	"repro/internal/leakage"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/sizing"
	"repro/internal/sta"
	"repro/internal/store"
	"repro/internal/tech"
)

// Config parameterizes an Engine.
type Config struct {
	// Workers bounds the number of concurrently running tasks.
	// Zero selects runtime.GOMAXPROCS(0).
	Workers int
	// Process is the technology corner; nil selects tech.CMOS025().
	Process *tech.Process
	// Sizing tunes the inner solvers (forwarded to the protocol).
	Sizing sizing.Options
	// STA configures path extraction (forwarded to the protocol).
	STA sta.Config
	// Parallelism is the engine-wide intra-circuit parallelism policy
	// for the timing and power kernels (see internal/par; 0 = auto).
	// On auto, each task sizes its own degree from idle pool capacity
	// at task start: a saturated pool runs tasks serially inside
	// (inter-task parallelism already owns the cores), a lone task on
	// an idle engine fans its wavefronts across the machine. Results
	// are byte-identical at every degree, so the knob is absent from
	// all memo keys.
	Parallelism int
	// MaxRounds bounds the per-circuit optimize-worst-path iterations
	// (default: the core driver's 12).
	MaxRounds int
	// Leakage is the engine-wide multi-Vt policy applied to requests
	// that set their Leakage flag (power-simulation vectors, promotion
	// ceiling). It is part of the result-memoization key.
	Leakage leakage.Options
	// Results is the durable result store behind the in-memory memo
	// (nil: memory-only, the default — behavior is then unchanged). A
	// memo miss probes it before computing; computed results are
	// written through. The engine never closes it — the caller owns
	// the store's lifecycle (popsd closes its batcher and disk store
	// during shutdown, after the job store drains).
	Results store.Store
}

// Engine is a concurrent batch optimizer. It is safe for concurrent
// use; all jobs share one worker pool and one characterization cache.
type Engine struct {
	cfg     Config
	model   *delay.Model
	muProto sync.Mutex // guards lazy construction of proto
	proto   *core.Protocol
	cache   *Cache
	slots   chan struct{} // bounded worker-pool semaphore
	metrics *Metrics      // engine-owned instrument set (never nil)
}

// New builds an engine. The library is characterized lazily, on the
// first job that needs the Flimit table.
func New(cfg Config) (*Engine, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Process == nil {
		cfg.Process = tech.CMOS025()
	}
	if err := cfg.Process.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:     cfg,
		model:   delay.NewModel(cfg.Process),
		cache:   NewCache(),
		slots:   make(chan struct{}, cfg.Workers),
		metrics: newMetrics(),
	}
	e.cache.metrics = e.metrics
	e.cache.tier = cfg.Results
	return e, nil
}

// Workers reports the pool bound.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Model exposes the engine's delay model (read-only).
func (e *Engine) Model() *delay.Model { return e.model }

// Metrics exposes the engine's instrument set (the HTTP layer's
// /metrics handler renders its registry).
func (e *Engine) Metrics() *Metrics { return e.metrics }

// MetricsSnapshot reads every engine instrument as a flat
// name{labels} → value map: counters and gauges by value, histograms
// as _count/_sum pairs. The CLI's `pops metrics`, the /healthz
// metrics block and genbench's BENCH records consume it.
func (e *Engine) MetricsSnapshot() obs.Snapshot { return e.metrics.reg.Snapshot() }

// protocol returns the shared protocol instance, characterizing the
// library through the cache on first use.
func (e *Engine) protocol() (*core.Protocol, error) {
	e.muProto.Lock()
	defer e.muProto.Unlock()
	if e.proto != nil {
		return e.proto, nil
	}
	p, err := core.NewProtocol(core.Config{
		Model:     e.model,
		Limits:    e.cache.Limits(e.model),
		Sizing:    e.cfg.Sizing,
		STA:       e.cfg.STA,
		MaxRounds: e.cfg.MaxRounds,
		Recorder:  e.metrics.coreRec,
	})
	if err != nil {
		return nil, err
	}
	e.proto = p
	return p, nil
}

// fanOut runs n index-addressed tasks on the bounded pool and blocks
// until all scheduled tasks finish. Results land in caller-owned
// slices at their task index, so assembly order — and therefore every
// job result — is independent of scheduling. On context cancellation
// unstarted tasks are skipped; the first error by task index wins.
func (e *Engine) fanOut(ctx context.Context, n int, task func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			break
		}
		// Queue depth counts tasks blocked on a pool slot; busy workers
		// counts held slots. Two gauges and atomic adds — cheap enough
		// to leave on unconditionally.
		e.metrics.queueDepth.Inc()
		select {
		case e.slots <- struct{}{}:
		case <-ctx.Done():
			errs[i] = ctx.Err()
		}
		e.metrics.queueDepth.Dec()
		if errs[i] != nil {
			break
		}
		wg.Add(1)
		e.metrics.busyWorkers.Inc()
		go func(i int) {
			defer wg.Done()
			defer e.metrics.busyWorkers.Dec()
			defer func() { <-e.slots }()
			errs[i] = task(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// taskParallelism resolves the intra-circuit parallelism degree of one
// task: an explicit request value wins, then the engine-wide Config
// value, then auto-sizing from idle pool capacity — this task's own
// slot plus the currently unoccupied workers, capped at GOMAXPROCS. A
// saturated pool therefore degrades to serial per-task analysis
// (inter-task parallelism already owns the cores), while a lone
// request on an idle engine fans its wavefronts across the machine.
func (e *Engine) taskParallelism(req int) int {
	if req != 0 {
		return req
	}
	if e.cfg.Parallelism != 0 {
		return e.cfg.Parallelism
	}
	idle := e.cfg.Workers - int(e.metrics.busyWorkers.Value())
	if idle < 0 {
		idle = 0
	}
	deg := 1 + idle
	if m := runtime.GOMAXPROCS(0); deg > m {
		deg = m
	}
	return deg
}

// loadCircuit instantiates a fresh netlist for a request: a named
// suite benchmark, the genuine c17, or a ripple-carry adder — always a
// new instance, so concurrent tasks never share mutable gates.
func loadCircuit(name string) (*netlist.Circuit, error) { return iscas.Load(name) }

// validateSourceRef enforces the exactly-one-of rule on a request's
// circuit reference. The HTTP layer runs it synchronously (mapping
// failures to 400) and resolveSource runs it for library callers, so
// the rule — and its wording — lives in one place.
func validateSourceRef(circuit, bench string) error {
	switch {
	case circuit == "" && bench == "":
		return errors.New("engine: circuit or bench is required")
	case circuit != "" && bench != "":
		return errors.New("engine: circuit and bench are mutually exclusive")
	}
	return nil
}

// resolveSource validates a request's circuit reference — exactly one
// of a suite name or an inline .bench source — and resolves it to a
// source: display name, canonical fingerprint (the memo key), and
// instantiation hook. parsed carries a pre-parsed inline netlist (the
// HTTP layer validates sources synchronously) so each request's bench
// text is parsed exactly once; nil parses here.
func (e *Engine) resolveSource(circuit, bench string, parsed *ParsedBench) (*source, error) {
	if err := validateSourceRef(circuit, bench); err != nil {
		return nil, err
	}
	if bench != "" {
		pb := parsed
		if pb == nil {
			start := time.Now()
			var err error
			if pb, err = ParseBench(bench); err != nil {
				return nil, err
			}
			e.metrics.stageDone(stageParse, start)
		}
		return &source{display: pb.Name, key: pb.Key, master: pb.Circuit}, nil
	}
	if !iscas.Known(circuit) {
		return nil, fmt.Errorf("iscas: unknown benchmark %q", circuit)
	}
	// On an alias miss the fingerprint computation has to load the
	// circuit anyway; donate that instance to the request as its
	// master so the first task clones it instead of re-generating
	// (Clone of a deterministic generation is byte-identical to a
	// fresh load). Alias hits skip the load entirely.
	var master *netlist.Circuit
	key, err := e.cache.Alias(circuit, func() (string, error) {
		c, err := loadCircuit(circuit)
		if err != nil {
			return "", err
		}
		master = c
		return netlist.Fingerprint(c), nil
	})
	if err != nil {
		return nil, err
	}
	return &source{display: circuit, key: key, master: master, name: circuit}, nil
}

// OptimizeRequest names one (circuit, Tc) unit of work.
type OptimizeRequest struct {
	// Circuit is a suite benchmark name ("c432", "fpd", …). Exactly
	// one of Circuit and Bench must be set.
	Circuit string `json:"circuit,omitempty"`
	// Bench is a raw ISCAS .bench netlist source optimized in place of
	// a named benchmark. It is parsed once per request behind the
	// ingestion validation pass (see ParseBench).
	Bench string `json:"bench,omitempty"`
	// Tc is the delay constraint in ps. Zero derives it from Ratio.
	Tc float64 `json:"tc,omitempty"`
	// Ratio expresses Tc as a multiple of the critical path's Tmin;
	// used when Tc is zero (default 1.4).
	Ratio float64 `json:"ratio,omitempty"`
	// Leakage requests the leakage-aware protocol: after sizing, the
	// selective multi-Vt pass promotes non-critical gates to higher
	// thresholds under the engine's leakage policy.
	Leakage bool `json:"leakage,omitempty"`
	// Parallelism overrides the engine's intra-circuit parallelism
	// policy for this task (see Config.Parallelism; 0 = inherit). A
	// pure scheduling knob: results are byte-identical at every value,
	// so it does not participate in result memoization.
	Parallelism int `json:"parallelism,omitempty"`

	// parsed caches the validated Bench netlist when the caller (the
	// HTTP layer) already parsed it; never serialized.
	parsed *ParsedBench
}

// OptimizeResult reports one optimized circuit.
type OptimizeResult struct {
	Circuit    string  `json:"circuit"`
	Tc         float64 `json:"tc"`
	Tmin       float64 `json:"tmin"`
	Tmax       float64 `json:"tmax"`
	Gates      int     `json:"gates"`
	Outcome    *core.CircuitOutcome
	FromBounds bool // bounds served from the shared cache
}

// Optimize runs the full circuit protocol for one request. The round
// loop drives core.OptimizeStep directly so cancellation is honored
// between rounds; the assembled outcome is identical to
// core.OptimizeCircuit on the same inputs.
func (e *Engine) Optimize(ctx context.Context, req OptimizeRequest) (*OptimizeResult, error) {
	src, err := e.resolveSource(req.Circuit, req.Bench, req.parsed)
	if err != nil {
		return nil, err
	}
	res := &OptimizeResult{}
	err = e.fanOut(ctx, 1, func(int) error {
		r, err := e.optimizeTask(ctx, req, src, nil, nil)
		if err != nil {
			return err
		}
		*res = *r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// pathBounds carries a precomputed Tmin/Tmax pair into optimizeTask
// when the caller already solved them (sweep points share one master).
type pathBounds struct {
	tmin, tmax float64
}

// optimizeTask is the worker body shared by Optimize, Sweep and Suite.
// It must be called from a pool slot. src carries the resolved circuit
// origin; instantiate overrides circuit loading when the caller
// derives netlists from a shared master (it is only invoked on a memo
// miss, so cached hits never pay for a clone); tb skips the
// critical-path extraction and bounds solve when the caller already
// has them.
//
// The whole task is memoized through the shared cache, keyed by
// (circuit fingerprint, Tc, ratio, leakage policy): repeated
// submissions of the same unit — the common case for a long-running
// daemon, and for suite cells overlapping earlier sweeps — return the
// completed result without recomputation. Determinism makes the memo
// transparent: a hit is byte-identical to a fresh computation.
func (e *Engine) optimizeTask(ctx context.Context, req OptimizeRequest, src *source, instantiate func() *netlist.Circuit, tb *pathBounds) (*OptimizeResult, error) {
	r, err := e.cache.Result(ctx, resultKey(e.model.Proc.Name, src.key, req, e.cfg.Leakage), func() (*OptimizeResult, error) {
		return e.computeTask(ctx, req, src, instantiate, tb)
	})
	if err != nil {
		return nil, err
	}
	if r.Circuit != src.display {
		// A memo hit under a different display name (identical netlist
		// submitted under another alias): relabel a shallow copy, never
		// the shared cached value.
		r2 := *r
		r2.Circuit = src.display
		return &r2, nil
	}
	return r, nil
}

// computeTask is the uncached task body behind optimizeTask.
func (e *Engine) computeTask(ctx context.Context, req OptimizeRequest, src *source, instantiate func() *netlist.Circuit, tb *pathBounds) (*OptimizeResult, error) {
	defer e.metrics.taskComputed(time.Now())
	proto, err := e.protocol()
	if err != nil {
		return nil, err
	}
	var c *netlist.Circuit
	if instantiate != nil {
		c = instantiate()
	} else if c, err = src.instantiate(); err != nil {
		return nil, err
	}
	// One incremental timing session serves the whole task: bounds
	// extraction, every protocol round, and the leakage pass all share
	// the same reused per-node buffers.
	sess := proto.NewTimingSession(c)
	sess.SetRecorder(e.metrics.staRec)
	// Per-task intra-circuit parallelism: the session carries the
	// degree into every wavefront STA pass, and the leakage pass
	// inherits it for its sharded power profile. Scheduling only —
	// outputs are byte-identical at any degree.
	sess.SetParallelism(e.taskParallelism(req.Parallelism))
	if tb == nil {
		boundsStart := time.Now()
		pa, _, err := sess.CriticalPath()
		if err != nil {
			return nil, err
		}
		tmin, tmax, err := e.cache.Bounds(e.model, pa, e.cfg.Sizing)
		if err != nil {
			return nil, err
		}
		tb = &pathBounds{tmin: tmin, tmax: tmax}
		e.metrics.stageDone(stageBounds, boundsStart)
	}
	tc := req.Tc
	if tc <= 0 {
		ratio := req.Ratio
		if ratio <= 0 {
			ratio = 1.4
		}
		tc = ratio * tb.tmin
	}

	var out *core.CircuitOutcome
	if req.Leakage {
		out, err = proto.OptimizeWithLeakageSession(ctx, sess, tc, e.cfg.Leakage)
	} else {
		out, err = proto.OptimizeSession(ctx, sess, tc)
	}
	if err != nil {
		return nil, err
	}
	st := c.Stats()
	return &OptimizeResult{
		Circuit: src.display,
		Tc:      tc,
		Tmin:    tb.tmin,
		Tmax:    tb.tmax,
		Gates:   st.Gates,
		Outcome: out,
	}, nil
}

// SweepRequest asks for an area/delay trade-off curve: the circuit is
// optimized at every point of a Tc grid spanning Tmin·[1.0 … 2.0].
type SweepRequest struct {
	// Circuit is a suite benchmark name. Exactly one of Circuit and
	// Bench must be set.
	Circuit string `json:"circuit,omitempty"`
	// Bench is a raw ISCAS .bench netlist source swept in place of a
	// named benchmark (see OptimizeRequest.Bench).
	Bench string `json:"bench,omitempty"`
	// Points is the grid size (default 11: ratio steps of 0.1; at
	// most MaxSweepPoints).
	Points int `json:"points,omitempty"`
	// Leakage makes every point a leakage-aware run (multi-Vt
	// assignment after sizing) under the engine's leakage policy.
	Leakage bool `json:"leakage,omitempty"`
	// Parallelism overrides the engine's intra-circuit parallelism
	// policy for every point (see OptimizeRequest.Parallelism).
	Parallelism int `json:"parallelism,omitempty"`

	// parsed caches the validated Bench netlist (see OptimizeRequest).
	parsed *ParsedBench
}

// Fan-out bounds: requests arrive from the network (popsd), so grid
// sizes are capped to keep a single job's allocation and task count
// sane. A 256-point curve already over-resolves the [1.0, 2.0] ratio
// axis by an order of magnitude.
const (
	MaxSweepPoints = 256
	MaxSuiteCells  = 4096
)

// SweepPoint is one Tc point of the curve.
type SweepPoint struct {
	Ratio    float64 `json:"ratio"` // Tc/Tmin
	Tc       float64 `json:"tc"`    // ps
	Delay    float64 `json:"delay"` // achieved worst delay (ps)
	Area     float64 `json:"area"`  // achieved circuit ΣW (µm)
	Feasible bool    `json:"feasible"`
	Rounds   int     `json:"rounds"`
	Buffers  int     `json:"buffers"`
	// Leakage is present exactly when the point was a leakage-aware
	// run — a run that promoted zero gates still carries the block, so
	// it is never confused with a dynamic-only point.
	Leakage *RowPower `json:"leakage,omitempty"`
}

// RowPower is the per-row power split of a leakage-aware sweep point
// or suite cell (µW).
type RowPower struct {
	Promoted      int     `json:"promoted"`
	DynamicUW     float64 `json:"dynamicUW"`
	LeakageUW     float64 `json:"leakageUW"` // after assignment
	TotalUW       float64 `json:"totalUW"`
	TotalBeforeUW float64 `json:"totalBeforeUW"`
}

// rowPower flattens a leakage result for a sweep/suite row; nil in.
func rowPower(lr *leakage.Result) *RowPower {
	if lr == nil {
		return nil
	}
	return &RowPower{
		Promoted:      lr.Promoted,
		DynamicUW:     lr.DynamicUW,
		LeakageUW:     lr.StaticAfterUW,
		TotalUW:       lr.TotalAfterUW,
		TotalBeforeUW: lr.TotalBeforeUW,
	}
}

// Sweep is a completed trade-off curve, points ordered by rising Tc.
type Sweep struct {
	Circuit string       `json:"circuit"`
	Tmin    float64      `json:"tmin"` // ps, critical path
	Tmax    float64      `json:"tmax"` // ps
	Points  []SweepPoint `json:"points"`
}

// Sweep fans the grid points of one circuit out over the pool. Bounds
// are computed once (through the cache) and every point optimizes its
// own clone of one master netlist, keeping points independent and the
// curve deterministic.
func (e *Engine) Sweep(ctx context.Context, req SweepRequest) (*Sweep, error) {
	points := req.Points
	if points <= 0 {
		points = 11
	}
	if points == 1 {
		return nil, fmt.Errorf("engine: sweep needs at least 2 points")
	}
	if points > MaxSweepPoints {
		return nil, fmt.Errorf("engine: sweep of %d points exceeds the %d-point cap", points, MaxSweepPoints)
	}
	src, err := e.resolveSource(req.Circuit, req.Bench, req.parsed)
	if err != nil {
		return nil, err
	}
	master, err := src.instantiate()
	if err != nil {
		return nil, err
	}
	pa, _, err := sta.CriticalPath(master, e.model, e.cfg.STA)
	if err != nil {
		return nil, err
	}
	tmin, tmax, err := e.cache.Bounds(e.model, pa, e.cfg.Sizing)
	if err != nil {
		return nil, err
	}
	sw := &Sweep{Circuit: src.display, Tmin: tmin, Tmax: tmax, Points: make([]SweepPoint, points)}
	bounds := &pathBounds{tmin: tmin, tmax: tmax}
	err = e.fanOut(ctx, points, func(i int) error {
		ratio := 1.0 + float64(i)/float64(points-1)
		r, err := e.optimizeTask(ctx, OptimizeRequest{Tc: ratio * tmin, Leakage: req.Leakage, Parallelism: req.Parallelism}, src, master.Clone, bounds)
		if err != nil {
			return err
		}
		sw.Points[i] = SweepPoint{
			Ratio:    ratio,
			Tc:       r.Tc,
			Delay:    r.Outcome.Delay,
			Area:     r.Outcome.Area,
			Feasible: r.Outcome.Feasible,
			Rounds:   r.Outcome.Rounds,
			Buffers:  r.Outcome.Buffers,
			Leakage:  rowPower(r.Outcome.Leakage),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sw, nil
}

// SuiteRequest asks for a batch run over a benchmark list at a set of
// constraint ratios. Entries may mix named suite benchmarks and
// inline .bench netlists.
type SuiteRequest struct {
	// Benchmarks lists suite names; empty selects the whole suite
	// (unless Benches supplies inline netlists).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Benches lists raw ISCAS .bench netlist sources optimized
	// alongside the named benchmarks — a mixed-entry suite. Each
	// source is parsed once, up front, behind the ingestion validation
	// pass; rows are labelled by the source's "# name" comment or a
	// fingerprint-derived name.
	Benches []string `json:"benches,omitempty"`
	// Ratios lists Tc/Tmin constraint points (default {1.2, 1.5, 2.0}).
	Ratios []float64 `json:"ratios,omitempty"`
	// Leakage makes every cell a leakage-aware run (multi-Vt
	// assignment after sizing) under the engine's leakage policy.
	Leakage bool `json:"leakage,omitempty"`
	// Parallelism overrides the engine's intra-circuit parallelism
	// policy for every cell (see OptimizeRequest.Parallelism).
	Parallelism int `json:"parallelism,omitempty"`

	// parsed caches the validated Benches netlists, index-aligned with
	// Benches (see OptimizeRequest.parsed).
	parsed []*ParsedBench
}

// SuiteRow is one (benchmark, ratio) cell of a suite run.
type SuiteRow struct {
	Circuit  string  `json:"circuit"`
	Ratio    float64 `json:"ratio"`
	Tc       float64 `json:"tc"`
	Tmin     float64 `json:"tmin"`
	Delay    float64 `json:"delay"`
	Area     float64 `json:"area"`
	Feasible bool    `json:"feasible"`
	Rounds   int     `json:"rounds"`
	Buffers  int     `json:"buffers"`
	// Leakage is present exactly when the cell was a leakage-aware
	// run (see SweepPoint.Leakage).
	Leakage *RowPower `json:"leakage,omitempty"`
}

// SuiteResult is a completed suite run, rows ordered benchmark-major.
type SuiteResult struct {
	Rows []SuiteRow `json:"rows"`
}

// Suite fans a benchmark×ratio grid out over the pool, one task per
// (circuit, Tc) cell — the granularity that load-balances the suite's
// heterogeneous circuit sizes across workers. Rows cover the named
// benchmarks first, then the inline netlists, each crossed with every
// ratio.
func (e *Engine) Suite(ctx context.Context, req SuiteRequest) (*SuiteResult, error) {
	names := req.Benchmarks
	if len(names) == 0 && len(req.Benches) == 0 {
		for _, s := range iscas.Suite() {
			names = append(names, s.Name)
		}
	}
	ratios := req.Ratios
	if len(ratios) == 0 {
		ratios = []float64{1.2, 1.5, 2.0}
	}
	if cells := (len(names) + len(req.Benches)) * len(ratios); cells > MaxSuiteCells {
		return nil, fmt.Errorf("engine: suite of %d cells exceeds the %d-cell cap", cells, MaxSuiteCells)
	}
	// Resolve every entry up front: one typo or bad netlist must not
	// cost a full batch of optimization work before the error surfaces
	// (resolveSource validates names before any fan-out).
	srcs := make([]*source, 0, len(names)+len(req.Benches))
	for _, name := range names {
		s, err := e.resolveSource(name, "", nil)
		if err != nil {
			return nil, err
		}
		srcs = append(srcs, s)
	}
	// Inline entries parse up front too — a bad netlist fails the
	// request before any optimization work starts.
	for i, b := range req.Benches {
		var pb *ParsedBench
		if i < len(req.parsed) {
			pb = req.parsed[i]
		}
		s, err := e.resolveSource("", b, pb)
		if err != nil {
			return nil, fmt.Errorf("benches[%d]: %w", i, err)
		}
		srcs = append(srcs, s)
	}
	rows := make([]SuiteRow, len(srcs)*len(ratios))
	err := e.fanOut(ctx, len(rows), func(i int) error {
		src, ratio := srcs[i/len(ratios)], ratios[i%len(ratios)]
		r, err := e.optimizeTask(ctx, OptimizeRequest{Ratio: ratio, Leakage: req.Leakage, Parallelism: req.Parallelism}, src, nil, nil)
		if err != nil {
			return fmt.Errorf("%s@%.2f: %w", src.display, ratio, err)
		}
		rows[i] = SuiteRow{
			Circuit:  src.display,
			Ratio:    ratio,
			Tc:       r.Tc,
			Tmin:     r.Tmin,
			Delay:    r.Outcome.Delay,
			Area:     r.Outcome.Area,
			Feasible: r.Outcome.Feasible,
			Rounds:   r.Outcome.Rounds,
			Buffers:  r.Outcome.Buffers,
			Leakage:  rowPower(r.Outcome.Leakage),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &SuiteResult{Rows: rows}, nil
}
