package engine

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"testing"
)

// TestParallelismIdenticalResults: the same request answered by a
// serial engine and by an engine forcing intra-circuit parallelism must
// produce byte-identical results — the invariant that keeps Parallelism
// out of every memo key. The leakage pass rides along so the sharded
// power simulation is exercised too.
func TestParallelismIdenticalResults(t *testing.T) {
	run := func(parallelism int) []byte {
		e, err := New(Config{Workers: 2, Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Sweep(context.Background(),
			SweepRequest{Circuit: "c880", Points: 3, Leakage: true})
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	serial := run(1)
	forced := run(-4) // bypass the size thresholds on this small circuit
	if string(serial) != string(forced) {
		t.Errorf("results diverged across parallelism degrees:\nserial: %s\nforced: %s", serial, forced)
	}
}

// TestParallelismRequestOverride: a per-request parallelism wins over
// the engine config, which wins over idle-capacity auto-sizing; the
// auto degree never exceeds GOMAXPROCS.
func TestParallelismRequestOverride(t *testing.T) {
	e, err := New(Config{Workers: 2, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.taskParallelism(5); got != 5 {
		t.Errorf("request override: %d, want 5", got)
	}
	if got := e.taskParallelism(0); got != 3 {
		t.Errorf("config fallback: %d, want 3", got)
	}
	auto, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, max := auto.taskParallelism(0), runtime.GOMAXPROCS(0); got < 1 || got > max {
		t.Errorf("auto sizing: %d, want within [1, %d]", got, max)
	}
}

// TestParallelismWireField: the JSON field flows through every POST
// body behind DisallowUnknownFields.
func TestParallelismWireField(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		path string
		body map[string]any
	}{
		{"/v1/optimize", map[string]any{"circuit": "fpd", "ratio": 1.5, "parallelism": 2, "wait": true}},
		{"/v1/sweep", map[string]any{"circuit": "fpd", "points": 3, "parallelism": 2, "wait": true}},
		{"/v1/suite", map[string]any{"benchmarks": []string{"fpd"}, "ratios": []float64{1.5}, "parallelism": 2, "wait": true}},
	} {
		resp, body := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s with parallelism: status %d: %v", tc.path, resp.StatusCode, body)
		}
	}
}
