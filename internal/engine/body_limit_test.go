package engine

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestReadJSONBodyLimit table-tests the bounded-body decoder: a payload
// over the 1 MiB cap must answer 413 with an explicit limit message
// (the historical behavior surfaced the truncation as a generic 400
// syntax error), while genuinely malformed JSON keeps answering 400.
func TestReadJSONBodyLimit(t *testing.T) {
	srv, _ := newTestServer(t)
	oversize := `{"circuit":"fpd","padding":"` + strings.Repeat("x", maxBodyBytes) + `"}`
	cases := []struct {
		name    string
		body    string
		status  int
		wantErr string
	}{
		{
			name:    "oversize body answers 413",
			body:    oversize,
			status:  http.StatusRequestEntityTooLarge,
			wantErr: "exceeds",
		},
		{
			name:    "malformed JSON answers 400",
			body:    `{"circuit": "fpd",`,
			status:  http.StatusBadRequest,
			wantErr: "",
		},
		{
			name:    "valid small body passes the decoder",
			body:    `{"circuit":"fpd","ratio":1.5,"wait":true}`,
			status:  http.StatusOK,
			wantErr: "",
		},
		{
			name:    "trailing JSON value answers 400",
			body:    `{"circuit":"fpd","ratio":1.5,"wait":true}{"x":1}`,
			status:  http.StatusBadRequest,
			wantErr: "after the JSON value",
		},
		{
			name:    "trailing garbage answers 400",
			body:    `{"circuit":"fpd","ratio":1.5,"wait":true} junk`,
			status:  http.StatusBadRequest,
			wantErr: "after the JSON value",
		},
		{
			name:    "trailing whitespace is fine",
			body:    `{"circuit":"fpd","ratio":1.5,"wait":true}` + "\n\t ",
			status:  http.StatusOK,
			wantErr: "",
		},
		{
			name:    "valid value with an over-limit tail answers 413, not trailing-data 400",
			body:    `{"circuit":"fpd","ratio":1.5,"wait":true}` + strings.Repeat(" ", maxBodyBytes),
			status:  http.StatusRequestEntityTooLarge,
			wantErr: "exceeds",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest("POST", "/v1/optimize", strings.NewReader(tc.body))
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.status, rec.Body.String())
			}
			if tc.wantErr != "" && !strings.Contains(rec.Body.String(), tc.wantErr) {
				t.Fatalf("error message %q does not mention %q", rec.Body.String(), tc.wantErr)
			}
		})
	}
}
