// Job durability: the journal payload schema and the restart replay
// pass. Every POST that popsd accepts with a data directory appends an
// "accepted" journal record carrying the validated request body; the
// job's goroutine appends a terminal record when it finishes. On boot,
// Server.Replay folds the records per job ID, compacts the journal,
// and re-submits every job that was accepted but never finished — so a
// 202 acknowledged before a crash is work the daemon still owes, and a
// client polling after the restart finds its job (under a fresh ID)
// completed. Replayed tasks are content-addressed like live ones:
// whatever the crashed run already persisted to the result store is
// served, only the genuinely unfinished tail recomputes.

package engine

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/store"
)

// Terminal journal payloads. The accepted payload is built per job by
// acceptedRecord; terminals carry no request (replay only needs to
// know the job finished).
const (
	journalDone   = `{"event":"done"}`
	journalFailed = `{"event":"failed"}`
)

// journalRecord is the JSON schema of one journal payload.
type journalRecord struct {
	Event string `json:"event"`
	// Kind and Request are present on "accepted" records: the job kind
	// and its validated request body, enough to re-submit it verbatim.
	Kind JobKind `json:"kind,omitempty"`
	// RequestID preserves the submitting request's trace ID across the
	// restart, so the replayed job joins the original client's trace.
	RequestID string          `json:"request_id,omitempty"`
	Request   json.RawMessage `json:"request,omitempty"`
}

// acceptedRecord renders the "accepted" journal payload of one job.
func acceptedRecord(kind JobKind, requestID string, req any) ([]byte, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return json.Marshal(journalRecord{
		Event:     "accepted",
		Kind:      kind,
		RequestID: requestID,
		Request:   raw,
	})
}

// WithJournal installs the durable job journal: accepted jobs are
// logged before they start and replayable after a crash. popsd wires
// it when -data-dir is set.
func WithJournal(j *store.Journal) ServerOption {
	return func(s *Server) { s.store.journal = j }
}

// Replay re-submits the unfinished jobs of a previous run. entries is
// the journal's replayed record stream (OpenJournal's second return);
// records are folded per job ID, the journal is compacted to empty —
// job IDs restart per process, so stale records must not alias fresh
// ones — and every job whose last record is "accepted" is re-submitted
// with its original request body and trace ID. Returns the number of
// jobs re-submitted. Records that fail to parse or validate are logged
// and skipped, never fatal: one bad record must not block the daemon
// from starting.
func (s *Server) Replay(entries []store.JournalEntry) (int, error) {
	type pending struct {
		rec   journalRecord
		bytes []byte
	}
	unfinished := make(map[string]*pending)
	var order []string
	for _, e := range entries {
		var rec journalRecord
		if err := json.Unmarshal(e.Payload, &rec); err != nil {
			s.log.Warn("replay: skipping unreadable journal record",
				"job", e.ID, "error", err.Error())
			continue
		}
		switch rec.Event {
		case "accepted":
			if _, seen := unfinished[e.ID]; !seen {
				order = append(order, e.ID)
			}
			unfinished[e.ID] = &pending{rec: rec, bytes: e.Payload}
		case "done", "failed":
			delete(unfinished, e.ID)
		default:
			s.log.Warn("replay: skipping journal record with unknown event",
				"job", e.ID, "event", rec.Event)
		}
	}
	if s.store.journal != nil {
		if err := s.store.journal.Rewrite(nil); err != nil {
			return 0, fmt.Errorf("engine: compacting journal: %w", err)
		}
	}
	resubmitted := 0
	for _, id := range order {
		p, ok := unfinished[id]
		if !ok {
			continue
		}
		run, err := s.replayRun(p.rec)
		if err != nil {
			s.log.Warn("replay: skipping unreplayable job",
				"job", id, "kind", string(p.rec.Kind), "error", err.Error())
			continue
		}
		j, err := s.store.submit(p.rec.Kind, p.rec.RequestID, p.bytes, run)
		if err != nil {
			return resubmitted, err
		}
		s.log.Info("replay: re-submitted unfinished job",
			"job", j.ID, "previous_job", id, "kind", string(p.rec.Kind),
			"request_id", p.rec.RequestID)
		resubmitted++
	}
	return resubmitted, nil
}

// replayRun rebuilds the job closure of one journaled request,
// re-validating inline netlists exactly like the HTTP handlers did on
// first submission.
func (s *Server) replayRun(rec journalRecord) (func(ctx context.Context) (any, error), error) {
	switch rec.Kind {
	case JobOptimize:
		var req OptimizeRequest
		if err := json.Unmarshal(rec.Request, &req); err != nil {
			return nil, err
		}
		if req.Bench != "" {
			pb, err := parseBenchService(req.Bench)
			if err != nil {
				return nil, err
			}
			req.parsed = pb
		}
		return func(ctx context.Context) (any, error) {
			res, err := s.engine.Optimize(ctx, req)
			if err != nil {
				return nil, err
			}
			return WireOptimize(res), nil
		}, nil
	case JobSweep:
		var req SweepRequest
		if err := json.Unmarshal(rec.Request, &req); err != nil {
			return nil, err
		}
		if req.Bench != "" {
			pb, err := parseBenchService(req.Bench)
			if err != nil {
				return nil, err
			}
			req.parsed = pb
		}
		return func(ctx context.Context) (any, error) {
			return s.engine.Sweep(ctx, req)
		}, nil
	case JobSuite:
		var req SuiteRequest
		if err := json.Unmarshal(rec.Request, &req); err != nil {
			return nil, err
		}
		if len(req.Benches) > 0 {
			req.parsed = make([]*ParsedBench, len(req.Benches))
			for i, src := range req.Benches {
				pb, err := parseBenchService(src)
				if err != nil {
					return nil, fmt.Errorf("benches[%d]: %w", i, err)
				}
				req.parsed[i] = pb
			}
		}
		return func(ctx context.Context) (any, error) {
			return s.engine.Suite(ctx, req)
		}, nil
	default:
		return nil, fmt.Errorf("engine: unknown job kind %q", rec.Kind)
	}
}
