// Engine metrics: every instrument of the service lives here, built on
// the dependency-free internal/obs substrate. One Metrics value
// belongs to one Engine; the HTTP layer, the job store, the
// characterization cache, and the core/sta recorder seams all feed it,
// and GET /metrics renders its registry in the Prometheus text format.
//
// Hot-path discipline: counters, gauges and histogram observations are
// plain atomics (allocation-free), label values are fixed at
// registration, and the per-round protocol events arrive through
// pre-built recorder interface values — so the PR-4 zero-allocation
// sizing-round guarantee survives with instrumentation enabled
// (core.TestOptimizeStepSteadyStateAllocationFree runs an obs-backed
// recorder).

package engine

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sta"
)

// Memo families instrumented by the cache.
const (
	memoResult = "result"
	memoBounds = "bounds"
	memoAlias  = "alias"
)

// Stage names of the per-stage latency histogram. StageRounds and
// StageLeakage arrive through the core recorder; parse and bounds are
// timed at the engine layer.
const (
	stageParse  = "parse"
	stageBounds = "bounds"
)

// Metrics is the engine's instrument set. All fields are safe for
// concurrent use; a nil *Metrics is valid and drops every event, so
// standalone Cache/Store values built by tests need no wiring.
type Metrics struct {
	reg *obs.Registry

	httpRequests [6]*obs.Counter // by status class, index status/100
	httpDuration *obs.Histogram

	jobsDone   map[JobKind]*obs.Counter
	jobsFailed map[JobKind]*obs.Counter

	tasks        *obs.Counter
	taskDuration *obs.Histogram
	stage        map[string]*obs.Histogram

	memoHits      map[string]*obs.Counter
	memoMisses    map[string]*obs.Counter
	memoEvictions map[string]*obs.Counter

	queueDepth  *obs.Gauge
	busyWorkers *obs.Gauge

	storeHits   *obs.Counter
	storeMisses *obs.Counter
	storeWrites *obs.Counter
	storeErrors *obs.Counter

	roundsSizing     *obs.Counter
	roundsStructural *obs.Counter
	staFull          *obs.Counter
	staReused        *obs.Counter

	// Pre-built interface values for the core/sta recorder seams, so
	// installing them never allocates on a task path.
	coreRec core.Recorder
	staRec  sta.Recorder
}

// newMetrics registers the full engine instrument catalog on a fresh
// registry.
func newMetrics() *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		reg:           reg,
		jobsDone:      make(map[JobKind]*obs.Counter, 3),
		jobsFailed:    make(map[JobKind]*obs.Counter, 3),
		stage:         make(map[string]*obs.Histogram, 4),
		memoHits:      make(map[string]*obs.Counter, 3),
		memoMisses:    make(map[string]*obs.Counter, 3),
		memoEvictions: make(map[string]*obs.Counter, 2),
	}
	for class := 1; class < len(m.httpRequests); class++ {
		m.httpRequests[class] = reg.Counter("pops_http_requests_total",
			"HTTP requests served, by status class.",
			obs.Label{Name: "code", Value: []string{"", "1xx", "2xx", "3xx", "4xx", "5xx"}[class]})
	}
	m.httpDuration = reg.Histogram("pops_http_request_duration_seconds",
		"Wall time of HTTP requests.", nil)
	for _, kind := range []JobKind{JobOptimize, JobSweep, JobSuite} {
		m.jobsDone[kind] = reg.Counter("pops_jobs_total",
			"Jobs finished, by kind and outcome.",
			obs.Label{Name: "kind", Value: string(kind)}, obs.Label{Name: "outcome", Value: "done"})
		m.jobsFailed[kind] = reg.Counter("pops_jobs_total",
			"Jobs finished, by kind and outcome.",
			obs.Label{Name: "kind", Value: string(kind)}, obs.Label{Name: "outcome", Value: "failed"})
	}
	m.tasks = reg.Counter("pops_tasks_total",
		"Optimization tasks computed (memo misses that ran the protocol).")
	m.taskDuration = reg.Histogram("pops_task_duration_seconds",
		"Wall time of computed (uncached) optimization tasks.", nil)
	for _, st := range []string{stageParse, stageBounds, core.StageRounds, core.StageLeakage} {
		m.stage[st] = reg.Histogram("pops_stage_duration_seconds",
			"Wall time of one pipeline stage of a task.", nil,
			obs.Label{Name: "stage", Value: st})
	}
	for _, fam := range []string{memoResult, memoBounds, memoAlias} {
		m.memoHits[fam] = reg.Counter("pops_memo_hits_total",
			"Memo hits, by cache family.", obs.Label{Name: "family", Value: fam})
		m.memoMisses[fam] = reg.Counter("pops_memo_misses_total",
			"Memo misses, by cache family.", obs.Label{Name: "family", Value: fam})
	}
	for _, fam := range []string{memoResult, memoBounds} {
		m.memoEvictions[fam] = reg.Counter("pops_memo_evictions_total",
			"FIFO memo evictions, by cache family.", obs.Label{Name: "family", Value: fam})
	}
	m.storeHits = reg.Counter("pops_store_hits_total",
		"Result-store hits: memoized tasks served from the durable tier.")
	m.storeMisses = reg.Counter("pops_store_misses_total",
		"Result-store misses: memo misses absent from the durable tier.")
	m.storeWrites = reg.Counter("pops_store_writes_total",
		"Computed results written through to the durable tier.")
	m.storeErrors = reg.Counter("pops_store_errors_total",
		"Result-store failures: corrupt records, write errors, unmarshalable results.")
	m.queueDepth = reg.Gauge("pops_queue_depth",
		"Tasks waiting for a worker-pool slot.")
	m.busyWorkers = reg.Gauge("pops_busy_workers",
		"Worker-pool slots currently executing a task.")
	m.roundsSizing = reg.Counter("pops_sizing_rounds_total",
		"Protocol rounds executed, by effect.", obs.Label{Name: "structural", Value: "false"})
	m.roundsStructural = reg.Counter("pops_sizing_rounds_total",
		"Protocol rounds executed, by effect.", obs.Label{Name: "structural", Value: "true"})
	m.staFull = reg.Counter("pops_sta_analyses_total",
		"Timing-session Analyze calls, by mode.", obs.Label{Name: "mode", Value: "full"})
	m.staReused = reg.Counter("pops_sta_analyses_total",
		"Timing-session Analyze calls, by mode.", obs.Label{Name: "mode", Value: "reused"})
	m.coreRec = protocolRecorder{m}
	m.staRec = sessionRecorder{m}
	return m
}

// Registry exposes the underlying registry (the /metrics handler and
// tests render it).
func (m *Metrics) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// Nil-safe event helpers: standalone caches/stores built by tests have
// no Metrics, so every feed point goes through a method that tolerates
// a nil receiver.

//pops:noalloc
func (m *Metrics) memoHit(family string) {
	if m != nil {
		m.memoHits[family].Inc()
	}
}

//pops:noalloc
func (m *Metrics) memoMiss(family string) {
	if m != nil {
		m.memoMisses[family].Inc()
	}
}

//pops:noalloc
func (m *Metrics) memoEvict(family string) {
	if m != nil {
		m.memoEvictions[family].Inc()
	}
}

//pops:noalloc
func (m *Metrics) storeHit() {
	if m != nil {
		m.storeHits.Inc()
	}
}

//pops:noalloc
func (m *Metrics) storeMiss() {
	if m != nil {
		m.storeMisses.Inc()
	}
}

//pops:noalloc
func (m *Metrics) storeWrite() {
	if m != nil {
		m.storeWrites.Inc()
	}
}

// storeError is also the batcher's OnError hook target (popsd wires it
// through Metrics.StoreErrorHook), so asynchronous flush failures are
// visible on /metrics alongside synchronous ones.
//
//pops:noalloc
func (m *Metrics) storeError() {
	if m != nil {
		m.storeErrors.Inc()
	}
}

// StoreErrorHook adapts the store-error counter to the batcher's
// OnError callback signature.
func (m *Metrics) StoreErrorHook() func(key string, err error) {
	if m == nil {
		return func(string, error) {}
	}
	return func(string, error) { m.storeError() }
}

//pops:noalloc
func (m *Metrics) jobFinished(kind JobKind, failed bool) {
	if m == nil {
		return
	}
	byKind := m.jobsDone
	if failed {
		byKind = m.jobsFailed
	}
	if c, ok := byKind[kind]; ok {
		c.Inc()
	}
}

//pops:noalloc
func (m *Metrics) taskComputed(start time.Time) {
	if m != nil {
		m.tasks.Inc()
		m.taskDuration.Observe(time.Since(start).Seconds())
	}
}

//pops:noalloc
func (m *Metrics) stageDone(stage string, start time.Time) {
	if m == nil {
		return
	}
	if h, ok := m.stage[stage]; ok {
		h.Observe(time.Since(start).Seconds())
	}
}

//pops:noalloc
func (m *Metrics) httpServed(status int, start time.Time) {
	if m == nil {
		return
	}
	class := status / 100
	if class < 1 || class >= len(m.httpRequests) {
		class = 5
	}
	m.httpRequests[class].Inc()
	m.httpDuration.Observe(time.Since(start).Seconds())
}

// protocolRecorder feeds core's round/stage events into the metrics.
type protocolRecorder struct{ m *Metrics }

//pops:noalloc
func (r protocolRecorder) RoundDone(structural bool) {
	if r.m == nil {
		return
	}
	if structural {
		r.m.roundsStructural.Inc()
	} else {
		r.m.roundsSizing.Inc()
	}
}

//pops:noalloc
func (r protocolRecorder) StageDone(stage string, d time.Duration) {
	if r.m == nil {
		return
	}
	if h, ok := r.m.stage[stage]; ok {
		h.Observe(d.Seconds())
	}
}

// sessionRecorder feeds sta session reuse events into the metrics.
type sessionRecorder struct{ m *Metrics }

//pops:noalloc
func (r sessionRecorder) Analyzed(full bool) {
	if r.m == nil {
		return
	}
	if full {
		r.m.staFull.Inc()
	} else {
		r.m.staReused.Inc()
	}
}
