// Result persistence: the flat, versioned JSON form of one completed
// optimization task, written to the durable store (internal/store)
// behind the in-memory result memo. core.CircuitOutcome itself is not
// marshalable — its PathOutcomes carry delay.Path values whose stages
// reference live netlist nodes — so the stored form keeps exactly the
// fields the service's wire shape (WireOptimize) and the CLI consume,
// and rehydration rebuilds synthetic paths carrying the stage
// sequence. Determinism makes the tier transparent: a rehydrated
// result is byte-identical on the wire to a fresh computation, which
// the store-equivalence test pins against the golden session corpus.

package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/leakage"
)

// storedVersion tags the persisted result format. Decoding any other
// version fails, which the cache treats like a miss: a daemon upgraded
// across a format change silently recomputes and overwrites instead of
// serving a misread record.
const storedVersion = 1

// storedResult is the persisted form of one OptimizeResult.
type storedResult struct {
	Version     int             `json:"v"`
	Circuit     string          `json:"circuit"`
	Tc          float64         `json:"tc"`
	Tmin        float64         `json:"tmin"`
	Tmax        float64         `json:"tmax"`
	Gates       int             `json:"gates"`
	Delay       float64         `json:"delay"`
	Area        float64         `json:"area"`
	Feasible    bool            `json:"feasible"`
	Rounds      int             `json:"rounds"`
	Buffers     int             `json:"buffers"`
	NorRewrites int             `json:"norRewrites"`
	Paths       []storedPath    `json:"paths,omitempty"`
	Leakage     *leakage.Result `json:"leakage,omitempty"`
}

// storedPath is the persisted form of one core.PathOutcome: the
// decision fields plus the stage sequence of its path (cell type and
// sizes per stage), enough to rebuild a synthetic delay.Path whose
// Len, Sizes and signature match the original.
type storedPath struct {
	Domain   int           `json:"domain"`
	Method   string        `json:"method"`
	Tmin     float64       `json:"tmin"`
	Tmax     float64       `json:"tmax"`
	Tc       float64       `json:"tc"`
	Delay    float64       `json:"delay"`
	Area     float64       `json:"area"`
	Buffers  int           `json:"buffers"`
	Feasible bool          `json:"feasible"`
	Name     string        `json:"name"`
	TauIn    float64       `json:"tauIn"`
	Stages   []storedStage `json:"stages,omitempty"`
}

// storedStage is one path stage: the gate type and the solved sizes.
type storedStage struct {
	Type     int     `json:"type"`
	CIn      float64 `json:"cin"`
	COff     float64 `json:"coff,omitempty"`
	Inserted bool    `json:"inserted,omitempty"`
}

// storeKeyFor derives the content address of one memoized task: the
// SHA-256 of the composite taskKey, hex-encoded. The memo key already
// spells out (process, fingerprint, constraint, policy) collision-free;
// hashing it yields a fixed-length string inside the store's key
// grammar (the raw key contains '|').
func storeKeyFor(key taskKey) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// encodeStoredResult renders a completed task for the durable tier.
// Results carrying non-finite floats fail here (JSON has no NaN/Inf);
// the cache skips persistence and counts a store error.
func encodeStoredResult(r *OptimizeResult) ([]byte, error) {
	s := storedResult{
		Version:     storedVersion,
		Circuit:     r.Circuit,
		Tc:          r.Tc,
		Tmin:        r.Tmin,
		Tmax:        r.Tmax,
		Gates:       r.Gates,
		Delay:       r.Outcome.Delay,
		Area:        r.Outcome.Area,
		Feasible:    r.Outcome.Feasible,
		Rounds:      r.Outcome.Rounds,
		Buffers:     r.Outcome.Buffers,
		NorRewrites: r.Outcome.NorRewrites,
		Leakage:     r.Outcome.Leakage,
	}
	for _, po := range r.Outcome.PathOutcomes {
		sp := storedPath{
			Domain:   int(po.Domain),
			Method:   po.Method,
			Tmin:     po.Tmin,
			Tmax:     po.Tmax,
			Tc:       po.Tc,
			Delay:    po.Delay,
			Area:     po.Area,
			Buffers:  po.Buffers,
			Feasible: po.Feasible,
		}
		if po.Path != nil {
			sp.Name = po.Path.Name
			sp.TauIn = po.Path.TauIn
			for i := range po.Path.Stages {
				st := &po.Path.Stages[i]
				sp.Stages = append(sp.Stages, storedStage{
					Type:     int(st.Cell.Type),
					CIn:      st.CIn,
					COff:     st.COff,
					Inserted: st.Inserted,
				})
			}
		}
		s.Paths = append(s.Paths, sp)
	}
	return json.Marshal(s)
}

// decodeStoredResult rebuilds an OptimizeResult from its persisted
// form. The rebuilt PathOutcomes carry synthetic delay.Paths — correct
// stage count, cells and sizes, but no netlist node references — which
// is exactly what every consumer of a finished result reads
// (WireOptimize, the CLI, the golden harness).
func decodeStoredResult(data []byte) (*OptimizeResult, error) {
	var s storedResult
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	if s.Version != storedVersion {
		return nil, fmt.Errorf("engine: stored result version %d, want %d", s.Version, storedVersion)
	}
	out := &core.CircuitOutcome{
		Tc:          s.Tc,
		Delay:       s.Delay,
		Area:        s.Area,
		Feasible:    s.Feasible,
		Rounds:      s.Rounds,
		Buffers:     s.Buffers,
		NorRewrites: s.NorRewrites,
		Leakage:     s.Leakage,
	}
	for _, sp := range s.Paths {
		pa := &delay.Path{Name: sp.Name, TauIn: sp.TauIn}
		for _, st := range sp.Stages {
			cell, err := gate.Lookup(gate.Type(st.Type))
			if err != nil {
				return nil, fmt.Errorf("engine: stored path stage: %w", err)
			}
			pa.Stages = append(pa.Stages, delay.Stage{
				Cell:     cell,
				CIn:      st.CIn,
				COff:     st.COff,
				Inserted: st.Inserted,
			})
		}
		out.PathOutcomes = append(out.PathOutcomes, &core.PathOutcome{
			Domain:   core.Domain(sp.Domain),
			Tmin:     sp.Tmin,
			Tmax:     sp.Tmax,
			Tc:       sp.Tc,
			Method:   sp.Method,
			Delay:    sp.Delay,
			Area:     sp.Area,
			Buffers:  sp.Buffers,
			Feasible: sp.Feasible,
			Path:     pa,
		})
	}
	return &OptimizeResult{
		Circuit: s.Circuit,
		Tc:      s.Tc,
		Tmin:    s.Tmin,
		Tmax:    s.Tmax,
		Gates:   s.Gates,
		Outcome: out,
	}, nil
}
