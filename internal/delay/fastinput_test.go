package delay

import (
	"testing"

	"repro/internal/gate"
	"repro/internal/tech"
)

func TestFastInputShareWellSizedPath(t *testing.T) {
	// A sensibly tapered chain is entirely in the fast input range.
	p := tech.CMOS025()
	m := NewModel(p)
	pa := &Path{Name: "taper", TauIn: DefaultTauIn(p)}
	cin := 2.0
	for i := 0; i < 5; i++ {
		pa.Stages = append(pa.Stages, Stage{Cell: gate.MustLookup(gate.Inv), CIn: cin})
		cin *= 3
	}
	pa.Stages[4].COff = cin
	if share := m.FastInputShare(pa, 0); share < 0.99 {
		t.Fatalf("tapered chain share %g, want 1", share)
	}
}

func TestFastInputShareDetectsSlowDrivers(t *testing.T) {
	// A big gate driven by a starved one sees a slow input edge: the
	// condition the paper's model excludes.
	p := tech.CMOS025()
	m := NewModel(p)
	pa := &Path{
		Name:  "starved",
		TauIn: DefaultTauIn(p),
		Stages: []Stage{
			{Cell: gate.MustLookup(gate.Inv), CIn: p.CRef, COff: 300}, // tiny gate, huge load
			{Cell: gate.MustLookup(gate.Inv), CIn: 400, COff: 40},     // huge gate, light load
		},
	}
	if share := m.FastInputShare(pa, 0); share > 0.6 {
		t.Fatalf("starved stage not detected: share %g", share)
	}
}

func TestFastInputShareAtTminIsHigh(t *testing.T) {
	// The optimizer's own solutions must live in the model's validity
	// range — otherwise the paper's framework would be self-
	// inconsistent. (Checked indirectly: balanced taper ⇒ comparable
	// transitions.)
	p := tech.CMOS025()
	m := NewModel(p)
	pa := &Path{Name: "mixed", TauIn: DefaultTauIn(p)}
	for _, ty := range []gate.Type{gate.Inv, gate.Nand2, gate.Nor2, gate.Nand3, gate.Inv} {
		pa.Stages = append(pa.Stages, Stage{Cell: gate.MustLookup(ty), CIn: 4, COff: 3})
	}
	pa.Stages[4].COff = 60
	// Emulate a balanced sizing: geometric growth toward the load.
	sizes := []float64{4, 7, 12, 21, 36}
	for i := range sizes {
		pa.Stages[i].CIn = sizes[i]
	}
	if share := m.FastInputShare(pa, 0); share < 0.8 {
		t.Fatalf("balanced path share %g", share)
	}
	if empty := m.FastInputShare(&Path{}, 0); empty != 1 {
		t.Fatalf("empty path share %g", empty)
	}
}
