// Package delay implements the closed-form CMOS timing model of the
// paper (eq. 1-3): transition times à la Maurine et al. (TCAD 2002) and
// gate delays capturing the input-slope effect and the input-to-output
// (Miller) coupling. It also defines the bounded-path abstraction that
// all POPS optimizers operate on, together with the analytic path-delay
// derivatives (the A_i "design parameters" of eq. 4-6).
//
// Model summary, for a gate with per-pin input capacitance C_IN driving
// a total load C_L (next-stage pins + off-path pins + wire + own
// diffusion parasitic):
//
//	τ_outHL = S_HL·τ·C_L/C_IN         S_HL = S0·(1+k)·DW_HL         (2,3)
//	τ_outLH = S_LH·τ·C_L/C_IN         S_LH = S0·(1+k)·(R/k)·DW_LH
//
//	t_HL = (v_TN/2)·τ_inLH + ½·(1 + 2C_M/(C_M+C_L))·τ_outHL          (1)
//	t_LH = (v_TP/2)·τ_inHL + ½·(1 + 2C_M/(C_M+C_L))·τ_outLH
//
// with C_M half the input capacitance of the P (N) device for an input
// rising (falling) edge. Within the fast-input-control range the path
// delay of a bounded path is convex in the gate input capacitances,
// which eq. (4-6) exploit.
package delay

import (
	"fmt"
	"math"

	"repro/internal/gate"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// Model evaluates the closed-form timing equations for one process
// corner. The two flags expose the paper's modelling ingredients for
// ablation studies: CoupleMiller enables the input-to-output coupling
// term of eq. (1) and SlopeEffect enables the input-transition term.
// Both default to on (the paper's model).
type Model struct {
	Proc         *tech.Process
	CoupleMiller bool
	SlopeEffect  bool
}

// NewModel returns the paper's full model on the given corner.
func NewModel(p *tech.Process) *Model {
	return &Model{Proc: p, CoupleMiller: true, SlopeEffect: true}
}

// TransitionHL returns the falling output transition time (ps) of cell
// c with input capacitance cin (fF) driving load cl (fF) — eq. (2,3).
func (m *Model) TransitionHL(c gate.Cell, cin, cl float64) float64 {
	return c.SHL(m.Proc) * m.Proc.Tau * cl / cin
}

// TransitionLH returns the rising output transition time (ps).
func (m *Model) TransitionLH(c gate.Cell, cin, cl float64) float64 {
	return c.SLH(m.Proc) * m.Proc.Tau * cl / cin
}

// TransitionMean returns the edge-averaged output transition time (ps)
// used by the convex optimization objective.
func (m *Model) TransitionMean(c gate.Cell, cin, cl float64) float64 {
	return c.SMean(m.Proc) * m.Proc.Tau * cl / cin
}

// millerFactor evaluates 1 + 2C_M/(C_M + C_L) with C_M = ratio·C_IN.
func (m *Model) millerFactor(ratio, cin, cl float64) float64 {
	if !m.CoupleMiller || cin <= 0 {
		return 1
	}
	cm := ratio * cin
	return 1 + 2*cm/(cm+cl)
}

// GateDelayHL returns the eq. (1) falling-output delay (ps) of cell c:
// input rising with transition time tauInLH, load cl.
func (m *Model) GateDelayHL(c gate.Cell, cin, cl, tauInLH float64) float64 {
	t := m.millerFactor(m.Proc.MillerHL(), cin, cl) / 2 * m.TransitionHL(c, cin, cl)
	if m.SlopeEffect {
		t += m.Proc.VTN / 2 * tauInLH
	}
	return t
}

// GateDelayLH returns the eq. (1) rising-output delay (ps) of cell c:
// input falling with transition time tauInHL, load cl.
func (m *Model) GateDelayLH(c gate.Cell, cin, cl, tauInHL float64) float64 {
	t := m.millerFactor(m.Proc.MillerLH(), cin, cl) / 2 * m.TransitionLH(c, cin, cl)
	if m.SlopeEffect {
		t += m.Proc.VTP / 2 * tauInHL
	}
	return t
}

// GateDelayMean returns the edge-averaged delay (ps): the optimization
// objective's per-stage term. The averaged Miller ratio of the
// reference inverter is exactly 1/4 regardless of k.
func (m *Model) GateDelayMean(c gate.Cell, cin, cl, tauIn float64) float64 {
	t := m.millerFactor(0.25, cin, cl) / 2 * m.TransitionMean(c, cin, cl)
	if m.SlopeEffect {
		t += m.Proc.VTMean() / 2 * tauIn
	}
	return t
}

// Stage is one gate of a bounded combinational path. CIn is the sizing
// variable (per-pin input capacitance, fF); COff is the fixed off-path
// load on the stage's output net (sibling fan-out pins + wire; for the
// last stage it includes the terminal load). Node optionally links back
// to the netlist gate the stage was extracted from.
type Stage struct {
	Cell gate.Cell
	CIn  float64
	COff float64
	Node *netlist.Node
	// Inserted marks stages added by the buffering optimizer, so that
	// insertion passes do not re-buffer their own buffers and local
	// modes can pin their sizes.
	Inserted bool
}

// Path is a bounded combinational path (§2.2): the first stage's input
// capacitance is fixed by the latch load constraint, and the terminal
// load (folded into the last stage's COff) is fixed by the driven
// registers. TauIn is the input transition time at the path entry (ps).
type Path struct {
	Name   string
	Stages []Stage
	TauIn  float64
}

// DefaultTauIn returns a representative path-entry transition time: the
// edge-averaged output slope of a reference inverter working at fan-out
// 4 on corner p.
func DefaultTauIn(p *tech.Process) float64 {
	inv := gate.MustLookup(gate.Inv)
	return inv.SMean(p) * p.Tau * 4
}

// Clone returns a deep copy of the path (stages are values; Node
// backlinks are shared).
func (pa *Path) Clone() *Path {
	return pa.CopyInto(&Path{})
}

// CopyInto is Clone into caller-owned storage: dst's stage slice is
// reused (truncated and refilled), so a working copy recycled across
// optimizer rounds costs no steady-state allocation. It returns dst.
func (pa *Path) CopyInto(dst *Path) *Path {
	dst.Name = pa.Name
	dst.TauIn = pa.TauIn
	dst.Stages = append(dst.Stages[:0], pa.Stages...)
	return dst
}

// Len returns the number of stages.
func (pa *Path) Len() int { return len(pa.Stages) }

// Sizes returns the stage input capacitances as a slice.
func (pa *Path) Sizes() []float64 {
	x := make([]float64, len(pa.Stages))
	for i := range pa.Stages {
		x[i] = pa.Stages[i].CIn
	}
	return x
}

// AppendSizes is Sizes appending into dst, for callers recycling a
// snapshot buffer (pass dst[:0] to overwrite in place).
func (pa *Path) AppendSizes(dst []float64) []float64 {
	for i := range pa.Stages {
		dst = append(dst, pa.Stages[i].CIn)
	}
	return dst
}

// SetSizes overwrites the stage input capacitances. The first stage is
// fixed by the bounded-path contract, but SetSizes writes it anyway so
// callers can restore snapshots; optimizers simply never change x[0].
func (pa *Path) SetSizes(x []float64) error {
	if len(x) != len(pa.Stages) {
		return fmt.Errorf("delay: SetSizes: %d sizes for %d stages", len(x), len(pa.Stages))
	}
	for i := range pa.Stages {
		pa.Stages[i].CIn = x[i]
	}
	return nil
}

// WriteBack copies the stage sizes into the linked netlist nodes, for
// paths extracted by the sta package.
func (pa *Path) WriteBack() {
	for i := range pa.Stages {
		if n := pa.Stages[i].Node; n != nil {
			n.CIn = pa.Stages[i].CIn
		}
	}
}

// LoadAt returns the total switched load C_L of stage i (fF): next
// stage's pin + off-path load + own diffusion parasitic.
func (pa *Path) LoadAt(i int) float64 {
	st := &pa.Stages[i]
	cl := st.COff + st.Cell.Parasitic(st.CIn)
	if i+1 < len(pa.Stages) {
		cl += pa.Stages[i+1].CIn
	}
	return cl
}

// ExternalLoadAt returns L_i = C_L(i) minus the stage's own parasitic —
// the part of the load that does not cancel in the delay derivative.
func (pa *Path) ExternalLoadAt(i int) float64 {
	st := &pa.Stages[i]
	l := st.COff
	if i+1 < len(pa.Stages) {
		l += pa.Stages[i+1].CIn
	}
	return l
}

// Area returns the total transistor width ΣW (µm) of the path under
// corner p — the paper's cost metric.
func (pa *Path) Area(p *tech.Process) float64 {
	var sum float64
	for i := range pa.Stages {
		sum += pa.Stages[i].Cell.Area(pa.Stages[i].CIn, p)
	}
	return sum
}

// TotalCIn returns ΣC_IN of the path stages (fF) — the x axis of the
// paper's Fig. 1, normalized by CREF.
func (pa *Path) TotalCIn() float64 {
	var sum float64
	for i := range pa.Stages {
		sum += pa.Stages[i].CIn
	}
	return sum
}

// PathDelayMean returns the edge-averaged path delay (ps): the smooth
// convex objective the eq. (4-6) machinery optimizes.
func (m *Model) PathDelayMean(pa *Path) float64 {
	tauIn := pa.TauIn
	var total float64
	for i := range pa.Stages {
		st := &pa.Stages[i]
		cl := pa.LoadAt(i)
		total += m.GateDelayMean(st.Cell, st.CIn, cl, tauIn)
		tauIn = m.TransitionMean(st.Cell, st.CIn, cl)
	}
	return total
}

// PathDelayLaunch returns the exact alternating-edge path delay (ps)
// for a given launch edge at the path input (risingInput true = the
// path entry net rises). Inverting stages flip the edge.
func (m *Model) PathDelayLaunch(pa *Path, risingInput bool) float64 {
	tauIn := pa.TauIn
	rising := risingInput
	var total float64
	for i := range pa.Stages {
		st := &pa.Stages[i]
		cl := pa.LoadAt(i)
		if rising {
			// Input rising → output falling for inverting cells.
			total += m.GateDelayHL(st.Cell, st.CIn, cl, tauIn)
			tauIn = m.TransitionHL(st.Cell, st.CIn, cl)
		} else {
			total += m.GateDelayLH(st.Cell, st.CIn, cl, tauIn)
			tauIn = m.TransitionLH(st.Cell, st.CIn, cl)
		}
		if st.Cell.Invert {
			rising = !rising
		}
		// Non-inverting cells (BUF) keep the edge; their internal
		// first stage inversion is absorbed in the cell personality.
	}
	return total
}

// PathDelayWorst returns the worse of the two launch edges (ps) — the
// reported path delay.
func (m *Model) PathDelayWorst(pa *Path) float64 {
	return math.Max(m.PathDelayLaunch(pa, true), m.PathDelayLaunch(pa, false))
}

// BCoefficients returns the per-stage design coefficients A_i of
// eq. (4-6) for the current sizing state: the path delay satisfies
//
//	T ≈ const + Σ_i B_i · C_L(i)/C_IN(i)
//
// where B_i folds the stage's averaged symmetry factor, its (frozen)
// Miller factor, and the slope contribution its output transition makes
// to the next stage's delay. The Miller factor depends weakly on the
// sizes; the optimizers re-freeze it on every sweep, so the fixed point
// of the link equations is the true stationary point.
func (m *Model) BCoefficients(pa *Path) []float64 {
	return m.BCoefficientsInto(nil, pa)
}

// BCoefficientsInto is BCoefficients into caller storage: the
// coefficients land in dst (grown only when its capacity is short) and
// the used slice is returned. The sizing solvers recompute B on every
// sweep, so a recycled buffer removes the dominant per-sweep
// allocation of the hot round loop.
func (m *Model) BCoefficientsInto(dst []float64, pa *Path) []float64 {
	n := len(pa.Stages)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	b := dst[:n]
	for i := range pa.Stages {
		st := &pa.Stages[i]
		cl := pa.LoadAt(i)
		mf := m.millerFactor(0.25, st.CIn, cl)
		coef := st.Cell.SMean(m.Proc) * m.Proc.Tau / 2 * mf
		if m.SlopeEffect && i+1 < n {
			coef += st.Cell.SMean(m.Proc) * m.Proc.Tau / 2 * m.Proc.VTMean()
		}
		b[i] = coef
	}
	return b
}

// Sensitivity returns ∂T/∂C_IN(i) (ps/fF) of the edge-averaged path
// delay for stage i ≥ 1 under frozen B coefficients:
//
//	∂T/∂x_i = B_{i-1}/x_{i-1} − B_i·L_i/x_i²
//
// with L_i the external (non-self) load. This is the "a" of eq. (5).
func (m *Model) Sensitivity(pa *Path, b []float64, i int) float64 {
	if i <= 0 || i >= len(pa.Stages) {
		return 0
	}
	xPrev := pa.Stages[i-1].CIn
	x := pa.Stages[i].CIn
	return b[i-1]/xPrev - b[i]*pa.ExternalLoadAt(i)/(x*x)
}

// NumericSensitivity estimates ∂T/∂C_IN(i) by central finite
// differences on the exact edge-averaged delay; tests use it to
// validate the analytic form.
func (m *Model) NumericSensitivity(pa *Path, i int, h float64) float64 {
	q := pa.Clone()
	x := q.Stages[i].CIn
	q.Stages[i].CIn = x + h
	up := m.PathDelayMean(q)
	q.Stages[i].CIn = x - h
	dn := m.PathDelayMean(q)
	q.Stages[i].CIn = x
	return (up - dn) / (2 * h)
}

// FastInputShare reports the fraction of stages operating in the fast
// input control range — the validity condition of eq. (1) the paper
// assumes throughout ("we always consider that the resulting
// implementation is in the fast input control range"). A stage is in
// range when its input transition does not exceed its own output
// transition by more than the given factor (2.0 is a customary
// boundary; the eq. (1) slope term is linear only below it).
func (m *Model) FastInputShare(pa *Path, factor float64) float64 {
	if factor <= 0 {
		factor = 2.0
	}
	if len(pa.Stages) == 0 {
		return 1
	}
	tauIn := pa.TauIn
	ok := 0
	for i := range pa.Stages {
		st := &pa.Stages[i]
		out := m.TransitionMean(st.Cell, st.CIn, pa.LoadAt(i))
		if tauIn <= factor*out {
			ok++
		}
		tauIn = out
	}
	return float64(ok) / float64(len(pa.Stages))
}

// Validate checks that the path is well-formed: at least one stage,
// positive sizes, non-negative off-path loads, a positive terminal
// load, and a positive entry slope.
func (pa *Path) Validate() error {
	if len(pa.Stages) == 0 {
		return fmt.Errorf("delay: path %q has no stages", pa.Name)
	}
	if pa.TauIn <= 0 {
		return fmt.Errorf("delay: path %q has non-positive entry transition %g", pa.Name, pa.TauIn)
	}
	for i := range pa.Stages {
		st := &pa.Stages[i]
		if st.CIn <= 0 {
			return fmt.Errorf("delay: path %q stage %d has non-positive C_IN %g", pa.Name, i, st.CIn)
		}
		if st.COff < 0 {
			return fmt.Errorf("delay: path %q stage %d has negative C_OFF %g", pa.Name, i, st.COff)
		}
		if !gate.IsPrimitive(st.Cell.Type) {
			return fmt.Errorf("delay: path %q stage %d has non-primitive cell %v", pa.Name, i, st.Cell.Type)
		}
	}
	last := &pa.Stages[len(pa.Stages)-1]
	if last.COff <= 0 {
		return fmt.Errorf("delay: path %q has no terminal load", pa.Name)
	}
	return nil
}
