package delay

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gate"
	"repro/internal/netlist"
	"repro/internal/tech"
)

func model() *Model { return NewModel(tech.CMOS025()) }

// mkPath builds a mixed path with uniform sizes and a terminal load.
func mkPath(types []gate.Type, cin, coff, terminal float64) *Path {
	p := tech.CMOS025()
	pa := &Path{Name: "test", TauIn: DefaultTauIn(p)}
	for _, ty := range types {
		pa.Stages = append(pa.Stages, Stage{Cell: gate.MustLookup(ty), CIn: cin, COff: coff})
	}
	pa.Stages[len(pa.Stages)-1].COff = terminal
	return pa
}

var mixed = []gate.Type{gate.Inv, gate.Nand2, gate.Nor2, gate.Inv, gate.Nand3, gate.Nor3, gate.Inv}

func TestTransitionScaling(t *testing.T) {
	m := model()
	inv := gate.MustLookup(gate.Inv)
	base := m.TransitionHL(inv, 2, 8)
	// Doubling the load doubles the transition; doubling the drive
	// halves it (eq. 2).
	if got := m.TransitionHL(inv, 2, 16); math.Abs(got-2*base) > 1e-12 {
		t.Fatalf("load scaling: %g vs %g", got, 2*base)
	}
	if got := m.TransitionHL(inv, 4, 8); math.Abs(got-base/2) > 1e-12 {
		t.Fatalf("drive scaling: %g vs %g", got, base/2)
	}
}

func TestTransitionEdgeAsymmetry(t *testing.T) {
	m := model()
	inv := gate.MustLookup(gate.Inv)
	// R > k: the rising edge is slower.
	if m.TransitionLH(inv, 2, 8) <= m.TransitionHL(inv, 2, 8) {
		t.Fatal("rising transition must be slower than falling for R > k")
	}
	// The mean is the average.
	want := (m.TransitionHL(inv, 2, 8) + m.TransitionLH(inv, 2, 8)) / 2
	if got := m.TransitionMean(inv, 2, 8); math.Abs(got-want) > 1e-12 {
		t.Fatal("TransitionMean is not the edge average")
	}
}

func TestGateDelaySlopeEffect(t *testing.T) {
	m := model()
	inv := gate.MustLookup(gate.Inv)
	fast := m.GateDelayHL(inv, 2, 8, 10)
	slow := m.GateDelayHL(inv, 2, 8, 200)
	if slow <= fast {
		t.Fatal("slower input slope must increase the delay (eq. 1)")
	}
	// With the slope effect disabled the input slope is ignored.
	m.SlopeEffect = false
	if m.GateDelayHL(inv, 2, 8, 10) != m.GateDelayHL(inv, 2, 8, 200) {
		t.Fatal("SlopeEffect=false must ignore the input slope")
	}
}

func TestGateDelayMillerEffect(t *testing.T) {
	m := model()
	inv := gate.MustLookup(gate.Inv)
	with := m.GateDelayHL(inv, 2, 8, 50)
	m.CoupleMiller = false
	without := m.GateDelayHL(inv, 2, 8, 50)
	if with <= without {
		t.Fatal("Miller coupling must add delay")
	}
	// The coupling factor shrinks as the load grows (2CM/(CM+CL)).
	m.CoupleMiller = true
	small := m.millerFactor(0.25, 2, 4)
	big := m.millerFactor(0.25, 2, 400)
	if small <= big {
		t.Fatal("Miller factor must shrink with load")
	}
}

func TestPathDelayWorstIsMax(t *testing.T) {
	m := model()
	pa := mkPath(mixed, 4, 2, 30)
	up := m.PathDelayLaunch(pa, true)
	dn := m.PathDelayLaunch(pa, false)
	if got := m.PathDelayWorst(pa); got != math.Max(up, dn) {
		t.Fatal("PathDelayWorst must be the max over launch edges")
	}
	if up <= 0 || dn <= 0 {
		t.Fatal("path delays must be positive")
	}
}

func TestPathDelayMeanBetweenEdges(t *testing.T) {
	m := model()
	pa := mkPath(mixed, 4, 2, 30)
	mean := m.PathDelayMean(pa)
	lo := math.Min(m.PathDelayLaunch(pa, true), m.PathDelayLaunch(pa, false))
	hi := math.Max(m.PathDelayLaunch(pa, true), m.PathDelayLaunch(pa, false))
	if mean < lo*0.8 || mean > hi*1.2 {
		t.Fatalf("mean %g far outside launch-edge band [%g, %g]", mean, lo, hi)
	}
}

func TestLoadAccounting(t *testing.T) {
	pa := mkPath([]gate.Type{gate.Inv, gate.Nand2}, 4, 3, 20)
	// Stage 0: next pin (4) + coff (3) + parasitic (1.0×4).
	if got, want := pa.LoadAt(0), 4+3+4.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("LoadAt(0) = %g, want %g", got, want)
	}
	if got, want := pa.ExternalLoadAt(0), 4.0+3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("ExternalLoadAt(0) = %g, want %g", got, want)
	}
	// Last stage: terminal only + own parasitic (1.5×4 for NAND2).
	if got, want := pa.LoadAt(1), 20+1.5*4; math.Abs(got-want) > 1e-12 {
		t.Fatalf("LoadAt(1) = %g, want %g", got, want)
	}
}

func TestAreaAndTotals(t *testing.T) {
	p := tech.CMOS025()
	pa := mkPath([]gate.Type{gate.Inv, gate.Nand2}, 4, 0, 20)
	// INV: 1 pin × 4 fF; NAND2: 2 pins × 4 fF → 12 fF → 6 µm at 2 fF/µm.
	if got := pa.Area(p); math.Abs(got-6) > 1e-12 {
		t.Fatalf("Area = %g, want 6", got)
	}
	if got := pa.TotalCIn(); got != 8 {
		t.Fatalf("TotalCIn = %g", got)
	}
}

func TestSensitivityMatchesNumericNoMiller(t *testing.T) {
	// With coupling disabled the frozen-B derivative is exact.
	m := model()
	m.CoupleMiller = false
	pa := mkPath(mixed, 5, 2, 40)
	b := m.BCoefficients(pa)
	for i := 1; i < pa.Len(); i++ {
		analytic := m.Sensitivity(pa, b, i)
		numeric := m.NumericSensitivity(pa, i, 1e-5)
		if math.Abs(analytic-numeric) > 1e-4*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("stage %d: analytic %g vs numeric %g", i, analytic, numeric)
		}
	}
}

func TestSensitivityCloseWithMiller(t *testing.T) {
	// With coupling on, the Miller factor's size dependence makes the
	// frozen-B derivative approximate (the paper's A_i absorb the same
	// dependence); it must stay within ~15% — close enough for the
	// fixed-point iterations to converge on the true optimum.
	m := model()
	pa := mkPath(mixed, 5, 2, 40)
	b := m.BCoefficients(pa)
	for i := 1; i < pa.Len(); i++ {
		analytic := m.Sensitivity(pa, b, i)
		numeric := m.NumericSensitivity(pa, i, 1e-5)
		if math.Abs(analytic-numeric) > 0.15*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("stage %d: analytic %g vs numeric %g", i, analytic, numeric)
		}
	}
}

func TestSensitivityQuickProperty(t *testing.T) {
	// Property: for random well-formed paths (no Miller), the analytic
	// derivative matches finite differences.
	m := model()
	m.CoupleMiller = false
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		types := make([]gate.Type, n)
		prim := []gate.Type{gate.Inv, gate.Nand2, gate.Nand3, gate.Nor2, gate.Nor3}
		for i := range types {
			types[i] = prim[r.Intn(len(prim))]
		}
		pa := mkPath(types, 2+10*r.Float64(), 5*r.Float64(), 10+40*r.Float64())
		for i := range pa.Stages {
			pa.Stages[i].CIn = 2 + 20*r.Float64()
		}
		b := m.BCoefficients(pa)
		i := 1 + r.Intn(n-1)
		analytic := m.Sensitivity(pa, b, i)
		numeric := m.NumericSensitivity(pa, i, 1e-5)
		return math.Abs(analytic-numeric) <= 1e-3*math.Max(1, math.Abs(numeric))
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPathConvexityAroundOptimum(t *testing.T) {
	// The mean path delay is convex in the sizes on a bounded path:
	// the midpoint of two random configurations is never slower than
	// the average of the endpoints.
	m := model()
	rng := rand.New(rand.NewSource(7))
	base := mkPath(mixed, 5, 2, 40)
	for trial := 0; trial < 200; trial++ {
		a := base.Clone()
		b := base.Clone()
		for i := 1; i < a.Len(); i++ {
			a.Stages[i].CIn = 2 + 30*rng.Float64()
			b.Stages[i].CIn = 2 + 30*rng.Float64()
		}
		mid := base.Clone()
		for i := 1; i < mid.Len(); i++ {
			mid.Stages[i].CIn = (a.Stages[i].CIn + b.Stages[i].CIn) / 2
		}
		da, db, dm := m.PathDelayMean(a), m.PathDelayMean(b), m.PathDelayMean(mid)
		if dm > (da+db)/2*(1+1e-9) {
			t.Fatalf("convexity violated: mid %g > avg(%g, %g)", dm, da, db)
		}
	}
}

func TestValidate(t *testing.T) {
	good := mkPath(mixed, 4, 2, 30)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Path)
	}{
		{"empty", func(pa *Path) { pa.Stages = nil }},
		{"zero tauin", func(pa *Path) { pa.TauIn = 0 }},
		{"zero size", func(pa *Path) { pa.Stages[2].CIn = 0 }},
		{"negative coff", func(pa *Path) { pa.Stages[1].COff = -1 }},
		{"no terminal", func(pa *Path) { pa.Stages[len(pa.Stages)-1].COff = 0 }},
		{"composite cell", func(pa *Path) { pa.Stages[1].Cell = gate.MustLookup(gate.And2) }},
	}
	for _, tc := range cases {
		pa := mkPath(mixed, 4, 2, 30)
		tc.mutate(pa)
		if err := pa.Validate(); err == nil {
			t.Fatalf("%s: expected validation error", tc.name)
		}
	}
}

func TestCloneAndSetSizes(t *testing.T) {
	pa := mkPath(mixed, 4, 2, 30)
	q := pa.Clone()
	q.Stages[1].CIn = 99
	if pa.Stages[1].CIn == 99 {
		t.Fatal("Clone aliases stages")
	}
	sizes := pa.Sizes()
	sizes[2] = 77
	if err := pa.SetSizes(sizes); err != nil {
		t.Fatal(err)
	}
	if pa.Stages[2].CIn != 77 {
		t.Fatal("SetSizes ineffective")
	}
	if err := pa.SetSizes(sizes[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestDefaultTauInPositive(t *testing.T) {
	if DefaultTauIn(tech.CMOS025()) <= 0 {
		t.Fatal("DefaultTauIn must be positive")
	}
}

func TestBufStageKeepsEdge(t *testing.T) {
	// A path of two inverters ends on the launch polarity; inserting a
	// BUF must not flip it. We check via delay symmetry: an INV-INV
	// path launched rising ends rising (two flips).
	m := model()
	pa := mkPath([]gate.Type{gate.Inv, gate.Buf, gate.Inv}, 4, 0, 20)
	up := m.PathDelayLaunch(pa, true)
	dn := m.PathDelayLaunch(pa, false)
	if up == dn {
		t.Fatal("edge tracking suspiciously symmetric")
	}
}

func TestWriteBack(t *testing.T) {
	// Stages linked to netlist nodes copy their sizes back.
	c := netlistForWriteBack(t)
	n := c.Node("g")
	pa := &Path{Name: "wb", TauIn: 50, Stages: []Stage{
		{Cell: gate.MustLookup(gate.Inv), CIn: 7.5, COff: 10, Node: n},
		{Cell: gate.MustLookup(gate.Inv), CIn: 3.5, COff: 10}, // no backlink
	}}
	pa.WriteBack()
	if n.CIn != 7.5 {
		t.Fatalf("WriteBack did not update the node: %g", n.CIn)
	}
}

func netlistForWriteBack(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("wb")
	if _, err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("g", gate.Inv, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddOutput("g", 8); err != nil {
		t.Fatal(err)
	}
	return c
}
