package delay

import (
	"testing"

	"repro/internal/gate"
	"repro/internal/tech"
)

func TestVtDelegatesExactlyAtSVT(t *testing.T) {
	m := NewModel(tech.CMOS025())
	inv := gate.MustLookup(gate.Inv)
	nand := gate.MustLookup(gate.Nand3)
	for _, c := range []gate.Cell{inv, nand} {
		cin, cl, tau := 3.4, 21.0, 55.0
		if m.GateDelayHLVt(c, cin, cl, tau, tech.SVT) != m.GateDelayHL(c, cin, cl, tau) {
			t.Fatalf("%v: HL delay at SVT diverged from the base model", c.Type)
		}
		if m.GateDelayLHVt(c, cin, cl, tau, tech.SVT) != m.GateDelayLH(c, cin, cl, tau) {
			t.Fatalf("%v: LH delay at SVT diverged from the base model", c.Type)
		}
		if m.TransitionHLVt(c, cin, cl, tech.SVT) != m.TransitionHL(c, cin, cl) {
			t.Fatalf("%v: HL transition at SVT diverged", c.Type)
		}
		if m.TransitionLHVt(c, cin, cl, tech.SVT) != m.TransitionLH(c, cin, cl) {
			t.Fatalf("%v: LH transition at SVT diverged", c.Type)
		}
	}
}

func TestVtDelayOrdering(t *testing.T) {
	m := NewModel(tech.CMOS025())
	c := gate.MustLookup(gate.Nand2)
	cin, cl, tau := 2.0, 15.0, 40.0
	lvt := m.GateDelayHLVt(c, cin, cl, tau, tech.LVT)
	svt := m.GateDelayHLVt(c, cin, cl, tau, tech.SVT)
	hvt := m.GateDelayHLVt(c, cin, cl, tau, tech.HVT)
	if !(lvt < svt && svt < hvt) {
		t.Fatalf("HL delay ordering broken: lvt %v svt %v hvt %v", lvt, svt, hvt)
	}
	lvt = m.GateDelayLHVt(c, cin, cl, tau, tech.LVT)
	svt = m.GateDelayLHVt(c, cin, cl, tau, tech.SVT)
	hvt = m.GateDelayLHVt(c, cin, cl, tau, tech.HVT)
	if !(lvt < svt && svt < hvt) {
		t.Fatalf("LH delay ordering broken: lvt %v svt %v hvt %v", lvt, svt, hvt)
	}
}

func TestVtTransitionScalesWithDrive(t *testing.T) {
	p := tech.CMOS025()
	m := NewModel(p)
	c := gate.MustLookup(gate.Inv)
	base := m.TransitionHL(c, 2.0, 20.0)
	hvt := m.TransitionHLVt(c, 2.0, 20.0, tech.HVT)
	if got, want := hvt, base/p.VtDriveN(tech.HVT); got != want {
		t.Fatalf("HVT transition %v, want %v", got, want)
	}
	if hvt <= base {
		t.Fatal("HVT transition must be slower than SVT")
	}
}

// TestVtHVTPenaltyModerate pins the speed cost of a promotion to the
// band the selective methodology assumes: an HVT gate is slower, but by
// tens of percent, not multiples — otherwise non-critical slack could
// never absorb it.
func TestVtHVTPenaltyModerate(t *testing.T) {
	m := NewModel(tech.CMOS025())
	c := gate.MustLookup(gate.Inv)
	base := m.GateDelayHLVt(c, 2.0, 20.0, 30.0, tech.SVT)
	hvt := m.GateDelayHLVt(c, 2.0, 20.0, 30.0, tech.HVT)
	ratio := hvt / base
	if ratio < 1.02 || ratio > 1.6 {
		t.Fatalf("HVT/SVT delay ratio %v outside the moderate-penalty band", ratio)
	}
}
