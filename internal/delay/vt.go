package delay

import (
	"repro/internal/gate"
	"repro/internal/tech"
)

// Vt-aware evaluation of the closed-form model. A non-SVT device shifts
// the reduced threshold of the eq. (1) slope term by ΔVT and scales the
// eq. (2) output transition by the inverse of the alpha-power drive
// ratio (a high-Vt gate switches less current, so its edges are slower).
// Every function delegates to its SVT counterpart bit-exactly when the
// class is SVT, so circuits that never leave the default class produce
// byte-identical timing to the pre-multi-Vt model — the invariant the
// engine's equivalence tests rely on.

// TransitionHLVt returns the falling output transition time (ps) of
// cell c at Vt class v.
func (m *Model) TransitionHLVt(c gate.Cell, cin, cl float64, v tech.VtClass) float64 {
	t := m.TransitionHL(c, cin, cl)
	if v != tech.SVT {
		t /= m.Proc.VtDriveN(v)
	}
	return t
}

// TransitionLHVt returns the rising output transition time (ps) of
// cell c at Vt class v.
func (m *Model) TransitionLHVt(c gate.Cell, cin, cl float64, v tech.VtClass) float64 {
	t := m.TransitionLH(c, cin, cl)
	if v != tech.SVT {
		t /= m.Proc.VtDriveP(v)
	}
	return t
}

// GateDelayHLVt returns the eq. (1) falling-output delay (ps) of cell c
// at Vt class v: input rising with transition time tauInLH, load cl.
func (m *Model) GateDelayHLVt(c gate.Cell, cin, cl, tauInLH float64, v tech.VtClass) float64 {
	if v == tech.SVT {
		return m.GateDelayHL(c, cin, cl, tauInLH)
	}
	t := m.millerFactor(m.Proc.MillerHL(), cin, cl) / 2 * m.TransitionHLVt(c, cin, cl, v)
	if m.SlopeEffect {
		t += m.Proc.VtShiftN(v) / 2 * tauInLH
	}
	return t
}

// GateDelayLHVt returns the eq. (1) rising-output delay (ps) of cell c
// at Vt class v: input falling with transition time tauInHL, load cl.
func (m *Model) GateDelayLHVt(c gate.Cell, cin, cl, tauInHL float64, v tech.VtClass) float64 {
	if v == tech.SVT {
		return m.GateDelayLH(c, cin, cl, tauInHL)
	}
	t := m.millerFactor(m.Proc.MillerLH(), cin, cl) / 2 * m.TransitionLHVt(c, cin, cl, v)
	if m.SlopeEffect {
		t += m.Proc.VtShiftP(v) / 2 * tauInHL
	}
	return t
}
