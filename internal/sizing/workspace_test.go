package sizing

import (
	"testing"
)

// TestNoTraceIdenticalResult pins the trace-suppression contract: the
// Iterations trajectory is pure observation, so Tmin with NoTrace must
// return bit-identical Delay/MeanDelay/Area/Sweeps — and leave the
// path in the bit-identical sizing state — as the traced run.
func TestNoTraceIdenticalResult(t *testing.T) {
	m := model()
	traced := mkPath(m.Proc, mixed, 120)
	quiet := mkPath(m.Proc, mixed, 120)

	rt, err := Tmin(m, traced, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rq, err := Tmin(m, quiet, Options{NoTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Iterations) == 0 {
		t.Fatal("traced run recorded no iterations")
	}
	if len(rq.Iterations) != 0 {
		t.Fatalf("NoTrace run recorded %d iterations", len(rq.Iterations))
	}
	if rt.Delay != rq.Delay || rt.MeanDelay != rq.MeanDelay || rt.Area != rq.Area || rt.Sweeps != rq.Sweeps {
		t.Fatalf("NoTrace diverged: %+v vs %+v", rq, rt)
	}
	for i := range traced.Stages {
		if traced.Stages[i].CIn != quiet.Stages[i].CIn {
			t.Fatalf("stage %d sized differently: %g vs %g", i, quiet.Stages[i].CIn, traced.Stages[i].CIn)
		}
	}

	// Same contract for the constraint-distribution step.
	tc := 1.4 * rt.Delay
	dTraced := mkPath(m.Proc, mixed, 120)
	dQuiet := mkPath(m.Proc, mixed, 120)
	dt, err := Distribute(m, dTraced, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dq, err := Distribute(m, dQuiet, tc, Options{NoTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if dt.Delay != dq.Delay || dt.Area != dq.Area || dt.A != dq.A {
		t.Fatalf("NoTrace Distribute diverged: %+v vs %+v", dq, dt)
	}
}

// TestWorkspaceIdenticalResult checks that a threaded workspace is
// invisible in the numbers: Tmin and Distribute through a (repeatedly
// reused) workspace produce bit-identical results and path states.
func TestWorkspaceIdenticalResult(t *testing.T) {
	m := model()
	ws := &Workspace{}
	for round := 0; round < 3; round++ {
		plain := mkPath(m.Proc, mixed, 120)
		wsPath := mkPath(m.Proc, mixed, 120)

		rp, err := Tmin(m, plain, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rw, err := Tmin(m, wsPath, Options{Workspace: ws})
		if err != nil {
			t.Fatal(err)
		}
		if rp.Delay != rw.Delay || rp.Area != rw.Area || rp.Sweeps != rw.Sweeps {
			t.Fatalf("round %d: workspace Tmin diverged: %+v vs %+v", round, rw, rp)
		}

		tc := 1.3 * rp.Delay
		dPlain := mkPath(m.Proc, mixed, 120)
		dWs := mkPath(m.Proc, mixed, 120)
		dp, err := Distribute(m, dPlain, tc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		dw, err := Distribute(m, dWs, tc, Options{Workspace: ws})
		if err != nil {
			t.Fatal(err)
		}
		if dp.Delay != dw.Delay || dp.Area != dw.Area || dp.A != dw.A {
			t.Fatalf("round %d: workspace Distribute diverged: %+v vs %+v", round, dw, dp)
		}
		for i := range dPlain.Stages {
			if dPlain.Stages[i].CIn != dWs.Stages[i].CIn {
				t.Fatalf("round %d stage %d sized differently: %g vs %g",
					round, i, dWs.Stages[i].CIn, dPlain.Stages[i].CIn)
			}
		}
	}
}

// TestWorkspaceSizingAllocationFree pins the perf contract of the
// workspace: once warmed, Tmin and Distribute with NoTrace+Workspace
// perform no heap allocation.
func TestWorkspaceSizingAllocationFree(t *testing.T) {
	m := model()
	ws := &Workspace{}
	opts := Options{NoTrace: true, Workspace: ws}
	pa := mkPath(m.Proc, mixed, 120)
	r, err := Tmin(m, pa, opts)
	if err != nil {
		t.Fatal(err)
	}
	tc := 1.3 * r.Delay

	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := Tmin(m, pa, opts); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Tmin with workspace allocated %.1f times per run", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := Distribute(m, pa, tc, opts); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Distribute with workspace allocated %.1f times per run", allocs)
	}
}
