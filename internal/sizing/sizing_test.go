package sizing

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/tech"
)

func model() *delay.Model { return delay.NewModel(tech.CMOS025()) }

var mixed = []gate.Type{gate.Inv, gate.Nand2, gate.Nor2, gate.Inv, gate.Nand3, gate.Inv, gate.Nor3, gate.Nand2, gate.Inv, gate.Nor2, gate.Inv}

func mkPath(p *tech.Process, types []gate.Type, terminal float64) *delay.Path {
	pa := &delay.Path{Name: "t", TauIn: delay.DefaultTauIn(p)}
	for _, ty := range types {
		pa.Stages = append(pa.Stages, delay.Stage{Cell: gate.MustLookup(ty), CIn: p.CRef, COff: 3})
	}
	pa.Stages[0].CIn = 2 * p.CRef
	pa.Stages[len(types)-1].COff = terminal
	return pa
}

func TestTmaxAllMinimum(t *testing.T) {
	m := model()
	pa := mkPath(m.Proc, mixed, 120)
	Tmax(m, pa)
	for i := 1; i < pa.Len(); i++ {
		if pa.Stages[i].CIn != m.Proc.CRef {
			t.Fatalf("stage %d not at minimum drive", i)
		}
	}
	if pa.Stages[0].CIn != 2*m.Proc.CRef {
		t.Fatal("Tmax must not touch the bounded first stage")
	}
}

func TestTminStationary(t *testing.T) {
	// The pure eq. (4) fixed point (no worst-edge polish) is a
	// stationary point of the edge-averaged objective.
	m := model()
	pa := mkPath(m.Proc, mixed, 120)
	r, err := Tmin(m, pa, Options{NoPolish: true})
	if err != nil {
		t.Fatal(err)
	}
	// At the fixed point every interior sensitivity vanishes.
	b := m.BCoefficients(pa)
	for i := 1; i < pa.Len(); i++ {
		s := m.Sensitivity(pa, b, i)
		scale := b[i] * pa.ExternalLoadAt(i) / (pa.Stages[i].CIn * pa.Stages[i].CIn)
		if math.Abs(s) > 1e-6*scale {
			t.Fatalf("stage %d sensitivity %g not stationary (scale %g)", i, s, scale)
		}
	}
	if r.Delay <= 0 || r.Area <= 0 {
		t.Fatal("degenerate Tmin result")
	}
}

func TestTminBelowTmax(t *testing.T) {
	m := model()
	pa := mkPath(m.Proc, mixed, 120)
	tmax := Tmax(m, pa.Clone())
	r, err := Tmin(m, pa, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Delay >= tmax {
		t.Fatalf("Tmin %g not below Tmax %g", r.Delay, tmax)
	}
}

func TestTminSeedIndependence(t *testing.T) {
	// The paper: "the final value Tmin is conserved whatever is the
	// initial solution, ie the CREF value". Vary the seed drive.
	m1 := model()
	pa1 := mkPath(m1.Proc, mixed, 120)
	r1, err := Tmin(m1, pa1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	proc2 := tech.CMOS025()
	proc2.CRef = proc2.CRef / 5 // smaller minimum drive: different seed
	m2 := delay.NewModel(proc2)
	pa2 := mkPath(m1.Proc, mixed, 120) // same path, same first stage
	r2, err := Tmin(m2, pa2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Interior optimum: the achieved minimum is seed-independent.
	if math.Abs(r1.Delay-r2.Delay) > 0.01*r1.Delay {
		t.Fatalf("Tmin depends on the seed: %g vs %g", r1.Delay, r2.Delay)
	}
}

func TestTminIterationTraceDecreases(t *testing.T) {
	m := model()
	pa := mkPath(m.Proc, mixed, 120)
	r, err := Tmin(m, pa, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Iterations) < 2 {
		t.Fatal("no iteration trace")
	}
	first := r.Iterations[0].Delay
	last := r.Iterations[len(r.Iterations)-1].Delay
	if last >= first {
		t.Fatalf("iterations did not reduce delay: %g → %g", first, last)
	}
	// The trace records the growing capacitance budget of Fig. 1.
	if r.Iterations[0].SumCInRef >= r.Iterations[len(r.Iterations)-1].SumCInRef {
		t.Fatal("ΣC_IN/CREF did not grow toward the optimum")
	}
}

func TestTminBeatsRandomSizings(t *testing.T) {
	m := model()
	pa := mkPath(m.Proc, mixed, 120)
	r, err := Tmin(m, pa, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		q := pa.Clone()
		for i := 1; i < q.Len(); i++ {
			q.Stages[i].CIn = m.Proc.ClampCap(m.Proc.CRef * math.Exp(rng.Float64()*6))
		}
		if d := m.PathDelayWorst(q); d < r.Delay*(1-1e-6) {
			t.Fatalf("random sizing beat Tmin: %g < %g", d, r.Delay)
		}
	}
}

func TestAtSensitivityZeroEqualsTmin(t *testing.T) {
	// a = 0 reproduces the unpolished link-equation minimum.
	m := model()
	pa := mkPath(m.Proc, mixed, 120)
	rt, err := Tmin(m, pa.Clone(), Options{NoPolish: true})
	if err != nil {
		t.Fatal(err)
	}
	r0, err := AtSensitivity(m, pa, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r0.Delay-rt.Delay) > 1e-4*rt.Delay {
		t.Fatalf("a=0 delay %g vs Tmin %g", r0.Delay, rt.Delay)
	}
	// The polished Tmin can only be faster on the worst edge.
	rp, err := Tmin(m, pa.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Delay > rt.Delay*(1+1e-9) {
		t.Fatalf("polish worsened Tmin: %g vs %g", rp.Delay, rt.Delay)
	}
}

func TestSensitivityFamilyMonotone(t *testing.T) {
	// More negative a → smaller area, larger delay (walking down the
	// convex trade-off front of Fig. 3).
	m := model()
	as := []float64{0, -0.02, -0.1, -0.5, -2, -8}
	var prevDelay, prevArea float64
	for i, a := range as {
		pa := mkPath(m.Proc, mixed, 120)
		r, err := AtSensitivity(m, pa, a, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if r.Delay < prevDelay*(1-1e-9) {
				t.Fatalf("a=%g delay %g below previous %g", a, r.Delay, prevDelay)
			}
			if r.Area > prevArea*(1+1e-9) {
				t.Fatalf("a=%g area %g above previous %g", a, r.Area, prevArea)
			}
		}
		prevDelay, prevArea = r.Delay, r.Area
	}
}

func TestAtSensitivityRejectsPositive(t *testing.T) {
	m := model()
	pa := mkPath(m.Proc, mixed, 120)
	if _, err := AtSensitivity(m, pa, 0.5, Options{}); err == nil {
		t.Fatal("positive sensitivity accepted")
	}
}

func TestDistributeMeetsConstraint(t *testing.T) {
	m := model()
	for _, ratio := range []float64{1.05, 1.2, 1.7, 2.5, 4} {
		pa := mkPath(m.Proc, mixed, 120)
		rt, err := Tmin(m, pa.Clone(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		tc := ratio * rt.Delay
		r, err := Distribute(m, pa, tc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Delay > tc*(1+1e-4) {
			t.Fatalf("ratio %g: delay %g misses Tc %g", ratio, r.Delay, tc)
		}
		if r.Area > rt.Area*(1+1e-9) {
			t.Fatalf("ratio %g: area %g above Tmin area %g", ratio, r.Area, rt.Area)
		}
	}
}

func TestDistributeAreaMonotoneInConstraint(t *testing.T) {
	m := model()
	pa0 := mkPath(m.Proc, mixed, 120)
	rt, _ := Tmin(m, pa0.Clone(), Options{})
	var prev float64 = math.Inf(1)
	for _, ratio := range []float64{1.05, 1.3, 1.8, 2.5, 4} {
		pa := mkPath(m.Proc, mixed, 120)
		r, err := Distribute(m, pa, ratio*rt.Delay, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Area > prev*(1+1e-9) {
			t.Fatalf("area not monotone: %g after %g at ratio %g", r.Area, prev, ratio)
		}
		prev = r.Area
	}
}

func TestDistributeInfeasible(t *testing.T) {
	m := model()
	pa := mkPath(m.Proc, mixed, 120)
	rt, _ := Tmin(m, pa.Clone(), Options{})
	_, err := Distribute(m, pa, 0.8*rt.Delay, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestDistributeLooseConstraintAllMinimum(t *testing.T) {
	m := model()
	pa := mkPath(m.Proc, mixed, 120)
	tmax := Tmax(m, pa.Clone())
	r, err := Distribute(m, pa, tmax*2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < pa.Len(); i++ {
		if pa.Stages[i].CIn != m.Proc.CRef {
			t.Fatalf("loose constraint: stage %d not at minimum", i)
		}
	}
	if r.Delay > tmax*(1+1e-9) {
		t.Fatal("all-minimum exceeds Tmax")
	}
}

func TestDistributeQuickProperty(t *testing.T) {
	// Random paths and ratios: Distribute always meets the constraint
	// when it reports success.
	m := model()
	prim := []gate.Type{gate.Inv, gate.Nand2, gate.Nand3, gate.Nor2, gate.Nor3, gate.Nand4, gate.Nor4}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(10)
		types := make([]gate.Type, n)
		for i := range types {
			types[i] = prim[r.Intn(len(prim))]
		}
		pa := mkPath(m.Proc, types, 20+200*r.Float64())
		for i := range pa.Stages {
			pa.Stages[i].COff = 8 * r.Float64()
		}
		pa.Stages[n-1].COff = 20 + 200*r.Float64()
		rt, err := Tmin(m, pa.Clone(), Options{})
		if err != nil {
			return false
		}
		tc := rt.Delay * (1.05 + 2*r.Float64())
		res, err := Distribute(m, pa, tc, Options{})
		if err != nil {
			return false
		}
		return res.Delay <= tc*(1+1e-4)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSutherlandMeetsConstraintButCostsMore(t *testing.T) {
	// The paper's §3.2 claim (Fig. 4): the constant sensitivity method
	// yields smaller area than the equal-delay distribution at the
	// same constraint.
	m := model()
	pa := mkPath(m.Proc, mixed, 120)
	rt, _ := Tmin(m, pa.Clone(), Options{})
	tc := 1.4 * rt.Delay

	cs := mkPath(m.Proc, mixed, 120)
	rCS, err := Distribute(m, cs, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	su := mkPath(m.Proc, mixed, 120)
	rSU, err := SutherlandDistribute(m, su, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Sutherland must roughly meet the budget…
	if rSU.Delay > tc*1.1 {
		t.Fatalf("Sutherland delay %g far above Tc %g", rSU.Delay, tc)
	}
	// …and cost strictly more area.
	if rSU.Area <= rCS.Area {
		t.Fatalf("Sutherland area %g not above constant-sensitivity %g", rSU.Area, rCS.Area)
	}
}

func TestDistributeRespectsFirstStage(t *testing.T) {
	m := model()
	pa := mkPath(m.Proc, mixed, 120)
	first := pa.Stages[0].CIn
	rt, _ := Tmin(m, pa.Clone(), Options{})
	if _, err := Distribute(m, pa, 1.5*rt.Delay, Options{}); err != nil {
		t.Fatal(err)
	}
	if pa.Stages[0].CIn != first {
		t.Fatal("bounded first stage was resized")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxSweeps <= 0 || o.Tol <= 0 || o.SearchIter <= 0 || o.DelayTol <= 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
}
