// Package sizing implements §3 of the paper: optimization with
// structure conservation.
//
//   - Delay-space exploration (§3.1): the pseudo-upper bound Tmax (all
//     gates at the minimum available drive) and the minimum achievable
//     delay Tmin, obtained as the fixed point of the link equations
//     (eq. 4) derived by canceling ∂T/∂C_IN(i) on the bounded path.
//   - Constraint distribution (§3.2): the constant sensitivity method
//     (eq. 5-6) — impose ∂T/∂C_IN(i) = a on every gate and search the
//     scalar a ≤ 0 for the delay constraint, which by convexity sizes
//     the path at minimum area; and the Sutherland/Mead equal-delay
//     distribution used as the comparison baseline.
package sizing

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/delay"
)

// ErrInfeasible is returned when the delay constraint lies below the
// minimum achievable delay of the path — the paper's trigger for
// structure modification (§4).
var ErrInfeasible = errors.New("sizing: delay constraint below minimum achievable delay")

// Options tunes the iterative solvers. The zero value selects defaults.
type Options struct {
	// MaxSweeps bounds the link-equation fixed-point sweeps (default 200).
	MaxSweeps int
	// Tol is the relative convergence tolerance on sizes (default 1e-10).
	Tol float64
	// SearchIter bounds the bisection steps on the sensitivity a
	// (default 80).
	SearchIter int
	// DelayTol is the relative tolerance on meeting the delay
	// constraint (default 1e-6).
	DelayTol float64
	// NoPolish disables the worst-edge coordinate-descent refinement
	// that follows the link-equation fixed point in Tmin. The fixed
	// point minimizes the edge-averaged objective; the polish descends
	// the (also convex) worst-launch-edge delay that experiments
	// report. Disable to study the pure eq. (4) method.
	NoPolish bool
	// NoTrace suppresses the Result.Iterations bookkeeping of Tmin —
	// the per-sweep trajectory only Fig. 1 consumes. Hot callers (the
	// protocol's round loop, the batch engine) set it; the trace is
	// pure observation, so Delay/Area/Sweeps are identical either way
	// (pinned by TestNoTraceIdenticalResult).
	NoTrace bool
	// Workspace, when non-nil, supplies reusable scratch for the
	// solvers: B-coefficient and snapshot buffers plus the Result
	// values themselves. Results returned by Tmin, AtSensitivity,
	// Distribute and SutherlandDistribute then point into the
	// workspace and are only valid until the next sizing call with the
	// same workspace — copy what must outlive the round. A workspace
	// must not be shared across goroutines.
	Workspace *Workspace
}

// Workspace is the reusable scratch of the sizing solvers: with one
// threaded through Options, a steady-state Tmin/Distribute call
// performs no heap allocation. The zero value is ready to use.
type Workspace struct {
	b     []float64 // BCoefficients buffer, reused every sweep
	sizes []float64 // sizing snapshot buffer (Distribute)
	tmin  Result    // result slot for Tmin
	dist  Result    // result slot for AtSensitivity/Distribute/Sutherland
}

// bcoefs computes the B coefficients, through the workspace buffer
// when one is configured.
func bcoefs(m *delay.Model, pa *delay.Path, ws *Workspace) []float64 {
	if ws == nil {
		return m.BCoefficients(pa)
	}
	ws.b = m.BCoefficientsInto(ws.b, pa)
	return ws.b
}

// reset clears a workspace result slot for reuse, keeping the
// Iterations capacity for traced runs.
func (r *Result) reset() *Result {
	iters := r.Iterations[:0]
	*r = Result{}
	r.Iterations = iters
	return r
}

// tminResult returns the Result a Tmin run writes into: the
// workspace's dedicated slot, or a fresh allocation.
func (o Options) tminResult() *Result {
	if o.Workspace != nil {
		return o.Workspace.tmin.reset()
	}
	return &Result{}
}

// distResult is tminResult for the constraint-distribution family
// (AtSensitivity, Distribute, SutherlandDistribute). A separate slot
// keeps a Tmin result alive across the distribution probes that
// follow it inside Distribute.
func (o Options) distResult() *Result {
	if o.Workspace != nil {
		return o.Workspace.dist.reset()
	}
	return &Result{}
}

func (o Options) withDefaults() Options {
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 140
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.SearchIter <= 0 {
		o.SearchIter = 60
	}
	if o.DelayTol <= 0 {
		o.DelayTol = 1e-6
	}
	return o
}

// IterationPoint records one sweep of the Tmin fixed point for Fig. 1:
// the normalized total input capacitance and the worst path delay.
type IterationPoint struct {
	Sweep     int
	SumCInRef float64 // ΣC_IN / CREF
	Delay     float64 // worst-edge path delay (ps)
}

// Result reports a sizing run.
type Result struct {
	Delay      float64 // worst-edge path delay after sizing (ps)
	MeanDelay  float64 // edge-averaged path delay (ps)
	Area       float64 // ΣW (µm)
	Sweeps     int     // fixed-point sweeps performed
	A          float64 // final sensitivity coefficient (constant-sensitivity runs)
	Iterations []IterationPoint
}

// Tmax configures the path at the pseudo-upper bound: every gate at the
// minimum available drive (§3.1), except the bounded first stage, and
// returns the resulting worst-edge delay.
func Tmax(m *delay.Model, pa *delay.Path) float64 {
	for i := 1; i < len(pa.Stages); i++ {
		pa.Stages[i].CIn = m.Proc.CRef
	}
	return m.PathDelayWorst(pa)
}

// Tmin sizes the path for minimum delay by iterating the link equations
// (eq. 4) to their fixed point and returns the achieved bound. Per the
// paper, the iteration is seeded by a backward pass from the known
// terminal load with C_IN(i-1) = CREF; the fixed point is independent
// of the seed (a property test exercises this). The first stage's input
// capacitance is fixed (bounded path) and never modified.
func Tmin(m *delay.Model, pa *delay.Path, opts Options) (*Result, error) {
	o := opts.withDefaults()
	if err := pa.Validate(); err != nil {
		return nil, err
	}
	n := len(pa.Stages)
	res := o.tminResult()

	// Backward seeding pass (§3.1): assume the upstream drive is CREF,
	// walk from the output where the load is known.
	b := bcoefs(m, pa, o.Workspace)
	for i := n - 1; i >= 1; i-- {
		li := pa.ExternalLoadAt(i)
		x := math.Sqrt(b[i] / b[i-1] * m.Proc.CRef * li)
		pa.Stages[i].CIn = m.Proc.ClampCap(x)
	}
	if !o.NoTrace {
		res.Iterations = append(res.Iterations, IterationPoint{
			Sweep: 0, SumCInRef: pa.TotalCIn() / m.Proc.CRef, Delay: m.PathDelayWorst(pa),
		})
	}

	// Gauss-Seidel sweeps of eq. (4) until the sizes stop moving.
	for sweep := 1; sweep <= o.MaxSweeps; sweep++ {
		b = bcoefs(m, pa, o.Workspace)
		maxRel := 0.0
		for i := 1; i < n; i++ {
			li := pa.ExternalLoadAt(i)
			x := math.Sqrt(b[i] / b[i-1] * pa.Stages[i-1].CIn * li)
			x = m.Proc.ClampCap(x)
			if old := pa.Stages[i].CIn; old > 0 {
				if rel := math.Abs(x-old) / old; rel > maxRel {
					maxRel = rel
				}
			}
			pa.Stages[i].CIn = x
		}
		res.Sweeps = sweep
		if !o.NoTrace {
			res.Iterations = append(res.Iterations, IterationPoint{
				Sweep: sweep, SumCInRef: pa.TotalCIn() / m.Proc.CRef, Delay: m.PathDelayWorst(pa),
			})
		}
		if maxRel < o.Tol {
			break
		}
	}

	// Worst-edge polish: the link equations minimize the edge-averaged
	// delay; the reported metric is the worst launch edge, whose delay
	// is also convex in the sizes (a max of convex functions), so a
	// coordinate golden-section descent converges to its optimum.
	if !o.NoPolish {
		polishWorstEdge(m, pa)
		if !o.NoTrace {
			res.Iterations = append(res.Iterations, IterationPoint{
				Sweep:     res.Sweeps + 1,
				SumCInRef: pa.TotalCIn() / m.Proc.CRef,
				Delay:     m.PathDelayWorst(pa),
			})
		}
	}
	res.Delay = m.PathDelayWorst(pa)
	res.MeanDelay = m.PathDelayMean(pa)
	res.Area = pa.Area(m.Proc)
	return res, nil
}

// polishWorstEdge performs cyclic coordinate descent on the worst-edge
// path delay, one golden-section line search per interior stage.
func polishWorstEdge(m *delay.Model, pa *delay.Path) {
	const phi = 0.6180339887498949
	n := len(pa.Stages)
	cur := m.PathDelayWorst(pa)
	for sweep := 0; sweep < 8; sweep++ {
		improved := false
		for i := 1; i < n; i++ {
			// The fixed point is already near-optimal: search a
			// bracket around the current size (re-centered by later
			// sweeps if the optimum sits at an edge).
			x0 := pa.Stages[i].CIn
			lo := math.Max(m.Proc.CRef, x0/4)
			hi := math.Min(m.Proc.CMax, x0*4)
			at := func(x float64) float64 {
				pa.Stages[i].CIn = x
				return m.PathDelayWorst(pa)
			}
			x1 := hi - phi*(hi-lo)
			x2 := lo + phi*(hi-lo)
			f1, f2 := at(x1), at(x2)
			for it := 0; it < 48 && hi-lo > 1e-9*hi; it++ {
				if f1 < f2 {
					hi, x2, f2 = x2, x1, f1
					x1 = hi - phi*(hi-lo)
					f1 = at(x1)
				} else {
					lo, x1, f1 = x1, x2, f2
					x2 = lo + phi*(hi-lo)
					f2 = at(x2)
				}
			}
			best, bx := f1, x1
			if f2 < f1 {
				best, bx = f2, x2
			}
			if best < cur*(1-1e-12) {
				pa.Stages[i].CIn = bx
				cur = best
				improved = true
			} else {
				pa.Stages[i].CIn = x0
			}
		}
		if !improved {
			break
		}
	}
}

// AreaWeight returns the marginal area cost of a stage's input
// capacitance: a cell with fan-in k realizes a pin capacitance on
// every input, so ∂(ΣW)/∂C_IN = k/Cg. The minimum-area sensitivity
// condition is therefore ∂T/∂C_IN(i) = a·k_i (the KKT stationarity of
// area under the delay constraint); with all weights 1 the method
// degenerates to minimizing total capacitance (≈ dynamic power), the
// form eq. (5) prints.
func AreaWeight(st *delay.Stage) float64 { return float64(st.Cell.FanIn) }

// solveSensitivity sizes the path for a fixed sensitivity coefficient
// a ≤ 0 by iterating eq. (6): forward recursions
//
//	C_IN(i) = sqrt( A_i·L_i / (A_{i-1}/C_IN(i-1) − a·k_i) )
//
// until convergence (L_i depends on the downstream size, so a few outer
// sweeps are needed). Sizes are clamped to the realizable drive range.
func solveSensitivity(m *delay.Model, pa *delay.Path, a float64, o Options) int {
	n := len(pa.Stages)
	sweeps := 0
	for sweep := 1; sweep <= o.MaxSweeps; sweep++ {
		b := bcoefs(m, pa, o.Workspace)
		maxRel := 0.0
		for i := 1; i < n; i++ {
			li := pa.ExternalLoadAt(i)
			den := b[i-1]/pa.Stages[i-1].CIn - a*AreaWeight(&pa.Stages[i])
			// a ≤ 0 keeps den > 0; defensive clamp for a > 0 probes.
			if den < 1e-12 {
				den = 1e-12
			}
			x := math.Sqrt(b[i] * li / den)
			x = m.Proc.ClampCap(x)
			if old := pa.Stages[i].CIn; old > 0 {
				if rel := math.Abs(x-old) / old; rel > maxRel {
					maxRel = rel
				}
			}
			pa.Stages[i].CIn = x
		}
		sweeps = sweep
		if maxRel < o.Tol {
			break
		}
	}
	return sweeps
}

// AtSensitivity sizes the path with the constant sensitivity method for
// a given coefficient a ≤ 0 and reports the resulting delay and area —
// one point of the paper's Fig. 3 family.
func AtSensitivity(m *delay.Model, pa *delay.Path, a float64, opts Options) (*Result, error) {
	o := opts.withDefaults()
	if err := pa.Validate(); err != nil {
		return nil, err
	}
	if a > 0 {
		return nil, fmt.Errorf("sizing: sensitivity coefficient must be ≤ 0, got %g", a)
	}
	sweeps := solveSensitivity(m, pa, a, o)
	res := o.distResult()
	res.Delay = m.PathDelayWorst(pa)
	res.MeanDelay = m.PathDelayMean(pa)
	res.Area = pa.Area(m.Proc)
	res.Sweeps = sweeps
	res.A = a
	return res, nil
}

// Distribute implements the paper's constraint-distribution step: size
// the path so its worst-edge delay meets the constraint tc (ps) at
// minimum area, by searching the sensitivity coefficient a. It returns
// ErrInfeasible when tc < Tmin (structure modification required).
func Distribute(m *delay.Model, pa *delay.Path, tc float64, opts Options) (*Result, error) {
	o := opts.withDefaults()
	if err := pa.Validate(); err != nil {
		return nil, err
	}

	// Feasibility: a = 0 is the minimum-delay point of the family. The
	// worst-edge polish is skipped here — the distribution step only
	// needs the family's own minimum, and the polish would dominate
	// the method's CPU time on long paths (Table 1 measures this step).
	oNoPolish := opts
	oNoPolish.NoPolish = true
	rmin, err := Tmin(m, pa, oNoPolish)
	if err != nil {
		return nil, err
	}
	if tc < rmin.Delay*(1-o.DelayTol) {
		// The constraint sits below the family's minimum. The
		// worst-edge polish can still shave a little: accept tc in
		// the window [polished Tmin, family Tmin), so Distribute
		// agrees with the bound Tmin reports.
		if !opts.NoPolish {
			rp, errP := Tmin(m, pa, opts)
			if errP != nil {
				return nil, errP
			}
			if tc >= rp.Delay*(1-o.DelayTol) {
				rp.A = 0
				return rp, nil
			}
			rmin = rp
		}
		return rmin, fmt.Errorf("%w: Tc=%.1f ps < Tmin=%.1f ps", ErrInfeasible, tc, rmin.Delay)
	}
	if tc <= rmin.Delay*(1+o.DelayTol) {
		rmin.A = 0
		return rmin, nil
	}

	// If even the all-minimum configuration meets tc, take it: maximum
	// area saving (the sensitivity family degenerates to the clamp).
	var snapshot []float64
	if ws := o.Workspace; ws != nil {
		ws.sizes = pa.AppendSizes(ws.sizes[:0])
		snapshot = ws.sizes
	} else {
		snapshot = pa.Sizes()
	}
	tmax := Tmax(m, pa)
	if tmax <= tc {
		res := o.distResult()
		res.Delay = tmax
		res.MeanDelay = m.PathDelayMean(pa)
		res.Area = pa.Area(m.Proc)
		res.A = math.Inf(-1)
		return res, nil
	}
	if err := pa.SetSizes(snapshot); err != nil {
		return nil, err
	}

	// Bracket: T(a) increases as a becomes more negative. Expand aLo
	// until T(aLo) ≥ tc.
	aLo := -0.02
	var lastDelay float64
	for range [64]int{} {
		r, err := AtSensitivity(m, pa, aLo, opts)
		if err != nil {
			return nil, err
		}
		lastDelay = r.Delay
		if lastDelay >= tc {
			break
		}
		aLo *= 4
	}
	if lastDelay < tc {
		// Clamping saturated the family before reaching tc; the
		// all-minimum case above should have caught this, but guard.
		return AtSensitivity(m, pa, aLo, opts)
	}

	// Bisection between aLo (delay ≥ tc) and aHi = 0 (delay = Tmin < tc).
	// Only the accepted coefficient is tracked (not the Result pointer):
	// probe results may live in a shared workspace slot, and the value
	// is all the epilogue needs.
	aHi := 0.0
	bestA := aHi
	for iter := 0; iter < o.SearchIter; iter++ {
		mid := (aLo + aHi) / 2
		r, err := AtSensitivity(m, pa, mid, opts)
		if err != nil {
			return nil, err
		}
		if r.Delay > tc {
			aLo = mid
		} else {
			aHi = mid
			bestA = mid
		}
		if math.Abs(r.Delay-tc) <= o.DelayTol*tc {
			bestA = mid
			break
		}
	}
	// Re-solve at the accepted coefficient so the path state matches
	// the returned result (the last bisection probe may have been a
	// rejected one).
	r, err := AtSensitivity(m, pa, bestA, opts)
	if err != nil {
		return nil, err
	}
	// Area trim: the family is stationary for the frozen-coefficient
	// mean model; a constrained coordinate descent on the exact
	// worst-edge delay recovers the last few percent of area. The
	// feasible set in each coordinate is an interval (convexity), so
	// per-stage bisection toward the lower boundary is sound.
	if !opts.NoPolish {
		trimArea(m, pa, tc)
		r.Delay = m.PathDelayWorst(pa)
		r.MeanDelay = m.PathDelayMean(pa)
		r.Area = pa.Area(m.Proc)
	}
	return r, nil
}

// trimArea shrinks each stage toward the smallest size that keeps the
// worst-edge path delay within tc, sweeping until no stage moves.
func trimArea(m *delay.Model, pa *delay.Path, tc float64) {
	n := len(pa.Stages)
	for sweep := 0; sweep < 3; sweep++ {
		moved := false
		for i := 1; i < n; i++ {
			cur := pa.Stages[i].CIn
			lo, hi := m.Proc.CRef, cur
			if lo >= hi {
				continue
			}
			pa.Stages[i].CIn = lo
			if m.PathDelayWorst(pa) <= tc {
				if cur != lo {
					moved = true
				}
				continue // the minimum drive is feasible: keep it
			}
			// Bisect the feasibility boundary in [lo, hi]; 0.1%
			// precision is plenty for an area cleanup.
			for it := 0; it < 14 && hi-lo > 1e-3*hi; it++ {
				mid := (lo + hi) / 2
				pa.Stages[i].CIn = mid
				if m.PathDelayWorst(pa) <= tc {
					hi = mid
				} else {
					lo = mid
				}
			}
			pa.Stages[i].CIn = hi
			if hi < cur*(1-1e-3) {
				moved = true
			}
		}
		if !moved {
			break
		}
	}
}

// SutherlandDistribute is the baseline constraint distribution of §3.2
// (after Sutherland's logical effort / Mead's equal-tapering rule): the
// same delay budget tc/n is imposed on every stage, solved backward
// from the known terminal load. It is fast but oversizes gates with
// large logical weight — the effect Fig. 4 quantifies.
func SutherlandDistribute(m *delay.Model, pa *delay.Path, tc float64, opts Options) (*Result, error) {
	if err := pa.Validate(); err != nil {
		return nil, err
	}
	n := len(pa.Stages)
	budget := tc / float64(n)

	// Backward per-stage solve of budget = B_i·C_L(i)/x_i with
	// C_L(i) = L_i + pf_i·x_i:  x_i = B_i·L_i / (budget − B_i·pf_i).
	// A couple of outer sweeps refresh the frozen Miller factors.
	for sweep := 0; sweep < 8; sweep++ {
		b := bcoefs(m, pa, opts.Workspace)
		for i := n - 1; i >= 1; i-- {
			li := pa.ExternalLoadAt(i)
			den := budget - b[i]*pa.Stages[i].Cell.ParasiticFactor
			var x float64
			if den <= 0 {
				x = m.Proc.CMax // stage cannot meet its budget: saturate
			} else {
				x = b[i] * li / den
			}
			pa.Stages[i].CIn = m.Proc.ClampCap(x)
		}
	}
	res := opts.distResult()
	res.Delay = m.PathDelayWorst(pa)
	res.MeanDelay = m.PathDelayMean(pa)
	res.Area = pa.Area(m.Proc)
	return res, nil
}
