package amps

import (
	"math"
	"testing"

	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/sizing"
	"repro/internal/tech"
)

func model() *delay.Model { return delay.NewModel(tech.CMOS025()) }

var mixed = []gate.Type{gate.Inv, gate.Nand2, gate.Nor2, gate.Inv, gate.Nand3, gate.Inv, gate.Nor3, gate.Inv}

func mkPath(p *tech.Process) *delay.Path {
	pa := &delay.Path{Name: "amps", TauIn: delay.DefaultTauIn(p)}
	for _, ty := range mixed {
		pa.Stages = append(pa.Stages, delay.Stage{Cell: gate.MustLookup(ty), CIn: p.CRef, COff: 4})
	}
	pa.Stages[0].CIn = 2 * p.CRef
	pa.Stages[len(mixed)-1].COff = 90
	return pa
}

func TestMinimizeDelayConvergesAbovePOPS(t *testing.T) {
	// The Fig. 2 shape: the greedy discrete sizer cannot beat the
	// convex optimum, and lands within a modest factor of it.
	m := model()
	pops := mkPath(m.Proc)
	rPops, err := sizing.Tmin(m, pops, sizing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pa := mkPath(m.Proc)
	rAmps, err := MinimizeDelay(m, pa, Options{Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rAmps.Delay < rPops.Delay*(1-1e-9) {
		t.Fatalf("discrete greedy beat the convex optimum: %g < %g", rAmps.Delay, rPops.Delay)
	}
	if rAmps.Delay > rPops.Delay*1.5 {
		t.Fatalf("baseline too weak: %g vs POPS %g", rAmps.Delay, rPops.Delay)
	}
	if rAmps.Moves == 0 || rAmps.Evals == 0 {
		t.Fatal("no work recorded")
	}
	if rAmps.Elapsed <= 0 {
		t.Fatal("elapsed not measured")
	}
}

func TestSizeToConstraintMeetsTc(t *testing.T) {
	m := model()
	ref := mkPath(m.Proc)
	rPops, _ := sizing.Tmin(m, ref, sizing.Options{})
	tc := 1.4 * rPops.Delay
	pa := mkPath(m.Proc)
	res, err := SizeToConstraint(m, pa, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay > tc {
		t.Fatalf("constraint missed: %g > %g", res.Delay, tc)
	}
	// The applied path matches the result.
	if math.Abs(m.PathDelayWorst(pa)-res.Delay) > 1e-9*res.Delay {
		t.Fatal("path state out of sync with result")
	}
}

func TestSizeToConstraintCostsMoreThanPOPS(t *testing.T) {
	// The Fig. 4 shape: at equal constraint the industrial-style
	// baseline uses at least as much area as the constant-sensitivity
	// distribution.
	m := model()
	ref := mkPath(m.Proc)
	rPops, _ := sizing.Tmin(m, ref, sizing.Options{})
	tc := 1.2 * rPops.Delay

	popsPath := mkPath(m.Proc)
	rDist, err := sizing.Distribute(m, popsPath, tc, sizing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ampsPath := mkPath(m.Proc)
	rAmps, err := SizeToConstraint(m, ampsPath, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rAmps.Area < rDist.Area*0.98 {
		t.Fatalf("baseline area %g below POPS %g", rAmps.Area, rDist.Area)
	}
}

func TestSizeToConstraintUnreachable(t *testing.T) {
	m := model()
	pa := mkPath(m.Proc)
	res, err := SizeToConstraint(m, pa, 1, Options{Restarts: 1}) // 1 ps: impossible
	if err == nil {
		t.Fatal("impossible constraint accepted")
	}
	if res == nil || res.Delay <= 0 {
		t.Fatal("best-effort result missing")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	m := model()
	a := mkPath(m.Proc)
	b := mkPath(m.Proc)
	ra, err := MinimizeDelay(m, a, Options{Seed: 42, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := MinimizeDelay(m, b, Options{Seed: 42, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Delay != rb.Delay || ra.Area != rb.Area {
		t.Fatal("same seed produced different results")
	}
}

func TestRestartsCanOnlyHelp(t *testing.T) {
	m := model()
	one := mkPath(m.Proc)
	many := mkPath(m.Proc)
	r1, err := MinimizeDelay(m, one, Options{Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := MinimizeDelay(m, many, Options{Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Delay > r1.Delay*(1+1e-9) {
		t.Fatalf("more restarts made it worse: %g vs %g", r4.Delay, r1.Delay)
	}
}

func TestGrid(t *testing.T) {
	g := newGrid(1.7, 1700, math.Sqrt2)
	if g.sizes[0] != 1.7 {
		t.Fatal("grid must start at CREF")
	}
	if g.sizes[len(g.sizes)-1] != 1700 {
		t.Fatal("grid must end at CMAX")
	}
	for i := 1; i < len(g.sizes); i++ {
		if g.sizes[i] <= g.sizes[i-1] {
			t.Fatal("grid not increasing")
		}
	}
	if g.clampIndex(-3) != 0 || g.clampIndex(len(g.sizes)+5) != len(g.sizes)-1 {
		t.Fatal("clampIndex broken")
	}
}

func TestRunRejectsInvalidPath(t *testing.T) {
	m := model()
	pa := &delay.Path{Name: "bad"}
	if _, err := MinimizeDelay(m, pa, Options{}); err == nil {
		t.Fatal("invalid path accepted")
	}
}

func TestCPUGapAgainstPOPS(t *testing.T) {
	// Table 1 shape: the baseline needs orders of magnitude more path
	// evaluations than the closed-form recursion needs sweeps.
	m := model()
	pa := mkPath(m.Proc)
	rPops, err := sizing.Tmin(m, pa.Clone(), sizing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rAmps, err := MinimizeDelay(m, pa, Options{Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Each baseline eval is a full path sweep; POPS does a handful of
	// closed-form sweeps. Even on this 8-stage path the gap is large;
	// the Table 1 benchmark measures the wall-clock ratio on the real
	// suite.
	if rAmps.Evals < 5*rPops.Sweeps {
		t.Fatalf("baseline suspiciously cheap: %d evals vs %d sweeps", rAmps.Evals, rPops.Sweeps)
	}
}
