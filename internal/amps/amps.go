// Package amps is the reproduction's stand-in for the industrial
// transistor-sizing tool the paper benchmarks POPS against (AMPS, from
// Synopsys). See DESIGN.md for the substitution argument.
//
// The substitute models the documented character of such tools: an
// iterative, evaluation-driven sizer over a discrete size grid —
// a TILOS-style greedy ascent that re-evaluates the full path delay
// for every candidate move, optionally restarted from pseudo-random
// configurations (the "pseudo-random sizing technique" the paper
// mentions under Fig. 2). The consequences the paper measures emerge
// naturally:
//
//   - every move costs a full path evaluation sweep, so the CPU time is
//     orders of magnitude above POPS's closed-form recursions (Table 1);
//   - the discrete grid and greedy myopia leave the final delay above
//     the true convex minimum (Fig. 2) and the final area above the
//     constant-sensitivity optimum at equal constraint (Fig. 4).
package amps

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/delay"
)

// Options tunes the baseline sizer.
type Options struct {
	// StepRatio is the geometric spacing of the discrete size grid
	// (default √2 ≈ 1.414, a typical drive-strength progression).
	StepRatio float64
	// Restarts is the number of pseudo-random restarts (default 3).
	Restarts int
	// MaxMoves bounds the greedy moves per restart (default 20000).
	MaxMoves int
	// Seed drives the pseudo-random restarts (default 1).
	Seed int64
	// GuardBand is the safety margin industrial flows apply against
	// load-estimation uncertainty (paper §2: "very large safety
	// margin resulting in oversized designs"). SizeToConstraint
	// internally targets tc·(1−GuardBand). Default 0.12; set negative
	// to disable.
	GuardBand float64
}

func (o Options) withDefaults() Options {
	if o.StepRatio <= 1 {
		o.StepRatio = math.Sqrt2
	}
	if o.Restarts <= 0 {
		o.Restarts = 3
	}
	if o.MaxMoves <= 0 {
		o.MaxMoves = 20000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.GuardBand == 0 {
		o.GuardBand = 0.12
	}
	if o.GuardBand < 0 {
		o.GuardBand = 0
	}
	return o
}

// Result reports a baseline sizing run.
type Result struct {
	Delay   float64       // worst-edge path delay (ps)
	Area    float64       // ΣW (µm)
	Moves   int           // accepted greedy moves
	Evals   int           // full path-delay evaluations performed
	Elapsed time.Duration // wall-clock time of the run
}

// grid is the discrete drive ladder shared by all stages.
type grid struct {
	sizes []float64
}

func newGrid(cref, cmax, ratio float64) grid {
	var s []float64
	for c := cref; c < cmax; c *= ratio {
		s = append(s, c)
	}
	s = append(s, cmax)
	return grid{sizes: s}
}

func (g grid) clampIndex(i int) int {
	if i < 0 {
		return 0
	}
	if i >= len(g.sizes) {
		return len(g.sizes) - 1
	}
	return i
}

// state is one sizing configuration on the grid.
type state struct {
	idx []int // per-stage grid index; idx[0] is fixed (bounded path)
}

func (s state) apply(g grid, pa *delay.Path) {
	for i := 1; i < len(pa.Stages); i++ {
		pa.Stages[i].CIn = g.sizes[s.idx[i]]
	}
}

type mode int

const (
	modeMinDelay mode = iota
	modeConstraint
)

// MinimizeDelay drives the path to its greedy minimum delay: from each
// start, repeatedly apply the single up/down move that most reduces the
// worst-edge delay, until no move helps. The best configuration over
// all restarts is left applied to the path.
func MinimizeDelay(m *delay.Model, pa *delay.Path, opts Options) (*Result, error) {
	return run(m, pa, opts, func(d, a, bestD, bestA float64) bool {
		return d < bestD*(1-1e-12)
	}, math.Inf(1), modeMinDelay)
}

// SizeToConstraint sizes the path to meet the delay constraint tc at
// low area: greedy delay descent until the guard-banded target is met,
// then a bounded area-trim pass among moves that keep it met. Returns
// an error (with the best-effort result) when the grid cannot reach tc.
func SizeToConstraint(m *delay.Model, pa *delay.Path, tc float64, opts Options) (*Result, error) {
	o := opts.withDefaults()
	target := tc * (1 - o.GuardBand)
	res, err := run(m, pa, o, func(d, a, bestD, bestA float64) bool {
		// Prefer feasibility (against the banded target), then area.
		bestFeasible := bestD <= target
		feasible := d <= target
		if feasible != bestFeasible {
			return feasible
		}
		if feasible {
			return a < bestA*(1-1e-12)
		}
		return d < bestD*(1-1e-12)
	}, target, modeConstraint)
	if err != nil {
		return res, err
	}
	if res.Delay > tc {
		return res, fmt.Errorf("amps: grid sizing reached %.1f ps, constraint %.1f ps unmet", res.Delay, tc)
	}
	return res, nil
}

// run performs the restarted greedy search. better(d, a, bestD, bestA)
// defines the acceptance order on (delay, area); in constraint mode tc
// separates the descent phase from the trim phase, in min-delay mode
// every move is a pure delay descent.
func run(m *delay.Model, pa *delay.Path, opts Options, better func(d, a, bestD, bestA float64) bool, tc float64, md mode) (*Result, error) {
	o := opts.withDefaults()
	if err := pa.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	g := newGrid(m.Proc.CRef, m.Proc.CMax, o.StepRatio)
	rng := rand.New(rand.NewSource(o.Seed))
	n := len(pa.Stages)

	evals := 0
	evalPath := func(q *delay.Path) float64 {
		evals++
		return m.PathDelayWorst(q)
	}

	work := pa.Clone()
	bestSizes := pa.Sizes()
	bestD := math.Inf(1)
	bestA := math.Inf(1)
	totalMoves := 0

	for r := 0; r < o.Restarts; r++ {
		st := state{idx: make([]int, n)}
		if r == 0 {
			// Deterministic cold start at minimum drive.
			for i := range st.idx {
				st.idx[i] = 0
			}
		} else {
			for i := range st.idx {
				st.idx[i] = g.clampIndex(rng.Intn(len(g.sizes) / 2))
			}
		}
		st.apply(g, work)
		curD := evalPath(work)
		curA := work.Area(m.Proc)

		// Industrial flows stop shortly after constraint satisfaction
		// (the oversizing the paper ascribes to AMPS); we allow one
		// cleanup pass worth of down-moves. An unlimited trim would
		// close most of the area gap to the constant-sensitivity
		// method — see EXPERIMENTS.md.
		trimBudget := n

		for move := 0; move < o.MaxMoves; move++ {
			type cand struct {
				stage, dir int
				d, a       float64
			}
			bestCand := cand{stage: -1}
			descent := md == modeMinDelay || curD > tc
			for i := 1; i < n; i++ {
				for _, dir := range []int{1, -1} {
					ni := st.idx[i] + dir
					if ni < 0 || ni >= len(g.sizes) {
						continue
					}
					old := work.Stages[i].CIn
					work.Stages[i].CIn = g.sizes[ni]
					d := evalPath(work)
					a := work.Area(m.Proc)
					work.Stages[i].CIn = old
					accept := false
					switch {
					case md == modeMinDelay:
						// Pure delay descent: largest reduction wins.
						if d < curD*(1-1e-12) && (bestCand.stage < 0 || d < bestCand.d) {
							accept = true
						}
					case descent:
						// Descent phase: best delay reduction per
						// area increase (TILOS criterion).
						if d < curD {
							gain := (curD - d) / math.Max(a-curA, 1e-6)
							if bestCand.stage < 0 || gain > (curD-bestCand.d)/math.Max(bestCand.a-curA, 1e-6) {
								accept = true
							}
						}
					default:
						// Trim phase: best area reduction keeping tc.
						if d <= tc && a < curA {
							if bestCand.stage < 0 || a < bestCand.a {
								accept = true
							}
						}
					}
					if accept {
						bestCand = cand{stage: i, dir: dir, d: d, a: a}
					}
				}
			}
			if bestCand.stage < 0 {
				break
			}
			if md == modeConstraint && !descent {
				if trimBudget <= 0 {
					break
				}
				trimBudget--
			}
			st.idx[bestCand.stage] += bestCand.dir
			work.Stages[bestCand.stage].CIn = g.sizes[st.idx[bestCand.stage]]
			curD, curA = bestCand.d, bestCand.a
			totalMoves++
		}

		if better(curD, curA, bestD, bestA) {
			bestD, bestA = curD, curA
			bestSizes = work.Sizes()
		}
	}

	if err := pa.SetSizes(bestSizes); err != nil {
		return nil, err
	}
	return &Result{
		Delay:   m.PathDelayWorst(pa),
		Area:    pa.Area(m.Proc),
		Moves:   totalMoves,
		Evals:   evals,
		Elapsed: time.Since(start),
	}, nil
}
