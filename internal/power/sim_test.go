package power

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/gate"
	"repro/internal/iscas"
	"repro/internal/netlist"
)

// randomSimCircuit builds a valid random DAG of primitive and composite
// cells (deterministic in seed) — the fuzz substrate of the
// bit-parallel/scalar equivalence property.
func randomSimCircuit(seed int64) *netlist.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := netlist.New(fmt.Sprintf("rand%d", seed))
	nIn := 2 + rng.Intn(6)
	var nets []string
	for i := 0; i < nIn; i++ {
		name := fmt.Sprintf("i%d", i)
		if _, err := c.AddInput(name); err != nil {
			panic(err)
		}
		nets = append(nets, name)
	}
	pool := append(gate.Primitives(), gate.Composites()...)
	nGates := 3 + rng.Intn(30)
	for i := 0; i < nGates; i++ {
		t := pool[rng.Intn(len(pool))]
		cell := gate.MustLookup(t)
		fanin := make([]string, cell.FanIn)
		for j := range fanin {
			fanin[j] = nets[rng.Intn(len(nets))]
		}
		name := fmt.Sprintf("g%d", i)
		if _, err := c.AddGate(name, t, fanin...); err != nil {
			panic(err)
		}
		nets = append(nets, name)
	}
	for _, name := range nets {
		n := c.Node(name)
		if n != nil && len(n.Fanout) == 0 && n.Type != gate.Input {
			if _, err := c.AddOutput(name, 8); err != nil {
				panic(err)
			}
		}
	}
	if len(c.Outputs) == 0 {
		if _, err := c.AddOutput(nets[len(nets)-1], 8); err != nil {
			panic(err)
		}
	}
	return c
}

// checkSimEquivalence pins the contract of the bit-parallel fast path:
// toggle and high counts — hence the whole Profile — must equal the
// scalar reference's exactly, not just statistically.
func checkSimEquivalence(t *testing.T, c *netlist.Circuit, opts Options) {
	t.Helper()
	o := opts.withDefaults()
	order, fastTog, fastHigh, err := simulate(c, o)
	if err != nil {
		t.Fatalf("%s: bit-parallel simulate: %v", c.Name, err)
	}
	orderRef, refTog, refHigh, err := simulateScalar(c, o)
	if err != nil {
		t.Fatalf("%s: scalar simulate: %v", c.Name, err)
	}
	if len(order) != len(orderRef) {
		t.Fatalf("%s: order length %d vs %d", c.Name, len(order), len(orderRef))
	}
	for i, n := range order {
		if orderRef[i] != n {
			t.Fatalf("%s: topological order diverged at %d", c.Name, i)
		}
		if fastTog[n.ID] != refTog[n] {
			t.Errorf("%s seed=%d vectors=%d: net %s toggles %d (bit-parallel) vs %d (scalar)",
				c.Name, o.Seed, o.Vectors, n.Name, fastTog[n.ID], refTog[n])
		}
		if fastHigh[n.ID] != refHigh[n] {
			t.Errorf("%s seed=%d vectors=%d: net %s highs %d (bit-parallel) vs %d (scalar)",
				c.Name, o.Seed, o.Vectors, n.Name, fastHigh[n.ID], refHigh[n])
		}
	}
}

// TestBitParallelMatchesScalarRandom fuzzes the equivalence over
// randomized netlists × seeds × vector counts, including counts that
// are not multiples of 64 (partial tail words) and counts below one
// word.
func TestBitParallelMatchesScalarRandom(t *testing.T) {
	vectorCounts := []int{1, 3, 63, 64, 65, 127, 128, 200, 511, 512}
	for circSeed := int64(0); circSeed < 12; circSeed++ {
		c := randomSimCircuit(circSeed)
		for _, simSeed := range []int64{1, 7, 42} {
			for _, vectors := range vectorCounts {
				checkSimEquivalence(t, c, Options{Vectors: vectors, Seed: simSeed, InputActivity: 0.4})
			}
		}
	}
}

// TestBitParallelMatchesScalarSuite runs the equivalence on real suite
// benchmarks at the default 512 vectors (and one ragged count), the
// configuration every leakage-aware protocol run uses.
func TestBitParallelMatchesScalarSuite(t *testing.T) {
	names := []string{"fpd", "c432", "c880"}
	if testing.Short() {
		names = names[:1]
	}
	for _, name := range names {
		c, err := iscas.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		checkSimEquivalence(t, c, Options{})
		checkSimEquivalence(t, c, Options{Vectors: 130, Seed: 9})
	}
}

// TestSimulateProfileMatchesScalarProfile closes the loop one level up:
// the maps handed to the estimators must be identical, value for value.
func TestSimulateProfileMatchesScalarProfile(t *testing.T) {
	c, err := iscas.Load("c432")
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{{}, {Vectors: 100, Seed: 5, InputActivity: 0.25}} {
		fast, err := SimulateProfile(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := scalarProfile(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast.Activities) != len(ref.Activities) || len(fast.StateProbs) != len(ref.StateProbs) {
			t.Fatalf("profile sizes diverged: %d/%d vs %d/%d",
				len(fast.Activities), len(fast.StateProbs), len(ref.Activities), len(ref.StateProbs))
		}
		for name, a := range ref.Activities {
			if fast.Activities[name] != a {
				t.Errorf("activity[%s] = %v, scalar %v", name, fast.Activities[name], a)
			}
		}
		for name, q := range ref.StateProbs {
			if fast.StateProbs[name] != q {
				t.Errorf("stateProb[%s] = %v, scalar %v", name, fast.StateProbs[name], q)
			}
		}
	}
}

// BenchmarkPowerProfile is the recorded scalar-vs-bit-parallel
// comparison (BENCH_power.json): SimulateProfile on the suite circuits
// at the default 512 vectors, against the retained scalar reference.
// The bitparallel/scalar ns/op ratio is the headline win of the
// word-parallel simulator.
func BenchmarkPowerProfile(b *testing.B) {
	for _, name := range []string{"fpd", "c432", "c880", "c1355"} {
		c, err := iscas.Load(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/bitparallel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SimulateProfile(c, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/scalar", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := scalarProfile(c, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
