package power

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/iscas"
	"repro/internal/netlist"
)

// TestShardedStressForcedDegrees is the dynamic twin of the rngstream
// analyzer's pre-draw contract: concurrent goroutines run the sharded
// Monte-Carlo word loop at forced degrees (the n<-1 grammar) over
// randomized netlists, under -race in CI, and every shard split must
// produce exactly the serial toggle and high counts. A draw moved
// inside the fan-out, or a shard boundary stitched in the wrong
// order, shows up here as a count mismatch.
func TestShardedStressForcedDegrees(t *testing.T) {
	specs := []iscas.Spec{
		{Name: "pstress0", Inputs: 10, Outputs: 4, Gates: 90, PathLen: 13, Seed: 55},
		{Name: "pstress1", Inputs: 27, Outputs: 9, Gates: 420, PathLen: 29, Seed: 66},
		{Name: "pstress2", Inputs: 44, Outputs: 13, Gates: 1000, PathLen: 35, Seed: 77},
	}
	degrees := []int{-2, -3, -8, -32}
	for _, spec := range specs {
		spec := spec
		for _, vectors := range []int{100, 777, 2048} {
			vectors := vectors
			t.Run(fmt.Sprintf("%s/v=%d", spec.Name, vectors), func(t *testing.T) {
				opts := Options{Vectors: vectors, Seed: int64(vectors) ^ spec.Seed, InputActivity: 0.35}
				serial := opts
				serial.Parallelism = 1
				o := serial.withDefaults()
				order, refTog, refHigh, err := func() ([]*netlist.Node, []int, []int, error) {
					c, err := iscas.Generate(spec)
					if err != nil {
						return nil, nil, nil, err
					}
					return simulate(c, o)
				}()
				if err != nil {
					t.Fatal(err)
				}

				var wg sync.WaitGroup
				errs := make(chan error, len(degrees))
				for _, deg := range degrees {
					wg.Add(1)
					go func(deg int) {
						defer wg.Done()
						c, err := iscas.Generate(spec) // private instance
						if err != nil {
							errs <- err
							return
						}
						po := o
						po.Parallelism = deg
						_, tog, high, err := simulate(c, po)
						if err != nil {
							errs <- fmt.Errorf("deg=%d: %v", deg, err)
							return
						}
						for _, n := range order {
							if tog[n.ID] != refTog[n.ID] || high[n.ID] != refHigh[n.ID] {
								errs <- fmt.Errorf("deg=%d: net %s counts %d/%d != %d/%d",
									deg, n.Name, tog[n.ID], high[n.ID], refTog[n.ID], refHigh[n.ID])
								return
							}
						}
					}(deg)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Error(err)
				}
			})
		}
	}
}
