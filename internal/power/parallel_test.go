package power

import (
	"fmt"
	"testing"

	"repro/internal/iscas"
)

// checkShardedEquivalence pins the sharded word loop against both
// references: the serial bit-parallel path (Parallelism: 1) and the
// scalar loop. Counts must match exactly — the sharded path's whole
// contract is bit identity at every degree.
func checkShardedEquivalence(t *testing.T, name string, opts Options, degrees []int) {
	t.Helper()
	c, err := iscas.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	serial := opts
	serial.Parallelism = 1
	o := serial.withDefaults()
	order, refTog, refHigh, err := simulate(c, o)
	if err != nil {
		t.Fatalf("%s serial: %v", name, err)
	}
	_, scalarTog, scalarHigh, err := simulateScalar(c, o)
	if err != nil {
		t.Fatalf("%s scalar: %v", name, err)
	}
	for _, n := range order {
		if refTog[n.ID] != scalarTog[n] || refHigh[n.ID] != scalarHigh[n] {
			t.Fatalf("%s: serial bit-parallel diverged from scalar at %s", name, n.Name)
		}
	}
	for _, deg := range degrees {
		po := o
		po.Parallelism = deg
		_, tog, high, err := simulate(c, po)
		if err != nil {
			t.Fatalf("%s deg=%d: %v", name, deg, err)
		}
		for _, n := range order {
			if tog[n.ID] != refTog[n.ID] {
				t.Errorf("%s deg=%d vectors=%d: net %s toggles %d != %d",
					name, deg, o.Vectors, n.Name, tog[n.ID], refTog[n.ID])
			}
			if high[n.ID] != refHigh[n.ID] {
				t.Errorf("%s deg=%d vectors=%d: net %s highs %d != %d",
					name, deg, o.Vectors, n.Name, high[n.ID], refHigh[n.ID])
			}
		}
	}
}

// TestShardedMatchesSerial sweeps ragged vector counts (partial tail
// words, counts below one word per shard) × forced and bounded degrees,
// including degrees beyond the word count, on circuits below the
// auto-policy net threshold — the forced negative degrees are the only
// way these shard at all, which is exactly what the escape hatch is
// for.
func TestShardedMatchesSerial(t *testing.T) {
	for _, vectors := range []int{64, 100, 512, 1000, 2048} {
		for _, name := range []string{"fpd", "c432", "c880"} {
			t.Run(fmt.Sprintf("%s/v=%d", name, vectors), func(t *testing.T) {
				checkShardedEquivalence(t, name, Options{Vectors: vectors, Seed: 3, InputActivity: 0.4},
					[]int{-2, -3, -7, -64, 2, 4})
			})
		}
	}
}

// TestShardedMatchesSerialLarge runs the auto policy on a design above
// the net threshold, where production leakage runs actually shard.
func TestShardedMatchesSerialLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-gate design; skipped with -short")
	}
	checkShardedEquivalence(t, "mix50000", Options{Vectors: 512}, []int{0, -4, 3})
}

// TestSmallSimulationStaysSerial pins the auto-policy thresholds: a
// classic-suite circuit (or a one-word run) must not shard even with
// parallelism requested globally, keeping the historical serial path —
// and its allocation profile — for every small simulation.
func TestSmallSimulationStaysSerial(t *testing.T) {
	o := Options{Vectors: 512}.withDefaults()
	c, err := iscas.Load("c880")
	if err != nil {
		t.Fatal(err)
	}
	if got := powerShards(o, 8, c.IDBound()); got != 1 {
		t.Errorf("c880 auto: %d shards, want 1 (below net threshold)", got)
	}
	big := Options{Vectors: 64, Parallelism: 4}.withDefaults()
	if got := powerShards(big, 1, 100000); got != 1 {
		t.Errorf("one-word run: %d shards, want 1 (below word threshold)", got)
	}
	forced := Options{Vectors: 128, Parallelism: -2}.withDefaults()
	if got := powerShards(forced, 2, 10); got != 2 {
		t.Errorf("forced degree: %d shards, want 2", got)
	}
}

// BenchmarkParallelPower measures the sharded word loop on the 50k-gate
// wide design at 2048 vectors (32 words), per forced degree. On a
// single-core host every row collapses onto serial time plus the
// fork/join and stitch overhead.
func BenchmarkParallelPower(b *testing.B) {
	c, err := iscas.Load("mix50000")
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{Vectors: 2048}
	for _, shards := range []int{1, 2, 4, 8} {
		o := opts
		o.Parallelism = -shards
		if shards == 1 {
			o.Parallelism = 1
		}
		b.Run(fmt.Sprintf("mix50000/shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SimulateProfile(c, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
