package power

import (
	"math"
	"testing"

	"repro/internal/gate"
	"repro/internal/iscas"
	"repro/internal/tech"
)

func TestStateProbabilitiesRange(t *testing.T) {
	c, err := iscas.Load("c17")
	if err != nil {
		t.Fatal(err)
	}
	probs, err := StateProbabilities(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) == 0 {
		t.Fatal("no probabilities")
	}
	for name, q := range probs {
		if q < 0 || q > 1 {
			t.Fatalf("%s: probability %v outside [0,1]", name, q)
		}
	}
	// Determinism: same options, same map.
	again, err := StateProbabilities(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, q := range probs {
		if again[name] != q {
			t.Fatalf("%s: probability drifted between identical runs", name)
		}
	}
}

func TestGateLeakageClassOrdering(t *testing.T) {
	p := tech.CMOS025()
	inv := gate.MustLookup(gate.Inv)
	lvt := GateLeakageUW(inv, 2.0, tech.LVT, 0.5, p)
	svt := GateLeakageUW(inv, 2.0, tech.SVT, 0.5, p)
	hvt := GateLeakageUW(inv, 2.0, tech.HVT, 0.5, p)
	if !(lvt > svt && svt > hvt) {
		t.Fatalf("leakage ordering broken: lvt %v svt %v hvt %v", lvt, svt, hvt)
	}
	if hvt <= 0 {
		t.Fatal("HVT leakage must stay positive")
	}
	// Leakage scales linearly with size.
	if got, want := GateLeakageUW(inv, 4.0, tech.SVT, 0.5, p), 2*svt; math.Abs(got-want) > 1e-12*want {
		t.Fatalf("leakage not linear in size: %v vs %v", got, want)
	}
}

func TestGateLeakageStackingEffect(t *testing.T) {
	p := tech.CMOS025()
	nand3 := gate.MustLookup(gate.Nand3)
	nor3 := gate.MustLookup(gate.Nor3)
	// Output high: NAND3 leaks through one 3-deep N stack, NOR3 through
	// three parallel N devices — the NOR must leak substantially more.
	nandHigh := GateLeakageUW(nand3, 2.0, tech.SVT, 1.0, p)
	norHigh := GateLeakageUW(nor3, 2.0, tech.SVT, 1.0, p)
	if norHigh <= nandHigh*2 {
		t.Fatalf("stacking effect missing: NOR3 %v vs NAND3 %v at output high", norHigh, nandHigh)
	}
}

func TestEstimateStaticCircuit(t *testing.T) {
	c, err := iscas.Load("fpd")
	if err != nil {
		t.Fatal(err)
	}
	p := tech.CMOS025()
	base, err := EstimateStatic(c, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalUW <= 0 {
		t.Fatalf("total leakage %v", base.TotalUW)
	}
	var sum float64
	for _, pw := range base.ByGate {
		sum += pw
	}
	if math.Abs(sum-base.TotalUW) > 1e-9*base.TotalUW {
		t.Fatalf("per-gate shares %v do not sum to total %v", sum, base.TotalUW)
	}
	if base.ByClass[tech.SVT] != base.TotalUW {
		t.Fatalf("all-SVT circuit must attribute everything to SVT: %v vs %v",
			base.ByClass[tech.SVT], base.TotalUW)
	}

	// Promote every gate to HVT: leakage must collapse by roughly the
	// class ratio while dynamic power is untouched.
	dyn, err := EstimateCircuit(c, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes {
		if n.IsLogic() {
			n.Vt = tech.HVT
		}
	}
	hvt, err := EstimateStatic(c, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hvt.TotalUW >= base.TotalUW/3 {
		t.Fatalf("all-HVT leakage %v not well below all-SVT %v", hvt.TotalUW, base.TotalUW)
	}
	dyn2, err := EstimateCircuit(c, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dyn.TotalUW != dyn2.TotalUW {
		t.Fatal("Vt promotion changed dynamic power")
	}
}

func TestEstimateStaticProbsMatchesEstimateStatic(t *testing.T) {
	c, err := iscas.Load("c17")
	if err != nil {
		t.Fatal(err)
	}
	p := tech.CMOS025()
	direct, err := EstimateStatic(c, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	probs, err := StateProbabilities(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	via, err := EstimateStaticProbs(c, p, probs)
	if err != nil {
		t.Fatal(err)
	}
	if direct.TotalUW != via.TotalUW {
		t.Fatalf("precomputed-probability path diverged: %v vs %v", direct.TotalUW, via.TotalUW)
	}
}
