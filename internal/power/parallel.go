// Sharded bit-parallel vector simulation: the word loop of simulate
// split across goroutines by contiguous 64-vector word ranges. The
// split preserves the serial path's two contracts exactly — the RNG
// stream (input words are pre-drawn serially, in the historical
// vector-major order, before any shard runs) and the toggle counts
// (each shard threads its own carry chain and defers the one unknown
// toggle of its first word to a serial stitch over the shard
// boundaries) — so the counts are bit-identical to simulateScalar at
// every degree.
package power

import (
	"math/bits"
	"math/rand"
	"sync"

	"repro/internal/netlist"
	"repro/internal/par"
)

// powerShards resolves the sharding degree of one simulation. The unit
// of work is one 64-vector word, so the Parallelism policy is resolved
// against the word count; the auto policy additionally requires a
// large circuit and caps the degree at words/2, so every shard
// amortizes its boundary stitch over at least two words.
func powerShards(o Options, words, bound int) int {
	if o.Parallelism == 0 && bound < powerParallelMinNets {
		return 1
	}
	shards := par.Degree(o.Parallelism, words, powerParallelMinWords)
	if o.Parallelism == 0 && shards > words/2 {
		shards = words / 2
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// shardScratch holds one worker's private simulation buffers. Scratch
// is pooled so repeated profiles (the leakage pass, benchmark loops)
// reuse warm per-worker buffers instead of reallocating them per call;
// the slices grow monotonically under cap guards.
type shardScratch struct {
	toggles []int
	highs   []int
	first   []uint64 // first word's vector-0 bit per net
	carry   []uint64 // running carry; holds the shard's carry-out at the end
	cur     []uint64
	args    []uint64
}

var shardPool = sync.Pool{New: func() any { return new(shardScratch) }}

// grow sizes the per-net buffers for bound and clears them.
func (st *shardScratch) grow(bound int) {
	if cap(st.toggles) < bound {
		st.toggles = make([]int, bound)
		st.highs = make([]int, bound)
		st.first = make([]uint64, bound)
		st.carry = make([]uint64, bound)
		st.cur = make([]uint64, bound)
	}
	st.toggles = st.toggles[:bound]
	st.highs = st.highs[:bound]
	st.first = st.first[:bound]
	st.carry = st.carry[:bound]
	st.cur = st.cur[:bound]
	for i := 0; i < bound; i++ {
		st.toggles[i] = 0
		st.highs[i] = 0
		st.first[i] = 0
		st.carry[i] = 0
		st.cur[i] = 0
	}
	if st.args == nil {
		st.args = make([]uint64, 0, 8)
	}
}

// simulateSharded is the parallel arm of simulate. Equivalence to the
// serial word loop, per net:
//
//   - within a shard, words run in serial order with a private carry,
//     so all toggles except the shard's very first boundary bit are
//     counted exactly as the serial loop counts them;
//   - the first word counts popcount((w XOR w<<1) AND mask AND NOT 1)
//     — every intra-word toggle — and records bit 0 (first) and the
//     last vector bit (carry-out);
//   - the stitch adds first XOR carry-in per boundary, walking shards
//     in word order from the pseudo-vector carry, which is exactly the
//     bit-0 term popcount((w XOR (w<<1|carry)) AND mask) of the serial
//     loop. High counts and toggle sums are integer additions, so the
//     totals are bit-identical.
func simulateSharded(c *netlist.Circuit, o Options, order []*netlist.Node, words, shards int) ([]*netlist.Node, []int, []int, error) {
	rng := rand.New(rand.NewSource(o.Seed))
	bound := c.IDBound()
	numIn := len(c.Inputs)

	toggles := make([]int, bound)
	highs := make([]int, bound)
	carry0 := make([]uint64, bound) // pseudo-vector carry into word 0
	inState := make([]bool, numIn)

	// Initial assignment (the state "before vector 0"), exactly as the
	// serial path: broadcast each input's seed bit, evaluate once, keep
	// only the carry bits.
	cur0 := make([]uint64, bound)
	for i, n := range c.Inputs {
		inState[i] = rng.Intn(2) == 1
		if inState[i] {
			cur0[n.ID] = ^uint64(0)
		}
	}
	evalWords(order, cur0, make([]uint64, 0, 8))
	for _, n := range order {
		carry0[n.ID] = cur0[n.ID] & 1
	}

	// Pre-draw every input word serially — word-major, vector-major
	// inside the word — consuming the RNG draw for draw as the serial
	// loop does. packed[w*numIn+i] is input i's word for word w.
	packed := make([]uint64, words*numIn)
	for w := 0; w < words; w++ {
		nbits := o.Vectors - w*64
		if nbits > 64 {
			nbits = 64
		}
		row := packed[w*numIn : (w+1)*numIn]
		for j := 0; j < nbits; j++ {
			bit := uint64(1) << uint(j)
			for i := range inState {
				if rng.Float64() < o.InputActivity {
					inState[i] = !inState[i]
				}
				if inState[i] {
					row[i] |= bit
				}
			}
		}
	}

	states := make([]*shardScratch, shards)
	par.Run(shards, func(s int) {
		st := shardPool.Get().(*shardScratch)
		st.grow(bound)
		states[s] = st
		w0, w1 := par.Chunk(s, shards, words)
		for w := w0; w < w1; w++ {
			nbits := o.Vectors - w*64
			if nbits > 64 {
				nbits = 64
			}
			mask := ^uint64(0) >> (64 - uint(nbits))
			row := packed[w*numIn : w*numIn+numIn]
			for i, n := range c.Inputs {
				st.cur[n.ID] = row[i]
			}
			st.args = evalWords(order, st.cur, st.args)
			if w == w0 {
				for _, n := range order {
					v := st.cur[n.ID]
					// Bit 0 compares against the previous shard's last
					// vector, unknown here; mask it out and record the
					// operands for the serial stitch.
					st.toggles[n.ID] += bits.OnesCount64((v ^ (v << 1)) & mask &^ 1)
					st.highs[n.ID] += bits.OnesCount64(v & mask)
					st.first[n.ID] = v & 1
					st.carry[n.ID] = (v >> uint(nbits-1)) & 1
				}
				continue
			}
			for _, n := range order {
				v := st.cur[n.ID]
				prev := (v << 1) | st.carry[n.ID]
				st.toggles[n.ID] += bits.OnesCount64((v ^ prev) & mask)
				st.highs[n.ID] += bits.OnesCount64(v & mask)
				st.carry[n.ID] = (v >> uint(nbits-1)) & 1
			}
		}
	})

	// Serial stitch over the shard boundaries, walking shards in word
	// order per net.
	for _, n := range order {
		cin := carry0[n.ID]
		t, h := 0, 0
		for _, st := range states {
			t += st.toggles[n.ID] + int(st.first[n.ID]^cin)
			h += st.highs[n.ID]
			cin = st.carry[n.ID]
		}
		toggles[n.ID] = t
		highs[n.ID] = h
	}
	for _, st := range states {
		shardPool.Put(st)
	}
	return order, toggles, highs, nil
}
