// Static (subthreshold leakage) power model. Whichever way a CMOS gate
// resolves, one of its two networks is off and leaks: with the output
// high the pull-down N network is off, with the output low the pull-up
// P network is off. The per-gate leakage therefore depends on the Vt
// class (each class carries its own off-current per micron), the gate
// size (off-current scales with device width), and the input-state
// probability (which network is off how often). Series stacks leak
// less — the classic stacking effect — which the model captures by
// dividing the branch current by the stack depth; parallel branches
// add.
package power

import (
	"repro/internal/gate"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// StaticEstimate is the outcome of a leakage analysis.
type StaticEstimate struct {
	// TotalUW is the total subthreshold leakage power in µW.
	TotalUW float64
	// ByGate maps gate names to their leakage share in µW.
	ByGate map[string]float64
	// ByClass splits the total by Vt class, in µW.
	ByClass map[tech.VtClass]float64
	// MeanHigh is the average probability of a net resting high.
	MeanHigh float64
}

// GateLeakageUW returns the state-weighted subthreshold leakage power
// (µW) of one gate: cell personality, per-pin input capacitance cin
// (fF), Vt class v, and probability pHigh of the output resting at
// logic one, on corner p.
//
// With the output high, every pull-down branch (FanIn/StackN of them)
// is off and leaks its N off-current suppressed by the series stack
// depth; with the output low the mirror holds for the pull-up network.
// A NAND3's single 3-deep N stack thus leaks ~9× less than a NOR3's
// three parallel N devices — the asymmetry selective Vt assignment
// exploits gate by gate.
func GateLeakageUW(cell gate.Cell, cin float64, v tech.VtClass, pHigh float64, p *tech.Process) float64 {
	w := p.WidthForCap(cin) // per-pin total width, µm
	wn, wp := p.WN(w), p.WP(w)
	spec := p.VtSpec(v)
	branchesN := float64(cell.FanIn) / float64(cell.StackN)
	branchesP := float64(cell.FanIn) / float64(cell.StackP)
	iOffN := spec.ILeakN * wn * branchesN / float64(cell.StackN) // nA
	iOffP := spec.ILeakP * wp * branchesP / float64(cell.StackP)
	// nA × V = nW; divide by 1000 for µW.
	return (pHigh*iOffN + (1-pHigh)*iOffP) * p.VDD / 1000
}

// EstimateStatic computes the subthreshold leakage power of the
// circuit on corner p, simulating opts.Vectors random vectors for the
// input-state probabilities.
func EstimateStatic(c *netlist.Circuit, p *tech.Process, opts Options) (*StaticEstimate, error) {
	probs, err := StateProbabilities(c, opts)
	if err != nil {
		return nil, err
	}
	return EstimateStaticProbs(c, p, probs)
}

// EstimateStaticProbs is EstimateStatic on precomputed state
// probabilities — the variant the Vt-assignment pass uses to re-score
// the same circuit after promotions without re-simulating (Vt swaps
// change no logic value).
func EstimateStaticProbs(c *netlist.Circuit, p *tech.Process, probs map[string]float64) (*StaticEstimate, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	est := &StaticEstimate{
		ByGate:  make(map[string]float64),
		ByClass: make(map[tech.VtClass]float64),
	}
	var probSum float64
	var gates int
	for _, n := range c.Nodes {
		if !n.IsLogic() {
			continue
		}
		q, ok := probs[n.Name]
		if !ok {
			continue
		}
		pw := GateLeakageUW(n.Cell(), n.CIn, n.Vt, q, p)
		est.ByGate[n.Name] = pw
		est.ByClass[n.Vt] += pw
		est.TotalUW += pw
		probSum += q
		gates++
	}
	if gates > 0 {
		est.MeanHigh = probSum / float64(gates)
	}
	return est, nil
}
