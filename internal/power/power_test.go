package power

import (
	"math"
	"testing"

	"repro/internal/gate"
	"repro/internal/iscas"
	"repro/internal/netlist"
	"repro/internal/tech"
)

func buildChain(t *testing.T, n int) *netlist.Circuit {
	t.Helper()
	c := netlist.New("chain")
	if _, err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	prev := "a"
	for i := 0; i < n; i++ {
		name := "g" + string(rune('0'+i))
		if _, err := c.AddGate(name, gate.Inv, prev); err != nil {
			t.Fatal(err)
		}
		prev = name
	}
	if _, err := c.AddOutput(prev, 10); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestActivitiesChainPropagation(t *testing.T) {
	// In an inverter chain every net toggles exactly when the input
	// toggles: all activities equal the input activity.
	c := buildChain(t, 4)
	act, err := Activities(c, Options{Vectors: 4000, Seed: 7, InputActivity: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for name, a := range act {
		if math.Abs(a-0.3) > 0.05 {
			t.Fatalf("net %s activity %g, want ≈0.3", name, a)
		}
	}
}

func TestActivitiesAndGateAttenuates(t *testing.T) {
	// An AND of independent inputs toggles less often than its inputs
	// (output is 1 only 1/4 of the time).
	c := netlist.New("and")
	for _, in := range []string{"a", "b"} {
		if _, err := c.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AddGate("n", gate.Nand2, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("y", gate.Inv, "n"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddOutput("y", 8); err != nil {
		t.Fatal(err)
	}
	act, err := Activities(c, Options{Vectors: 6000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if act["y"] >= act["a"] {
		t.Fatalf("AND output activity %g not below input %g", act["y"], act["a"])
	}
}

func TestEstimateScalesWithSizing(t *testing.T) {
	// Doubling every gate size increases switched capacitance and
	// power.
	p := tech.CMOS025()
	c := buildChain(t, 5)
	small, err := EstimateCircuit(c, p, Options{Vectors: 500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range c.Gates() {
		g.CIn *= 2
	}
	big, err := EstimateCircuit(c, p, Options{Vectors: 500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if big.TotalUW <= small.TotalUW {
		t.Fatalf("power did not grow with sizing: %g vs %g", big.TotalUW, small.TotalUW)
	}
	delta, err := Compare(small, big)
	if err != nil {
		t.Fatal(err)
	}
	if delta <= 0 {
		t.Fatalf("Compare delta %g", delta)
	}
}

func TestEstimateScalesWithFrequency(t *testing.T) {
	p := tech.CMOS025()
	c := buildChain(t, 3)
	at100, err := EstimateCircuit(c, p, Options{FrequencyMHz: 100, Vectors: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	at200, err := EstimateCircuit(c, p, Options{FrequencyMHz: 200, Vectors: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(at200.TotalUW-2*at100.TotalUW) > 1e-9*at200.TotalUW {
		t.Fatalf("power not linear in frequency: %g vs %g", at200.TotalUW, 2*at100.TotalUW)
	}
}

func TestEstimateOnBenchmark(t *testing.T) {
	p := tech.CMOS025()
	spec, err := iscas.ByName("fpd")
	if err != nil {
		t.Fatal(err)
	}
	c := iscas.MustGenerate(spec)
	est, err := EstimateCircuit(c, p, Options{Vectors: 400, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if est.TotalUW <= 0 || est.MeanActivity <= 0 || est.MeanActivity > 1 {
		t.Fatalf("degenerate estimate %+v", est)
	}
	if len(est.ByNet) == 0 {
		t.Fatal("no per-net breakdown")
	}
	var sum float64
	for _, v := range est.ByNet {
		sum += v
	}
	if math.Abs(sum-est.TotalUW) > 1e-9*est.TotalUW {
		t.Fatalf("per-net sum %g != total %g", sum, est.TotalUW)
	}
}

func TestEstimateDeterministic(t *testing.T) {
	p := tech.CMOS025()
	c := buildChain(t, 4)
	a, err := EstimateCircuit(c, p, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateCircuit(c, p, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalUW != b.TotalUW {
		t.Fatal("same seed produced different estimates")
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(nil, &Estimate{}); err == nil {
		t.Fatal("nil operand accepted")
	}
	if _, err := Compare(&Estimate{}, &Estimate{}); err == nil {
		t.Fatal("zero baseline accepted")
	}
}

func TestEstimateRejectsBadCorner(t *testing.T) {
	p := tech.CMOS025()
	p.VDD = -1
	c := buildChain(t, 2)
	if _, err := EstimateCircuit(c, p, Options{}); err == nil {
		t.Fatal("invalid corner accepted")
	}
}
