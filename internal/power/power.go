// Package power estimates the dynamic and static power of a sized
// netlist. Dynamic power is the quantity the paper's area metric ΣW
// stands proxy for ("gate sizing is area (power) expensive"): a CMOS
// net switching with activity α at frequency f under supply VDD burns
//
//	P = α · C_switched · VDD² · f
//
// where C_switched is the total capacitance on the net (sink pins,
// wire, driver diffusion). Static power is the subthreshold leakage of
// the off network of every gate (static.go), a function of Vt class,
// gate size and input state — the standby budget the multi-Vt pass of
// internal/leakage minimizes. Both estimators share one logic
// simulation of the netlist under random input vectors: toggle counts
// give the activities, state counts give the output-high
// probabilities, so every estimate reflects the circuit's real signal
// statistics rather than a flat default. The simulation is
// bit-parallel — 64 vectors per machine word over dense Node.ID-indexed
// state (see simulate) — and bit-identical to the retained scalar
// reference.
package power

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/gate"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// Options parameterizes an estimation run.
type Options struct {
	// FrequencyMHz is the switching frequency (default 100 MHz).
	FrequencyMHz float64
	// Vectors is the number of random input vectors simulated for
	// activity extraction (default 512).
	Vectors int
	// Seed drives the random vectors (default 1).
	Seed int64
	// InputActivity is the toggle probability applied to primary
	// inputs between consecutive vectors (default 0.5).
	InputActivity float64
	// Parallelism bounds the sharding of the word loop across
	// goroutines (see internal/par): 0 = auto (GOMAXPROCS-capped, only
	// for big simulations), 1 or -1 = serial, n>1 = at most n shards,
	// n<-1 = force |n| shards bypassing the thresholds. Counts are
	// bit-identical at every degree, so the knob is excluded from every
	// memo key.
	Parallelism int
}

// powerParallelMinWords and powerParallelMinNets gate the auto policy:
// a simulation shards only when it spans enough 64-vector words and
// enough nets for the fork/join and the serial stitch to pay for
// themselves. The serial path — every small circuit — keeps the
// historical allocation profile.
const (
	powerParallelMinWords = 4
	powerParallelMinNets  = 5000
)

func (o Options) withDefaults() Options {
	if o.FrequencyMHz <= 0 {
		o.FrequencyMHz = 100
	}
	if o.Vectors <= 0 {
		o.Vectors = 512
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.InputActivity <= 0 || o.InputActivity > 1 {
		o.InputActivity = 0.5
	}
	return o
}

// Estimate is the outcome of a power analysis.
type Estimate struct {
	// TotalUW is the total dynamic power in µW.
	TotalUW float64
	// SwitchedCapFF is the activity-weighted switched capacitance per
	// cycle, in fF.
	SwitchedCapFF float64
	// ByNet maps net (driver node) names to their power share in µW.
	ByNet map[string]float64
	// MeanActivity is the average toggle probability over all nets.
	MeanActivity float64
}

// simulate runs the shared vector simulation: each primary input flips
// with probability o.InputActivity between consecutive cycles, and the
// circuit is re-evaluated in topological order. It returns per-node
// toggle counts (net changed value between consecutive cycles) and
// high counts (net sampled at logic one), both over o.Vectors cycles
// and indexed densely by Node.ID — the common substrate of the dynamic
// (activity) and static (state-probability) estimators.
//
// The evaluation is bit-parallel: 64 vectors are packed per machine
// word, gates are evaluated word-wise through gate.EvalWord, toggle
// counts fall out of popcount(cur XOR (cur<<1 | carry)) with the carry
// bit threading the last vector of the previous word across chunk
// boundaries, and high counts out of popcount(cur). The input-flip
// stream draws the RNG in the exact per-vector order of the historical
// scalar loop (one Intn(2) per input to seed, then one Float64 per
// input per vector), so toggle and high counts — and every Activities,
// StateProbabilities and leakage figure derived from them — are
// bit-identical to the retained scalar reference (simulateScalar,
// exercised by the equivalence tests).
// When the Parallelism policy and the problem size select a sharded
// run, the word loop is split across goroutines by contiguous word
// ranges (simulateSharded): input words are still pre-drawn serially
// in the historical RNG order, each shard threads its own carry chain,
// and the one unknown toggle per (net, shard boundary) is stitched in
// serially afterwards — so the sharded counts are bit-identical too.
func simulate(c *netlist.Circuit, o Options) ([]*netlist.Node, []int, []int, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, nil, nil, err
	}
	bound := c.IDBound()
	words := (o.Vectors + 63) / 64
	if shards := powerShards(o, words, bound); shards > 1 {
		return simulateSharded(c, o, order, words, shards)
	}
	rng := rand.New(rand.NewSource(o.Seed))

	cur := make([]uint64, bound)   // packed values, one word per net
	carry := make([]uint64, bound) // previous vector's value (bit 0)
	toggles := make([]int, bound)  // per-net toggle counts
	highs := make([]int, bound)    // per-net high counts
	inState := make([]bool, len(c.Inputs))
	args := make([]uint64, 0, 8) // fan-in gather scratch, reused per gate

	// Initial assignment (the state "before vector 0"): broadcast each
	// input's seed bit across the word, evaluate once, and keep only the
	// carry bits — no counting happens for this pseudo-vector.
	for i, n := range c.Inputs {
		inState[i] = rng.Intn(2) == 1
		if inState[i] {
			cur[n.ID] = ^uint64(0)
		}
	}
	args = evalWords(order, cur, args)
	for _, n := range order {
		carry[n.ID] = cur[n.ID] & 1
	}

	for base := 0; base < o.Vectors; base += 64 {
		nbits := o.Vectors - base
		if nbits > 64 {
			nbits = 64
		}
		mask := ^uint64(0) >> (64 - uint(nbits))

		// Pack the next nbits vectors. The loop is vector-major so the
		// RNG stream matches the scalar reference draw for draw.
		for _, n := range c.Inputs {
			cur[n.ID] = 0
		}
		for j := 0; j < nbits; j++ {
			bit := uint64(1) << uint(j)
			for i, n := range c.Inputs {
				if rng.Float64() < o.InputActivity {
					inState[i] = !inState[i]
				}
				if inState[i] {
					cur[n.ID] |= bit
				}
			}
		}

		args = evalWords(order, cur, args)
		for _, n := range order {
			w := cur[n.ID]
			prev := (w << 1) | carry[n.ID]
			toggles[n.ID] += bits.OnesCount64((w ^ prev) & mask)
			highs[n.ID] += bits.OnesCount64(w & mask)
			carry[n.ID] = (w >> uint(nbits-1)) & 1
		}
	}
	return order, toggles, highs, nil
}

// evalWords is the bit-parallel word kernel of the vector simulation:
// one pass over the topological order, evaluating each gate on one
// packed 64-vector word. Input words are pre-packed by the caller;
// outputs forward their driver's word; gates gather fan-in words into
// the reused args scratch and evaluate through gate.EvalWord. It runs
// once per 64-vector chunk of every power profile, so its steady state
// must not allocate; the grown scratch is returned so the caller keeps
// the capacity across chunks.
//
//pops:noalloc
func evalWords(order []*netlist.Node, cur []uint64, args []uint64) []uint64 {
	for _, n := range order {
		switch {
		case n.Type == gate.Input:
			// cur[n.ID] was packed by the caller.
		case n.Type == gate.Output:
			cur[n.ID] = cur[n.Fanin[0].ID]
		default:
			args = args[:0]
			for _, f := range n.Fanin {
				args = append(args, cur[f.ID])
			}
			cur[n.ID] = gate.EvalWord(n.Type, args)
		}
	}
	return args
}

// simulateScalar is the retained scalar reference of the vector
// simulation: one map-keyed evaluation per vector, the historical
// implementation the bit-parallel simulate replaced. It runs only in
// the equivalence tests and the scalar rows of BenchmarkPowerProfile —
// never on a production path — and defines the contract simulate must
// match: identical RNG consumption, identical toggle and high counts.
func simulateScalar(c *netlist.Circuit, o Options) ([]*netlist.Node, map[*netlist.Node]int, map[*netlist.Node]int, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, nil, nil, err
	}
	rng := rand.New(rand.NewSource(o.Seed))

	// Current input assignment, evolved by random flips.
	in := make(map[string]bool, len(c.Inputs))
	for _, n := range c.Inputs {
		in[n.Name] = rng.Intn(2) == 1
	}

	prev := make(map[*netlist.Node]bool, len(order))
	toggles := make(map[*netlist.Node]int, len(order))
	highs := make(map[*netlist.Node]int, len(order))

	eval := func(dst map[*netlist.Node]bool) {
		for _, n := range order {
			switch {
			case n.Type == gate.Input:
				dst[n] = in[n.Name]
			case n.Type == gate.Output:
				dst[n] = dst[n.Fanin[0]]
			default:
				args := make([]bool, len(n.Fanin))
				for i, f := range n.Fanin {
					args[i] = dst[f]
				}
				dst[n] = gate.Eval(n.Type, args)
			}
		}
	}
	eval(prev)

	cur := make(map[*netlist.Node]bool, len(order))
	for v := 0; v < o.Vectors; v++ {
		for _, n := range c.Inputs {
			if rng.Float64() < o.InputActivity {
				in[n.Name] = !in[n.Name]
			}
		}
		eval(cur)
		for _, n := range order {
			if cur[n] != prev[n] {
				toggles[n]++
			}
			if cur[n] {
				highs[n]++
			}
			prev[n] = cur[n]
		}
	}
	return order, toggles, highs, nil
}

// Profile carries both statistics of one vector simulation, keyed by
// driver node name: toggle probabilities (the dynamic estimator's
// input) and output-high probabilities (the static estimator's).
type Profile struct {
	Activities map[string]float64
	StateProbs map[string]float64
}

// SimulateProfile runs the vector simulation once and extracts both
// statistics — the entry point for callers that need dynamic and
// static estimates of the same circuit (the multi-Vt pass) without
// paying for two simulations.
func SimulateProfile(c *netlist.Circuit, opts Options) (*Profile, error) {
	o := opts.withDefaults()
	order, toggles, highs, err := simulate(c, o)
	if err != nil {
		return nil, err
	}
	p := &Profile{
		Activities: make(map[string]float64, len(order)),
		StateProbs: make(map[string]float64, len(order)),
	}
	for _, n := range order {
		if n.Type == gate.Output {
			continue // the PO pseudo-node mirrors its driver
		}
		p.Activities[n.Name] = float64(toggles[n.ID]) / float64(o.Vectors)
		p.StateProbs[n.Name] = float64(highs[n.ID]) / float64(o.Vectors)
	}
	return p, nil
}

// scalarProfile is SimulateProfile over the retained scalar reference
// simulation — the comparison arm of the equivalence tests and of
// BenchmarkPowerProfile's scalar rows. Production callers always go
// through SimulateProfile's bit-parallel path.
func scalarProfile(c *netlist.Circuit, opts Options) (*Profile, error) {
	o := opts.withDefaults()
	order, toggles, highs, err := simulateScalar(c, o)
	if err != nil {
		return nil, err
	}
	p := &Profile{
		Activities: make(map[string]float64, len(order)),
		StateProbs: make(map[string]float64, len(order)),
	}
	for _, n := range order {
		if n.Type == gate.Output {
			continue // the PO pseudo-node mirrors its driver
		}
		p.Activities[n.Name] = float64(toggles[n]) / float64(o.Vectors)
		p.StateProbs[n.Name] = float64(highs[n]) / float64(o.Vectors)
	}
	return p, nil
}

// Activities computes per-net toggle probabilities by simulating the
// circuit under correlated random vectors: each input flips with
// probability opts.InputActivity between consecutive cycles. The
// returned map is keyed by driver node name and gives the probability
// that the net changes value between consecutive cycles.
func Activities(c *netlist.Circuit, opts Options) (map[string]float64, error) {
	p, err := SimulateProfile(c, opts)
	if err != nil {
		return nil, err
	}
	return p.Activities, nil
}

// StateProbabilities computes, from the same vector simulation as
// Activities, the probability of each net resting at logic one — the
// input-state statistic the subthreshold leakage model weights its two
// off-network terms with. Keyed by driver node name.
func StateProbabilities(c *netlist.Circuit, opts Options) (map[string]float64, error) {
	p, err := SimulateProfile(c, opts)
	if err != nil {
		return nil, err
	}
	return p.StateProbs, nil
}

// netCap returns the switched capacitance of node n's output net:
// sink pins + wire + the driver's own diffusion parasitic.
func netCap(n *netlist.Node) float64 {
	c := n.FanoutCap()
	if n.IsLogic() {
		c += n.Cell().Parasitic(n.CIn)
	}
	return c
}

// EstimateCircuit computes the dynamic power of the circuit on corner p.
func EstimateCircuit(c *netlist.Circuit, p *tech.Process, opts Options) (*Estimate, error) {
	act, err := Activities(c, opts)
	if err != nil {
		return nil, err
	}
	return EstimateCircuitActivities(c, p, opts, act)
}

// EstimateCircuitActivities is EstimateCircuit on precomputed toggle
// probabilities — the variant for callers that already simulated the
// circuit (e.g. through SimulateProfile).
func EstimateCircuitActivities(c *netlist.Circuit, p *tech.Process, opts Options, act map[string]float64) (*Estimate, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	est := &Estimate{ByNet: make(map[string]float64)}
	var actSum float64
	var nets int
	for _, n := range c.Nodes {
		if n.Type == gate.Output {
			continue
		}
		a, ok := act[n.Name]
		if !ok {
			continue
		}
		cap := netCap(n)
		// α·C·V²·f: fF × V² × MHz = 1e-15·1e6 W = 1e-9 W = nW;
		// divide by 1000 for µW.
		pw := a * cap * p.VDD * p.VDD * o.FrequencyMHz / 1000
		est.ByNet[n.Name] = pw
		est.TotalUW += pw
		est.SwitchedCapFF += a * cap
		actSum += a
		nets++
	}
	if nets > 0 {
		est.MeanActivity = actSum / float64(nets)
	}
	return est, nil
}

// Compare reports the power delta between two sizings of the same
// circuit (e.g. before/after optimization), in percent of the first.
func Compare(before, after *Estimate) (float64, error) {
	if before == nil || after == nil || before.TotalUW <= 0 {
		return 0, fmt.Errorf("power: invalid comparison operands")
	}
	return (after.TotalUW - before.TotalUW) / before.TotalUW * 100, nil
}
