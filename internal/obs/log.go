// Structured-logging construction: popsd's -log-level/-log-format flag
// pair resolves to a log/slog logger through NewLogger, and libraries
// that log optionally default to Discard.

package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds a slog.Logger writing to w at the named level
// ("debug", "info", "warn", "error") in the named format ("text" or
// "json"). Unknown names are errors, not silent defaults — a typo'd
// -log-level must fail startup, not run a daemon at the wrong
// verbosity.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text|json)", format)
	}
}

// Discard is a logger that drops everything — the default for library
// layers (the engine's HTTP service) until a daemon wires a real one.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }
