// Request tracing: ID generation, context propagation, and validation
// of client-supplied IDs. popsd assigns (or adopts) an X-Request-ID
// per HTTP request; the ID rides the request context into engine tasks
// and job records, so one ID connects the access log line, the job
// snapshot, and any task logs it produced.

package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// ctxKey is the private context-key type of this package.
type ctxKey int

const requestIDKey ctxKey = iota

// NewRequestID returns a fresh 16-hex-character random request ID.
func NewRequestID() string {
	var b [8]byte
	// crypto/rand.Read never fails on supported platforms (it aborts
	// the program instead), so the error is impossible to act on.
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// WithRequestID returns a context carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// maxRequestIDLen caps adopted client-supplied IDs — beyond this the
// header is treated as garbage and a fresh ID is assigned.
const maxRequestIDLen = 128

// ValidRequestID reports whether a client-supplied ID is safe to adopt
// and echo: non-empty, bounded, and printable ASCII without spaces or
// quotes (so it can ride a header, a JSON field and a log line
// unescaped).
func ValidRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}
