package obs

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
)

func TestCounterMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "test counter")
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		c.Inc()
		if v := c.Value(); v <= prev {
			t.Fatalf("counter went from %d to %d", prev, v)
		} else {
			prev = v
		}
	}
	c.Add(41)
	if c.Value() != 141 {
		t.Fatalf("counter = %d, want 141", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if g.Value() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Value())
	}
}

// TestHistogramBucketSums pins the accounting identities: the +Inf
// cumulative bucket equals the observation count, and sum/count match
// the observed values exactly.
func TestHistogramBucketSums(t *testing.T) {
	h := NewHistogram(1, 2, 5)
	vals := []float64{0.5, 1, 1.5, 2, 3, 7, 100}
	sum := 0.0
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if h.Count() != uint64(len(vals)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(vals))
	}
	if h.Sum() != sum {
		t.Fatalf("sum = %v, want %v", h.Sum(), sum)
	}
	// Per-bucket raw counts: (-inf,1]=2 (0.5, 1), (1,2]=2 (1.5, 2),
	// (2,5]=1 (3), (5,+inf)=2 (7, 100).
	want := []uint64{2, 2, 1, 2}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	total := uint64(0)
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	if total != h.Count() {
		t.Fatalf("bucket total %d != count %d", total, h.Count())
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds did not panic")
		}
	}()
	NewHistogram(2, 1)
}

// TestInstrumentsAllocationFree pins the hot-path contract: counter,
// gauge and histogram updates perform zero heap allocations, so
// instruments can sit inside the engine's zero-alloc sizing rounds.
func TestInstrumentsAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c", Label{"k", "v"})
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", nil)
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.Inc()
		g.Dec()
		h.Observe(0.0042)
		h.Observe(123.0)
	}); allocs != 0 {
		t.Fatalf("instrument updates allocated %.1f times per run, want 0", allocs)
	}
}

// TestWritePrometheus checks the exposition format: HELP/TYPE per
// family (once, even with several labelled series), counter and gauge
// sample lines, and the cumulative histogram rows.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	hits := r.Counter("memo_hits_total", "memo hits by family", Label{"family", "result"})
	bhits := r.Counter("memo_hits_total", "memo hits by family", Label{"family", "bounds"})
	q := r.Gauge("queue_depth", "tasks waiting")
	h := r.Histogram("task_seconds", "task duration", []float64{0.1, 1})

	hits.Add(3)
	bhits.Inc()
	q.Set(2)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP memo_hits_total memo hits by family\n",
		"# TYPE memo_hits_total counter\n",
		`memo_hits_total{family="result"} 3` + "\n",
		`memo_hits_total{family="bounds"} 1` + "\n",
		"# TYPE queue_depth gauge\n",
		"queue_depth 2\n",
		"# TYPE task_seconds histogram\n",
		`task_seconds_bucket{le="0.1"} 1` + "\n",
		`task_seconds_bucket{le="1"} 2` + "\n",
		`task_seconds_bucket{le="+Inf"} 3` + "\n",
		"task_seconds_sum 5.55\n",
		"task_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE memo_hits_total"); n != 1 {
		t.Errorf("family header emitted %d times, want once", n)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("x", "x")
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(2)
	r.Gauge("b", "b", Label{"k", "v"}).Set(-1)
	h := r.Histogram("c_seconds", "c", []float64{1})
	h.Observe(0.5)
	h.Observe(2)

	s := r.Snapshot()
	want := Snapshot{
		"a_total":         2,
		`b{k="v"}`:        -1,
		"c_seconds_count": 2,
		"c_seconds_sum":   2.5,
	}
	for k, v := range want {
		if s[k] != v {
			t.Errorf("snapshot[%q] = %v, want %v", k, s[k], v)
		}
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" {
		t.Fatal("empty context carries a request ID")
	}
	ctx = WithRequestID(ctx, "abc123")
	if got := RequestID(ctx); got != "abc123" {
		t.Fatalf("RequestID = %q, want abc123", got)
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Fatalf("two fresh IDs collided: %s", a)
	}
	if len(a) != 16 || !ValidRequestID(a) {
		t.Fatalf("generated ID %q is not a valid 16-char ID", a)
	}
}

func TestValidRequestID(t *testing.T) {
	cases := []struct {
		id string
		ok bool
	}{
		{"abc-123_X.y", true},
		{"", false},
		{"has space", false},
		{"tab\tchar", false},
		{"new\nline", false},
		{`quo"te`, false},
		{`back\slash`, false},
		{strings.Repeat("a", 128), true},
		{strings.Repeat("a", 129), false},
		{"non-ascii-é", false},
	}
	for _, c := range cases {
		if got := ValidRequestID(c.id); got != c.ok {
			t.Errorf("ValidRequestID(%q) = %v, want %v", c.id, got, c.ok)
		}
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hello", "k", 1)
	if out := buf.String(); !strings.Contains(out, `"msg":"hello"`) || !strings.Contains(out, `"k":1`) {
		t.Fatalf("json log line malformed: %s", out)
	}

	buf.Reset()
	log, err = NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("dropped")
	log.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Fatalf("level filter failed: %s", out)
	}

	for _, bad := range [][2]string{{"verbose", "text"}, {"info", "xml"}} {
		if _, err := NewLogger(&buf, bad[0], bad[1]); err == nil {
			t.Errorf("NewLogger(%q, %q) accepted", bad[0], bad[1])
		}
	}
}

// TestFormatFloat pins the +Inf rendering the text format requires.
func TestFormatFloat(t *testing.T) {
	if got := formatFloat(math.Inf(1)); got != "+Inf" {
		t.Fatalf("formatFloat(+inf) = %q", got)
	}
	if got := formatFloat(0.25); got != "0.25" {
		t.Fatalf("formatFloat(0.25) = %q", got)
	}
}
