// Package obs is the dependency-free observability substrate of the
// service: atomic metric instruments (counters, gauges, fixed-bucket
// histograms) with a Prometheus text-exposition writer, request-ID
// generation and context propagation, and log/slog construction
// helpers.
//
// The package is deliberately standard-library only — the module bans
// third-party dependencies — and its hot-path operations are
// allocation-free: Counter.Inc, Gauge.Set and Histogram.Observe touch
// nothing but pre-allocated atomics, so instruments can sit inside the
// engine's zero-alloc sizing rounds (pinned by
// core.TestOptimizeStepSteadyStateAllocationFree and
// TestInstrumentsAllocationFree here) without breaking that guarantee.
// All label values are fixed at registration time; exposition renders
// them only when /metrics is scraped.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; all methods are safe for concurrent use and
// allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//pops:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//pops:noalloc
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready
// to use; all methods are safe for concurrent use and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
//
//pops:noalloc
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (which may be negative).
//
//pops:noalloc
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Inc adds one.
//
//pops:noalloc
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
//
//pops:noalloc
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// atomicFloat is a float64 accumulated with compare-and-swap on its
// bit pattern — the histogram sum needs float addition without a lock.
type atomicFloat struct {
	bits atomic.Uint64
}

//pops:noalloc
func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket latency/size distribution. Buckets are
// chosen at construction; Observe is a linear scan over the bounds (a
// dozen entries — cheaper than binary search at this size) plus two
// atomic adds, with no allocation.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomicFloat
	count  atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. An implicit +Inf bucket catches everything beyond the last
// bound.
func NewHistogram(bounds ...float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending")
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// DurationBuckets are the default latency bounds in seconds: half a
// millisecond through ten seconds, roughly logarithmic — wide enough
// for both a c17 memo hit and a 500-point sweep of a large netlist.
func DurationBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// Observe records one value.
//
//pops:noalloc
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.value() }

// Label is one constant name="value" pair attached to an instrument at
// registration. Values never change after registration, so the hot
// path carries no label machinery at all.
type Label struct {
	Name, Value string
}

// kind discriminates the instrument held by a registration.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// metric is one registered instrument with its exposition identity.
type metric struct {
	name   string
	help   string
	kind   kind
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds registered instruments for exposition and snapshots.
// Registration happens at construction time (engine/server startup);
// reads happen on every scrape. A Registry is safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	// byName pins (help, kind) per family so two registrations of one
	// name cannot disagree on type — Prometheus forbids that.
	byName map[string]kind
}

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]kind)}
}

// Counter registers and returns a new counter. Registering the same
// name with different label sets creates one family with many series;
// registering it as a different instrument kind panics (a programming
// error, caught at startup).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, labels: labels, c: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, labels: labels, g: g})
	return g
}

// Histogram registers and returns a new histogram over bounds (nil
// selects DurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets()
	}
	h := NewHistogram(bounds...)
	r.register(&metric{name: name, help: help, kind: kindHistogram, labels: labels, h: h})
	return h
}

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k, ok := r.byName[m.name]; ok && k != m.kind {
		panic(fmt.Sprintf("obs: metric %s registered as two different kinds", m.name))
	}
	r.byName[m.name] = m.kind
	r.metrics = append(r.metrics, m)
}

// labelString renders {k="v",...} (empty string for no labels), with
// extra appended after the registered labels.
func labelString(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way the Prometheus text format
// expects (+Inf for the terminal bucket).
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%v", v)
}

// WritePrometheus renders every registered instrument in the
// Prometheus text exposition format, families in registration order,
// # HELP/# TYPE emitted once per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	seen := make(map[string]bool, len(metrics))
	for _, m := range metrics {
		if !seen[m.name] {
			seen[m.name] = true
			typ := map[kind]string{kindCounter: "counter", kindGauge: "gauge", kindHistogram: "histogram"}[m.kind]
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, typ); err != nil {
				return err
			}
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", m.name, labelString(m.labels), m.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s%s %d\n", m.name, labelString(m.labels), m.g.Value())
		case kindHistogram:
			err = writeHistogram(w, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative _bucket
// rows, then _sum and _count.
func writeHistogram(w io.Writer, m *metric) error {
	h := m.h
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		ls := labelString(m.labels, Label{Name: "le", Value: formatFloat(bound)})
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, ls, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %v\n", m.name, labelString(m.labels), h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, labelString(m.labels), h.Count())
	return err
}

// Snapshot is a flat point-in-time reading of a registry: counter and
// gauge series map name{labels} to their value; histograms contribute
// name_count{labels} and name_sum{labels}. The flat map marshals
// directly into JSON status bodies and BENCH records.
type Snapshot map[string]float64

// Snapshot reads every registered instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	s := make(Snapshot, len(metrics))
	for _, m := range metrics {
		ls := labelString(m.labels)
		switch m.kind {
		case kindCounter:
			s[m.name+ls] = float64(m.c.Value())
		case kindGauge:
			s[m.name+ls] = float64(m.g.Value())
		case kindHistogram:
			s[m.name+"_count"+ls] = float64(m.h.Count())
			s[m.name+"_sum"+ls] = m.h.Sum()
		}
	}
	return s
}
