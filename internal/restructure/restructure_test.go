package restructure

import (
	"testing"

	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/tech"
)

// norCircuit builds: a,b → nor(NOR2) → inv → out, plus c → NOR3 with
// an inverter-driven pin for absorption.
func norCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("nors")
	for _, in := range []string{"a", "b", "d"} {
		if _, err := c.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	add := func(name string, ty gate.Type, fanin ...string) {
		t.Helper()
		if _, err := c.AddGate(name, ty, fanin...); err != nil {
			t.Fatal(err)
		}
	}
	add("na", gate.Inv, "a")
	add("nor1", gate.Nor2, "na", "b")
	add("mid", gate.Inv, "nor1")
	add("nor2", gate.Nor3, "mid", "d", "b")
	add("out", gate.Inv, "nor2")
	if _, err := c.AddOutput("out", 10); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRewriteNORPreservesLogic(t *testing.T) {
	c := norCircuit(t)
	orig := c.Clone()
	rep := &Report{}
	if err := RewriteNOR(c, c.Node("nor1"), rep); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Node("nor1").Type != gate.Nand2 {
		t.Fatalf("nor1 is %v, want NAND2", c.Node("nor1").Type)
	}
	ce, err := logic.Equivalent(orig, c, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ce != nil {
		t.Fatalf("logic changed: %v", ce)
	}
	// The inverter-driven pin must have been absorbed.
	if rep.AbsorbedInverters != 1 {
		t.Fatalf("absorbed %d, want 1", rep.AbsorbedInverters)
	}
	if rep.AddedInverters == 0 {
		t.Fatal("no inverters added")
	}
}

func TestRewriteNOROnNonNOR(t *testing.T) {
	c := norCircuit(t)
	if err := RewriteNOR(c, c.Node("mid"), nil); err == nil {
		t.Fatal("rewriting an inverter accepted")
	}
}

func TestRewritePathNORsEquivalence(t *testing.T) {
	c := norCircuit(t)
	orig := c.Clone()
	nodes := []*netlist.Node{c.Node("nor1"), c.Node("mid"), c.Node("nor2"), c.Node("out")}
	rep, err := RewritePathNORs(c, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rewritten) != 2 {
		t.Fatalf("rewrote %v, want both NORs", rep.Rewritten)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	ce, err := logic.Equivalent(orig, c, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ce != nil {
		t.Fatalf("logic changed: %v", ce)
	}
	// No NOR remains on the rewritten set.
	for _, n := range nodes {
		switch n.Type {
		case gate.Nor2, gate.Nor3, gate.Nor4:
			t.Fatalf("%s still a NOR", n.Name)
		}
	}
}

func TestCollapseInverterPairs(t *testing.T) {
	c := netlist.New("pairs")
	if _, err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	add := func(name string, ty gate.Type, fanin ...string) {
		if _, err := c.AddGate(name, ty, fanin...); err != nil {
			t.Fatal(err)
		}
	}
	add("i1", gate.Inv, "a")
	add("i2", gate.Inv, "i1")
	add("g", gate.Inv, "i2")
	if _, err := c.AddOutput("g", 8); err != nil {
		t.Fatal(err)
	}
	orig := c.Clone()
	n, err := CollapseInverterPairs(c)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no pair collapsed")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	ce, err := logic.Equivalent(orig, c, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ce != nil {
		t.Fatalf("collapse changed logic: %v", ce)
	}
	// Chain of 3 inverters → 1 inverter.
	if got := len(c.Gates()); got != 1 {
		t.Fatalf("%d gates remain, want 1", got)
	}
}

func TestCollapseKeepsSharedInverters(t *testing.T) {
	c := netlist.New("shared")
	for _, in := range []string{"a", "b"} {
		if _, err := c.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	add := func(name string, ty gate.Type, fanin ...string) {
		if _, err := c.AddGate(name, ty, fanin...); err != nil {
			t.Fatal(err)
		}
	}
	add("i1", gate.Inv, "a")
	add("i2", gate.Inv, "i1")
	add("keep", gate.Nand2, "i1", "b") // non-collapsible consumer of i1
	if _, err := c.AddOutput("i2", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddOutput("keep", 8); err != nil {
		t.Fatal(err)
	}
	orig := c.Clone()
	if n, err := CollapseInverterPairs(c); err != nil || n != 1 {
		t.Fatalf("collapsed %d pairs (err %v), want 1", n, err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Node("i1") == nil {
		t.Fatal("inverter with a live consumer removed")
	}
	if c.Node("i2") != nil {
		t.Fatal("collapsed inverter survived")
	}
	ce, err := logic.Equivalent(orig, c, 0, 1)
	if err != nil || ce != nil {
		t.Fatalf("equivalence: %v %v", ce, err)
	}
}

func TestRewriteBenchmarkCriticalPath(t *testing.T) {
	// End-to-end: rewrite every NOR on a generated benchmark's
	// critical path and prove equivalence.
	p := tech.CMOS025()
	m := delay.NewModel(p)
	for _, name := range []string{"fpd", "c499"} {
		spec, err := iscas.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c := iscas.MustGenerate(spec)
		orig := c.Clone()
		res, err := sta.Analyze(c, m, sta.Config{})
		if err != nil {
			t.Fatal(err)
		}
		nodes := res.CriticalNodes()
		share := NorShare(nodes)
		rep, err := RewritePathNORs(c, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if share > 0 && len(rep.Rewritten) == 0 {
			t.Fatalf("%s: NORs on path but none rewritten", name)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ce, err := logic.Equivalent(orig, c, 250, 13)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ce != nil {
			t.Fatalf("%s: logic changed: %v", name, ce)
		}
	}
}

func TestNorShare(t *testing.T) {
	c := norCircuit(t)
	nodes := []*netlist.Node{c.Node("nor1"), c.Node("mid"), c.Node("nor2"), c.Node("out")}
	if got := NorShare(nodes); got != 0.5 {
		t.Fatalf("NorShare = %g, want 0.5", got)
	}
	if NorShare(nil) != 0 {
		t.Fatal("empty share must be 0")
	}
}

func TestRewriteNORWithPrimaryInputPins(t *testing.T) {
	// All pins driven by PIs: every input needs a fresh inverter.
	c := netlist.New("pi")
	for _, in := range []string{"a", "b"} {
		if _, err := c.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AddGate("n", gate.Nor2, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddOutput("n", 8); err != nil {
		t.Fatal(err)
	}
	orig := c.Clone()
	rep := &Report{}
	if err := RewriteNOR(c, c.Node("n"), rep); err != nil {
		t.Fatal(err)
	}
	if rep.AddedInverters != 3 { // two inputs + output
		t.Fatalf("added %d inverters, want 3", rep.AddedInverters)
	}
	ce, err := logic.Equivalent(orig, c, 0, 1)
	if err != nil || ce != nil {
		t.Fatalf("equivalence: %v %v", ce, err)
	}
}
