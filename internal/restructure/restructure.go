// Package restructure implements §4.2 of the paper: path acceleration
// by logic structure modification. Inefficient gates — NOR families,
// whose buffer-insertion limit Flimit is the lowest of the library
// (Table 2) — are replaced by their De Morgan duals:
//
//	NOR_n(a₁…a_n) = INV( NAND_n( INV(a₁) … INV(a_n) ) )
//
// The inverters required to conserve the logic function provide the
// same beneficial load dilution as inserted buffers, but the NAND core
// switches much faster than the NOR it replaces, so the transform is
// cheaper in delay and area than buffering the NOR (Table 4).
//
// Inverter absorption keeps the cost down: an input pin already driven
// by an inverter taps that inverter's source instead of adding a new
// one, and inverter pairs created by the rewrite are collapsed.
package restructure

import (
	"fmt"

	"repro/internal/gate"
	"repro/internal/netlist"
)

// Report summarizes a restructuring pass.
type Report struct {
	// Rewritten lists the NOR gates replaced by NAND duals.
	Rewritten []string
	// AddedInverters counts inverters inserted (inputs + outputs).
	AddedInverters int
	// AbsorbedInverters counts input pins that reused an existing
	// inverter instead of adding one.
	AbsorbedInverters int
	// Collapsed counts inverter pairs removed by the cleanup pass.
	Collapsed int
}

// RewriteNOR applies the De Morgan transform to a single NOR-family
// gate in place: input inverters (or absorptions), retype to the NAND
// dual, output inverter. The circuit remains functionally equivalent.
func RewriteNOR(c *netlist.Circuit, n *netlist.Node, rep *Report) error {
	switch n.Type {
	case gate.Nor2, gate.Nor3, gate.Nor4:
	default:
		return fmt.Errorf("restructure: %s is %v, not a NOR gate", n.Name, n.Type)
	}
	dual, ok := gate.DeMorganDual(n.Type)
	if !ok {
		return fmt.Errorf("restructure: no dual for %v", n.Type)
	}

	// Input side: absorb existing inverters, splice new ones elsewhere.
	for pin := 0; pin < len(n.Fanin); pin++ {
		d := n.Fanin[pin]
		if d.Type == gate.Inv {
			if _, err := c.BypassInverter(n, pin); err != nil {
				return err
			}
			if rep != nil {
				rep.AbsorbedInverters++
			}
			continue
		}
		if _, err := c.SpliceInput(n, pin, gate.Inv, netlist.DefaultGateCIn); err != nil {
			return err
		}
		if rep != nil {
			rep.AddedInverters++
		}
	}

	// Retype and invert the output.
	if err := c.ReplaceType(n, dual); err != nil {
		return err
	}
	if len(n.Fanout) > 0 {
		if _, err := c.InsertCell(n, gate.Inv, append([]*netlist.Node(nil), n.Fanout...), netlist.DefaultGateCIn); err != nil {
			return err
		}
		if rep != nil {
			rep.AddedInverters++
		}
	}
	if rep != nil {
		rep.Rewritten = append(rep.Rewritten, n.Name)
	}
	return nil
}

// CollapseInverterPairs removes chains INV→INV created by rewrites:
// every sink of the second inverter is rewired to the first inverter's
// source, and dead inverters are garbage-collected. Returns the number
// of pairs collapsed.
func CollapseInverterPairs(c *netlist.Circuit) (int, error) {
	collapsed := 0
	for changed := true; changed; {
		changed = false
		for _, n := range append([]*netlist.Node(nil), c.Nodes...) {
			if n.Type != gate.Inv || c.Node(n.Name) != n {
				continue
			}
			inner := n.Fanin
			if len(inner) != 1 || inner[0].Type != gate.Inv {
				continue
			}
			src := inner[0].Fanin[0]
			// Rewire every sink pin of n to src through the netlist's
			// own pin mutator, which keeps the one-fanout-entry-per-pin
			// invariant and the structural epoch in step (a sink may
			// take n on several pins, and then appears several times in
			// the snapshot: only the first visit finds pins left to
			// move).
			for _, s := range append([]*netlist.Node(nil), n.Fanout...) {
				for pin, f := range s.Fanin {
					if f == n {
						if err := c.RewirePin(s, pin, src); err != nil {
							return collapsed, err
						}
					}
				}
			}
			first := inner[0]
			c.RemoveIfDead(n)
			c.RemoveIfDead(first)
			collapsed++
			changed = true
		}
	}
	return collapsed, nil
}

// RewritePathNORs rewrites every NOR-family gate among the given nodes
// (typically a critical path) and collapses the inverter pairs the
// rewrites create. It returns a report of the changes.
func RewritePathNORs(c *netlist.Circuit, nodes []*netlist.Node) (*Report, error) {
	rep := &Report{}
	for _, n := range nodes {
		switch n.Type {
		case gate.Nor2, gate.Nor3, gate.Nor4:
			if err := RewriteNOR(c, n, rep); err != nil {
				return rep, err
			}
		}
	}
	collapsed, err := CollapseInverterPairs(c)
	rep.Collapsed = collapsed
	if err != nil {
		return rep, err
	}
	return rep, nil
}

// NorShare returns the fraction of the given nodes that are NOR-family
// gates — the candidate pool size for restructuring.
func NorShare(nodes []*netlist.Node) float64 {
	if len(nodes) == 0 {
		return 0
	}
	nor := 0
	for _, n := range nodes {
		switch n.Type {
		case gate.Nor2, gate.Nor3, gate.Nor4:
			nor++
		}
	}
	return float64(nor) / float64(len(nodes))
}
