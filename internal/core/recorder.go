// Recorder seam: the protocol reports coarse execution events —
// completed sizing rounds and per-stage wall time — through a small
// interface that defaults to a no-op. The concurrent engine plugs its
// metrics in here; library callers pay two static interface calls per
// round and nothing else, so the zero-allocation round guarantee
// (TestOptimizeStepSteadyStateAllocationFree) holds with and without
// instrumentation.

package core

import "time"

// Recorder observes protocol execution. Implementations must be safe
// for concurrent use (one Protocol serves every worker of the engine)
// and must not allocate on the round-granular calls — counters and
// histogram observations, not logging.
type Recorder interface {
	// RoundDone reports one executed optimization round (one
	// OptimizeStep that found work to do). structural is true when the
	// round mutated the netlist beyond gate sizes (buffer replay or a
	// De Morgan rewrite).
	RoundDone(structural bool)
	// StageDone reports the wall time of one protocol stage on
	// completion. Stages emitted by this package: "rounds" (the whole
	// sizing-round loop of a session) and "leakage" (the multi-Vt
	// assignment pass).
	StageDone(stage string, d time.Duration)
}

// StageRounds and StageLeakage name the stages this package reports to
// its Recorder; the engine adds "parse" and "bounds" at its own layer.
const (
	StageRounds  = "rounds"
	StageLeakage = "leakage"
)

// nopRecorder is the default Recorder: all events vanish.
type nopRecorder struct{}

func (nopRecorder) RoundDone(bool)                  {}
func (nopRecorder) StageDone(string, time.Duration) {}
