// Package core implements the paper's optimization protocol (Fig. 7):
//
//	Library characterization (Flimit determination)
//	Characterization of the optimization space:
//	    path classification, delay bounds Tmax/Tmin
//	Delay constraint distribution:
//	    Tc < Tmin                → structure modification (buffers, then
//	                               De Morgan rewrites at circuit level)
//	    weak   (Tc > 2.5·Tmin)   → gate sizing
//	    medium (1.2 < Tc/Tmin
//	            < 2.5)           → buffer insertion (area reduction)
//	    hard   (Tc < 1.2·Tmin)   → buffer insertion & global sizing
//
// The path-level entry point OptimizePath realizes the decision diagram
// on a bounded path; the circuit-level driver OptimizeCircuit iterates
// it over the worst paths of a netlist, replaying buffer insertions as
// logic-preserving inverter pairs and escalating to NOR→NAND
// restructuring when the constraint is below the buffered minimum
// delay.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/buffering"
	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/leakage"
	"repro/internal/netlist"
	"repro/internal/restructure"
	"repro/internal/sizing"
	"repro/internal/sta"
)

// Domain is the constraint-domain classification of Fig. 6/7.
type Domain int

const (
	// Infeasible: Tc below the minimum achievable delay — structure
	// modification required.
	Infeasible Domain = iota
	// Hard: Tc < 1.2·Tmin — buffer insertion and global sizing.
	Hard
	// Medium: 1.2·Tmin ≤ Tc ≤ 2.5·Tmin — buffer insertion saves area.
	Medium
	// Weak: Tc > 2.5·Tmin — plain gate sizing suffices.
	Weak
)

// Domain boundary ratios from the paper (Fig. 6).
const (
	HardBound   = 1.2
	MediumBound = 2.5
)

// String names the domain as in the paper.
func (d Domain) String() string {
	switch d {
	case Infeasible:
		return "infeasible"
	case Hard:
		return "hard"
	case Medium:
		return "medium"
	case Weak:
		return "weak"
	}
	return fmt.Sprintf("Domain(%d)", int(d))
}

// Classify places a constraint against the path's minimum delay.
func Classify(tc, tmin float64) Domain {
	switch {
	case tc < tmin:
		return Infeasible
	case tc < HardBound*tmin:
		return Hard
	case tc <= MediumBound*tmin:
		return Medium
	default:
		return Weak
	}
}

// Config parameterizes the protocol.
type Config struct {
	Model *delay.Model
	// Limits is the Flimit characterization; nil triggers
	// CharacterizeLibrary on first use.
	Limits map[gate.Type]float64
	// Sizing tunes the inner solvers.
	Sizing sizing.Options
	// STA configures path extraction for the circuit driver.
	STA sta.Config
	// MaxRounds bounds the optimize-worst-path iterations of the
	// circuit driver (default 12).
	MaxRounds int
	// Recorder receives round and stage events; nil selects a no-op.
	// Implementations must be concurrency-safe and allocation-free on
	// the per-round call (see the Recorder doc).
	Recorder Recorder
	// Parallelism is the intra-circuit parallelism policy applied to
	// the hot kernels — wavefront STA passes and sharded power
	// simulation (see internal/par for the grammar; 0 = auto). It is a
	// scheduling knob, never an analysis parameter: every degree
	// produces byte-identical results. NewProtocol folds it into
	// STA.Parallelism when that field is unset, and the leakage pass
	// inherits it for its power profile.
	Parallelism int
}

// Protocol is a configured instance of the Fig. 7 decision diagram.
type Protocol struct {
	cfg Config
	rec Recorder
}

// NewProtocol validates the configuration and characterizes the
// library if no Flimit table was supplied.
func NewProtocol(cfg Config) (*Protocol, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("core: Config.Model is required")
	}
	if err := cfg.Model.Proc.Validate(); err != nil {
		return nil, err
	}
	if cfg.Limits == nil {
		entries := buffering.CharacterizeLibrary(cfg.Model, nil, buffering.Options{})
		if len(entries) == 0 {
			return nil, fmt.Errorf("core: library characterization produced no Flimit entries")
		}
		cfg.Limits = buffering.Limits(entries)
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 12
	}
	if cfg.STA.Parallelism == 0 {
		cfg.STA.Parallelism = cfg.Parallelism
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = nopRecorder{}
	}
	return &Protocol{cfg: cfg, rec: rec}, nil
}

// Limits exposes the Flimit table in use.
func (p *Protocol) Limits() map[gate.Type]float64 { return p.cfg.Limits }

// PathOutcome reports the protocol's decision and result on one path.
type PathOutcome struct {
	Domain   Domain
	Tmin     float64 // minimum achievable delay of the original structure (ps)
	Tmax     float64 // all-minimum-drive delay (ps)
	Tc       float64 // the constraint (ps)
	Method   string  // technique the protocol selected
	Delay    float64 // achieved worst-edge delay (ps)
	Area     float64 // achieved ΣW (µm)
	Buffers  int     // buffers inserted
	Feasible bool    // whether Tc was met
	Path     *delay.Path
}

// stepWorkspace is the reusable per-round scratch of the session
// driver: path copies, critical-node and sizing buffers, and the
// StepResult/PathOutcome values themselves. One workspace serves one
// OptimizeSession run (and must not be shared across goroutines), so a
// steady-state size-only round performs no heap allocation — pinned by
// TestOptimizeStepSteadyStateAllocationFree. Structural rounds (buffer
// replay, De Morgan rewrites) still allocate for their mutations.
type stepWorkspace struct {
	sizing    sizing.Workspace
	crit      []*netlist.Node // critical-path extraction buffer
	changed   []*netlist.Node // incremental-update node buffer
	path      delay.Path      // extracted worst path
	tmaxPath  delay.Path      // Tmax throwaway copy
	work      delay.Path      // Tmin/Distribute working copy
	plain     delay.Path      // plain-sizing comparison copy
	outcome   PathOutcome
	step      StepResult
	pathNames []string // per-round path names, formatted once up front
}

// roundName returns the "<circuit>/round<N>" path name for a round,
// identical to the workspace-free OptimizeStep's naming. All MaxRounds
// names are formatted on first use, so steady-state rounds pay no
// Sprintf; indices past the precomputed window (possible only for
// external drivers that loop beyond MaxRounds) fall back to formatting.
func (ws *stepWorkspace) roundName(circuit string, round, maxRounds int) string {
	if ws.pathNames == nil {
		n := maxRounds
		if n <= round {
			n = round + 1
		}
		ws.pathNames = make([]string, n)
		for i := range ws.pathNames {
			ws.pathNames[i] = fmt.Sprintf("%s/round%d", circuit, i)
		}
	}
	if round < len(ws.pathNames) {
		return ws.pathNames[round]
	}
	return fmt.Sprintf("%s/round%d", circuit, round)
}

// OptimizePath runs the Fig. 7 decision diagram on a bounded path for
// constraint tc. The input path is not modified; the outcome carries
// the optimized copy.
func (p *Protocol) OptimizePath(pa *delay.Path, tc float64) (*PathOutcome, error) {
	return p.optimizePath(nil, pa, tc)
}

// optimizePath is OptimizePath over an optional workspace. With ws set,
// path copies and sizing results live in reused buffers, the sizing
// iteration trace is suppressed (pure observation — identical numbers),
// and the returned outcome points into the workspace: it is valid until
// the next round. The buffering optimizer keeps allocating its own
// structures either way (its calls receive a workspace-free Options so
// its internal sizing runs cannot alias the round's live results).
//
//pops:noalloc with a workspace every per-round copy lands in reused buffers
func (p *Protocol) optimizePath(ws *stepWorkspace, pa *delay.Path, tc float64) (*PathOutcome, error) {
	m := p.cfg.Model
	opts := p.cfg.Sizing
	var out *PathOutcome
	var tmaxPath, work *delay.Path
	if ws != nil {
		opts.NoTrace = true
		opts.Workspace = &ws.sizing
		tmaxPath = pa.CopyInto(&ws.tmaxPath)
		work = pa.CopyInto(&ws.work)
		out = &ws.outcome
		*out = PathOutcome{}
	} else {
		tmaxPath = pa.Clone()
		work = pa.Clone()
		out = &PathOutcome{} //popslint:ignore noalloc workspace-free convenience path (OptimizePath API), not the measured loop
	}
	bufOpts := opts
	bufOpts.Workspace = nil

	// Delay bounds: Tmax on a throwaway copy, Tmin on the working copy.
	tmax := sizing.Tmax(m, tmaxPath)
	rmin, err := sizing.Tmin(m, work, opts)
	if err != nil {
		return nil, err
	}
	out.Tmin = rmin.Delay
	out.Tmax = tmax
	out.Tc = tc
	out.Domain = Classify(tc, rmin.Delay)

	switch out.Domain {
	case Weak:
		res, err := sizing.Distribute(m, work, tc, opts)
		if err != nil {
			return nil, err
		}
		out.fill("sizing", work, res.Delay, res.Area, 0, true)
		return out, nil

	case Medium:
		// Sizing meets the constraint; buffer insertion may do so at
		// lower area (load dilution lets the gates shrink).
		plain := clonePlain(ws, pa)
		resPlain, err := sizing.Distribute(m, plain, tc, opts)
		if err != nil {
			return nil, err
		}
		buf, errBuf := buffering.DistributeWithBuffers(m, pa, tc, p.cfg.Limits, buffering.Local, bufOpts)
		if errBuf == nil && buf.Delay <= tc*(1+1e-6) && buf.Area < resPlain.Area {
			out.fill("buffer-insertion", buf.Path, buf.Delay, buf.Area, buf.Inserted, true)
			return out, nil
		}
		out.fill("sizing", plain, resPlain.Delay, resPlain.Area, 0, true)
		return out, nil

	case Hard:
		plain := clonePlain(ws, pa)
		resPlain, err := sizing.Distribute(m, plain, tc, opts)
		if err != nil {
			return nil, err
		}
		buf, errBuf := buffering.DistributeWithBuffers(m, pa, tc, p.cfg.Limits, buffering.Global, bufOpts)
		if errBuf == nil && buf.Delay <= tc*(1+1e-6) && buf.Area < resPlain.Area {
			out.fill("buffer-insertion+global-sizing", buf.Path, buf.Delay, buf.Area, buf.Inserted, true)
			return out, nil
		}
		out.fill("sizing", plain, resPlain.Delay, resPlain.Area, 0, true)
		return out, nil

	default: // Infeasible: structure modification.
		best, err := buffering.MinDelayWithBuffers(m, pa, p.cfg.Limits, bufOpts)
		if err != nil {
			return nil, err
		}
		if best.Delay <= tc {
			res, err := sizing.Distribute(m, best.Path, tc, opts)
			if err != nil && !isInfeasible(err) {
				return nil, err
			}
			if err == nil {
				out.fill("buffer-insertion+global-sizing", best.Path, res.Delay, res.Area, best.Inserted, true)
				return out, nil
			}
		}
		// Even the buffered structure cannot reach tc at path level;
		// report the best effort. The circuit driver escalates to
		// De Morgan restructuring.
		out.fill("structure-modification-required", best.Path, best.Delay, best.Area, best.Inserted, false)
		return out, nil
	}
}

// clonePlain copies pa into the workspace's plain-sizing buffer, or
// clones it fresh without a workspace.
func clonePlain(ws *stepWorkspace, pa *delay.Path) *delay.Path {
	if ws != nil {
		return pa.CopyInto(&ws.plain)
	}
	return pa.Clone()
}

//pops:noalloc
func (o *PathOutcome) fill(method string, pa *delay.Path, d, a float64, buffers int, feasible bool) {
	o.Method = method
	o.Path = pa
	o.Delay = d
	o.Area = a
	o.Buffers = buffers
	o.Feasible = feasible
}

func isInfeasible(err error) bool {
	return errors.Is(err, sizing.ErrInfeasible)
}

// CircuitOutcome reports the circuit-level protocol run.
type CircuitOutcome struct {
	Tc           float64
	Delay        float64 // final STA worst delay (ps)
	Area         float64 // final circuit ΣW (µm)
	Feasible     bool
	Rounds       int
	Buffers      int // inverter pairs inserted
	NorRewrites  int // NOR gates replaced by NAND duals
	PathOutcomes []*PathOutcome

	// Leakage reports the selective Vt-assignment pass when the run
	// was leakage-aware (OptimizeWithLeakage); nil otherwise.
	Leakage *leakage.Result
}

// StepResult reports one round of the circuit driver (one
// OptimizeStep call).
type StepResult struct {
	// Met is true when the circuit already satisfied Tc at entry; no
	// work was performed and every other field is zero.
	Met bool
	// WorstDelay is the STA worst delay observed at entry (ps).
	WorstDelay float64
	// Outcome is the path protocol's decision for this round.
	Outcome *PathOutcome
	// Buffers counts inverter pairs replayed into the netlist.
	Buffers int
	// NorRewrites counts NOR gates replaced by NAND duals.
	NorRewrites int
	// Progress reports whether the round changed the netlist
	// structure when the path protocol failed to meet the constraint
	// (buffer insertion or a De Morgan rewrite). When Outcome is
	// infeasible and Progress is false the driver is out of moves.
	Progress bool
}

// stepSlack: path-level rounds target a slightly tighter constraint so
// the netlist-level verification lands strictly inside Tc despite the
// bisection tolerance of the distribution step. The margin grows with
// the round count: paths sharing stages perturb each other when
// resized (the paper's "adjacent upward paths"), and a fixed margin
// can plateau just above Tc — progressive tightening forces strict
// progress until the whole path set converges. Capped at 2%.
const stepSlack = 5e-4

// NewTimingSession builds the reusable incremental-STA session the
// round-loop entry points below share: one session per circuit, its
// buffers recycled across every round, full re-analysis only when the
// circuit's structural epoch moves.
func (p *Protocol) NewTimingSession(c *netlist.Circuit) *sta.Session {
	return sta.NewSession(c, p.cfg.Model, p.cfg.STA)
}

// OptimizeStep runs one round of the circuit driver: analyze
// (incrementally, through the session), extract the worst path, run the
// Fig. 7 path protocol at a progressively tightened constraint, write
// the sizes back, replay inserted buffers as inverter pairs, and
// escalate to De Morgan NOR rewrites when the path protocol cannot
// reach Tc. The round index selects the tightening margin; callers
// iterating from zero reproduce OptimizeCircuit exactly. The session's
// circuit is modified in place.
//
// Size-only rounds repair the session's timing with an incremental
// Update over the resized path; structural rounds (buffer replay, NOR
// rewrites) bump the circuit's epoch, and the next step re-analyzes
// into the session's reused buffers. Either way the timing handed to
// the following round is bit-identical to a fresh full analysis.
//
// Exporting the step lets external drivers — notably the concurrent
// batch engine in internal/engine — interleave rounds with
// cancellation checks and progress reporting while remaining
// result-identical to OptimizeCircuit.
func (p *Protocol) OptimizeStep(sess *sta.Session, tc float64, round int) (*StepResult, error) {
	return p.optimizeStep(nil, sess, tc, round)
}

// optimizeStep is OptimizeStep over an optional workspace: with ws set,
// the critical path, its bounded-path object, the sizing scratch and
// the returned StepResult/PathOutcome all live in reused buffers, so a
// size-only round allocates nothing. The returned result is valid
// until the next optimizeStep call with the same workspace — the
// session loop copies what it keeps.
//
//pops:noalloc size-only rounds with a workspace are the measured zero-alloc path
func (p *Protocol) optimizeStep(ws *stepWorkspace, sess *sta.Session, tc float64, round int) (*StepResult, error) {
	m := p.cfg.Model
	c := sess.Circuit()
	res, err := sess.Analyze()
	if err != nil {
		return nil, err
	}
	var st *StepResult
	if ws != nil {
		st = &ws.step
		*st = StepResult{}
	} else {
		st = &StepResult{} //popslint:ignore noalloc workspace-free convenience path (OptimizeStep API), not the measured loop
	}
	st.WorstDelay = res.WorstDelay
	if res.WorstDelay <= tc {
		st.Met = true
		return st, nil
	}
	tighten := stepSlack * float64(1+round)
	if tighten > 0.02 {
		tighten = 0.02
	}
	tcEff := tc * (1 - tighten)
	var pa *delay.Path
	if ws != nil {
		ws.crit = res.AppendCriticalNodes(ws.crit)
		if len(ws.crit) == 0 {
			//popslint:ignore noalloc degenerate-circuit error path
			return nil, fmt.Errorf("core: circuit %s has no critical path", c.Name)
		}
		name := ws.roundName(c.Name, round, p.cfg.MaxRounds)
		if err := sta.PathFromNodesInto(&ws.path, name, ws.crit, m, p.cfg.STA); err != nil {
			return nil, err
		}
		pa = &ws.path
	} else {
		// Workspace-free convenience path (OptimizeStep API): allocation
		// here is expected, only the ws branch above is measured.
		nodes := res.CriticalNodes()
		if len(nodes) == 0 {
			//popslint:ignore noalloc degenerate-circuit error path
			return nil, fmt.Errorf("core: circuit %s has no critical path", c.Name)
		}
		//popslint:ignore noalloc workspace-free path names its round ad hoc
		pa, err = sta.PathFromNodes(fmt.Sprintf("%s/round%d", c.Name, round), nodes, m, p.cfg.STA)
		if err != nil {
			return nil, err
		}
	}
	po, err := p.optimizePath(ws, pa, tcEff)
	if err != nil {
		return nil, err
	}
	st.Outcome = po

	// Apply sizes of the original stages back to the netlist.
	po.Path.WriteBack()

	// Replay inserted buffers as inverter pairs.
	inserted, err := replayBuffers(c, m, po.Path)
	if err != nil {
		return nil, err
	}
	st.Buffers = inserted

	if !po.Feasible {
		// Structure modification: De Morgan the path's NORs.
		rep, err := restructure.RewritePathNORs(c, logicNodes(po.Path))
		if err != nil {
			return nil, err
		}
		st.NorRewrites = len(rep.Rewritten)
		st.Progress = len(rep.Rewritten) > 0 || inserted > 0
	}

	// Repair the session's timing in place when the round only resized
	// gates; after structural mutations the epoch has moved and the next
	// Analyze re-propagates the whole circuit into the same buffers.
	if res.Fresh() {
		changed := appendLogicNodes(wsChanged(ws), po.Path)
		if ws != nil {
			ws.changed = changed
		}
		if _, err := res.Update(changed...); err != nil {
			return nil, err
		}
	}
	p.rec.RoundDone(st.Buffers > 0 || st.NorRewrites > 0)
	return st, nil
}

// wsChanged returns the workspace's incremental-update buffer
// (truncated), or nil without a workspace.
func wsChanged(ws *stepWorkspace) []*netlist.Node {
	if ws == nil {
		return nil
	}
	return ws.changed[:0]
}

// Summarize closes a stepped run: it re-analyzes the circuit (served
// from the session's incremental state when still fresh) and fills the
// outcome's final delay, feasibility and area. External step drivers
// call it after their round loop; OptimizeCircuit uses it for its own
// epilogue.
func (p *Protocol) Summarize(sess *sta.Session, out *CircuitOutcome) error {
	res, err := sess.Analyze()
	if err != nil {
		return err
	}
	out.Delay = res.WorstDelay
	out.Feasible = res.WorstDelay <= out.Tc
	out.Area = sess.Circuit().Area(p.cfg.Model.Proc.WidthForCap)
	return nil
}

// OptimizeCircuit drives the protocol over a netlist: repeatedly
// extract the worst path, run the path protocol, write the sizes back,
// replay buffer insertions as logic-preserving inverter pairs, and —
// when even buffering cannot reach Tc — rewrite the path's NOR gates by
// De Morgan duals before retrying. The circuit is modified in place;
// clone first to keep the original.
func (p *Protocol) OptimizeCircuit(c *netlist.Circuit, tc float64) (*CircuitOutcome, error) {
	return p.OptimizeCircuitContext(context.Background(), c, tc)
}

// OptimizeCircuitContext is OptimizeCircuit with cancellation between
// rounds: it builds one timing session for the circuit and runs the
// session driver below.
func (p *Protocol) OptimizeCircuitContext(ctx context.Context, c *netlist.Circuit, tc float64) (*CircuitOutcome, error) {
	return p.OptimizeSession(ctx, p.NewTimingSession(c), tc)
}

// OptimizeSession is the round loop shared by the sequential path and
// the concurrent engine: both accumulate outcomes through the exact
// same steps over one reusable timing session, so results are
// byte-identical regardless of the driver. The session (usually from
// NewTimingSession) must be configured like the protocol's own STA.
//
// The loop owns a step workspace: every round's path extraction,
// sizing scratch and result values live in buffers reused across
// rounds, so a steady-state size-only round performs no heap
// allocation; only the retained per-round PathOutcome record is copied
// out of the workspace.
func (p *Protocol) OptimizeSession(ctx context.Context, sess *sta.Session, tc float64) (*CircuitOutcome, error) {
	ws := &stepWorkspace{}
	out := &CircuitOutcome{Tc: tc}
	start := time.Now()
	for round := 0; round < p.cfg.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		st, err := p.optimizeStep(ws, sess, tc, round)
		if err != nil {
			return nil, err
		}
		if st.Met {
			out.Feasible = true
			break
		}
		// The workspace recycles its PathOutcome (and its Path) next
		// round: copy the record before retaining it.
		po := *st.Outcome
		po.Path = st.Outcome.Path.Clone()
		out.PathOutcomes = append(out.PathOutcomes, &po)
		out.Rounds = round + 1
		out.Buffers += st.Buffers
		out.NorRewrites += st.NorRewrites
		if !st.Outcome.Feasible && !st.Progress {
			// Out of moves: the constraint is unreachable.
			break
		}
	}
	p.rec.StageDone(StageRounds, time.Since(start))
	if err := p.Summarize(sess, out); err != nil {
		return nil, err
	}
	return out, nil
}

// OptimizeWithLeakage runs the full protocol and then the selective
// multi-Vt assignment pass of internal/leakage: gates on non-critical
// paths are promoted to higher-threshold devices, each move verified by
// incremental STA against Tc, cutting subthreshold leakage at zero
// area and zero dynamic-power cost. The outcome's Delay and Feasible
// reflect the final Vt-aware timing; its Leakage field carries the
// power breakdown (dynamic, leakage before/after, total).
//
// A zero opts is the default policy: promote as far as HVT, default
// power-simulation vectors, and the protocol's own STA configuration.
func (p *Protocol) OptimizeWithLeakage(ctx context.Context, c *netlist.Circuit, tc float64, opts leakage.Options) (*CircuitOutcome, error) {
	return p.OptimizeWithLeakageSession(ctx, p.NewTimingSession(c), tc, opts)
}

// OptimizeWithLeakageSession is OptimizeWithLeakage over a
// caller-supplied timing session: the sizing rounds and the Vt pass
// share the same incremental state, so the leakage pass starts from the
// already-propagated timing instead of re-analyzing the circuit.
func (p *Protocol) OptimizeWithLeakageSession(ctx context.Context, sess *sta.Session, tc float64, opts leakage.Options) (*CircuitOutcome, error) {
	out, err := p.OptimizeSession(ctx, sess, tc)
	if err != nil {
		return nil, err
	}
	if opts.STA == (sta.Config{}) {
		opts.STA = p.cfg.STA
	}
	// Parallelism is a scheduling knob, not an analysis parameter: the
	// session may carry a per-task degree (engine idle-capacity sizing)
	// that must not force a second leakage session. Normalize it before
	// deciding whether the Vt pass needs different analysis slopes, and
	// let the power profile inherit the protocol's degree when the
	// caller left it on auto.
	opts.STA.Parallelism = sess.Config().Parallelism
	if opts.Power.Parallelism == 0 {
		opts.Power.Parallelism = sess.Config().Parallelism
	}
	lsess := sess
	if opts.STA != sess.Config() {
		// The caller asked for different slopes in the Vt pass: give the
		// leakage pass its own session at that configuration.
		lsess = sta.NewSession(sess.Circuit(), p.cfg.Model, opts.STA)
	}
	start := time.Now()
	lr, err := leakage.AssignSession(ctx, lsess, tc, opts)
	if err != nil {
		return nil, err
	}
	p.rec.StageDone(StageLeakage, time.Since(start))
	out.Leakage = lr
	out.Delay = lr.Delay
	out.Feasible = lr.Delay <= tc
	return out, nil
}

// logicNodes returns the netlist nodes of the path's original stages.
func logicNodes(pa *delay.Path) []*netlist.Node {
	return appendLogicNodes(nil, pa)
}

// appendLogicNodes is logicNodes into a recycled buffer.
func appendLogicNodes(dst []*netlist.Node, pa *delay.Path) []*netlist.Node {
	for i := range pa.Stages {
		if n := pa.Stages[i].Node; n != nil {
			dst = append(dst, n)
		}
	}
	return dst
}

// replayBuffers mirrors the path's inserted inverter stages into the
// netlist as inverter pairs (function-preserving). The pair's second
// inverter receives the optimizer's buffer size; the first is a small
// fixed stage. Returns the number of pairs inserted.
func replayBuffers(c *netlist.Circuit, m *delay.Model, pa *delay.Path) (int, error) {
	inserted := 0
	for i := range pa.Stages {
		st := &pa.Stages[i]
		if !st.Inserted {
			continue
		}
		// Find the nearest upstream original stage: its node drives
		// the net the buffer was inserted on.
		var driver *netlist.Node
		for j := i - 1; j >= 0; j-- {
			if pa.Stages[j].Node != nil {
				driver = pa.Stages[j].Node
				break
			}
		}
		if driver == nil || len(driver.Fanout) == 0 {
			continue
		}
		first := math.Max(m.Proc.CRef, st.CIn/4)
		if _, _, err := c.InsertBufferPair(driver, append([]*netlist.Node(nil), driver.Fanout...), first, st.CIn); err != nil {
			return inserted, err
		}
		inserted++
	}
	return inserted, nil
}
