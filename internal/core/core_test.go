package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sizing"
	"repro/internal/sta"
	"repro/internal/tech"
)

func protocol(t *testing.T) *Protocol {
	t.Helper()
	m := delay.NewModel(tech.CMOS025())
	p, err := NewProtocol(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestClassifyBoundaries(t *testing.T) {
	cases := []struct {
		tc, tmin float64
		want     Domain
	}{
		{90, 100, Infeasible},
		{100, 100, Hard},
		{119, 100, Hard},
		{121, 100, Medium},
		{250, 100, Medium},
		{251, 100, Weak},
		{1000, 100, Weak},
	}
	for _, c := range cases {
		if got := Classify(c.tc, c.tmin); got != c.want {
			t.Fatalf("Classify(%g, %g) = %v, want %v", c.tc, c.tmin, got, c.want)
		}
	}
}

func TestDomainString(t *testing.T) {
	for d, want := range map[Domain]string{
		Infeasible: "infeasible", Hard: "hard", Medium: "medium", Weak: "weak",
	} {
		if d.String() != want {
			t.Fatalf("%v.String() = %q", int(d), d.String())
		}
	}
	if !strings.Contains(Domain(9).String(), "9") {
		t.Fatal("unknown domain string")
	}
}

func TestNewProtocolValidation(t *testing.T) {
	if _, err := NewProtocol(Config{}); err == nil {
		t.Fatal("nil model accepted")
	}
	bad := tech.CMOS025()
	bad.Tau = -1
	if _, err := NewProtocol(Config{Model: delay.NewModel(bad)}); err == nil {
		t.Fatal("invalid corner accepted")
	}
	p := protocol(t)
	if len(p.Limits()) < 5 {
		t.Fatalf("library characterization too small: %v", p.Limits())
	}
}

// benchPath extracts the critical path of a generated benchmark.
func benchPath(t *testing.T, name string) (*Protocol, *delay.Path) {
	t.Helper()
	p := protocol(t)
	spec, err := iscas.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	c := iscas.MustGenerate(spec)
	pa, _, err := sta.CriticalPath(c, p.cfg.Model, p.cfg.STA)
	if err != nil {
		t.Fatal(err)
	}
	return p, pa
}

func TestOptimizePathDomains(t *testing.T) {
	p, pa := benchPath(t, "c432")
	rt, err := sizing.Tmin(p.cfg.Model, pa.Clone(), p.cfg.Sizing)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		ratio  float64
		domain Domain
	}{
		{1.05, Hard},
		{1.6, Medium},
		{3.2, Weak},
	}
	for _, tc := range cases {
		out, err := p.OptimizePath(pa, tc.ratio*rt.Delay)
		if err != nil {
			t.Fatal(err)
		}
		if out.Domain != tc.domain {
			t.Fatalf("ratio %g: domain %v, want %v", tc.ratio, out.Domain, tc.domain)
		}
		if !out.Feasible {
			t.Fatalf("ratio %g: not feasible", tc.ratio)
		}
		if out.Delay > tc.ratio*rt.Delay*(1+1e-3) {
			t.Fatalf("ratio %g: delay %g misses Tc", tc.ratio, out.Delay)
		}
		if out.Area <= 0 || out.Tmin <= 0 || out.Tmax < out.Tmin {
			t.Fatalf("ratio %g: degenerate outcome %+v", tc.ratio, out)
		}
	}
}

func TestOptimizePathInfeasibleUsesBuffers(t *testing.T) {
	p, pa := benchPath(t, "c880")
	rt, err := sizing.Tmin(p.cfg.Model, pa.Clone(), p.cfg.Sizing)
	if err != nil {
		t.Fatal(err)
	}
	// Below the unbuffered minimum but above the buffered one: the
	// protocol must recover feasibility by structure modification.
	out, err := p.OptimizePath(pa, 0.9*rt.Delay)
	if err != nil {
		t.Fatal(err)
	}
	if out.Domain != Infeasible {
		t.Fatalf("domain %v, want infeasible", out.Domain)
	}
	if !out.Feasible {
		t.Skipf("buffering cannot recover 0.9·Tmin on this instance (delay %.0f)", out.Delay)
	}
	if out.Buffers == 0 {
		t.Fatal("feasible infeasible-domain outcome without buffers")
	}
	if out.Delay > 0.9*rt.Delay*(1+1e-3) {
		t.Fatalf("delay %g misses 0.9·Tmin", out.Delay)
	}
}

func TestOptimizePathAreaOrdering(t *testing.T) {
	// Looser constraints must never cost more area.
	p, pa := benchPath(t, "c1355")
	rt, _ := sizing.Tmin(p.cfg.Model, pa.Clone(), p.cfg.Sizing)
	prev := math.Inf(1)
	for _, ratio := range []float64{1.05, 1.4, 2.0, 3.0} {
		out, err := p.OptimizePath(pa, ratio*rt.Delay)
		if err != nil {
			t.Fatal(err)
		}
		if out.Area > prev*(1+0.02) {
			t.Fatalf("area %g at ratio %g above %g at tighter constraint", out.Area, ratio, prev)
		}
		prev = out.Area
	}
}

func TestOptimizeCircuitFeasibleAndEquivalent(t *testing.T) {
	m := delay.NewModel(tech.CMOS025())
	p, err := NewProtocol(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fpd", "c432"} {
		spec, err := iscas.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c := iscas.MustGenerate(spec)
		orig := c.Clone()
		pa, _, err := sta.CriticalPath(c, m, sta.Config{})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := sizing.Tmin(m, pa.Clone(), sizing.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tc := 1.35 * rt.Delay
		out, err := p.OptimizeCircuit(c, tc)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Feasible {
			t.Fatalf("%s: protocol failed to meet %g (got %g)", name, tc, out.Delay)
		}
		if out.Delay > tc {
			t.Fatalf("%s: delay %g above Tc %g", name, out.Delay, tc)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: circuit corrupted: %v", name, err)
		}
		ce, err := logic.Equivalent(orig, c, 200, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ce != nil {
			t.Fatalf("%s: protocol changed the logic: %v", name, ce)
		}
		if out.Rounds == 0 || out.Area <= 0 {
			t.Fatalf("%s: degenerate outcome %+v", name, out)
		}
	}
}

func TestOptimizeCircuitUnreachableConstraint(t *testing.T) {
	m := delay.NewModel(tech.CMOS025())
	p, err := NewProtocol(Config{Model: m, MaxRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := iscas.ByName("fpd")
	c := iscas.MustGenerate(spec)
	orig := c.Clone()
	out, err := p.OptimizeCircuit(c, 1) // 1 ps: impossible
	if err != nil {
		t.Fatal(err)
	}
	if out.Feasible {
		t.Fatal("impossible constraint reported feasible")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("failed run corrupted circuit: %v", err)
	}
	// Even failed optimization preserves the function.
	ce, err := logic.Equivalent(orig, c, 150, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ce != nil {
		t.Fatalf("failed run changed logic: %v", ce)
	}
}

func TestOptimizeCircuitRewritesNORs(t *testing.T) {
	// Craft a NOR-heavy chain with an unreachable-by-sizing constraint
	// so the driver must restructure.
	m := delay.NewModel(tech.CMOS025())
	p, err := NewProtocol(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	c := buildNorChain(t)
	orig := c.Clone()
	pa, _, err := sta.CriticalPath(c, m, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := sizing.Tmin(m, pa.Clone(), sizing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.OptimizeCircuit(c, 0.85*rt.Delay)
	if err != nil {
		t.Fatal(err)
	}
	if out.NorRewrites == 0 {
		t.Skipf("constraint recovered without rewrites (delay %.0f, feasible %v)", out.Delay, out.Feasible)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	ce, err := logic.Equivalent(orig, c, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ce != nil {
		t.Fatalf("restructuring changed logic: %v", ce)
	}
}

// buildNorChain makes a NOR-dominated chain with heavy terminal load —
// the worst case for sizing, the best case for De Morgan rewriting.
func buildNorChain(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("norchain")
	for _, in := range []string{"a", "b"} {
		if _, err := c.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	prev := "a"
	for i := 0; i < 8; i++ {
		name := "n" + string(rune('0'+i))
		var err error
		if i%2 == 0 {
			_, err = c.AddGate(name, gate.Nor3, prev, "b", "a")
		} else {
			_, err = c.AddGate(name, gate.Nor2, prev, "b")
		}
		if err != nil {
			t.Fatal(err)
		}
		prev = name
	}
	if _, err := c.AddOutput(prev, 60); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestIsInfeasibleHelper(t *testing.T) {
	if !isInfeasible(sizing.ErrInfeasible) {
		t.Fatal("bare sentinel not recognized")
	}
	wrapped := fmt.Errorf("context: %w", sizing.ErrInfeasible)
	if !isInfeasible(wrapped) {
		t.Fatal("wrapped sentinel not recognized")
	}
	if isInfeasible(fmt.Errorf("other")) {
		t.Fatal("unrelated error classified infeasible")
	}
	if isInfeasible(nil) {
		t.Fatal("nil classified infeasible")
	}
}
