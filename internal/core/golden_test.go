package core

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/delay"
	"repro/internal/iscas"
	"repro/internal/leakage"
	"repro/internal/sizing"
	"repro/internal/sta"
	"repro/internal/tech"
)

// The session-equivalence golden: every suite benchmark × constraint
// ratio, optimized by the plain protocol and by the leakage-aware
// protocol, pinned byte-identical against the outcomes recorded before
// the timing-session refactor. The incremental session must be
// indistinguishable from the historical full-Analyze-per-round driver,
// down to the last float bit.
//
// Regenerate (only when the protocol itself legitimately changes):
//
//	go test ./internal/core -run TestSessionGolden -update-session-golden

var updateSessionGolden = flag.Bool("update-session-golden", false,
	"rewrite testdata/session_golden.json from the current protocol")

const sessionGoldenPath = "testdata/session_golden.json"

// goldenCell is one (circuit, ratio) outcome. Float64 values survive
// the JSON round-trip exactly (encoding/json emits the shortest
// representation that parses back to the same bits), so == comparison
// of decoded cells is a bit-level check.
type goldenCell struct {
	Circuit string  `json:"circuit"`
	Ratio   float64 `json:"ratio"`
	Tc      float64 `json:"tc"`

	Delay       float64 `json:"delay"`
	Area        float64 `json:"area"`
	Feasible    bool    `json:"feasible"`
	Rounds      int     `json:"rounds"`
	Buffers     int     `json:"buffers"`
	NorRewrites int     `json:"norRewrites"`

	LeakDelay     float64 `json:"leakDelay"`
	Promoted      int     `json:"promoted"`
	StaticAfterUW float64 `json:"staticAfterUW"`
	TotalAfterUW  float64 `json:"totalAfterUW"`
}

var goldenRatios = []float64{1.2, 1.5, 2.0}

// goldenTmin computes the constraint anchor exactly like the engine: the
// minimum achievable delay of the critical path of a fresh instance.
func goldenTmin(t *testing.T, m *delay.Model, name string) float64 {
	t.Helper()
	c, err := iscas.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	pa, _, err := sta.CriticalPath(c, m, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sizing.Tmin(m, pa, sizing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r.Delay
}

func computeGoldenCell(t *testing.T, p *Protocol, m *delay.Model, name string, ratio, tmin float64) goldenCell {
	t.Helper()
	tc := ratio * tmin
	cell := goldenCell{Circuit: name, Ratio: ratio, Tc: tc}

	c, err := iscas.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.OptimizeCircuit(c, tc)
	if err != nil {
		t.Fatal(err)
	}
	cell.Delay = out.Delay
	cell.Area = out.Area
	cell.Feasible = out.Feasible
	cell.Rounds = out.Rounds
	cell.Buffers = out.Buffers
	cell.NorRewrites = out.NorRewrites

	cl, err := iscas.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	lout, err := p.OptimizeWithLeakage(context.Background(), cl, tc, leakage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cell.LeakDelay = lout.Delay
	cell.Promoted = lout.Leakage.Promoted
	cell.StaticAfterUW = lout.Leakage.StaticAfterUW
	cell.TotalAfterUW = lout.Leakage.TotalAfterUW
	return cell
}

// TestSessionGolden pins the protocol outcomes — plain and
// leakage-aware — for every suite benchmark at ratios {1.2, 1.5, 2.0}
// against the pre-refactor record. With -short only the four fastest
// benchmarks are checked.
func TestSessionGolden(t *testing.T) {
	m := delay.NewModel(tech.CMOS025())
	p, err := NewProtocol(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{}
	for _, s := range iscas.Suite() {
		names = append(names, s.Name)
	}
	if testing.Short() && !*updateSessionGolden {
		names = []string{"fpd", "c432", "c880", "c1355"}
	}

	var cells []goldenCell
	for _, name := range names {
		tmin := goldenTmin(t, m, name)
		for _, ratio := range goldenRatios {
			cells = append(cells, computeGoldenCell(t, p, m, name, ratio, tmin))
		}
	}

	if *updateSessionGolden {
		data, err := json.MarshalIndent(cells, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(sessionGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(sessionGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d cells to %s", len(cells), sessionGoldenPath)
		return
	}

	data, err := os.ReadFile(sessionGoldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update-session-golden): %v", err)
	}
	var want []goldenCell
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]goldenCell, len(want))
	for _, cl := range want {
		byKey[cl.Circuit+"@"+formatRatio(cl.Ratio)] = cl
	}
	for _, got := range cells {
		key := got.Circuit + "@" + formatRatio(got.Ratio)
		exp, ok := byKey[key]
		if !ok {
			t.Errorf("%s: no golden cell recorded", key)
			continue
		}
		if got != exp {
			t.Errorf("%s diverged from pre-refactor outcome:\n got %+v\nwant %+v", key, got, exp)
		}
	}
}

func formatRatio(r float64) string {
	b, _ := json.Marshal(r)
	return string(b)
}

// TestSessionedCircuitMutationStillValid guards the in-place contract:
// after an optimize run the circuit must still validate (the session
// refactor must not leave half-linked mutations behind).
func TestSessionedCircuitMutationStillValid(t *testing.T) {
	m := delay.NewModel(tech.CMOS025())
	p, err := NewProtocol(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	c, err := iscas.Load("fpd")
	if err != nil {
		t.Fatal(err)
	}
	tmin := goldenTmin(t, m, "fpd")
	if _, err := p.OptimizeCircuit(c, 1.2*tmin); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
