package core

import (
	"testing"

	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/iscas"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sizing"
	"repro/internal/sta"
	"repro/internal/tech"
)

// Integration tests of the circuit-level protocol beyond the basic
// feasibility checks: idempotence, interacting paths, and robustness.

func TestProtocolIdempotentOnFeasibleCircuit(t *testing.T) {
	m := delay.NewModel(tech.CMOS025())
	p, err := NewProtocol(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := iscas.ByName("fpd")
	c := iscas.MustGenerate(spec)
	res, err := sta.Analyze(c, m, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A constraint the unsized circuit already meets: nothing to do.
	tc := res.WorstDelay * 1.2
	out, err := p.OptimizeCircuit(c, tc)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Feasible {
		t.Fatal("already-met constraint reported infeasible")
	}
	if out.Buffers != 0 || out.NorRewrites != 0 || len(out.PathOutcomes) != 0 {
		t.Fatalf("protocol mutated a feasible circuit: %+v", out)
	}
}

func TestProtocolConvergesOnInteractingPaths(t *testing.T) {
	// Two paths sharing a stem: sizing one reshapes the other (the
	// paper's "adjacent upward paths" problem). The driver must
	// converge across rounds, not oscillate.
	m := delay.NewModel(tech.CMOS025())
	p, err := NewProtocol(Config{Model: m, MaxRounds: 16})
	if err != nil {
		t.Fatal(err)
	}
	c := netlist.New("interact")
	for _, in := range []string{"a", "b"} {
		if _, err := c.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	add := func(name string, ty gate.Type, fanin ...string) {
		t.Helper()
		if _, err := c.AddGate(name, ty, fanin...); err != nil {
			t.Fatal(err)
		}
	}
	// Shared stem.
	add("stem1", gate.Inv, "a")
	add("stem2", gate.Nand2, "stem1", "b")
	// Branch 1: deep.
	prev := "stem2"
	for i := 0; i < 6; i++ {
		name := "p" + string(rune('0'+i))
		add(name, gate.Inv, prev)
		prev = name
	}
	if _, err := c.AddOutput(prev, 25); err != nil {
		t.Fatal(err)
	}
	// Branch 2: slightly shallower but heavily loaded.
	prev = "stem2"
	for i := 0; i < 5; i++ {
		name := "q" + string(rune('0'+i))
		add(name, gate.Nor2, prev, "b")
		prev = name
	}
	if _, err := c.AddOutput(prev, 60); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}

	res, err := sta.Analyze(c, m, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	orig := c.Clone()
	tc := res.WorstDelay * 0.45
	out, err := p.OptimizeCircuit(c, tc)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Feasible {
		t.Fatalf("interacting paths not converged: final %.0f vs tc %.0f after %d rounds",
			out.Delay, tc, out.Rounds)
	}
	// Multiple rounds should have been needed (both branches get
	// touched).
	if out.Rounds < 2 {
		t.Logf("converged in %d round(s) — single-round convergence is fine but unexpected", out.Rounds)
	}
	ce, err := logic.Equivalent(orig, c, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ce != nil {
		t.Fatalf("logic changed: %v", ce)
	}
}

func TestProtocolTighteningSequence(t *testing.T) {
	// Repeatedly tightening the constraint on the same circuit must
	// keep succeeding until the structural floor, with area rising
	// monotonically-ish.
	m := delay.NewModel(tech.CMOS025())
	p, err := NewProtocol(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := iscas.ByName("c880")
	base := iscas.MustGenerate(spec)
	pa, _, err := sta.CriticalPath(base, m, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := tminOf(m, pa)
	if err != nil {
		t.Fatal(err)
	}
	prevArea := 0.0
	for _, ratio := range []float64{2.5, 1.6, 1.2} {
		c := base.Clone()
		out, err := p.OptimizeCircuit(c, ratio*rt)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Feasible {
			t.Fatalf("ratio %g infeasible", ratio)
		}
		if prevArea > 0 && out.Area < prevArea*0.7 {
			t.Fatalf("area fell sharply under a tighter constraint: %g after %g", out.Area, prevArea)
		}
		prevArea = out.Area
	}
}

func tminOf(m *delay.Model, pa *delay.Path) (float64, error) {
	r, err := sizing.Tmin(m, pa.Clone(), sizing.Options{})
	if err != nil {
		return 0, err
	}
	return r.Delay, nil
}

func TestProtocolRespectsMaxRounds(t *testing.T) {
	m := delay.NewModel(tech.CMOS025())
	p, err := NewProtocol(Config{Model: m, MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := iscas.ByName("c432")
	c := iscas.MustGenerate(spec)
	out, err := p.OptimizeCircuit(c, 1) // impossible
	if err != nil {
		t.Fatal(err)
	}
	if out.Rounds > 2 {
		t.Fatalf("rounds %d exceed MaxRounds 2", out.Rounds)
	}
}

func TestProtocolPreservesUntouchedSideLogic(t *testing.T) {
	// Gates off every optimized path keep their (fixed, environment)
	// sizes — the bounded-path contract.
	m := delay.NewModel(tech.CMOS025())
	p, err := NewProtocol(Config{Model: m, MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := iscas.ByName("c432")
	c := iscas.MustGenerate(spec)
	before := map[string]float64{}
	for _, g := range c.Gates() {
		before[g.Name] = g.CIn
	}
	pa, _, err := sta.CriticalPath(c, m, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	onPath := map[string]bool{}
	for i := range pa.Stages {
		if n := pa.Stages[i].Node; n != nil {
			onPath[n.Name] = true
		}
	}
	rt, err := tminOf(m, pa)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.OptimizeCircuit(c, 1.5*rt); err != nil {
		t.Fatal(err)
	}
	changedOffPath := 0
	for _, g := range c.Gates() {
		if onPath[g.Name] {
			continue
		}
		if old, ok := before[g.Name]; ok && g.CIn != old {
			changedOffPath++
		}
	}
	// Later rounds may touch secondary paths; with MaxRounds=1 only
	// the first critical path's gates may move.
	if changedOffPath > 0 {
		t.Fatalf("%d off-path gates resized in a single round", changedOffPath)
	}
}

func TestProtocolConvergesOnManyParallelPaths(t *testing.T) {
	// Regression: a ripple-carry adder has one near-critical path per
	// sum bit, all sharing the carry chain. A fixed per-round margin
	// plateaus just above Tc as resized paths perturb each other; the
	// progressive tightening must converge instead.
	// (rca16 at 1.25·Tmin is the configuration that plateaued at
	// +0.2% above Tc under a fixed margin; smaller adders can be
	// genuinely joint-infeasible at this ratio because the sum and
	// carry paths share gates, so their joint optimum sits above any
	// single path's Tmin.)
	m := delay.NewModel(tech.CMOS025())
	p, err := NewProtocol(Config{Model: m, MaxRounds: 24})
	if err != nil {
		t.Fatal(err)
	}
	c, err := iscas.RippleCarryAdder(16)
	if err != nil {
		t.Fatal(err)
	}
	pa, _, err := sta.CriticalPath(c, m, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := sizing.Tmin(m, pa.Clone(), sizing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.OptimizeCircuit(c, 1.25*rt.Delay)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Feasible {
		t.Fatalf("parallel-path convergence failed: %.0f vs Tc %.0f after %d rounds",
			out.Delay, 1.25*rt.Delay, out.Rounds)
	}
}
