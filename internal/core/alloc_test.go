package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/iscas"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/sizing"
	"repro/internal/sta"
	"repro/internal/tech"
)

// steadyChain builds a deep, heavily-loaded gate chain whose
// all-minimum-drive delay sits ~3.6× above its Tmin: wide enough that
// a weak-domain constraint (> 2.5·Tmin) still leaves real sizing work
// after every gate is knocked back to minimum drive. ISCAS circuits
// cannot stage this scenario (their Tmax/Tmin spread is < 2).
func steadyChain(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("steadychain")
	for _, in := range []string{"a", "b"} {
		if _, err := c.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AddGate("g0", gate.Nand2, "a", "b"); err != nil {
		t.Fatal(err)
	}
	prev := "g0"
	types := []gate.Type{gate.Inv, gate.Nor2, gate.Inv, gate.Nand2, gate.Inv, gate.Inv, gate.Nor2, gate.Inv, gate.Nand2, gate.Inv, gate.Inv}
	for i, ty := range types {
		name := fmt.Sprintf("h%d", i)
		fanin := []string{prev}
		if gate.MustLookup(ty).FanIn == 2 {
			fanin = append(fanin, "b")
		}
		if _, err := c.AddGate(name, ty, fanin...); err != nil {
			t.Fatal(err)
		}
		prev = name
	}
	if _, err := c.AddOutput(prev, 180); err != nil {
		t.Fatal(err)
	}
	return c
}

// steadyRoundFixture prepares the steady-state scenario: a circuit
// under a weak-domain constraint, plus a perturbation that knocks
// every gate back to minimum drive so the next round has real sizing
// work (worst delay above Tc) without any structural move.
type steadyRoundFixture struct {
	p     *Protocol
	sess  *sta.Session
	ws    *stepWorkspace
	tc    float64
	gates []*netlist.Node
	round int
}

func newSteadyRoundFixture(t *testing.T, rec Recorder) *steadyRoundFixture {
	t.Helper()
	m := delay.NewModel(tech.CMOS025())
	p, err := NewProtocol(Config{Model: m, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	c := steadyChain(t)
	pa, _, err := sta.CriticalPath(c, m, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rmin, err := sizing.Tmin(m, pa, sizing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := &steadyRoundFixture{
		p:    p,
		sess: p.NewTimingSession(c),
		ws:   &stepWorkspace{},
		tc:   2.8 * rmin.Delay, // weak domain: sizing only
	}
	for _, n := range c.Nodes {
		if n.IsLogic() {
			f.gates = append(f.gates, n)
		}
	}
	return f
}

// perturb knocks every gate back to minimum drive and repairs the
// session timing in place — pure size writes, no structural mutation,
// no allocation once the session is warm.
func (f *steadyRoundFixture) perturb(t *testing.T) {
	t.Helper()
	res, err := f.sess.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range f.gates {
		n.CIn = f.p.cfg.Model.Proc.CRef
	}
	if _, err := res.Update(f.gates...); err != nil {
		t.Fatal(err)
	}
}

// step runs one workspace round and asserts it was a pure size-only
// sizing round (the steady state under measurement).
func (f *steadyRoundFixture) step(t *testing.T) {
	t.Helper()
	st, err := f.p.optimizeStep(f.ws, f.sess, f.tc, f.round)
	if err != nil {
		t.Fatal(err)
	}
	f.round++
	if st.Met {
		t.Fatal("perturbation left the circuit meeting Tc; no sizing work to measure")
	}
	if st.Outcome.Method != "sizing" {
		t.Fatalf("round used %q, want a plain sizing round", st.Outcome.Method)
	}
	if st.Buffers != 0 || st.NorRewrites != 0 {
		t.Fatalf("round mutated structure: %d buffers, %d rewrites", st.Buffers, st.NorRewrites)
	}
}

// TestOptimizeStepSteadyStateAllocationFree pins the tentpole perf
// contract of the round loop: a steady-state, no-mutation round —
// incremental analysis, critical-path extraction, weak-domain sizing,
// write-back, incremental repair — performs zero heap allocations once
// the session and workspace are warm.
func TestOptimizeStepSteadyStateAllocationFree(t *testing.T) {
	f := newSteadyRoundFixture(t, nil)
	// Warm-up: grow every session/workspace buffer to its steady size.
	for i := 0; i < 3; i++ {
		f.perturb(t)
		f.step(t)
	}
	allocs := testing.AllocsPerRun(8, func() {
		f.perturb(t)
		f.step(t)
	})
	if allocs != 0 {
		t.Errorf("steady-state round allocated %.1f times per run, want 0", allocs)
	}
}

// obsRecorder mirrors the engine's metrics recorder: atomic counter
// increments and histogram observations against internal/obs
// instruments, installed as a pre-built interface value.
type obsRecorder struct {
	rounds *obs.Counter
	stage  *obs.Histogram
}

func (r obsRecorder) RoundDone(bool) { r.rounds.Inc() }

func (r obsRecorder) StageDone(_ string, d time.Duration) { r.stage.Observe(d.Seconds()) }

// TestOptimizeStepInstrumentedAllocationFree re-pins the zero-alloc
// round guarantee with instrumentation enabled: the same steady-state
// scenario, now reporting every round through an obs-backed Recorder
// like the batch engine installs. Observability must be free on the
// hot path.
func TestOptimizeStepInstrumentedAllocationFree(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obsRecorder{
		rounds: reg.Counter("rounds_total", "test rounds"),
		stage:  reg.Histogram("stage_seconds", "test stages", nil),
	}
	f := newSteadyRoundFixture(t, rec)
	for i := 0; i < 3; i++ {
		f.perturb(t)
		f.step(t)
	}
	before := rec.rounds.Value()
	allocs := testing.AllocsPerRun(8, func() {
		f.perturb(t)
		f.step(t)
	})
	if allocs != 0 {
		t.Errorf("instrumented steady-state round allocated %.1f times per run, want 0", allocs)
	}
	if rec.rounds.Value() <= before {
		t.Fatalf("recorder saw no rounds (before %d, after %d)", before, rec.rounds.Value())
	}
}

// TestWorkspaceRoundMatchesPlainStep guards the equivalence of the two
// step paths: the exported workspace-free OptimizeStep and the session
// loop's workspace-backed rounds must produce identical outcomes on
// identical circuits.
func TestWorkspaceRoundMatchesPlainStep(t *testing.T) {
	m := delay.NewModel(tech.CMOS025())
	p, err := NewProtocol(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	load := func() (*netlist.Circuit, *sta.Session, float64) {
		c, err := iscas.Load("fpd")
		if err != nil {
			t.Fatal(err)
		}
		pa, _, err := sta.CriticalPath(c, m, sta.Config{})
		if err != nil {
			t.Fatal(err)
		}
		rmin, err := sizing.Tmin(m, pa.Clone(), sizing.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return c, p.NewTimingSession(c), 1.5 * rmin.Delay
	}

	cPlain, sessPlain, tc := load()
	cWs, sessWs, _ := load()
	ws := &stepWorkspace{}
	for round := 0; round < 4; round++ {
		a, err := p.OptimizeStep(sessPlain, tc, round)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.optimizeStep(ws, sessWs, tc, round)
		if err != nil {
			t.Fatal(err)
		}
		if a.Met != b.Met {
			t.Fatalf("round %d: Met %v vs %v", round, a.Met, b.Met)
		}
		if a.Met {
			break
		}
		if a.WorstDelay != b.WorstDelay || a.Buffers != b.Buffers || a.NorRewrites != b.NorRewrites {
			t.Fatalf("round %d diverged: %+v vs %+v", round, a, b)
		}
		ao, bo := a.Outcome, b.Outcome
		if ao.Domain != bo.Domain || ao.Method != bo.Method || ao.Delay != bo.Delay ||
			ao.Area != bo.Area || ao.Tmin != bo.Tmin || ao.Tmax != bo.Tmax {
			t.Fatalf("round %d outcomes diverged:\n%+v\n%+v", round, ao, bo)
		}
	}
	var areaPlain, areaWs float64
	areaPlain = cPlain.Area(m.Proc.WidthForCap)
	areaWs = cWs.Area(m.Proc.WidthForCap)
	if areaPlain != areaWs {
		t.Fatalf("final areas diverged: %v vs %v", areaWs, areaPlain)
	}
}
