package wire

import (
	"math"
	"testing"

	"repro/internal/delay"
	"repro/internal/iscas"
	"repro/internal/sizing"
	"repro/internal/sta"
	"repro/internal/tech"
)

func TestModelValidation(t *testing.T) {
	if err := Default025().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Model{
		{C0: -1, C1: 1, Gamma: 1},
		{C0: 1, C1: -1, Gamma: 1},
		{C0: 1, C1: 1, Gamma: 0.1},
		{C0: 1, C1: 1, Gamma: 5},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("model %+v accepted", m)
		}
	}
}

func TestLoadMonotone(t *testing.T) {
	m := Default025()
	prev := -1.0
	for f := 0; f < 30; f++ {
		l := m.Load(f)
		if l <= prev {
			t.Fatalf("load not increasing at fanout %d", f)
		}
		prev = l
	}
	if m.Load(0) != m.C0 {
		t.Fatal("zero-fanout load must be C0")
	}
}

func TestApplySetsLoads(t *testing.T) {
	spec, err := iscas.ByName("fpd")
	if err != nil {
		t.Fatal(err)
	}
	c := iscas.MustGenerate(spec)
	total, err := Apply(c, Default025())
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Fatal("no wire load applied")
	}
	st := Summarize(c)
	if st.Nets == 0 || st.MeanFF <= 0 || st.MaxFF < st.MeanFF {
		t.Fatalf("stats degenerate: %+v", st)
	}
	if st.ShareOfLoad <= 0 || st.ShareOfLoad >= 1 {
		t.Fatalf("wire share %g out of band", st.ShareOfLoad)
	}
	// High-fanout hub nets must carry the largest loads.
	hub := c.Node(st.MaxNet)
	if hub == nil || len(hub.Fanout) < 3 {
		t.Fatalf("max-load net %q has fanout %d", st.MaxNet, len(hub.Fanout))
	}
}

func TestWireLoadSlowsTiming(t *testing.T) {
	p := tech.CMOS025()
	m := delay.NewModel(p)
	spec, _ := iscas.ByName("c432")
	c := iscas.MustGenerate(spec)
	before, err := sta.Analyze(c, m, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(c, Default025()); err != nil {
		t.Fatal(err)
	}
	after, err := sta.Analyze(c, m, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if after.WorstDelay <= before.WorstDelay {
		t.Fatalf("wire load did not slow the circuit: %g vs %g",
			after.WorstDelay, before.WorstDelay)
	}
}

func TestPerturbBounded(t *testing.T) {
	spec, _ := iscas.ByName("fpd")
	c := iscas.MustGenerate(spec)
	if _, err := Apply(c, Default025()); err != nil {
		t.Fatal(err)
	}
	ref := map[string]float64{}
	for _, n := range c.Gates() {
		ref[n.Name] = n.CWire
	}
	worst, err := Perturb(c, 0.3, 17)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.3 {
		t.Fatalf("perturbation %g exceeds spread", worst)
	}
	for _, n := range c.Gates() {
		f := n.CWire / ref[n.Name]
		if f < 0.7-1e-9 || f > 1.3+1e-9 {
			t.Fatalf("net %s factor %g outside [0.7, 1.3]", n.Name, f)
		}
	}
	if _, err := Perturb(c, 1.5, 1); err == nil {
		t.Fatal("spread ≥ 1 accepted")
	}
}

func TestUncertaintyMovesTminModestly(t *testing.T) {
	// The deterministic bound Tmin shifts with routing mis-estimation,
	// but boundedly — the protocol re-runs cheaply instead of carrying
	// a blanket margin (the paper's argument).
	p := tech.CMOS025()
	m := delay.NewModel(p)
	spec, _ := iscas.ByName("c880")

	tminAt := func(seed int64, spread float64) float64 {
		c := iscas.MustGenerate(spec)
		if _, err := Apply(c, Default025()); err != nil {
			t.Fatal(err)
		}
		if spread > 0 {
			if _, err := Perturb(c, spread, seed); err != nil {
				t.Fatal(err)
			}
		}
		pa, _, err := sta.CriticalPath(c, m, sta.Config{})
		if err != nil {
			t.Fatal(err)
		}
		r, err := sizing.Tmin(m, pa, sizing.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return r.Delay
	}
	base := tminAt(0, 0)
	for seed := int64(1); seed <= 3; seed++ {
		shifted := tminAt(seed, 0.3)
		rel := math.Abs(shifted-base) / base
		if rel > 0.15 {
			t.Fatalf("±30%% wire uncertainty moved Tmin by %.0f%%", rel*100)
		}
	}
}
