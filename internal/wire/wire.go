// Package wire models routing capacitance with a fan-out-based
// wire-load model (WLM) and quantifies its estimation uncertainty —
// the §2 motivation of the paper: "the uncertainty in routing
// capacitance estimation imposes to use many iterations or to consider
// very large safety margin resulting in oversized designs".
//
// Pre-layout, a net's routing capacitance is estimated from its
// fan-out count (the classic WLM of 1990s/2000s flows):
//
//	C_wire(n) = C0 + C1 · fanout(n)^γ      (fF)
//
// The Uncertainty helper perturbs the applied loads by a bounded
// random factor, so experiments can measure how much the optimizers'
// results move under mis-estimated routing — the effect the paper's
// deterministic protocol exists to tame.
package wire

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/netlist"
)

// Model is a fan-out-based wire-load model.
type Model struct {
	// C0 is the per-net constant (via + local routing), fF.
	C0 float64
	// C1 scales the fan-out term, fF.
	C1 float64
	// Gamma is the fan-out exponent (≥ 1: long nets grow
	// super-linearly as they leave the local neighbourhood).
	Gamma float64
}

// Default025 returns a wire-load model representative of a 0.25 µm
// standard-cell block: roughly one gate-pin equivalent per fan-out.
func Default025() Model {
	return Model{C0: 0.8, C1: 1.4, Gamma: 1.1}
}

// Validate checks the model coefficients.
func (m Model) Validate() error {
	if m.C0 < 0 || m.C1 < 0 {
		return fmt.Errorf("wire: negative coefficients %+v", m)
	}
	if m.Gamma < 0.5 || m.Gamma > 3 {
		return fmt.Errorf("wire: implausible fan-out exponent %g", m.Gamma)
	}
	return nil
}

// Load returns the estimated routing capacitance (fF) of a net with
// the given fan-out count.
func (m Model) Load(fanout int) float64 {
	if fanout <= 0 {
		return m.C0
	}
	return m.C0 + m.C1*math.Pow(float64(fanout), m.Gamma)
}

// Apply sets CWire on every driven net of the circuit from the model,
// replacing previous values. Output pseudo-nodes and primary inputs
// keep CWire = 0 (their loads are modelled by the port capacitances).
// Returns the total wire capacitance applied (fF).
func Apply(c *netlist.Circuit, m Model) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	var total float64
	for _, n := range c.Nodes {
		if !n.IsLogic() {
			continue
		}
		w := m.Load(len(n.Fanout))
		n.CWire = w
		total += w
	}
	return total, nil
}

// Perturb multiplies every net's CWire by a random factor drawn
// uniformly from [1−spread, 1+spread] — the routing mis-estimation of
// the paper's §2. Deterministic in seed. Returns the worst factor
// applied (largest deviation from 1).
func Perturb(c *netlist.Circuit, spread float64, seed int64) (float64, error) {
	if spread < 0 || spread >= 1 {
		return 0, fmt.Errorf("wire: spread %g outside [0, 1)", spread)
	}
	rng := rand.New(rand.NewSource(seed))
	worst := 0.0
	for _, n := range c.Nodes {
		if !n.IsLogic() || n.CWire == 0 {
			continue
		}
		f := 1 + spread*(2*rng.Float64()-1)
		n.CWire *= f
		if d := math.Abs(f - 1); d > worst {
			worst = d
		}
	}
	return worst, nil
}

// Stats summarizes the wire loads of a circuit.
type Stats struct {
	Nets        int
	TotalFF     float64
	MeanFF      float64
	MaxFF       float64
	MaxNet      string
	ShareOfLoad float64 // wire / (wire + pin) capacitance share
}

// Summarize reports the circuit's current wire-load situation.
func Summarize(c *netlist.Circuit) Stats {
	var st Stats
	var pinTotal float64
	for _, n := range c.Nodes {
		if !n.IsLogic() {
			continue
		}
		st.Nets++
		st.TotalFF += n.CWire
		if n.CWire > st.MaxFF {
			st.MaxFF = n.CWire
			st.MaxNet = n.Name
		}
		for _, s := range n.Fanout {
			pinTotal += s.CIn
		}
	}
	if st.Nets > 0 {
		st.MeanFF = st.TotalFF / float64(st.Nets)
	}
	if st.TotalFF+pinTotal > 0 {
		st.ShareOfLoad = st.TotalFF / (st.TotalFF + pinTotal)
	}
	return st
}
