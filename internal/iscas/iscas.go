// Package iscas provides the benchmark suite of the paper's evaluation:
// the ISCAS'85 circuits (c432 … c7552), the 16-bit adder and the "fpd"
// block of Table 1.
//
// Substitution note (see DESIGN.md): the original ISCAS'85 netlists are
// not redistributable inside this repository, and the paper's
// experiments operate on the *extracted critical path* of each circuit
// (Table 1 lists path gate counts, not circuit sizes). We therefore
// generate, deterministically per benchmark, a synthetic circuit whose
// critical path ("spine") has exactly the paper's gate count, embedded
// in a realistic fan-out environment of side logic sized like the real
// circuit. Every quantity the paper reports — Tmin, ΣW, CPU scaling,
// buffer-insertion gains — depends on the path length, gate-type mix
// and loading statistics, all of which are preserved. Genuine .bench
// files drop in unchanged through netlist.ReadBench; the tiny genuine
// c17 is embedded for parser and logic tests, and a structural
// ripple-carry adder generator provides a real arithmetic circuit.
package iscas

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"

	"repro/internal/gate"
	"repro/internal/netlist"
)

// Spec describes one benchmark of the suite.
type Spec struct {
	Name    string
	Inputs  int // primary input count (≈ the real circuit's)
	Outputs int // primary output count (≈ the real circuit's)
	Gates   int // total gate budget (≈ the real circuit's)
	PathLen int // critical-path gate count — Table 1's "Gate nb"
	Seed    int64
}

// Suite returns the benchmarks of the paper's evaluation in Table 1
// order. Input/output/gate counts follow the real ISCAS'85 circuits;
// PathLen follows Table 1.
func Suite() []Spec {
	return []Spec{
		{Name: "Adder16", Inputs: 33, Outputs: 17, Gates: 480, PathLen: 99},
		{Name: "fpd", Inputs: 16, Outputs: 8, Gates: 60, PathLen: 14},
		{Name: "c432", Inputs: 36, Outputs: 7, Gates: 160, PathLen: 29},
		{Name: "c499", Inputs: 41, Outputs: 32, Gates: 202, PathLen: 29},
		{Name: "c880", Inputs: 60, Outputs: 26, Gates: 383, PathLen: 28},
		{Name: "c1355", Inputs: 41, Outputs: 32, Gates: 546, PathLen: 30},
		{Name: "c1908", Inputs: 33, Outputs: 25, Gates: 880, PathLen: 44},
		{Name: "c3540", Inputs: 50, Outputs: 22, Gates: 1669, PathLen: 58},
		{Name: "c5315", Inputs: 178, Outputs: 123, Gates: 2307, PathLen: 60},
		{Name: "c6288", Inputs: 32, Outputs: 32, Gates: 2416, PathLen: 116},
		{Name: "c7552", Inputs: 207, Outputs: 108, Gates: 3512, PathLen: 47},
	}
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Suite() {
		if strings.EqualFold(s.Name, name) {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("iscas: unknown benchmark %q", name)
}

// Load instantiates any named circuit this package can produce: a
// generated suite benchmark ("c432", "Adder16", "fpd", …), the genuine
// embedded "c17", a structural ripple-carry adder ("rca16" for 16
// bits, any width), or a wide layered random-logic block ("mix50000"
// for a ~50k-gate budget). Every call returns a fresh instance. The
// facade's Benchmark and the batch engine's loader both resolve
// through here.
func Load(name string) (*netlist.Circuit, error) {
	if name == "c17" {
		return C17(), nil
	}
	if n, ok := rcaBits(name); ok {
		return RippleCarryAdder(n)
	}
	if n, ok := mixGates(name); ok {
		return MixedLogic(n)
	}
	spec, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return Generate(spec)
}

// Known reports whether Load can instantiate name, without paying for
// generation — the cheap pre-validation for batch requests.
func Known(name string) bool {
	if name == "c17" {
		return true
	}
	if _, ok := rcaBits(name); ok {
		return true
	}
	if _, ok := mixGates(name); ok {
		return true
	}
	_, err := ByName(name)
	return err == nil
}

// rcaBits parses an "rcaN" name into its bit width.
func rcaBits(name string) (int, bool) {
	if len(name) < 4 || name[:3] != "rca" {
		return 0, false
	}
	n := 0
	for _, ch := range name[3:] {
		if ch < '0' || ch > '9' {
			return 0, false
		}
		n = n*10 + int(ch-'0')
	}
	return n, n > 0
}

// gate-type distribution of the generated logic, approximating the
// NAND/NOR/INV mix of technology-mapped ISCAS circuits.
var typeMix = []struct {
	t gate.Type
	w int
}{
	{gate.Inv, 26},
	{gate.Nand2, 24},
	{gate.Nor2, 18},
	{gate.Nand3, 12},
	{gate.Nor3, 9},
	{gate.Nand4, 6},
	{gate.Nor4, 5},
}

func pickType(rng *rand.Rand) gate.Type {
	total := 0
	for _, e := range typeMix {
		total += e.w
	}
	r := rng.Intn(total)
	for _, e := range typeMix {
		r -= e.w
		if r < 0 {
			return e.t
		}
	}
	return gate.Inv
}

func seedFor(s Spec) int64 {
	h := fnv.New64a()
	h.Write([]byte(s.Name))
	return int64(h.Sum64()) ^ s.Seed
}

// Generate builds the synthetic benchmark circuit for a spec. The
// construction is deterministic in the spec. Layout:
//
//   - a "spine" of PathLen gates — the designed critical path — whose
//     secondary pins tap shallow nets only, so no alternative path can
//     be longer;
//   - side logic filling the gate budget, biased to load the spine
//     (off-path fan-out is what makes buffer insertion worthwhile);
//   - shallow collector trees merging dangling nets into the primary
//     outputs.
//
// Every gate starts at the minimum drive CREF = 1.7 fF equivalent
// (callers re-size), with small deterministic wire parasitics.
func Generate(spec Spec) (*netlist.Circuit, error) {
	if spec.PathLen < 2 {
		return nil, fmt.Errorf("iscas: %s: path length %d too short", spec.Name, spec.PathLen)
	}
	if spec.Inputs < 2 || spec.Outputs < 1 {
		return nil, fmt.Errorf("iscas: %s: need ≥2 inputs and ≥1 output", spec.Name)
	}
	rng := rand.New(rand.NewSource(seedFor(spec)))
	c := netlist.New(spec.Name)

	// level[n] tracks logic depth to keep side paths shallower than
	// the spine.
	level := make(map[string]int)

	var inputs []string
	for i := 0; i < spec.Inputs; i++ {
		name := fmt.Sprintf("i%d", i)
		if _, err := c.AddInput(name); err != nil {
			return nil, err
		}
		inputs = append(inputs, name)
		level[name] = 0
	}

	// Pools of nets side logic may tap, keyed by shallowness.
	maxSide := spec.PathLen * 55 / 100
	if maxSide < 2 {
		maxSide = 2
	}
	var shallow []string // nets with level ≤ maxSide
	shallow = append(shallow, inputs...)
	var spine []string

	addGate := func(name string, t gate.Type, fanin []string) (*netlist.Node, error) {
		n, err := c.AddGate(name, t, fanin...)
		if err != nil {
			return nil, err
		}
		lv := 0
		for _, f := range fanin {
			if level[f] > lv {
				lv = level[f]
			}
		}
		level[name] = lv + 1
		n.CWire = 0.3 + 2.2*rng.Float64() // fF
		return n, nil
	}

	// pickShallow returns a random net with level ≤ cap.
	pickShallow := func(cap int) string {
		// Rejection-sample a few times, then fall back to inputs.
		for t := 0; t < 12; t++ {
			cand := shallow[rng.Intn(len(shallow))]
			if level[cand] <= cap {
				return cand
			}
		}
		return inputs[rng.Intn(len(inputs))]
	}

	// 1. The spine.
	prev := inputs[0]
	for i := 0; i < spec.PathLen; i++ {
		t := pickType(rng)
		cell := gate.MustLookup(t)
		fanin := []string{prev}
		for len(fanin) < cell.FanIn {
			cap := i // strictly below the spine position
			if cap > maxSide {
				cap = maxSide
			}
			fanin = append(fanin, pickShallow(cap))
		}
		name := fmt.Sprintf("s%d", i)
		if _, err := addGate(name, t, fanin); err != nil {
			return nil, err
		}
		spine = append(spine, name)
		prev = name
	}

	// 2. Side logic. Reserve budget for the collector trees.
	// A side gate either taps the spine (providing the off-path
	// fan-out load that makes buffer insertion worthwhile) or builds
	// shallow logic. Gates that tap the spine deeper than maxSide are
	// "deep tappers": they never feed further logic, so no path through
	// them can outgrow the spine; shallow gates join the mergeable pool.
	//
	// A handful of spine positions are designated "hubs": high-fanout
	// nets (buses, control signals) that concentrate taps. These are
	// the over-limit nodes the buffer-insertion metric of §4.1 exists
	// to find. Side gates model an already-implemented environment:
	// their drives are fixed, log-uniform in [1×, 12×] CREF.
	var hubs []int
	for j := range spine {
		if rng.Intn(100) < 12 {
			hubs = append(hubs, j)
		}
	}
	if len(hubs) == 0 {
		hubs = append(hubs, len(spine)/2)
	}
	reserve := spec.Outputs + spec.Gates/12
	sideBudget := spec.Gates - spec.PathLen - reserve
	var mergeable []string   // shallow dangling side gates
	var deepTappers []string // side gates loading the deep spine
	for i := 0; i < sideBudget; i++ {
		t := pickType(rng)
		cell := gate.MustLookup(t)
		tapsDeep := false
		var fanin []string
		for tries := 0; len(fanin) < cell.FanIn; tries++ {
			if tries > 40 {
				// Give up on distinct pins in degenerate pools.
				fanin = append(fanin, inputs[rng.Intn(len(inputs))])
				continue
			}
			var cand string
			if len(fanin) == 0 && rng.Intn(100) < 45 {
				// First pin taps the spine: usually a hub.
				var j int
				if rng.Intn(100) < 60 {
					j = hubs[rng.Intn(len(hubs))]
				} else {
					j = rng.Intn(len(spine))
				}
				cand = spine[j]
				if j+1 > maxSide {
					tapsDeep = true
				}
			} else {
				cand = pickShallow(maxSide - 1)
			}
			// No duplicate pins from the same net: keeps the logic
			// non-degenerate.
			dup := false
			for _, f := range fanin {
				if f == cand {
					dup = true
				}
			}
			if dup {
				continue
			}
			fanin = append(fanin, cand)
		}
		name := fmt.Sprintf("g%d", i)
		n, err := addGate(name, t, fanin)
		if err != nil {
			return nil, err
		}
		// Fixed, already-implemented drive: log-uniform in [1×, 12×]
		// the minimum (2.49 ≈ ln 12).
		n.CIn = netlist.DefaultGateCIn * math.Exp(rng.Float64()*2.49)
		if tapsDeep {
			deepTappers = append(deepTappers, name)
		} else {
			mergeable = append(mergeable, name)
			if level[name] <= maxSide {
				shallow = append(shallow, name)
			}
		}
	}

	// 3. Collectors: merge dangling shallow nets into about half the
	// output budget with fan-in-4 NAND/NOR trees. Only nets with
	// level ≤ maxSide participate, so the trees stay strictly
	// shallower than the spine.
	var dangling []string
	for _, name := range mergeable {
		if len(c.Node(name).Fanout) == 0 && level[name] <= maxSide {
			dangling = append(dangling, name)
		}
	}
	for _, name := range inputs {
		if len(c.Node(name).Fanout) == 0 {
			dangling = append(dangling, name)
		}
	}
	outBudget := (spec.Outputs - 1) * 2 / 3
	if outBudget < 1 {
		outBudget = 1
	}
	var roots []string
	if len(dangling) <= outBudget {
		roots = dangling
	} else {
		groups := make([][]string, outBudget)
		for i, d := range dangling {
			groups[i%outBudget] = append(groups[i%outBudget], d)
		}
		for gi, grp := range groups {
			root, err := reduceTree(c, addGate, grp, fmt.Sprintf("m%d", gi), rng)
			if err != nil {
				return nil, err
			}
			roots = append(roots, root)
		}
	}

	// 4. Outputs: the spine end first, then collector roots, then deep
	// tappers (their tap position must leave the spine a margin of
	// ≥3 levels so they cannot rival it), then mid-spine taps.
	outNets := []string{spine[len(spine)-1]}
	outNets = append(outNets, roots...)
	for _, name := range deepTappers {
		if len(outNets) >= spec.Outputs {
			break
		}
		if level[name] <= spec.PathLen-3 {
			outNets = append(outNets, name)
		}
	}
	for i := spec.PathLen / 2; len(outNets) < spec.Outputs && i >= 0; i -= 3 {
		outNets = append(outNets, spine[i])
	}
	if len(outNets) > spec.Outputs {
		outNets = outNets[:spec.Outputs]
	}
	for _, name := range outNets {
		if _, err := c.AddOutput(name, netlist.DefaultOutputLoad); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// reduceTree folds a group of nets into one root with 2-4 input
// NAND/NOR gates, alternating polarity per level.
func reduceTree(c *netlist.Circuit, addGate func(string, gate.Type, []string) (*netlist.Node, error),
	nets []string, prefix string, rng *rand.Rand) (string, error) {
	lvl := 0
	for len(nets) > 1 {
		var next []string
		for i := 0; i < len(nets); i += 4 {
			j := i + 4
			if j > len(nets) {
				j = len(nets)
			}
			grp := nets[i:j]
			if len(grp) == 1 {
				next = append(next, grp[0])
				continue
			}
			family := gate.Nand2
			if lvl%2 == 1 {
				family = gate.Nor2
			}
			t, ok := gate.VariantWithFanIn(family, len(grp))
			if !ok {
				return "", fmt.Errorf("iscas: no %v variant with %d inputs", family, len(grp))
			}
			name := fmt.Sprintf("%s_l%d_%d", prefix, lvl, i/4)
			if _, err := addGate(name, t, grp); err != nil {
				return "", err
			}
			next = append(next, name)
		}
		nets = next
		lvl++
	}
	_ = rng
	return nets[0], nil
}

// MustGenerate is Generate for known-good specs; it panics on error.
func MustGenerate(spec Spec) *netlist.Circuit {
	c, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return c
}
