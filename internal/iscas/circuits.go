package iscas

import (
	"fmt"
	"strings"

	"repro/internal/gate"
	"repro/internal/netlist"
)

// c17Bench is the genuine ISCAS'85 c17 benchmark — six NAND2 gates —
// embedded for parser, STA and logic-equivalence tests.
const c17Bench = `# c17
# 5 inputs, 2 outputs, 6 gates
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

// C17 returns the genuine c17 benchmark circuit.
func C17() *netlist.Circuit {
	c, err := netlist.ReadBench(strings.NewReader(c17Bench), netlist.BenchOptions{Name: "c17"})
	if err != nil {
		panic("iscas: embedded c17 failed to parse: " + err.Error())
	}
	return c
}

// C17Bench returns the embedded c17 source text (round-trip tests).
func C17Bench() string { return c17Bench }

// RippleCarryAdder builds a structural n-bit ripple-carry adder over
// the primitive NAND/INV library. Each full adder uses the classic
// nine-NAND-gate realization:
//
//	m  = NAND(a, b)
//	s1 = NAND(a, m), s2 = NAND(b, m), p = NAND(s1, s2)   // p = a⊕b
//	n  = NAND(p, cin)
//	t1 = NAND(p, n), t2 = NAND(cin, n), sum = NAND(t1, t2)
//	cout = NAND(m, n)
//
// Inputs are a0..a(n-1), b0..b(n-1) and cin; outputs sum0..sum(n-1)
// and cout. The carry chain is the critical path. This is a genuine
// arithmetic circuit (the logic tests verify real additions on it).
func RippleCarryAdder(bits int) (*netlist.Circuit, error) {
	if bits < 1 {
		return nil, fmt.Errorf("iscas: adder needs ≥1 bit, got %d", bits)
	}
	c := netlist.New(fmt.Sprintf("rca%d", bits))
	for i := 0; i < bits; i++ {
		if _, err := c.AddInput(fmt.Sprintf("a%d", i)); err != nil {
			return nil, err
		}
		if _, err := c.AddInput(fmt.Sprintf("b%d", i)); err != nil {
			return nil, err
		}
	}
	if _, err := c.AddInput("cin"); err != nil {
		return nil, err
	}

	// xorNand emits p = x ⊕ y via four NAND2s, returning (p, m) with
	// m = NAND(x, y) for carry reuse.
	xorNand := func(prefix, x, y string) (p, m string, err error) {
		m = prefix + "_m"
		if _, err = c.AddGate(m, gate.Nand2, x, y); err != nil {
			return
		}
		s1 := prefix + "_s1"
		if _, err = c.AddGate(s1, gate.Nand2, x, m); err != nil {
			return
		}
		s2 := prefix + "_s2"
		if _, err = c.AddGate(s2, gate.Nand2, y, m); err != nil {
			return
		}
		p = prefix + "_p"
		_, err = c.AddGate(p, gate.Nand2, s1, s2)
		return
	}

	carry := "cin"
	for i := 0; i < bits; i++ {
		a := fmt.Sprintf("a%d", i)
		b := fmt.Sprintf("b%d", i)
		fa := fmt.Sprintf("fa%d", i)
		p, m, err := xorNand(fa+"_x1", a, b)
		if err != nil {
			return nil, err
		}
		n := fa + "_n"
		if _, err := c.AddGate(n, gate.Nand2, p, carry); err != nil {
			return nil, err
		}
		t1 := fa + "_t1"
		if _, err := c.AddGate(t1, gate.Nand2, p, n); err != nil {
			return nil, err
		}
		t2 := fa + "_t2"
		if _, err := c.AddGate(t2, gate.Nand2, carry, n); err != nil {
			return nil, err
		}
		sum := fmt.Sprintf("sum%d", i)
		if _, err := c.AddGate(sum, gate.Nand2, t1, t2); err != nil {
			return nil, err
		}
		cout := fa + "_c"
		if _, err := c.AddGate(cout, gate.Nand2, m, n); err != nil {
			return nil, err
		}
		carry = cout
	}
	for i := 0; i < bits; i++ {
		if _, err := c.AddOutput(fmt.Sprintf("sum%d", i), netlist.DefaultOutputLoad); err != nil {
			return nil, err
		}
	}
	// Re-drive the final carry through an alias so the output name is
	// stable regardless of bit count.
	if _, err := c.AddGate("cout", gate.Buf, carry); err != nil {
		return nil, err
	}
	if _, err := c.AddOutput("cout", netlist.DefaultOutputLoad); err != nil {
		return nil, err
	}
	return c, nil
}
