package iscas

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/delay"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/tech"
)

func TestSuiteSpecsMatchTable1(t *testing.T) {
	want := map[string]int{ // Table 1 "Gate nb"
		"Adder16": 99, "fpd": 14, "c432": 29, "c499": 29, "c880": 28,
		"c1355": 30, "c1908": 44, "c3540": 58, "c5315": 60, "c6288": 116,
		"c7552": 47,
	}
	suite := Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d entries, want %d", len(suite), len(want))
	}
	for _, s := range suite {
		if want[s.Name] != s.PathLen {
			t.Fatalf("%s: PathLen %d, want %d", s.Name, s.PathLen, want[s.Name])
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("c432"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("C432"); err != nil {
		t.Fatal("ByName must be case-insensitive")
	}
	if _, err := ByName("c404"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestGenerateAllValid(t *testing.T) {
	for _, spec := range Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			c, err := Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
			st := c.Stats()
			if st.Gates < spec.Gates*3/4 || st.Gates > spec.Gates*5/4 {
				t.Fatalf("gate count %d far from budget %d", st.Gates, spec.Gates)
			}
			if st.Inputs != spec.Inputs {
				t.Fatalf("inputs %d, want %d", st.Inputs, spec.Inputs)
			}
			if st.Outputs == 0 || st.Outputs > spec.Outputs {
				t.Fatalf("outputs %d, budget %d", st.Outputs, spec.Outputs)
			}
		})
	}
}

func TestGeneratedCriticalPathLength(t *testing.T) {
	p := tech.CMOS025()
	m := delay.NewModel(p)
	for _, spec := range Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			c := MustGenerate(spec)
			pa, _, err := sta.CriticalPath(c, m, sta.Config{})
			if err != nil {
				t.Fatal(err)
			}
			// The designed spine must be the critical path: the
			// extracted length matches Table 1 within a small margin.
			if pa.Len() < spec.PathLen*9/10 || pa.Len() > spec.PathLen {
				t.Fatalf("critical path %d gates, spec %d", pa.Len(), spec.PathLen)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := ByName("c880")
	a := MustGenerate(spec)
	b := MustGenerate(spec)
	var sa, sb strings.Builder
	if err := netlist.WriteBench(&sa, a); err != nil {
		t.Fatal(err)
	}
	if err := netlist.WriteBench(&sb, b); err != nil {
		t.Fatal(err)
	}
	if sa.String() != sb.String() {
		t.Fatal("generation is not deterministic")
	}
	// Different seed → different circuit.
	spec.Seed = 99
	c := MustGenerate(spec)
	var sc strings.Builder
	if err := netlist.WriteBench(&sc, c); err != nil {
		t.Fatal(err)
	}
	if sc.String() == sa.String() {
		t.Fatal("seed has no effect")
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	if _, err := Generate(Spec{Name: "x", Inputs: 4, Outputs: 2, Gates: 30, PathLen: 1}); err == nil {
		t.Fatal("path length 1 accepted")
	}
	if _, err := Generate(Spec{Name: "x", Inputs: 1, Outputs: 2, Gates: 30, PathLen: 5}); err == nil {
		t.Fatal("single input accepted")
	}
}

func TestGeneratedSideLogicIsSized(t *testing.T) {
	c := MustGenerate(mustByName(t, "c432"))
	larger := 0
	for _, g := range c.Gates() {
		if g.CIn > netlist.DefaultGateCIn*1.01 {
			larger++
		}
	}
	if larger < 20 {
		t.Fatalf("expected sized side logic, found only %d gates above minimum", larger)
	}
}

func mustByName(t *testing.T, name string) Spec {
	t.Helper()
	s, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestC17(t *testing.T) {
	c := C17()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Gates()); got != 6 {
		t.Fatalf("c17 has %d gates, want 6", got)
	}
	// Known vector: all inputs 0 → both outputs 1 (NAND trees).
	out, err := logic.Eval(c, map[string]bool{
		"G1": false, "G2": false, "G3": false, "G6": false, "G7": false,
	})
	if err != nil {
		t.Fatal(err)
	}
	// G10=1, G11=1, G16=NAND(0,1)=1, G19=NAND(1,0)=1, G22=NAND(1,1)=0,
	// G23=NAND(1,1)=0.
	if out["G22"] != false || out["G23"] != false {
		t.Fatalf("c17 all-zero vector: %v", out)
	}
	if !strings.Contains(C17Bench(), "G22 = NAND(G10, G16)") {
		t.Fatal("embedded source changed")
	}
}

func TestRippleCarryAdderExhaustive3Bit(t *testing.T) {
	c, err := RippleCarryAdder(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			for cin := 0; cin < 2; cin++ {
				in := map[string]bool{"cin": cin == 1}
				for i := 0; i < 3; i++ {
					in[fmt.Sprintf("a%d", i)] = a&(1<<i) != 0
					in[fmt.Sprintf("b%d", i)] = b&(1<<i) != 0
				}
				out, err := logic.Eval(c, in)
				if err != nil {
					t.Fatal(err)
				}
				got := 0
				for i := 0; i < 3; i++ {
					if out[fmt.Sprintf("sum%d", i)] {
						got |= 1 << i
					}
				}
				if out["cout"] {
					got |= 8
				}
				if want := a + b + cin; got != want {
					t.Fatalf("%d+%d+%d = %d, want %d", a, b, cin, got, want)
				}
			}
		}
	}
}

func TestRippleCarryAdder16Spot(t *testing.T) {
	c, err := RippleCarryAdder(16)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ a, b, cin int }{
		{0, 0, 0}, {65535, 1, 0}, {12345, 54321, 1}, {32768, 32768, 0},
	}
	for _, tc := range cases {
		in := map[string]bool{"cin": tc.cin == 1}
		for i := 0; i < 16; i++ {
			in[fmt.Sprintf("a%d", i)] = tc.a&(1<<i) != 0
			in[fmt.Sprintf("b%d", i)] = tc.b&(1<<i) != 0
		}
		out, err := logic.Eval(c, in)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for i := 0; i < 16; i++ {
			if out[fmt.Sprintf("sum%d", i)] {
				got |= 1 << i
			}
		}
		if out["cout"] {
			got |= 1 << 16
		}
		if want := tc.a + tc.b + tc.cin; got != want {
			t.Fatalf("%d+%d+%d = %d, want %d", tc.a, tc.b, tc.cin, got, want)
		}
	}
}

func TestRippleCarryAdderCriticalPathIsCarryChain(t *testing.T) {
	p := tech.CMOS025()
	m := delay.NewModel(p)
	c, err := RippleCarryAdder(8)
	if err != nil {
		t.Fatal(err)
	}
	pa, _, err := sta.CriticalPath(c, m, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The carry chain crosses every bit: at least 2 gates per bit.
	if pa.Len() < 16 {
		t.Fatalf("critical path only %d gates for 8 bits", pa.Len())
	}
}

func TestRippleCarryAdderRejectsZeroBits(t *testing.T) {
	if _, err := RippleCarryAdder(0); err == nil {
		t.Fatal("0-bit adder accepted")
	}
}
