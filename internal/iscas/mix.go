// Mixed random-logic generator: wide, layered circuits for the
// intra-circuit parallelism benchmarks. Where the rcaN family is deep
// and narrow (a carry chain levelizes into thousands of levels of
// width 4-5), mixN levelizes into a few hundred levels that are each
// hundreds of gates wide — the shape the wavefront scheduler needs to
// show a speedup, and the shape real random-logic blocks have.
package iscas

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/gate"
	"repro/internal/netlist"
)

// mixGates parses a "mixN" name into its gate budget.
func mixGates(name string) (int, bool) {
	if len(name) < 4 || name[:3] != "mix" {
		return 0, false
	}
	n := 0
	for _, ch := range name[3:] {
		if ch < '0' || ch > '9' {
			return 0, false
		}
		n = n*10 + int(ch-'0')
	}
	return n, n >= 16
}

// MixedLogic builds the deterministic layered random-logic circuit
// "mixN" with about gates gates (the budget is rounded to full
// layers). Layout: width ≈ 2·√gates primary inputs feed
// depth = gates/width layers of width gates each; every gate's first
// pin taps its column in the previous layer (so every net is consumed
// and every layer-l gate levelizes to exactly level l), the remaining
// pins tap random nets of the previous layer. The last layer drives
// the primary outputs. The construction is deterministic in the gate
// budget alone.
func MixedLogic(gates int) (*netlist.Circuit, error) {
	if gates < 16 {
		return nil, fmt.Errorf("iscas: mix%d: need a budget of at least 16 gates", gates)
	}
	width := int(2 * math.Sqrt(float64(gates)))
	if width < 16 {
		width = 16
	}
	depth := gates / width
	if depth < 2 {
		depth = 2
	}
	rng := rand.New(rand.NewSource(0x6d6978 ^ int64(gates))) // "mix"
	c := netlist.New(fmt.Sprintf("mix%d", gates))

	prev := make([]string, width)
	for i := range prev {
		name := fmt.Sprintf("i%d", i)
		if _, err := c.AddInput(name); err != nil {
			return nil, err
		}
		prev[i] = name
	}

	cur := make([]string, width)
	for l := 0; l < depth; l++ {
		for i := 0; i < width; i++ {
			t := pickType(rng)
			cell := gate.MustLookup(t)
			fanin := []string{prev[i]}
			for len(fanin) < cell.FanIn {
				cand := prev[rng.Intn(width)]
				dup := false
				for _, f := range fanin {
					if f == cand {
						dup = true
					}
				}
				if !dup {
					fanin = append(fanin, cand)
				}
			}
			name := fmt.Sprintf("x%d_%d", l, i)
			n, err := c.AddGate(name, t, fanin...)
			if err != nil {
				return nil, err
			}
			n.CWire = 0.3 + 2.2*rng.Float64() // fF
			cur[i] = name
		}
		prev, cur = cur, prev
	}

	for _, name := range prev {
		if _, err := c.AddOutput(name, netlist.DefaultOutputLoad); err != nil {
			return nil, err
		}
	}
	return c, nil
}
