// Package leakage implements the selective multi-threshold (multi-Vt)
// extension of the optimization protocol: after the sizing/buffering
// protocol has met the delay constraint Tc, gates on non-critical paths
// are promoted to higher-threshold devices to cut subthreshold leakage
// at zero area and zero dynamic-power cost (a Vt swap is a channel
// implant change at constant footprint). The methodology follows
// Kitahara et al.'s area-efficient selective multi-threshold CMOS
// design: promote by slack, verify each move with (incremental) static
// timing, never violate Tc.
//
// The pass is strictly sequential and fully deterministic: candidates
// are ordered by decreasing slack with node-ID tie-breaking, every
// promotion is accepted or rolled back based on an exact incremental
// STA check, and rejected moves restore the previous timing
// bit-exactly. Run on an all-SVT circuit it only ever moves gates up
// the LVT → SVT → HVT ladder, so total power (dynamic + leakage) is
// monotonically non-increasing while the delay budget holds.
package leakage

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/delay"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/sta"
	"repro/internal/tech"
)

// Options parameterizes a Vt-assignment run.
type Options struct {
	// Power tunes the vector simulation behind the dynamic and static
	// power estimates (vectors, seed, frequency).
	Power power.Options
	// STA configures the timing analyses guarding each promotion; use
	// the same config as the sizing protocol for consistent slopes.
	STA sta.Config
	// CapAtSVT stops promotion at the standard device (only LVT → SVT
	// moves are allowed). By default promotion may reach HVT.
	CapAtSVT bool
	// MaxPromotions bounds the number of accepted promotions
	// (0 = unbounded) — an experiment knob, not a tuning default.
	MaxPromotions int
}

func (o Options) maxClass() tech.VtClass {
	if o.CapAtSVT {
		return tech.SVT
	}
	return tech.HVT
}

// Result reports a Vt-assignment run.
type Result struct {
	// Tc is the delay constraint the pass guarded (ps).
	Tc float64 `json:"tc"`
	// Budget is the effective delay ceiling: Tc, or the entry worst
	// delay when the circuit arrived infeasible (the pass then only
	// accepts moves that keep the worst delay unchanged).
	Budget float64 `json:"budget"`
	// Delay is the final Vt-aware worst delay (ps), ≤ Budget.
	Delay float64 `json:"delay"`
	// Considered counts candidate gates visited; Promoted counts
	// accepted promotion steps.
	Considered int `json:"considered"`
	Promoted   int `json:"promoted"`
	// ByClass counts gates per Vt class after assignment.
	ByClass map[tech.VtClass]int `json:"byClass"`
	// DynamicUW is the dynamic power (µW), unchanged by the pass.
	DynamicUW float64 `json:"dynamicUW"`
	// StaticBeforeUW and StaticAfterUW are the subthreshold leakage
	// power before and after assignment (µW).
	StaticBeforeUW float64 `json:"staticBeforeUW"`
	StaticAfterUW  float64 `json:"staticAfterUW"`
	// TotalBeforeUW and TotalAfterUW are dynamic + leakage (µW).
	TotalBeforeUW float64 `json:"totalBeforeUW"`
	TotalAfterUW  float64 `json:"totalAfterUW"`
	// SavingPct is the total-power reduction in percent.
	SavingPct float64 `json:"savingPct"`
}

// Assign runs the selective Vt-assignment pass on a (typically already
// sized) circuit against delay constraint tc (ps). The circuit is
// modified in place: accepted promotions write the node's Vt class.
// Cancellation is honored between candidates: on ctx expiry the
// circuit is left in its latest verified state and the error returned.
//
// The pass never worsens timing: when the circuit enters meeting Tc it
// still meets Tc on exit; when it enters infeasible (the sizing
// protocol ran out of moves) only promotions that leave the worst
// delay untouched are accepted.
func Assign(ctx context.Context, c *netlist.Circuit, m *delay.Model, tc float64, opts Options) (*Result, error) {
	return AssignSession(ctx, sta.NewSession(c, m, opts.STA), tc, opts)
}

// AssignSession is Assign over a caller-supplied incremental timing
// session (the session's STA configuration governs the slopes; opts.STA
// is ignored). The combined size-then-assign flow of
// core.OptimizeWithLeakage threads the sizing rounds' session through
// here, so the pass starts from the already-propagated timing instead
// of re-analyzing the circuit, and every promotion check runs on the
// session's reused buffers.
func AssignSession(ctx context.Context, sess *sta.Session, tc float64, opts Options) (*Result, error) {
	c, m := sess.Circuit(), sess.Model()
	if tc <= 0 {
		return nil, fmt.Errorf("leakage: non-positive constraint %g", tc)
	}
	if err := m.Proc.Validate(); err != nil {
		return nil, err
	}
	maxClass := opts.maxClass()

	res, err := sess.Analyze()
	if err != nil {
		return nil, err
	}
	budget := tc
	if res.WorstDelay > tc {
		budget = res.WorstDelay
	}

	// Power baseline: one vector simulation serves the dynamic
	// estimate and both (before/after) static estimates — Vt swaps
	// change no logic value, so the profile stays valid throughout.
	prof, err := power.SimulateProfile(c, opts.Power)
	if err != nil {
		return nil, err
	}
	dyn, err := power.EstimateCircuitActivities(c, m.Proc, opts.Power, prof.Activities)
	if err != nil {
		return nil, err
	}
	probs := prof.StateProbs
	before, err := power.EstimateStaticProbs(c, m.Proc, probs)
	if err != nil {
		return nil, err
	}

	out := &Result{
		Tc:             tc,
		Budget:         budget,
		ByClass:        make(map[tech.VtClass]int),
		DynamicUW:      dyn.TotalUW,
		StaticBeforeUW: before.TotalUW,
		TotalBeforeUW:  dyn.TotalUW + before.TotalUW,
	}

	// Candidate order: decreasing slack against the budget (most
	// relaxed gates first — they absorb the HVT penalty most easily),
	// node ID breaking ties for determinism.
	slacks, err := res.Slacks(budget)
	if err != nil {
		return nil, err
	}
	type cand struct {
		n     *netlist.Node
		slack float64
	}
	var cands []cand
	for _, n := range c.Nodes {
		if !n.IsLogic() {
			continue
		}
		if n.Vt.Rank() >= maxClass.Rank() {
			continue
		}
		if sl := slacks.Slack(n); sl > 0 {
			cands = append(cands, cand{n, sl})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].slack != cands[j].slack {
			return cands[i].slack > cands[j].slack
		}
		return cands[i].n.ID < cands[j].n.ID
	})

	for _, cd := range cands {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out.Considered++
		n := cd.n
		for n.Vt.Rank() < maxClass.Rank() {
			if opts.MaxPromotions > 0 && out.Promoted >= opts.MaxPromotions {
				break
			}
			next, ok := n.Vt.Promote()
			if !ok || next.Rank() > maxClass.Rank() {
				break
			}
			prev := n.Vt
			n.Vt = next
			if _, err := res.Update(n); err != nil {
				return nil, err
			}
			if res.WorstDelay <= budget {
				out.Promoted++
				continue
			}
			// Roll back: re-propagating from the restored class lands
			// on the previous timing bit-exactly (same inputs, same
			// arithmetic).
			n.Vt = prev
			if _, err := res.Update(n); err != nil {
				return nil, err
			}
			break
		}
		if opts.MaxPromotions > 0 && out.Promoted >= opts.MaxPromotions {
			break
		}
	}

	after, err := power.EstimateStaticProbs(c, m.Proc, probs)
	if err != nil {
		return nil, err
	}
	out.Delay = res.WorstDelay
	out.StaticAfterUW = after.TotalUW
	out.TotalAfterUW = dyn.TotalUW + after.TotalUW
	if out.TotalBeforeUW > 0 {
		out.SavingPct = (out.TotalBeforeUW - out.TotalAfterUW) / out.TotalBeforeUW * 100
	}
	for _, n := range c.Nodes {
		if n.IsLogic() {
			out.ByClass[n.Vt]++
		}
	}
	return out, nil
}
