package leakage_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/delay"
	"repro/internal/iscas"
	"repro/internal/leakage"
	"repro/internal/netlist"
	"repro/internal/sizing"
	"repro/internal/sta"
	"repro/internal/tech"
)

// optimized sizes a benchmark with the protocol at ratio·Tmin and
// returns the circuit, model and constraint.
func optimized(t *testing.T, name string, ratio float64) (*netlist.Circuit, *delay.Model, float64) {
	t.Helper()
	m := delay.NewModel(tech.CMOS025())
	c, err := iscas.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	pa, _, err := sta.CriticalPath(c, m, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sizing.Tmin(m, pa.Clone(), sizing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tc := ratio * r.Delay
	proto, err := core.NewProtocol(core.Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	out, err := proto.OptimizeCircuit(c, tc)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Feasible {
		t.Fatalf("%s at %.2f·Tmin infeasible before the leakage pass", name, ratio)
	}
	return c, m, tc
}

func TestAssignReducesLeakageWithoutViolating(t *testing.T) {
	c, m, tc := optimized(t, "fpd", 1.5)
	res, err := leakage.Assign(context.Background(), c, m, tc, leakage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay > tc {
		t.Fatalf("assignment violated the constraint: %v > %v", res.Delay, tc)
	}
	if res.Promoted == 0 {
		t.Fatal("no gate promoted on a feasibly sized circuit")
	}
	if res.StaticAfterUW >= res.StaticBeforeUW {
		t.Fatalf("leakage did not fall: %v -> %v", res.StaticBeforeUW, res.StaticAfterUW)
	}
	if res.TotalAfterUW >= res.TotalBeforeUW {
		t.Fatalf("total power did not fall: %v -> %v", res.TotalBeforeUW, res.TotalAfterUW)
	}
	if res.SavingPct <= 0 {
		t.Fatalf("saving %v%%", res.SavingPct)
	}
	if res.ByClass[tech.HVT] != res.Promoted {
		t.Fatalf("promoted %d but %d gates at HVT", res.Promoted, res.ByClass[tech.HVT])
	}
	// The final state must verify under a fresh full analysis too.
	fresh, err := sta.Analyze(c, m, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.WorstDelay != res.Delay {
		t.Fatalf("incremental final delay %v, fresh analysis %v", res.Delay, fresh.WorstDelay)
	}
}

func TestAssignDeterministic(t *testing.T) {
	run := func() *leakage.Result {
		c, m, tc := optimized(t, "c432", 1.4)
		res, err := leakage.Assign(context.Background(), c, m, tc, leakage.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if *aByClass(a) != *aByClass(b) {
		t.Fatalf("class census diverged: %v vs %v", a.ByClass, b.ByClass)
	}
	if a.Delay != b.Delay || a.StaticAfterUW != b.StaticAfterUW || a.Promoted != b.Promoted {
		t.Fatalf("results diverged: %+v vs %+v", a, b)
	}
}

// aByClass flattens the class census into a comparable value.
func aByClass(r *leakage.Result) *[tech.NumVtClasses]int {
	var v [tech.NumVtClasses]int
	for cls, n := range r.ByClass {
		v[cls] = n
	}
	return &v
}

func TestAssignInfeasibleEntryNeverWorsens(t *testing.T) {
	// An unsized benchmark at an unreachable constraint: the pass must
	// keep the worst delay exactly where it was and still promote
	// gates off the critical cone.
	m := delay.NewModel(tech.CMOS025())
	c, err := iscas.Load("fpd")
	if err != nil {
		t.Fatal(err)
	}
	base, err := sta.Analyze(c, m, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tc := base.WorstDelay / 10 // hopeless
	res, err := leakage.Assign(context.Background(), c, m, tc, leakage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Budget != base.WorstDelay {
		t.Fatalf("budget %v, want entry worst %v", res.Budget, base.WorstDelay)
	}
	if res.Delay > base.WorstDelay {
		t.Fatalf("pass worsened an infeasible circuit: %v > %v", res.Delay, base.WorstDelay)
	}
	if res.Promoted == 0 {
		t.Fatal("expected off-cone promotions even under an infeasible constraint")
	}
}

func TestAssignMaxPromotionsBound(t *testing.T) {
	c, m, tc := optimized(t, "fpd", 1.5)
	res, err := leakage.Assign(context.Background(), c, m, tc, leakage.Options{MaxPromotions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Promoted != 3 {
		t.Fatalf("promoted %d, want exactly the bound 3", res.Promoted)
	}
}

func TestAssignRejectsBadInputs(t *testing.T) {
	c, m, _ := optimized(t, "fpd", 1.5)
	if _, err := leakage.Assign(context.Background(), c, m, 0, leakage.Options{}); err == nil {
		t.Fatal("zero constraint accepted")
	}
}

func TestAssignCapAtSVT(t *testing.T) {
	// With the SVT ceiling an all-SVT circuit has no legal move, so
	// nothing is promoted; an LVT gate may still climb one rung.
	c, m, tc := optimized(t, "fpd", 1.5)
	res, err := leakage.Assign(context.Background(), c, m, tc, leakage.Options{CapAtSVT: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Promoted != 0 || res.ByClass[tech.HVT] != 0 {
		t.Fatalf("SVT ceiling violated: %+v", res)
	}
	var off *netlist.Node
	for _, n := range c.Nodes {
		if n.IsLogic() {
			off = n
		}
	}
	off.Vt = tech.LVT
	res, err = leakage.Assign(context.Background(), c, m, tc, leakage.Options{CapAtSVT: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ByClass[tech.HVT] != 0 {
		t.Fatal("SVT ceiling let a gate reach HVT")
	}
	if off.Vt == tech.LVT && res.Promoted == 0 {
		t.Fatal("LVT gate with slack not promoted to SVT under the ceiling")
	}
}

func TestAssignLVTStartPromotesTwice(t *testing.T) {
	// A gate parked at LVT with huge slack must climb the full ladder
	// LVT → SVT → HVT.
	c, m, tc := optimized(t, "fpd", 2.5)
	var lvt *netlist.Node
	res0, err := sta.Analyze(c, m, sta.Config{})
	if err != nil {
		t.Fatal(err)
	}
	critical := map[*netlist.Node]bool{}
	for _, n := range res0.CriticalNodes() {
		critical[n] = true
	}
	for _, n := range c.Nodes {
		if n.IsLogic() && !critical[n] {
			lvt = n
			break
		}
	}
	if lvt == nil {
		t.Skip("no off-critical gate")
	}
	lvt.Vt = tech.LVT
	res, err := leakage.Assign(context.Background(), c, m, tc, leakage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ByClass[tech.LVT] != 0 {
		t.Fatalf("LVT gate not promoted: census %v", res.ByClass)
	}
	if lvt.Vt != tech.HVT {
		t.Fatalf("ladder stopped at %v", lvt.Vt)
	}
}
