package report

import (
	"strings"
	"testing"
)

func TestTableASCII(t *testing.T) {
	tb := NewTable("Table X", "Circuit", "Tmin (ps)", "Gain")
	tb.AddRow("c432", 2220.0, "13%")
	tb.AddRow("c6288", 7980.4, "3%")
	tb.AddNote("constraint %s", "Tc = 1.2 Tmin")
	out := tb.String()
	for _, want := range []string{"Table X", "Circuit", "c432", "2220", "c6288", "note: constraint Tc = 1.2 Tmin"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ASCII output missing %q:\n%s", want, out)
		}
	}
	// Columns align: every data line has the header separator width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("unexpected line count %d", len(lines))
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("plain", `with "quote", comma`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, `"with ""quote"", comma"`) {
		t.Fatalf("CSV quoting broken:\n%s", got)
	}
	if !strings.HasPrefix(got, "a,b\n") {
		t.Fatalf("CSV header broken:\n%s", got)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		12345.6: "12346",
		42.25:   "42.2",
		3.14159: "3.14",
		0:       "0",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Fatalf("formatFloat(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestFigure(t *testing.T) {
	f := NewFigure("Fig. 1", "sumC/CREF", "delay (ps)")
	s := f.AddSeries("Tmin iterations")
	s.Add(27, 1590)
	s.Add(53, 1334)
	out := f.String()
	for _, want := range []string{"Fig. 1", "sumC/CREF", "series Tmin iterations", "1590"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
	if len(f.Series) != 1 || len(f.Series[0].X) != 2 {
		t.Fatal("series bookkeeping broken")
	}
}

func TestPowerBreakdown(t *testing.T) {
	tab := PowerBreakdown(280, 0.30, 0.06)
	out := tab.String()
	for _, want := range []string{"power breakdown", "Dynamic", "Leakage", "Total", "before", "after", "leakage saving 80.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("breakdown missing %q:\n%s", want, out)
		}
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(tab.Rows))
	}
	// Degenerate inputs must not divide by zero.
	if got := PowerBreakdown(0, 0, 0); len(got.Notes) != 0 {
		t.Fatal("zero-power breakdown should carry no saving note")
	}
}
