// Package report renders the experiment outputs — the tables and data
// series reproducing the paper's figures — as aligned ASCII and CSV.
// It is deliberately dependency-free: the experiment harness hands it
// plain headers and rows.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote rendered under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// WriteASCII renders the table with aligned columns.
func (t *Table) WriteASCII(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV renders the table as comma-separated values (cells are
// quoted when they contain separators).
func (t *Table) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the ASCII form.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.WriteASCII(&sb)
	return sb.String()
}

// PowerBreakdown renders the dynamic/leakage/total power split of a
// leakage-aware optimization as a before/after table (µW). Dynamic
// power is unchanged by a multi-Vt pass — only the leakage column
// moves — so the saving note quotes the total-power reduction.
func PowerBreakdown(dynamicUW, staticBeforeUW, staticAfterUW float64) *Table {
	t := NewTable("power breakdown (µW)", "", "Dynamic", "Leakage", "Total")
	t.AddRow("before", dynamicUW, staticBeforeUW, dynamicUW+staticBeforeUW)
	t.AddRow("after", dynamicUW, staticAfterUW, dynamicUW+staticAfterUW)
	before := dynamicUW + staticBeforeUW
	if before > 0 && staticBeforeUW > 0 {
		t.AddNote("leakage saving %.1f%% (standby headline), total power saving %.2f%% at this activity",
			(staticBeforeUW-staticAfterUW)/staticBeforeUW*100,
			(staticBeforeUW-staticAfterUW)/before*100)
	}
	return t
}

// Series is a named (x, y) sequence reproducing one curve of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a set of series with axis labels.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure starts a figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries registers and returns a new series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// WriteASCII renders the figure as a data listing (one block per
// series) — sufficient to re-plot and to eyeball crossovers.
func (f *Figure) WriteASCII(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", f.Title)
	fmt.Fprintf(&sb, "x: %s, y: %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "series %s\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&sb, "  %s %s\n", formatFloat(s.X[i]), formatFloat(s.Y[i]))
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the ASCII form.
func (f *Figure) String() string {
	var sb strings.Builder
	_ = f.WriteASCII(&sb)
	return sb.String()
}
