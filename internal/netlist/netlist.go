// Package netlist represents combinational circuits as directed acyclic
// graphs of library cells, with the sizing state (per-gate input
// capacitance) that the POPS optimizers manipulate.
//
// The package also provides the ISCAS'85 ".bench" reader/writer
// (bench.go) and the structure-modification primitives of the paper —
// buffer insertion and gate replacement — as validated graph mutations
// (mutate.go), plus macro elaboration of composite cells into the
// primitive INV/NAND/NOR library (elaborate.go).
package netlist

import (
	"fmt"

	"repro/internal/gate"
	"repro/internal/tech"
)

// Node is a vertex of the circuit DAG: a primary input, a primary
// output observation point, or a logic cell. Each logic node drives
// exactly one net, identified with the node itself (standard ISCAS
// convention: gates are named by their output net).
type Node struct {
	ID   int
	Name string
	Type gate.Type

	// Fanin lists the driver nodes of the cell's input pins, in pin
	// order. Primary inputs have none; Output pseudo-nodes have one.
	Fanin []*Node
	// Fanout lists the cells this node's output net feeds.
	Fanout []*Node

	// CIn is the per-pin input capacitance of the cell in fF — the
	// sizing variable of the optimization. For Output pseudo-nodes it
	// is the fixed terminal load imposed by the environment (register
	// input capacitance); for Input nodes it is unused.
	CIn float64

	// CWire is a fixed extra capacitance on the node's output net in
	// fF, modelling routing parasitics.
	CWire float64

	// Vt is the threshold class of the cell (multi-Vt processes). The
	// zero value is tech.SVT, the standard device, so circuits that
	// never run the leakage pass time exactly as before. Changing Vt
	// does not alter CIn: a Vt swap is a channel-implant change at
	// constant footprint, which is what makes post-sizing selective
	// assignment area-free.
	Vt tech.VtClass
}

// IsLogic reports whether the node is a sizable logic cell.
func (n *Node) IsLogic() bool { return gate.IsLogic(n.Type) }

// Cell returns the library personality of the node's type. It panics
// for pseudo-nodes; callers filter with IsLogic first.
func (n *Node) Cell() gate.Cell { return gate.MustLookup(n.Type) }

// FanoutCap returns the capacitive load presented by the node's sinks:
// the sum of their per-pin input capacitances plus the net's wire
// capacitance. The fanout list carries one entry per sink pin (the
// multiplicity invariant checked by Validate), so a plain sum counts
// multi-pin sinks correctly.
func (n *Node) FanoutCap() float64 {
	c := n.CWire
	for _, s := range n.Fanout {
		c += s.CIn
	}
	return c
}

// String identifies the node for diagnostics.
func (n *Node) String() string {
	return fmt.Sprintf("%s(%s)", n.Name, n.Type)
}

// Circuit is a named combinational circuit.
type Circuit struct {
	Name    string
	Nodes   []*Node // all nodes, in creation order
	Inputs  []*Node // primary inputs, in declaration order
	Outputs []*Node // primary output pseudo-nodes, in declaration order

	byName map[string]*Node
	nextID int
	genSeq int    // counter for generated (inserted) node names
	epoch  uint64 // structural mutation counter (see Epoch)
}

// Epoch returns the circuit's structural mutation epoch: a counter
// bumped by every mutation that can invalidate a cached topological
// order or change arc delays structurally — node insertion and removal,
// pin rewiring, and cell retyping. Size (CIn, CWire) and Vt writes do
// NOT bump it: they perturb timing values, not structure, and cached
// analyses repair them incrementally. Consumers (sta.Result,
// sta.Session) record the epoch at analysis time and refuse or refresh
// stale state when it has moved since.
func (c *Circuit) Epoch() uint64 { return c.epoch }

// MarkMutated bumps the structural epoch. Every mutator in this package
// calls it internally; external code that rewires Fanin/Fanout slices
// directly (e.g. the restructure package's inverter-pair collapse) must
// call it once per structural edit batch.
func (c *Circuit) MarkMutated() { c.epoch++ }

// IDBound returns an exclusive upper bound on node IDs: every node of
// the circuit satisfies 0 ≤ n.ID < IDBound(), and IDs are never reused,
// so a slice of length IDBound() is valid dense per-node storage for
// the circuit's current epoch.
func (c *Circuit) IDBound() int { return c.nextID }

// DefaultGateCIn is the per-pin input capacitance (fF) assigned to
// newly created gates: the minimum available drive of the default
// 0.25 µm corner (tech.CMOS025().CRef). Optimizers overwrite it; the
// default only guarantees that freshly built circuits are analyzable.
const DefaultGateCIn = 1.7

// New returns an empty circuit.
func New(name string) *Circuit {
	return &Circuit{Name: name, byName: make(map[string]*Node)}
}

// Node returns the node with the given name, or nil.
func (c *Circuit) Node(name string) *Node { return c.byName[name] }

// addNode registers a node, enforcing name uniqueness.
func (c *Circuit) addNode(name string, t gate.Type) (*Node, error) {
	if name == "" {
		return nil, fmt.Errorf("netlist %s: empty node name", c.Name)
	}
	if _, dup := c.byName[name]; dup {
		return nil, fmt.Errorf("netlist %s: duplicate node name %q", c.Name, name)
	}
	n := &Node{ID: c.nextID, Name: name, Type: t}
	c.nextID++
	c.Nodes = append(c.Nodes, n)
	c.byName[name] = n
	c.epoch++
	return n, nil
}

// AddInput declares a primary input net.
func (c *Circuit) AddInput(name string) (*Node, error) {
	n, err := c.addNode(name, gate.Input)
	if err != nil {
		return nil, err
	}
	c.Inputs = append(c.Inputs, n)
	return n, nil
}

// AddGate adds a logic cell named by its output net, fed by the named
// driver nets (which must already exist).
func (c *Circuit) AddGate(name string, t gate.Type, fanin ...string) (*Node, error) {
	if !gate.IsLogic(t) {
		return nil, fmt.Errorf("netlist %s: %v is not a logic cell", c.Name, t)
	}
	cell, err := gate.Lookup(t)
	if err != nil {
		return nil, err
	}
	if len(fanin) != cell.FanIn {
		return nil, fmt.Errorf("netlist %s: gate %s type %v wants %d inputs, got %d",
			c.Name, name, t, cell.FanIn, len(fanin))
	}
	drivers := make([]*Node, len(fanin))
	for i, f := range fanin {
		d := c.byName[f]
		if d == nil {
			return nil, fmt.Errorf("netlist %s: gate %s references undefined net %q", c.Name, name, f)
		}
		drivers[i] = d
	}
	n, err := c.addNode(name, t)
	if err != nil {
		return nil, err
	}
	n.CIn = DefaultGateCIn
	n.Fanin = drivers
	for _, d := range drivers {
		d.Fanout = append(d.Fanout, n)
	}
	return n, nil
}

// AddOutput declares that net name is a primary output, creating an
// observation pseudo-node carrying the terminal load.
func (c *Circuit) AddOutput(name string, load float64) (*Node, error) {
	d := c.byName[name]
	if d == nil {
		return nil, fmt.Errorf("netlist %s: output references undefined net %q", c.Name, name)
	}
	n, err := c.addNode(name+"$po", gate.Output)
	if err != nil {
		return nil, err
	}
	n.Fanin = []*Node{d}
	n.CIn = load
	d.Fanout = append(d.Fanout, n)
	c.Outputs = append(c.Outputs, n)
	return n, nil
}

// genName produces a fresh node name with the given prefix.
func (c *Circuit) genName(prefix string) string {
	for {
		c.genSeq++
		name := fmt.Sprintf("%s_%d", prefix, c.genSeq)
		if _, taken := c.byName[name]; !taken {
			return name
		}
	}
}

// Validate checks structural sanity: pin counts match cell fan-in, no
// dangling references, inputs undriven, outputs observed, and the graph
// is acyclic. Optimizers call it after every mutation in tests.
func (c *Circuit) Validate() error {
	for _, n := range c.Nodes {
		switch {
		case n.Type == gate.Input:
			if len(n.Fanin) != 0 {
				return fmt.Errorf("netlist %s: input %s has fanin", c.Name, n.Name)
			}
		case n.Type == gate.Output:
			if len(n.Fanin) != 1 {
				return fmt.Errorf("netlist %s: output %s must have exactly one fanin", c.Name, n.Name)
			}
			if len(n.Fanout) != 0 {
				return fmt.Errorf("netlist %s: output %s has fanout", c.Name, n.Name)
			}
		case n.IsLogic():
			cell := n.Cell()
			if len(n.Fanin) != cell.FanIn {
				return fmt.Errorf("netlist %s: gate %s (%v) has %d fanin, wants %d",
					c.Name, n.Name, n.Type, len(n.Fanin), cell.FanIn)
			}
			if n.CIn < 0 {
				return fmt.Errorf("netlist %s: gate %s has negative input capacitance", c.Name, n.Name)
			}
			if !n.Vt.Valid() {
				return fmt.Errorf("netlist %s: gate %s has invalid Vt class %d", c.Name, n.Name, int(n.Vt))
			}
		default:
			return fmt.Errorf("netlist %s: node %s has invalid type %v", c.Name, n.Name, n.Type)
		}
		// Fanin/fanout must agree with per-pin multiplicity: a sink
		// taking a driver on k pins appears k times in its fanout.
		pins := make(map[*Node]int)
		for _, f := range n.Fanin {
			if c.byName[f.Name] != f {
				return fmt.Errorf("netlist %s: node %s fanin %s is not registered", c.Name, n.Name, f.Name)
			}
			pins[f]++
		}
		for f, k := range pins {
			if got := countOf(f.Fanout, n); got != k {
				return fmt.Errorf("netlist %s: %s drives %s on %d pins but has %d fanout entries",
					c.Name, f.Name, n.Name, k, got)
			}
		}
		for _, s := range n.Fanout {
			if !contains(s.Fanin, n) {
				return fmt.Errorf("netlist %s: fanout/fanin asymmetry between %s and %s", c.Name, n.Name, s.Name)
			}
		}
	}
	if _, err := c.TopoOrder(); err != nil {
		return err
	}
	return nil
}

func contains(ns []*Node, n *Node) bool {
	for _, x := range ns {
		if x == n {
			return true
		}
	}
	return false
}

func countOf(ns []*Node, n *Node) int {
	k := 0
	for _, x := range ns {
		if x == n {
			k++
		}
	}
	return k
}

// TopoOrder returns the nodes in a deterministic topological order
// (Kahn's algorithm with ID tie-breaking), or an error if the graph has
// a cycle.
func (c *Circuit) TopoOrder() ([]*Node, error) {
	return c.TopoOrderInto(nil, nil)
}

// TopoScratch is reusable working storage for TopoOrderInto. The zero
// value is ready to use; buffers grow on demand and are retained across
// calls, so a caller that re-sorts the same circuit repeatedly (the
// incremental timing session) performs no steady-state allocation.
type TopoScratch struct {
	indeg []int   // per-ID in-degree countdown
	ready []*Node // Kahn frontier
	next  []*Node // per-step newly-ready batch
}

//pops:noalloc buffers reused; make runs only under the cap guard
func (s *TopoScratch) grow(idBound int) {
	if cap(s.indeg) < idBound {
		s.indeg = make([]int, idBound)
	}
	s.indeg = s.indeg[:idBound]
	for i := range s.indeg {
		s.indeg[i] = 0
	}
	s.ready = s.ready[:0]
	s.next = s.next[:0]
}

// TopoOrderInto is TopoOrder with caller-supplied storage: the order is
// appended to dst[:0] and the scratch buffers are reused. A nil scratch
// allocates fresh working storage. The produced order is identical to
// TopoOrder's (Kahn with ID tie-breaking).
//
//pops:noalloc steady state reuses dst and scratch capacity
func (c *Circuit) TopoOrderInto(dst []*Node, scratch *TopoScratch) ([]*Node, error) {
	if scratch == nil {
		scratch = &TopoScratch{} //popslint:ignore noalloc convenience path for one-shot callers; hot callers pass their scratch
	}
	scratch.grow(c.nextID)
	indeg := scratch.indeg
	// ready doubles as the FIFO of Kahn's algorithm: head walks it while
	// newly-ready batches are sorted and appended at the tail.
	ready := scratch.ready
	next := scratch.next
	for _, n := range c.Nodes {
		indeg[n.ID] = len(n.Fanin)
		if len(n.Fanin) == 0 {
			ready = append(ready, n)
		}
	}
	sortNodesByID(ready)
	order := dst[:0]
	if cap(order) < len(c.Nodes) {
		order = make([]*Node, 0, len(c.Nodes))
	}
	for head := 0; head < len(ready); head++ {
		n := ready[head]
		order = append(order, n)
		next = next[:0]
		for _, s := range n.Fanout {
			indeg[s.ID]--
			if indeg[s.ID] == 0 {
				next = append(next, s)
			}
		}
		sortNodesByID(next)
		ready = append(ready, next...)
	}
	scratch.ready = ready
	scratch.next = next
	if len(order) != len(c.Nodes) {
		//popslint:ignore noalloc cycle error path, never taken on a valid circuit
		return nil, fmt.Errorf("netlist %s: cycle detected (%d of %d nodes ordered)",
			c.Name, len(order), len(c.Nodes))
	}
	return order, nil
}

// sortNodesByID orders nodes by ascending ID in place. Insertion sort
// on purpose: Kahn frontiers are small and usually already ID-ordered
// (nodes enter in creation order), and unlike sort.Slice it allocates
// nothing — the sort's closure/swapper used to show up in re-analysis
// allocation profiles.
//
//pops:noalloc
func sortNodesByID(ns []*Node) {
	for i := 1; i < len(ns); i++ {
		n := ns[i]
		j := i - 1
		for j >= 0 && ns[j].ID > n.ID {
			ns[j+1] = ns[j]
			j--
		}
		ns[j+1] = n
	}
}

// Clone returns a deep copy of the circuit, preserving node names, IDs,
// types, sizing state and connectivity. Optimizers clone before
// speculative mutations.
func (c *Circuit) Clone() *Circuit {
	d := New(c.Name)
	d.nextID = c.nextID
	d.genSeq = c.genSeq
	d.epoch = c.epoch
	clone := make(map[*Node]*Node, len(c.Nodes))
	for _, n := range c.Nodes {
		m := &Node{ID: n.ID, Name: n.Name, Type: n.Type, CIn: n.CIn, CWire: n.CWire, Vt: n.Vt}
		d.Nodes = append(d.Nodes, m)
		d.byName[m.Name] = m
		clone[n] = m
	}
	for _, n := range c.Nodes {
		m := clone[n]
		m.Fanin = make([]*Node, len(n.Fanin))
		for i, f := range n.Fanin {
			m.Fanin[i] = clone[f]
		}
		m.Fanout = make([]*Node, len(n.Fanout))
		for i, f := range n.Fanout {
			m.Fanout[i] = clone[f]
		}
	}
	for _, n := range c.Inputs {
		d.Inputs = append(d.Inputs, clone[n])
	}
	for _, n := range c.Outputs {
		d.Outputs = append(d.Outputs, clone[n])
	}
	return d
}

// Gates returns the logic cells of the circuit in creation order.
func (c *Circuit) Gates() []*Node {
	gs := make([]*Node, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		if n.IsLogic() {
			gs = append(gs, n)
		}
	}
	return gs
}

// SetUniformSize assigns the same per-pin input capacitance to every
// logic cell (the paper's Tmax configuration uses the minimum drive).
func (c *Circuit) SetUniformSize(cin float64) {
	for _, n := range c.Nodes {
		if n.IsLogic() {
			n.CIn = cin
		}
	}
}

// Area returns the total transistor width ΣW of the circuit in µm given
// a conversion of capacitance to width — the paper's cost metric.
func (c *Circuit) Area(widthForCap func(float64) float64) float64 {
	var sum float64
	for _, n := range c.Nodes {
		if !n.IsLogic() {
			continue
		}
		sum += float64(n.Cell().FanIn) * widthForCap(n.CIn)
	}
	return sum
}

// Stats summarizes the circuit for reports.
type Stats struct {
	Inputs, Outputs, Gates int
	ByType                 map[gate.Type]int
	Depth                  int // logic levels on the longest input→output chain
}

// Stats computes circuit statistics. It assumes a valid DAG.
func (c *Circuit) Stats() Stats {
	st := Stats{ByType: make(map[gate.Type]int)}
	st.Inputs = len(c.Inputs)
	st.Outputs = len(c.Outputs)
	order, err := c.TopoOrder()
	if err != nil {
		return st
	}
	level := make(map[*Node]int, len(c.Nodes))
	for _, n := range order {
		lv := 0
		for _, f := range n.Fanin {
			if level[f] > lv {
				lv = level[f]
			}
		}
		if n.IsLogic() {
			lv++
			st.Gates++
			st.ByType[n.Type]++
		}
		level[n] = lv
		if lv > st.Depth {
			st.Depth = lv
		}
	}
	return st
}
