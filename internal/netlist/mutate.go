package netlist

import (
	"fmt"
	"strings"

	"repro/internal/gate"
)

// InsertCell inserts a new single-input cell of type t (Inv or Buf)
// between driver and the given sinks: the sinks' pins currently fed by
// driver are rewired to the new cell. Remaining sinks keep their direct
// connection, so the mutation can target only the critical branch of a
// net (the paper's local buffer insertion of Fig. 5). The new cell's
// input capacitance starts at cin.
func (c *Circuit) InsertCell(driver *Node, t gate.Type, sinks []*Node, cin float64) (*Node, error) {
	cell, err := gate.Lookup(t)
	if err != nil {
		return nil, err
	}
	if cell.FanIn != 1 {
		return nil, fmt.Errorf("netlist %s: InsertCell requires a single-input cell, got %v", c.Name, t)
	}
	if len(sinks) == 0 {
		return nil, fmt.Errorf("netlist %s: InsertCell with no sinks on %s", c.Name, driver.Name)
	}
	// Copy defensively: callers may pass driver.Fanout itself, which
	// this mutation rewrites.
	sinks = append([]*Node(nil), sinks...)
	for _, s := range sinks {
		if !contains(driver.Fanout, s) {
			return nil, fmt.Errorf("netlist %s: %s is not a sink of %s", c.Name, s.Name, driver.Name)
		}
	}
	name := c.genName(driver.Name + "_" + strings.ToLower(t.String()))
	n, err := c.addNode(name, t)
	if err != nil {
		return nil, err
	}
	n.CIn = cin
	n.Fanin = []*Node{driver}
	for _, s := range sinks {
		// A sink may take the driver on several pins; keep the
		// one-fanout-entry-per-pin invariant.
		moved := 0
		for i, f := range s.Fanin {
			if f == driver {
				s.Fanin[i] = n
				moved++
			}
		}
		for j := 0; j < moved; j++ {
			removeFromFanout(driver, s)
			n.Fanout = append(n.Fanout, s)
		}
	}
	driver.Fanout = append(driver.Fanout, n)
	return n, nil
}

// InsertBufferPair inserts two cascaded inverters between driver and
// sinks — the logic-preserving buffer used by the netlist-level
// protocol. It returns the two new inverters in signal order.
func (c *Circuit) InsertBufferPair(driver *Node, sinks []*Node, cin1, cin2 float64) (*Node, *Node, error) {
	first, err := c.InsertCell(driver, gate.Inv, sinks, cin1)
	if err != nil {
		return nil, nil, err
	}
	second, err := c.InsertCell(first, gate.Inv, first.Fanout, cin2)
	if err != nil {
		return nil, nil, err
	}
	return first, second, nil
}

// ReplaceType changes the cell type of a logic node in place. The new
// type must have the same fan-in. Used by De Morgan restructuring
// (NOR↔NAND swaps).
func (c *Circuit) ReplaceType(n *Node, t gate.Type) error {
	if !n.IsLogic() {
		return fmt.Errorf("netlist %s: cannot retype non-logic node %s", c.Name, n.Name)
	}
	oldCell := n.Cell()
	newCell, err := gate.Lookup(t)
	if err != nil {
		return err
	}
	if newCell.FanIn != oldCell.FanIn {
		return fmt.Errorf("netlist %s: retype %s: %v has fan-in %d, %v has %d",
			c.Name, n.Name, n.Type, oldCell.FanIn, t, newCell.FanIn)
	}
	n.Type = t
	// A retype preserves node count and connectivity but changes the arc
	// personality — structural for timing purposes.
	c.MarkMutated()
	return nil
}

// SpliceInput inserts a single-input cell of type t on one input pin of
// node n, between n.Fanin[pin] and n. Other sinks of the driver are
// untouched. Returns the new cell.
func (c *Circuit) SpliceInput(n *Node, pin int, t gate.Type, cin float64) (*Node, error) {
	if pin < 0 || pin >= len(n.Fanin) {
		return nil, fmt.Errorf("netlist %s: SpliceInput pin %d out of range on %s", c.Name, pin, n.Name)
	}
	cell, err := gate.Lookup(t)
	if err != nil {
		return nil, err
	}
	if cell.FanIn != 1 {
		return nil, fmt.Errorf("netlist %s: SpliceInput requires single-input cell, got %v", c.Name, t)
	}
	driver := n.Fanin[pin]
	name := c.genName(driver.Name + "_" + strings.ToLower(t.String()))
	m, err := c.addNode(name, t)
	if err != nil {
		return nil, err
	}
	m.CIn = cin
	m.Fanin = []*Node{driver}
	m.Fanout = []*Node{n}
	n.Fanin[pin] = m
	// Exactly one pin moved off the driver: drop one fanout entry
	// (one-entry-per-pin invariant) and register the new cell.
	removeFromFanout(driver, n)
	driver.Fanout = append(driver.Fanout, m)
	return m, nil
}

// BypassInverter reroutes one input pin of node n that is currently fed
// by an inverter so that it connects to the inverter's own source —
// the "absorption" move of De Morgan restructuring (feeding ¬a where an
// inverter already computes ¬x means we can tap x directly when a = ¬x).
// If the inverter loses its last sink it is removed from the circuit.
// Returns true if the inverter was removed.
func (c *Circuit) BypassInverter(n *Node, pin int) (bool, error) {
	if pin < 0 || pin >= len(n.Fanin) {
		return false, fmt.Errorf("netlist %s: BypassInverter pin %d out of range on %s", c.Name, pin, n.Name)
	}
	inv := n.Fanin[pin]
	if inv.Type != gate.Inv {
		return false, fmt.Errorf("netlist %s: BypassInverter: %s pin %d is driven by %v, not an inverter",
			c.Name, n.Name, pin, inv.Type)
	}
	src := inv.Fanin[0]
	n.Fanin[pin] = src
	// One pin moved: one fanout entry leaves the inverter, one joins
	// the source (per-pin multiplicity).
	removeFromFanout(inv, n)
	src.Fanout = append(src.Fanout, n)
	c.MarkMutated()
	if len(inv.Fanout) == 0 {
		c.removeNode(inv)
		return true, nil
	}
	return false, nil
}

// RewirePin moves one input pin of node n off its current driver onto
// newDriver, maintaining the one-fanout-entry-per-pin invariant on
// both drivers. It is the primitive rewire for callers outside this
// package (restructuring's inverter collapse): a pin move is
// structural, so the epoch bumps here, not at the call site.
func (c *Circuit) RewirePin(n *Node, pin int, newDriver *Node) error {
	if pin < 0 || pin >= len(n.Fanin) {
		return fmt.Errorf("netlist %s: RewirePin pin %d out of range on %s", c.Name, pin, n.Name)
	}
	old := n.Fanin[pin]
	if old == newDriver {
		return nil
	}
	n.Fanin[pin] = newDriver
	removeFromFanout(old, n)
	newDriver.Fanout = append(newDriver.Fanout, n)
	c.MarkMutated()
	return nil
}

// removeNode unlinks a fanout-free logic node from the circuit.
func (c *Circuit) removeNode(n *Node) {
	for _, f := range n.Fanin {
		removeFromFanout(f, n)
	}
	n.Fanin = nil
	delete(c.byName, n.Name)
	for i, m := range c.Nodes {
		if m == n {
			c.Nodes = append(c.Nodes[:i], c.Nodes[i+1:]...)
			break
		}
	}
	c.MarkMutated()
}

// RemoveIfDead removes n when it is a logic node with no fanout,
// returning true if removed. Restructuring uses it to garbage-collect
// absorbed inverters.
func (c *Circuit) RemoveIfDead(n *Node) bool {
	if !n.IsLogic() || len(n.Fanout) != 0 {
		return false
	}
	c.removeNode(n)
	return true
}

// removeFromFanout drops one fanout entry of driver pointing at sink
// (one entry per moved pin).
//
//pops:mutates structural helper: callers rewire in batches and own the epoch bump
func removeFromFanout(driver, sink *Node) {
	for i, f := range driver.Fanout {
		if f == sink {
			driver.Fanout = append(driver.Fanout[:i], driver.Fanout[i+1:]...)
			return
		}
	}
}
