package netlist

import (
	"strings"
	"testing"

	"repro/internal/gate"
)

// buildDiamond returns a small 2-input diamond circuit:
//
//	a ─ n1(INV) ─┐
//	             ├─ n3(NAND2) ─ out
//	b ─ n2(INV) ─┘
func buildDiamond(t *testing.T) *Circuit {
	t.Helper()
	c := New("diamond")
	mustInput(t, c, "a")
	mustInput(t, c, "b")
	mustGate(t, c, "n1", gate.Inv, "a")
	mustGate(t, c, "n2", gate.Inv, "b")
	mustGate(t, c, "n3", gate.Nand2, "n1", "n2")
	mustOutput(t, c, "n3", 10)
	if err := c.Validate(); err != nil {
		t.Fatalf("diamond invalid: %v", err)
	}
	return c
}

func mustInput(t *testing.T, c *Circuit, name string) *Node {
	t.Helper()
	n, err := c.AddInput(name)
	if err != nil {
		t.Fatalf("AddInput(%s): %v", name, err)
	}
	return n
}

func mustGate(t *testing.T, c *Circuit, name string, ty gate.Type, fanin ...string) *Node {
	t.Helper()
	n, err := c.AddGate(name, ty, fanin...)
	if err != nil {
		t.Fatalf("AddGate(%s): %v", name, err)
	}
	return n
}

func mustOutput(t *testing.T, c *Circuit, name string, load float64) *Node {
	t.Helper()
	n, err := c.AddOutput(name, load)
	if err != nil {
		t.Fatalf("AddOutput(%s): %v", name, err)
	}
	return n
}

func TestConstructionBasics(t *testing.T) {
	c := buildDiamond(t)
	if got := len(c.Gates()); got != 3 {
		t.Fatalf("gates = %d, want 3", got)
	}
	if c.Node("n1") == nil || c.Node("missing") != nil {
		t.Fatal("Node lookup broken")
	}
	if len(c.Inputs) != 2 || len(c.Outputs) != 1 {
		t.Fatalf("ports: %d in, %d out", len(c.Inputs), len(c.Outputs))
	}
	if c.Outputs[0].CIn != 10 {
		t.Fatalf("terminal load = %g, want 10", c.Outputs[0].CIn)
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	c := New("t")
	mustInput(t, c, "a")
	if _, err := c.AddInput("a"); err == nil {
		t.Fatal("duplicate input accepted")
	}
	mustGate(t, c, "g", gate.Inv, "a")
	if _, err := c.AddGate("g", gate.Inv, "a"); err == nil {
		t.Fatal("duplicate gate accepted")
	}
}

func TestUndefinedNetRejected(t *testing.T) {
	c := New("t")
	if _, err := c.AddGate("g", gate.Inv, "nope"); err == nil {
		t.Fatal("undefined fanin accepted")
	}
	if _, err := c.AddOutput("nope", 1); err == nil {
		t.Fatal("undefined output accepted")
	}
}

func TestFanInArityEnforced(t *testing.T) {
	c := New("t")
	mustInput(t, c, "a")
	if _, err := c.AddGate("g", gate.Nand2, "a"); err == nil {
		t.Fatal("NAND2 with one input accepted")
	}
	if _, err := c.AddGate("g", gate.Inv, "a", "a"); err == nil {
		t.Fatal("INV with two inputs accepted")
	}
	if _, err := c.AddGate("g", gate.Input, "a"); err == nil {
		t.Fatal("pseudo-cell as gate accepted")
	}
}

func TestDefaultGateSize(t *testing.T) {
	c := buildDiamond(t)
	for _, g := range c.Gates() {
		if g.CIn != DefaultGateCIn {
			t.Fatalf("gate %s CIn = %g, want default %g", g.Name, g.CIn, DefaultGateCIn)
		}
	}
}

func TestFanoutCapCountsPins(t *testing.T) {
	c := New("t")
	mustInput(t, c, "a")
	g1 := mustGate(t, c, "g1", gate.Inv, "a")
	// g2 takes g1 on BOTH pins: the net sees two pin loads.
	g2 := mustGate(t, c, "g2", gate.Nand2, "g1", "g1")
	g2.CIn = 5
	g1.CWire = 1.5
	if got, want := g1.FanoutCap(), 2*5+1.5; got != want {
		t.Fatalf("FanoutCap = %g, want %g", got, want)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("multi-pin circuit invalid: %v", err)
	}
}

func TestTopoOrderDeterministicAndComplete(t *testing.T) {
	c := buildDiamond(t)
	o1, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := c.TopoOrder()
	if len(o1) != len(c.Nodes) {
		t.Fatalf("order covers %d of %d nodes", len(o1), len(c.Nodes))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("TopoOrder is not deterministic")
		}
	}
	pos := make(map[*Node]int)
	for i, n := range o1 {
		pos[n] = i
	}
	for _, n := range c.Nodes {
		for _, f := range n.Fanin {
			if pos[f] >= pos[n] {
				t.Fatalf("%s ordered before its fanin %s", n.Name, f.Name)
			}
		}
	}
}

func TestCycleDetection(t *testing.T) {
	c := New("t")
	mustInput(t, c, "a")
	g1 := mustGate(t, c, "g1", gate.Nand2, "a", "a")
	g2 := mustGate(t, c, "g2", gate.Inv, "g1")
	// Manually create a cycle g1 ← g2.
	g1.Fanin[1] = g2
	g2.Fanout = append(g2.Fanout, g1)
	removeFromFanout(c.Node("a"), g1)
	if _, err := c.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := c.Validate(); err == nil {
		t.Fatal("Validate must reject cyclic circuit")
	}
}

func TestValidateMultiplicity(t *testing.T) {
	c := New("t")
	mustInput(t, c, "a")
	g := mustGate(t, c, "g", gate.Nand2, "a", "a")
	// Break the invariant: remove one of the two fanout entries.
	removeFromFanout(c.Node("a"), g)
	if err := c.Validate(); err == nil {
		t.Fatal("multiplicity violation not detected")
	}
}

func TestCloneDeep(t *testing.T) {
	c := buildDiamond(t)
	c.Node("n1").CIn = 42
	d := c.Clone()
	if d.Node("n1").CIn != 42 {
		t.Fatal("Clone lost sizing")
	}
	d.Node("n1").CIn = 7
	if c.Node("n1").CIn != 42 {
		t.Fatal("Clone aliases nodes")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	// Fanin pointers must point into the clone.
	for _, n := range d.Nodes {
		for _, f := range n.Fanin {
			if d.Node(f.Name) != f {
				t.Fatal("clone fanin points at original")
			}
		}
	}
	// Mutating the clone must not affect the original.
	if _, err := d.InsertCell(d.Node("n1"), gate.Inv, d.Node("n1").Fanout, 2); err != nil {
		t.Fatal(err)
	}
	if len(c.Node("n1").Fanout) != 1 {
		t.Fatal("mutating clone changed original")
	}
}

func TestSetUniformSizeAndArea(t *testing.T) {
	c := buildDiamond(t)
	c.SetUniformSize(4)
	for _, g := range c.Gates() {
		if g.CIn != 4 {
			t.Fatal("SetUniformSize missed a gate")
		}
	}
	// Two INVs (1 pin) + one NAND2 (2 pins) at 4 fF, 2 fF/µm → 8 µm.
	area := c.Area(func(cap float64) float64 { return cap / 2 })
	if area != (1+1+2)*4/2.0 {
		t.Fatalf("Area = %g", area)
	}
}

func TestStats(t *testing.T) {
	c := buildDiamond(t)
	st := c.Stats()
	if st.Gates != 3 || st.Inputs != 2 || st.Outputs != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Depth != 2 {
		t.Fatalf("depth = %d, want 2", st.Depth)
	}
	if st.ByType[gate.Inv] != 2 || st.ByType[gate.Nand2] != 1 {
		t.Fatalf("ByType %v", st.ByType)
	}
}

func TestBenchRoundTrip(t *testing.T) {
	c := buildDiamond(t)
	var sb strings.Builder
	if err := WriteBench(&sb, c); err != nil {
		t.Fatal(err)
	}
	d, err := ReadBench(strings.NewReader(sb.String()), BenchOptions{Name: "diamond"})
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, sb.String())
	}
	if len(d.Gates()) != len(c.Gates()) {
		t.Fatalf("round trip gate count %d vs %d", len(d.Gates()), len(c.Gates()))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBenchForwardReference(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(y)
y = NOT(x)
x = NOT(a)
`
	c, err := ReadBench(strings.NewReader(src), BenchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Gates()) != 2 {
		t.Fatalf("gates = %d", len(c.Gates()))
	}
}

func TestBenchWideGateDecomposition(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
INPUT(f)
INPUT(g)
OUTPUT(y)
y = AND(a, b, c, d, e, f, g)
`
	c, err := ReadBench(strings.NewReader(src), BenchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Must have decomposed into a tree of library cells; the output
	// net keeps its name.
	if c.Node("y") == nil {
		t.Fatal("output net renamed")
	}
	for _, g := range c.Gates() {
		if g.Cell().FanIn > 4 {
			t.Fatalf("gate %s has fan-in %d", g.Name, g.Cell().FanIn)
		}
	}
}

func TestBenchXorChain(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
y = XOR(a, b, c)
`
	c, err := ReadBench(strings.NewReader(src), BenchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.ByType[gate.Xor2] != 2 {
		t.Fatalf("3-input XOR must become two XOR2, got %v", st.ByType)
	}
}

func TestBenchSingleInputReductions(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(x)
OUTPUT(y)
x = AND(a)
y = NOR(a)
`
	c, err := ReadBench(strings.NewReader(src), BenchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Node("x").Type != gate.Buf || c.Node("y").Type != gate.Inv {
		t.Fatalf("degenerate reductions wrong: %v %v", c.Node("x").Type, c.Node("y").Type)
	}
}

func TestBenchErrors(t *testing.T) {
	cases := map[string]string{
		"malformed input": "INPUT a\n",
		"no assignment":   "INPUT(a)\ny NAND(a)\n",
		"bad op":          "INPUT(a)\ny = FROB(a)\n",
		"empty operand":   "INPUT(a)\ny = NAND(a, )\n",
		"duplicate":       "INPUT(a)\ny = NOT(a)\ny = NOT(a)\n",
		"undefined":       "INPUT(a)\nOUTPUT(z)\ny = NOT(a)\n",
		"cycle":           "INPUT(a)\nx = NAND(a, y)\ny = NOT(x)\nOUTPUT(y)\n",
		"inv arity":       "INPUT(a)\nINPUT(b)\ny = NOT(a, b)\nOUTPUT(y)\n",
	}
	for name, src := range cases {
		if _, err := ReadBench(strings.NewReader(src), BenchOptions{}); err == nil {
			t.Fatalf("%s: expected parse error", name)
		}
	}
}

func TestBenchOutputLoadOption(t *testing.T) {
	src := "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"
	c, err := ReadBench(strings.NewReader(src), BenchOptions{OutputLoad: 33})
	if err != nil {
		t.Fatal(err)
	}
	if c.Outputs[0].CIn != 33 {
		t.Fatalf("output load = %g", c.Outputs[0].CIn)
	}
	d, _ := ReadBench(strings.NewReader(src), BenchOptions{})
	if d.Outputs[0].CIn != DefaultOutputLoad {
		t.Fatalf("default output load = %g", d.Outputs[0].CIn)
	}
}

func TestBenchCommentsAndName(t *testing.T) {
	src := "# mychip\n# another comment\nINPUT(a)\nOUTPUT(y)\ny = NOT(a) # trailing\n"
	c, err := ReadBench(strings.NewReader(src), BenchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "mychip" {
		t.Fatalf("name from comment = %q", c.Name)
	}
}

func TestNodeString(t *testing.T) {
	c := buildDiamond(t)
	s := c.Node("n3").String()
	if !strings.Contains(s, "n3") || !strings.Contains(s, "NAND2") {
		t.Fatalf("Node.String() = %q", s)
	}
}

func TestHasPrefixFoldShortLine(t *testing.T) {
	if hasPrefixFold("IN", "INPUT") {
		t.Fatal("short line matched")
	}
	if !hasPrefixFold("input(x)", "INPUT") {
		t.Fatal("case-insensitive prefix failed")
	}
}
