package netlist

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gate"
)

// randomCircuit builds a valid random DAG of primitive and composite
// cells (deterministic in seed).
func randomCircuit(seed int64) *Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := New(fmt.Sprintf("rand%d", seed))
	nIn := 2 + rng.Intn(5)
	var nets []string
	for i := 0; i < nIn; i++ {
		name := fmt.Sprintf("i%d", i)
		if _, err := c.AddInput(name); err != nil {
			panic(err)
		}
		nets = append(nets, name)
	}
	pool := append(gate.Primitives(), gate.Composites()...)
	nGates := 3 + rng.Intn(20)
	for i := 0; i < nGates; i++ {
		t := pool[rng.Intn(len(pool))]
		cell := gate.MustLookup(t)
		fanin := make([]string, cell.FanIn)
		for j := range fanin {
			fanin[j] = nets[rng.Intn(len(nets))]
		}
		name := fmt.Sprintf("g%d", i)
		if _, err := c.AddGate(name, t, fanin...); err != nil {
			panic(err)
		}
		nets = append(nets, name)
	}
	// Observe all dangling nets so nothing is optimized into limbo.
	for _, name := range nets {
		n := c.Node(name)
		if n != nil && len(n.Fanout) == 0 && n.Type != gate.Input {
			if _, err := c.AddOutput(name, 8); err != nil {
				panic(err)
			}
		}
	}
	if len(c.Outputs) == 0 {
		if _, err := c.AddOutput(nets[len(nets)-1], 8); err != nil {
			panic(err)
		}
	}
	return c
}

func evalAll(t *testing.T, c *Circuit, mask int) map[string]bool {
	t.Helper()
	in := make(map[string]bool, len(c.Inputs))
	for i, n := range c.Inputs {
		in[n.Name] = mask&(1<<uint(i)) != 0
	}
	return evalCircuit(t, c, in)
}

func TestPropertyRandomCircuitsValid(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCircuit(seed % 1000)
		return c.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCloneBehavesIdentically(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		c := randomCircuit(seed)
		d := c.Clone()
		for mask := 0; mask < 8; mask++ {
			a := evalAll(t, c, mask)
			b := evalAll(t, d, mask)
			for k, v := range a {
				if b[k] != v {
					t.Fatalf("seed %d mask %d: clone diverges on %s", seed, mask, k)
				}
			}
		}
	}
}

func TestPropertyBenchRoundTripPreservesLogic(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		c := randomCircuit(seed)
		var sb strings.Builder
		if err := WriteBench(&sb, c); err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		d, err := ReadBench(strings.NewReader(sb.String()), BenchOptions{Name: c.Name})
		if err != nil {
			t.Fatalf("seed %d: read: %v\n%s", seed, err, sb.String())
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for mask := 0; mask < 8; mask++ {
			a := evalAll(t, c, mask)
			b := evalAll(t, d, mask)
			for k, v := range a {
				if b[k] != v {
					t.Fatalf("seed %d mask %d: round trip diverges on %s", seed, mask, k)
				}
			}
		}
	}
}

func TestPropertyElaboratePreservesLogic(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		c := randomCircuit(seed)
		e, err := Elaborate(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !IsElaborated(e) {
			t.Fatalf("seed %d: not fully elaborated", seed)
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for mask := 0; mask < 16; mask++ {
			a := evalAll(t, c, mask)
			b := evalAll(t, e, mask)
			for k, v := range a {
				if b[k] != v {
					t.Fatalf("seed %d mask %d: elaboration diverges on %s", seed, mask, k)
				}
			}
		}
	}
}

func TestPropertyBufferPairInsertionPreservesLogic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for seed := int64(0); seed < 20; seed++ {
		c := randomCircuit(seed)
		gates := c.Gates()
		if len(gates) == 0 {
			continue
		}
		// Insert a pair on a random driven net.
		var driver *Node
		for tries := 0; tries < 10; tries++ {
			cand := gates[rng.Intn(len(gates))]
			if len(cand.Fanout) > 0 {
				driver = cand
				break
			}
		}
		if driver == nil {
			continue
		}
		ref := c.Clone()
		if _, _, err := c.InsertBufferPair(driver, driver.Fanout, 2, 4); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for mask := 0; mask < 16; mask++ {
			a := evalAll(t, ref, mask)
			b := evalAll(t, c, mask)
			for k, v := range a {
				if b[k] != v {
					t.Fatalf("seed %d mask %d: pair insertion changed %s", seed, mask, k)
				}
			}
		}
	}
}
