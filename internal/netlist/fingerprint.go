package netlist

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"
	"math"
)

// CanonicalHasher accumulates the canonical binary encoding shared by
// the repository's content-identity hashes — Fingerprint here and the
// engine's PathSignature: 64-bit little-endian words, length-prefixed
// strings, floats by exact bit pattern, SHA-256, hex digest. The
// encoding lives in one place so the fingerprint families cannot
// silently diverge, and the hash is collision-resistant because these
// identities key shared caches fed by untrusted inputs.
type CanonicalHasher struct {
	h   hash.Hash
	buf [8]byte
}

// NewCanonicalHasher returns an empty canonical hasher.
func NewCanonicalHasher() *CanonicalHasher {
	return &CanonicalHasher{h: sha256.New()}
}

// Word absorbs a 64-bit value.
func (c *CanonicalHasher) Word(u uint64) {
	binary.LittleEndian.PutUint64(c.buf[:], u)
	c.h.Write(c.buf[:])
}

// Float absorbs a float64 by its exact bit pattern.
func (c *CanonicalHasher) Float(f float64) { c.Word(math.Float64bits(f)) }

// Str absorbs a length-prefixed string.
func (c *CanonicalHasher) Str(s string) {
	c.Word(uint64(len(s)))
	io.WriteString(c.h, s)
}

// Sum returns the 64-hex-character digest of everything absorbed.
func (c *CanonicalHasher) Sum() string { return hex.EncodeToString(c.h.Sum(nil)) }

// Fingerprint returns a canonical content hash of the circuit: 64 hex
// characters of SHA-256 over the complete structural and sizing state —
// every node in creation order with its type, Vt class, size, wire load
// and fanin nets, plus the input and output declarations. The circuit
// name is deliberately excluded, so two identical netlists submitted
// under different names share one fingerprint, while any difference in
// structure, sizing or loading changes it.
//
// The batch engine keys its result memoization on this value: unlike a
// circuit *name*, the fingerprint cannot alias two different netlists
// into one memo entry. Named suite benchmarks generate
// deterministically, so a name maps to a stable fingerprint and cache
// hits across submissions are preserved.
func Fingerprint(c *Circuit) string {
	h := NewCanonicalHasher()
	h.Word(uint64(len(c.Nodes)))
	for _, n := range c.Nodes {
		h.Str(n.Name)
		h.Word(uint64(n.Type))
		h.Word(uint64(n.Vt))
		h.Float(n.CIn)
		h.Float(n.CWire)
		h.Word(uint64(len(n.Fanin)))
		for _, f := range n.Fanin {
			h.Str(f.Name)
		}
	}
	h.Word(uint64(len(c.Inputs)))
	for _, n := range c.Inputs {
		h.Str(n.Name)
	}
	h.Word(uint64(len(c.Outputs)))
	for _, n := range c.Outputs {
		h.Str(n.Name)
	}
	return h.Sum()
}
