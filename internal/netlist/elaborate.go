package netlist

import (
	"fmt"

	"repro/internal/gate"
)

// Elaborate lowers a circuit onto the primitive library (INV, BUF,
// NAND2-4, NOR2-4), expanding composite cells:
//
//	AND_n  → NAND_n + INV
//	OR_n   → NOR_n  + INV
//	XOR2   → 4 × NAND2           (the classic four-NAND realization)
//	XNOR2  → INV + 4 × NAND2     (XNOR(a,b) = XOR(a, ¬b))
//
// Net names of the original circuit are preserved, so primary outputs
// and cross-references remain valid; expansion-internal nets get
// generated names. The boolean function is preserved exactly (verified
// by the logic package's equivalence tests).
func Elaborate(c *Circuit) (*Circuit, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	d := New(c.Name)
	for _, n := range order {
		switch {
		case n.Type == gate.Input:
			if _, err := d.AddInput(n.Name); err != nil {
				return nil, err
			}
		case n.Type == gate.Output:
			if _, err := d.AddOutput(n.Fanin[0].Name, n.CIn); err != nil {
				return nil, err
			}
		case gate.IsPrimitive(n.Type):
			m, err := d.AddGate(n.Name, n.Type, faninNames(n)...)
			if err != nil {
				return nil, err
			}
			m.CIn = n.CIn
			m.CWire = n.CWire
		default:
			if err := expandComposite(d, n); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

func faninNames(n *Node) []string {
	names := make([]string, len(n.Fanin))
	for i, f := range n.Fanin {
		names[i] = f.Name
	}
	return names
}

func expandComposite(d *Circuit, n *Node) error {
	in := faninNames(n)
	cin := n.CIn
	if cin <= 0 {
		cin = 0
	}
	set := func(m *Node) {
		m.CIn = cin
	}
	switch n.Type {
	case gate.And2, gate.And3, gate.And4:
		nandT, _ := gate.VariantWithFanIn(gate.Nand2, len(in))
		inner := d.genName(n.Name + "_n")
		g, err := d.AddGate(inner, nandT, in...)
		if err != nil {
			return err
		}
		set(g)
		g2, err := d.AddGate(n.Name, gate.Inv, inner)
		if err != nil {
			return err
		}
		set(g2)
		g2.CWire = n.CWire
		return nil
	case gate.Or2, gate.Or3, gate.Or4:
		norT, _ := gate.VariantWithFanIn(gate.Nor2, len(in))
		inner := d.genName(n.Name + "_n")
		g, err := d.AddGate(inner, norT, in...)
		if err != nil {
			return err
		}
		set(g)
		g2, err := d.AddGate(n.Name, gate.Inv, inner)
		if err != nil {
			return err
		}
		set(g2)
		g2.CWire = n.CWire
		return nil
	case gate.Xor2:
		return expandXor(d, n.Name, in[0], in[1], cin, n.CWire)
	case gate.Xnor2:
		// XNOR(a,b) = XOR(a, ¬b).
		nb := d.genName(n.Name + "_i")
		g, err := d.AddGate(nb, gate.Inv, in[1])
		if err != nil {
			return err
		}
		set(g)
		return expandXor(d, n.Name, in[0], nb, cin, n.CWire)
	}
	return fmt.Errorf("netlist %s: cannot expand %v", d.Name, n.Type)
}

// expandXor emits the four-NAND XOR with output net name out.
func expandXor(d *Circuit, out, a, b string, cin, cwire float64) error {
	m := d.genName(out + "_m")
	g1, err := d.AddGate(m, gate.Nand2, a, b)
	if err != nil {
		return err
	}
	na := d.genName(out + "_a")
	g2, err := d.AddGate(na, gate.Nand2, a, m)
	if err != nil {
		return err
	}
	nb := d.genName(out + "_b")
	g3, err := d.AddGate(nb, gate.Nand2, b, m)
	if err != nil {
		return err
	}
	g4, err := d.AddGate(out, gate.Nand2, na, nb)
	if err != nil {
		return err
	}
	for _, g := range []*Node{g1, g2, g3, g4} {
		g.CIn = cin
	}
	g4.CWire = cwire
	return nil
}

// IsElaborated reports whether every logic cell of the circuit is a
// primitive library cell.
func IsElaborated(c *Circuit) bool {
	for _, n := range c.Nodes {
		if n.IsLogic() && !gate.IsPrimitive(n.Type) {
			return false
		}
	}
	return true
}
