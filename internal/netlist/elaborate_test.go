package netlist

import (
	"testing"

	"repro/internal/gate"
)

// evalCircuit computes the outputs of a circuit by direct traversal
// (a tiny local evaluator so the package has no dependency on logic).
func evalCircuit(t *testing.T, c *Circuit, in map[string]bool) map[string]bool {
	t.Helper()
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	val := make(map[*Node]bool)
	out := make(map[string]bool)
	for _, n := range order {
		switch {
		case n.Type == gate.Input:
			val[n] = in[n.Name]
		case n.Type == gate.Output:
			val[n] = val[n.Fanin[0]]
			out[n.Name] = val[n]
		default:
			args := make([]bool, len(n.Fanin))
			for i, f := range n.Fanin {
				args[i] = val[f]
			}
			val[n] = gate.Eval(n.Type, args)
		}
	}
	return out
}

// compositeCircuit builds one gate of the given type over fresh inputs.
func compositeCircuit(t *testing.T, ty gate.Type) *Circuit {
	t.Helper()
	c := New("comp")
	cell := gate.MustLookup(ty)
	names := make([]string, cell.FanIn)
	for i := range names {
		names[i] = string(rune('a' + i))
		mustInput(t, c, names[i])
	}
	mustGate(t, c, "y", ty, names...)
	mustOutput(t, c, "y", 8)
	return c
}

func TestElaborateAllComposites(t *testing.T) {
	for _, ty := range gate.Composites() {
		t.Run(ty.String(), func(t *testing.T) {
			c := compositeCircuit(t, ty)
			e, err := Elaborate(c)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Validate(); err != nil {
				t.Fatal(err)
			}
			if !IsElaborated(e) {
				t.Fatal("composite survives elaboration")
			}
			// Exhaustive functional equivalence.
			n := len(c.Inputs)
			for mask := 0; mask < 1<<uint(n); mask++ {
				in := make(map[string]bool)
				for i, node := range c.Inputs {
					in[node.Name] = mask&(1<<uint(i)) != 0
				}
				a := evalCircuit(t, c, in)
				b := evalCircuit(t, e, in)
				for k, va := range a {
					if b[k] != va {
						t.Fatalf("mask %b: output %s differs (%v vs %v)", mask, k, va, b[k])
					}
				}
			}
		})
	}
}

func TestElaborateIdempotentOnPrimitives(t *testing.T) {
	c := buildDiamond(t)
	e, err := Elaborate(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Gates()) != len(c.Gates()) {
		t.Fatal("primitive circuit changed size under elaboration")
	}
	if !IsElaborated(c) || !IsElaborated(e) {
		t.Fatal("IsElaborated misreports")
	}
}

func TestElaboratePreservesSizesAndNames(t *testing.T) {
	c := compositeCircuit(t, gate.And3)
	c.Node("y").CIn = 9
	c.Node("y").CWire = 2.5
	e, err := Elaborate(c)
	if err != nil {
		t.Fatal(err)
	}
	y := e.Node("y")
	if y == nil {
		t.Fatal("output net renamed")
	}
	if y.CIn != 9 {
		t.Fatalf("size not propagated: %g", y.CIn)
	}
	if y.CWire != 2.5 {
		t.Fatalf("wire cap not propagated: %g", y.CWire)
	}
	// AND3 → NAND3 + INV.
	st := e.Stats()
	if st.ByType[gate.Nand3] != 1 || st.ByType[gate.Inv] != 1 {
		t.Fatalf("AND3 expansion wrong: %v", st.ByType)
	}
}

func TestElaborateXorShape(t *testing.T) {
	c := compositeCircuit(t, gate.Xor2)
	e, err := Elaborate(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().ByType[gate.Nand2]; got != 4 {
		t.Fatalf("XOR2 must expand to 4 NAND2, got %d", got)
	}
}

func TestElaborateXnorShape(t *testing.T) {
	c := compositeCircuit(t, gate.Xnor2)
	e, err := Elaborate(c)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.ByType[gate.Nand2] != 4 || st.ByType[gate.Inv] != 1 {
		t.Fatalf("XNOR2 expansion wrong: %v", st.ByType)
	}
}

func TestElaborateKeepsOutputsObservable(t *testing.T) {
	c := compositeCircuit(t, gate.Or4)
	e, err := Elaborate(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Outputs) != 1 || e.Outputs[0].Fanin[0].Name != "y" {
		t.Fatal("primary output lost")
	}
	if e.Outputs[0].CIn != 8 {
		t.Fatalf("terminal load lost: %g", e.Outputs[0].CIn)
	}
}
