// Levelization: longest-path-from-inputs level assignment over the
// dense Node.ID index space. Levels are the schedule of the wavefront
// STA passes (internal/sta): nodes within one level share no
// combinational dependency, so they may be evaluated concurrently, and
// every fanout of a node sits at a strictly greater level, so a
// reverse level walk is a valid backward-pass order.
package netlist

import "repro/internal/gate"

// Levels is a levelization of a circuit. Primary inputs sit at level
// 0, every other node one past its deepest fanin (Output pseudo-nodes
// one past their driver), so for every edge n→s, Level[s.ID] >
// Level[n.ID].
type Levels struct {
	// Level is indexed by Node.ID (dense up to the circuit's IDBound
	// at levelization time).
	Level []int
	// Order holds every node bucketed by level — the nodes of level l
	// occupy Order[Offsets[l]:Offsets[l+1]]. Within a level, nodes keep
	// their relative topological-order position, so the bucketing is
	// deterministic.
	Order []*Node
	// Offsets has len(number of levels)+1 entries delimiting Order.
	Offsets []int
}

// Depth returns the number of levels.
func (lv *Levels) Depth() int { return len(lv.Offsets) - 1 }

// Levelize computes a fresh levelization of the circuit. The circuit
// must be acyclic (TopoOrder's error is returned otherwise).
func (c *Circuit) Levelize() (*Levels, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	lv := &Levels{}
	LevelsInto(lv, c, order)
	return lv, nil
}

// LevelsInto recomputes lv in place for the circuit's current
// structure, reusing lv's buffers — the epoch-cached session path.
// order must be a topological order of the circuit (from
// TopoOrder/TopoOrderInto); every node's level is then computable in
// one forward sweep.
//
//pops:noalloc buffers grow only under the cap guards
func LevelsInto(lv *Levels, c *Circuit, order []*Node) {
	bound := c.IDBound()
	if cap(lv.Level) < bound {
		lv.Level = make([]int, bound)
	}
	lv.Level = lv.Level[:bound]
	for i := range lv.Level {
		lv.Level[i] = 0
	}

	depth := 0
	for _, n := range order {
		l := 0
		if n.Type != gate.Input {
			for _, d := range n.Fanin {
				if dl := lv.Level[d.ID] + 1; dl > l {
					l = dl
				}
			}
		}
		lv.Level[n.ID] = l
		if l+1 > depth {
			depth = l + 1
		}
	}

	// Counting sort by level, preserving topological order within each
	// bucket.
	if cap(lv.Offsets) < depth+1 {
		lv.Offsets = make([]int, depth+1)
	}
	lv.Offsets = lv.Offsets[:depth+1]
	for i := range lv.Offsets {
		lv.Offsets[i] = 0
	}
	for _, n := range order {
		lv.Offsets[lv.Level[n.ID]+1]++
	}
	for l := 1; l <= depth; l++ {
		lv.Offsets[l] += lv.Offsets[l-1]
	}
	if cap(lv.Order) < len(order) {
		lv.Order = make([]*Node, len(order))
	}
	lv.Order = lv.Order[:len(order)]
	// Place each node at the next free slot of its level bucket, using
	// Offsets itself as the cursor array; every slot is written exactly
	// once, so no clearing pass is needed.
	for _, n := range order {
		l := lv.Level[n.ID]
		lv.Order[lv.Offsets[l]] = n
		lv.Offsets[l]++
	}
	// Offsets[l] now holds the end of bucket l; shift back to starts.
	for l := depth; l > 0; l-- {
		lv.Offsets[l] = lv.Offsets[l-1]
	}
	lv.Offsets[0] = 0
}
