package netlist

import (
	"testing"

	"repro/internal/gate"
)

// fanChain builds: a → g1(INV) → {g2(INV), g3(INV), out}.
func fanChain(t *testing.T) *Circuit {
	t.Helper()
	c := New("fan")
	mustInput(t, c, "a")
	mustGate(t, c, "g1", gate.Inv, "a")
	mustGate(t, c, "g2", gate.Inv, "g1")
	mustGate(t, c, "g3", gate.Inv, "g1")
	mustOutput(t, c, "g1", 8)
	mustOutput(t, c, "g2", 8)
	mustOutput(t, c, "g3", 8)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInsertCellAllSinks(t *testing.T) {
	c := fanChain(t)
	g1 := c.Node("g1")
	sinks := append([]*Node(nil), g1.Fanout...)
	buf, err := c.InsertCell(g1, gate.Inv, sinks, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("after insert: %v", err)
	}
	if len(g1.Fanout) != 1 || g1.Fanout[0] != buf {
		t.Fatal("driver must now feed only the inserted cell")
	}
	if len(buf.Fanout) != len(sinks) {
		t.Fatalf("inserted cell feeds %d of %d sinks", len(buf.Fanout), len(sinks))
	}
	if buf.CIn != 3 {
		t.Fatalf("inserted cell CIn = %g", buf.CIn)
	}
}

func TestInsertCellPartialSinks(t *testing.T) {
	c := fanChain(t)
	g1, g2 := c.Node("g1"), c.Node("g2")
	buf, err := c.InsertCell(g1, gate.Inv, []*Node{g2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// g3 and the PO keep their direct connection.
	if len(g1.Fanout) != 3 { // g3, PO, buf
		t.Fatalf("driver fanout = %d, want 3", len(g1.Fanout))
	}
	if g2.Fanin[0] != buf {
		t.Fatal("targeted sink not rewired")
	}
}

func TestInsertCellAliasedFanoutSlice(t *testing.T) {
	// Passing driver.Fanout itself must not corrupt the graph (it is
	// mutated during insertion).
	c := fanChain(t)
	g1 := c.Node("g1")
	if _, err := c.InsertCell(g1, gate.Inv, g1.Fanout, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("aliased insertion corrupted the circuit: %v", err)
	}
}

func TestInsertCellMultiPinSink(t *testing.T) {
	c := New("t")
	mustInput(t, c, "a")
	g1 := mustGate(t, c, "g1", gate.Inv, "a")
	g2 := mustGate(t, c, "g2", gate.Nand2, "g1", "g1")
	mustOutput(t, c, "g2", 8)
	if _, err := c.InsertCell(g1, gate.Inv, []*Node{g2}, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("multi-pin insertion: %v", err)
	}
	// Both pins must have moved.
	for _, f := range g2.Fanin {
		if f == g1 {
			t.Fatal("a pin still points at the old driver")
		}
	}
}

func TestInsertCellErrors(t *testing.T) {
	c := fanChain(t)
	g1, g2 := c.Node("g1"), c.Node("g2")
	if _, err := c.InsertCell(g1, gate.Nand2, []*Node{g2}, 2); err == nil {
		t.Fatal("multi-input cell accepted as buffer")
	}
	if _, err := c.InsertCell(g1, gate.Inv, nil, 2); err == nil {
		t.Fatal("empty sink list accepted")
	}
	if _, err := c.InsertCell(g2, gate.Inv, []*Node{g1}, 2); err == nil {
		t.Fatal("non-sink accepted")
	}
}

func TestInsertBufferPairPreservesLogicShape(t *testing.T) {
	c := fanChain(t)
	g1 := c.Node("g1")
	first, second, err := c.InsertBufferPair(g1, g1.Fanout, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if first.Fanin[0] != g1 || second.Fanin[0] != first {
		t.Fatal("pair not chained")
	}
	if first.CIn != 2 || second.CIn != 4 {
		t.Fatal("pair sizes wrong")
	}
	// Two inversions: downstream sees the original polarity.
	if first.Type != gate.Inv || second.Type != gate.Inv {
		t.Fatal("pair must be inverters")
	}
}

func TestReplaceType(t *testing.T) {
	c := New("t")
	mustInput(t, c, "a")
	mustInput(t, c, "b")
	g := mustGate(t, c, "g", gate.Nor2, "a", "b")
	mustOutput(t, c, "g", 8)
	if err := c.ReplaceType(g, gate.Nand2); err != nil {
		t.Fatal(err)
	}
	if g.Type != gate.Nand2 {
		t.Fatal("type not replaced")
	}
	if err := c.ReplaceType(g, gate.Nand3); err == nil {
		t.Fatal("fan-in mismatch accepted")
	}
	if err := c.ReplaceType(c.Outputs[0], gate.Inv); err == nil {
		t.Fatal("retyping a pseudo-node accepted")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpliceInput(t *testing.T) {
	c := New("t")
	mustInput(t, c, "a")
	mustInput(t, c, "b")
	g := mustGate(t, c, "g", gate.Nand2, "a", "b")
	mustOutput(t, c, "g", 8)
	inv, err := c.SpliceInput(g, 0, gate.Inv, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Fanin[0] != inv || inv.Fanin[0].Name != "a" {
		t.Fatal("splice wiring wrong")
	}
	if _, err := c.SpliceInput(g, 5, gate.Inv, 2); err == nil {
		t.Fatal("bad pin accepted")
	}
	if _, err := c.SpliceInput(g, 1, gate.Nor2, 2); err == nil {
		t.Fatal("multi-input splice accepted")
	}
}

func TestSpliceInputMultiPinDriver(t *testing.T) {
	c := New("t")
	mustInput(t, c, "a")
	g1 := mustGate(t, c, "g1", gate.Inv, "a")
	g2 := mustGate(t, c, "g2", gate.Nand2, "g1", "g1")
	mustOutput(t, c, "g2", 8)
	if _, err := c.SpliceInput(g2, 0, gate.Inv, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("multi-pin splice: %v", err)
	}
	_ = g1
}

func TestBypassInverter(t *testing.T) {
	c := New("t")
	mustInput(t, c, "a")
	inv := mustGate(t, c, "inv", gate.Inv, "a")
	g := mustGate(t, c, "g", gate.Nand2, "inv", "a")
	mustOutput(t, c, "g", 8)
	removed, err := c.BypassInverter(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !removed {
		t.Fatal("dead inverter not removed")
	}
	if c.Node("inv") != nil {
		t.Fatal("inverter still registered")
	}
	if g.Fanin[0].Name != "a" {
		t.Fatal("pin not rewired to source")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = inv
}

func TestBypassInverterKeepsSharedInverter(t *testing.T) {
	c := New("t")
	mustInput(t, c, "a")
	mustGate(t, c, "inv", gate.Inv, "a")
	g1 := mustGate(t, c, "g1", gate.Nand2, "inv", "a")
	mustGate(t, c, "g2", gate.Inv, "inv")
	mustOutput(t, c, "g1", 8)
	mustOutput(t, c, "g2", 8)
	removed, err := c.BypassInverter(g1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed {
		t.Fatal("shared inverter must survive")
	}
	if c.Node("inv") == nil {
		t.Fatal("shared inverter vanished")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBypassInverterErrors(t *testing.T) {
	c := New("t")
	mustInput(t, c, "a")
	g := mustGate(t, c, "g", gate.Inv, "a")
	mustOutput(t, c, "g", 8)
	if _, err := c.BypassInverter(g, 3); err == nil {
		t.Fatal("bad pin accepted")
	}
	if _, err := c.BypassInverter(g, 0); err == nil {
		t.Fatal("non-inverter driver accepted")
	}
}

func TestRemoveIfDead(t *testing.T) {
	c := fanChain(t)
	g2 := c.Node("g2")
	// g2 drives a PO: not dead.
	if c.RemoveIfDead(g2) {
		t.Fatal("live node removed")
	}
	// Detach its PO and retry.
	po := g2.Fanout[0]
	po.Fanin = nil
	g2.Fanout = nil
	if !c.RemoveIfDead(g2) {
		t.Fatal("dead node kept")
	}
	if c.Node("g2") != nil {
		t.Fatal("dead node still registered")
	}
}
