package netlist

import (
	"strings"
	"testing"

	"repro/internal/gate"
)

func fpCircuit(t *testing.T, name string) *Circuit {
	t.Helper()
	src := "INPUT(a)\nINPUT(b)\nx = NAND(a, b)\ny = NOT(x)\nOUTPUT(y)\n"
	c, err := ReadBench(strings.NewReader(src), BenchOptions{Name: name})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFingerprintCanonical pins the identity contract: equal content
// gives equal fingerprints regardless of the circuit's name, clones
// share their original's fingerprint, and any structural, sizing, wire
// or Vt difference changes it.
func TestFingerprintCanonical(t *testing.T) {
	a := fpCircuit(t, "alpha")
	b := fpCircuit(t, "beta")
	fa := Fingerprint(a)
	if len(fa) != 64 {
		t.Fatalf("fingerprint length %d, want 64 hex chars", len(fa))
	}
	if fb := Fingerprint(b); fa != fb {
		t.Fatalf("name changed the fingerprint: %s vs %s", fa, fb)
	}
	if fc := Fingerprint(a.Clone()); fa != fc {
		t.Fatalf("clone changed the fingerprint")
	}

	sized := fpCircuit(t, "alpha")
	sized.Node("x").CIn *= 2
	if Fingerprint(sized) == fa {
		t.Fatal("size write did not change the fingerprint")
	}
	wired := fpCircuit(t, "alpha")
	wired.Node("x").CWire += 1.5
	if Fingerprint(wired) == fa {
		t.Fatal("wire load did not change the fingerprint")
	}
	vt := fpCircuit(t, "alpha")
	vt.Node("x").Vt++
	if Fingerprint(vt) == fa {
		t.Fatal("Vt class did not change the fingerprint")
	}
	grown := fpCircuit(t, "alpha")
	if _, err := grown.AddGate("z", gate.Inv, "y"); err != nil {
		t.Fatal(err)
	}
	if Fingerprint(grown) == fa {
		t.Fatal("added gate did not change the fingerprint")
	}
}
