package netlist

import (
	"errors"
	"strings"
	"testing"
)

// readErr parses src and returns the typed rejection, failing the test
// if the source was accepted or the error is untyped.
func readErr(t *testing.T, src string, opts BenchOptions) *BenchError {
	t.Helper()
	_, err := ReadBench(strings.NewReader(src), opts)
	if err == nil {
		t.Fatalf("source accepted:\n%s", src)
	}
	var be *BenchError
	if !errors.As(err, &be) {
		t.Fatalf("untyped rejection %T: %v", err, err)
	}
	return be
}

// TestReadBenchTypedErrors table-tests the hardened validation pass:
// every rejection class carries its BenchErrorKind, so services can
// map malformed text to 400 and invalid netlists to 422 without
// string-matching error messages.
func TestReadBenchTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		kind BenchErrorKind
		want string // substring of the message
	}{
		{"malformed input decl", "INPUT a\n", BenchSyntax, "malformed"},
		{"malformed output decl", "INPUT(a)\nOUTPUT[a]\n", BenchSyntax, "malformed"},
		{"missing assignment", "INPUT(a)\njunk line\n", BenchSyntax, "assignment"},
		{"truncated gate expr", "INPUT(a)\nx = NAND(a\n", BenchSyntax, "malformed gate expression"},
		{"empty operand", "INPUT(a)\nx = NAND(a, )\nOUTPUT(x)\n", BenchSyntax, "empty operand"},
		{"empty lhs", "INPUT(a)\n= NOT(a)\n", BenchSyntax, "net name"},
		{"unsupported operator", "INPUT(a)\nINPUT(b)\nx = MUX(a, b)\nOUTPUT(x)\n", BenchSemantic, "unsupported"},
		{"wrong arity NOT", "INPUT(a)\nINPUT(b)\nx = NOT(a, b)\nOUTPUT(x)\n", BenchSemantic, "expects 1 input"},
		{"duplicate gate", "INPUT(a)\ny = NOT(a)\ny = NOT(a)\nOUTPUT(y)\n", BenchSemantic, "duplicate gate"},
		{"duplicate INPUT", "INPUT(a)\nINPUT(a)\ny = NOT(a)\nOUTPUT(y)\n", BenchSemantic, "duplicate INPUT"},
		{"duplicate OUTPUT", "INPUT(a)\ny = NOT(a)\nOUTPUT(y)\nOUTPUT(y)\n", BenchSemantic, "duplicate OUTPUT"},
		{"gate redefines input", "INPUT(a)\na = NOT(a)\nOUTPUT(a)\n", BenchSemantic, "redefines an INPUT"},
		{"undefined net", "INPUT(a)\nx = NAND(a, ghost)\nOUTPUT(x)\n", BenchSemantic, "undefined net"},
		{"undefined output", "INPUT(a)\ny = NOT(a)\nOUTPUT(ghost)\n", BenchSemantic, "undefined net"},
		{"self cycle", "INPUT(a)\nx = NAND(a, x)\nOUTPUT(x)\n", BenchSemantic, "cycle"},
		{"two-gate cycle", "INPUT(a)\nx = NAND(a, y)\ny = NOT(x)\nOUTPUT(y)\n", BenchSemantic, "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			be := readErr(t, tc.src, BenchOptions{})
			if be.Kind != tc.kind {
				t.Errorf("kind = %v, want %v (%v)", be.Kind, tc.kind, be)
			}
			if !strings.Contains(be.Error(), tc.want) {
				t.Errorf("message %q does not mention %q", be.Error(), tc.want)
			}
			if be.Line == 0 {
				t.Errorf("rejection carries no line number: %v", be)
			}
		})
	}
}

// TestReadBenchLimits exercises the BenchLimits caps: gate-count and
// fan-in violations are BenchTooLarge, and the zero limits accept the
// same sources.
func TestReadBenchLimits(t *testing.T) {
	wide := "INPUT(a)\nINPUT(b)\nINPUT(c)\nx = AND(a, b, c)\nOUTPUT(x)\n"
	be := readErr(t, wide, BenchOptions{Limits: BenchLimits{MaxFanIn: 2}})
	if be.Kind != BenchTooLarge || !strings.Contains(be.Msg, "cap") {
		t.Errorf("fan-in cap: %v (kind %v)", be, be.Kind)
	}
	if _, err := ReadBench(strings.NewReader(wide), BenchOptions{}); err != nil {
		t.Errorf("unlimited parse rejected the wide gate: %v", err)
	}

	var sb strings.Builder
	sb.WriteString("INPUT(a)\n")
	prev := "a"
	for i := 0; i < 5; i++ {
		name := "g" + string(rune('0'+i))
		sb.WriteString(name + " = NOT(" + prev + ")\n")
		prev = name
	}
	sb.WriteString("OUTPUT(" + prev + ")\n")
	be = readErr(t, sb.String(), BenchOptions{Limits: BenchLimits{MaxGates: 3}})
	if be.Kind != BenchTooLarge || !strings.Contains(be.Msg, "gate cap") && !strings.Contains(be.Msg, "-gate cap") {
		t.Errorf("gate cap: %v (kind %v)", be, be.Kind)
	}
	if _, err := ReadBench(strings.NewReader(sb.String()), BenchOptions{Limits: BenchLimits{MaxGates: 5}}); err != nil {
		t.Errorf("at-limit parse rejected: %v", err)
	}
}

// TestReadBenchGateNamedLikeKeyword guards the declaration/assignment
// disambiguation: a gate whose name merely starts with INPUT or OUTPUT
// is an assignment, not a malformed declaration.
func TestReadBenchGateNamedLikeKeyword(t *testing.T) {
	src := "INPUT(a)\ninput1 = NOT(a)\noutput1 = NOT(input1)\nOUTPUT(output1)\n"
	c, err := ReadBench(strings.NewReader(src), BenchOptions{})
	if err != nil {
		t.Fatalf("keyword-prefixed gate names rejected: %v", err)
	}
	if c.Node("input1") == nil || c.Node("output1") == nil {
		t.Fatal("keyword-prefixed gates missing from the circuit")
	}
}

// FuzzReadBench asserts the untrusted-source contract on arbitrary
// inputs: ReadBench either returns a structurally valid circuit or a
// typed *BenchError — never a panic, never an untyped error. The seed
// corpus covers every rejection class plus valid sources.
func FuzzReadBench(f *testing.F) {
	seeds := []string{
		"",
		"# c17\nINPUT(G1)\nINPUT(G3)\nOUTPUT(G10)\nG10 = NAND(G1, G3)\n",
		"INPUT(a)\nx = NAND(a, x)\nOUTPUT(x)\n",      // cycle
		"INPUT(a)\ny = NOT(a)\ny = NOT(a)\n",         // duplicate gate
		"INPUT(a)\ny = NOT(a)\nOUTPUT(y)\nOUTPUT(y)", // duplicate output
		"INPUT(a)\nx = FROB(a)\nOUTPUT(x)\n",         // unsupported op
		"INPUT(a)\nx = NAND(a",                       // truncated
		"INPUT(a)\nINPUT(b)\nx = AND(a,b,a,b,a,b)\n", // repeated pins
		"OUTPUT(ghost)\n",                            // undefined output
		"garbage\x00line\n",                          // binary junk
		"INPUT(a)\n= NOT(a)\n",                       // empty lhs
		"INPUT(a)\nINPUT(a)\n",                       // duplicate input
	}
	for _, s := range seeds {
		f.Add(s)
	}
	lim := BenchLimits{MaxGates: 512, MaxFanIn: 16}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ReadBench(strings.NewReader(src), BenchOptions{Limits: lim})
		if err != nil {
			var be *BenchError
			if !errors.As(err, &be) {
				t.Fatalf("untyped rejection %T: %v", err, err)
			}
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("accepted source produced an invalid circuit: %v\n%s", err, src)
		}
	})
}
