package netlist

import "fmt"

// BenchErrorKind classifies why a .bench source was rejected. The
// kinds partition rejections by who is at fault and how a service
// should answer: syntax errors are malformed text (HTTP 400), semantic
// errors are well-formed text that does not describe a valid
// combinational netlist (HTTP 422), and limit violations are inputs a
// deployment refuses to elaborate (HTTP 422).
type BenchErrorKind int

// Rejection classes of a .bench source.
const (
	// BenchSyntax marks text that is not well-formed .bench: malformed
	// INPUT/OUTPUT declarations, a gate line without '=', unbalanced
	// parentheses, empty operands.
	BenchSyntax BenchErrorKind = iota
	// BenchSemantic marks well-formed text that is not a valid
	// combinational netlist: unsupported operators, wrong arity,
	// duplicate or undefined nets, combinational cycles.
	BenchSemantic
	// BenchTooLarge marks a source that exceeds a configured
	// BenchLimits bound (gate count, fan-in, scanner line length).
	BenchTooLarge
)

// String names the kind for diagnostics.
func (k BenchErrorKind) String() string {
	switch k {
	case BenchSyntax:
		return "syntax"
	case BenchSemantic:
		return "semantic"
	case BenchTooLarge:
		return "too-large"
	}
	return fmt.Sprintf("BenchErrorKind(%d)", int(k))
}

// BenchError is the typed rejection of a .bench source. Every error
// path of ReadBench returns one (possibly wrapped), so callers
// ingesting untrusted netlists — the HTTP service in particular — can
// map the Kind to a client-error status instead of surfacing an opaque
// internal failure.
type BenchError struct {
	Kind BenchErrorKind
	Line int    // 1-based source line; 0 when not line-addressable
	Msg  string // human-readable cause
}

// Error implements the error interface.
func (e *BenchError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("bench line %d: %s", e.Line, e.Msg)
	}
	return "bench: " + e.Msg
}

// benchErr builds a BenchError with a formatted message.
func benchErr(kind BenchErrorKind, line int, format string, args ...any) *BenchError {
	return &BenchError{Kind: kind, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// BenchLimits bounds ReadBench when parsing untrusted sources. Zero
// fields apply no bound, so the zero value preserves the permissive
// behavior trusted callers (the embedded suite, tests) rely on.
type BenchLimits struct {
	// MaxGates caps the number of gate definitions (counted before
	// wide-gate decomposition).
	MaxGates int
	// MaxFanIn caps the operand count of a single gate definition.
	// Wide gates within the cap are still decomposed into library
	// cells; the cap exists to bound the decomposition trees an
	// adversarial source can demand.
	MaxFanIn int
}
