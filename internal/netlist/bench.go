package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/gate"
)

// BenchOptions controls .bench parsing.
type BenchOptions struct {
	// OutputLoad is the terminal capacitance (fF) attached to every
	// primary output — the register input capacitance that bounds the
	// path per §2.2. Zero selects DefaultOutputLoad.
	OutputLoad float64
	// Name overrides the circuit name (otherwise taken from the first
	// "# name" comment or left empty).
	Name string
	// Limits bounds the source for untrusted callers; the zero value
	// applies no limits.
	Limits BenchLimits
}

// DefaultOutputLoad is the terminal load (fF) applied to primary
// outputs when the caller does not specify one: a few minimum register
// input capacitances.
const DefaultOutputLoad = 12.0

// ReadBench parses an ISCAS'85 ".bench" netlist. The format is:
//
//	# comment
//	INPUT(G1)
//	OUTPUT(G22)
//	G10 = NAND(G1, G3)
//	G22 = NOT(G10)
//
// Recognized operators: AND, NAND, OR, NOR, NOT, BUF/BUFF, XOR, XNOR.
// Gates wider than the 4-input library cells are decomposed on the fly
// into balanced trees of library cells (real ISCAS'85 circuits contain
// up to 9-input gates), which preserves the boolean function exactly.
// Forward references are legal: the file is read in two passes.
//
// Every rejection is a typed *BenchError (possibly wrapped): malformed
// text is BenchSyntax, invalid netlists — duplicate or undefined nets,
// duplicate INPUT/OUTPUT declarations, unsupported operators, wrong
// arity, combinational cycles — are BenchSemantic, and violations of
// opts.Limits are BenchTooLarge. Services ingesting untrusted sources
// map these to client-error statuses.
func ReadBench(r io.Reader, opts BenchOptions) (*Circuit, error) {
	load := opts.OutputLoad
	if load <= 0 {
		load = DefaultOutputLoad
	}

	type rawGate struct {
		name string
		op   string
		args []string
		line int
	}
	type decl struct {
		name string
		line int
	}
	var (
		inputs  []decl
		outputs []decl
		raws    []rawGate
		name    = opts.Name
	)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			if name == "" {
				c := strings.TrimSpace(line[i+1:])
				if c != "" && !strings.ContainsAny(c, " \t") {
					name = c
				}
			}
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case hasPrefixFold(line, "INPUT") && !strings.Contains(line, "="):
			arg, err := parseParen(line, "INPUT")
			if err != nil {
				return nil, benchErr(BenchSyntax, lineNo, "%v", err)
			}
			inputs = append(inputs, decl{arg, lineNo})
		case hasPrefixFold(line, "OUTPUT") && !strings.Contains(line, "="):
			arg, err := parseParen(line, "OUTPUT")
			if err != nil {
				return nil, benchErr(BenchSyntax, lineNo, "%v", err)
			}
			outputs = append(outputs, decl{arg, lineNo})
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, benchErr(BenchSyntax, lineNo, "expected assignment, got %q", line)
			}
			lhs := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			if lhs == "" {
				return nil, benchErr(BenchSyntax, lineNo, "assignment without a net name %q", line)
			}
			op, args, err := parseCall(rhs)
			if err != nil {
				return nil, benchErr(BenchSyntax, lineNo, "%v", err)
			}
			if m := opts.Limits.MaxFanIn; m > 0 && len(args) > m {
				return nil, benchErr(BenchTooLarge, lineNo,
					"gate %q has %d inputs, over the %d-input cap", lhs, len(args), m)
			}
			if m := opts.Limits.MaxGates; m > 0 && len(raws) >= m {
				return nil, benchErr(BenchTooLarge, lineNo,
					"netlist exceeds the %d-gate cap", m)
			}
			raws = append(raws, rawGate{name: lhs, op: op, args: args, line: lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return nil, benchErr(BenchTooLarge, lineNo+1, "line exceeds the scanner buffer")
		}
		return nil, benchErr(BenchSyntax, 0, "read: %v", err)
	}

	c := New(name)
	for _, in := range inputs {
		if c.Node(in.name) != nil {
			return nil, benchErr(BenchSemantic, in.line, "duplicate INPUT(%s)", in.name)
		}
		if _, err := c.AddInput(in.name); err != nil {
			return nil, benchErr(BenchSemantic, in.line, "%v", err)
		}
	}

	// Two-pass construction to allow forward references: first register
	// every gate output name, then wire fanin.
	pending := make(map[string]rawGate, len(raws))
	for _, rg := range raws {
		if _, dup := pending[rg.name]; dup {
			return nil, benchErr(BenchSemantic, rg.line, "duplicate gate %q", rg.name)
		}
		if c.Node(rg.name) != nil {
			return nil, benchErr(BenchSemantic, rg.line, "gate %q redefines an INPUT", rg.name)
		}
		pending[rg.name] = rg
	}
	defined := make(map[string]bool, len(inputs)+len(raws))
	for _, in := range inputs {
		defined[in.name] = true
	}

	// Emit gates in dependency order by depth-first descent (the files
	// are usually already ordered; this tolerates any order). onStack
	// marks the current descent path for O(1) cycle detection — a
	// linear trail scan here is quadratic on long chains, long enough
	// to matter for a service parsing untrusted megabyte sources.
	onStack := make(map[string]bool)
	var emit func(name string, refLine int) error
	emit = func(gname string, refLine int) error {
		if defined[gname] {
			return nil
		}
		rg, ok := pending[gname]
		if !ok {
			return benchErr(BenchSemantic, refLine, "undefined net %q referenced", gname)
		}
		if onStack[gname] {
			return benchErr(BenchSemantic, rg.line, "combinational cycle through %q", gname)
		}
		onStack[gname] = true
		for _, a := range rg.args {
			if err := emit(a, rg.line); err != nil {
				return err
			}
		}
		delete(onStack, gname)
		if err := addBenchGate(c, rg.name, rg.op, rg.args); err != nil {
			return benchErr(BenchSemantic, rg.line, "%v", err)
		}
		defined[gname] = true
		return nil
	}
	names := make([]string, 0, len(pending))
	for n := range pending {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := emit(n, pending[n].line); err != nil {
			return nil, err
		}
	}

	seenOut := make(map[string]bool, len(outputs))
	for _, out := range outputs {
		if seenOut[out.name] {
			return nil, benchErr(BenchSemantic, out.line, "duplicate OUTPUT(%s)", out.name)
		}
		seenOut[out.name] = true
		if _, err := c.AddOutput(out.name, load); err != nil {
			return nil, benchErr(BenchSemantic, out.line, "%v", err)
		}
	}
	return c, nil
}

// addBenchGate adds one parsed gate, decomposing wide operators into
// balanced trees of library cells.
func addBenchGate(c *Circuit, name, op string, args []string) error {
	t, err := gate.ParseType(op)
	if err != nil {
		return fmt.Errorf("unsupported bench operator %q", op)
	}
	n := len(args)
	switch t {
	case gate.Inv, gate.Buf:
		if n != 1 {
			return fmt.Errorf("%s expects 1 input, got %d", op, n)
		}
		_, err = c.AddGate(name, t, args[0])
		return err
	case gate.Xor2, gate.Xnor2:
		// XOR/XNOR chains associate left: a^b^c = (a^b)^c.
		if n < 2 {
			return fmt.Errorf("%s expects >=2 inputs, got %d", op, n)
		}
		acc := args[0]
		for i := 1; i < n; i++ {
			tt := gate.Xor2
			gname := c.genName(name + "_x")
			if i == n-1 {
				tt = t
				gname = name
			}
			if _, err := c.AddGate(gname, tt, acc, args[i]); err != nil {
				return err
			}
			acc = gname
		}
		return nil
	case gate.And2, gate.Or2, gate.Nand2, gate.Nor2:
		if n < 1 {
			return fmt.Errorf("%s expects inputs", op)
		}
		if n == 1 {
			// Degenerate single-input AND/OR is a buffer; NAND/NOR an
			// inverter.
			tt := gate.Buf
			if t == gate.Nand2 || t == gate.Nor2 {
				tt = gate.Inv
			}
			_, err := c.AddGate(name, tt, args[0])
			return err
		}
		return addWide(c, name, t, args)
	default:
		return fmt.Errorf("unsupported bench operator %q", op)
	}
}

// addWide realizes an n-input AND/OR/NAND/NOR using library cells of
// fan-in ≤ 4, decomposing as a balanced tree. The inverting forms apply
// the inversion only at the root.
func addWide(c *Circuit, name string, t gate.Type, args []string) error {
	inverting := t == gate.Nand2 || t == gate.Nor2
	var baseFamily gate.Type // non-inverting reduction family
	switch t {
	case gate.And2, gate.Nand2:
		baseFamily = gate.And2
	case gate.Or2, gate.Nor2:
		baseFamily = gate.Or2
	default:
		return fmt.Errorf("addWide: bad family %v", t)
	}

	var build func(nets []string, root bool) (string, error)
	build = func(nets []string, root bool) (string, error) {
		n := len(nets)
		if n == 1 {
			if root {
				// Single net at root of inverting op: plain inverter.
				if inverting {
					_, err := c.AddGate(name, gate.Inv, nets[0])
					return name, err
				}
				_, err := c.AddGate(name, gate.Buf, nets[0])
				return name, err
			}
			return nets[0], nil
		}
		if n <= 4 {
			family := baseFamily
			gname := c.genName(name + "_t")
			if root {
				gname = name
				if inverting {
					// NAND family root for AND reduction, NOR for OR.
					if baseFamily == gate.And2 {
						family = gate.Nand2
					} else {
						family = gate.Nor2
					}
				}
			}
			tt, ok := gate.VariantWithFanIn(family, n)
			if !ok {
				return "", fmt.Errorf("no %v variant with %d inputs", family, n)
			}
			_, err := c.AddGate(gname, tt, nets...)
			return gname, err
		}
		// Split into up to 4 balanced groups.
		groups := 4
		if n <= 8 {
			groups = (n + 2) / 3 // keep subtrees ≥ 2 wide where possible
			if groups < 2 {
				groups = 2
			}
		}
		per := (n + groups - 1) / groups
		var tops []string
		for i := 0; i < n; i += per {
			j := i + per
			if j > n {
				j = n
			}
			top, err := build(nets[i:j], false)
			if err != nil {
				return "", err
			}
			tops = append(tops, top)
		}
		return build(tops, root)
	}
	_, err := build(args, true)
	return err
}

// WriteBench serializes the circuit in ISCAS .bench format. Output
// pseudo-nodes are emitted as OUTPUT declarations of their driven net.
func WriteBench(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates\n",
		len(c.Inputs), len(c.Outputs), len(c.Gates()))
	for _, in := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", in.Name)
	}
	for _, out := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", out.Fanin[0].Name)
	}
	order, err := c.TopoOrder()
	if err != nil {
		return err
	}
	for _, n := range order {
		if !n.IsLogic() {
			continue
		}
		op, err := benchOp(n.Type)
		if err != nil {
			return fmt.Errorf("bench write %s: %v", n.Name, err)
		}
		names := make([]string, len(n.Fanin))
		for i, f := range n.Fanin {
			names[i] = f.Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", n.Name, op, strings.Join(names, ", "))
	}
	return bw.Flush()
}

func benchOp(t gate.Type) (string, error) {
	switch t {
	case gate.Inv:
		return "NOT", nil
	case gate.Buf:
		return "BUFF", nil
	case gate.Nand2, gate.Nand3, gate.Nand4:
		return "NAND", nil
	case gate.Nor2, gate.Nor3, gate.Nor4:
		return "NOR", nil
	case gate.And2, gate.And3, gate.And4:
		return "AND", nil
	case gate.Or2, gate.Or3, gate.Or4:
		return "OR", nil
	case gate.Xor2:
		return "XOR", nil
	case gate.Xnor2:
		return "XNOR", nil
	}
	return "", fmt.Errorf("no bench operator for %v", t)
}

func hasPrefixFold(s, prefix string) bool {
	if len(s) < len(prefix) {
		return false
	}
	return strings.EqualFold(s[:len(prefix)], prefix)
}

// parseParen extracts X from "KEYWORD(X)".
func parseParen(line, keyword string) (string, error) {
	rest := strings.TrimSpace(line[len(keyword):])
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return "", fmt.Errorf("malformed %s declaration %q", keyword, line)
	}
	arg := strings.TrimSpace(rest[1 : len(rest)-1])
	if arg == "" {
		return "", fmt.Errorf("empty %s declaration %q", keyword, line)
	}
	return arg, nil
}

// parseCall parses "OP(a, b, c)".
func parseCall(rhs string) (op string, args []string, err error) {
	open := strings.IndexByte(rhs, '(')
	if open < 0 || !strings.HasSuffix(rhs, ")") {
		return "", nil, fmt.Errorf("malformed gate expression %q", rhs)
	}
	op = strings.TrimSpace(rhs[:open])
	inner := rhs[open+1 : len(rhs)-1]
	for _, part := range strings.Split(inner, ",") {
		p := strings.TrimSpace(part)
		if p == "" {
			return "", nil, fmt.Errorf("empty operand in %q", rhs)
		}
		args = append(args, p)
	}
	if op == "" || len(args) == 0 {
		return "", nil, fmt.Errorf("malformed gate expression %q", rhs)
	}
	return op, args, nil
}
