package logic

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/gate"
	"repro/internal/netlist"
)

func mkXorCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("xor")
	for _, in := range []string{"a", "b"} {
		if _, err := c.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	add := func(name string, ty gate.Type, fanin ...string) {
		if _, err := c.AddGate(name, ty, fanin...); err != nil {
			t.Fatal(err)
		}
	}
	add("m", gate.Nand2, "a", "b")
	add("p", gate.Nand2, "a", "m")
	add("q", gate.Nand2, "b", "m")
	add("y", gate.Nand2, "p", "q")
	if _, err := c.AddOutput("y", 8); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEvalXor(t *testing.T) {
	c := mkXorCircuit(t)
	for mask := 0; mask < 4; mask++ {
		a, b := mask&1 != 0, mask&2 != 0
		out, err := Eval(c, map[string]bool{"a": a, "b": b})
		if err != nil {
			t.Fatal(err)
		}
		if out["y"] != (a != b) {
			t.Fatalf("xor(%v,%v) = %v", a, b, out["y"])
		}
	}
}

func TestEvalMissingInput(t *testing.T) {
	c := mkXorCircuit(t)
	if _, err := Eval(c, map[string]bool{"a": true}); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestEquivalentIdentity(t *testing.T) {
	c := mkXorCircuit(t)
	d := c.Clone()
	ce, err := Equivalent(c, d, 0, 1)
	if err != nil || ce != nil {
		t.Fatalf("clone not equivalent: %v %v", ce, err)
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	c := mkXorCircuit(t)
	d := c.Clone()
	// Retype the output gate: XOR becomes something else.
	if err := d.ReplaceType(d.Node("y"), gate.Nor2); err != nil {
		t.Fatal(err)
	}
	ce, err := Equivalent(c, d, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ce == nil {
		t.Fatal("difference not detected")
	}
	if ce.Output != "y" {
		t.Fatalf("counterexample names output %q", ce.Output)
	}
	if !strings.Contains(ce.String(), "y") {
		t.Fatal("counterexample string uninformative")
	}
}

func TestEquivalentStructuralMismatch(t *testing.T) {
	c := mkXorCircuit(t)
	d := netlist.New("other")
	if _, err := d.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddGate("y", gate.Inv, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddOutput("y", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := Equivalent(c, d, 0, 1); err == nil {
		t.Fatal("input-count mismatch accepted")
	}
}

// wideCircuit builds an n-input AND tree (n > ExhaustiveLimit exercises
// the randomized path).
func wideCircuit(t *testing.T, n int, breakIt bool) *netlist.Circuit {
	t.Helper()
	c := netlist.New("wide")
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("i%d", i)
		if _, err := c.AddInput(names[i]); err != nil {
			t.Fatal(err)
		}
	}
	level := 0
	for len(names) > 1 {
		var next []string
		for i := 0; i < len(names); i += 2 {
			if i+1 == len(names) {
				next = append(next, names[i])
				continue
			}
			name := fmt.Sprintf("l%d_%d", level, i/2)
			ty := gate.And2
			if breakIt && level == 0 && i == 0 {
				ty = gate.Or2
			}
			if _, err := c.AddGate(name, ty, names[i], names[i+1]); err != nil {
				t.Fatal(err)
			}
			next = append(next, name)
		}
		names = next
		level++
	}
	if _, err := c.AddOutput(names[0], 8); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEquivalentRandomizedPath(t *testing.T) {
	a := wideCircuit(t, 20, false)
	b := wideCircuit(t, 20, false)
	ce, err := Equivalent(a, b, 50, 3)
	if err != nil || ce != nil {
		t.Fatalf("identical wide circuits flagged: %v %v", ce, err)
	}
	// A single AND→OR swap is found by the walking-one corners even
	// when random vectors miss it.
	bad := wideCircuit(t, 20, true)
	ce, err = Equivalent(a, bad, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ce == nil {
		t.Fatal("broken wide circuit not detected")
	}
}

func TestEquivalentOutputNameMismatch(t *testing.T) {
	a := mkXorCircuit(t)
	b := netlist.New("xor")
	for _, in := range []string{"a", "b"} {
		if _, err := b.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.AddGate("z", gate.Nand2, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddOutput("z", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := Equivalent(a, b, 0, 1); err == nil {
		t.Fatal("output-name mismatch accepted")
	}
}
