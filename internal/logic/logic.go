// Package logic evaluates the boolean function of a netlist and checks
// functional equivalence between circuits. The restructuring step of
// the protocol (§4.2, De Morgan rewrites) must preserve logic; this
// package provides the proof obligation: exhaustive equivalence for
// small input counts and randomized equivalence for large ones.
package logic

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/gate"
	"repro/internal/netlist"
)

// Eval computes the primary-output values of circuit c under the given
// primary-input assignment. The returned map is keyed by output net
// name (without the "$po" suffix of the observation pseudo-node).
func Eval(c *netlist.Circuit, in map[string]bool) (map[string]bool, error) {
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	val := make(map[*netlist.Node]bool, len(order))
	for _, n := range order {
		switch {
		case n.Type == gate.Input:
			v, ok := in[n.Name]
			if !ok {
				return nil, fmt.Errorf("logic: no value for input %q", n.Name)
			}
			val[n] = v
		case n.Type == gate.Output:
			val[n] = val[n.Fanin[0]]
		default:
			args := make([]bool, len(n.Fanin))
			for i, f := range n.Fanin {
				args[i] = val[f]
			}
			val[n] = gate.Eval(n.Type, args)
		}
	}
	out := make(map[string]bool, len(c.Outputs))
	for _, o := range c.Outputs {
		out[strings.TrimSuffix(o.Name, "$po")] = val[o]
	}
	return out, nil
}

// Counterexample records an input assignment on which two circuits
// disagree, for diagnostics.
type Counterexample struct {
	Inputs map[string]bool
	Output string // name of a disagreeing output
	A, B   bool
}

func (ce *Counterexample) String() string {
	if ce == nil {
		return "<equivalent>"
	}
	names := make([]string, 0, len(ce.Inputs))
	for k := range ce.Inputs {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, k := range names {
		fmt.Fprintf(&sb, "%s=%v ", k, ce.Inputs[k])
	}
	return fmt.Sprintf("output %s: %v vs %v under %s", ce.Output, ce.A, ce.B, strings.TrimSpace(sb.String()))
}

// ExhaustiveLimit is the input count up to which Equivalent checks all
// 2^n assignments.
const ExhaustiveLimit = 16

// Equivalent checks that circuits a and b compute the same function:
// identical input name sets, identical output name sets, and equal
// outputs on every tested assignment. Up to ExhaustiveLimit inputs the
// check is exhaustive; beyond that, trials random assignments drawn
// from the seeded generator are used. It returns a counterexample on
// failure and an error on structural mismatch.
func Equivalent(a, b *netlist.Circuit, trials int, seed int64) (*Counterexample, error) {
	ins, err := matchNames(inputNames(a), inputNames(b), "input")
	if err != nil {
		return nil, err
	}
	if _, err := matchNames(outputNames(a), outputNames(b), "output"); err != nil {
		return nil, err
	}
	n := len(ins)
	check := func(assign map[string]bool) (*Counterexample, error) {
		oa, err := Eval(a, assign)
		if err != nil {
			return nil, err
		}
		ob, err := Eval(b, assign)
		if err != nil {
			return nil, err
		}
		// Report the first disagreeing output in name order, not map
		// order: which output a counterexample names must not depend on
		// the runtime's iteration shuffle.
		names := make([]string, 0, len(oa))
		for name := range oa {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if va, vb := oa[name], ob[name]; va != vb {
				in := make(map[string]bool, len(assign))
				for k, v := range assign {
					in[k] = v
				}
				return &Counterexample{Inputs: in, Output: name, A: va, B: vb}, nil
			}
		}
		return nil, nil
	}

	if n <= ExhaustiveLimit {
		assign := make(map[string]bool, n)
		for mask := 0; mask < 1<<uint(n); mask++ {
			for i, name := range ins {
				assign[name] = mask&(1<<uint(i)) != 0
			}
			if ce, err := check(assign); ce != nil || err != nil {
				return ce, err
			}
		}
		return nil, nil
	}

	rng := rand.New(rand.NewSource(seed))
	assign := make(map[string]bool, n)
	for t := 0; t < trials; t++ {
		for _, name := range ins {
			assign[name] = rng.Intn(2) == 1
		}
		if ce, err := check(assign); ce != nil || err != nil {
			return ce, err
		}
	}
	// Also probe the all-zero, all-one, walking-one and walking-zero
	// corners, which random sampling misses with high probability and
	// which exercise wide AND/OR reductions (a single gate swapped
	// deep inside an AND tree only shows under almost-all-ones
	// vectors).
	corners := make([]map[string]bool, 0, 2*n+2)
	zero := make(map[string]bool, n)
	one := make(map[string]bool, n)
	for _, name := range ins {
		zero[name] = false
		one[name] = true
	}
	corners = append(corners, zero, one)
	for i := range ins {
		walkOne := make(map[string]bool, n)
		walkZero := make(map[string]bool, n)
		for j, name := range ins {
			walkOne[name] = i == j
			walkZero[name] = i != j
		}
		corners = append(corners, walkOne, walkZero)
	}
	for _, assign := range corners {
		if ce, err := check(assign); ce != nil || err != nil {
			return ce, err
		}
	}
	return nil, nil
}

func inputNames(c *netlist.Circuit) []string {
	names := make([]string, len(c.Inputs))
	for i, n := range c.Inputs {
		names[i] = n.Name
	}
	sort.Strings(names)
	return names
}

func outputNames(c *netlist.Circuit) []string {
	names := make([]string, len(c.Outputs))
	for i, n := range c.Outputs {
		names[i] = strings.TrimSuffix(n.Name, "$po")
	}
	sort.Strings(names)
	return names
}

func matchNames(a, b []string, kind string) ([]string, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("logic: %s count mismatch: %d vs %d", kind, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return nil, fmt.Errorf("logic: %s name mismatch: %q vs %q", kind, a[i], b[i])
		}
	}
	return a, nil
}
