// The in-memory backend: current engine behavior (results live and die
// with the process), used directly by tests and as the default when no
// data directory is configured.

package store

import (
	"sort"
	"sync"
)

// Memory is a map-backed Store. The zero value is not usable; call
// NewMemory.
type Memory struct {
	mu     sync.RWMutex
	m      map[string][]byte
	closed bool
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{m: make(map[string][]byte)}
}

// Get implements Store.
func (s *Memory) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	v, ok := s.m[key]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// Put implements Store.
func (s *Memory) Put(key string, value []byte) error {
	if !ValidKey(key) {
		return &BadKeyError{Key: key}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.m[key] = append([]byte(nil), value...)
	return nil
}

// Delete implements Store.
func (s *Memory) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	delete(s.m, key)
	return nil
}

// Scan implements Store, visiting records in sorted key order.
func (s *Memory) Scan(fn func(key string, value []byte) error) error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	values := make(map[string][]byte, len(keys))
	for _, k := range keys {
		values[k] = append([]byte(nil), s.m[k]...)
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		if err := fn(k, values[k]); err != nil {
			return err
		}
	}
	return nil
}

// Len reports the number of stored records.
func (s *Memory) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Close implements Store.
func (s *Memory) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
