package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestValidKey(t *testing.T) {
	valid := []string{
		"a", "A", "0", "job-000001",
		"deadbeefDEADBEEF0123456789abcdef" + strings.Repeat("0", 32), // 64 hex chars
		"with.dots_and-dashes", strings.Repeat("k", MaxKeyLen),
	}
	for _, k := range valid {
		if !ValidKey(k) {
			t.Errorf("ValidKey(%q) = false, want true", k)
		}
	}
	invalid := []string{
		"", ".hidden", ".tmp-x", "has space", "slash/inside", "back\\slash",
		"nul\x00byte", "Ünïcode", strings.Repeat("k", MaxKeyLen+1),
	}
	for _, k := range invalid {
		if ValidKey(k) {
			t.Errorf("ValidKey(%q) = true, want false", k)
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	cases := []struct {
		key   string
		value []byte
	}{
		{"k", nil},
		{"k", []byte{}},
		{"job-000001", []byte(`{"event":"accepted"}`)},
		{strings.Repeat("f", 64), bytes.Repeat([]byte{0xa5}, 4096)},
		{"binary", []byte{0, 1, 2, 0xff, 0xfe, '\n', 'P', 'S', 'R', '1'}},
	}
	for _, c := range cases {
		rec, err := EncodeRecord(c.key, c.value)
		if err != nil {
			t.Fatalf("EncodeRecord(%q): %v", c.key, err)
		}
		key, value, err := DecodeRecord(rec)
		if err != nil {
			t.Fatalf("DecodeRecord(%q): %v", c.key, err)
		}
		if key != c.key || !bytes.Equal(value, c.value) {
			t.Fatalf("round trip of %q: got (%q, %x), want (%q, %x)", c.key, key, value, c.key, c.value)
		}
		// Canonical: re-encoding the decode must reproduce the bytes.
		again, err := EncodeRecord(key, value)
		if err != nil {
			t.Fatalf("re-encode of %q: %v", c.key, err)
		}
		if !bytes.Equal(again, rec) {
			t.Fatalf("encoding of %q is not canonical", c.key)
		}
	}
}

func TestEncodeRecordRejectsBadInput(t *testing.T) {
	if _, err := EncodeRecord(".bad", nil); err == nil {
		t.Fatal("EncodeRecord accepted an invalid key")
	}
	var bk *BadKeyError
	if _, err := EncodeRecord("", nil); !errors.As(err, &bk) {
		t.Fatalf("EncodeRecord(\"\") error = %v, want *BadKeyError", err)
	}
}

// TestDecodeRecordCorruptionTable drives DecodeRecord through every
// corruption class the disk backend must survive: each mutation of a
// valid record yields a *CorruptError, never a panic, a wrong-value
// success, or an untyped error.
func TestDecodeRecordCorruptionTable(t *testing.T) {
	base, err := EncodeRecord("job-000001", []byte(`{"event":"accepted","kind":"suite"}`))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"zero length", func(b []byte) []byte { return nil }},
		{"one byte", func(b []byte) []byte { return []byte{'P'} }},
		{"truncated header", func(b []byte) []byte { return b[:recordHeaderLen-1] }},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-recordTrailerLen-3] }},
		{"truncated checksum", func(b []byte) []byte { return b[:len(b)-1] }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"bit flip in key", func(b []byte) []byte { b[recordHeaderLen] ^= 0x01; return b }},
		{"bit flip in value", func(b []byte) []byte { b[recordHeaderLen+12] ^= 0x80; return b }},
		{"bit flip in checksum", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xde, 0xad) }},
		{"second record appended", func(b []byte) []byte { return append(b, b...) }},
		{"oversize value length", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], MaxValueLen+1)
			return b
		}},
		{"oversize key length", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], MaxKeyLen+1)
			return b
		}},
		{"all zeros", func(b []byte) []byte { return make([]byte, len(b)) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mutated := c.mutate(append([]byte(nil), base...))
			_, _, err := DecodeRecord(mutated)
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("DecodeRecord(%s) error = %v, want *CorruptError", c.name, err)
			}
		})
	}
}

func TestReadRecordStream(t *testing.T) {
	var buf bytes.Buffer
	want := []struct {
		key   string
		value string
	}{
		{"job-000001", "accepted"},
		{"job-000001", "done"},
		{"job-000002", "accepted"},
	}
	for _, w := range want {
		rec, err := EncodeRecord(w.key, []byte(w.value))
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(rec)
	}
	r := bytes.NewReader(buf.Bytes())
	for i, w := range want {
		key, value, err := ReadRecord(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if key != w.key || string(value) != w.value {
			t.Fatalf("record %d: got (%q, %q), want (%q, %q)", i, key, value, w.key, w.value)
		}
	}
	if _, _, err := ReadRecord(r); err != io.EOF {
		t.Fatalf("end of stream error = %v, want io.EOF", err)
	}

	// A partial final record is a *CorruptError, not EOF: the journal
	// truncates there.
	trunc := buf.Bytes()[:buf.Len()-5]
	r = bytes.NewReader(trunc)
	for i := 0; i < 2; i++ {
		if _, _, err := ReadRecord(r); err != nil {
			t.Fatalf("good record %d: %v", i, err)
		}
	}
	_, _, err := ReadRecord(r)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("partial tail error = %v, want *CorruptError", err)
	}
}

// TestBadKeyError pins the typed rejection's message: it must name the
// offending key so a log line identifies the caller's mistake.
func TestBadKeyError(t *testing.T) {
	err := &BadKeyError{Key: "no|pipes"}
	if !strings.Contains(err.Error(), `"no|pipes"`) {
		t.Errorf("BadKeyError message %q does not name the key", err.Error())
	}
}
