// The append-only job journal: a single file of consecutive records
// (the same checksummed codec as the disk backend), one per job event.
// popsd appends an "accepted" record before a job starts and a
// terminal record when it finishes; on restart it replays the stream,
// folds the events per job ID, and re-submits jobs that never reached
// a terminal record. A corrupt tail — the half-written record of a
// crash mid-append — is truncated at the last good record with a
// logged warning, so the journal heals itself instead of blocking
// startup.

package store

import (
	"bytes"
	"errors"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
)

// JournalEntry is one replayed journal record: the job ID it was
// appended under and its payload bytes (popsd stores a small JSON
// event there).
type JournalEntry struct {
	ID      string
	Payload []byte
}

// Journal is an append-only record log backed by one file. Appends are
// serialized and synced, so an acknowledged append survives SIGKILL.
type Journal struct {
	path string
	log  *slog.Logger

	mu     sync.Mutex
	f      *os.File
	closed bool
}

// OpenJournal opens (creating if needed) the journal at path and
// replays its existing records in append order. A corrupt tail is
// truncated at the last good record with a logged warning — the only
// record a crash can mangle is the final, partially written one, and
// its job never got an acknowledgement. log may be nil (discard).
func OpenJournal(path string, log *slog.Logger) (*Journal, []JournalEntry, error) {
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	entries, good, rerr := replay(f)
	if rerr != nil {
		var ce *CorruptError
		if !errors.As(rerr, &ce) {
			f.Close()
			return nil, nil, rerr
		}
		log.Warn("store: truncating corrupt journal tail",
			"path", path, "good_bytes", good, "error", rerr.Error())
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Journal{path: path, log: log, f: f}, entries, nil
}

// replay reads records from the head of f, returning the entries read,
// the byte offset after the last good record, and the *CorruptError
// that stopped the scan (nil on a clean end of file).
func replay(f *os.File) (entries []JournalEntry, good int64, err error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, err
	}
	r := bytes.NewReader(data)
	for {
		before := int64(len(data)) - int64(r.Len())
		key, value, err := ReadRecord(r)
		if err == io.EOF {
			return entries, before, nil
		}
		if err != nil {
			return entries, before, err
		}
		entries = append(entries, JournalEntry{ID: key, Payload: value})
	}
}

// Path reports the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append writes one record and syncs it to stable storage before
// returning; an append that returned nil survives SIGKILL.
func (j *Journal) Append(id string, payload []byte) error {
	rec, err := EncodeRecord(id, payload)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if _, err := j.f.Write(rec); err != nil {
		return err
	}
	return j.f.Sync()
}

// Rewrite atomically replaces the journal's contents with entries
// (compaction after replay: terminal records of long-dead jobs need
// not be re-parsed at every boot). The replacement lands by rename,
// so a crash mid-rewrite leaves the previous journal intact.
func (j *Journal) Rewrite(entries []JournalEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	tmp, err := os.CreateTemp(filepath.Dir(j.path), ".tmp-journal-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	for _, e := range entries {
		rec, err := EncodeRecord(e.ID, e.Payload)
		if err != nil {
			return fail(err)
		}
		if _, err := tmp.Write(rec); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, j.path); err != nil {
		os.Remove(tmpName)
		return err
	}
	old := j.f
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f = f
	old.Close()
	return nil
}

// Close syncs and closes the journal file. Appends after Close return
// ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
