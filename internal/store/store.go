// Package store is the durable content-addressed result tier of the
// service: a small key/value contract (Get/Put/Delete/Scan) over
// fingerprint-derived keys, with two backends — an in-memory map (the
// default, used by tests and stores nothing across restarts) and an
// append-friendly on-disk store (one checksummed record file per key,
// written via atomic rename, corrupt records skipped with a logged
// error on open). A write-behind Batcher coalesces Puts and flushes
// them on size, interval and Close, so the engine's hot path never
// waits on the filesystem; a Journal provides the append-only job log
// popsd replays on restart.
//
// Keys are content addresses: the engine derives them by hashing its
// (process, circuit fingerprint, constraint, policy) memo key, so a
// persisted record is a reproducible artifact of the optimization
// protocol — two daemons given the same netlist and constraint write
// the same record under the same key, which is what later makes
// replicas shardable by fingerprint with no coordination.
package store

import (
	"errors"
	"fmt"
)

// Typed error values of the store contract.
var (
	// ErrNotFound reports a Get/Scan miss: no record under the key.
	ErrNotFound = errors.New("store: key not found")
	// ErrClosed reports an operation against a closed store or batcher
	// (mirroring the engine job store's post-Close Submit contract).
	ErrClosed = errors.New("store: closed")
)

// BadKeyError reports a key outside the store's key grammar.
type BadKeyError struct {
	Key string
}

func (e *BadKeyError) Error() string {
	return fmt.Sprintf("store: invalid key %q", e.Key)
}

// MaxKeyLen bounds key length. Keys are fingerprint-derived (64 hex
// characters in practice); the bound keeps records and filenames sane.
const MaxKeyLen = 128

// ValidKey reports whether key fits the store grammar: 1..MaxKeyLen
// characters of [A-Za-z0-9._-], not starting with a dot (keys double
// as filenames of the disk backend; a leading dot would collide with
// its temp-file namespace and hidden files).
func ValidKey(key string) bool {
	if len(key) == 0 || len(key) > MaxKeyLen || key[0] == '.' {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Store is the durable result tier contract. Implementations are safe
// for concurrent use. Values passed to Put and returned by Get are
// caller-owned copies — mutating them never corrupts the store.
type Store interface {
	// Get returns the value under key, ErrNotFound when absent, or a
	// *CorruptError when the stored record fails verification.
	Get(key string) ([]byte, error)
	// Put stores value under key, replacing any previous value.
	Put(key string, value []byte) error
	// Delete removes key; deleting an absent key is a no-op.
	Delete(key string) error
	// Scan visits every stored record in unspecified but deterministic
	// (sorted-key) order; a non-nil return from fn stops the scan and
	// is returned.
	Scan(fn func(key string, value []byte) error) error
	// Close releases the store. Operations after Close return ErrClosed.
	Close() error
}
