package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBatcherCoalescesAndFlushes(t *testing.T) {
	mem := NewMemory()
	b := NewBatcher(mem, BatcherOptions{MaxPending: 1000, FlushInterval: time.Hour})
	for i := 0; i < 10; i++ {
		if err := b.Put("hot", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Unflushed: the pending value is served, the backend has nothing.
	got, err := b.Get("hot")
	if err != nil || string(got) != "v9" {
		t.Fatalf("Get before flush = (%q, %v), want v9", got, err)
	}
	if mem.Len() != 0 {
		t.Fatalf("backend has %d records before flush, want 0", mem.Len())
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if mem.Len() != 1 {
		t.Fatalf("backend has %d records after flush, want 1 (coalesced)", mem.Len())
	}
	if v, err := mem.Get("hot"); err != nil || string(v) != "v9" {
		t.Fatalf("backend value = (%q, %v), want v9", v, err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Close does not close the underlying store.
	if _, err := mem.Get("hot"); err != nil {
		t.Fatalf("underlying store closed by Batcher.Close: %v", err)
	}
}

func TestBatcherSizeTriggeredFlush(t *testing.T) {
	mem := NewMemory()
	b := NewBatcher(mem, BatcherOptions{MaxPending: 4, FlushInterval: time.Hour})
	defer b.Close()
	for i := 0; i < 4; i++ {
		if err := b.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for mem.Len() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("size-triggered flush never ran: backend has %d records", mem.Len())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBatcherIntervalFlush(t *testing.T) {
	mem := NewMemory()
	b := NewBatcher(mem, BatcherOptions{MaxPending: 1000, FlushInterval: 10 * time.Millisecond})
	defer b.Close()
	if err := b.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for mem.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval flush never ran")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBatcherDeleteRemovesPending(t *testing.T) {
	mem := NewMemory()
	b := NewBatcher(mem, BatcherOptions{MaxPending: 1000, FlushInterval: time.Hour})
	defer b.Close()
	if err := mem.Put("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted pending value resurrected by flush: %v", err)
	}
}

func TestBatcherScanSeesPendingWrites(t *testing.T) {
	mem := NewMemory()
	b := NewBatcher(mem, BatcherOptions{MaxPending: 1000, FlushInterval: time.Hour})
	defer b.Close()
	if err := b.Put("pending", []byte("p")); err != nil {
		t.Fatal(err)
	}
	var keys []string
	if err := b.Scan(func(key string, value []byte) error {
		keys = append(keys, key)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "pending" {
		t.Fatalf("Scan keys = %v, want [pending]", keys)
	}
}

// TestBatcherConcurrency is the -race hammer of the satellite: many
// goroutines Put/Get/Flush concurrently while Close races them. Every
// Put that returned nil must be durable in the underlying store after
// Close; every Put after Close must return ErrClosed; and nothing may
// trip the race detector.
func TestBatcherConcurrency(t *testing.T) {
	mem := NewMemory()
	b := NewBatcher(mem, BatcherOptions{MaxPending: 8, FlushInterval: time.Millisecond})

	const writers = 8
	const perWriter = 200
	var mu sync.Mutex
	accepted := make(map[string][]byte) // last value of each nil-returning Put
	rejected := 0

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%17) // repeated keys: coalescing under contention
				value := []byte(fmt.Sprintf("w%d-i%d", w, i))
				err := b.Put(key, value)
				mu.Lock()
				if err == nil {
					accepted[key] = value
				} else if errors.Is(err, ErrClosed) {
					rejected++
				} else {
					mu.Unlock()
					t.Errorf("Put error = %v, want nil or ErrClosed", err)
					return
				}
				mu.Unlock()
				if i%13 == 0 {
					b.Get(key)
				}
				if i%31 == 0 {
					b.Flush()
				}
			}
		}(w)
	}
	// Close races the writers mid-stream.
	closeErr := make(chan error, 1)
	go func() {
		time.Sleep(2 * time.Millisecond)
		closeErr <- b.Close()
	}()
	wg.Wait()
	if err := <-closeErr; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := b.Put("late", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if _, err := b.Get("late"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}

	// No accepted write lost: each key's final accepted value is in the
	// underlying store. (A writer's last accepted Put for a key is the
	// last Put anyone made to it — keys are per-writer.)
	mu.Lock()
	defer mu.Unlock()
	if len(accepted) == 0 {
		t.Fatal("no Put was accepted before Close; hammer did not exercise the batcher")
	}
	for key, want := range accepted {
		got, err := mem.Get(key)
		if err != nil {
			t.Fatalf("accepted write %q lost across Close: %v", key, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("key %q = %q, want final accepted value %q", key, got, want)
		}
	}
	t.Logf("accepted %d keys, rejected %d post-close Puts", len(accepted), rejected)
}

// failingStore rejects every Put, for error-path coverage.
type failingStore struct{ *Memory }

func (f *failingStore) Put(key string, value []byte) error {
	return errors.New("disk on fire")
}

func TestBatcherFlushErrorsAreReported(t *testing.T) {
	var reported []string
	b := NewBatcher(&failingStore{NewMemory()}, BatcherOptions{
		MaxPending:    1000,
		FlushInterval: time.Hour,
		OnError:       func(key string, err error) { reported = append(reported, key) },
	})
	if err := b.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err == nil {
		t.Fatal("Flush over a failing store returned nil")
	}
	if b.Errors() != 1 {
		t.Fatalf("Errors() = %d, want 1", b.Errors())
	}
	if len(reported) != 1 || reported[0] != "k" {
		t.Fatalf("OnError saw %v, want [k]", reported)
	}
	// Failed writes are dropped, not retried.
	if err := b.Flush(); err != nil {
		t.Fatalf("second Flush = %v, want nil (batch dropped)", err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}
