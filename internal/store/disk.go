// The on-disk backend: one checksummed record file per key under a
// data directory. Writes go to a temp file in the same directory and
// land by atomic rename, so a crash (even SIGKILL mid-write) leaves
// either the old record or the new one, never a torn file; the temp
// leftovers of interrupted writes are swept on open. Records that fail
// verification on open or read are skipped with a logged error — a
// corrupt artifact costs one recomputation, never a failed startup.

package store

import (
	"errors"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// recordExt is the filename suffix of one record file.
const recordExt = ".psr"

// Disk is a directory-backed Store. The zero value is not usable;
// call OpenDisk.
type Disk struct {
	dir string
	log *slog.Logger

	mu     sync.RWMutex
	keys   map[string]struct{}
	closed bool
}

// OpenDisk opens (creating if needed) a disk store rooted at dir. It
// verifies every record file on open: files that fail to decode — a
// truncated write from a dirty shutdown, a flipped bit, an empty file —
// are skipped with one logged warning each and excluded from the
// index; a later Put to the same key overwrites them. Leftover temp
// files from interrupted writes are removed. log may be nil (discard).
func OpenDisk(dir string, log *slog.Logger) (*Disk, error) {
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	d := &Disk{dir: dir, log: log, keys: make(map[string]struct{}, len(entries))}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, ".tmp-") {
			// An interrupted write; the rename never happened, so the
			// record it replaced (if any) is still intact.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, recordExt) {
			continue
		}
		key := strings.TrimSuffix(name, recordExt)
		if err := d.verify(key); err != nil {
			log.Warn("store: skipping corrupt record",
				"file", filepath.Join(dir, name), "error", err.Error())
			continue
		}
		d.keys[key] = struct{}{}
	}
	return d, nil
}

// Dir reports the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// path returns the record file of key.
func (d *Disk) path(key string) string {
	return filepath.Join(d.dir, key+recordExt)
}

// verify reads and decodes one record file, checking that the embedded
// key matches the filename (a record renamed onto another key's file
// must not alias it).
func (d *Disk) verify(key string) error {
	_, err := d.read(key)
	return err
}

// read loads and verifies the record of key.
func (d *Disk) read(key string) ([]byte, error) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	gotKey, value, err := DecodeRecord(data)
	if err != nil {
		return nil, err
	}
	if gotKey != key {
		return nil, corruptf("record key %q does not match filename key %q", gotKey, key)
	}
	return value, nil
}

// Get implements Store. A record that fails verification is reported
// as a *CorruptError (and logged); the caller treats it as a miss and
// a later Put repairs the file.
func (d *Disk) Get(key string) ([]byte, error) {
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return nil, ErrClosed
	}
	_, ok := d.keys[key]
	d.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	value, err := d.read(key)
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			d.log.Warn("store: corrupt record on read",
				"file", d.path(key), "error", err.Error())
		}
		return nil, err
	}
	return value, nil
}

// Put implements Store: encode, write to a same-directory temp file,
// fsync, and atomically rename over the final name.
func (d *Disk) Put(key string, value []byte) error {
	rec, err := EncodeRecord(key, value)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	f, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(rec); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, d.path(key)); err != nil {
		os.Remove(tmp)
		return err
	}
	d.keys[key] = struct{}{}
	return nil
}

// Delete implements Store; deleting an absent key is a no-op.
func (d *Disk) Delete(key string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := os.Remove(d.path(key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	delete(d.keys, key)
	return nil
}

// Scan implements Store, visiting records in sorted key order. Records
// that became unreadable or corrupt since open are skipped with a log
// line, matching the open-time contract.
func (d *Disk) Scan(fn func(key string, value []byte) error) error {
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return ErrClosed
	}
	keys := make([]string, 0, len(d.keys))
	for k := range d.keys {
		keys = append(keys, k)
	}
	d.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		value, err := d.read(k)
		if err != nil {
			var ce *CorruptError
			if errors.Is(err, ErrNotFound) || errors.As(err, &ce) {
				d.log.Warn("store: skipping record during scan", "key", k, "error", err.Error())
				continue
			}
			return err
		}
		if err := fn(k, value); err != nil {
			return err
		}
	}
	return nil
}

// Len reports the number of indexed records.
func (d *Disk) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.keys)
}

// Close implements Store.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}
