package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func entryStrings(entries []JournalEntry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.ID + "=" + string(e.Payload)
	}
	return out
}

func TestJournalAppendAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, entries, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh journal replayed %d entries", len(entries))
	}
	want := []struct{ id, payload string }{
		{"job-000001", `{"event":"accepted"}`},
		{"job-000002", `{"event":"accepted"}`},
		{"job-000001", `{"event":"done"}`},
	}
	for _, w := range want {
		if err := j.Append(w.id, []byte(w.payload)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("job-000003", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}

	re, entries, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if len(entries) != len(want) {
		t.Fatalf("replayed %d entries, want %d", len(entries), len(want))
	}
	for i, w := range want {
		if entries[i].ID != w.id || string(entries[i].Payload) != w.payload {
			t.Fatalf("entry %d = (%q, %q), want (%q, %q)",
				i, entries[i].ID, entries[i].Payload, w.id, w.payload)
		}
	}
	// Appends after a replayed open extend the log, not overwrite it.
	if err := re.Append("job-000003", []byte("x")); err != nil {
		t.Fatal(err)
	}
	re.Close()
	_, entries, err = OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(want)+1 {
		t.Fatalf("after append+reopen replayed %d entries, want %d", len(entries), len(want)+1)
	}
}

func TestJournalTruncatesCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := j.Append(fmt.Sprintf("job-%06d", i), []byte("accepted")); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop bytes off the final record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	warns := 0
	re, entries, err := OpenJournal(path, newWarnCounter(&warns))
	if err != nil {
		t.Fatalf("open over corrupt tail: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("replayed %v, want the 2 intact records", entryStrings(entries))
	}
	if warns != 1 {
		t.Fatalf("logged %d warnings, want 1", warns)
	}
	// The file healed: a fresh append then a reopen sees 3 clean records.
	if err := re.Append("job-000004", []byte("accepted")); err != nil {
		t.Fatal(err)
	}
	re.Close()
	_, entries, err = OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("after heal+append replayed %v, want 3 records", entryStrings(entries))
	}
	if entries[2].ID != "job-000004" {
		t.Fatalf("healed tail record = %q, want job-000004", entries[2].ID)
	}
}

func TestJournalRewriteCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := j.Append(fmt.Sprintf("job-%06d", i), []byte("accepted")); err != nil {
			t.Fatal(err)
		}
	}
	keep := []JournalEntry{
		{ID: "job-000002", Payload: []byte("accepted")},
		{ID: "job-000005", Payload: []byte("accepted")},
	}
	if err := j.Rewrite(keep); err != nil {
		t.Fatal(err)
	}
	// The rewritten journal accepts further appends.
	if err := j.Append("job-000006", []byte("accepted")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, entries, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := entryStrings(entries)
	want := []string{"job-000002=accepted", "job-000005=accepted", "job-000006=accepted"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("compacted journal = %v, want %v", got, want)
	}
}

func TestJournalRejectsBadID(t *testing.T) {
	j, _, err := OpenJournal(filepath.Join(t.TempDir(), "j"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var bk *BadKeyError
	if err := j.Append(".bad id", nil); !errors.As(err, &bk) {
		t.Fatalf("Append with bad ID = %v, want *BadKeyError", err)
	}
}

// TestJournalPathAndDiskDir: the accessors report the locations the
// constructors were given — what popsd logs at boot.
func TestJournalPathAndDiskDir(t *testing.T) {
	dir := t.TempDir()
	jp := filepath.Join(dir, "j.journal")
	j, _, err := OpenJournal(jp, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Path() != jp {
		t.Errorf("Path() = %q, want %q", j.Path(), jp)
	}
	sd := filepath.Join(dir, "results")
	d, err := OpenDisk(sd, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Dir() != sd {
		t.Errorf("Dir() = %q, want %q", d.Dir(), sd)
	}
}
