package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// backends drives the shared contract tests over both implementations.
func backends(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := OpenDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"memory": NewMemory(), "disk": disk}
}

func TestStoreContract(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			if _, err := s.Get("absent"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get(absent) error = %v, want ErrNotFound", err)
			}
			if err := s.Put("k1", []byte("v1")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("k1", []byte("v1-replaced")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("k0", []byte("v0")); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get("k1")
			if err != nil || string(got) != "v1-replaced" {
				t.Fatalf("Get(k1) = (%q, %v), want v1-replaced", got, err)
			}
			// Mutating the returned slice must not corrupt the store.
			got[0] = 'X'
			if again, _ := s.Get("k1"); string(again) != "v1-replaced" {
				t.Fatalf("store value mutated through Get result: %q", again)
			}
			var seen []string
			err = s.Scan(func(key string, value []byte) error {
				seen = append(seen, key+"="+string(value))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"k0=v0", "k1=v1-replaced"}
			if fmt.Sprint(seen) != fmt.Sprint(want) {
				t.Fatalf("Scan order = %v, want %v", seen, want)
			}
			stop := errors.New("stop")
			if err := s.Scan(func(string, []byte) error { return stop }); !errors.Is(err, stop) {
				t.Fatalf("Scan stop error = %v, want %v", err, stop)
			}
			if err := s.Delete("k0"); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete("k0"); err != nil {
				t.Fatalf("Delete of absent key: %v, want nil", err)
			}
			if _, err := s.Get("k0"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after Delete error = %v, want ErrNotFound", err)
			}
			var bk *BadKeyError
			if err := s.Put(".bad", nil); !errors.As(err, &bk) {
				t.Fatalf("Put(.bad) error = %v, want *BadKeyError", err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get("k1"); !errors.Is(err, ErrClosed) {
				t.Fatalf("Get after Close error = %v, want ErrClosed", err)
			}
			if err := s.Put("k2", nil); !errors.Is(err, ErrClosed) {
				t.Fatalf("Put after Close error = %v, want ErrClosed", err)
			}
		})
	}
}

func TestDiskPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	values := map[string][]byte{
		"alpha": []byte("one"),
		"beta":  bytes.Repeat([]byte{0x42}, 2048),
		"gamma": nil,
	}
	for k, v := range values {
		if err := d.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(values) {
		t.Fatalf("reopened store has %d records, want %d", re.Len(), len(values))
	}
	for k, v := range values {
		got, err := re.Get(k)
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("Get(%q) after reopen = (%x, %v), want %x", k, got, err, v)
		}
	}
}

// countWarns is a slog.Handler that counts WARN-and-above records so
// tests can assert "skipped with a logged error" without parsing text.
type countWarns struct {
	slog.Handler
	warns *int
}

func newWarnCounter(warns *int) *slog.Logger {
	return slog.New(&countWarns{Handler: slog.DiscardHandler, warns: warns})
}

func (h *countWarns) Handle(ctx context.Context, r slog.Record) error {
	if r.Level >= slog.LevelWarn {
		*h.warns++
	}
	return nil
}

func (h *countWarns) Enabled(ctx context.Context, level slog.Level) bool {
	return true
}

func TestDiskOpenSkipsCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	good := map[string][]byte{"good1": []byte("a"), "good2": []byte("bb")}
	for k, v := range good {
		if err := d.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Put("doomed1", []byte("will truncate")); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("doomed2", []byte("will bit-flip")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Inject the corruption classes of the acceptance criteria:
	// truncation, a flipped bit, an empty file, a renamed (key-aliased)
	// record, and an interrupted temp write.
	corrupt := func(name string, f func(path string)) {
		t.Helper()
		f(filepath.Join(dir, name))
	}
	corrupt("doomed1"+recordExt, func(p string) {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, data[:len(data)-6], 0o644); err != nil {
			t.Fatal(err)
		}
	})
	corrupt("doomed2"+recordExt, func(p string) {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[recordHeaderLen+2] ^= 0x10
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	corrupt("empty"+recordExt, func(p string) {
		if err := os.WriteFile(p, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	corrupt("aliased"+recordExt, func(p string) {
		rec, err := EncodeRecord("othername", []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, rec, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	corrupt(".tmp-leftover", func(p string) {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	})

	warns := 0
	re, err := OpenDisk(dir, newWarnCounter(&warns))
	if err != nil {
		t.Fatalf("open over corruption failed: %v", err)
	}
	defer re.Close()
	if re.Len() != len(good) {
		t.Fatalf("index has %d records, want %d (corrupt ones skipped)", re.Len(), len(good))
	}
	if warns != 4 {
		t.Fatalf("logged %d warnings, want 4 (one per corrupt record)", warns)
	}
	for k, v := range good {
		got, err := re.Get(k)
		if err != nil || !bytes.Equal(got, v) {
			t.Fatalf("good record %q lost: (%x, %v)", k, got, err)
		}
	}
	for _, k := range []string{"doomed1", "doomed2", "empty", "aliased"} {
		if _, err := re.Get(k); !errors.Is(err, ErrNotFound) {
			t.Fatalf("corrupt record %q still served: %v", k, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-leftover")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp leftover not swept: %v", err)
	}
	// A later Put repairs a corrupt key.
	if err := re.Put("doomed1", []byte("healed")); err != nil {
		t.Fatal(err)
	}
	if got, err := re.Get("doomed1"); err != nil || string(got) != "healed" {
		t.Fatalf("repair Put: (%q, %v)", got, err)
	}
}

func TestDiskGetReportsCorruptionAfterOpen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Put("victim", []byte("value")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "victim"+recordExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, gerr := d.Get("victim")
	var ce *CorruptError
	if !errors.As(gerr, &ce) {
		t.Fatalf("Get of corrupted record = %v, want *CorruptError", gerr)
	}
}

func TestDiskRejectsLongKeyAsFilename(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var bk *BadKeyError
	if err := d.Put(strings.Repeat("k", MaxKeyLen+1), nil); !errors.As(err, &bk) {
		t.Fatalf("oversize key error = %v, want *BadKeyError", err)
	}
}
