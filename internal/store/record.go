// The on-disk record codec shared by the disk backend (one record per
// file) and the job journal (a stream of records): a fixed magic,
// little-endian length prefixes for key and value, the payload bytes,
// and a trailing CRC-32 over everything before it. The encoding is
// canonical — DecodeRecord succeeds only on byte sequences that
// EncodeRecord would itself produce — so the fuzz contract is
// round-trip-or-typed-error with no third possibility.

package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Record layout constants.
const (
	// recordMagic starts every record; a file without it was never a
	// record (or lost its head to truncation).
	recordMagic = "PSR1"
	// recordHeaderLen is magic + keyLen + valueLen.
	recordHeaderLen = 4 + 4 + 4
	// recordTrailerLen is the CRC-32 checksum.
	recordTrailerLen = 4
	// MaxValueLen bounds a record's value (64 MiB — far above any
	// optimization result, and a hard stop against a corrupt length
	// prefix demanding gigabytes).
	MaxValueLen = 64 << 20
)

// CorruptError reports a byte sequence that is not a valid record:
// truncated, bit-flipped, mis-sized or trailing-garbage data. The
// disk backend and the journal skip such records with a logged error
// instead of failing startup.
type CorruptError struct {
	Reason string
}

func (e *CorruptError) Error() string {
	return "store: corrupt record: " + e.Reason
}

func corruptf(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// recordLen returns the full encoded size of a (key, value) record.
func recordLen(keyLen, valueLen int) int {
	return recordHeaderLen + keyLen + valueLen + recordTrailerLen
}

// EncodeRecord renders one record in the canonical encoding. It
// rejects keys outside the store grammar and oversized values — the
// only inputs that could produce a record DecodeRecord would refuse.
func EncodeRecord(key string, value []byte) ([]byte, error) {
	if !ValidKey(key) {
		return nil, &BadKeyError{Key: key}
	}
	if len(value) > MaxValueLen {
		return nil, fmt.Errorf("store: value of %d bytes exceeds the %d-byte record limit", len(value), MaxValueLen)
	}
	buf := make([]byte, 0, recordLen(len(key), len(value)))
	buf = append(buf, recordMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(value)))
	buf = append(buf, key...)
	buf = append(buf, value...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// DecodeRecord parses exactly one record occupying the whole buffer.
// Trailing bytes after the record are corruption, like every other
// deviation from the canonical encoding: the error is always a
// *CorruptError, so callers distinguish "bad record" from I/O errors
// by type.
func DecodeRecord(data []byte) (key string, value []byte, err error) {
	if len(data) < recordHeaderLen+recordTrailerLen {
		return "", nil, corruptf("%d bytes is shorter than an empty record", len(data))
	}
	key, value, n, err := decodeOne(data)
	if err != nil {
		return "", nil, err
	}
	if n != len(data) {
		return "", nil, corruptf("%d trailing bytes after the record", len(data)-n)
	}
	return key, value, nil
}

// decodeOne parses one record at the head of data, returning its
// consumed length. All failures are *CorruptError.
func decodeOne(data []byte) (key string, value []byte, n int, err error) {
	if len(data) < recordHeaderLen {
		return "", nil, 0, corruptf("truncated header (%d bytes)", len(data))
	}
	if string(data[:4]) != recordMagic {
		return "", nil, 0, corruptf("bad magic %q", data[:4])
	}
	keyLen := int(binary.LittleEndian.Uint32(data[4:8]))
	valueLen := int(binary.LittleEndian.Uint32(data[8:12]))
	if keyLen > MaxKeyLen {
		return "", nil, 0, corruptf("key length %d exceeds %d", keyLen, MaxKeyLen)
	}
	if valueLen > MaxValueLen {
		return "", nil, 0, corruptf("value length %d exceeds %d", valueLen, MaxValueLen)
	}
	n = recordLen(keyLen, valueLen)
	if len(data) < n {
		return "", nil, 0, corruptf("truncated record (%d of %d bytes)", len(data), n)
	}
	body := data[:n-recordTrailerLen]
	want := binary.LittleEndian.Uint32(data[n-recordTrailerLen : n])
	if got := crc32.ChecksumIEEE(body); got != want {
		return "", nil, 0, corruptf("checksum mismatch (got %08x, want %08x)", got, want)
	}
	key = string(data[recordHeaderLen : recordHeaderLen+keyLen])
	if !ValidKey(key) {
		return "", nil, 0, corruptf("invalid key %q", key)
	}
	value = append([]byte(nil), data[recordHeaderLen+keyLen:n-recordTrailerLen]...)
	return key, value, n, nil
}

// ReadRecord parses the next record from a stream. A clean end of
// stream returns io.EOF; a partial or invalid record returns a
// *CorruptError (the journal truncates there and logs the loss).
func ReadRecord(r io.Reader) (key string, value []byte, err error) {
	header := make([]byte, recordHeaderLen)
	if _, err := io.ReadFull(r, header); err != nil {
		if err == io.EOF {
			return "", nil, io.EOF
		}
		return "", nil, corruptf("truncated header: %v", err)
	}
	if string(header[:4]) != recordMagic {
		return "", nil, corruptf("bad magic %q", header[:4])
	}
	keyLen := int(binary.LittleEndian.Uint32(header[4:8]))
	valueLen := int(binary.LittleEndian.Uint32(header[8:12]))
	if keyLen > MaxKeyLen {
		return "", nil, corruptf("key length %d exceeds %d", keyLen, MaxKeyLen)
	}
	if valueLen > MaxValueLen {
		return "", nil, corruptf("value length %d exceeds %d", valueLen, MaxValueLen)
	}
	rest := make([]byte, keyLen+valueLen+recordTrailerLen)
	if _, err := io.ReadFull(r, rest); err != nil {
		return "", nil, corruptf("truncated record body: %v", err)
	}
	buf := append(header, rest...)
	key, value, _, derr := decodeOne(buf)
	if derr != nil {
		return "", nil, derr
	}
	return key, value, nil
}
