package store

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzStoreRecord fuzzes the decode contract: for arbitrary input
// bytes, DecodeRecord either succeeds and round-trips canonically
// (re-encoding the decoded pair reproduces the input exactly) or
// returns a *CorruptError — never a panic, never an untyped error,
// never a success whose re-encoding differs.
func FuzzStoreRecord(f *testing.F) {
	seed, err := EncodeRecord("job-000001", []byte(`{"event":"accepted"}`))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte(recordMagic))
	f.Add(seed[:len(seed)-1])
	f.Add(append(append([]byte(nil), seed...), 0x00))
	flipped := append([]byte(nil), seed...)
	flipped[recordHeaderLen] ^= 0x01
	f.Add(flipped)
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		key, value, err := DecodeRecord(data)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("DecodeRecord error = %v (%T), want *CorruptError", err, err)
			}
			return
		}
		again, err := EncodeRecord(key, value)
		if err != nil {
			t.Fatalf("decoded (%q, %d bytes) but re-encode failed: %v", key, len(value), err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("non-canonical encoding accepted: %x decodes to (%q, %x) which re-encodes to %x",
				data, key, value, again)
		}
	})
}
