// The async write-behind batcher: Puts land in an in-memory pending
// map (coalescing repeated writes to one key) and are flushed to the
// underlying store by a background goroutine when the batch grows past
// a size threshold, when the flush interval elapses, and always on
// Close. Reads are write-through-consistent: Get serves the pending
// value when one exists, so a caller never observes its own write
// missing. The batcher trades a bounded window of durability (one
// flush interval) for keeping the engine's hot path free of
// filesystem I/O.

package store

import (
	"errors"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Batcher defaults.
const (
	// DefaultMaxPending triggers a flush when this many coalesced keys
	// are pending.
	DefaultMaxPending = 64
	// DefaultFlushInterval is the periodic flush cadence.
	DefaultFlushInterval = time.Second
)

// BatcherOptions tunes a Batcher. The zero value selects the defaults.
type BatcherOptions struct {
	// MaxPending flushes when the pending batch reaches this many keys
	// (default DefaultMaxPending).
	MaxPending int
	// FlushInterval is the periodic flush cadence (default
	// DefaultFlushInterval).
	FlushInterval time.Duration
	// Logger receives one warning per failed flush write; nil discards.
	Logger *slog.Logger
	// OnError, when set, observes every failed flush write (popsd hooks
	// the engine's store-error counter here so async failures are
	// visible on /metrics, not only in the log).
	OnError func(key string, err error)
}

// Batcher is a write-behind Store decorator. It owns a background
// flush goroutine from NewBatcher until Close; Close flushes the final
// batch, so with a healthy underlying store no accepted Put is ever
// lost across Close. The underlying store is NOT closed — the caller
// composed the layers and unwinds them in order.
type Batcher struct {
	under Store
	opts  BatcherOptions

	mu      sync.Mutex
	pending map[string][]byte
	closed  bool

	writeMu sync.Mutex // orders flush writes against Deletes

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	errs atomic.Uint64
}

// NewBatcher wraps under in a write-behind batcher and starts its
// flush goroutine.
func NewBatcher(under Store, opts BatcherOptions) *Batcher {
	if opts.MaxPending <= 0 {
		opts.MaxPending = DefaultMaxPending
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = DefaultFlushInterval
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.DiscardHandler)
	}
	b := &Batcher{
		under:   under,
		opts:    opts,
		pending: make(map[string][]byte),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go b.loop()
	return b
}

// loop is the background flusher: periodic ticks plus size-threshold
// kicks, until Close.
func (b *Batcher) loop() {
	defer close(b.done)
	ticker := time.NewTicker(b.opts.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			b.Flush()
		case <-b.kick:
			b.Flush()
		case <-b.stop:
			return
		}
	}
}

// Get implements Store: the pending (unflushed) value wins, then the
// underlying store.
func (b *Batcher) Get(key string) ([]byte, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	if v, ok := b.pending[key]; ok {
		out := append([]byte(nil), v...)
		b.mu.Unlock()
		return out, nil
	}
	b.mu.Unlock()
	return b.under.Get(key)
}

// Put implements Store: the write is accepted into the pending batch
// and durably stored at the next flush. After Close has begun, Put
// accepts nothing and returns ErrClosed.
func (b *Batcher) Put(key string, value []byte) error {
	if !ValidKey(key) {
		return &BadKeyError{Key: key}
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.pending[key] = append([]byte(nil), value...)
	full := len(b.pending) >= b.opts.MaxPending
	b.mu.Unlock()
	if full {
		select {
		case b.kick <- struct{}{}:
		default: // a flush is already signalled
		}
	}
	return nil
}

// Delete implements Store: the key leaves the pending batch and the
// underlying store synchronously (ordered against in-flight flushes,
// so a concurrent flush of an older value cannot resurrect it).
func (b *Batcher) Delete(key string) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	delete(b.pending, key)
	b.mu.Unlock()
	b.writeMu.Lock()
	defer b.writeMu.Unlock()
	//popslint:ignore locksafe writeMu exists solely to order tier writes; only Flush and Delete take it, and neither holds b.mu here, so Puts never stall behind this write
	return b.under.Delete(key)
}

// Scan implements Store: it flushes first so the underlying scan sees
// every accepted write.
func (b *Batcher) Scan(fn func(key string, value []byte) error) error {
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if err := b.Flush(); err != nil {
		return err
	}
	return b.under.Scan(fn)
}

// Flush writes the pending batch to the underlying store, in sorted
// key order, and returns the joined errors of failed writes (each also
// logged, counted, and reported to OnError). Failed writes are
// dropped, not retried — a result record is reproducible, so the cost
// of a lost write is one recomputation on a future miss.
func (b *Batcher) Flush() error {
	// writeMu is held across snapshot AND write: two racing flushes
	// would otherwise snapshot in one order and write in the other,
	// letting an older value overwrite a newer one.
	b.writeMu.Lock()
	defer b.writeMu.Unlock()
	b.mu.Lock()
	if len(b.pending) == 0 {
		b.mu.Unlock()
		return nil
	}
	batch := b.pending
	b.pending = make(map[string][]byte)
	b.mu.Unlock()

	var errs []error
	for _, key := range sortedKeys(batch) {
		//popslint:ignore locksafe writeMu exists solely to order tier writes; the pending map was snapshotted and b.mu released above, so Puts never stall behind this write
		if err := b.under.Put(key, batch[key]); err != nil {
			b.errs.Add(1)
			b.opts.Logger.Warn("store: flush write failed", "key", key, "error", err.Error())
			if b.opts.OnError != nil {
				b.opts.OnError(key, err)
			}
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// sortedKeys returns the keys of m in sorted order (deterministic
// flush order; failures are reproducible).
func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	//pops:orderindep every key is collected; the insertion sort below determinizes the order
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: batches are small (MaxPending), and the sort runs
	// off the hot path.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Errors reports the number of failed flush writes since construction.
func (b *Batcher) Errors() uint64 { return b.errs.Load() }

// Close stops accepting writes, stops the flush goroutine, and flushes
// the final batch. Every Put accepted before Close began is flushed
// exactly once; Puts racing Close either land in that final batch or
// return ErrClosed — no accepted write is silently dropped.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.mu.Unlock()
	close(b.stop)
	<-b.done
	return b.Flush()
}
