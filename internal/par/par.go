// Package par is the intra-circuit parallelism substrate shared by the
// timing and power kernels: a policy resolver mapping the repository's
// Parallelism knob to a worker count, and level-synchronized /
// fork-join executors over dense index spaces.
//
// The policy grammar, used by sta.Config, power.Options, core.Config
// and the engine/CLI surface alike:
//
//	 0   auto — GOMAXPROCS workers, but only when the unit count
//	     clears the caller's threshold; small problems stay serial so
//	     the zero-allocation serial paths keep holding
//	 1   serial (as is -1)
//	 n>1 at most n workers, threshold still applies
//	n<-1 force |n| workers, bypassing the threshold — the escape hatch
//	     the byte-identity tests use to drive degree > level width on
//	     circuits far below the production threshold
//
// Executors guarantee nothing about evaluation order inside a batch;
// callers own the proof that their per-unit work is order-independent
// (in this repository: byte-identity tests against the serial kernels).
package par

import (
	"runtime"
	"sync"
)

// Degree resolves a Parallelism policy against a problem of `units`
// independent work items and a serial-path threshold, returning the
// number of workers to use (1 = take the serial path).
func Degree(policy, units, threshold int) int {
	var w int
	switch {
	case policy <= -2:
		w = -policy // forced: threshold bypassed
	case policy == 0:
		if units < threshold {
			return 1
		}
		w = runtime.GOMAXPROCS(0)
	case policy == 1 || policy == -1:
		return 1
	default: // policy > 1
		if units < threshold {
			return 1
		}
		w = policy
	}
	if w > units {
		w = units
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Chunk returns the half-open range of chunk i when [0, n) is split
// into k near-equal contiguous chunks.
func Chunk(i, k, n int) (lo, hi int) {
	return i * n / k, (i + 1) * n / k
}

// Run invokes fn(0) … fn(k-1) concurrently — fn(k-1) on the caller's
// goroutine — and returns when all have finished. All writes made by
// the fn calls happen-before Run returns.
func Run(k int, fn func(i int)) {
	if k <= 1 {
		if k == 1 {
			fn(0)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(k - 1)
	for i := 0; i < k-1; i++ {
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	fn(k - 1)
	wg.Wait()
}

// Wavefront executes a levelized index space: offsets[l], offsets[l+1]
// delimit level l of a dense ordering, levels run strictly in
// sequence, and the items of one level run concurrently on at most
// `workers` goroutines (the caller's included). reverse=false walks
// levels 0..L-1, reverse=true walks L-1..0 — the backward-pass
// direction. Levels narrower than minSpan run inline on the caller's
// goroutine: for them the hand-off would cost more than the work.
//
// fn must be safe to call concurrently on disjoint [lo, hi) spans of
// one level. The per-level join gives every level's writes a
// happens-before edge to all later levels, and all writes
// happen-before Wavefront returns.
func Wavefront(workers int, offsets []int, minSpan int, reverse bool, fn func(lo, hi int)) {
	levels := len(offsets) - 1
	if workers <= 1 {
		for l := 0; l < levels; l++ {
			i := l
			if reverse {
				i = levels - 1 - l
			}
			fn(offsets[i], offsets[i+1])
		}
		return
	}
	if minSpan < 1 {
		minSpan = 1
	}
	type span struct{ lo, hi int }
	work := make(chan span, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers-1; i++ {
		go func() {
			for s := range work {
				fn(s.lo, s.hi)
				wg.Done()
			}
		}()
	}
	for l := 0; l < levels; l++ {
		i := l
		if reverse {
			i = levels - 1 - l
		}
		lo, hi := offsets[i], offsets[i+1]
		n := hi - lo
		if n < 2*minSpan { // cannot fill two chunks; run inline
			fn(lo, hi)
			continue
		}
		chunks := workers
		if max := n / minSpan; chunks > max {
			chunks = max
		}
		wg.Add(chunks - 1)
		for c := 0; c < chunks-1; c++ {
			clo, chi := Chunk(c, chunks, n)
			work <- span{lo + clo, lo + chi}
		}
		clo, chi := Chunk(chunks-1, chunks, n)
		fn(lo+clo, lo+chi)
		// Join the level: later levels read what this one wrote.
		wg.Wait()
	}
	close(work)
}
