package buffering

import (
	"math"
	"testing"

	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/sizing"
	"repro/internal/tech"
)

func model() *delay.Model { return delay.NewModel(tech.CMOS025()) }

func TestFlimitInvInvRange(t *testing.T) {
	m := model()
	f, err := Flimit(m, gate.Inv, gate.Inv, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The classic single-inverter insertion crossover sits in the
	// mid-single-digits (the paper reports 5.7; slope bookkeeping
	// shifts ours up slightly).
	if f < 3.5 || f > 12 {
		t.Fatalf("Flimit(inv→inv) = %g, outside plausible band", f)
	}
}

func TestFlimitOrderingMatchesTable2(t *testing.T) {
	// Paper Table 2: the less efficient the gate, the lower the limit:
	// inv > nand2 > nand3 > nor2 > nor3, with NOR3 clearly last.
	m := model()
	get := func(ty gate.Type) float64 {
		f, err := Flimit(m, gate.Inv, ty, nil, Options{})
		if err != nil {
			t.Fatalf("Flimit(%v): %v", ty, err)
		}
		return f
	}
	inv, nand2, nand3 := get(gate.Inv), get(gate.Nand2), get(gate.Nand3)
	nor2, nor3 := get(gate.Nor2), get(gate.Nor3)
	if !(inv > nand2 && nand2 > nand3 && nand3 > nor2 && nor2 > nor3) {
		t.Fatalf("ordering violated: inv=%.2f nand2=%.2f nand3=%.2f nor2=%.2f nor3=%.2f",
			inv, nand2, nand3, nor2, nor3)
	}
	// Spread: the paper sees about a 2× ratio between inv and nor3.
	if r := inv / nor3; r < 1.3 || r > 3.5 {
		t.Fatalf("inv/nor3 spread %g implausible", r)
	}
}

func TestFlimitScaleInvariance(t *testing.T) {
	// Flimit is a ratio metric: the characterization sizes should not
	// move it much.
	m := model()
	f1, err := Flimit(m, gate.Inv, gate.Nand2, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Flimit(m, gate.Inv, gate.Nand2, nil, Options{
		GateCIn:   16 * m.Proc.CRef,
		DriverCIn: 8 * m.Proc.CRef,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f1-f2) > 0.25*f1 {
		t.Fatalf("Flimit not scale-stable: %g vs %g", f1, f2)
	}
}

func TestCharacterizeLibrary(t *testing.T) {
	m := model()
	entries := CharacterizeLibrary(m, nil, Options{})
	if len(entries) < 5 {
		t.Fatalf("characterization too small: %d entries", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Flimit > entries[i-1].Flimit {
			t.Fatal("entries not sorted by decreasing limit")
		}
	}
	lim := Limits(entries)
	if lim[gate.Inv] == 0 || lim[gate.Nor3] == 0 {
		t.Fatal("Limits lookup incomplete")
	}
	for _, e := range entries {
		if e.Gate == gate.Buf {
			t.Fatal("BUF must not be characterized")
		}
	}
}

// heavyPath returns a path with one grossly overloaded interior node.
func heavyPath(p *tech.Process) *delay.Path {
	types := []gate.Type{gate.Inv, gate.Nand2, gate.Nor3, gate.Inv, gate.Nand2, gate.Inv}
	pa := &delay.Path{Name: "heavy", TauIn: delay.DefaultTauIn(p)}
	for _, ty := range types {
		pa.Stages = append(pa.Stages, delay.Stage{Cell: gate.MustLookup(ty), CIn: p.CRef, COff: 2})
	}
	pa.Stages[2].COff = 180 // the hub
	pa.Stages[len(types)-1].COff = 40
	return pa
}

func TestCriticalStagesDetection(t *testing.T) {
	m := model()
	lim := Limits(CharacterizeLibrary(m, nil, Options{}))
	pa := heavyPath(m.Proc)
	cands := CriticalStages(m, pa, lim)
	if len(cands) == 0 {
		t.Fatal("overloaded node not detected")
	}
	if cands[0] != 2 {
		t.Fatalf("worst candidate = stage %d, want 2 (the hub)", cands[0])
	}
	// A comfortable path has no candidates.
	quiet := heavyPath(m.Proc)
	quiet.Stages[2].COff = 2
	quiet.Stages[len(quiet.Stages)-1].COff = 4
	if got := CriticalStages(m, quiet, lim); len(got) != 0 {
		t.Fatalf("quiet path flagged: %v", got)
	}
}

func TestCriticalStagesSkipsInserted(t *testing.T) {
	m := model()
	lim := Limits(CharacterizeLibrary(m, nil, Options{}))
	pa := heavyPath(m.Proc)
	q, err := InsertStage(m, pa, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range CriticalStages(m, q, lim) {
		if q.Stages[idx].Inserted {
			t.Fatal("inserted buffer flagged for buffering")
		}
	}
}

func TestInsertStageStructure(t *testing.T) {
	m := model()
	pa := heavyPath(m.Proc)
	n := pa.Len()
	q, err := InsertStage(m, pa, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != n+1 {
		t.Fatalf("stage count %d, want %d", q.Len(), n+1)
	}
	if !q.Stages[3].Inserted || q.Stages[3].Cell.Type != gate.Inv {
		t.Fatal("inserted stage wrong")
	}
	// The buffer takes over the off-path load; the gate keeps none.
	if q.Stages[2].COff != 0 || q.Stages[3].COff != 180 {
		t.Fatalf("load handoff wrong: %g / %g", q.Stages[2].COff, q.Stages[3].COff)
	}
	// Original is untouched.
	if pa.Len() != n || pa.Stages[2].COff != 180 {
		t.Fatal("InsertStage mutated its input")
	}
	if _, err := InsertStage(m, pa, 99); err == nil {
		t.Fatal("out-of-range insert accepted")
	}
}

func TestMinDelayWithBuffersImproves(t *testing.T) {
	m := model()
	lim := Limits(CharacterizeLibrary(m, nil, Options{}))
	pa := heavyPath(m.Proc)
	base := pa.Clone()
	rBase, err := sizing.Tmin(m, base, sizing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinDelayWithBuffers(m, pa, lim, sizing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted == 0 {
		t.Fatal("no buffer inserted on a grossly overloaded node")
	}
	if res.Delay >= rBase.Delay {
		t.Fatalf("buffers did not help: %g vs %g", res.Delay, rBase.Delay)
	}
}

func TestMinDelayWithBuffersNeverWorse(t *testing.T) {
	// On a path with no overloaded nodes, the result equals plain Tmin.
	m := model()
	lim := Limits(CharacterizeLibrary(m, nil, Options{}))
	pa := heavyPath(m.Proc)
	pa.Stages[2].COff = 2
	pa.Stages[len(pa.Stages)-1].COff = 8
	base := pa.Clone()
	rBase, _ := sizing.Tmin(m, base, sizing.Options{})
	res, err := MinDelayWithBuffers(m, pa, lim, sizing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay > rBase.Delay*(1+1e-9) {
		t.Fatalf("buffered flow worse than plain Tmin: %g vs %g", res.Delay, rBase.Delay)
	}
}

func TestDistributeWithBuffersModes(t *testing.T) {
	m := model()
	lim := Limits(CharacterizeLibrary(m, nil, Options{}))
	pa := heavyPath(m.Proc)
	rt, err := sizing.Tmin(m, pa.Clone(), sizing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tc := 1.3 * rt.Delay
	for _, mode := range []Mode{Local, Global} {
		res, err := DistributeWithBuffers(m, pa, tc, lim, mode, sizing.Options{})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Inserted == 0 {
			t.Fatalf("mode %v inserted nothing", mode)
		}
		if res.Delay > tc*(1+1e-3) {
			t.Fatalf("mode %v missed Tc: %g vs %g", mode, res.Delay, tc)
		}
	}
}

func TestGlobalNoWorseThanLocalOnHardConstraint(t *testing.T) {
	// Hard constraints are where global resizing of the buffers pays
	// (paper Fig. 8): global area ≤ local area.
	m := model()
	lim := Limits(CharacterizeLibrary(m, nil, Options{}))
	pa := heavyPath(m.Proc)
	rt, _ := sizing.Tmin(m, pa.Clone(), sizing.Options{})
	tc := 1.1 * rt.Delay
	lres, err := DistributeWithBuffers(m, pa, tc, lim, Local, sizing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gres, err := DistributeWithBuffers(m, pa, tc, lim, Global, sizing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gres.Area > lres.Area*1.05 {
		t.Fatalf("global area %g above local %g", gres.Area, lres.Area)
	}
}

func TestFlimitErrorsWithoutCrossover(t *testing.T) {
	m := model()
	// Bracket entirely below the crossover: no root.
	if _, err := Flimit(m, gate.Inv, gate.Inv, nil, Options{FMin: 1.05, FMax: 1.2}); err == nil {
		t.Fatal("no-crossover bracket accepted")
	}
}

func TestFlimitUnknownTypes(t *testing.T) {
	m := model()
	if _, err := Flimit(m, gate.Input, gate.Inv, nil, Options{}); err == nil {
		t.Fatal("pseudo-cell driver accepted")
	}
	if _, err := Flimit(m, gate.Inv, gate.Output, nil, Options{}); err == nil {
		t.Fatal("pseudo-cell gate accepted")
	}
}

func TestOrdinalOf(t *testing.T) {
	m := model()
	pa := heavyPath(m.Proc)
	q, _ := InsertStage(m, pa, 1)
	// Stage indices: 0,1 original; 2 inserted; 3.. shifted originals.
	if ordinalOf(q, 3) != 2 {
		t.Fatalf("ordinalOf(3) = %d, want 2", ordinalOf(q, 3))
	}
	if ordinalOf(q, 1) != 1 {
		t.Fatalf("ordinalOf(1) = %d, want 1", ordinalOf(q, 1))
	}
}
