// Package buffering implements §4.1 of the paper: the fan-out limit
// metric Flimit for buffer insertion and the local/global insertion
// procedures built on it.
//
// Flimit is defined on the two-structure comparison of Fig. 5: a gate
// (i), driven by a gate (i-1) that fixes its input slope, drives a load
// C_L either directly (structure A) or through a locally sized buffer
// (structure B). Flimit is the fan-out F = C_L/C_IN(i) at which B
// becomes faster than A. Low-Flimit gates (NOR3 in Table 2) are
// inefficient drivers: they must be helped at much smaller loads, which
// makes Flimit a direct measure of gate efficiency and the critical-
// node detector of the optimization protocol.
package buffering

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/sizing"
)

// DelayFn measures the worst-case delay of a bounded path. The default
// is the closed-form model (Model.PathDelayWorst); the transistor-level
// simulator provides the "simulated" column of Table 2 through the same
// signature.
type DelayFn func(pa *delay.Path) float64

// Options tunes the characterization.
type Options struct {
	// GateCIn is the fixed input capacitance of gate (i) during
	// characterization, in fF. Zero selects 8×CREF.
	GateCIn float64
	// DriverCIn is the fixed input capacitance of the driving gate
	// (i-1), in fF. Zero selects 4×CREF.
	DriverCIn float64
	// FMin/FMax bracket the fan-out search (defaults 1.05 and 400).
	FMin, FMax float64
	// Iter bounds the bisection steps (default 70).
	Iter int
}

func (o Options) withDefaults(m *delay.Model) Options {
	if o.GateCIn <= 0 {
		o.GateCIn = 8 * m.Proc.CRef
	}
	if o.DriverCIn <= 0 {
		o.DriverCIn = 4 * m.Proc.CRef
	}
	if o.FMin <= 0 {
		o.FMin = 1.05
	}
	if o.FMax <= o.FMin {
		o.FMax = 400
	}
	if o.Iter <= 0 {
		o.Iter = 70
	}
	return o
}

// driverSlope returns the input transition gate (i) sees when driven by
// the (i-1) cell at its characterization sizes.
func driverSlope(m *delay.Model, driver gate.Cell, driverCIn, gateCIn float64) float64 {
	cl := gateCIn + driver.Parasitic(driverCIn)
	return m.TransitionMean(driver, driverCIn, cl)
}

// structures builds the A (direct) and B (buffered) paths of Fig. 5 for
// fan-out f. The buffer starts at CREF; callers size it.
func structures(m *delay.Model, driver, g gate.Cell, o Options, f float64) (a, b *delay.Path) {
	tauIn := driverSlope(m, driver, o.DriverCIn, o.GateCIn)
	cl := f * o.GateCIn
	a = &delay.Path{
		Name:   "flimit/A",
		TauIn:  tauIn,
		Stages: []delay.Stage{{Cell: g, CIn: o.GateCIn, COff: cl}},
	}
	b = &delay.Path{
		Name:  "flimit/B",
		TauIn: tauIn,
		Stages: []delay.Stage{
			{Cell: g, CIn: o.GateCIn, COff: 0},
			{Cell: gate.MustLookup(gate.Inv), CIn: m.Proc.CRef, COff: cl},
		},
	}
	return a, b
}

// sizeBuffer minimizes eval(b) over the buffer input capacitance by
// golden-section search on [CREF, CL], returning the best delay.
func sizeBuffer(m *delay.Model, b *delay.Path, eval DelayFn) float64 {
	lo := m.Proc.CRef
	hi := math.Max(b.Stages[1].COff, 2*lo)
	if hi > m.Proc.CMax {
		hi = m.Proc.CMax
	}
	const phi = 0.6180339887498949
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	at := func(x float64) float64 {
		b.Stages[1].CIn = x
		return eval(b)
	}
	f1, f2 := at(x1), at(x2)
	for i := 0; i < 90 && hi-lo > 1e-9*hi; i++ {
		if f1 < f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = at(x1)
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = at(x2)
		}
	}
	if f1 < f2 {
		b.Stages[1].CIn = x1
		return f1
	}
	b.Stages[1].CIn = x2
	return f2
}

// Flimit computes the buffer-insertion fan-out limit for gate type gt
// driven by cell type driver, using the supplied delay evaluator.
// It returns the limit F and an error when no crossover exists in the
// search bracket (the buffer never helps, or always helps).
func Flimit(m *delay.Model, driver, gt gate.Type, eval DelayFn, opts Options) (float64, error) {
	o := opts.withDefaults(m)
	dCell, err := gate.Lookup(driver)
	if err != nil {
		return 0, err
	}
	gCell, err := gate.Lookup(gt)
	if err != nil {
		return 0, err
	}
	if eval == nil {
		// The characterization uses the edge-averaged delay: Flimit is
		// an efficiency metric of the cell as a whole, and the
		// worst-launch-edge max would fold the polarity alternation of
		// the two structures into the comparison.
		eval = m.PathDelayMean
	}

	// gain(f) = delayA − delayB_opt: positive once buffering wins.
	gain := func(f float64) float64 {
		a, b := structures(m, dCell, gCell, o, f)
		da := eval(a)
		db := sizeBuffer(m, b, eval)
		return da - db
	}
	lo, hi := o.FMin, o.FMax
	gLo, gHi := gain(lo), gain(hi)
	if gLo > 0 {
		return 0, fmt.Errorf("buffering: %v driven by %v: buffer already wins at F=%.2f", gt, driver, lo)
	}
	if gHi < 0 {
		return 0, fmt.Errorf("buffering: %v driven by %v: no crossover below F=%.0f", gt, driver, hi)
	}
	for i := 0; i < o.Iter && hi-lo > 1e-7*hi; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection: F spans decades
		if gain(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi), nil
}

// TableEntry is one row of a library characterization.
type TableEntry struct {
	Driver, Gate gate.Type
	Flimit       float64
}

// CharacterizeLibrary computes Flimit for every primitive gate type
// driven by an inverter — the "library characterization" step of the
// protocol (Fig. 7) and the content of Table 2. Entries are sorted by
// decreasing limit (most efficient gate first). Gates with no crossover
// in the bracket are skipped.
func CharacterizeLibrary(m *delay.Model, eval DelayFn, opts Options) []TableEntry {
	var out []TableEntry
	for _, gt := range gate.Primitives() {
		if gt == gate.Buf {
			continue // never buffer a buffer
		}
		f, err := Flimit(m, gate.Inv, gt, eval, opts)
		if err != nil {
			continue
		}
		out = append(out, TableEntry{Driver: gate.Inv, Gate: gt, Flimit: f})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Flimit > out[j].Flimit })
	return out
}

// Limits converts a characterization into a lookup keyed by gate type.
func Limits(entries []TableEntry) map[gate.Type]float64 {
	lim := make(map[gate.Type]float64, len(entries))
	for _, e := range entries {
		lim[e.Gate] = e.Flimit
	}
	return lim
}

// CriticalStages returns the indices of path stages whose effective
// fan-out F_i = L_i/C_IN(i) exceeds their type's insertion limit,
// ordered by decreasing excess — the protocol's critical nodes.
func CriticalStages(m *delay.Model, pa *delay.Path, limits map[gate.Type]float64) []int {
	type cand struct {
		idx    int
		excess float64
	}
	var cands []cand
	for i := range pa.Stages {
		st := &pa.Stages[i]
		if st.Inserted {
			continue // never re-buffer an inserted buffer
		}
		lim, ok := limits[st.Cell.Type]
		if !ok || st.CIn <= 0 {
			continue
		}
		f := pa.ExternalLoadAt(i) / st.CIn
		if f > lim {
			cands = append(cands, cand{idx: i, excess: f / lim})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].excess > cands[j].excess })
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.idx
	}
	return out
}

// InsertStage returns a copy of the path with an inverter stage
// inserted after stage idx, taking over the stage's off-path load (the
// buffer drives everything the stage previously drove beyond the path
// successor). The buffer starts at CREF.
func InsertStage(m *delay.Model, pa *delay.Path, idx int) (*delay.Path, error) {
	if idx < 0 || idx >= len(pa.Stages) {
		return nil, fmt.Errorf("buffering: insert index %d out of range", idx)
	}
	q := pa.Clone()
	buf := delay.Stage{Cell: gate.MustLookup(gate.Inv), CIn: m.Proc.CRef, COff: q.Stages[idx].COff, Inserted: true}
	q.Stages[idx].COff = 0
	q.Stages = append(q.Stages[:idx+1], append([]delay.Stage{buf}, q.Stages[idx+1:]...)...)
	q.Name = pa.Name + "+buf"
	return q, nil
}

// Result reports a buffered optimization.
type Result struct {
	Path     *delay.Path
	Delay    float64
	Area     float64
	Inserted int // number of buffers inserted
}

// MinDelayWithBuffers implements the §4.1 flow for minimum delay.
// Critical nodes are identified on the *incoming* implementation (the
// existing sizes), exactly as the protocol of Fig. 7 prescribes —
// Flimit is a property of the path structure and its environment, not
// of the sized optimum. Buffers are then inserted worst-excess first,
// each insertion accepted only if it lowers the globally re-sized
// minimum delay. The best configuration found is returned (possibly
// the unbuffered one).
func MinDelayWithBuffers(m *delay.Model, pa *delay.Path, limits map[gate.Type]float64, opts sizing.Options) (*Result, error) {
	// Private solver scratch for the trial Tmin runs. The caller's
	// workspace (if any) is deliberately not reused: the caller may hold
	// live results in it across this call.
	opts.Workspace = &sizing.Workspace{}
	// structure keeps the incoming sizes (+ CREF buffers) for
	// detection; best keeps the sized champion.
	structure := pa.Clone()
	sized := pa.Clone()
	r, err := sizing.Tmin(m, sized, opts)
	if err != nil {
		return nil, err
	}
	best := &Result{Path: sized, Delay: r.Delay, Area: r.Area}
	bestStructure := structure

	tried := make(map[int]bool) // original-stage ordinal → attempted
	const maxInsert = 24
	for n := 0; n < maxInsert; n++ {
		cands := CriticalStages(m, bestStructure, limits)
		idx := -1
		for _, ci := range cands {
			if !tried[ordinalOf(bestStructure, ci)] {
				idx = ci
				break
			}
		}
		if idx < 0 {
			break
		}
		tried[ordinalOf(bestStructure, idx)] = true

		trialStructure, err := InsertStage(m, bestStructure, idx)
		if err != nil {
			return nil, err
		}
		trialSized := trialStructure.Clone()
		tr, err := sizing.Tmin(m, trialSized, opts)
		if err != nil {
			return nil, err
		}
		if tr.Delay < best.Delay*(1-1e-9) {
			best = &Result{Path: trialSized, Delay: tr.Delay, Area: tr.Area, Inserted: best.Inserted + 1}
			bestStructure = trialStructure
		}
	}
	return best, nil
}

// ordinalOf returns the index of stage i among the path's original
// (non-inserted) stages, a stable identity across insertions.
func ordinalOf(pa *delay.Path, i int) int {
	ord := 0
	for j := 0; j < i; j++ {
		if !pa.Stages[j].Inserted {
			ord++
		}
	}
	return ord
}

// Mode selects how inserted buffers are sized when distributing a
// delay constraint.
type Mode int

const (
	// Local sizes only the inserted buffers (golden-section on each),
	// leaving the original gates at their incoming sizes before the
	// final constraint distribution over the original gates.
	Local Mode = iota
	// Global includes the buffers as ordinary stages of the
	// constant-sensitivity distribution.
	Global
)

// DistributeWithBuffers distributes the delay constraint tc with buffer
// insertion, in Local or Global mode. Critical nodes are detected on
// the *sized* implementation (distribute first, then measure fan-out
// excess), and each insertion is kept only if it reduces the area at
// equal constraint — or, while the constraint is still infeasible,
// if it reduces the achievable delay. ErrInfeasible is returned when
// even the buffered structure cannot reach tc.
func DistributeWithBuffers(m *delay.Model, pa *delay.Path, tc float64, limits map[gate.Type]float64, mode Mode, opts sizing.Options) (*Result, error) {
	// Private solver scratch shared by every insertion trial; the
	// caller's own workspace (if any) may hold live results and is not
	// touched. Results are decoupled from the scratch slot right away —
	// the adoption loop compares a fresh probe against the retained
	// champion, which must not alias it.
	opts.Workspace = &sizing.Workspace{}
	distribute := func(q *delay.Path) (*sizing.Result, error) {
		r, err := distributeOnce(m, q, tc, mode, opts)
		if r != nil {
			rv := *r
			r = &rv
		}
		return r, err
	}

	bestPath := pa.Clone()
	best, err := distribute(bestPath)
	if err != nil && !errors.Is(err, sizing.ErrInfeasible) {
		return nil, err
	}
	feasible := err == nil
	inserted := 0

	const maxInsert = 24
	const candTries = 4 // candidates probed per round before giving up
	for n := 0; n < maxInsert; n++ {
		cands := CriticalStages(m, bestPath, limits)
		if len(cands) > candTries {
			cands = cands[:candTries]
		}
		adopted := false
		for _, idx := range cands {
			trial, errIns := InsertStage(m, bestPath, idx)
			if errIns != nil {
				return nil, errIns
			}
			if mode == Local {
				sizeInsertedLocally(m, trial, idx+1)
			}
			r, errD := distribute(trial)
			switch {
			case errD == nil && (!feasible || r.Area < best.Area*(1-1e-9)):
				bestPath, best, feasible = trial, r, true
				adopted = true
			case errD != nil && !errors.Is(errD, sizing.ErrInfeasible):
				return nil, errD
			case errD != nil && !feasible && r != nil && r.Delay < best.Delay*(1-1e-9):
				// Still infeasible, but the buffer lowered the
				// achievable minimum: keep chasing.
				bestPath, best = trial, r
				adopted = true
			}
			if adopted {
				inserted++
				break
			}
		}
		if !adopted {
			break
		}
	}

	out := &Result{Path: bestPath, Inserted: inserted}
	if best != nil {
		out.Delay = best.Delay
		out.Area = best.Area
	}
	if !feasible {
		return out, fmt.Errorf("%w: buffered structure reached %.1f ps, constraint %.1f ps",
			sizing.ErrInfeasible, out.Delay, tc)
	}
	return out, nil
}

// distributeOnce dispatches one constraint distribution according to
// the buffer-sizing mode.
func distributeOnce(m *delay.Model, q *delay.Path, tc float64, mode Mode, opts sizing.Options) (*sizing.Result, error) {
	if mode == Global {
		return sizing.Distribute(m, q, tc, opts)
	}
	return distributeFrozenBuffers(m, q, tc, opts)
}

// sizeInsertedLocally golden-sections the single inserted buffer at
// position idx for minimum path delay, holding everything else fixed.
func sizeInsertedLocally(m *delay.Model, pa *delay.Path, idx int) {
	lo := m.Proc.CRef
	hi := math.Max(4*lo, pa.Stages[idx].COff*2)
	if hi > m.Proc.CMax {
		hi = m.Proc.CMax
	}
	const phi = 0.6180339887498949
	at := func(x float64) float64 {
		pa.Stages[idx].CIn = x
		return m.PathDelayWorst(pa)
	}
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, f2 := at(x1), at(x2)
	for i := 0; i < 80 && hi-lo > 1e-9*hi; i++ {
		if f1 < f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = at(x1)
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = at(x2)
		}
	}
	if f1 < f2 {
		pa.Stages[idx].CIn = x1
	} else {
		pa.Stages[idx].CIn = x2
	}
}

// solveFrozen runs the eq. (6) forward recursion at sensitivity a,
// skipping the inserted stages (their sizes are pinned), and returns
// the worst-edge delay. bbuf is the reused B-coefficient scratch — the
// recursion refreshes B every sweep, and the frozen-buffer bisection
// calls solveFrozen hundreds of times per distribution, so this buffer
// used to dominate the whole round loop's allocation profile.
func solveFrozen(m *delay.Model, pa *delay.Path, a float64, bbuf *[]float64) float64 {
	n := len(pa.Stages)
	for sweep := 0; sweep < 120; sweep++ {
		*bbuf = m.BCoefficientsInto(*bbuf, pa)
		b := *bbuf
		maxRel := 0.0
		for i := 1; i < n; i++ {
			if pa.Stages[i].Inserted {
				continue
			}
			li := pa.ExternalLoadAt(i)
			den := b[i-1]/pa.Stages[i-1].CIn - a*sizing.AreaWeight(&pa.Stages[i])
			if den < 1e-12 {
				den = 1e-12
			}
			x := m.Proc.ClampCap(math.Sqrt(b[i] * li / den))
			if old := pa.Stages[i].CIn; old > 0 {
				if rel := math.Abs(x-old) / old; rel > maxRel {
					maxRel = rel
				}
			}
			pa.Stages[i].CIn = x
		}
		if maxRel < 1e-10 {
			break
		}
	}
	return m.PathDelayWorst(pa)
}

// distributeFrozenBuffers distributes the delay constraint over the
// original stages only, with the inserted buffers held at locally
// optimized sizes. A few outer rounds alternate (a) golden-section
// re-sizing of each buffer against the current neighborhood and (b) a
// bisection on the sensitivity a with the buffers pinned.
func distributeFrozenBuffers(m *delay.Model, pa *delay.Path, tc float64, opts sizing.Options) (*sizing.Result, error) {
	_ = opts
	// One B-coefficient scratch serves every solveFrozen sweep of this
	// distribution (hundreds of bisection probes × up to 120 sweeps).
	var bbuf []float64
	var res *sizing.Result
	for round := 0; round < 3; round++ {
		// (a) local buffer sizing against the current sizes.
		for i := range pa.Stages {
			if pa.Stages[i].Inserted {
				sizeInsertedLocally(m, pa, i)
			}
		}
		// (b) frozen-buffer sensitivity bisection.
		if d := solveFrozen(m, pa, 0, &bbuf); d > tc {
			// Even the frozen minimum misses tc this round; try the
			// next round's buffer re-size, or report the shortfall.
			res = &sizing.Result{Delay: d, MeanDelay: m.PathDelayMean(pa), Area: pa.Area(m.Proc), A: 0}
			continue
		}
		aLo, aHi := -1e-4, 0.0
		for range [64]int{} {
			if solveFrozen(m, pa, aLo, &bbuf) >= tc {
				break
			}
			aLo *= 4
		}
		for iter := 0; iter < 70; iter++ {
			mid := (aLo + aHi) / 2
			if solveFrozen(m, pa, mid, &bbuf) > tc {
				aLo = mid
			} else {
				aHi = mid
			}
		}
		d := solveFrozen(m, pa, aHi, &bbuf)
		res = &sizing.Result{Delay: d, MeanDelay: m.PathDelayMean(pa), Area: pa.Area(m.Proc), A: aHi}
	}
	if res == nil {
		res = &sizing.Result{Delay: m.PathDelayWorst(pa), MeanDelay: m.PathDelayMean(pa), Area: pa.Area(m.Proc)}
	}
	if res.Delay > tc*(1+1e-6) {
		return res, fmt.Errorf("%w: local buffering reached %.1f ps, constraint %.1f ps",
			sizing.ErrInfeasible, res.Delay, tc)
	}
	return res, nil
}
