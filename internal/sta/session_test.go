package sta

import (
	"errors"
	"math"
	"testing"

	"repro/internal/gate"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// TestUpdateRejectsCountPreservingMutation is the regression for the
// historical stale-structure guard, which compared node *counts*: a
// structural rewrite that preserves the count — here an in-place
// NOR→NAND retype plus a pin rewire past an inverter that keeps other
// sinks — slipped straight through it, silently producing timing on a
// stale arc personality. The epoch guard must refuse with
// ErrStaleAnalysis.
func TestUpdateRejectsCountPreservingMutation(t *testing.T) {
	m := model()
	c := netlist.New("countpreserving")
	for _, in := range []string{"a", "b"} {
		if _, err := c.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	// inv has two sinks, so bypassing one pin does not remove it.
	if _, err := c.AddGate("inv", gate.Inv, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("g", gate.Nor2, "inv", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("h", gate.Inv, "inv"); err != nil {
		t.Fatal(err)
	}
	for _, out := range []struct {
		net  string
		load float64
	}{{"g", 10}, {"h", 10}} {
		if _, err := c.AddOutput(out.net, out.load); err != nil {
			t.Fatal(err)
		}
	}

	res, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := c.Node("g")
	nodesBefore := len(c.Nodes)

	// Mutation 1: in-place De Morgan retype — node count unchanged.
	if err := c.ReplaceType(g, gate.Nand2); err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != nodesBefore {
		t.Fatalf("retype changed the node count: %d vs %d — the regression premise is gone",
			len(c.Nodes), nodesBefore)
	}
	if _, err := res.Update(g); !errors.Is(err, ErrStaleAnalysis) {
		t.Fatalf("count-preserving retype not rejected: err = %v", err)
	}

	// Re-analyze, then mutation 2: rewire g's pin past the inverter.
	// The inverter keeps its second sink, so again the count holds.
	res, err = Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	removed, err := c.BypassInverter(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed || len(c.Nodes) != nodesBefore {
		t.Fatalf("bypass removed the inverter (%v) or changed the count — premise gone", removed)
	}
	if _, err := res.Update(g); !errors.Is(err, ErrStaleAnalysis) {
		t.Fatalf("count-preserving rewire not rejected: err = %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateFailurePoisonsResult covers the failed-update contract:
// when Update errors after timing was already overwritten (forced here
// by tearing the Outputs slice out from under the analysis, a direct
// field write no mutator guards), the Result must become unusable by
// contract — every subsequent Update refuses with ErrStaleAnalysis —
// rather than staying silently half-mutated.
func TestUpdateFailurePoisonsResult(t *testing.T) {
	m := model()
	c := chainCircuit(t, 5, 12)
	res, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	gs := c.Gates()
	outputs := c.Outputs
	c.Outputs = nil // simulate external corruption: no epoch bump

	gs[2].CIn *= 2
	if _, err := res.Update(gs[2]); !errors.Is(err, ErrStaleAnalysis) {
		t.Fatalf("update with lost outputs: err = %v, want ErrStaleAnalysis", err)
	}
	// The failure must stick even after the corruption is repaired: the
	// timing was torn mid-update and only a fresh analysis may serve.
	c.Outputs = outputs
	if _, err := res.Update(gs[2]); !errors.Is(err, ErrStaleAnalysis) {
		t.Fatalf("poisoned result accepted another update: err = %v", err)
	}
	if res.Fresh() {
		t.Fatal("poisoned result still reports fresh")
	}

	// A session over the same circuit recovers by re-analyzing.
	sess := NewSession(c, m, Config{})
	fresh, err := sess.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if fresh.WorstDelay <= 0 || !fresh.Fresh() {
		t.Fatalf("session did not recover a usable analysis: %+v", fresh.WorstDelay)
	}
}

// TestSessionReusesAndRefreshes exercises the session lifecycle: cached
// result while the structure holds, incremental repair after size
// writes, full refresh (same Result object, new values) after a
// structural mutation, and bit-identity with fresh analyses throughout.
func TestSessionReusesAndRefreshes(t *testing.T) {
	m := model()
	c := chainCircuit(t, 8, 12)
	sess := NewSession(c, m, Config{})

	r1, err := sess.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sess.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("unchanged circuit did not serve the cached result")
	}

	// Size-only write + Update: the session keeps serving the repaired
	// analysis, and it matches a from-scratch Analyze bit-exactly.
	g := c.Gates()[3]
	g.CIn *= 2.5
	if _, err := r1.Update(g); err != nil {
		t.Fatal(err)
	}
	r3, err := sess.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if r3 != r1 {
		t.Fatal("size-only change invalidated the session")
	}
	fresh, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r3.WorstDelay != fresh.WorstDelay {
		t.Fatalf("repaired session %v vs fresh %v", r3.WorstDelay, fresh.WorstDelay)
	}

	// Structural mutation: next Analyze re-propagates into the same
	// Result object with the new structure.
	if _, _, err := c.InsertBufferPair(g, g.Fanout, 2, 4); err != nil {
		t.Fatal(err)
	}
	if r3.Fresh() {
		t.Fatal("structural mutation left the result fresh")
	}
	r4, err := sess.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if r4 != r1 {
		t.Fatal("session allocated a new Result instead of reusing buffers")
	}
	fresh2, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r4.WorstDelay != fresh2.WorstDelay {
		t.Fatalf("refreshed session %v vs fresh %v", r4.WorstDelay, fresh2.WorstDelay)
	}
	for _, n := range c.Nodes {
		if r4.Timing(n) != fresh2.Timing(n) {
			t.Fatalf("node %s timing diverged after refresh", n.Name)
		}
	}
}

// TestSessionRoundLoopAllocationFree pins the tentpole claim: once
// warm, an analyze → resize → update round through the session
// performs no allocation.
func TestSessionRoundLoopAllocationFree(t *testing.T) {
	m := model()
	c := chainCircuit(t, 40, 12)
	sess := NewSession(c, m, Config{})
	if _, err := sess.Analyze(); err != nil {
		t.Fatal(err)
	}
	gs := c.Gates()
	allocs := testing.AllocsPerRun(50, func() {
		res, err := sess.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		g := gs[len(gs)/2]
		g.CIn *= 1.01
		if _, err := res.Update(g); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("warm session round allocated %.1f times per run", allocs)
	}
}

// TestSessionInvalidateForcesReanalysis covers the explicit reset path.
func TestSessionInvalidateForcesReanalysis(t *testing.T) {
	m := model()
	c := chainCircuit(t, 4, 12)
	sess := NewSession(c, m, Config{})
	r, err := sess.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	// Silent size write without Update: stale values until reset.
	c.Gates()[1].CIn *= 4
	sess.Invalidate()
	if r.Fresh() {
		t.Fatal("invalidated result still fresh")
	}
	r2, err := sess.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.WorstDelay != fresh.WorstDelay {
		t.Fatalf("post-invalidate analysis %v vs fresh %v", r2.WorstDelay, fresh.WorstDelay)
	}
}

// TestSlacksRejectStaleResult: the backward pass reads the cached
// forward state, so it must refuse a stale structure too.
func TestSlacksRejectStaleResult(t *testing.T) {
	m := model()
	c := chainCircuit(t, 4, 12)
	res, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := c.Gates()[1]
	if _, _, err := c.InsertBufferPair(g, g.Fanout, 2, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := res.Slacks(res.WorstDelay); !errors.Is(err, ErrStaleAnalysis) {
		t.Fatalf("stale Slacks not rejected: err = %v", err)
	}
}

// TestVtClassChangeIsNotStructural: Vt writes must stay repairable by
// Update — promoting a gate is the leakage pass's hot move.
func TestVtClassChangeIsNotStructural(t *testing.T) {
	m := model()
	c := chainCircuit(t, 6, 12)
	sess := NewSession(c, m, Config{})
	res, err := sess.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	before := res.WorstDelay
	g := c.Gates()[2]
	g.Vt = tech.HVT
	if _, err := res.Update(g); err != nil {
		t.Fatal(err)
	}
	if !(res.WorstDelay > before) {
		t.Fatalf("HVT promotion did not slow the chain: %v vs %v", res.WorstDelay, before)
	}
	g.Vt = tech.SVT
	if _, err := res.Update(g); err != nil {
		t.Fatal(err)
	}
	if res.WorstDelay != before {
		t.Fatalf("rollback did not restore the baseline bit-exactly: %v vs %v", res.WorstDelay, before)
	}
	if math.IsInf(res.WorstDelay, 0) {
		t.Fatal("nonsense worst delay")
	}
}

// countingRecorder tallies Analyze calls by mode for the recorder-seam
// tests.
type countingRecorder struct {
	full, reused int
}

func (r *countingRecorder) Analyzed(full bool) {
	if full {
		r.full++
	} else {
		r.reused++
	}
}

// TestSessionRecorderCountsAnalyzeModes pins the recorder seam the
// engine's STA-reuse metrics hang off: a full forward pass reports
// full=true, a cached incremental serve reports full=false, and an
// Invalidate forces the next Analyze back to a full pass.
func TestSessionRecorderCountsAnalyzeModes(t *testing.T) {
	m := model()
	c := chainCircuit(t, 6, 30)
	s := NewSession(c, m, Config{})
	rec := &countingRecorder{}
	s.SetRecorder(rec)

	if _, err := s.Analyze(); err != nil {
		t.Fatal(err)
	}
	if rec.full != 1 || rec.reused != 0 {
		t.Fatalf("after first Analyze: full=%d reused=%d, want 1/0", rec.full, rec.reused)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Analyze(); err != nil {
			t.Fatal(err)
		}
	}
	if rec.full != 1 || rec.reused != 3 {
		t.Fatalf("after cached serves: full=%d reused=%d, want 1/3", rec.full, rec.reused)
	}
	s.Invalidate()
	if _, err := s.Analyze(); err != nil {
		t.Fatal(err)
	}
	if rec.full != 2 || rec.reused != 3 {
		t.Fatalf("after Invalidate: full=%d reused=%d, want 2/3", rec.full, rec.reused)
	}

	// SetRecorder(nil) restores the no-op: further Analyze calls must
	// not reach the old recorder.
	s.SetRecorder(nil)
	if _, err := s.Analyze(); err != nil {
		t.Fatal(err)
	}
	if rec.full != 2 || rec.reused != 3 {
		t.Fatalf("nil recorder still recorded: full=%d reused=%d", rec.full, rec.reused)
	}
}
