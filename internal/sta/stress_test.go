package sta

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/iscas"
)

// stressSpecs is a spread of randomized generator shapes: narrow and
// deep, wide and shallow, and mid-sized tangles, each from its own
// seed. The generator is deterministic per spec, so every goroutine
// can rebuild its own private instance of the same circuit.
var stressSpecs = []iscas.Spec{
	{Name: "stress0", Inputs: 12, Outputs: 5, Gates: 120, PathLen: 17, Seed: 11},
	{Name: "stress1", Inputs: 31, Outputs: 11, Gates: 640, PathLen: 41, Seed: 22},
	{Name: "stress2", Inputs: 7, Outputs: 3, Gates: 260, PathLen: 64, Seed: 33},
	{Name: "stress3", Inputs: 53, Outputs: 19, Gates: 1200, PathLen: 23, Seed: 44},
}

// TestWavefrontStressForcedDegrees is the dynamic twin of the
// parcapture analyzer: many goroutines drive the wavefront scheduler
// at forced degrees (the n<-1 grammar) over randomized netlists,
// under -race in CI, and every one must reproduce the serial pass
// byte for byte — timings, slacks, worst-path identity, violation
// count. If a worker closure ever grows a write the analyzer misses,
// this is the test that catches it in motion.
func TestWavefrontStressForcedDegrees(t *testing.T) {
	m := model()
	degrees := []int{-2, -3, -5, -16}
	for _, spec := range stressSpecs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			ref, err := func() (*Result, error) {
				c, err := iscas.Generate(spec)
				if err != nil {
					return nil, err
				}
				return Analyze(c, m, Config{Parallelism: 1})
			}()
			if err != nil {
				t.Fatal(err)
			}
			refRep, err := ref.Slacks(ref.WorstDelay * 0.95)
			if err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			errs := make(chan error, len(degrees)*2)
			for _, deg := range degrees {
				// Two goroutines per degree: concurrent sessions at the
				// same degree race each other as well as the other degrees.
				for rep := 0; rep < 2; rep++ {
					wg.Add(1)
					go func(deg int) {
						defer wg.Done()
						c, err := iscas.Generate(spec) // private instance
						if err != nil {
							errs <- err
							return
						}
						got, err := Analyze(c, m, Config{Parallelism: deg})
						if err != nil {
							errs <- fmt.Errorf("deg=%d: %v", deg, err)
							return
						}
						// Each goroutine has a private circuit instance, so
						// the worst output is compared by name, not pointer.
						if !bitsEq(got.WorstDelay, ref.WorstDelay) ||
							got.WorstOutput.Name != ref.WorstOutput.Name || got.WorstRising != ref.WorstRising {
							errs <- fmt.Errorf("deg=%d: worst path %v/%v/%v != %v/%v/%v", deg,
								got.WorstDelay, got.WorstOutput, got.WorstRising,
								ref.WorstDelay, ref.WorstOutput, ref.WorstRising)
							return
						}
						for _, n := range c.Nodes {
							gt, rt := got.Timing(n), ref.Timing(n)
							if !bitsEq(gt.TRise, rt.TRise) || !bitsEq(gt.TFall, rt.TFall) ||
								!bitsEq(gt.TauRise, rt.TauRise) || !bitsEq(gt.TauFall, rt.TauFall) {
								errs <- fmt.Errorf("deg=%d: node %s timing %+v != %+v", deg, n.Name, gt, rt)
								return
							}
						}
						rep, err := got.Slacks(ref.WorstDelay * 0.95)
						if err != nil {
							errs <- fmt.Errorf("deg=%d slacks: %v", deg, err)
							return
						}
						if !bitsEq(rep.WorstSlack, refRep.WorstSlack) || rep.Violations != refRep.Violations {
							errs <- fmt.Errorf("deg=%d: slacks %v/%d != %v/%d", deg,
								rep.WorstSlack, rep.Violations, refRep.WorstSlack, refRep.Violations)
						}
					}(deg)
				}
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}
