package sta

import (
	"math"
	"testing"

	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/netlist"
	"repro/internal/tech"
)

func model() *delay.Model { return delay.NewModel(tech.CMOS025()) }

// chainCircuit builds a pure inverter chain a → g0 → … → g(n-1) → out.
func chainCircuit(t *testing.T, n int, load float64) *netlist.Circuit {
	t.Helper()
	c := netlist.New("chain")
	if _, err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	prev := "a"
	for i := 0; i < n; i++ {
		name := "g" + string(rune('0'+i))
		if _, err := c.AddGate(name, gate.Inv, prev); err != nil {
			t.Fatal(err)
		}
		prev = name
	}
	if _, err := c.AddOutput(prev, load); err != nil {
		t.Fatal(err)
	}
	return c
}

// diamondCircuit builds two parallel branches of different depth:
//
//	a → s1 → s2 → s3 ─┐
//	                  ├→ j(NAND2) → out
//	a → f1 ──────────┘
func diamondCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("diamond")
	if _, err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	for _, g := range []struct{ name, fanin string }{
		{"s1", "a"}, {"s2", "s1"}, {"s3", "s2"}, {"f1", "a"},
	} {
		if _, err := c.AddGate(g.name, gate.Inv, g.fanin); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AddGate("j", gate.Nand2, "s3", "f1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddOutput("j", 10); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAnalyzeChainMatchesPathModel(t *testing.T) {
	m := model()
	c := chainCircuit(t, 5, 12)
	res, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pa, _, err := CriticalPath(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if pa.Len() != 5 {
		t.Fatalf("chain critical path has %d stages", pa.Len())
	}
	// On a pure chain the STA worst delay equals the path model's
	// worst-edge delay.
	want := m.PathDelayWorst(pa)
	if math.Abs(res.WorstDelay-want) > 1e-6*want {
		t.Fatalf("STA %g vs path model %g", res.WorstDelay, want)
	}
}

func TestCriticalPathPicksDeepBranch(t *testing.T) {
	m := model()
	c := diamondCircuit(t)
	res, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	nodes := res.CriticalNodes()
	names := make([]string, len(nodes))
	for i, n := range nodes {
		names[i] = n.Name
	}
	if len(nodes) != 4 || names[0] != "s1" || names[3] != "j" {
		t.Fatalf("critical path %v, want s1 s2 s3 j", names)
	}
}

func TestSlopePropagationMatters(t *testing.T) {
	// Degrading the input slope at the PIs must increase arrivals.
	m := model()
	c := chainCircuit(t, 4, 12)
	fast, err := Analyze(c, m, Config{InputTau: 20})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Analyze(c, m, Config{InputTau: 400})
	if err != nil {
		t.Fatal(err)
	}
	if slow.WorstDelay <= fast.WorstDelay {
		t.Fatal("input slope has no effect on STA")
	}
}

func TestAnalyzeRejectsComposites(t *testing.T) {
	c := netlist.New("comp")
	if _, err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddInput("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("y", gate.And2, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddOutput("y", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(c, model(), Config{}); err == nil {
		t.Fatal("composite circuit accepted")
	}
}

func TestAnalyzeRequiresOutputs(t *testing.T) {
	c := netlist.New("noout")
	if _, err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddGate("g", gate.Inv, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(c, model(), Config{}); err == nil {
		t.Fatal("output-less circuit accepted")
	}
}

func TestPathFromNodesOffPathLoad(t *testing.T) {
	m := model()
	c := diamondCircuit(t)
	// Put a recognizable load on s3's sibling fanout: give j a second
	// sink on s3? Instead size f1 and check s3's stage keeps only its
	// own off-path share.
	res, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	nodes := res.CriticalNodes()
	pa, err := PathFromNodes("p", nodes, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Last stage's COff is the full fanout of j (the terminal load).
	last := pa.Stages[len(pa.Stages)-1]
	if last.COff != 10 {
		t.Fatalf("terminal COff = %g, want 10", last.COff)
	}
	// Non-final stages: fanout minus the next stage's pin.
	for i := 0; i < pa.Len()-1; i++ {
		n := pa.Stages[i].Node
		want := n.FanoutCap() - pa.Stages[i+1].CIn
		if want < 0 {
			want = 0
		}
		if math.Abs(pa.Stages[i].COff-want) > 1e-12 {
			t.Fatalf("stage %d COff = %g, want %g", i, pa.Stages[i].COff, want)
		}
	}
}

func TestPathFromNodesErrors(t *testing.T) {
	m := model()
	c := diamondCircuit(t)
	if _, err := PathFromNodes("p", nil, m, Config{}); err == nil {
		t.Fatal("empty chain accepted")
	}
	// Disconnected chain.
	bad := []*netlist.Node{c.Node("s1"), c.Node("f1")}
	if _, err := PathFromNodes("p", bad, m, Config{}); err == nil {
		t.Fatal("disconnected chain accepted")
	}
	// Non-logic node.
	bad2 := []*netlist.Node{c.Node("a")}
	if _, err := PathFromNodes("p", bad2, m, Config{}); err == nil {
		t.Fatal("input node accepted in path")
	}
}

func TestKWorstPathsOrderAndDedup(t *testing.T) {
	m := model()
	c := diamondCircuit(t)
	ranked, err := KWorstPaths(c, m, Config{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Two distinct gate chains exist (deep and shallow into j).
	if len(ranked) != 2 {
		t.Fatalf("got %d paths, want 2", len(ranked))
	}
	if ranked[0].Delay < ranked[1].Delay {
		t.Fatal("paths not in decreasing delay order")
	}
	if ranked[0].Signature() == ranked[1].Signature() {
		t.Fatal("duplicate path signatures")
	}
	// The worst one must be the deep branch.
	if len(ranked[0].Nodes) != 4 {
		t.Fatalf("worst path has %d nodes", len(ranked[0].Nodes))
	}
}

func TestKWorstPathsK1MatchesCriticalPath(t *testing.T) {
	m := model()
	c := diamondCircuit(t)
	ranked, err := KWorstPaths(c, m, Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := Analyze(c, m, Config{})
	crit := res.CriticalNodes()
	if len(ranked) != 1 || len(ranked[0].Nodes) != len(crit) {
		t.Fatalf("k=1 path %v vs critical %v", ranked[0].Nodes, crit)
	}
	for i := range crit {
		if ranked[0].Nodes[i] != crit[i] {
			t.Fatal("k=1 path differs from backtracked critical path")
		}
	}
	// The frozen-graph estimate matches the STA worst delay.
	if math.Abs(ranked[0].Delay-res.WorstDelay) > 1e-6*res.WorstDelay {
		t.Fatalf("rank delay %g vs STA %g", ranked[0].Delay, res.WorstDelay)
	}
}

func TestKWorstPathsRejectsBadK(t *testing.T) {
	if _, err := KWorstPaths(diamondCircuit(t), model(), Config{}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestKWorstBoundedPaths(t *testing.T) {
	m := model()
	c := diamondCircuit(t)
	paths, err := KWorstBoundedPaths(c, m, Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d bounded paths", len(paths))
	}
	for _, pa := range paths {
		if err := pa.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDanglingNodesAreNotEndpoints(t *testing.T) {
	m := model()
	c := diamondCircuit(t)
	// Add a dangling heavy gate off s1: it must never terminate a
	// ranked path.
	if _, err := c.AddGate("dang", gate.Nor3, "s1", "s2", "s3"); err != nil {
		t.Fatal(err)
	}
	ranked, err := KWorstPaths(c, m, Config{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, rp := range ranked {
		last := rp.Nodes[len(rp.Nodes)-1]
		if last.Name == "dang" {
			t.Fatal("dangling node terminated a ranked path")
		}
	}
}

func TestArrivalMonotoneAlongChain(t *testing.T) {
	m := model()
	c := chainCircuit(t, 6, 12)
	res, err := Analyze(c, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, n := range res.CriticalNodes() {
		at := res.ArrivalAt(n)
		if at <= prev {
			t.Fatalf("arrival not increasing at %s: %g after %g", n.Name, at, prev)
		}
		prev = at
	}
}
