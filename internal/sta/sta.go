// Package sta performs slope-propagating static timing analysis on
// elaborated netlists using the paper's closed-form delay model, and
// extracts critical paths as bounded-path objects for the POPS
// optimizers. Path selection follows the paper's POPS philosophy
// (ref. [11-12]): only a user-limited number of worst paths is
// extracted and optimized.
package sta

import (
	"fmt"
	"math"

	"repro/internal/delay"
	"repro/internal/gate"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// Config parameterizes an analysis run.
type Config struct {
	// InputTau is the transition time (ps) presented at every primary
	// input. Zero selects delay.DefaultTauIn for the model's corner.
	InputTau float64
}

func (cfg Config) inputTau(p *tech.Process) float64 {
	if cfg.InputTau > 0 {
		return cfg.InputTau
	}
	return delay.DefaultTauIn(p)
}

// NodeTiming carries the per-net timing state: worst arrival times and
// output transition times for both output edges.
type NodeTiming struct {
	TRise, TFall     float64 // worst arrival of the rising/falling output edge (ps)
	TauRise, TauFall float64 // output transition times (ps)
}

// Worst returns the worse of the two arrival times.
func (t NodeTiming) Worst() float64 { return math.Max(t.TRise, t.TFall) }

// Result is the outcome of an STA run.
type Result struct {
	Circuit *netlist.Circuit
	Model   *delay.Model
	Config  Config

	Timing map[*netlist.Node]NodeTiming

	// WorstDelay is the latest arrival over all primary outputs (ps);
	// WorstOutput the pseudo-node where it occurs, WorstRising its edge.
	WorstDelay  float64
	WorstOutput *netlist.Node
	WorstRising bool

	// pred records, per (node, output edge), the fanin whose arrival
	// determined the worst arrival — the backtracking skeleton.
	predRise map[*netlist.Node]*netlist.Node
	predFall map[*netlist.Node]*netlist.Node

	// order caches the topological order for incremental updates.
	order []*netlist.Node
}

// Analyze runs slope-propagating STA over the circuit. The circuit must
// be elaborated (primitive cells only) and acyclic.
func Analyze(c *netlist.Circuit, m *delay.Model, cfg Config) (*Result, error) {
	if !netlist.IsElaborated(c) {
		return nil, fmt.Errorf("sta: circuit %s contains composite cells; run netlist.Elaborate first", c.Name)
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Circuit:  c,
		Model:    m,
		Config:   cfg,
		Timing:   make(map[*netlist.Node]NodeTiming, len(order)),
		predRise: make(map[*netlist.Node]*netlist.Node),
		predFall: make(map[*netlist.Node]*netlist.Node),
		order:    order,
	}
	tauIn := cfg.inputTau(m.Proc)
	res.WorstDelay = math.Inf(-1)

	for _, n := range order {
		switch {
		case n.Type == gate.Input:
			res.Timing[n] = NodeTiming{TauRise: tauIn, TauFall: tauIn}
		case n.Type == gate.Output:
			d := n.Fanin[0]
			dt := res.Timing[d]
			res.Timing[n] = dt
			res.predRise[n] = d
			res.predFall[n] = d
			if dt.TRise > res.WorstDelay {
				res.WorstDelay, res.WorstOutput, res.WorstRising = dt.TRise, n, true
			}
			if dt.TFall > res.WorstDelay {
				res.WorstDelay, res.WorstOutput, res.WorstRising = dt.TFall, n, false
			}
		default:
			res.analyzeGate(n)
		}
	}
	if res.WorstOutput == nil {
		return nil, fmt.Errorf("sta: circuit %s has no primary outputs", c.Name)
	}
	return res, nil
}

// analyzeGate computes the worst rise/fall arrivals of a logic node.
// Delays and transitions honor the node's Vt class; for the default SVT
// class the Vt-aware model delegates bit-exactly to the base model.
func (r *Result) analyzeGate(n *netlist.Node) {
	cell := n.Cell()
	cl := n.FanoutCap() + cell.Parasitic(n.CIn)
	tauF := r.Model.TransitionHLVt(cell, n.CIn, cl, n.Vt)
	tauR := r.Model.TransitionLHVt(cell, n.CIn, cl, n.Vt)

	tFall, tRise := math.Inf(-1), math.Inf(-1)
	var pFall, pRise *netlist.Node
	for _, d := range n.Fanin {
		dt := r.Timing[d]
		if cell.Invert {
			// Input rising → output falling.
			if t := dt.TRise + r.Model.GateDelayHLVt(cell, n.CIn, cl, dt.TauRise, n.Vt); t > tFall {
				tFall, pFall = t, d
			}
			// Input falling → output rising.
			if t := dt.TFall + r.Model.GateDelayLHVt(cell, n.CIn, cl, dt.TauFall, n.Vt); t > tRise {
				tRise, pRise = t, d
			}
		} else {
			// Non-inverting (BUF): edges preserved.
			if t := dt.TFall + r.Model.GateDelayHLVt(cell, n.CIn, cl, dt.TauFall, n.Vt); t > tFall {
				tFall, pFall = t, d
			}
			if t := dt.TRise + r.Model.GateDelayLHVt(cell, n.CIn, cl, dt.TauRise, n.Vt); t > tRise {
				tRise, pRise = t, d
			}
		}
	}
	r.Timing[n] = NodeTiming{TRise: tRise, TFall: tFall, TauRise: tauR, TauFall: tauF}
	r.predRise[n] = pRise
	r.predFall[n] = pFall
}

// ArrivalAt returns the worst arrival time at a node's output (ps).
func (r *Result) ArrivalAt(n *netlist.Node) float64 { return r.Timing[n].Worst() }

// CriticalNodes backtracks the worst path from the worst output to a
// primary input, returning the logic nodes in signal order.
func (r *Result) CriticalNodes() []*netlist.Node {
	var rev []*netlist.Node
	n := r.WorstOutput
	rising := r.WorstRising
	for n != nil {
		if n.IsLogic() {
			rev = append(rev, n)
		}
		var p *netlist.Node
		if rising {
			p = r.predRise[n]
		} else {
			p = r.predFall[n]
		}
		if p != nil && n.IsLogic() && n.Cell().Invert {
			rising = !rising
		}
		n = p
	}
	// Reverse into signal order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathFromNodes builds a bounded-path object from a chain of logic
// nodes (in signal order). The off-path load of each stage is its full
// fan-out minus the single pin continuing the path; the last stage
// keeps its entire fan-out (terminal + branches) as fixed load.
func PathFromNodes(name string, nodes []*netlist.Node, m *delay.Model, cfg Config) (*delay.Path, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("sta: empty node chain for path %q", name)
	}
	pa := &delay.Path{Name: name, TauIn: cfg.inputTau(m.Proc)}
	for i, n := range nodes {
		if !n.IsLogic() {
			return nil, fmt.Errorf("sta: path %q node %s is not a logic cell", name, n.Name)
		}
		coff := n.FanoutCap()
		if i+1 < len(nodes) {
			next := nodes[i+1]
			linked := false
			for _, f := range next.Fanin {
				if f == n {
					linked = true
					break
				}
			}
			if !linked {
				return nil, fmt.Errorf("sta: path %q: %s does not drive %s", name, n.Name, next.Name)
			}
			coff -= next.CIn // one pin continues the path
			if coff < 0 {
				coff = 0
			}
		}
		pa.Stages = append(pa.Stages, delay.Stage{Cell: n.Cell(), CIn: n.CIn, COff: coff, Node: n})
	}
	return pa, nil
}

// CriticalPath runs STA and extracts the single worst path as a
// bounded-path object.
func CriticalPath(c *netlist.Circuit, m *delay.Model, cfg Config) (*delay.Path, *Result, error) {
	res, err := Analyze(c, m, cfg)
	if err != nil {
		return nil, nil, err
	}
	nodes := res.CriticalNodes()
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("sta: circuit %s has an empty critical path", c.Name)
	}
	pa, err := PathFromNodes(c.Name+"/critical", nodes, m, cfg)
	if err != nil {
		return nil, nil, err
	}
	return pa, res, nil
}
